package vxml

import (
	"strings"
	"testing"
)

const booksXML = `<books>
  <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>
  <book><isbn>222</isbn><title>Artificial Intelligence</title><year>2002</year></book>
  <book><isbn>333</isbn><title>Old Tome</title><year>1990</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111</isbn><content>all about search</content></review>
  <review><isbn>222</isbn><content>xml search topics</content></review>
</reviews>`

const viewText = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func openTestDB(t *testing.T) *Database {
	t.Helper()
	db := Open()
	if err := db.Add("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if err := db.Add("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPublicAPISearch(t *testing.T) {
	db := openTestDB(t)
	view, err := db.DefineView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := db.Search(view, []string{"XML", "Search"}, &Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.TF["XML"] == 0 || r.TF["Search"] == 0 {
			t.Errorf("conjunctive result missing keyword: %+v", r.TF)
		}
		if !strings.HasPrefix(r.XML, "<bookrevs>") {
			t.Errorf("XML = %.60s", r.XML)
		}
	}
	if stats.ViewSize != 2 || stats.Total <= 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestPublicAPIApproachesAgree(t *testing.T) {
	db := openTestDB(t)
	view, err := db.DefineView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	for _, ap := range []Approach{Efficient, Baseline, GTPTermJoin} {
		results, _, err := db.Search(view, []string{"search"}, &Options{Approach: ap})
		if err != nil {
			t.Fatalf("approach %d: %v", ap, err)
		}
		var b strings.Builder
		for _, r := range results {
			b.WriteString(r.XML)
		}
		rendered = append(rendered, b.String())
	}
	if rendered[0] != rendered[1] || rendered[0] != rendered[2] {
		t.Error("approaches returned different results")
	}
}

func TestPublicAPIQueryFigure2(t *testing.T) {
	db := openTestDB(t)
	results, _, err := db.Query(`
let $view := `+viewText+`
for $r in $view
where $r ftcontains('XML' & 'Search')
return $r`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.DefineView("for $x in fn:doc(nope.xml)/a return $x"); err == nil {
		t.Error("unknown doc should fail")
	}
	if _, _, err := db.Query("fn:doc(books.xml)/books", nil); err == nil {
		t.Error("non-keyword query should fail")
	}
	view, err := db.DefineView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Search(view, []string{"x"}, &Options{Approach: Approach(99)}); err == nil {
		t.Error("unknown approach should fail")
	}
}

func TestPublicAPIExplain(t *testing.T) {
	db := openTestDB(t)
	view, err := db.DefineView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	plan := db.Explain(view, []string{"xml"})
	for _, want := range []string{"QPT for books.xml", "path index probes", "inverted list probes: xml"} {
		if !strings.Contains(plan, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
}

func TestPublicAPISnippets(t *testing.T) {
	db := openTestDB(t)
	view, err := db.DefineView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := db.Search(view, []string{"search"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || !strings.Contains(strings.ToLower(results[0].Snippet), "search") {
		t.Errorf("snippet missing: %+v", results)
	}
}

func TestPublicAPIMetadata(t *testing.T) {
	db := openTestDB(t)
	names := db.DocumentNames()
	if len(names) != 2 || names[0] != "books.xml" {
		t.Errorf("names = %v", names)
	}
	if db.TotalBytes() == 0 {
		t.Error("TotalBytes = 0")
	}
	view, _ := db.DefineView(viewText)
	if !strings.Contains(view.Definition(), "bookrevs") {
		t.Error("Definition() lost text")
	}
}
