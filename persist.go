// Corpus persistence: a Database can be saved to a directory and reopened
// with identical search behavior. Only the documents are persisted — the
// path and inverted-list indices, being deterministic functions of the
// documents, are rebuilt on load, and views are compiled from their XQuery
// text by the caller as usual.

package vxml

import (
	"vxml/internal/core"
	"vxml/internal/qcache"
	"vxml/internal/store"
)

// Save writes every document to dir plus a manifest recording document IDs,
// load order and the shard count, so a Load of the directory reproduces the
// corpus exactly: same Dewey IDs, same shard assignment, same collection
// enumeration order — including for a corpus mutated by Replace and Delete,
// whose document ID sequence has gaps. Files are written via temp-file plus
// rename with the manifest renamed last, so a save that fails part-way
// never leaves a directory that half-loads. A document named "MANIFEST"
// (or with a path separator in its name) cannot be saved and is rejected
// with an error before anything is written over it.
func (db *Database) Save(dir string) error {
	return db.engine.Store.Save(dir)
}

// Load opens a database over a directory written by Save, rebuilding the
// per-document indices. Searches over the loaded database — on every
// pipeline, at every parallelism, cached or not — return byte-identical
// results to the database that was saved. The loaded database starts with
// a fresh (empty) query-result cache.
func Load(dir string) (*Database, error) {
	st, err := store.Load(dir)
	if err != nil {
		return nil, err
	}
	return &Database{engine: core.New(st), cache: qcache.New(0)}, nil
}
