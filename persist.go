// Corpus persistence: a Database can be saved to a directory and reopened
// with identical search behavior, in either of two formats.
//
// The plain format (Save/Load) writes one XML file per document plus a
// manifest; indices are rebuilt on load. The disk format
// (SaveDisk/OpenDisk) writes a DAG-compressed block store with the indices
// persisted alongside the documents: opening it costs O(manifest), trees
// and indices page in on demand through a bounded block cache, and the
// corpus can be much bigger than RAM. Both formats reproduce the corpus
// exactly — same document IDs, shard assignment and enumeration order —
// and the two backends return byte-identical search results (pinned by the
// equivalence suites).

package vxml

import (
	"time"

	"vxml/internal/core"
	"vxml/internal/diskstore"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/store"
)

// Save writes every document to dir plus a manifest recording document IDs,
// load order and the shard count, so a Load of the directory reproduces the
// corpus exactly: same Dewey IDs, same shard assignment, same collection
// enumeration order — including for a corpus mutated by Replace and Delete,
// whose document ID sequence has gaps. Files are written via temp-file plus
// rename with the manifest renamed last, so a save that fails part-way
// never leaves a directory that half-loads. A document named "MANIFEST"
// (or with a path separator in its name) cannot be saved and is rejected
// with an error before anything is written over it. Works on every
// backend: a disk-resident corpus is hydrated document by document.
func (db *Database) Save(dir string) error {
	return db.engine.Store.Save(dir)
}

// Load opens a database over a directory written by Save, rebuilding the
// per-document indices. Searches over the loaded database — on every
// pipeline, at every parallelism, cached or not — return byte-identical
// results to the database that was saved. The loaded database starts with
// a fresh (empty) query-result cache.
func Load(dir string) (*Database, error) {
	db, _, err := LoadWithStats(dir)
	return db, err
}

// LoadStats reports where a Load spent its time: parsing the documents
// versus rebuilding their indices. The split is what motivates the disk
// backend — OpenDisk pays neither cost at startup.
type LoadStats struct {
	Documents  int
	TotalBytes int
	// Parse covers reading and parsing every document file.
	Parse time.Duration
	// Index covers rebuilding every path and inverted-list index.
	Index time.Duration
	// Total is the whole Load wall time (parse + index + bookkeeping).
	Total time.Duration
}

// LoadWithStats is Load, additionally reporting document counts and the
// parse/index time split.
func LoadWithStats(dir string) (*Database, *LoadStats, error) {
	start := time.Now()
	st, err := store.Load(dir)
	if err != nil {
		return nil, nil, err
	}
	parsed := time.Now()
	eng := core.New(st)
	indexed := time.Now()
	stats := &LoadStats{
		Documents:  len(st.Infos()),
		TotalBytes: st.TotalBytes(),
		Parse:      parsed.Sub(start),
		Index:      indexed.Sub(parsed),
		Total:      time.Since(start),
	}
	return newDatabase(eng), stats, nil
}

// OpenDisk opens a database over a disk-resident corpus directory written
// by SaveDisk (creating an empty one with store.DefaultShardCount shards
// if the directory holds no corpus yet). Startup reads only the manifest:
// documents and indices stay on disk, paged in on demand through a bounded
// block cache, so the corpus may exceed RAM. All mutations (Add, Replace,
// Delete) persist incrementally — only new structure is appended — and
// survive restarts. Search results are byte-identical to a heap-backed
// database over the same documents. Call Close when done to release the
// store's file handles.
func OpenDisk(dir string) (*Database, error) {
	return OpenDiskOptions(dir, diskstore.Options{})
}

// OpenDiskOptions is OpenDisk with explicit cache and I/O tuning (block
// size, block/document/index cache bounds, mmap).
func OpenDiskOptions(dir string, opts diskstore.Options) (*Database, error) {
	var ds *diskstore.Store
	var err error
	if diskstore.Exists(dir) {
		ds, err = diskstore.OpenWith(dir, opts)
	} else {
		ds, err = diskstore.Init(dir, 0, opts)
	}
	if err != nil {
		return nil, err
	}
	return newDatabase(core.New(ds)), nil
}

// SaveDisk writes the corpus as a disk-resident, DAG-compressed store in
// dir: structurally identical subtrees (across and within documents) are
// stored once, and each document's indices are persisted beside it so
// OpenDisk never rebuilds them. The new store is committed by renaming its
// manifest last — a crash mid-save leaves any previous corpus in dir
// intact. On a heap-backed database the engine's existing indices are
// reused, not rebuilt.
func (db *Database) SaveDisk(dir string) error {
	db.engine.RLock()
	defer db.engine.RUnlock()
	ds, err := diskstore.Create(db.engine.Store, dir, diskstore.Options{},
		func(name string) (*pathindex.Index, *invindex.Index) {
			return db.engine.PathIndex(name), db.engine.InvIndex(name)
		})
	if err != nil {
		return err
	}
	return ds.Close()
}

// DiskStats returns the disk backend's resource counters (on-disk and
// resident bytes, dedup ratio, cache hit rates, open time). ok is false
// when the database is heap-backed.
func (db *Database) DiskStats() (stats diskstore.Stats, ok bool) {
	if ds, isDisk := db.engine.Store.(*diskstore.Store); isDisk {
		return ds.DiskStats(), true
	}
	return diskstore.Stats{}, false
}

// Close releases backend resources (the disk backend's file handles). It
// is a no-op on a heap-backed database. The database must not be used
// after Close.
func (db *Database) Close() error {
	if ds, isDisk := db.engine.Store.(*diskstore.Store); isDisk {
		return ds.Close()
	}
	return nil
}
