// Cancellation contract of the ctx-first API: a canceled or expired
// context unwinds every entry point with a wrapped context error, within
// one work unit, releasing all shard read locks, leaking no pool
// goroutine, and never inserting a partial computation into the
// query-result cache. Run with -race.
package vxml_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"vxml"
	"vxml/internal/testkit"
)

// TestPreCanceledContextFailsEveryEntryPoint: a context that is already
// canceled must stop each ctx-taking entry point before it does any work,
// with a wrapped context.Canceled.
func TestPreCanceledContextFailsEveryEntryPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := testkit.BuildEqCorpus(t, rng, 6)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, approach := range []vxml.Approach{vxml.Efficient, vxml.Baseline, vxml.GTPTermJoin} {
		_, _, err := db.SearchContext(ctx, view, []string{"copper"}, &vxml.Options{Approach: approach})
		testkit.WantCtxErr(t, fmt.Sprintf("SearchContext approach=%d", approach), err, context.Canceled)
	}
	// A warm cache must not mask the cancellation: the pre-flight runs
	// before the cache lookup.
	if _, _, err := db.Search(view, []string{"copper"}, &vxml.Options{Cache: true}); err != nil {
		t.Fatal(err)
	}
	_, _, err = db.SearchContext(ctx, view, []string{"copper"}, &vxml.Options{Cache: true})
	testkit.WantCtxErr(t, "SearchContext warm cache", err, context.Canceled)
	if _, err := db.DefineViewContext(ctx, testkit.EqViews[0]); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("DefineViewContext: %v", err)
	}
	if _, err := db.ExplainContext(ctx, view, []string{"copper"}); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("ExplainContext: %v", err)
	}
	query := `for $r in (for $a in fn:collection("part-*")/books//article return <art>{$a/bdy}</art>)
	          where $r ftcontains('copper') return $r`
	if _, _, err := db.QueryContext(ctx, query, nil); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext: %v", err)
	}
	got := 0
	for _, err := range db.Results(ctx, view, []string{"copper"}, nil) {
		testkit.WantCtxErr(t, "Results", err, context.Canceled)
		got++
	}
	if got != 1 {
		t.Fatalf("pre-canceled Results yielded %d pairs, want exactly one error pair", got)
	}
}

// TestCancelMidStreamStopsDelivery cancels the context between pulls of
// the Results iterator — a deterministic mid-pipeline cancellation point
// (ranking done, materialization under way). The next pull must deliver
// the wrapped error and the sequence must stop.
func TestCancelMidStreamStopsDelivery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := testkit.BuildEqCorpus(t, rng, 12)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var yielded int
		var streamErr error
		for r, err := range db.Results(ctx, view, []string{"copper"}, &vxml.Options{Parallelism: par}) {
			if err != nil {
				streamErr = err
				continue
			}
			yielded++
			if r.XML == "" {
				t.Fatalf("parallelism %d: empty XML at yield %d", par, yielded)
			}
			cancel() // the next pull must observe the cancellation
		}
		cancel()
		if yielded != 1 {
			t.Fatalf("parallelism %d: %d results yielded after mid-stream cancel, want 1", par, yielded)
		}
		testkit.WantCtxErr(t, fmt.Sprintf("parallelism %d mid-stream", par), streamErr, context.Canceled)
	}
}

// TestCancelDuringSearchReleasesEverything cancels contexts while searches
// are genuinely in flight (parallel and sequential, all three pipelines,
// with the cache armed), then verifies: the error wraps context.Canceled,
// no worker goroutine outlives the calls, the shard locks are free (an
// ingest — which needs a write lock — succeeds immediately), and the
// canceled runs poisoned no cache entry.
func TestCancelDuringSearchReleasesEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := testkit.BuildEqCorpus(t, rng, 30)
	view, err := db.DefineView(testkit.EqViews[1]) // join view: the slowest shape
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper", "quartz"}

	baselineGoroutines := runtime.NumGoroutine()
	canceled, completed, attempt := 0, 0, 0
	for _, opts := range []*vxml.Options{
		{Parallelism: 1, Cache: true},
		{Parallelism: 4, Cache: true},
		{Parallelism: 4, Approach: vxml.Baseline, Cache: true},
		{Parallelism: 1, Approach: vxml.GTPTermJoin, Cache: true},
	} {
		// Shrink the cancel delay until the cancellation lands mid-search;
		// a run that finishes first is fine, it just tries again sooner.
		// Every attempt gets a distinct TopK — and so a distinct cache key —
		// so an attempt that completed (and legitimately cached its entry)
		// cannot hand the next attempt an instant, uncancelable cache hit.
		for delay := 2 * time.Millisecond; delay >= 0; delay /= 4 {
			attempt++
			o := *opts
			o.TopK = attempt
			ctx, cancel := context.WithCancel(context.Background())
			var timer *time.Timer
			if delay == 0 {
				cancel() // a pipeline faster than any timer still must fail
			} else {
				timer = time.AfterFunc(delay, cancel)
			}
			_, _, err := db.SearchContext(ctx, view, kws, &o)
			if timer != nil {
				timer.Stop()
			}
			cancel()
			if err != nil {
				testkit.WantCtxErr(t, fmt.Sprintf("opts %+v delay %v", opts, delay), err, context.Canceled)
				canceled++
				break
			}
			completed++
			if delay == 0 {
				t.Fatalf("opts %+v: search completed even with a pre-canceled context", opts)
			}
		}
	}
	if canceled == 0 {
		t.Fatal("no search was actually canceled")
	}
	testkit.WaitGoroutines(t, "after canceled searches", baselineGoroutines)

	// Only completed attempts may be resident in the cache: a canceled
	// computation must never be inserted.
	if n := db.CacheStats().Entries; n != completed {
		t.Fatalf("%d cache entries resident, want exactly the %d completed searches (canceled: %d)",
			n, completed, canceled)
	}

	// All shard locks must be free: an ingest takes a write lock and would
	// block behind a leaked read lock.
	done := make(chan error, 1)
	go func() { done <- db.Add("post-cancel.xml", "<books><article><bdy>copper</bdy></article></books>") }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ingest after canceled searches: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ingest blocked after canceled searches: a shard lock leaked")
	}

	// And the pipeline still computes correct, cacheable results.
	fresh, stats, err := db.SearchContext(context.Background(), view, kws, &vxml.Options{Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("post-cancel search reported a cache hit; canceled runs must not populate the cache")
	}
	again, stats2, err := db.Search(view, kws, &vxml.Options{Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats2.CacheHit {
		t.Fatal("repeat search missed the cache")
	}
	testkit.MustEqualResults(t, "post-cancel cached vs fresh", fresh, again)
}

// TestDeadlineExceededWrapsCorrectly: an expired deadline surfaces as a
// wrapped context.DeadlineExceeded, distinguishable from a cancel. The
// deadline is set firmly in the past, so the test never waits on the
// wall clock.
func TestDeadlineExceededWrapsCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := testkit.BuildEqCorpus(t, rng, 10)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancel()
	_, _, err = db.SearchContext(ctx, view, []string{"copper"}, nil)
	testkit.WantCtxErr(t, "expired deadline", err, context.DeadlineExceeded)
}
