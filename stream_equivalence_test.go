// Delivery-path equivalence: for the same (view, keywords, options), the
// one-shot Search, concatenated Offset/TopK pages, and the collected
// Results iterator must be byte-identical — rank, score, TF map, XML,
// snippet — including across cache hits and at every parallelism. The
// paper's determinism theorem (4.1) plus the total ranking order make this
// a hard contract, not a best effort.
package vxml_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"vxml"
	"vxml/internal/testkit"
)

// searchPage adapts one-shot Search to testkit.CollectPages.
func searchPage(db *vxml.Database, view *vxml.View, kws []string) func(o *vxml.Options) ([]vxml.Result, error) {
	return func(o *vxml.Options) ([]vxml.Result, error) {
		results, _, err := db.Search(view, kws, o)
		return results, err
	}
}

// streamPage adapts a collected Results stream to testkit.CollectPages.
func streamPage(t *testing.T, label string, db *vxml.Database, view *vxml.View, kws []string) func(o *vxml.Options) ([]vxml.Result, error) {
	return func(o *vxml.Options) ([]vxml.Result, error) {
		return testkit.CollectResults(t, label, db.Results(context.Background(), view, kws, o)), nil
	}
}

// TestStreamAndPaginationEquivalence drives randomized corpora through
// every delivery path: unpaged Search is the reference; Search pages,
// streamed full runs and streamed pages must reproduce it byte for byte,
// sequentially and parallel, uncached and across cache hits.
func TestStreamAndPaginationEquivalence(t *testing.T) {
	trial := 0
	for seed := int64(101); seed <= 112; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := testkit.BuildEqCorpus(t, rng, 3+rng.Intn(18))
		for vi, viewText := range testkit.EqViews {
			trial++
			view, err := db.DefineView(viewText)
			if err != nil {
				t.Fatalf("seed %d view %d: %v", seed, vi, err)
			}
			kws := testkit.KeywordsFor(rng)
			for _, par := range []int{1, 4} {
				label := fmt.Sprintf("seed=%d view=%d par=%d", seed, vi, par)
				base := vxml.Options{Parallelism: par}
				ref, _, err := db.Search(view, kws, &base)
				if err != nil {
					t.Fatalf("%s reference: %v", label, err)
				}

				streamed := testkit.CollectResults(t, label+" stream", db.Results(context.Background(), view, kws, &base))
				testkit.MustEqualResults(t, label+" stream-vs-search", ref, streamed)

				pageSize := 1 + rng.Intn(4)
				paged := testkit.CollectPages(t, label+" paged", base, pageSize, searchPage(db, view, kws))
				testkit.MustEqualResults(t, fmt.Sprintf("%s pages(%d)-vs-search", label, pageSize), ref, paged)

				streamPaged := testkit.CollectPages(t, label+" stream-paged", base, pageSize, streamPage(t, label+" stream-paged", db, view, kws))
				testkit.MustEqualResults(t, fmt.Sprintf("%s stream-pages(%d)-vs-search", label, pageSize), ref, streamPaged)

				// A bounded one-shot search must equal the ranking prefix.
				if k := min(3, len(ref)); k > 0 {
					topK, _, err := db.Search(view, kws, &vxml.Options{Parallelism: par, TopK: k})
					if err != nil {
						t.Fatalf("%s top-%d: %v", label, k, err)
					}
					testkit.MustEqualResults(t, fmt.Sprintf("%s top-%d-vs-prefix", label, k), ref[:k], topK)
				}
			}
		}
	}
	if trial < 40 {
		t.Fatalf("only %d randomized trials, want >= 40", trial)
	}
}

// TestPaginationAcrossCacheHits pins the cache-composability design: every
// page of one query is sliced from the same cached full entry (the unpaged
// TopK=0 key), so paging is byte-identical whether the entry was populated
// by the unpaged search, by the first page, or served hot — and a cached
// streamed run replays the identical page.
func TestPaginationAcrossCacheHits(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	db := testkit.BuildEqCorpus(t, rng, 14)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper", "quartz"}

	ref, _, err := db.Search(view, kws, nil) // uncached reference
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 4 {
		t.Fatalf("corpus too small: %d results", len(ref))
	}

	// Page 2 first: its miss computes and caches the full entry.
	page2, stats, err := db.Search(view, kws, &vxml.Options{Offset: 2, TopK: 2, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Fatal("first paged search cannot be a cache hit")
	}
	testkit.MustEqualResults(t, "page2 cold", ref[2:4], page2)

	// Every other window of the same query must now hit that one entry.
	for _, w := range []struct{ off, k int }{{0, 2}, {2, 2}, {1, 3}, {3, 0}} {
		got, stats, err := db.Search(view, kws, &vxml.Options{Offset: w.off, TopK: w.k, Cache: true})
		if err != nil {
			t.Fatal(err)
		}
		if w.off > 0 && !stats.CacheHit {
			t.Fatalf("window offset=%d top_k=%d missed the shared full entry", w.off, w.k)
		}
		want := ref[w.off:]
		if w.k > 0 && w.k < len(want) {
			want = want[:w.k]
		}
		testkit.MustEqualResults(t, fmt.Sprintf("window offset=%d top_k=%d", w.off, w.k), want, got)

		streamed := testkit.CollectResults(t, "cached stream",
			db.Results(context.Background(), view, kws, &vxml.Options{Offset: w.off, TopK: w.k, Cache: true}))
		testkit.MustEqualResults(t, fmt.Sprintf("cached stream offset=%d top_k=%d", w.off, w.k), want, streamed)
	}

	// The unpaged cached search shares the very same entry.
	full, stats, err := db.Search(view, kws, &vxml.Options{Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("unpaged TopK=0 search missed the entry populated by the paged search")
	}
	testkit.MustEqualResults(t, "unpaged cached", ref, full)
}

// TestStreamingDefersMaterialization verifies the point of the streaming
// API: breaking out of the loop early skips the base-data subtree fetches
// of every unconsumed winner (deferred materialization extended to the
// delivery path).
func TestStreamingDefersMaterialization(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	db := testkit.BuildEqCorpus(t, rng, 16)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper"}
	ref, _, err := db.Search(view, kws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) < 6 {
		t.Fatalf("corpus too small: %d results", len(ref))
	}

	fetchesBefore := db.SubtreeFetches()
	full := testkit.CollectResults(t, "full stream", db.Results(context.Background(), view, kws, nil))
	fullCost := db.SubtreeFetches() - fetchesBefore
	testkit.MustEqualResults(t, "full stream", ref, full)

	fetchesBefore = db.SubtreeFetches()
	var partial []vxml.Result
	for r, err := range db.Results(context.Background(), view, kws, nil) {
		if err != nil {
			t.Fatal(err)
		}
		partial = append(partial, r)
		if len(partial) == 2 {
			break
		}
	}
	partialCost := db.SubtreeFetches() - fetchesBefore
	testkit.MustEqualResults(t, "partial stream prefix", ref[:2], partial)
	if fullCost == 0 {
		t.Fatal("full stream fetched nothing; the view must materialize from base data")
	}
	if partialCost >= fullCost {
		t.Fatalf("early break fetched %d subtrees, full stream %d: materialization was not deferred",
			partialCost, fullCost)
	}

	// An uncached one-shot page ranks only the top Offset+TopK and
	// materializes only its 2-result window — with >= 6 results that is
	// well under half the full run's fetches (prefix skipping included).
	fetchesBefore = db.SubtreeFetches()
	page, _, err := db.Search(view, kws, &vxml.Options{Offset: 1, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	pageCost := db.SubtreeFetches() - fetchesBefore
	testkit.MustEqualResults(t, "uncached page", ref[1:3], page)
	if pageCost > fullCost/2 {
		t.Fatalf("uncached page fetched %d subtrees, full ranking %d: prefix/tail materialization was not skipped",
			pageCost, fullCost)
	}
}
