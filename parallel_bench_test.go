// Benchmarks for the sharded parallel query pipeline: one ranked keyword
// search over a collection view spanning a 120-document corpus, run
// sequentially (Parallelism: 1) and with the worker pool (Parallelism: 0 =
// GOMAXPROCS). Compare with
//
//	go test -bench=ShardedParallel -benchtime=10x
//
// The parallel configuration must return byte-identical results; the
// benchmark asserts that once before measuring.
package vxml

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// buildBenchCorpus loads nDocs synthetic part documents, each with several
// keyword-bearing articles, plus the authors document the join view needs.
func buildBenchCorpus(b *testing.B, nDocs, articlesPerDoc int) *Database {
	b.Helper()
	rng := rand.New(rand.NewSource(4242))
	db := Open()
	for d := 0; d < nDocs; d++ {
		var sb strings.Builder
		sb.WriteString("<books>")
		for a := 0; a < articlesPerDoc; a++ {
			var body strings.Builder
			for w, n := 0, 40+rng.Intn(120); w < n; w++ {
				if w > 0 {
					body.WriteByte(' ')
				}
				body.WriteString(eqVocabulary[rng.Intn(len(eqVocabulary))])
			}
			fmt.Fprintf(&sb,
				`<article><fm><tl>study %d of %s</tl><au>author%d</au><yr>%d</yr></fm><bdy>%s</bdy></article>`,
				d*1000+a, eqVocabulary[rng.Intn(len(eqVocabulary))], rng.Intn(8), 1985+rng.Intn(16), body.String())
		}
		sb.WriteString("</books>")
		db.MustAdd(fmt.Sprintf("part-%03d.xml", d), sb.String())
	}
	var authors strings.Builder
	authors.WriteString("<authors>")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&authors, `<author><name>author%d</name><affil>institute %d</affil></author>`, i, i)
	}
	authors.WriteString("</authors>")
	db.MustAdd("authors.xml", authors.String())
	return db
}

const benchCollectionView = `
for $a in fn:collection("part-*")/books//article
return <rec><t>{$a/fm/tl}</t>,
  {for $u in fn:doc(authors.xml)/authors//author
   where $u/name = $a/fm/au
   return <inst>{$u/affil}</inst>},
  {$a/bdy}</rec>`

// BenchmarkShardedParallelSearch measures the same top-10 ranked search
// over a 120-document collection view at Parallelism 1 (sequential legacy
// path) and Parallelism 0 (worker pool sized by GOMAXPROCS).
func BenchmarkShardedParallelSearch(b *testing.B) {
	db := buildBenchCorpus(b, 120, 8)
	view, err := db.DefineView(benchCollectionView)
	if err != nil {
		b.Fatal(err)
	}
	kws := []string{"copper", "quartz"}
	seq, _, err := db.Search(view, kws, &Options{TopK: 10, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	par, _, err := db.Search(view, kws, &Options{TopK: 10})
	if err != nil {
		b.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) == 0 {
		b.Fatalf("parallel returned %d results, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].XML != par[i].XML || seq[i].Score != par[i].Score {
			b.Fatalf("parallel result %d diverges from sequential", i)
		}
	}
	for name, parallelism := range map[string]int{"sequential": 1, "parallel": 0} {
		b.Run(name, func(b *testing.B) {
			opts := &Options{TopK: 10, Parallelism: parallelism}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Search(view, kws, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
