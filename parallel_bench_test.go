// Benchmarks for the sharded parallel query pipeline: one ranked keyword
// search over a collection view spanning a 120-document corpus, run
// sequentially (Parallelism: 1) and with the worker pool (Parallelism: 0 =
// GOMAXPROCS). Compare with
//
//	go test -bench=ShardedParallel -benchtime=10x
//
// The corpus, view and keywords come from internal/benchkit's collection
// builder — the same shape cmd/vxmlbench measures — so benchmark and
// harness numbers are directly comparable. The parallel configuration must
// return byte-identical results; the benchmark asserts that once before
// measuring.
package vxml_test

import (
	"testing"

	"vxml"
	"vxml/internal/benchkit"
)

// buildBenchCorpus loads the deterministic 120-part collection corpus plus
// the authors document the join view needs.
func buildBenchCorpus(b *testing.B, nDocs, articlesPerDoc int) *vxml.Database {
	b.Helper()
	db := vxml.Open()
	if err := benchkit.BuildCollectionCorpus(db, nDocs, articlesPerDoc, 4242); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkShardedParallelSearch measures the same top-10 ranked search
// over a 120-document collection view at Parallelism 1 (sequential legacy
// path) and Parallelism 0 (worker pool sized by GOMAXPROCS).
func BenchmarkShardedParallelSearch(b *testing.B) {
	db := buildBenchCorpus(b, 120, 8)
	view, err := db.DefineView(benchkit.CollectionView)
	if err != nil {
		b.Fatal(err)
	}
	kws := benchkit.CollectionKeywords()
	seq, _, err := db.Search(view, kws, &vxml.Options{TopK: 10, Parallelism: 1})
	if err != nil {
		b.Fatal(err)
	}
	par, _, err := db.Search(view, kws, &vxml.Options{TopK: 10})
	if err != nil {
		b.Fatal(err)
	}
	if len(seq) != len(par) || len(seq) == 0 {
		b.Fatalf("parallel returned %d results, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].XML != par[i].XML || seq[i].Score != par[i].Score {
			b.Fatalf("parallel result %d diverges from sequential", i)
		}
	}
	for name, parallelism := range map[string]int{"sequential": 1, "parallel": 0} {
		b.Run(name, func(b *testing.B) {
			opts := &vxml.Options{TopK: 10, Parallelism: parallelism}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Search(view, kws, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
