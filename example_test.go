package vxml_test

import (
	"fmt"

	"vxml"
)

// The paper's running example: books joined with reviews on isbn, nested
// under each book, searched for two keywords that no single base element
// contains together.
func Example() {
	db := vxml.Open()
	db.MustAdd("books.xml", `<books>
	  <book><isbn>111</isbn><title>XML Web Services</title><year>2004</year></book>
	  <book><isbn>222</isbn><title>Old Tome</title><year>1990</year></book>
	</books>`)
	db.MustAdd("reviews.xml", `<reviews>
	  <review><isbn>111</isbn><content>all about search</content></review>
	</reviews>`)

	view, err := db.DefineView(`
	  for $book in fn:doc(books.xml)/books//book
	  where $book/year > 1995
	  return <bookrevs>
	           <book>{$book/title}</book>,
	           {for $rev in fn:doc(reviews.xml)/reviews//review
	            where $rev/isbn = $book/isbn
	            return $rev/content}
	         </bookrevs>`)
	if err != nil {
		panic(err)
	}
	results, _, err := db.Search(view, []string{"xml", "search"}, &vxml.Options{TopK: 5})
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("rank %d tf %d/%d\n%s\n", r.Rank, r.TF["xml"], r.TF["search"], r.XML)
	}
	// Output:
	// rank 1 tf 1/1
	// <bookrevs><book><title>XML Web Services</title></book><content>all about search</content></bookrevs>
}

// Queries can also be posed in the paper's Figure-2 form, with the view in
// a let clause and ftcontains supplying the keywords.
func ExampleDatabase_Query() {
	db := vxml.Open()
	db.MustAdd("articles.xml", `<articles>
	  <article><topic>db</topic><body>virtual xml views</body></article>
	  <article><topic>ir</topic><body>ranked keyword search</body></article>
	</articles>`)

	results, _, err := db.Query(`
	  let $view := for $a in fn:doc(articles.xml)/articles//article return $a
	  for $r in $view
	  where $r ftcontains('keyword' & 'search')
	  return $r`, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), "result:", results[0].Snippet)
	// Output:
	// 1 result: ranked keyword search
}
