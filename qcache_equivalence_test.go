package vxml_test

// Property-style equivalence tests for the query-result cache: for
// randomized keyword sets over the benchkit corpus, Search with caching
// enabled must return byte-identical results, scores and rank order to the
// uncached path and to the materialize-then-search Baseline — including
// after the cache is invalidated by a mid-run document Add.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"vxml"
	"vxml/internal/benchkit"
	"vxml/internal/testkit"
)

func TestCacheEquivalenceRandomized(t *testing.T) {
	db, view := testkit.CorpusDB(t, 7)
	rng := rand.New(rand.NewSource(20260730))
	for trial := 0; trial < 12; trial++ {
		kws := testkit.RandomKeywords(rng)
		opts := vxml.Options{TopK: []int{0, 5}[rng.Intn(2)], Disjunctive: rng.Intn(2) == 1}
		label := fmt.Sprintf("trial %d (%v, k=%d, disj=%v)", trial, kws, opts.TopK, opts.Disjunctive)

		uncached := opts
		uncached.Cache = false
		plain, plainStats, err := db.Search(view, kws, &uncached)
		if err != nil {
			t.Fatalf("%s: uncached: %v", label, err)
		}
		if plainStats.CacheHit {
			t.Fatalf("%s: uncached search reported a cache hit", label)
		}

		cached := opts
		cached.Cache = true
		cold, coldStats, err := db.Search(view, kws, &cached)
		if err != nil {
			t.Fatalf("%s: cache miss path: %v", label, err)
		}
		if coldStats.CacheHit {
			t.Fatalf("%s: first cached search cannot hit", label)
		}
		warm, warmStats, err := db.Search(view, kws, &cached)
		if err != nil {
			t.Fatalf("%s: cache hit path: %v", label, err)
		}
		if !warmStats.CacheHit {
			t.Fatalf("%s: repeated identical search missed the cache", label)
		}

		if a, b := testkit.RenderResults(plain), testkit.RenderResults(cold); a != b {
			t.Fatalf("%s: uncached vs cache-miss results differ", label)
		}
		if a, b := testkit.RenderResults(plain), testkit.RenderResults(warm); a != b {
			t.Fatalf("%s: uncached vs cache-hit results differ", label)
		}
		if !testkit.SameTF(plain, warm) || !testkit.SameTF(plain, cold) {
			t.Fatalf("%s: TF maps differ between cached and uncached paths", label)
		}

		// Theorem 4.1 transitivity: the cached response also matches the
		// materialize-then-search Baseline (which computes no snippets, so
		// compare ranks, scores and XML only).
		basOpts := opts
		basOpts.Approach = vxml.Baseline
		bas, _, err := db.Search(view, kws, &basOpts)
		if err != nil {
			t.Fatalf("%s: baseline: %v", label, err)
		}
		if len(bas) != len(warm) {
			t.Fatalf("%s: baseline %d results, cached %d", label, len(bas), len(warm))
		}
		for i := range bas {
			if bas[i].Rank != warm[i].Rank {
				t.Fatalf("%s: rank[%d] baseline %d vs cached %d", label, i, bas[i].Rank, warm[i].Rank)
			}
			if math.Abs(bas[i].Score-warm[i].Score) > 1e-9 {
				t.Fatalf("%s: score[%d] baseline %v vs cached %v", label, i, bas[i].Score, warm[i].Score)
			}
			if bas[i].XML != warm[i].XML {
				t.Fatalf("%s: xml[%d] differs between baseline and cached", label, i)
			}
		}
	}
	if cs := db.CacheStats(); cs.Hits == 0 || cs.Misses == 0 {
		t.Errorf("cache counters not exercised: %+v", cs)
	}
}

func TestCacheInvalidationOnMidRunAdd(t *testing.T) {
	db, view := testkit.CorpusDB(t, 11)
	kws := []string{"data", "system"}
	opts := &vxml.Options{TopK: 5, Cache: true}

	before, _, err := db.Search(view, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := db.Search(view, kws, opts); err != nil || !st.CacheHit {
		t.Fatalf("warm search: err=%v, hit=%v", err, st.CacheHit)
	}

	// A mid-run ingest must expire the entry even though the view does not
	// reference the new document.
	db.MustAdd("midrun.xml", "<extra><t>data system filler</t></extra>")
	after, afterStats, err := db.Search(view, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if afterStats.CacheHit {
		t.Fatal("search after Add served a stale cache entry")
	}
	if a, b := testkit.RenderResults(before), testkit.RenderResults(after); a != b {
		t.Fatal("results changed across an Add that does not affect the view")
	}
	// And the recomputed entry is served on the next repeat.
	if _, st, err := db.Search(view, kws, opts); err != nil || !st.CacheHit {
		t.Fatalf("re-warmed search: err=%v, hit=%v", err, st.CacheHit)
	}
	cs := db.CacheStats()
	if cs.Invalidations == 0 {
		t.Errorf("no invalidations recorded: %+v", cs)
	}
}

// TestCacheHitRespectsCallerKeywordForm checks that a cache hit produced by
// one caller's keyword casing is re-expressed in another caller's casing:
// both must see exactly what the uncached path would have returned to them.
func TestCacheHitRespectsCallerKeywordForm(t *testing.T) {
	db, view := testkit.CorpusDB(t, 7)
	opts := &vxml.Options{TopK: 3, Cache: true}
	upper, _, err := db.Search(view, []string{"DATA", " System "}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(upper) == 0 {
		t.Fatal("no results to compare")
	}
	lower, st, err := db.Search(view, []string{"data", "system"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Fatal("differently-cased identical keyword set missed the cache")
	}
	plain, _, err := db.Search(view, []string{"data", "system"}, &vxml.Options{TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lower {
		for _, k := range []string{"data", "system"} {
			if lower[i].TF[k] != plain[i].TF[k] {
				t.Errorf("result %d: TF[%q] = %d from cache, %d uncached", i, k, lower[i].TF[k], plain[i].TF[k])
			}
		}
		if _, leaked := lower[i].TF["DATA"]; leaked {
			t.Errorf("result %d: cache hit leaked the inserting caller's keyword casing", i)
		}
		if upper[i].TF["DATA"] != plain[i].TF["data"] {
			t.Errorf("result %d: original caller's TF[DATA] = %d, want %d", i, upper[i].TF["DATA"], plain[i].TF["data"])
		}
	}
}

// TestCacheHitEquivalentUnderKeywordPermutation: a permutation of a cached
// keyword set hits the same entry, and what it gets back is byte-identical
// (XML, snippets, scores, ranks) to what the uncached path would return for
// the permuted order.
func TestCacheHitEquivalentUnderKeywordPermutation(t *testing.T) {
	db, view := testkit.CorpusDB(t, 7)
	fwd := []string{"system", "data"}
	rev := []string{"data", "system"}
	opts := &vxml.Options{TopK: 5, Cache: true}

	if _, _, err := db.Search(view, fwd, opts); err != nil {
		t.Fatal(err)
	}
	hit, st, err := db.Search(view, rev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Fatal("permuted keyword set missed the cache")
	}
	cold, _, err := db.Search(view, rev, &vxml.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := testkit.RenderResults(hit), testkit.RenderResults(cold); a != b {
		t.Errorf("permuted cache hit differs from the uncached permuted search:\n%s\n-- vs --\n%s", a, b)
	}
	if !testkit.SameTF(hit, cold) {
		t.Error("TF maps differ between permuted cache hit and uncached search")
	}
}

// TestConcurrentCachedSearchAndAdd hammers cached and uncached searches
// against interleaved Adds of documents the view does not reference. Those
// Adds invalidate the cache but cannot change the view's results, so every
// response — hit, miss, or mid-ingest — must stay byte-identical to the
// pre-run truth; under -race this also exercises the lock-free
// Gen/compute/PutAt cache path against concurrent Invalidate.
func TestConcurrentCachedSearchAndAdd(t *testing.T) {
	db, view := testkit.CorpusDB(t, 17)
	kws := []string{"data", "system"}
	opts := &vxml.Options{TopK: 5}
	truthResults, _, err := db.Search(view, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := testkit.RenderResults(truthResults)

	const searchers, iters, adds = 4, 25, 20
	var wg sync.WaitGroup
	errs := make(chan error, searchers*iters+adds)
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				o := *opts
				o.Cache = i%2 == 0
				got, _, err := db.Search(view, kws, &o)
				if err != nil {
					errs <- fmt.Errorf("searcher %d iter %d: %w", g, i, err)
					return
				}
				if testkit.RenderResults(got) != truth {
					errs <- fmt.Errorf("searcher %d iter %d (cache=%v): results diverged from truth", g, i, o.Cache)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < adds; i++ {
			name := fmt.Sprintf("unrelated-%d.xml", i)
			if err := db.Add(name, "<extra><t>data system filler</t></extra>"); err != nil {
				errs <- fmt.Errorf("add %s: %w", name, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every Add invalidated; once the dust settles the cache re-warms and
	// still serves the unchanged truth.
	if cs := db.CacheStats(); cs.Invalidations < adds {
		t.Errorf("Invalidations = %d, want >= %d", cs.Invalidations, adds)
	}
	if _, _, err := db.Search(view, kws, &vxml.Options{TopK: 5, Cache: true}); err != nil {
		t.Fatal(err)
	}
	warm, st, err := db.Search(view, kws, &vxml.Options{TopK: 5, Cache: true})
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Error("post-run repeated search missed the cache")
	}
	if testkit.RenderResults(warm) != truth {
		t.Error("post-run cached results diverged from truth")
	}
}

// TestCacheIsolation ensures a caller mutating returned results cannot
// poison the cache for later callers.
func TestCacheIsolation(t *testing.T) {
	db, view := testkit.CorpusDB(t, 13)
	kws := []string{"data"}
	opts := &vxml.Options{TopK: 3, Cache: true}
	first, _, err := db.Search(view, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Skip("no results for corpus seed; nothing to mutate")
	}
	want := testkit.RenderResults(first)
	wantTF := first[0].TF["data"]
	first[0].XML = "mutated"
	first[0].TF["data"] = -999

	again, st, err := db.Search(view, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !st.CacheHit {
		t.Fatal("expected a cache hit")
	}
	if testkit.RenderResults(again) != want {
		t.Error("caller mutation leaked into the cache")
	}
	if again[0].TF["data"] != wantTF {
		t.Error("caller TF-map mutation leaked into the cache")
	}
}

// TestQueryCacheEquivalence: the Query entry point consults the cache on the
// verbatim query text before parsing or QPT generation; a warm hit must be
// byte-identical to the cold and uncached paths, survive caller mutation,
// and be invalidated by an ingest.
func TestQueryCacheEquivalence(t *testing.T) {
	db, _ := testkit.CorpusDB(t, 7)
	p := benchkit.Default()
	p.UnitBytes = 16 << 10
	p.SizeUnits = 2
	p.Seed = 7
	full := "let $view := " + p.ViewText() + "\nfor $r in $view\nwhere $r ftcontains('data' & 'system')\nreturn $r"

	plain, plainStats, err := db.Query(full, &vxml.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if plainStats.CacheHit {
		t.Fatal("uncached Query reported a cache hit")
	}
	opts := &vxml.Options{TopK: 5, Cache: true}
	cold, coldStats, err := db.Query(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheHit {
		t.Fatal("first cached Query cannot hit")
	}
	warm, warmStats, err := db.Query(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.CacheHit {
		t.Fatal("repeated identical Query missed the cache")
	}
	if a, b := testkit.RenderResults(plain), testkit.RenderResults(warm); a != b {
		t.Fatal("uncached vs cache-hit Query results differ")
	}
	if testkit.RenderResults(cold) != testkit.RenderResults(warm) || !testkit.SameTF(plain, warm) || !testkit.SameTF(cold, warm) {
		t.Fatal("cold vs warm Query results differ")
	}

	// A hit's values are copies: caller mutation must not leak into the cache.
	if len(warm) > 0 {
		warm[0].XML = "mutated"
		for k := range warm[0].TF {
			warm[0].TF[k] = -1
		}
		again, st, err := db.Query(full, opts)
		if err != nil || !st.CacheHit {
			t.Fatalf("expected a cache hit after mutation probe: %v", err)
		}
		if testkit.RenderResults(again) != testkit.RenderResults(plain) || !testkit.SameTF(again, plain) {
			t.Error("caller mutation leaked into the Query cache entry")
		}
	}

	// An ingest invalidates the text-keyed entry like any other.
	db.MustAdd("query-extra.xml", "<article><title>data system data</title></article>")
	after, afterStats, err := db.Query(full, opts)
	if err != nil {
		t.Fatal(err)
	}
	if afterStats.CacheHit {
		t.Fatal("Query cache served a stale entry after an ingest")
	}
	fresh, _, err := db.Query(full, &vxml.Options{TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if testkit.RenderResults(after) != testkit.RenderResults(fresh) {
		t.Fatal("post-invalidation Query differs from the uncached path")
	}
}
