// Command benchrunner regenerates the tables and figures of the paper's
// evaluation section (§5) as text tables.
//
// Usage:
//
//	benchrunner -fig all                 # every figure at default scale
//	benchrunner -fig 13 -unit 2097152    # Figure 13 with 2MB units
//	benchrunner -fig params              # Table 1
//
// One paper data unit (100MB) maps to -unit bytes (default 1MB), keeping
// the sweeps' shape at laptop scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vxml/internal/benchkit"
)

func main() {
	fig := flag.String("fig", "all", "figure to run: params, 13..21, or all")
	unit := flag.Int("unit", 1<<20, "bytes per data unit (the paper's 100MB)")
	seed := flag.Int64("seed", 42, "data generation seed")
	flag.Parse()

	base := benchkit.Default()
	base.UnitBytes = *unit
	base.Seed = *seed

	runners := map[string]func() (*benchkit.Table, error){
		"13": func() (*benchkit.Table, error) { return benchkit.Fig13(base, nil) },
		"14": func() (*benchkit.Table, error) { return benchkit.Fig14(base, nil) },
		"15": func() (*benchkit.Table, error) { return benchkit.Fig15(base) },
		"16": func() (*benchkit.Table, error) { return benchkit.Fig16(base) },
		"17": func() (*benchkit.Table, error) { return benchkit.Fig17(base) },
		"18": func() (*benchkit.Table, error) { return benchkit.Fig18(base) },
		"19": func() (*benchkit.Table, error) { return benchkit.Fig19(base) },
		"20": func() (*benchkit.Table, error) { return benchkit.Fig20(base) },
		"21": func() (*benchkit.Table, error) { return benchkit.Fig21(base) },
	}
	order := []string{"13", "14", "15", "16", "17", "18", "19", "20", "21"}

	which := strings.ToLower(*fig)
	if which == "params" || which == "all" {
		fmt.Println(benchkit.ParamsTable().Render())
		if which == "params" {
			return
		}
	}
	var selected []string
	if which == "all" {
		selected = order
	} else {
		if _, ok := runners[which]; !ok {
			fmt.Fprintf(os.Stderr, "benchrunner: unknown figure %q (use params, 13..21, all)\n", *fig)
			os.Exit(2)
		}
		selected = []string{which}
	}
	for _, name := range selected {
		table, err := runners[name]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(table.Render())
	}
}
