// Command inexgen writes the synthetic INEX-like corpus (and its auxiliary
// joinable documents) to XML files, for inspection or for loading with
// vxmlsearch.
//
//	inexgen -out ./data -bytes 1048576 -seed 42 -partitions 1 -elemsize 1
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vxml/internal/inex"
	"vxml/internal/store"
)

func main() {
	out := flag.String("out", ".", "output directory")
	bytes := flag.Int("bytes", 1<<20, "approximate size of inex.xml")
	seed := flag.Int64("seed", 42, "generation seed")
	partitions := flag.Int("partitions", 1, "join-selectivity partitions (1 = the paper's 1X)")
	elemSize := flag.Int("elemsize", 1, "article body size multiplier (1-5)")
	flag.Parse()

	corpus := inex.Generate(inex.Options{
		TargetBytes: *bytes,
		Seed:        *seed,
		Partitions:  *partitions,
		ElemSizeX:   *elemSize,
	})
	st := store.New()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatalf("%v", err)
	}
	for _, doc := range corpus.Docs() {
		st.AddParsed(doc) // assigns IDs and computes sizes
		path := filepath.Join(*out, doc.Name)
		f, err := os.Create(path)
		if err != nil {
			fatalf("creating %s: %v", path, err)
		}
		if err := doc.Root.WriteXML(f, "  "); err != nil {
			fatalf("writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			fatalf("closing %s: %v", path, err)
		}
		stats := doc.ComputeStats()
		fmt.Printf("%-16s %8d elements %10d bytes depth %d\n",
			doc.Name, stats.Elements, stats.Bytes, stats.MaxDepth)
	}
	fmt.Printf("%d articles, %d authors\n", corpus.ArticleCount, corpus.AuthorCount)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "inexgen: "+format+"\n", args...)
	os.Exit(1)
}
