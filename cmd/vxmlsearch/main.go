// Command vxmlsearch runs ranked keyword search over a virtual XML view.
//
// Documents are loaded from XML files; the view definition comes from a
// file or from -view; keywords come from -q. Alternatively, -query runs a
// complete Figure-2 style query (let $view := ... for $r in $view where $r
// ftcontains('k1' & 'k2') return $r).
//
// Examples:
//
//	vxmlsearch -doc books.xml -doc reviews.xml -viewfile view.xq -q "xml,search"
//	vxmlsearch -doc books.xml -doc reviews.xml -queryfile query.xq
//	vxmlsearch -demo -q "xml,search"       # built-in books & reviews demo
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vxml"
	"vxml/internal/inex"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var docs stringList
	flag.Var(&docs, "doc", "XML document file to load (repeatable); referenced in views by base name")
	viewText := flag.String("view", "", "view definition (XQuery text)")
	viewFile := flag.String("viewfile", "", "file containing the view definition")
	queryText := flag.String("query", "", "complete keyword query (Figure-2 style)")
	queryFile := flag.String("queryfile", "", "file containing the complete keyword query")
	keywords := flag.String("q", "", "comma-separated keywords")
	topK := flag.Int("k", 10, "number of results (0 = all)")
	disjunctive := flag.Bool("any", false, "match any keyword instead of all")
	parallel := flag.Int("parallel", 0, "search worker pool size (0 = all CPUs, 1 = sequential)")
	approach := flag.String("approach", "efficient", "pipeline: efficient, baseline, gtp")
	demo := flag.Bool("demo", false, "load a generated books/reviews demo corpus")
	showStats := flag.Bool("stats", true, "print per-phase statistics")
	explain := flag.Bool("explain", false, "print the query plan (QPTs and index probes) before searching")
	flag.Parse()

	db := vxml.Open()
	if *demo {
		booksXML, reviewsXML := inex.GenerateBooksReviews(200, 7)
		db.MustAdd("books.xml", booksXML)
		db.MustAdd("reviews.xml", reviewsXML)
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("reading %s: %v", path, err)
		}
		if err := db.Add(filepath.Base(path), string(data)); err != nil {
			fatalf("loading %s: %v", path, err)
		}
	}
	if len(db.DocumentNames()) == 0 {
		fatalf("no documents loaded; use -doc or -demo")
	}

	opts := &vxml.Options{TopK: *topK, Disjunctive: *disjunctive, Parallelism: *parallel}
	switch strings.ToLower(*approach) {
	case "efficient":
		opts.Approach = vxml.Efficient
	case "baseline":
		opts.Approach = vxml.Baseline
	case "gtp":
		opts.Approach = vxml.GTPTermJoin
	default:
		fatalf("unknown approach %q", *approach)
	}

	var (
		results []vxml.Result
		stats   *vxml.Stats
		err     error
	)
	switch {
	case *queryText != "" || *queryFile != "":
		query := *queryText
		if *queryFile != "" {
			data, err := os.ReadFile(*queryFile)
			if err != nil {
				fatalf("reading %s: %v", *queryFile, err)
			}
			query = string(data)
		}
		results, stats, err = db.Query(query, opts)
	default:
		text := *viewText
		if *viewFile != "" {
			data, err := os.ReadFile(*viewFile)
			if err != nil {
				fatalf("reading %s: %v", *viewFile, err)
			}
			text = string(data)
		}
		if text == "" && *demo {
			text = demoView
		}
		if text == "" {
			fatalf("no view; use -view, -viewfile, -query or -queryfile")
		}
		if *keywords == "" {
			fatalf("no keywords; use -q k1,k2")
		}
		view, verr := db.DefineView(text)
		if verr != nil {
			fatalf("compiling view: %v", verr)
		}
		kws := strings.Split(*keywords, ",")
		if *explain {
			fmt.Println(db.Explain(view, kws))
		}
		results, stats, err = db.Search(view, kws, opts)
	}
	if err != nil {
		fatalf("search: %v", err)
	}

	for _, r := range results {
		fmt.Printf("-- rank %d  score %.4f  tf %v\n", r.Rank, r.Score, r.TF)
		if r.Snippet != "" {
			fmt.Printf("   «%s»\n", r.Snippet)
		}
		fmt.Println(r.XML)
	}
	if *showStats {
		fmt.Printf("\n%d/%d view results matched; PDT %v (%d nodes), eval %v, post %v, total %v; base fetches %d\n",
			stats.Matched, stats.ViewSize, stats.PDTTime, stats.PDTNodes,
			stats.EvalTime, stats.PostTime, stats.Total, stats.BaseData)
	}
}

const demoView = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vxmlsearch: "+format+"\n", args...)
	os.Exit(1)
}
