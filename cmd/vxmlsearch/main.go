// Command vxmlsearch runs ranked keyword search over a virtual XML view.
//
// Documents are loaded from XML files; the view definition comes from a
// file or from -view; keywords come from -q. Alternatively, -query runs a
// complete Figure-2 style query (let $view := ... for $r in $view where $r
// ftcontains('k1' & 'k2') return $r).
//
// The search runs under a context canceled by Ctrl-C (and bounded by
// -timeout), so an interrupted run exits promptly with "search canceled"
// instead of finishing the query. -offset pages through the ranking and
// -stream prints each result as the pipeline yields it (winners are
// materialized one at a time, so output starts before the search "ends").
//
// After loading, -replace name=file swaps a document's content and -delete
// name removes one, so a search can be run against a mutated corpus (views
// are virtual: results always reflect the corpus as mutated).
//
// Examples:
//
//	vxmlsearch -doc books.xml -doc reviews.xml -viewfile view.xq -q "xml,search"
//	vxmlsearch -doc books.xml -doc reviews.xml -queryfile query.xq
//	vxmlsearch -demo -q "xml,search"       # built-in books & reviews demo
//	vxmlsearch -demo -q "xml" -k 5 -offset 5    # the second page of five
//	vxmlsearch -demo -q "xml" -stream -timeout 2s
//	vxmlsearch -doc books.xml -replace books.xml=newbooks.xml -view ... -q xml
//	vxmlsearch -demo -delete reviews.xml -q "xml,search"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"vxml"
	"vxml/internal/inex"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var docs, replacements, deletions stringList
	flag.Var(&docs, "doc", "XML document file to load (repeatable); referenced in views by base name")
	flag.Var(&replacements, "replace", "after loading, replace document name with the file's content, as name=file (repeatable)")
	flag.Var(&deletions, "delete", "after loading (and any -replace), delete the named document (repeatable)")
	viewText := flag.String("view", "", "view definition (XQuery text)")
	viewFile := flag.String("viewfile", "", "file containing the view definition")
	queryText := flag.String("query", "", "complete keyword query (Figure-2 style)")
	queryFile := flag.String("queryfile", "", "file containing the complete keyword query")
	keywords := flag.String("q", "", "comma-separated keywords")
	topK := flag.Int("k", 10, "number of results (0 = all)")
	offset := flag.Int("offset", 0, "skip this many leading ranked results (pagination)")
	disjunctive := flag.Bool("any", false, "match any keyword instead of all")
	parallel := flag.Int("parallel", 0, "search worker pool size (0 = all CPUs, 1 = sequential)")
	approach := flag.String("approach", "efficient", "pipeline: efficient, baseline, gtp")
	demo := flag.Bool("demo", false, "load a generated books/reviews demo corpus")
	showStats := flag.Bool("stats", true, "print per-phase statistics")
	stream := flag.Bool("stream", false, "print results as the pipeline yields them (no stats)")
	timeout := flag.Duration("timeout", 0, "abort the search after this long (0 = no deadline)")
	explain := flag.Bool("explain", false, "print the query plan (QPTs and index probes) before searching")
	flag.Parse()

	// Ctrl-C cancels the in-flight search instead of killing the process
	// mid-write; a -timeout bounds it the same way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	db := vxml.Open()
	if *demo {
		booksXML, reviewsXML := inex.GenerateBooksReviews(200, 7)
		db.MustAdd("books.xml", booksXML)
		db.MustAdd("reviews.xml", reviewsXML)
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("reading %s: %v", path, err)
		}
		if err := db.Add(filepath.Base(path), string(data)); err != nil {
			fatalf("loading %s: %v", path, err)
		}
	}
	if len(db.DocumentNames()) == 0 {
		fatalf("no documents loaded; use -doc or -demo")
	}
	for _, spec := range replacements {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fatalf("bad -replace %q; want name=file", spec)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			fatalf("reading %s: %v", path, err)
		}
		if err := db.Replace(name, string(data)); err != nil {
			fatalf("replacing %s: %v", name, err)
		}
	}
	for _, name := range deletions {
		if err := db.Delete(name); err != nil {
			fatalf("deleting %s: %v", name, err)
		}
	}

	opts := &vxml.Options{TopK: *topK, Offset: *offset, Disjunctive: *disjunctive, Parallelism: *parallel}
	switch strings.ToLower(*approach) {
	case "efficient":
		opts.Approach = vxml.Efficient
	case "baseline":
		opts.Approach = vxml.Baseline
	case "gtp":
		opts.Approach = vxml.GTPTermJoin
	default:
		fatalf("unknown approach %q", *approach)
	}

	var (
		results []vxml.Result
		stats   *vxml.Stats
		err     error
	)
	switch {
	case *queryText != "" || *queryFile != "":
		if *stream {
			fatalf("-stream works with -view/-viewfile/-demo searches, not -query/-queryfile")
		}
		query := *queryText
		if *queryFile != "" {
			data, err := os.ReadFile(*queryFile)
			if err != nil {
				fatalf("reading %s: %v", *queryFile, err)
			}
			query = string(data)
		}
		results, stats, err = db.QueryContext(ctx, query, opts)
	default:
		text := *viewText
		if *viewFile != "" {
			data, err := os.ReadFile(*viewFile)
			if err != nil {
				fatalf("reading %s: %v", *viewFile, err)
			}
			text = string(data)
		}
		if text == "" && *demo {
			text = demoView
		}
		if text == "" {
			fatalf("no view; use -view, -viewfile, -query or -queryfile")
		}
		if *keywords == "" {
			fatalf("no keywords; use -q k1,k2")
		}
		view, verr := db.DefineViewContext(ctx, text)
		if verr != nil {
			fatalf("compiling view: %v", verr)
		}
		kws := strings.Split(*keywords, ",")
		if *explain {
			fmt.Println(db.Explain(view, kws))
		}
		if *stream {
			for r, serr := range db.Results(ctx, view, kws, opts) {
				if serr != nil {
					fatalSearch(serr)
				}
				printResult(r)
			}
			return
		}
		results, stats, err = db.SearchContext(ctx, view, kws, opts)
	}
	if err != nil {
		fatalSearch(err)
	}

	for _, r := range results {
		printResult(r)
	}
	if *showStats {
		fmt.Printf("\n%d/%d view results matched; PDT %v (%d nodes), eval %v, post %v, total %v; base fetches %d\n",
			stats.Matched, stats.ViewSize, stats.PDTTime, stats.PDTNodes,
			stats.EvalTime, stats.PostTime, stats.Total, stats.BaseData)
	}
}

func printResult(r vxml.Result) {
	fmt.Printf("-- rank %d  score %.4f  tf %v\n", r.Rank, r.Score, r.TF)
	if r.Snippet != "" {
		fmt.Printf("   «%s»\n", r.Snippet)
	}
	fmt.Println(r.XML)
}

// fatalSearch distinguishes interruption from failure in the exit message.
func fatalSearch(err error) {
	switch {
	case errors.Is(err, context.Canceled):
		fatalf("search canceled")
	case errors.Is(err, context.DeadlineExceeded):
		fatalf("search timed out (%v)", err)
	default:
		fatalf("search: %v", err)
	}
}

const demoView = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vxmlsearch: "+format+"\n", args...)
	os.Exit(1)
}
