// Command vxmlbench is the repository's reproducible performance harness:
// it drives the internal/benchkit workloads — the paper's figures 13-21
// plus post-paper scenarios (parallelism sweep, concurrent throughput,
// mutation mix, cache hit/miss, streaming early break, allocation hot
// paths) — over synthetic corpora at a chosen scale, and writes a
// schema-versioned machine-readable report.
//
// Usage:
//
//	vxmlbench                              # all scenarios, small profile -> BENCH_5.json
//	vxmlbench -profile tiny -out /tmp/b.json
//	vxmlbench -scenarios fig13_approaches,cache_hit_miss
//	vxmlbench -list                        # print the scenario catalog
//	vxmlbench -validate BENCH_5.json       # schema-check an existing report
//
// The emitted JSON (see internal/benchkit.Report) carries per-scenario
// ns/op, allocs/op, bytes/op, base-data bytes fetched, index probes,
// speedup ratios and host metadata; the file is validated against its
// schema before it is written, and CI regenerates and re-validates a tiny
// profile on every push. docs/BENCHMARKS.md documents the methodology and
// the scenario-to-figure mapping.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vxml/internal/benchkit"
)

func main() {
	profile := flag.String("profile", "small", "scale preset: tiny, small, medium or large")
	out := flag.String("out", "BENCH_5.json", "output path for the JSON report")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario names, or 'all'")
	seed := flag.Int64("seed", 42, "data generation seed")
	budget := flag.Duration("budget", 0, "override the per-point measurement budget (0 = profile default)")
	list := flag.Bool("list", false, "print the scenario catalog and exit")
	validate := flag.String("validate", "", "validate an existing report file and exit")
	flag.Parse()

	if *list {
		fmt.Printf("%-24s %-6s %s\n", "NAME", "FIGURE", "DESCRIPTION")
		for _, def := range benchkit.ScenarioCatalog() {
			fig := def.Figure
			if fig == "" {
				fig = "-"
			}
			fmt.Printf("%-24s %-6s %s\n", def.Name, fig, def.Description)
		}
		return
	}
	if *validate != "" {
		if err := benchkit.ValidateFile(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "vxmlbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *validate, benchkit.SchemaVersion)
		return
	}

	prof, err := benchkit.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vxmlbench: %v\n", err)
		os.Exit(2)
	}
	if *budget > 0 {
		prof.Budget = *budget
	}
	var names []string
	if s := strings.TrimSpace(*scenarios); s != "" && s != "all" {
		for _, n := range strings.Split(s, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
	}

	cfg := benchkit.Config{Profile: prof, Seed: *seed}
	start := time.Now()
	fmt.Printf("vxmlbench: profile=%s seed=%d budget=%s\n", prof.Name, *seed, prof.Budget)
	report, err := benchkit.RunReport(cfg, names)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vxmlbench: %v\n", err)
		os.Exit(1)
	}
	if err := report.WriteFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "vxmlbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("vxmlbench: %d scenarios -> %s (%.1fs)\n",
		len(report.Scenarios), *out, time.Since(start).Seconds())
	for _, s := range report.Scenarios {
		fmt.Printf("  %-24s %d rows\n", s.Name, len(s.Rows))
	}
}
