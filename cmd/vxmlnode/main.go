// Command vxmlnode runs one cluster member: a full search engine over its
// slice of the corpus, speaking the vxmlcluster/1 RPC protocol (rank,
// materialize, search, mutations, snapshot) under /cluster/v1. Nodes hold
// no cluster-global state — document placement, generation vectors and the
// view registry live on the coordinator (vxmlcoord), which is also the only
// intended client of this process.
//
// A node starts empty at generation zero, or bootstraps as a read replica
// from another node's consistent snapshot with -bootstrap-from. The process
// drains in-flight requests and exits cleanly on SIGINT/SIGTERM.
//
// Examples:
//
//	vxmlnode -addr :8351
//	vxmlnode -addr :8361 -bootstrap-from http://localhost:8351
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vxml/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8351", "listen address")
	bootstrapFrom := flag.String("bootstrap-from", "", "base URL of a node to bootstrap this one from (snapshot shipping; replica starts at the snapshot's generation)")
	diskDir := flag.String("disk", "", "keep this node's corpus slice in a disk-resident store at this directory (created if absent; survives restarts)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "maximum time to drain in-flight requests on shutdown")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var node *cluster.Node
	switch {
	case *bootstrapFrom != "":
		if *diskDir != "" {
			log.Fatalf("-disk and -bootstrap-from are mutually exclusive: a bootstrap adopts the primary's backend from the snapshot itself")
		}
		n, err := cluster.NewNodeFromSnapshot(ctx, nil, *bootstrapFrom)
		if err != nil {
			log.Fatalf("bootstrapping from %s: %v", *bootstrapFrom, err)
		}
		log.Printf("bootstrapped %d document(s) at generation %d from %s", n.Documents(), n.Gen(), *bootstrapFrom)
		node = n
	case *diskDir != "":
		n, err := cluster.NewDiskNode(*diskDir)
		if err != nil {
			log.Fatalf("opening disk corpus %s: %v", *diskDir, err)
		}
		log.Printf("disk corpus %s: %d document(s)", *diskDir, n.Documents())
		node = n
	default:
		node = cluster.NewNode()
	}
	defer node.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           node.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Same bounds as the public server: documents up to the 64MB body
		// cap must fit, streamed rank/materialize replies must not be cut
		// short by an aggressive write timeout.
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vxmlnode listening on %s (%d documents, generation %d)", *addr, node.Documents(), node.Gen())
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shutting down, draining for up to %s", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			os.Exit(1)
		}
		log.Printf("bye")
	}
}
