// Command vxmlcoord serves the public /v1 search API over a cluster of
// vxmlnode processes: it owns the cluster-global state (document registry
// and placement, generation vector, view registry, query-result cache),
// routes mutations to each partition's primary, and answers searches by
// scatter-gathering over the nodes — results are byte-identical to a
// single-process vxmlserve holding the same corpus.
//
// Topology comes from repeated -slot flags, one per corpus partition, each
// listing the slot's member base URLs comma-separated with the primary
// first and read replicas after:
//
//	vxmlcoord -addr :8344 \
//	  -slot http://localhost:8351 \
//	  -slot http://localhost:8352,http://localhost:8362
//
// Document names matching a -partition pattern (default part-*) hash across
// slots; all other documents are broadcast to every slot, so views may join
// partitioned documents against broadcast ones. Nodes must start empty (or
// be bootstrapped consistently via vxmlnode -bootstrap-from); the
// coordinator assumes generation zero everywhere at startup.
//
// Degraded mode: when a slot stays unreachable through failover and
// retries, searches return the surviving partitions' results with HTTP 502
// and per-node status under stats.nodes — a lost node is always an explicit
// error, never a silently smaller result set. The process drains in-flight
// requests and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vxml/internal/cluster"
	"vxml/internal/inex"
	"vxml/internal/server"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// demoView is the view registered under the name "demo" by -demo — the same
// books & reviews join vxmlserve's demo mode registers, so a coordinator
// answers the demo workload byte-identically to a single-process server.
const demoView = `
for $book in fn:doc(books.xml)/books//book
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func main() {
	var slots stringList
	var partitions stringList
	flag.Var(&slots, "slot", "one corpus partition's member base URLs, comma-separated, primary first (repeatable; at least one required)")
	flag.Var(&partitions, "partition", "document-name pattern that hash-partitions across slots (repeatable; default part-*); non-matching names broadcast to every slot")
	addr := flag.String("addr", ":8344", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-node RPC timeout")
	retries := flag.Int("retries", 1, "extra attempts per member after a transport failure")
	demo := flag.Bool("demo", false, "load the generated books/reviews corpus through the cluster and register a 'demo' view")
	readonly := flag.Bool("readonly", false, "disable the corpus-mutating routes (POST/PUT/DELETE under /documents answer 403)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "maximum time to drain in-flight requests on shutdown")
	flag.Parse()

	cfg := cluster.Config{Timeout: *timeout, Retries: *retries}
	for _, s := range slots {
		var members []string
		for _, m := range strings.Split(s, ",") {
			if m = strings.TrimSpace(m); m != "" {
				members = append(members, strings.TrimRight(m, "/"))
			}
		}
		cfg.Slots = append(cfg.Slots, members)
	}
	if len(partitions) > 0 {
		cfg.Partition = partitions
	}
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		log.Fatalf("configuring cluster: %v (give at least one -slot URL)", err)
	}

	srv := server.NewCluster(coord)
	srv.SetReadOnly(*readonly)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *demo {
		booksXML, reviewsXML := inex.GenerateBooksReviews(200, 7)
		if err := coord.AddDocument(ctx, "books.xml", booksXML); err != nil {
			log.Fatalf("loading demo corpus: %v", err)
		}
		if err := coord.AddDocument(ctx, "reviews.xml", reviewsXML); err != nil {
			log.Fatalf("loading demo corpus: %v", err)
		}
		if err := srv.DefineView("demo", demoView); err != nil {
			log.Fatalf("registering demo view: %v", err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vxmlcoord listening on %s (%d slot(s))", *addr, len(cfg.Slots))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shutting down, draining for up to %s", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			os.Exit(1)
		}
		log.Printf("bye")
	}
}
