// Command vxmlload is the traffic-shaped load and soak harness: it reads
// a declarative scenario spec (internal/loadkit), drives it against a
// real vxml HTTP server — a self-served one by default, or an externally
// booted one via -target — and writes a schema-versioned vxmlload/1
// report with per-phase latency quantiles, sustained QPS, an error
// taxonomy, goroutine/heap ceilings and (in soak mode) oracle
// byte-identity results.
//
// Usage:
//
//	vxmlload -spec scenarios/steady-read.json            # self-serve -> BENCH_LOAD_steady-read.json
//	vxmlload -spec scenarios/mutation-soak.json -out /tmp/soak.json
//	vxmlload -spec scenarios/steady-read.json -target http://localhost:8344
//	vxmlload -spec scenarios/steady-read.json -duration-scale 0.3 -rate-scale 0.3
//	vxmlload -validate BENCH_LOAD_steady-read.json       # schema-check an existing report
//
// The exit status is the verdict: 0 for a clean run, 1 when the report
// records serving failures (5xx responses, transport errors, accepted
// pathological input, oracle mismatches) or cannot be written, 2 for
// usage errors. CI runs the steady-read scenario at tiny scale against a
// live vxmlserve on every push and validates the artifact.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"vxml/internal/loadkit"
)

func main() {
	spec := flag.String("spec", "", "scenario spec file (see docs/BENCHMARKS.md for the format)")
	out := flag.String("out", "", "output report path (default BENCH_LOAD_<spec name>.json)")
	target := flag.String("target", "", "base URL of an already-running server (default: self-serve the spec's corpus in-process)")
	durationScale := flag.Float64("duration-scale", 1, "multiply phase durations (CI uses < 1)")
	rateScale := flag.Float64("rate-scale", 1, "multiply open-loop arrival rates")
	validate := flag.String("validate", "", "validate an existing report file and exit")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *validate != "" {
		if err := loadkit.ValidateFile(*validate); err != nil {
			fmt.Fprintf(os.Stderr, "vxmlload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s report\n", *validate, loadkit.SchemaVersion)
		return
	}
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "vxmlload: -spec is required (or -validate)")
		flag.Usage()
		os.Exit(2)
	}
	if *durationScale <= 0 || *rateScale <= 0 {
		fmt.Fprintln(os.Stderr, "vxmlload: -duration-scale and -rate-scale must be > 0")
		os.Exit(2)
	}

	s, err := loadkit.LoadSpec(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vxmlload: %v\n", err)
		os.Exit(2)
	}
	outPath := *out
	if outPath == "" {
		outPath = "BENCH_LOAD_" + s.Name + ".json"
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	base, label := *target, *target
	if base == "" {
		var shutdown func()
		base, shutdown, err = loadkit.SelfServe(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vxmlload: self-serve: %v\n", err)
			os.Exit(1)
		}
		defer shutdown()
		label = "self"
	}

	r := &loadkit.Runner{
		Spec:          s,
		Target:        base,
		TargetLabel:   label,
		DurationScale: *durationScale,
		RateScale:     *rateScale,
	}
	if !*quiet {
		r.Logf = func(format string, args ...any) {
			fmt.Printf("vxmlload: "+format+"\n", args...)
		}
	}

	start := time.Now()
	fmt.Printf("vxmlload: spec=%s target=%s duration-scale=%g rate-scale=%g\n",
		s.Name, label, *durationScale, *rateScale)
	report, err := r.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vxmlload: %v\n", err)
		os.Exit(1)
	}
	if err := report.WriteFile(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "vxmlload: %v\n", err)
		os.Exit(1)
	}

	printSummary(report)
	fmt.Printf("vxmlload: report -> %s (%.1fs)\n", outPath, time.Since(start).Seconds())
	if verdict := failureVerdict(report); verdict != "" {
		fmt.Fprintf(os.Stderr, "vxmlload: FAIL: %s\n", verdict)
		os.Exit(1)
	}
	fmt.Println("vxmlload: PASS")
}

// printSummary renders the human-readable digest of a report.
func printSummary(r *loadkit.Report) {
	fmt.Printf("%-12s %9s %8s %8s %9s %9s %9s %9s\n",
		"PHASE", "REQUESTS", "ERRORS", "QPS", "P50", "P95", "P99", "P999")
	row := func(name string, t loadkit.Totals) {
		l := t.Latency
		fmt.Printf("%-12s %9d %8d %8.1f %9s %9s %9s %9s\n", name, t.Requests, t.Errors, t.QPS,
			micros(l.P50Micros), micros(l.P95Micros), micros(l.P99Micros), micros(l.P999Micros))
	}
	for _, p := range r.Phases {
		row(p.Name, p.Totals)
	}
	row("overall", r.Overall)
	if len(r.Errors) > 0 {
		keys := make([]string, 0, len(r.Errors))
		for k := range r.Errors {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, r.Errors[k])
		}
		fmt.Printf("errors: %s\n", strings.Join(parts, " "))
	}
	res := r.Resources
	fmt.Printf("resources: goroutines %d -> max %d -> drained %d (baseline %v), heap max %.1f MiB\n",
		res.GoroutinesBaseline, res.GoroutinesMax, res.GoroutinesAfterDrain,
		res.DrainedToBaseline, float64(res.HeapBytesMax)/(1<<20))
	if s := r.Soak; s != nil {
		fmt.Printf("soak: %d churn ops (%d replaces, %d deletes), %d spot checks, %d mismatches\n",
			s.ChurnOps, s.Replaces, s.Deletes, s.SpotChecks, s.Mismatches)
	}
	for _, f := range r.Failures {
		fmt.Printf("failure: op=%s phase=%s status=%d: %s\n", f.Op, f.Phase, f.Status, f.Error)
		if f.Explain != "" {
			fmt.Printf("  trace:\n%s\n", indent(f.Explain, "    "))
		}
	}
}

// failureVerdict decides the exit status: any serving-side failure class
// in the taxonomy, or a soak mismatch, fails the run.
func failureVerdict(r *loadkit.Report) string {
	var bad []string
	for key, n := range r.Errors {
		switch {
		case strings.HasPrefix(key, "http_5"):
			bad = append(bad, fmt.Sprintf("%d server errors (%s)", n, key))
		case key == "transport":
			bad = append(bad, fmt.Sprintf("%d transport failures", n))
		case key == "pathological_unexpected":
			bad = append(bad, fmt.Sprintf("%d pathological inputs not rejected", n))
		case key == "oracle_mismatch":
			bad = append(bad, fmt.Sprintf("%d oracle mismatches", n))
		}
	}
	if s := r.Soak; s != nil && s.Mismatches > 0 {
		bad = append(bad, fmt.Sprintf("soak recorded %d byte-identity mismatches", s.Mismatches))
	}
	return strings.Join(bad, "; ")
}

// micros renders a microsecond quantile human-readably.
func micros(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}

// indent prefixes every line of s.
func indent(s, prefix string) string {
	return prefix + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n"+prefix)
}
