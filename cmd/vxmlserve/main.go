// Command vxmlserve serves ranked keyword search over virtual XML views as
// a JSON HTTP API (see internal/server for the endpoint reference).
//
// Documents given with -doc are loaded at startup; -demo loads a generated
// books & reviews corpus and registers a "demo" view over it. With -disk
// the corpus lives in a disk-resident, DAG-compressed store (created on
// first run): startup reads only its manifest, documents page in on demand
// through a bounded block cache (-disk-cache-mb, -disk-mmap), every
// mutation persists incrementally, and GET /v1/stats grows a "disk" object
// with resident-bytes and cache hit counters. Further
// documents and views arrive over POST /v1/documents and POST /v1/views,
// and the corpus mutates in place over PUT /v1/documents/{name} (replace)
// and DELETE /v1/documents/{name} (the unversioned paths are aliases);
// -readonly disables all three mutation routes. Every search runs under its
// request's context — a disconnected or timed-out client cancels the
// pipeline — and POST /v1/search/stream delivers results as NDJSON lines
// the moment each ranked winner is materialized. The process drains
// in-flight requests and exits cleanly on SIGINT/SIGTERM.
//
// Examples:
//
//	vxmlserve -demo -addr :8344
//	curl -s localhost:8344/v1/search \
//	  -d '{"view":"demo","keywords":["xml","search"],"top_k":3,"cache":true}'
//	curl -sN localhost:8344/v1/search/stream \
//	  -d '{"view":"demo","keywords":["xml","search"],"top_k":3,"offset":3}'
//	curl -s localhost:8344/v1/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"vxml"
	"vxml/internal/diskstore"
	"vxml/internal/inex"
	"vxml/internal/server"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

// demoView is the view registered under the name "demo" by -demo.
const demoView = `
for $book in fn:doc(books.xml)/books//book
return <bookrevs>
         <book>{$book/title}</book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func main() {
	var docs stringList
	flag.Var(&docs, "doc", "XML document file to load at startup (repeatable); referenced in views by base name")
	addr := flag.String("addr", ":8344", "listen address")
	demo := flag.Bool("demo", false, "load a generated books/reviews corpus and register a 'demo' view")
	readonly := flag.Bool("readonly", false, "disable the corpus-mutating routes (POST/PUT/DELETE under /documents answer 403)")
	diskDir := flag.String("disk", "", "serve a disk-resident corpus from this directory (created if absent); documents page in through a block cache and mutations persist across restarts")
	diskCacheMB := flag.Int("disk-cache-mb", 0, "with -disk: block cache budget in MiB (0 = default 16)")
	diskMmap := flag.Bool("disk-mmap", false, "with -disk: read the data log via mmap instead of pread")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "maximum time to drain in-flight requests on shutdown")
	flag.Parse()

	var db *vxml.Database
	if *diskDir != "" {
		opts := diskstore.Options{CacheBytes: int64(*diskCacheMB) << 20, Mmap: *diskMmap}
		var err error
		db, err = vxml.OpenDiskOptions(*diskDir, opts)
		if err != nil {
			log.Fatalf("opening disk corpus %s: %v", *diskDir, err)
		}
		defer db.Close()
		if stats, ok := db.DiskStats(); ok {
			log.Printf("disk corpus %s: %d documents, %d data bytes, opened in %.1fms",
				*diskDir, stats.Documents, stats.DataBytes, stats.OpenMillis)
		}
	} else {
		db = vxml.Open()
	}
	if *demo {
		// A persisted disk corpus may already hold the demo documents from a
		// previous run; re-adding them would (correctly) be rejected as
		// duplicates.
		existing := make(map[string]bool)
		for _, name := range db.DocumentNames() {
			existing[name] = true
		}
		booksXML, reviewsXML := inex.GenerateBooksReviews(200, 7)
		if !existing["books.xml"] {
			db.MustAdd("books.xml", booksXML)
		}
		if !existing["reviews.xml"] {
			db.MustAdd("reviews.xml", reviewsXML)
		}
	}
	for _, path := range docs {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("reading %s: %v", path, err)
		}
		name := filepath.Base(path)
		err = db.Add(name, string(data))
		if errors.Is(err, vxml.ErrDuplicateDocument) {
			// A restarted disk-backed server sees its own persisted copy;
			// take the file on disk as the intended current content.
			err = db.Replace(name, string(data))
		}
		if err != nil {
			log.Fatalf("loading %s: %v", path, err)
		}
	}

	srv := server.New(db)
	srv.SetReadOnly(*readonly)
	if *demo {
		if err := srv.DefineView("demo", demoView); err != nil {
			log.Fatalf("registering demo view: %v", err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// Bound the whole request/response, not just the headers: a
		// slow-trickling client must not pin a goroutine and connection
		// forever. The read bound is sized so a document at the server's
		// 64MB body cap still fits over a slow uplink (~2 Mbps).
		ReadTimeout:  5 * time.Minute,
		WriteTimeout: 60 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("vxmlserve listening on %s (%d documents)", *addr, len(db.DocumentNames()))
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("serve: %v", err)
		}
	case <-ctx.Done():
		log.Printf("shutting down, draining for up to %s", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
			os.Exit(1)
		}
		log.Printf("bye")
	}
}
