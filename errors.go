// Error taxonomy of the query API. Every failure a caller can act on
// programmatically is classifiable with errors.Is or errors.As against the
// symbols in this file, instead of matching message strings:
//
//	sentinel / type          condition                              HTTP
//	ErrUnknownView           named view not registered              404
//	ErrUnknownDocument       view references an absent document     404
//	ErrDuplicateDocument     Add under an existing document name    409
//	ErrDuplicateView         define under an existing view name     409
//	ErrInvalidOptions        unusable Options / request parameters  400
//	ParseError               malformed XQuery (position + message)  400
//	ErrPartialCluster        distributed search lost node(s)        502
//	context.Canceled         caller canceled the context            499
//	context.DeadlineExceeded the context's deadline passed          408
//
// The HTTP column is the mapping internal/server applies on the /v1
// routes. Context errors are always wrapped (never returned bare), so
// errors.Is(err, context.Canceled) classifies them while the message still
// names the phase that was interrupted.

package vxml

import (
	"errors"

	"vxml/internal/core"
	"vxml/internal/store"
	"vxml/internal/xq"
)

// ErrDuplicateDocument reports an Add under an already-registered document
// name (compare with errors.Is).
var ErrDuplicateDocument = store.ErrDuplicateName

// ErrUnknownDocument reports a view definition that references a document
// name absent from the corpus (compare with errors.Is). Collection
// patterns are exempt: they may match nothing today and many documents
// after the next Add.
var ErrUnknownDocument = core.ErrUnknownDocument

// ErrDuplicateView reports defining a view under an already-registered
// name (compare with errors.Is). Like ErrUnknownView it originates in
// components that register views by name — internal/server and
// internal/cluster — not in the Database API itself.
var ErrDuplicateView = errors.New("vxml: duplicate view")

// ErrUnknownView reports a lookup of a view name that was never defined.
// The Database API itself passes compiled *View values and cannot fail
// this way; components that resolve views by registered name (such as
// internal/server) wrap ErrUnknownView so transports can map it uniformly.
var ErrUnknownView = errors.New("vxml: unknown view")

// ErrInvalidOptions reports Options (or transport-level request
// parameters) that cannot be executed, such as an Approach value outside
// the defined pipelines. Merely out-of-range numeric fields (negative
// TopK, Offset or Parallelism) are normalized, not rejected.
var ErrInvalidOptions = errors.New("vxml: invalid options")

// ParseError is the diagnostic for malformed XQuery: the byte offset the
// parser stopped at and what it expected. DefineView and Query return it
// (wrapped; retrieve with errors.As) for syntactically invalid input.
type ParseError = xq.ParseError

// ErrPartialCluster reports a distributed search that completed without one
// or more cluster nodes: the results returned alongside it cover only the
// surviving partitions (never a silently truncated full answer — the error
// is the marker). Stats.Nodes carries the per-member outcome. Single-process
// searches never return it.
var ErrPartialCluster = errors.New("vxml: partial cluster results")
