// Parallel/sequential equivalence: the sharded parallel pipeline must be a
// pure execution strategy. For every corpus, view and option set, search
// results at Parallelism >= 2 must be byte-identical — rank, score, TF
// map, materialized XML and snippet — to the sequential legacy path, with
// score ties broken deterministically by view position (document ID order
// for collection views). These tests drive 50+ randomized corpora through
// ranked, unranked, conjunctive and disjunctive searches over collection
// patterns, fixed-document joins and mixed views.
package vxml_test

import (
	"fmt"
	"math/rand"
	"testing"

	"vxml"
	"vxml/internal/testkit"
)

// TestParallelSequentialEquivalence is the deterministic-ordering
// regression test: across 72 randomized corpora (18 seeds x 4 view
// shapes), parallel search returns byte-identical ranked and unranked
// results to the sequential path, and the result-affecting stats counters
// agree.
func TestParallelSequentialEquivalence(t *testing.T) {
	trial := 0
	for seed := int64(1); seed <= 18; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := testkit.BuildEqCorpus(t, rng, 3+rng.Intn(28))
		for vi, viewText := range testkit.EqViews {
			trial++
			view, err := db.DefineView(viewText)
			if err != nil {
				t.Fatalf("seed %d view %d: %v", seed, vi, err)
			}
			kws := testkit.KeywordsFor(rng)
			for _, topK := range []int{0, 3} {
				for _, disj := range []bool{false, true} {
					label := fmt.Sprintf("seed=%d view=%d k=%d disj=%v", seed, vi, topK, disj)
					base := vxml.Options{TopK: topK, Disjunctive: disj, Parallelism: 1}
					seq, seqStats, err := db.Search(view, kws, &base)
					if err != nil {
						t.Fatalf("%s sequential: %v", label, err)
					}
					for _, par := range []int{2, 4} {
						o := base
						o.Parallelism = par
						got, gotStats, err := db.Search(view, kws, &o)
						if err != nil {
							t.Fatalf("%s parallel(%d): %v", label, par, err)
						}
						testkit.MustEqualResults(t, fmt.Sprintf("%s par=%d", label, par), seq, got)
						if seqStats.PDTNodes != gotStats.PDTNodes ||
							seqStats.ViewSize != gotStats.ViewSize ||
							seqStats.Matched != gotStats.Matched ||
							seqStats.BaseData != gotStats.BaseData {
							t.Fatalf("%s par=%d: counter stats diverge: %+v vs %+v", label, par, seqStats, gotStats)
						}
					}
				}
			}
		}
	}
	if trial < 50 {
		t.Fatalf("only %d randomized trials, want >= 50", trial)
	}
}

// TestCollectionViewAgainstBaseline cross-checks the collection-pattern
// feature itself: the Efficient pipeline (parallel) must agree with the
// materialize-everything Baseline pipeline on scores, order and content
// (Theorem 4.1 extended to collections).
func TestCollectionViewAgainstBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := testkit.BuildEqCorpus(t, rng, 17)
	for vi, viewText := range testkit.EqViews[:2] {
		view, err := db.DefineView(viewText)
		if err != nil {
			t.Fatalf("view %d: %v", vi, err)
		}
		kws := []string{"copper", "quartz"}
		eff, _, err := db.Search(view, kws, &vxml.Options{TopK: 5})
		if err != nil {
			t.Fatalf("view %d efficient: %v", vi, err)
		}
		base, _, err := db.Search(view, kws, &vxml.Options{TopK: 5, Approach: vxml.Baseline})
		if err != nil {
			t.Fatalf("view %d baseline: %v", vi, err)
		}
		testkit.MustEqualResultsOpt(t, fmt.Sprintf("view %d efficient-vs-baseline", vi), eff, base, false)
		if len(eff) == 0 {
			t.Fatalf("view %d: expected results", vi)
		}
	}
}

// TestParallelismSharesCacheEntries asserts Parallelism is not part of the
// cache identity: a result cached by a sequential search is served to a
// parallel one and vice versa.
func TestParallelismSharesCacheEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := testkit.BuildEqCorpus(t, rng, 9)
	view, err := db.DefineView(testkit.EqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper"}
	first, _, err := db.Search(view, kws, &vxml.Options{TopK: 4, Cache: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cached, stats, err := db.Search(view, kws, &vxml.Options{TopK: 4, Cache: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatalf("parallel search missed the cache entry stored by the sequential search")
	}
	testkit.MustEqualResults(t, "cache hit across parallelism", first, cached)
}
