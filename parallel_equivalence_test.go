// Parallel/sequential equivalence: the sharded parallel pipeline must be a
// pure execution strategy. For every corpus, view and option set, search
// results at Parallelism >= 2 must be byte-identical — rank, score, TF
// map, materialized XML and snippet — to the sequential legacy path, with
// score ties broken deterministically by view position (document ID order
// for collection views). These tests drive 50+ randomized corpora through
// ranked, unranked, conjunctive and disjunctive searches over collection
// patterns, fixed-document joins and mixed views.
package vxml

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// eqVocabulary deliberately overlaps the query keywords so term
// frequencies vary per article; "copper" and "quartz" are the planted
// search terms.
var eqVocabulary = []string{
	"copper", "quartz", "basalt", "granite", "mica", "shale",
	"copper", "quartz", "system", "survey", "archive", "ledger",
}

// randomArticle builds one <article> with a title, author, year and a
// word-soup body drawn from the vocabulary.
func randomArticle(rng *rand.Rand, id int) string {
	var body strings.Builder
	for i, n := 0, 3+rng.Intn(12); i < n; i++ {
		if i > 0 {
			body.WriteByte(' ')
		}
		body.WriteString(eqVocabulary[rng.Intn(len(eqVocabulary))])
	}
	return fmt.Sprintf(
		`<article><fm><tl>title %d %s</tl><au>author%d</au><yr>%d</yr></fm><bdy>%s</bdy></article>`,
		id, eqVocabulary[rng.Intn(len(eqVocabulary))], rng.Intn(6), 1988+rng.Intn(12), body.String())
}

// buildEqCorpus loads nDocs "part-NN.xml" documents plus one fixed
// authors.xml into a fresh database. Roughly every fifth part document is
// an exact copy of an earlier one, planting guaranteed score ties that
// exercise the deterministic tie-break.
func buildEqCorpus(t *testing.T, rng *rand.Rand, nDocs int) *Database {
	t.Helper()
	db := Open()
	var prev string
	for d := 0; d < nDocs; d++ {
		var doc string
		if d > 0 && d%5 == 4 {
			doc = prev // exact duplicate: same articles, same scores
		} else {
			var articles strings.Builder
			for a, n := 0, 1+rng.Intn(6); a < n; a++ {
				articles.WriteString(randomArticle(rng, d*100+a))
			}
			doc = "<books>" + articles.String() + "</books>"
		}
		prev = doc
		db.MustAdd(fmt.Sprintf("part-%02d.xml", d), doc)
	}
	var authors strings.Builder
	authors.WriteString("<authors>")
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&authors, `<author><name>author%d</name><affil>inst %s %d</affil></author>`,
			i, eqVocabulary[rng.Intn(len(eqVocabulary))], i)
	}
	authors.WriteString("</authors>")
	db.MustAdd("authors.xml", authors.String())
	return db
}

// eqViews are the view shapes each corpus is searched through: a
// collection selection, a collection view joined to a fixed document, and
// a single-document selection (the legacy shape).
var eqViews = []string{
	`for $a in fn:collection("part-*")/books//article
	 where $a/fm/yr > 1993
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,

	`for $a in fn:collection("part-*")/books//article
	 return <rec><t>{$a/fm/tl}</t>,
	   {for $u in fn:doc(authors.xml)/authors//author
	    where $u/name = $a/fm/au
	    return <inst>{$u/affil}</inst>},
	   {$a/bdy}</rec>`,

	`for $a in fn:doc(part-00.xml)/books//article
	 where $a/fm/yr > 1990
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,

	// Single-clause equality where: the sequential path takes the
	// evaluator's hash-join shortcut, the parallel path partitions the
	// loop — outputs must still match exactly.
	`for $a in fn:collection("part-*")/books//article
	 where $a/fm/au = "author2"
	 return <art>{$a/fm/tl}, {$a/bdy}</art>`,
}

func keywordsFor(rng *rand.Rand) []string {
	all := []string{"copper", "quartz", "survey"}
	return all[:1+rng.Intn(len(all))]
}

// mustEqualResults fails unless a and b are byte-identical result lists.
func mustEqualResults(t *testing.T, label string, a, b []Result) {
	t.Helper()
	mustEqualResultsOpt(t, label, a, b, true)
}

// mustEqualResultsOpt optionally skips the snippet comparison (the
// Baseline comparator reports no snippets, by design).
func mustEqualResultsOpt(t *testing.T, label string, a, b []Result, snippets bool) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Rank != b[i].Rank || a[i].Score != b[i].Score {
			t.Fatalf("%s: result %d rank/score (%d, %v) vs (%d, %v)", label, i, a[i].Rank, a[i].Score, b[i].Rank, b[i].Score)
		}
		if a[i].XML != b[i].XML {
			t.Fatalf("%s: result %d XML differs:\n%s\nvs\n%s", label, i, a[i].XML, b[i].XML)
		}
		if snippets && a[i].Snippet != b[i].Snippet {
			t.Fatalf("%s: result %d snippet %q vs %q", label, i, a[i].Snippet, b[i].Snippet)
		}
		if len(a[i].TF) != len(b[i].TF) {
			t.Fatalf("%s: result %d TF sizes differ", label, i)
		}
		for k, v := range a[i].TF {
			if b[i].TF[k] != v {
				t.Fatalf("%s: result %d TF[%q] = %d vs %d", label, i, k, v, b[i].TF[k])
			}
		}
	}
}

// TestParallelSequentialEquivalence is the deterministic-ordering
// regression test: across 72 randomized corpora (18 seeds x 4 view
// shapes), parallel search returns byte-identical ranked and unranked
// results to the sequential path, and the result-affecting stats counters
// agree.
func TestParallelSequentialEquivalence(t *testing.T) {
	trial := 0
	for seed := int64(1); seed <= 18; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := buildEqCorpus(t, rng, 3+rng.Intn(28))
		for vi, viewText := range eqViews {
			trial++
			view, err := db.DefineView(viewText)
			if err != nil {
				t.Fatalf("seed %d view %d: %v", seed, vi, err)
			}
			kws := keywordsFor(rng)
			for _, topK := range []int{0, 3} {
				for _, disj := range []bool{false, true} {
					label := fmt.Sprintf("seed=%d view=%d k=%d disj=%v", seed, vi, topK, disj)
					base := Options{TopK: topK, Disjunctive: disj, Parallelism: 1}
					seq, seqStats, err := db.Search(view, kws, &base)
					if err != nil {
						t.Fatalf("%s sequential: %v", label, err)
					}
					for _, par := range []int{2, 4} {
						o := base
						o.Parallelism = par
						got, gotStats, err := db.Search(view, kws, &o)
						if err != nil {
							t.Fatalf("%s parallel(%d): %v", label, par, err)
						}
						mustEqualResults(t, fmt.Sprintf("%s par=%d", label, par), seq, got)
						if seqStats.PDTNodes != gotStats.PDTNodes ||
							seqStats.ViewSize != gotStats.ViewSize ||
							seqStats.Matched != gotStats.Matched ||
							seqStats.BaseData != gotStats.BaseData {
							t.Fatalf("%s par=%d: counter stats diverge: %+v vs %+v", label, par, seqStats, gotStats)
						}
					}
				}
			}
		}
	}
	if trial < 50 {
		t.Fatalf("only %d randomized trials, want >= 50", trial)
	}
}

// TestCollectionViewAgainstBaseline cross-checks the collection-pattern
// feature itself: the Efficient pipeline (parallel) must agree with the
// materialize-everything Baseline pipeline on scores, order and content
// (Theorem 4.1 extended to collections).
func TestCollectionViewAgainstBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := buildEqCorpus(t, rng, 17)
	for vi, viewText := range eqViews[:2] {
		view, err := db.DefineView(viewText)
		if err != nil {
			t.Fatalf("view %d: %v", vi, err)
		}
		kws := []string{"copper", "quartz"}
		eff, _, err := db.Search(view, kws, &Options{TopK: 5})
		if err != nil {
			t.Fatalf("view %d efficient: %v", vi, err)
		}
		base, _, err := db.Search(view, kws, &Options{TopK: 5, Approach: Baseline})
		if err != nil {
			t.Fatalf("view %d baseline: %v", vi, err)
		}
		mustEqualResultsOpt(t, fmt.Sprintf("view %d efficient-vs-baseline", vi), eff, base, false)
		if len(eff) == 0 {
			t.Fatalf("view %d: expected results", vi)
		}
	}
}

// TestParallelismSharesCacheEntries asserts Parallelism is not part of the
// cache identity: a result cached by a sequential search is served to a
// parallel one and vice versa.
func TestParallelismSharesCacheEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := buildEqCorpus(t, rng, 9)
	view, err := db.DefineView(eqViews[0])
	if err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper"}
	first, _, err := db.Search(view, kws, &Options{TopK: 4, Cache: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cached, stats, err := db.Search(view, kws, &Options{TopK: 4, Cache: true, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatalf("parallel search missed the cache entry stored by the sequential search")
	}
	mustEqualResults(t, "cache hit across parallelism", first, cached)
}
