// Streaming result delivery: Results extends the paper's deferred
// materialization (§4.2.2.2 — only top-k winners touch base data) to the
// delivery path, so a consumer that stops pulling early never pays for the
// winners it did not look at.

package vxml

import (
	"context"
	"fmt"
	"iter"

	"vxml/internal/core"
)

// Results evaluates the ranked keyword query and yields results one at a
// time, in rank order, as a Go 1.23 range-over-func sequence:
//
//	for r, err := range db.Results(ctx, view, keywords, opts) {
//		if err != nil { ... }
//		fmt.Println(r.Rank, r.XML)
//	}
//
// The yielded results — rank, score, TF map, XML, snippet — are
// byte-identical to what SearchContext returns for the same (view,
// keywords, options), including Offset/TopK paging; only the delivery
// differs. On the Efficient pipeline each winner's subtree is materialized
// from base data only when it is yielded, so breaking out of the loop
// skips the remaining fetches entirely; with Options.Cache set or a
// comparator pipeline selected, the page is computed eagerly (populating
// or hitting the query-result cache exactly like SearchContext) and then
// replayed.
//
// The pipeline runs inside the first resumption of the sequence, not
// inside Results itself, and holds no shard lock while yielding. A
// pipeline failure or ctx cancellation is delivered as the final
// (zero Result, non-nil error) pair, after which the sequence stops; the
// error wraps ctx.Err() when cancellation caused it. The sequence is
// single-use and yields no per-search Stats.
func (db *Database) Results(ctx context.Context, v *View, keywords []string, opts *Options) iter.Seq2[Result, error] {
	opts = normalizeOptions(opts)
	return func(yield func(Result, error) bool) {
		if opts.Approach != Efficient || opts.Cache {
			// No deferred-materialization path here: comparators
			// materialize internally, and a cacheable run must compute the
			// full entry anyway. Compute the page, then replay it.
			results, _, err := db.SearchContext(ctx, v, keywords, opts)
			if err != nil {
				yield(Result{}, err)
				return
			}
			for _, r := range results {
				if err := ctx.Err(); err != nil {
					yield(Result{}, fmt.Errorf("vxml: streaming interrupted: %w", err))
					return
				}
				if !yield(r, nil) {
					return
				}
			}
			return
		}
		// Rank deep enough to cover the requested window, then let the
		// engine skip the first Offset winners unmaterialized.
		depth := 0
		if opts.TopK > 0 {
			depth = opts.Offset + opts.TopK
		}
		copts := core.Options{K: depth, Disjunctive: opts.Disjunctive, Parallelism: opts.Parallelism}
		for r, err := range db.engine.ResultsSeq(ctx, v.inner, keywords, copts, opts.Offset) {
			if err != nil {
				yield(Result{}, err)
				return
			}
			if !yield(toResult(r, keywords), nil) {
				return
			}
		}
	}
}
