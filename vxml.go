// Package vxml implements efficient ranked keyword search over virtual
// (unmaterialized) XML views, reproducing Shao et al., "Efficient Keyword
// Search over Virtual XML Views", VLDB 2007.
//
// A Database holds XML documents with path and inverted-list indices. A
// View is an XQuery expression (joins, nesting, predicates) over those
// documents that is never materialized. Search evaluates a ranked keyword
// query over the view by (1) deriving Query Pattern Trees from the view
// definition, (2) building Pruned Document Trees from the indices alone,
// (3) running the view over the PDTs, and (4) scoring with element-level
// TF-IDF and materializing only the top-k winners — with scores and rank
// order provably identical to materializing the whole view.
//
// Quick start:
//
//	db := vxml.Open()
//	db.MustAdd("books.xml", booksXML)
//	db.MustAdd("reviews.xml", reviewsXML)
//	view, err := db.DefineView(`
//	  for $book in fn:doc(books.xml)/books//book
//	  where $book/year > 1995
//	  return <bookrevs>
//	           <book>{$book/title}</book>,
//	           {for $rev in fn:doc(reviews.xml)/reviews//review
//	            where $rev/isbn = $book/isbn
//	            return $rev/content}
//	         </bookrevs>`)
//	results, stats, err := db.Search(view, []string{"xml", "search"}, nil)
//
// # Sharding and concurrency
//
// A Database is safe for concurrent use. The corpus is partitioned into
// shards (documents hash-assigned by name; see OpenShards): each shard
// owns its documents' path and inverted-list indices behind its own lock.
// Search, Query and Explain hold read locks only on the shards their view
// touches and run in parallel with each other; Add and MustAdd take one
// shard's write lock only to publish an already-parsed, already-indexed
// document, so a concurrent search observes the document collection either
// entirely before or entirely after an ingest — never a document whose
// indices are half-built — stalls for the publication, not for the parse,
// and an ingest into one shard never contends with a search over another.
// The same guarantees hold one layer down for direct users of
// internal/core.Engine.
//
// # Parallel search
//
// Options.Parallelism bounds a worker pool the Efficient pipeline fans the
// search out over: per-candidate-document PDT generation (keyword lookup,
// QPT matching, tree construction), view evaluation partitioned over the
// outer FLWOR bindings, and scoring streamed into a concurrent top-k merge
// heap. 0 (the default) uses GOMAXPROCS, 1 is the sequential legacy path;
// ranked and unranked results are byte-identical at every setting, with
// score ties broken deterministically by view position (document order).
//
// # Document lifecycle
//
// The corpus is mutable: Replace atomically swaps a document's content
// (the replacement is a new document in global document order — collection
// views enumerate it last; only the name is stable) and Delete removes one.
// Views are virtual, so every search that starts after a mutation reflects
// it on every pipeline, while searches already in flight complete against
// the old contents: replaced and deleted documents are tombstoned, not
// dropped, until the last search that planned before the mutation has
// materialized its winners. Both mutations invalidate the query-result
// cache exactly like Add. Save persists the corpus (document IDs, shard
// count and order included) and Load reopens it with identical search
// behavior.
//
// # Collection views
//
// fn:collection("part-*") in a view ranges over every document whose name
// matches the '*' wildcard pattern, in ingest (document ID) order — so one
// view can span an unbounded, growing corpus. Patterns compile against an
// empty corpus (they may match nothing today and much after the next Add);
// literal fn:doc names are still checked at DefineView time.
//
// # Result caching
//
// Setting Options.Cache serves repeated identical queries from an LRU of
// ranked results bounded both by entry count and by resident bytes (so
// unranked full-result entries cannot hold unbounded memory). The cache
// key is the view definition text, the
// sorted lowercase keyword set, and every result-affecting option (TopK,
// Disjunctive, Approach), so two searches share an entry exactly when the
// paper's pipeline would compute identical output for them. Every corpus
// change — Add, Replace, Delete — bumps a generation counter and drops all
// resident entries, so a cached response is never served across a change. Hits are observable
// via Stats.CacheHit and aggregate counters via CacheStats. Cached and
// uncached paths return identical results, scores and rank order; cache
// misses cost one map lookup. Query additionally caches on the verbatim
// query text (the keywords and semantics are part of the text), so a
// repeat Query skips parsing and QPT generation as well as evaluation.
//
// # HTTP service
//
// Package internal/server (binary: cmd/vxmlserve) exposes a Database over
// JSON HTTP: POST /documents ingests XML, PUT/DELETE /documents/{name}
// replace and remove documents, POST /views compiles named views,
// POST /search runs ranked keyword queries, and GET /stats reports corpus
// and cache counters. Example round trip:
//
//	vxmlserve -demo -addr :8344 &
//	curl -s localhost:8344/search -d '{"view":"demo","keywords":["xml","search"],"top_k":3,"cache":true}'
package vxml

import (
	"context"
	"fmt"
	"time"

	"vxml/internal/baseline"
	"vxml/internal/catalog"
	"vxml/internal/core"
	"vxml/internal/gtp"
	"vxml/internal/store"
	"vxml/internal/xq"
)

// Database is a collection of XML documents with the indices required for
// keyword search over virtual views. It is safe for concurrent use; see the
// package documentation for the locking discipline.
type Database struct {
	engine *core.Engine
	// catalog is the engine's view catalog (never a separate instance):
	// one generation counter and one artifact store serve the engine's
	// planner tiers and this layer's exact result cache alike, so a
	// mutation invalidates every tier atomically under its shard lock.
	catalog *catalog.Catalog
}

// newDatabase wraps an engine, sharing its catalog.
func newDatabase(eng *core.Engine) *Database {
	return &Database{engine: eng, catalog: eng.Catalog}
}

// Open creates an empty database with a result cache of
// catalog.DefaultCapacity entries and store.DefaultShardCount corpus
// shards.
func Open() *Database {
	return OpenShards(0)
}

// OpenShards creates an empty database whose corpus is partitioned into n
// shards (n <= 0 selects store.DefaultShardCount). Documents are
// hash-assigned to shards by name; the shard count never affects query
// results, only which ingests and searches contend.
func OpenShards(n int) *Database {
	return newDatabase(core.New(store.NewSharded(n)))
}

// SetPlanPolicy tunes the catalog's adaptive-materialization policy: a
// view is promoted to fully materialized after promoteHits planned
// searches since the last corpus change (doubling per demotion-churn
// step), and skeletons plus materialized views together may hold
// artifactBytes resident bytes. Non-positive values keep the current
// setting. See docs/TUNING.md for guidance.
func (db *Database) SetPlanPolicy(promoteHits, artifactBytes int) {
	db.catalog.SetPolicy(promoteHits, artifactBytes)
}

// Add parses, stores and indexes an XML document under the given name
// (referenced from views as fn:doc(name)). It invalidates the catalog —
// the query-result cache and every planner artifact — so every subsequent
// Search recomputes against the grown collection. Adding a duplicate name
// returns an error wrapping ErrDuplicateDocument.
//
// The invalidation happens inside the engine, under the home shard's write
// lock, so the registration and the generation bump are one atomic event:
// any cache entry or artifact computed against the pre-Add collection is
// stale by the time the post-Add generation exists (Search stamps its
// insert with the generation read before computing; see catalog.PutAt).
func (db *Database) Add(name, xmlText string) error {
	return db.engine.AddXML(name, xmlText)
}

// MustAdd is Add that panics on error, for tests and examples.
func (db *Database) MustAdd(name, xmlText string) {
	if err := db.Add(name, xmlText); err != nil {
		panic(err)
	}
}

// Replace atomically swaps the document registered under name for a new
// parse of xmlText. Views are virtual, so every subsequent search — by
// literal fn:doc reference or collection pattern, on any pipeline — runs
// against the replacement; the query-result cache is invalidated exactly as
// by Add. The replacement is a new document in global document order (it
// receives a fresh document ID), so collection views enumerate it after the
// documents that were already present. Searches already in flight complete
// against the old contents. Replacing a name that was never added returns
// an error wrapping ErrUnknownDocument.
func (db *Database) Replace(name, xmlText string) error {
	return db.ReplaceContext(context.Background(), name, xmlText)
}

// ReplaceContext is Replace with a cancellation pre-flight: a replace
// against an already-canceled or expired ctx returns its wrapped ctx.Err()
// without parsing. (Parsing and index construction are CPU-bound and brief;
// they are not interrupted mid-way.)
func (db *Database) ReplaceContext(ctx context.Context, name, xmlText string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("vxml: replace interrupted: %w", err)
	}
	return db.engine.ReplaceXML(name, xmlText)
}

// Delete removes the document registered under name. Every subsequent
// search runs against the shrunken corpus (a literal fn:doc view over the
// name simply yields nothing; collection patterns no longer enumerate it),
// and the query-result cache is invalidated exactly as by Add. Searches
// already in flight complete against the old contents. Deleting a name that
// was never added returns an error wrapping ErrUnknownDocument.
func (db *Database) Delete(name string) error {
	return db.DeleteContext(context.Background(), name)
}

// DeleteContext is Delete with a cancellation pre-flight, returning a
// wrapped ctx.Err() for a dead ctx without touching the corpus.
func (db *Database) DeleteContext(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("vxml: delete interrupted: %w", err)
	}
	return db.engine.Delete(name)
}

// DocumentNames returns the names of all loaded documents.
func (db *Database) DocumentNames() []string {
	infos := db.engine.Store.Infos()
	names := make([]string, len(infos))
	for i, d := range infos {
		names[i] = d.Name
	}
	return names
}

// TotalBytes reports the summed serialized size of all documents.
func (db *Database) TotalBytes() int {
	return db.engine.Store.TotalBytes()
}

// SubtreeFetches reports the cumulative count of base-data subtree fetches
// the store has served (the Efficient pipeline's only base-data access,
// performed for materialized winners). Benchmarks report deltas of it to
// show deferred materialization paying off; per-search counts are in
// Stats.BaseData.
func (db *Database) SubtreeFetches() int { return db.engine.Store.SubtreeFetches() }

// CacheStats returns a snapshot of the catalog counters: the exact
// query-result cache plus the view registry and planner-tier statistics.
func (db *Database) CacheStats() catalog.Stats { return db.catalog.Stats() }

// PlanProbe reports which catalog tier would answer a cached (Cache: true)
// conjunctive Efficient search over v with the given keywords, without
// evaluating anything: "cache_hit" when the shared unpaged result-cache
// entry is resident (exact and TopK-window queries are both served from
// it), "materialized" or "rewritten" when the catalog holds that artifact
// for the view, else "direct". viewID is the view's catalog ID ("" when it
// is not registered). The probe mutates no counters and no LRU recency
// beyond a cache touch, so it is safe to call from diagnostics surfaces.
func (db *Database) PlanProbe(v *View, keywords []string) (source, viewID string) {
	fullKey := catalog.Key(v.inner.Text, keywords,
		catalog.IntPart(0),
		catalog.BoolPart(false),
		catalog.IntPart(int(Efficient)))
	if _, ok := db.catalog.Probe(fullKey); ok {
		return catalog.PlanCacheHit, db.catalog.IDOf(v.inner.Text)
	}
	return db.engine.PlanProbe(v.inner)
}

// ShardStats returns a snapshot of per-shard corpus counters (document
// count and summed serialized bytes per shard).
func (db *Database) ShardStats() []store.ShardInfo { return db.engine.Store.ShardInfos() }

// View is a compiled virtual view.
type View struct {
	inner *core.View
}

// Definition returns the view's XQuery text.
func (v *View) Definition() string { return v.inner.Text }

// DefineView compiles a view definition: an XQuery expression in the
// supported grammar (FLWOR, child/descendant paths, leaf-value predicates,
// element constructors, non-recursive functions). Malformed input returns
// a wrapped *ParseError; a reference to an absent document returns a
// wrapped ErrUnknownDocument.
func (db *Database) DefineView(xquery string) (*View, error) {
	return db.DefineViewContext(context.Background(), xquery)
}

// DefineViewContext is DefineView with a cancellation pre-flight: a
// compile against an already-canceled or expired ctx returns its wrapped
// ctx.Err() without parsing. (QPT generation is CPU-bound and brief; it is
// not interrupted mid-way.)
func (db *Database) DefineViewContext(ctx context.Context, xquery string) (*View, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("vxml: define view interrupted: %w", err)
	}
	v, err := db.engine.CompileView(xquery)
	if err != nil {
		return nil, err
	}
	return &View{inner: v}, nil
}

// Options configure a search. The zero value means conjunctive semantics
// and all matching results. Out-of-range numeric fields are normalized,
// never rejected: negative TopK and Offset mean 0, negative Parallelism
// means 1 (the sequential path, matching the engine's reading) — so no
// Options value can construct an invalid pool size or a spurious extra
// cache key.
type Options struct {
	// TopK limits the number of returned results (0 = all matches).
	TopK int
	// Offset skips that many leading ranked results before TopK applies,
	// for pagination: page p is Offset p*TopK. Rank numbers keep their
	// absolute position in the full ranking, so concatenated pages are
	// byte-identical to one unpaged (TopK = 0) search. Uncached, a page
	// costs a top-(Offset+TopK) ranking and materializes only the
	// window — the skipped prefix is never fetched from base data. With
	// Cache set, a page with Offset > 0 computes and
	// caches the full ranking under the unpaged TopK=0 key instead, so
	// every later page of the same query (and any unpaged TopK=0 search
	// of it) is sliced from that one shared entry; the first page
	// (Offset 0) is an ordinary top-k search with its own entry.
	Offset int
	// Disjunctive matches any keyword instead of all keywords.
	Disjunctive bool
	// Parallelism bounds the worker pool the Efficient pipeline fans
	// per-document PDT generation, view evaluation and scoring out over.
	// 0 (the default) uses GOMAXPROCS; 1 selects the sequential legacy
	// path. Results are byte-identical at every setting, so Parallelism is
	// deliberately NOT part of the query-result cache key: searches at
	// different parallelism share cache entries. The comparator pipelines
	// (Baseline, GTPTermJoin) always run sequentially.
	Parallelism int
	// Approach selects the pipeline; the default is Efficient. The
	// comparators exist for benchmarking and produce identical results.
	Approach Approach
	// Cache serves the search from the query-result cache when an entry
	// for the same (view, keywords, options) exists at the current
	// document generation, and populates the cache otherwise. Keyword
	// order and casing do not affect the cache identity: permutations of
	// one keyword set share an entry, and TF maps are re-expressed in each
	// caller's keyword forms. Cached and uncached paths return identical
	// results; a hit sets Stats.CacheHit and reports the timings of the
	// original computation.
	//
	// Cache also opts the search into the catalog planner (Efficient
	// pipeline only): on an exact-entry miss the query may still be
	// answered by rewriting — a TopK window sliced from a cached unranked
	// entry, or a re-scored view skeleton — or from an adaptively
	// materialized view, all byte-identical to direct evaluation.
	// Stats.PlanSource reports which path answered.
	Cache bool
	// NoRewrite keeps the exact result cache active but disables the
	// rewrite and materialized tiers (and artifact recording): a miss
	// always evaluates directly. Benchmarks use it to isolate tier
	// contributions; results are identical either way.
	NoRewrite bool
}

// Approach selects the query processing pipeline.
type Approach int

// Available pipelines (paper §5.1).
const (
	// Efficient is the paper's contribution: index-only PDT generation
	// with deferred materialization.
	Efficient Approach = iota
	// Baseline materializes the entire view at query time.
	Baseline
	// GTPTermJoin uses structural joins with TermJoin (Timber-style).
	GTPTermJoin
)

// Result is one ranked search result.
type Result struct {
	Rank  int
	Score float64
	// TF maps each query keyword to its frequency in the result.
	TF map[string]int
	// XML is the fully materialized result element.
	XML string
	// Snippet is a keyword-in-context excerpt from the result.
	Snippet string
}

// Stats reports the per-phase cost of a search (paper Figure 14).
type Stats struct {
	PDTTime  time.Duration // PDT generation (index-only)
	EvalTime time.Duration // view evaluation over the PDTs
	PostTime time.Duration // scoring + top-k materialization
	Total    time.Duration
	PDTNodes int // elements across all PDTs
	ViewSize int // |V(D)|: number of view results
	Matched  int // results satisfying the keyword semantics
	BaseData int // base-data subtree fetches (top-k materialization only)
	// CacheHit reports that the response was served from the query-result
	// cache; the timing fields then describe the original computation.
	CacheHit bool
	// PlanSource reports how the answer was produced: "direct" (full
	// pipeline), "cache_hit" (exact result-cache entry), "rewritten"
	// (window slice of a cached unranked entry, or a re-scored view
	// skeleton), or "materialized" (adaptively materialized view). It
	// describes the execution only — results are byte-identical across
	// every source. PlanView is the catalog ID of the serving view
	// ("" when the view is not in the catalog).
	PlanSource string
	PlanView   string
	// Workers is the worker-pool size the search actually ran with (1 =
	// sequential path; comparator pipelines always report 1). Candidates
	// counts the documents the view resolved to and ShardsSearched the
	// corpus shards whose locks the search held. Like the timing fields,
	// they describe the execution — on a cache hit, the original one —
	// never the results.
	Workers        int
	Candidates     int
	ShardsSearched int
	// Nodes reports the per-member outcome of a distributed search (one
	// entry per cluster member the coordinator contacted, in slot order).
	// Single-process searches leave it nil. When a search returns
	// ErrPartialCluster, the failed members and their errors are here.
	Nodes []NodeStatus
}

// NodeStatus is one cluster member's outcome within a distributed search
// (see Stats.Nodes). It is defined here rather than in internal/cluster so
// Stats stays free of internal types.
type NodeStatus struct {
	// URL is the member's base URL; Slot is the corpus partition it holds.
	URL  string
	Slot int
	// State is "ok" for a member whose reply was merged, "failed" for one
	// that was tried and gave none, and "skipped" for one never tried
	// (an earlier member of its slot already answered).
	State string
	// Gen is the corpus generation the member answered at (0 if none).
	Gen uint64
	// Err describes the failure when State is "failed".
	Err string
}

// cachedSearch is the value held by one query-result cache entry.
type cachedSearch struct {
	results []Result
	stats   Stats
}

// Search evaluates a ranked keyword query over the view. Keywords are
// case-insensitive. A nil opts means conjunctive semantics, all results,
// Efficient pipeline, no caching. Search never cancels; use SearchContext
// for deadlines and cancellation, or Results for incremental delivery.
func (db *Database) Search(v *View, keywords []string, opts *Options) ([]Result, *Stats, error) {
	return db.SearchContext(context.Background(), v, keywords, opts)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between work units in every phase (candidate documents, FLWOR bindings,
// scored results, materialized winners), so a cancel or deadline returns a
// wrapped ctx.Err() — classify with errors.Is(err, context.Canceled) or
// context.DeadlineExceeded — within one unit, with all shard read locks
// released and no pool goroutine left behind. A canceled search inserts
// nothing into the query-result cache — and a warm cache never masks a
// cancellation: the pre-flight below runs before the cache lookup, so a
// dead ctx fails identically whether the entry is resident or not.
func (db *Database) SearchContext(ctx context.Context, v *View, keywords []string, opts *Options) ([]Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("vxml: search interrupted: %w", err)
	}
	opts = normalizeOptions(opts)
	if opts.Offset > 0 {
		// A page is a window of a deeper ranking; rank numbers stay
		// absolute either way. With the cache on, recurse as the unpaged
		// TopK=0 search, so every subsequent page of the query is sliced
		// from that one shared cached entry rather than each burning an
		// LRU slot. Uncached, rank only the top Offset+TopK and hand the
		// offset down so the skipped prefix is never even materialized.
		if opts.Cache {
			full := *opts
			full.Offset, full.TopK = 0, 0
			results, stats, err := db.SearchContext(ctx, v, keywords, &full)
			if err != nil {
				return nil, nil, err
			}
			return pageSlice(results, opts.Offset, opts.TopK), stats, nil
		}
		window := *opts
		window.Offset = 0
		if opts.TopK > 0 {
			window.TopK = opts.Offset + opts.TopK
		}
		return db.searchUncached(ctx, v, keywords, &window, opts.Offset)
	}
	// No lock spans the lookup-compute-insert sequence; instead the
	// generation is read before computing and the insert is discarded if
	// an Add bumped it in between (catalog.PutAt), so a result computed
	// here can never be inserted at a generation newer than its data.
	var key string
	var gen int
	if opts.Cache {
		key = catalog.Key(v.inner.Text, keywords,
			catalog.IntPart(opts.TopK),
			catalog.BoolPart(opts.Disjunctive),
			catalog.IntPart(int(opts.Approach)))
		gen = db.catalog.Gen()
		if val, ok := db.catalog.Get(key); ok {
			hit := val.(*cachedSearch)
			stats := hit.stats
			stats.CacheHit = true
			stats.PlanSource = catalog.PlanCacheHit
			stats.PlanView = db.catalog.IDOf(v.inner.Text)
			return remapTF(hit.results, keywords), &stats, nil
		}
		// Window rewrite: a top-K ranking is a prefix of the full ranking
		// (the heap's total order is the sort order), so a cached unranked
		// TopK=0 entry answers any TopK>0 query over the same (view,
		// keywords, semantics) by slicing — same ranks, scores, trees and
		// snippets as a direct top-K search. The timing fields then
		// describe the original full computation, like a cache hit's.
		if opts.TopK > 0 && !opts.NoRewrite {
			fullKey := catalog.Key(v.inner.Text, keywords,
				catalog.IntPart(0),
				catalog.BoolPart(opts.Disjunctive),
				catalog.IntPart(int(opts.Approach)))
			if val, ok := db.catalog.Probe(fullKey); ok {
				hit := val.(*cachedSearch)
				stats := hit.stats
				stats.PlanSource = catalog.PlanRewritten
				stats.PlanView = db.catalog.IDOf(v.inner.Text)
				db.catalog.AccessPlanned(v.inner.Text, catalog.PlanRewritten)
				return pageSlice(remapTF(hit.results, keywords), 0, opts.TopK), &stats, nil
			}
		}
	}
	out, stats, err := db.searchUncached(ctx, v, keywords, opts, 0)
	if err != nil {
		return nil, nil, err
	}
	if opts.Cache {
		stored := storedResults(out)
		db.catalog.PutAt(key, &cachedSearch{results: stored, stats: *stats}, gen, resultsFootprint(stored))
	}
	return out, stats, nil
}

// normalizeOptions maps a nil or out-of-range Options to its canonical
// form. Every negative TopK or Offset means the same thing as 0, and every
// negative Parallelism the same thing as 1 (the sequential path — exactly
// how core.Options reads it); normalizing before the cache key is built
// keeps each family one cache entry, and library callers can never hand
// the engine an out-of-range value the HTTP layer would have rejected.
func normalizeOptions(opts *Options) *Options {
	if opts == nil {
		return &Options{}
	}
	if opts.TopK < 0 || opts.Offset < 0 || opts.Parallelism < 0 {
		o := *opts
		o.TopK = max(o.TopK, 0)
		o.Offset = max(o.Offset, 0)
		if o.Parallelism < 0 {
			o.Parallelism = 1
		}
		return &o
	}
	return opts
}

// pageSlice cuts the [offset, offset+k) window out of the full ranked
// result list (k = 0: everything from offset on). The slice aliases the
// input, which the caller owns.
func pageSlice(results []Result, offset, k int) []Result {
	if offset >= len(results) {
		return nil
	}
	page := results[offset:]
	if k > 0 && k < len(page) {
		page = page[:k]
	}
	return page
}

// resultsFootprint approximates the resident bytes of a cached entry for
// the cache's byte bound: the dominant XML and snippet strings plus a small
// per-result and per-TF-key allowance.
func resultsFootprint(in []Result) int {
	n := 0
	for _, r := range in {
		n += len(r.XML) + len(r.Snippet) + 64
		for k := range r.TF {
			n += len(k) + 16
		}
	}
	return n
}

// searchUncached runs the full pipeline; the engine takes its own read
// lock. pageOffset > 0 returns only the ranked winners from that position
// on (ranks stay absolute): the Efficient engine skips the prefix before
// materializing it, while the comparators — which materialize as part of
// their cost model — slice afterwards.
func (db *Database) searchUncached(ctx context.Context, v *View, keywords []string, opts *Options, pageOffset int) ([]Result, *Stats, error) {
	copts := core.Options{K: opts.TopK, Disjunctive: opts.Disjunctive, Parallelism: opts.Parallelism}
	var (
		results []core.Result
		stats   = &Stats{Workers: 1, PlanSource: catalog.PlanDirect}
		err     error
	)
	switch opts.Approach {
	case Efficient:
		// Cache opts the search into the engine's planner tiers too; the
		// comparator pipelines below always evaluate directly.
		copts.Plan = opts.Cache && !opts.NoRewrite
		var cs *core.Stats
		results, cs, err = db.engine.SearchPage(ctx, v.inner, keywords, copts, pageOffset)
		pageOffset = 0 // the engine already skipped the prefix
		if err == nil {
			stats.PDTTime, stats.EvalTime, stats.PostTime = cs.PDTTime, cs.EvalTime, cs.PostTime
			stats.Total = cs.Total()
			stats.PDTNodes = cs.PDTNodes
			stats.ViewSize = cs.ViewResults
			stats.Matched = cs.Matched
			stats.BaseData = cs.SubtreeFetches
			stats.Workers = cs.Workers
			stats.Candidates = cs.Candidates
			stats.ShardsSearched = cs.ShardsSearched
			stats.PlanSource = cs.PlanSource
			stats.PlanView = cs.PlanView
		}
	case Baseline:
		var bs *baseline.Stats
		results, bs, err = baseline.SearchContext(ctx, db.engine, v.inner, keywords, copts)
		if err == nil {
			stats.EvalTime = bs.MaterializeTime
			stats.PostTime = bs.SearchTime
			stats.Total = bs.Total()
			stats.ViewSize = bs.ViewResults
			stats.Matched = bs.Matched
			stats.Candidates = bs.Candidates
			stats.ShardsSearched = bs.ShardsSearched
		}
	case GTPTermJoin:
		var gs *gtp.Stats
		results, gs, err = gtp.SearchContext(ctx, db.engine, v.inner, keywords, copts)
		if err == nil {
			stats.PDTTime = gs.StructJoinTime
			stats.EvalTime = gs.EvalTime
			stats.PostTime = gs.PostTime
			stats.Total = gs.Total()
			stats.ViewSize = gs.ViewResults
			stats.Matched = gs.Matched
			stats.Candidates = gs.Candidates
			stats.ShardsSearched = gs.ShardsSearched
		}
	default:
		return nil, nil, fmt.Errorf("%w: unknown approach %d", ErrInvalidOptions, opts.Approach)
	}
	if err != nil {
		return nil, nil, err
	}
	out := make([]Result, len(results))
	for i, r := range results {
		out[i] = toResult(r, keywords)
	}
	if pageOffset > 0 {
		out = pageSlice(out, pageOffset, 0)
	}
	return out, stats, nil
}

// toResult converts one engine result into the caller-facing form, keying
// the TF map by the caller's own keyword spellings.
func toResult(r core.Result, keywords []string) Result {
	tf := map[string]int{}
	for j, k := range keywords {
		if j < len(r.TFs) {
			tf[k] = r.TFs[j]
		}
	}
	return Result{Rank: r.Rank, Score: r.Score, TF: tf, XML: r.Element.XMLString(""), Snippet: r.Snippet}
}

// storedResults deep-copies a result slice for insertion into the cache,
// rekeying the TF maps by normalized keyword so a hit can be re-expressed
// in any caller's keyword forms. The copy also keeps cache entries immutable
// no matter what callers do with the originally returned values.
func storedResults(in []Result) []Result {
	return copyResultsKeyed(in, core.NormalizeKeyword)
}

// copyResultsKeyed deep-copies a result slice, rewriting each TF key
// through keyFn; the copy keeps cache entries immutable no matter what
// callers do with the values they were handed.
func copyResultsKeyed(in []Result, keyFn func(string) string) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		tf := make(map[string]int, len(r.TF))
		for k, v := range r.TF {
			tf[keyFn(k)] = v
		}
		r.TF = tf
		out[i] = r
	}
	return out
}

// copyResults deep-copies a result slice (including TF maps) without
// rekeying, for Query's text-keyed cache entries whose TF maps are already
// in the query's own keyword forms.
func copyResults(in []Result) []Result {
	return copyResultsKeyed(in, func(k string) string { return k })
}

// remapTF copies cached results for return to a caller, keying each TF map
// by the caller's own keyword forms — exactly what the uncached path would
// have produced for them.
func remapTF(in []Result, keywords []string) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		tf := make(map[string]int, len(keywords))
		for _, k := range keywords {
			tf[k] = r.TF[core.NormalizeKeyword(k)]
		}
		r.TF = tf
		out[i] = r
	}
	return out
}

// Explain renders the query plan for a keyword search over the view: the
// QPTs derived from the view definition and the exact index probes PDT
// generation will issue. Nothing is evaluated.
func (db *Database) Explain(v *View, keywords []string) string {
	return db.engine.Explain(v.inner, keywords)
}

// ExplainContext is Explain with a cancellation pre-flight: plan rendering
// is brief, so one ctx check before taking the read locks is the whole
// cooperation, returning a wrapped ctx.Err() when it fails.
func (db *Database) ExplainContext(ctx context.Context, v *View, keywords []string) (string, error) {
	return db.engine.ExplainContext(ctx, v.inner, keywords)
}

// Query runs a complete Figure-2 style keyword query: a let-bound view
// followed by `for $r in $view where $r ftcontains('k1' & 'k2') return $r`.
// Query never cancels; use QueryContext for deadlines and cancellation.
func (db *Database) Query(fullQuery string, opts *Options) ([]Result, *Stats, error) {
	return db.QueryContext(context.Background(), fullQuery, opts)
}

// QueryContext is Query with cooperative cancellation, propagated through
// the inner search exactly as in SearchContext; the returned error wraps
// ctx.Err(), and a canceled query inserts nothing into the cache.
func (db *Database) QueryContext(ctx context.Context, fullQuery string, opts *Options) ([]Result, *Stats, error) {
	opts = normalizeOptions(opts)
	// The keywords and the conjunctive/disjunctive flag are part of the
	// query text itself, so the cache is consulted on the verbatim text
	// before any parsing: a repeat Query skips xq.Parse and QPT
	// generation (which grows with the corpus's path dictionary), not
	// just evaluation. Entries here store the final caller-facing
	// results, already keyed by the query's own keyword forms.
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("vxml: query interrupted: %w", err)
	}
	var key string
	var gen int
	if opts.Cache {
		key = catalog.Key("query:"+fullQuery, nil,
			catalog.IntPart(opts.TopK),
			catalog.IntPart(opts.Offset),
			catalog.IntPart(int(opts.Approach)))
		gen = db.catalog.Gen()
		if val, ok := db.catalog.Get(key); ok {
			hit := val.(*cachedSearch)
			stats := hit.stats
			stats.CacheHit = true
			stats.PlanSource = catalog.PlanCacheHit
			return copyResults(hit.results), &stats, nil
		}
	}
	parsed, err := xq.Parse(fullQuery)
	if err != nil {
		return nil, nil, err
	}
	kq, err := core.SplitKeywordQuery(parsed)
	if err != nil {
		return nil, nil, err
	}
	v, err := db.engine.CompileParsedView(fullQuery, kq.ViewExpr, kq.Funcs)
	if err != nil {
		return nil, nil, err
	}
	effective := *opts
	effective.Disjunctive = !kq.Conjunctive
	// The text-keyed entry below is the one a repeat Query hits, and no
	// caller can reach the inner Search with this synthetic view; leaving
	// Search's own caching on would just burn a second LRU slot per query.
	effective.Cache = false
	out, stats, err := db.SearchContext(ctx, &View{inner: v}, kq.Keywords, &effective)
	if err != nil {
		return nil, nil, err
	}
	if opts.Cache {
		stored := copyResults(out)
		db.catalog.PutAt(key, &cachedSearch{results: stored, stats: *stats}, gen, resultsFootprint(stored))
	}
	return out, stats, nil
}
