// Package vxml implements efficient ranked keyword search over virtual
// (unmaterialized) XML views, reproducing Shao et al., "Efficient Keyword
// Search over Virtual XML Views", VLDB 2007.
//
// A Database holds XML documents with path and inverted-list indices. A
// View is an XQuery expression (joins, nesting, predicates) over those
// documents that is never materialized. Search evaluates a ranked keyword
// query over the view by (1) deriving Query Pattern Trees from the view
// definition, (2) building Pruned Document Trees from the indices alone,
// (3) running the view over the PDTs, and (4) scoring with element-level
// TF-IDF and materializing only the top-k winners — with scores and rank
// order provably identical to materializing the whole view.
//
// Quick start:
//
//	db := vxml.Open()
//	db.MustAdd("books.xml", booksXML)
//	db.MustAdd("reviews.xml", reviewsXML)
//	view, err := db.DefineView(`
//	  for $book in fn:doc(books.xml)/books//book
//	  where $book/year > 1995
//	  return <bookrevs>
//	           <book>{$book/title}</book>,
//	           {for $rev in fn:doc(reviews.xml)/reviews//review
//	            where $rev/isbn = $book/isbn
//	            return $rev/content}
//	         </bookrevs>`)
//	results, stats, err := db.Search(view, []string{"xml", "search"}, nil)
package vxml

import (
	"fmt"
	"time"

	"vxml/internal/baseline"
	"vxml/internal/core"
	"vxml/internal/gtp"
	"vxml/internal/store"
	"vxml/internal/xq"
)

// Database is a collection of XML documents with the indices required for
// keyword search over virtual views.
type Database struct {
	engine *core.Engine
}

// Open creates an empty database.
func Open() *Database {
	return &Database{engine: core.New(store.New())}
}

// Add parses, stores and indexes an XML document under the given name
// (referenced from views as fn:doc(name)).
func (db *Database) Add(name, xmlText string) error {
	return db.engine.AddXML(name, xmlText)
}

// MustAdd is Add that panics on error, for tests and examples.
func (db *Database) MustAdd(name, xmlText string) {
	if err := db.Add(name, xmlText); err != nil {
		panic(err)
	}
}

// DocumentNames returns the names of all loaded documents.
func (db *Database) DocumentNames() []string {
	docs := db.engine.Store.Docs()
	names := make([]string, len(docs))
	for i, d := range docs {
		names[i] = d.Name
	}
	return names
}

// TotalBytes reports the summed serialized size of all documents.
func (db *Database) TotalBytes() int { return db.engine.Store.TotalBytes() }

// View is a compiled virtual view.
type View struct {
	inner *core.View
}

// Definition returns the view's XQuery text.
func (v *View) Definition() string { return v.inner.Text }

// DefineView compiles a view definition: an XQuery expression in the
// supported grammar (FLWOR, child/descendant paths, leaf-value predicates,
// element constructors, non-recursive functions).
func (db *Database) DefineView(xquery string) (*View, error) {
	v, err := db.engine.CompileView(xquery)
	if err != nil {
		return nil, err
	}
	return &View{inner: v}, nil
}

// Options configure a search. The zero value means conjunctive semantics
// and all matching results.
type Options struct {
	// TopK limits the number of returned results (0 = all matches).
	TopK int
	// Disjunctive matches any keyword instead of all keywords.
	Disjunctive bool
	// Approach selects the pipeline; the default is Efficient. The
	// comparators exist for benchmarking and produce identical results.
	Approach Approach
}

// Approach selects the query processing pipeline.
type Approach int

// Available pipelines (paper §5.1).
const (
	// Efficient is the paper's contribution: index-only PDT generation
	// with deferred materialization.
	Efficient Approach = iota
	// Baseline materializes the entire view at query time.
	Baseline
	// GTPTermJoin uses structural joins with TermJoin (Timber-style).
	GTPTermJoin
)

// Result is one ranked search result.
type Result struct {
	Rank  int
	Score float64
	// TF maps each query keyword to its frequency in the result.
	TF map[string]int
	// XML is the fully materialized result element.
	XML string
	// Snippet is a keyword-in-context excerpt from the result.
	Snippet string
}

// Stats reports the per-phase cost of a search (paper Figure 14).
type Stats struct {
	PDTTime  time.Duration // PDT generation (index-only)
	EvalTime time.Duration // view evaluation over the PDTs
	PostTime time.Duration // scoring + top-k materialization
	Total    time.Duration
	PDTNodes int // elements across all PDTs
	ViewSize int // |V(D)|: number of view results
	Matched  int // results satisfying the keyword semantics
	BaseData int // base-data subtree fetches (top-k materialization only)
}

// Search evaluates a ranked keyword query over the view. Keywords are
// case-insensitive. A nil opts means conjunctive semantics, all results,
// Efficient pipeline.
func (db *Database) Search(v *View, keywords []string, opts *Options) ([]Result, *Stats, error) {
	if opts == nil {
		opts = &Options{}
	}
	copts := core.Options{K: opts.TopK, Disjunctive: opts.Disjunctive}
	var (
		results []core.Result
		stats   = &Stats{}
		err     error
	)
	switch opts.Approach {
	case Efficient:
		var cs *core.Stats
		results, cs, err = db.engine.Search(v.inner, keywords, copts)
		if err == nil {
			stats.PDTTime, stats.EvalTime, stats.PostTime = cs.PDTTime, cs.EvalTime, cs.PostTime
			stats.Total = cs.Total()
			stats.PDTNodes = cs.PDTNodes
			stats.ViewSize = cs.ViewResults
			stats.Matched = cs.Matched
			stats.BaseData = cs.SubtreeFetches
		}
	case Baseline:
		var bs *baseline.Stats
		results, bs, err = baseline.Search(db.engine, v.inner, keywords, copts)
		if err == nil {
			stats.EvalTime = bs.MaterializeTime
			stats.PostTime = bs.SearchTime
			stats.Total = bs.Total()
			stats.ViewSize = bs.ViewResults
			stats.Matched = bs.Matched
		}
	case GTPTermJoin:
		var gs *gtp.Stats
		results, gs, err = gtp.Search(db.engine, v.inner, keywords, copts)
		if err == nil {
			stats.PDTTime = gs.StructJoinTime
			stats.EvalTime = gs.EvalTime
			stats.PostTime = gs.PostTime
			stats.Total = gs.Total()
			stats.ViewSize = gs.ViewResults
			stats.Matched = gs.Matched
		}
	default:
		return nil, nil, fmt.Errorf("vxml: unknown approach %d", opts.Approach)
	}
	if err != nil {
		return nil, nil, err
	}
	out := make([]Result, len(results))
	for i, r := range results {
		tf := map[string]int{}
		for j, k := range keywords {
			if j < len(r.TFs) {
				tf[k] = r.TFs[j]
			}
		}
		out[i] = Result{Rank: r.Rank, Score: r.Score, TF: tf, XML: r.Element.XMLString(""), Snippet: r.Snippet}
	}
	return out, stats, nil
}

// Explain renders the query plan for a keyword search over the view: the
// QPTs derived from the view definition and the exact index probes PDT
// generation will issue. Nothing is evaluated.
func (db *Database) Explain(v *View, keywords []string) string {
	return db.engine.Explain(v.inner, keywords)
}

// Query runs a complete Figure-2 style keyword query: a let-bound view
// followed by `for $r in $view where $r ftcontains('k1' & 'k2') return $r`.
func (db *Database) Query(fullQuery string, opts *Options) ([]Result, *Stats, error) {
	parsed, err := xq.Parse(fullQuery)
	if err != nil {
		return nil, nil, err
	}
	kq, err := core.SplitKeywordQuery(parsed)
	if err != nil {
		return nil, nil, err
	}
	v, err := db.engine.CompileParsedView(fullQuery, kq.ViewExpr, kq.Funcs)
	if err != nil {
		return nil, nil, err
	}
	if opts == nil {
		opts = &Options{}
	}
	effective := *opts
	effective.Disjunctive = !kq.Conjunctive
	return db.Search(&View{inner: v}, kq.Keywords, &effective)
}
