// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark measures one pipeline/configuration; run
//
//	go test -bench=. -benchmem
//
// for the full sweep, or use cmd/benchrunner for the paper-style tables.
// One paper data unit (100MB) maps to benchUnit bytes so the sweeps keep
// their shape at test scale.
package vxml_test

import (
	"fmt"
	"testing"

	"vxml/internal/benchkit"
	"vxml/internal/core"
)

// benchUnit is the bench-scale stand-in for the paper's 100MB unit.
const benchUnit = 128 << 10

func benchParams() benchkit.Params {
	p := benchkit.Default()
	p.UnitBytes = benchUnit
	return p
}

func buildWorkload(b *testing.B, p benchkit.Params) *benchkit.Workload {
	b.Helper()
	w, err := benchkit.Build(p)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkFig13 compares the four approaches while varying data size
// (Figure 13; Baseline/GTP/Proj are the comparators).
func BenchmarkFig13(b *testing.B) {
	for _, size := range []int{1, 3, 5} {
		p := benchParams()
		p.SizeUnits = size
		w := buildWorkload(b, p)
		b.Run(fmt.Sprintf("size=%d/Efficient", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunEfficient(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/Baseline", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunBaseline(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/GTP", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := w.RunGTP(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/Proj", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.RunProj()
			}
		})
	}
}

// benchEfficient runs the Efficient pipeline under one configuration and
// reports the module breakdown as custom metrics (Figure 14's split).
func benchEfficient(b *testing.B, p benchkit.Params) {
	w := buildWorkload(b, p)
	var pdtNS, evalNS, postNS int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := w.RunEfficient()
		if err != nil {
			b.Fatal(err)
		}
		pdtNS += s.PDTTime.Nanoseconds()
		evalNS += s.EvalTime.Nanoseconds()
		postNS += s.PostTime.Nanoseconds()
	}
	n := int64(b.N)
	b.ReportMetric(float64(pdtNS/n), "pdt-ns/op")
	b.ReportMetric(float64(evalNS/n), "eval-ns/op")
	b.ReportMetric(float64(postNS/n), "post-ns/op")
}

// BenchmarkFig14 reports Efficient's module breakdown vs data size.
func BenchmarkFig14(b *testing.B) {
	for _, size := range []int{1, 2, 3, 4, 5} {
		p := benchParams()
		p.SizeUnits = size
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig15 varies the number of query keywords (1-5).
func BenchmarkFig15(b *testing.B) {
	for n := 1; n <= 5; n++ {
		p := benchParams()
		p.NumKeywords = n
		b.Run(fmt.Sprintf("keywords=%d", n), func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig16 varies keyword selectivity (low/medium/high).
func BenchmarkFig16(b *testing.B) {
	for _, sel := range []string{"low", "medium", "high"} {
		p := benchParams()
		p.Selectivity = sel
		b.Run("selectivity="+sel, func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig17 varies the number of value joins in the view (0-4).
func BenchmarkFig17(b *testing.B) {
	for joins := 0; joins <= 4; joins++ {
		p := benchParams()
		p.NumJoins = joins
		b.Run(fmt.Sprintf("joins=%d", joins), func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig18 varies join selectivity (1X down to 0.1X).
func BenchmarkFig18(b *testing.B) {
	for _, pt := range []struct {
		label string
		parts int
	}{{"1X", 1}, {"0.5X", 2}, {"0.2X", 5}, {"0.1X", 10}} {
		p := benchParams()
		p.JoinPartitions = pt.parts
		b.Run("selectivity="+pt.label, func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig19 varies the nesting level of the view (1-4).
func BenchmarkFig19(b *testing.B) {
	for level := 1; level <= 4; level++ {
		p := benchParams()
		p.Nesting = level
		b.Run(fmt.Sprintf("nesting=%d", level), func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig20 varies K in top-K (1-40).
func BenchmarkFig20(b *testing.B) {
	for _, k := range []int{1, 10, 20, 30, 40} {
		p := benchParams()
		p.TopK = k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) { benchEfficient(b, p) })
	}
}

// BenchmarkFig21 varies the average view element size (§5.2.3 "other
// results") and reports PDT size alongside.
func BenchmarkFig21(b *testing.B) {
	for x := 1; x <= 5; x++ {
		p := benchParams()
		p.ElemSizeX = x
		b.Run(fmt.Sprintf("elemsize=%dX", x), func(b *testing.B) {
			w := buildWorkload(b, p)
			var pdtNodes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := w.RunEfficient()
				if err != nil {
					b.Fatal(err)
				}
				pdtNodes = s.PDTNodes
			}
			b.ReportMetric(float64(pdtNodes), "pdt-nodes")
		})
	}
}

// BenchmarkAblationHashJoin quantifies the evaluator's equality-join fast
// path (a design choice DESIGN.md calls out: it stands in for Quark's
// value indexes and benefits Baseline and Efficient alike).
func BenchmarkAblationHashJoin(b *testing.B) {
	p := benchParams()
	p.SizeUnits = 1
	w := buildWorkload(b, p)
	for _, hash := range []bool{true, false} {
		name := "hashjoin=on"
		if !hash {
			name = "hashjoin=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, err := w.Engine.Search(w.View, w.Keywords, coreOptions(w, !hash))
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func coreOptions(w *benchkit.Workload, disableHashJoin bool) core.Options {
	return core.Options{K: w.Params.TopK, DisableHashJoin: disableHashJoin}
}

// BenchmarkAblationKeywordPruning measures the selection-view keyword
// pruning extension (paper §7 future work, monotone case): rare keywords
// over a selection view skip most PDT work.
func BenchmarkAblationKeywordPruning(b *testing.B) {
	p := benchParams()
	p.Selectivity = "medium" // selective keywords: most articles prunable
	w := buildWorkload(b, p)
	// A true selection view (return the binding element directly) — the
	// only shape where the monotone pruning extension is sound.
	view, err := w.Engine.CompileView(`
for $a in fn:doc(inex.xml)/books//article
where $a/fm/yr > 1992
return $a`)
	if err != nil {
		b.Fatal(err)
	}
	for _, pruning := range []bool{false, true} {
		name := "pruning=off"
		if pruning {
			name = "pruning=on"
		}
		b.Run(name, func(b *testing.B) {
			var nodes int
			for i := 0; i < b.N; i++ {
				_, stats, err := w.Engine.Search(view, w.Keywords,
					core.Options{K: w.Params.TopK, KeywordPruning: pruning, SkipMaterialize: true})
				if err != nil {
					b.Fatal(err)
				}
				nodes = stats.PDTNodes
				if pruning && !stats.KeywordPruned {
					b.Fatal("pruning not applied")
				}
			}
			b.ReportMetric(float64(nodes), "pdt-nodes")
		})
	}
}

// BenchmarkIndexBuild measures index construction cost per data size
// (load-time cost, amortized across queries in the paper's setting).
func BenchmarkIndexBuild(b *testing.B) {
	for _, size := range []int{1, 5} {
		p := benchParams()
		p.SizeUnits = size
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := benchkit.Build(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
