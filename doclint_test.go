// Documentation lint: every package in the module must carry a
// package-level doc comment, and every exported symbol of the public vxml
// package must be documented. This is the enforcement half of the
// documentation set (README.md, docs/) — godoc coverage cannot silently
// rot once it is a test.
package vxml

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// modulePackageDirs returns the module's non-test package directories:
// the root, cmd/*, examples/* and internal/*.
func modulePackageDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, glob := range []string{"cmd/*", "examples/*", "internal/*"} {
		matches, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if fi, err := os.Stat(m); err == nil && fi.IsDir() {
				dirs = append(dirs, m)
			}
		}
	}
	return dirs
}

func parseDir(t *testing.T, dir string) map[string]*ast.File {
	t.Helper()
	fset := token.NewFileSet()
	files := map[string]*ast.File{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files[path] = f
	}
	return files
}

// TestEveryPackageHasDocComment asserts each package directory contains at
// least one file with a doc comment on its package clause.
func TestEveryPackageHasDocComment(t *testing.T) {
	for _, dir := range modulePackageDirs(t) {
		files := parseDir(t, dir)
		if len(files) == 0 {
			continue
		}
		documented := false
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package directory %s has no package-level doc comment", dir)
		}
	}
}

// symbolDocDirs are the package directories whose exported symbols must
// all carry doc comments: the public root package, plus the internal
// packages whose surfaces back the documentation set — the benchmark
// substrate and the load harness (docs/BENCHMARKS.md describes both
// report schemas), the view catalog (docs/ARCHITECTURE.md's "Catalog
// and query planning"), the scoring module and the document store (both
// central to docs/ARCHITECTURE.md and docs/TUNING.md).
var symbolDocDirs = []string{".", "internal/benchkit", "internal/catalog", "internal/diskstore", "internal/loadkit", "internal/scoring", "internal/store"}

// TestPublicAPIExportedSymbolsDocumented asserts every exported top-level
// declaration of the root vxml package — and of the internal packages the
// documentation set leans on — carries a doc comment.
func TestPublicAPIExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range symbolDocDirs {
		checkExportedSymbolDocs(t, dir)
	}
}

// checkExportedSymbolDocs reports every undocumented exported top-level
// declaration in one package directory.
func checkExportedSymbolDocs(t *testing.T, dir string) {
	t.Helper()
	for path, f := range parseDir(t, dir) {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					t.Errorf("%s: exported %s %s lacks a doc comment", path, kindOf(d), d.Name.Name)
				}
			case *ast.GenDecl:
				// A doc comment on the grouped decl covers its specs
				// (idiomatic for const blocks).
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							t.Errorf("%s: exported type %s lacks a doc comment", path, s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && s.Doc == nil && s.Comment == nil {
								t.Errorf("%s: exported value %s lacks a doc comment", path, n.Name)
							}
						}
					}
				}
			}
		}
	}
}

func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}
