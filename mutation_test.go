// Database-level lifecycle semantics: cache invalidation on Replace and
// Delete, the error taxonomy, and the ctx forms' cancellation pre-flight.
package vxml_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"vxml"
	"vxml/internal/testkit"
)

const mutDocV1 = `<books><article><fm><tl>copper quartz v1</tl><au>author0</au><yr>1999</yr></fm><bdy>copper quartz marker-v1</bdy></article></books>`
const mutDocV2 = `<books><article><fm><tl>copper quartz v2</tl><au>author0</au><yr>1999</yr></fm><bdy>copper quartz marker-v2</bdy></article></books>`

func TestReplaceInvalidatesCache(t *testing.T) {
	db := vxml.Open()
	db.MustAdd("part-00.xml", mutDocV1)
	v, err := db.DefineView(`for $a in fn:collection("part-*")/books//article return <art>{$a/bdy}</art>`)
	if err != nil {
		t.Fatal(err)
	}
	opts := &vxml.Options{Cache: true}
	kws := []string{"copper"}

	first, _, err := db.Search(v, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	hit, stats, err := db.Search(v, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CacheHit {
		t.Fatal("repeat search did not hit the cache")
	}
	testkit.MustEqualResults(t, "cache hit", hit, first)

	if err := db.Replace("part-00.xml", mutDocV2); err != nil {
		t.Fatal(err)
	}
	after, stats, err := db.Search(v, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Error("search after Replace served from the pre-mutation cache")
	}
	if len(after) != 1 || !strings.Contains(after[0].XML, "marker-v2") || strings.Contains(after[0].XML, "marker-v1") {
		t.Errorf("post-replace results stale: %+v", after)
	}

	if err := db.Delete("part-00.xml"); err != nil {
		t.Fatal(err)
	}
	gone, stats, err := db.Search(v, kws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHit {
		t.Error("search after Delete served from the pre-mutation cache")
	}
	if len(gone) != 0 {
		t.Errorf("post-delete results = %d, want 0", len(gone))
	}
	// Three mutations (add counts too) → three generation bumps.
	if got := db.CacheStats().Invalidations; got != 3 {
		t.Errorf("cache invalidations = %d, want 3", got)
	}
	if got := db.ShardStats(); len(got) > 0 {
		total := 0
		for _, sh := range got {
			total += sh.Mutations
		}
		if total != 2 {
			t.Errorf("shard mutation counters sum to %d, want 2", total)
		}
	}
}

func TestMutationErrorTaxonomy(t *testing.T) {
	db := vxml.Open()
	db.MustAdd("a.xml", "<a><t>x</t></a>")
	if err := db.Replace("missing.xml", "<a/>"); !errors.Is(err, vxml.ErrUnknownDocument) {
		t.Errorf("Replace unknown: %v, want vxml.ErrUnknownDocument", err)
	}
	if err := db.Delete("missing.xml"); !errors.Is(err, vxml.ErrUnknownDocument) {
		t.Errorf("Delete unknown: %v, want vxml.ErrUnknownDocument", err)
	}
	if err := db.Replace("a.xml", "<unclosed"); err == nil {
		t.Error("Replace with malformed XML should fail")
	}
	// A failed replace must not damage the registered document.
	v, err := db.DefineView(`for $x in fn:doc(a.xml)/a return $x`)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := db.Search(v, []string{"x"}, nil)
	if err != nil || len(results) != 1 {
		t.Errorf("document damaged by failed replace: %d results, %v", len(results), err)
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := db.ReplaceContext(canceled, "a.xml", "<a><t>y</t></a>"); !errors.Is(err, context.Canceled) {
		t.Errorf("ReplaceContext pre-flight: %v", err)
	}
	if err := db.DeleteContext(canceled, "a.xml"); !errors.Is(err, context.Canceled) {
		t.Errorf("DeleteContext pre-flight: %v", err)
	}
	// The dead ctx stopped both mutations before they touched the corpus.
	if names := db.DocumentNames(); len(names) != 1 || names[0] != "a.xml" {
		t.Errorf("corpus changed by canceled mutation: %v", names)
	}
}
