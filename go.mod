module vxml

go 1.24
