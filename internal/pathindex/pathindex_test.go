package pathindex

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"vxml/internal/dewey"
	"vxml/internal/pred"
	"vxml/internal/xmltree"
)

const booksXML = `<books>
  <book><isbn>111-11-1111</isbn><title>XML Web Services</title><year>1996</year></book>
  <book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title><year>1994</year></book>
  <book><isbn>333-33-3333</isbn><title>Databases</title><year>2004</year></book>
</books>`

func buildBooks(t *testing.T) (*xmltree.Document, *Index) {
	t.Helper()
	doc, err := xmltree.ParseString(booksXML, "books.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	return doc, Build(doc)
}

func steps(pattern ...Step) []Step { return pattern }

func TestMatchPath(t *testing.T) {
	cases := []struct {
		steps []Step
		path  string
		want  bool
	}{
		{steps(Step{Child, "books"}, Step{Descendant, "book"}, Step{Child, "isbn"}), "/books/book/isbn", true},
		{steps(Step{Child, "books"}, Step{Descendant, "book"}, Step{Child, "isbn"}), "/books/shelf/book/isbn", true},
		{steps(Step{Child, "books"}, Step{Child, "book"}, Step{Child, "isbn"}), "/books/shelf/book/isbn", false},
		{steps(Step{Child, "books"}, Step{Descendant, "isbn"}), "/books/book/isbn", true},
		{steps(Step{Child, "books"}, Step{Child, "book"}), "/books/book/isbn", false}, // must match whole path
		{steps(Step{Descendant, "a"}, Step{Descendant, "a"}), "/a/a/a", true},
		{steps(Step{Descendant, "a"}, Step{Descendant, "a"}, Step{Descendant, "a"}, Step{Descendant, "a"}), "/a/a/a", false},
	}
	for _, c := range cases {
		if got := MatchPath(c.steps, c.path); got != c.want {
			t.Errorf("MatchPath(%s, %s) = %v, want %v", FormatSteps(c.steps), c.path, got, c.want)
		}
	}
}

func TestFormatSteps(t *testing.T) {
	s := steps(Step{Child, "books"}, Step{Descendant, "book"}, Step{Child, "isbn"})
	if got := FormatSteps(s); got != "/books//book/isbn" {
		t.Errorf("FormatSteps = %q", got)
	}
}

func TestLookupPathNoPred(t *testing.T) {
	_, ix := buildBooks(t)
	res := ix.LookupPath(steps(Step{Child, "books"}, Step{Descendant, "book"}, Step{Child, "isbn"}), nil)
	if len(res) != 1 || res[0].FullPath != "/books/book/isbn" {
		t.Fatalf("res = %+v", res)
	}
	var ids []string
	for _, p := range res[0].Postings {
		ids = append(ids, p.ID.String())
	}
	want := []string{"1.1.1", "1.2.1", "1.3.1"}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("ids = %v, want %v", ids, want)
	}
	if !res[0].Postings[0].HasValue || res[0].Postings[0].Value != "111-11-1111" {
		t.Errorf("values not propagated: %+v", res[0].Postings[0])
	}
}

func TestLookupPathEqualityPredicate(t *testing.T) {
	_, ix := buildBooks(t)
	probesBefore := ix.Probes()
	res := ix.LookupPath(
		steps(Step{Child, "books"}, Step{Child, "book"}, Step{Child, "isbn"}),
		[]pred.Predicate{{Op: pred.Eq, Lit: "222-22-2222"}})
	if len(res) != 1 || len(res[0].Postings) != 1 || res[0].Postings[0].ID.String() != "1.2.1" {
		t.Fatalf("res = %+v", res)
	}
	if ix.Probes() == probesBefore {
		t.Error("equality probe should hit the B+-tree")
	}
}

func TestLookupPathRangePredicate(t *testing.T) {
	_, ix := buildBooks(t)
	res := ix.LookupPath(
		steps(Step{Child, "books"}, Step{Descendant, "book"}, Step{Child, "year"}),
		[]pred.Predicate{{Op: pred.Gt, Lit: "1995"}})
	var ids []string
	for _, p := range res[0].Postings {
		ids = append(ids, p.ID.String())
	}
	want := []string{"1.1.3", "1.3.3"} // years 1996 and 2004
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("ids = %v, want %v", ids, want)
	}
}

func TestLookupNonLeafPath(t *testing.T) {
	_, ix := buildBooks(t)
	res := ix.LookupPath(steps(Step{Child, "books"}, Step{Child, "book"}), nil)
	if len(res) != 1 || len(res[0].Postings) != 3 {
		t.Fatalf("res = %+v", res)
	}
	if res[0].Postings[0].HasValue {
		t.Error("non-leaf posting should have null value")
	}
	if res[0].Postings[0].ByteLen == 0 {
		t.Error("byte length missing")
	}
}

func TestLookupMissingPath(t *testing.T) {
	_, ix := buildBooks(t)
	if res := ix.LookupPath(steps(Step{Child, "books"}, Step{Child, "missing"}), nil); res != nil {
		t.Errorf("expected nil, got %+v", res)
	}
}

func TestDescendantExpansionAcrossFullPaths(t *testing.T) {
	xmlText := `<r><a><x>1</x></a><b><a><x>2</x></a></b></r>`
	doc, err := xmltree.ParseString(xmlText, "r.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	ix := Build(doc)
	res := ix.LookupPath(steps(Step{Child, "r"}, Step{Descendant, "a"}, Step{Child, "x"}), nil)
	if len(res) != 2 {
		t.Fatalf("expected 2 full paths, got %+v", res)
	}
	paths := []string{res[0].FullPath, res[1].FullPath}
	want := []string{"/r/a/x", "/r/b/a/x"}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("paths = %v, want %v", paths, want)
	}
}

func TestTagPostings(t *testing.T) {
	_, ix := buildBooks(t)
	books := ix.TagPostings("book")
	if len(books) != 3 {
		t.Fatalf("TagPostings(book) = %d entries", len(books))
	}
	if books[1].ID.String() != "1.2" {
		t.Errorf("second book = %s", books[1].ID)
	}
	if ix.TagPostings("nope") != nil {
		t.Error("unknown tag should be nil")
	}
}

func TestPathsDictionary(t *testing.T) {
	_, ix := buildBooks(t)
	want := []string{"/books", "/books/book", "/books/book/isbn", "/books/book/title", "/books/book/year"}
	if !reflect.DeepEqual(ix.Paths(), want) {
		t.Errorf("Paths = %v", ix.Paths())
	}
}

func TestDistinctRowCount(t *testing.T) {
	_, ix := buildBooks(t)
	// 2 non-leaf rows (/books, /books/book) + 9 distinct leaf (path,value) rows
	if got := ix.DistinctRowCount(); got != 11 {
		t.Errorf("DistinctRowCount = %d", got)
	}
}

// randomDoc builds a random document over a tiny tag alphabet so that //
// expansion and repeated tags are exercised.
func randomDoc(r *rand.Rand) *xmltree.Document {
	tags := []string{"a", "b", "c"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := xmltree.NewElement(tags[r.Intn(len(tags))])
		if depth <= 0 || r.Intn(3) == 0 {
			n.Value = []string{"1", "2", "3", "x"}[r.Intn(4)]
			return n
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			n.AppendChild(build(depth - 1))
		}
		return n
	}
	doc := &xmltree.Document{Name: "t.xml", Root: build(3), DocID: 1}
	doc.Finalize()
	return doc
}

// TestQuickLookupEqualsScan: index lookups must equal a naive document scan
// for random documents and random patterns.
func TestQuickLookupEqualsScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := Build(doc)
		// random pattern: root tag + one or two descendant steps
		pattern := []Step{{Child, doc.Root.Tag}}
		for i := 0; i < 1+r.Intn(2); i++ {
			ax := Child
			if r.Intn(2) == 0 {
				ax = Descendant
			}
			pattern = append(pattern, Step{ax, []string{"a", "b", "c"}[r.Intn(3)]})
		}
		// index result: all IDs across full paths
		got := map[string]bool{}
		for _, pp := range ix.LookupPath(pattern, nil) {
			for _, p := range pp.Postings {
				got[p.ID.String()] = true
			}
		}
		// reference: scan the document
		want := map[string]bool{}
		doc.Root.Walk(func(n *xmltree.Node) {
			if MatchPath(pattern, n.PathFromRoot()) {
				want[n.ID.String()] = true
			}
		})
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPostingsSorted: every lookup's postings arrive in Dewey order.
func TestQuickPostingsSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r)
		ix := Build(doc)
		for _, tag := range []string{"a", "b", "c"} {
			pattern := []Step{{Child, doc.Root.Tag}, {Descendant, tag}}
			for _, pp := range ix.LookupPath(pattern, nil) {
				for i := 1; i < len(pp.Postings); i++ {
					if !dewey.Less(pp.Postings[i-1].ID, pp.Postings[i].ID) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
