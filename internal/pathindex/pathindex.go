// Package pathindex implements the Path-Values table of paper §3.2
// (Figure 5): one row per distinct (root-to-element path, atomic value)
// pair, each row holding the sorted list of Dewey IDs of the elements on
// that path with that value, all indexed by a B+-tree on the composite
// (Path, Value) key.
//
// Queries follow the paper exactly: a path query with an equality value
// predicate probes the composite key; a path query without predicates scans
// the Path prefix of the composite key and merges the rows' ID lists; a
// path with descendant axes is first expanded against the path dictionary
// into the matching full data paths, each of which is probed separately.
//
// The index additionally stores each element's subtree byte length in its
// posting (needed by PDT generation for score normalization, §4.2.2.2) and
// a tag index (element IDs per tag) used by the GTP baseline's structural
// joins.
package pathindex

import (
	"sort"
	"strings"

	"vxml/internal/btree"
	"vxml/internal/dewey"
	"vxml/internal/intern"
	"vxml/internal/pred"
	"vxml/internal/xmltree"
)

// Axis is an XPath axis in a path pattern.
type Axis byte

// The two axes of the supported grammar.
const (
	Child      Axis = iota // '/'
	Descendant             // '//'
)

// String renders the axis as it appears in queries.
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// Step is one step of a root-anchored path pattern: an axis followed by a
// tag name test.
type Step struct {
	Axis Axis
	Tag  string
}

// FormatSteps renders a pattern like "/books//book/isbn".
func FormatSteps(steps []Step) string {
	var b strings.Builder
	for _, s := range steps {
		b.WriteString(s.Axis.String())
		b.WriteString(s.Tag)
	}
	return b.String()
}

// Posting is one element occurrence in a row of the Path-Values table.
type Posting struct {
	ID       dewey.ID
	Value    string
	HasValue bool // false for non-leaf elements (the paper's null value)
	ByteLen  int
}

// PathPostings groups the postings of one full data path, in Dewey order.
// PDT generation needs the full path to map ID prefixes back to QPT nodes.
type PathPostings struct {
	FullPath string // e.g. "/books/book/isbn"
	Postings []Posting
}

// row is the value stored under one (path, value) composite key.
type row struct {
	postings []Posting // document order == ascending Dewey ID
}

// Index is the path index of a single document.
type Index struct {
	tree  *btree.Tree // (path \x00 value) -> *row
	paths []string    // sorted dictionary of distinct element paths
	tags  map[string][]Posting
}

// Build constructs the path index for doc in one document-order walk.
func Build(doc *xmltree.Document) *Index {
	ix := &Index{tree: btree.New(), tags: map[string][]Posting{}}
	pathSet := map[string]bool{}
	doc.Root.Walk(func(n *xmltree.Node) {
		path := n.PathFromRoot()
		pathSet[path] = true
		p := Posting{ID: n.ID, ByteLen: n.ByteLen}
		if n.IsLeaf() {
			p.Value = n.Value
			p.HasValue = true
		}
		key := compositeKey(path, p.Value, p.HasValue)
		if v, ok := ix.tree.Get(key); ok {
			r := v.(*row)
			r.postings = append(r.postings, p)
		} else {
			ix.tree.Put(key, &row{postings: []Posting{p}})
		}
		ix.tags[n.Tag] = append(ix.tags[n.Tag], p)
	})
	ix.paths = make([]string, 0, len(pathSet))
	for p := range pathSet {
		// Full data paths recur across every document of a corpus-shaped
		// collection (and across shards); retain the canonical copy.
		ix.paths = append(ix.paths, intern.String(p))
	}
	sort.Strings(ix.paths)
	return ix
}

// compositeKey builds the (Path, Value) B+-tree key. Paths never contain
// NUL, so "path\x00" is a proper prefix of every key for that path. Rows
// without values (non-leaf elements) sort first under "\x00n\x00".
func compositeKey(path, value string, hasValue bool) []byte {
	marker := byte('n')
	if hasValue {
		marker = 'v'
	}
	k := make([]byte, 0, len(path)+len(value)+3)
	k = append(k, path...)
	k = append(k, 0, marker, 0)
	k = append(k, value...)
	return k
}

// Probes reports how many B+-tree probes the index has served.
func (ix *Index) Probes() int { return ix.tree.Probes() }

// Paths returns the path dictionary (sorted distinct element paths).
func (ix *Index) Paths() []string { return ix.paths }

// MatchFullPaths expands a root-anchored pattern with child/descendant axes
// into the full data paths of the dictionary it matches (paper §3.2: "for
// path queries with descendant axes ... the index is probed for each full
// data path").
func (ix *Index) MatchFullPaths(steps []Step) []string {
	var out []string
	for _, p := range ix.paths {
		if MatchPath(steps, p) {
			out = append(out, p)
		}
	}
	return out
}

// MatchPath reports whether the pattern matches the whole full path
// (e.g. steps for "/books//book/isbn" match "/books/shelf/book/isbn").
func MatchPath(steps []Step, fullPath string) bool {
	segs := splitPath(fullPath)
	return matchFrom(steps, segs, 0, 0)
}

func matchFrom(steps []Step, segs []string, si, pi int) bool {
	if si == len(steps) {
		return pi == len(segs)
	}
	st := steps[si]
	if st.Axis == Child {
		return pi < len(segs) && segs[pi] == st.Tag && matchFrom(steps, segs, si+1, pi+1)
	}
	for k := pi; k < len(segs); k++ {
		if segs[k] == st.Tag && matchFrom(steps, segs, si+1, k+1) {
			return true
		}
	}
	return false
}

func splitPath(p string) []string {
	p = strings.TrimPrefix(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// LookupPath returns, for every full data path matching the pattern, that
// path's postings merged across all its (path, value) rows in Dewey order.
// Leaf predicates, if any, are applied to row values: equality predicates
// become composite-key point probes; other comparisons scan the path's rows
// and filter (both are index-only operations).
func (ix *Index) LookupPath(steps []Step, preds []pred.Predicate) []PathPostings {
	var out []PathPostings
	for _, fp := range ix.MatchFullPaths(steps) {
		postings := ix.lookupFullPath(fp, preds)
		if len(postings) > 0 {
			out = append(out, PathPostings{FullPath: fp, Postings: postings})
		}
	}
	return out
}

// lookupFullPath probes one full data path.
func (ix *Index) lookupFullPath(fullPath string, preds []pred.Predicate) []Posting {
	// Single equality predicate: point probe on the composite key.
	if len(preds) == 1 && preds[0].Op == pred.Eq {
		if v, ok := ix.tree.Get(compositeKey(fullPath, preds[0].Lit, true)); ok {
			return v.(*row).postings
		}
		// Numeric equality may not match textually (e.g. "07" vs "7");
		// fall through to the scan so semantics stay value-based.
	}
	prefix := append([]byte(fullPath), 0)
	var rows []*row
	ix.tree.ScanPrefix(prefix, func(_ []byte, v any) bool {
		rows = append(rows, v.(*row))
		return true
	})
	var merged []Posting
	for _, r := range rows {
		for _, p := range r.postings {
			if len(preds) > 0 {
				if !p.HasValue || !pred.All(preds, p.Value) {
					continue
				}
			}
			merged = append(merged, p)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return dewey.Less(merged[i].ID, merged[j].ID) })
	return merged
}

// TagPostings returns the postings of every element with the given tag, in
// document order (the tag index used by structural joins).
func (ix *Index) TagPostings(tag string) []Posting { return ix.tags[tag] }

// DistinctRowCount reports the number of (path, value) rows; used by tests
// and diagnostics.
func (ix *Index) DistinctRowCount() int { return ix.tree.Len() }

// Row is one (path, value) row of the Path-Values table in exported form:
// the composite key split back into its parts plus the row's postings in
// Dewey order. Rows/FromRows are the serialization seam the disk backend
// stores indices through, so a loaded index never has to re-walk the
// document it indexes.
type Row struct {
	Path     string
	Value    string
	HasValue bool
	Postings []Posting
}

// Rows snapshots every row in composite-key order. The postings slices are
// the index's own — callers must treat them as read-only.
func (ix *Index) Rows() []Row {
	rows := make([]Row, 0, ix.tree.Len())
	for it := ix.tree.Min(); it.Valid(); it.Next() {
		key := it.Key()
		i := strings.IndexByte(string(key), 0)
		rows = append(rows, Row{
			Path:     string(key[:i]),
			Value:    string(key[i+3:]),
			HasValue: key[i+1] == 'v',
			Postings: it.Value().(*row).postings,
		})
	}
	return rows
}

// FromRows rebuilds an index from a Rows snapshot: the B+-tree from the
// composite keys, the path dictionary from the distinct paths, and the tag
// index by regrouping the postings under each path's final segment in
// document (Dewey) order. For any document, FromRows(Build(doc).Rows())
// answers every probe identically to Build(doc).
func FromRows(rows []Row) *Index {
	ix := &Index{tree: btree.New(), tags: map[string][]Posting{}}
	pathSet := map[string]bool{}
	for _, r := range rows {
		pathSet[r.Path] = true
		ix.tree.Put(compositeKey(r.Path, r.Value, r.HasValue), &row{postings: r.Postings})
		tag := r.Path[strings.LastIndexByte(r.Path, '/')+1:]
		ix.tags[tag] = append(ix.tags[tag], r.Postings...)
	}
	for _, ps := range ix.tags {
		sort.Slice(ps, func(i, j int) bool { return dewey.Less(ps[i].ID, ps[j].ID) })
	}
	ix.paths = make([]string, 0, len(pathSet))
	for p := range pathSet {
		ix.paths = append(ix.paths, intern.String(p))
	}
	sort.Strings(ix.paths)
	return ix
}
