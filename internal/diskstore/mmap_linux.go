//go:build linux

package diskstore

import (
	"os"
	"syscall"
)

// mmapSource maps the data log's prefix read-only and serves reads from
// the mapping; offsets past the mapped prefix (records appended after
// open) fall back to pread on the same descriptor. The mapping is sized at
// open, which is safe because the data log is append-only: committed bytes
// below the mapped length never change in place.
type mmapSource struct {
	data []byte
	file fileSource
}

// newMmapSource maps size bytes of f. Returns ok=false (caller falls back
// to pread) when the file is empty or the mapping fails.
func newMmapSource(f *os.File, size int64) (blockSource, bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return &mmapSource{data: data, file: fileSource{f: f}}, true
}

// ReadAt serves reads inside the mapped prefix from memory and falls back
// to pread for bytes appended after the mapping was made.
func (ms *mmapSource) ReadAt(p []byte, off int64) error {
	if off >= 0 && off+int64(len(p)) <= int64(len(ms.data)) {
		copy(p, ms.data[off:])
		return nil
	}
	return ms.file.ReadAt(p, off)
}

// Close unmaps the file and closes the fallback handle.
func (ms *mmapSource) Close() error {
	syscall.Munmap(ms.data) //nolint:errcheck
	return ms.file.Close()
}
