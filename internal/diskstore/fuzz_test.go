package diskstore

import (
	"bytes"
	"errors"
	"testing"

	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/xmltree"
)

// Seeds: real encoded payloads, so mutation starts from valid structure.
func seedNodePayload() []byte {
	children := []int64{8, 40}
	return appendNodePayload(nil, nodeRec{
		hash:     nodeHash("part", "widget", children),
		tag:      "part",
		value:    "widget",
		byteLen:  64,
		children: children,
	})
}

func seedIndexPayload() []byte {
	doc, err := xmltree.ParseString(`<a><b>hello world</b><c>hello again</c></a>`, "seed.xml", 3)
	if err != nil {
		panic(err)
	}
	return encodeIndexPayload(pathindex.Build(doc), invindex.Build(doc))
}

// FuzzDecodeNodePayload pins the block decoder's contract: arbitrary
// bytes never panic, and every rejection is a typed ErrCorrupt.
func FuzzDecodeNodePayload(f *testing.F) {
	f.Add(seedNodePayload())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeNodePayload(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// A payload that decodes must re-encode to an equivalent record.
		re, err := decodeNodePayload(appendNodePayload(nil, rec))
		if err != nil || re.hash != rec.hash || re.tag != rec.tag || re.value != rec.value {
			t.Fatalf("re-encode round trip broke: %+v vs %+v (%v)", rec, re, err)
		}
	})
}

// FuzzDecodeIndexPayload: the index-record decoder never panics and only
// fails typed.
func FuzzDecodeIndexPayload(f *testing.F) {
	f.Add(seedIndexPayload())
	f.Add([]byte{})
	f.Add([]byte{1, 1, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := decodeIndexPayload(data, 7); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}

// FuzzFoldManifest: arbitrary manifest bytes never panic the loader; the
// fold either rejects the header (typed) or returns some valid prefix.
func FuzzFoldManifest(f *testing.F) {
	valid := []byte(manifestHeaderLine(4, "CORPUS-0000.vxd"))
	valid = append(valid, frameManifestRec([]byte(`{"op":"add","name":"a.xml","id":1,"root":8,"index":20,"data":64}`))...)
	f.Add(valid)
	f.Add([]byte("#!vxdisk shards=2 data=CORPUS-1.vxd\n\x03\x00\x00\x00garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, off, err := parseManifestHeader(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped header error: %v", err)
			}
			return
		}
		recs, goodLen := foldManifest(data, off)
		if goodLen < int64(off) || goodLen > int64(len(data)) {
			t.Fatalf("fold returned prefix %d outside [%d,%d]", goodLen, off, len(data))
		}
		_ = recs
	})
}

// FuzzFrameAt drives the framed-record reader over a tiny in-memory store
// whose data log is the fuzz input, asserting no read at any offset can
// panic (reads may fail typed).
func FuzzRecordFrame(f *testing.F) {
	f.Add(appendFrame(nil, kindNode, seedNodePayload()))
	f.Add([]byte{kindNode, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, end, err := frameAt(data, 0)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		if end < 0 || end > len(data) {
			t.Fatalf("frame end %d outside data", end)
		}
		if kind == kindNode {
			if _, err := decodeNodePayload(payload); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("untyped node error: %v", err)
			}
		}
	})
}
