package diskstore

import (
	"encoding/binary"
	"fmt"

	"vxml/internal/dewey"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/xmltree"
)

// dagWriter is the structure-sharing encoder. It extends the string
// interning idea to whole subtrees: every subtree is keyed by its exact
// structural identity (tag, value, child record offsets — child subtrees
// having been deduplicated bottom-up first), and a subtree whose key was
// already written is represented by a reference to the existing record.
// Structurally identical subtrees therefore store one DAG node no matter
// how many documents or positions they occur at.
//
// The maps live only on the writing side; readers never consult them. They
// are rebuilt lazily by scanning the data log before the first mutation
// after open, so a read-only open never pays the scan.
type dagWriter struct {
	keys        map[string]int64 // structural key -> node record offset
	indexByRoot map[int64]int64  // root node offset -> index record offset

	// Cumulative dedup counters (committed mutations only): nodesWritten
	// counts records appended, nodesShared counts references resolved to an
	// existing record. Their ratio is the structure-sharing win.
	nodesWritten int64
	nodesShared  int64
}

// pending stages the data-log appends of one mutation. Records are
// assigned their final offsets (base = log end at staging time) but are
// buffered until the caller appends them in a single write; if that write
// fails or tears, rollback removes the staged keys so the dedup maps never
// reference bytes that were truncated away.
type pending struct {
	base          int64
	buf           []byte
	scratch       []byte
	newKeys       []string
	newIndexRoots []int64
	written       int64
	shared        int64
}

// addTree encodes the subtree rooted at n into p, returning the offset of
// its (possibly pre-existing) root record and the expanded element count.
func (w *dagWriter) addTree(p *pending, n *xmltree.Node) (int64, int) {
	nodes := 1
	children := make([]int64, len(n.Children))
	for i, c := range n.Children {
		off, cn := w.addTree(p, c)
		children[i] = off
		nodes += cn
	}
	key := structKey(n.Tag, n.Value, children)
	if off, ok := w.keys[key]; ok {
		p.shared++
		return off, nodes
	}
	off := p.base + int64(len(p.buf))
	p.scratch = appendNodePayload(p.scratch[:0], nodeRec{
		hash:     nodeHash(n.Tag, n.Value, children),
		tag:      n.Tag,
		value:    n.Value,
		byteLen:  n.ByteLen,
		children: children,
	})
	p.buf = appendFrame(p.buf, kindNode, p.scratch)
	w.keys[key] = off
	p.newKeys = append(p.newKeys, key)
	p.written++
	return off, nodes
}

// addIndex encodes the document's indices, shared by root offset: two
// documents with the same root record have identical content, and because
// index records store root-relative Dewey IDs their index payloads are
// byte-identical too — so they share one record.
func (w *dagWriter) addIndex(p *pending, rootOff int64, pix *pathindex.Index, iix *invindex.Index) int64 {
	if off, ok := w.indexByRoot[rootOff]; ok {
		return off
	}
	off := p.base + int64(len(p.buf))
	p.buf = appendFrame(p.buf, kindIndex, encodeIndexPayload(pix, iix))
	w.indexByRoot[rootOff] = off
	p.newIndexRoots = append(p.newIndexRoots, rootOff)
	return off
}

// commit folds the staged counters in; rollback removes the staged keys.
func (w *dagWriter) commit(p *pending) {
	w.nodesWritten += p.written
	w.nodesShared += p.shared
}

func (w *dagWriter) rollback(p *pending) {
	for _, k := range p.newKeys {
		delete(w.keys, k)
	}
	for _, r := range p.newIndexRoots {
		delete(w.indexByRoot, r)
	}
}

// --- reading ---

// readData returns n committed bytes at off, assembled block by block
// through the block cache. Only whole blocks that lie entirely within the
// committed prefix are cached: the log's tail block is still growing, so
// it is read directly and never pinned in a stale, short form.
func (ds *Store) readData(off int64, n int) ([]byte, error) {
	committed := ds.dataLen.Load()
	if off < 0 || n < 0 || off+int64(n) > committed {
		return nil, corruptf("read [%d,%d) beyond committed %d bytes", off, off+int64(n), committed)
	}
	if n == 0 {
		return nil, nil
	}
	bs := int64(ds.blocks.blockSiz)
	out := make([]byte, n)
	for pos := off; pos < off+int64(n); {
		idx := pos / bs
		blockStart := idx * bs
		blockEnd := blockStart + bs
		if blockEnd > committed {
			// Tail fragment: read the remaining span directly, uncached.
			want := out[pos-off:]
			if err := ds.source.ReadAt(want, pos); err != nil {
				return nil, err
			}
			ds.blocks.misses.Add(1)
			break
		}
		buf, ok := ds.blocks.Get(idx)
		if !ok {
			gen := ds.blocks.generation()
			buf = make([]byte, bs)
			if err := ds.source.ReadAt(buf, blockStart); err != nil {
				return nil, err
			}
			ds.blocks.PutAt(idx, gen, buf)
		}
		from := pos - blockStart
		pos += int64(copy(out[pos-off:], buf[from:]))
	}
	return out, nil
}

// frameAt reads the record frame at off, returning its kind, payload, and
// the offset of the next record.
func (ds *Store) frameAt(off int64) (kind byte, payload []byte, next int64, err error) {
	committed := ds.dataLen.Load()
	if off < int64(len(dataMagic)) || off >= committed {
		return 0, nil, 0, corruptf("record offset %d outside data log", off)
	}
	headLen := int64(1 + binary.MaxVarintLen64)
	if off+headLen > committed {
		headLen = committed - off
	}
	head, err := ds.readData(off, int(headLen))
	if err != nil {
		return 0, nil, 0, err
	}
	kind = head[0]
	n, m := binary.Uvarint(head[1:])
	if m <= 0 {
		return 0, nil, 0, corruptf("bad record length at %d", off)
	}
	payloadStart := off + 1 + int64(m)
	if n > maxRecordLen || payloadStart+int64(n) > committed {
		return 0, nil, 0, corruptf("record at %d claims %d bytes", off, n)
	}
	payload, err = ds.readData(payloadStart, int(n))
	if err != nil {
		return 0, nil, 0, err
	}
	return kind, payload, payloadStart + int64(n), nil
}

// readNodeAt decodes the node record at off.
func (ds *Store) readNodeAt(off int64) (nodeRec, error) {
	kind, payload, _, err := ds.frameAt(off)
	if err != nil {
		return nodeRec{}, err
	}
	if kind != kindNode {
		return nodeRec{}, corruptf("record at %d is kind %q, want node", off, kind)
	}
	return decodeNodePayload(payload)
}

// decodeSubtree materializes the subtree whose root record is at off,
// assigning per-occurrence Dewey IDs (root = id, i-th child = id.Child(i+1))
// and parent pointers — the information the DAG deliberately does not
// store, recovered from the navigation path.
func (ds *Store) decodeSubtree(off int64, id dewey.ID, parent *xmltree.Node) (*xmltree.Node, error) {
	rec, err := ds.readNodeAt(off)
	if err != nil {
		return nil, err
	}
	n := &xmltree.Node{Tag: rec.tag, Value: rec.value, ID: id, Parent: parent, ByteLen: rec.byteLen}
	if len(rec.children) > 0 {
		n.Children = make([]*xmltree.Node, len(rec.children))
		for i, c := range rec.children {
			child, err := ds.decodeSubtree(c, id.Child(int32(i+1)), n)
			if err != nil {
				return nil, err
			}
			n.Children[i] = child
		}
	}
	return n, nil
}

// hydrate materializes a document from its root record.
func (ds *Store) hydrate(e *docEntry) (*xmltree.Document, error) {
	root, err := ds.decodeSubtree(e.root, dewey.ID{e.docID}, nil)
	if err != nil {
		return nil, fmt.Errorf("diskstore: hydrate %q: %w", e.name, err)
	}
	return &xmltree.Document{Name: e.name, DocID: e.docID, Root: root}, nil
}

// subtreeAt resolves a Dewey ID directly over the compressed
// representation: navigate child-offset ordinals from the document's root
// record (decoding one node record per level), then materialize only the
// target subtree. Returns (nil, nil) when the path walks off the tree.
func (ds *Store) subtreeAt(e *docEntry, id dewey.ID) (*xmltree.Node, error) {
	off := e.root
	for depth := 1; depth < len(id); depth++ {
		rec, err := ds.readNodeAt(off)
		if err != nil {
			return nil, err
		}
		ord := int(id[depth])
		if ord < 1 || ord > len(rec.children) {
			return nil, nil
		}
		off = rec.children[ord-1]
	}
	return ds.decodeSubtree(off, id, nil)
}

// dagSubtreeTF computes per-keyword term frequencies of the subtree at
// off without materializing it, memoizing per distinct record: a subtree
// shared N times is tokenized once and its counts added N times. The token
// matching mirrors xmltree.SubtreeTF exactly (exact match on normalized
// keywords).
func (ds *Store) dagSubtreeTF(off int64, keywords []string, memo map[int64][]int) ([]int, error) {
	if tf, ok := memo[off]; ok {
		return tf, nil
	}
	rec, err := ds.readNodeAt(off)
	if err != nil {
		return nil, err
	}
	tf := make([]int, len(keywords))
	if rec.value != "" {
		xmltree.VisitTokens(rec.value, func(tok string) bool {
			for i, k := range keywords {
				if tok == k {
					tf[i]++
				}
			}
			return true
		})
	}
	for _, c := range rec.children {
		ctf, err := ds.dagSubtreeTF(c, keywords, memo)
		if err != nil {
			return nil, err
		}
		for i, v := range ctf {
			tf[i] += v
		}
	}
	memo[off] = tf
	return tf, nil
}

// dagContains reports whether the subtree at off contains the keyword,
// again directly over the DAG with per-record memoization.
func (ds *Store) dagContains(off int64, keyword string, memo map[int64]bool) (bool, error) {
	if found, ok := memo[off]; ok {
		return found, nil
	}
	rec, err := ds.readNodeAt(off)
	if err != nil {
		return false, err
	}
	found := false
	if rec.value != "" {
		xmltree.VisitTokens(rec.value, func(tok string) bool {
			if tok == keyword {
				found = true
				return false
			}
			return true
		})
	}
	for _, c := range rec.children {
		if found {
			break
		}
		cf, err := ds.dagContains(c, keyword, memo)
		if err != nil {
			return false, err
		}
		found = found || cf
	}
	memo[off] = found
	return found, nil
}

// navigateTo resolves a Dewey ID to its node record offset (found=false
// when the path walks off the tree).
func (ds *Store) navigateTo(id dewey.ID) (off int64, found bool, err error) {
	if len(id) == 0 {
		return 0, false, nil
	}
	ds.mu.RLock()
	e := ds.byID[id[0]]
	ds.mu.RUnlock()
	if e == nil {
		return 0, false, nil
	}
	off = e.root
	for depth := 1; depth < len(id); depth++ {
		rec, err := ds.readNodeAt(off)
		if err != nil {
			return 0, false, err
		}
		ord := int(id[depth])
		if ord < 1 || ord > len(rec.children) {
			return 0, false, nil
		}
		off = rec.children[ord-1]
	}
	return off, true, nil
}

// SubtreeTF computes the per-keyword term frequencies of the subtree at
// id directly over the compressed representation — no node of the subtree
// is materialized, and a DAG node shared N times within the subtree is
// tokenized once. Equivalent to xmltree.SubtreeTF over the hydrated
// subtree (the equivalence suite pins this).
func (ds *Store) SubtreeTF(id dewey.ID, keywords []string) ([]int, bool) {
	off, found, err := ds.navigateTo(id)
	if err != nil || !found {
		if err != nil {
			ds.noteDecodeErr(err)
		}
		return nil, false
	}
	tf, err := ds.dagSubtreeTF(off, keywords, map[int64][]int{})
	if err != nil {
		ds.noteDecodeErr(err)
		return nil, false
	}
	return tf, true
}

// ContainsKeyword reports whether the subtree at id contains the
// normalized keyword, directly over the compressed representation.
func (ds *Store) ContainsKeyword(id dewey.ID, keyword string) (contains, found bool) {
	off, ok, err := ds.navigateTo(id)
	if err != nil || !ok {
		if err != nil {
			ds.noteDecodeErr(err)
		}
		return false, false
	}
	c, err := ds.dagContains(off, keyword, map[int64]bool{})
	if err != nil {
		ds.noteDecodeErr(err)
		return false, false
	}
	return c, true
}

// loadDedupLocked rebuilds the dedup maps by scanning every committed
// record. It runs at most once per open, lazily before the first mutation,
// so opening a corpus for reading stays O(manifest) — the scan is the
// price of the first write after a restart, not of startup. The caller
// holds ds.mu.
func (ds *Store) loadDedupLocked() error {
	if ds.dag != nil {
		return nil
	}
	w := &dagWriter{keys: map[string]int64{}, indexByRoot: map[int64]int64{}}
	committed := ds.dataLen.Load()
	for off := int64(len(dataMagic)); off < committed; {
		kind, payload, next, err := ds.frameAt(off)
		if err != nil {
			return fmt.Errorf("diskstore: dedup scan: %w", err)
		}
		if kind == kindNode {
			rec, err := decodeNodePayload(payload)
			if err != nil {
				return fmt.Errorf("diskstore: dedup scan at %d: %w", off, err)
			}
			w.keys[structKey(rec.tag, rec.value, rec.children)] = off
		}
		off = next
	}
	// Index records carry no back-reference to their root; the manifest
	// does. Every manifest record — including superseded ones, whose data
	// remains valid — contributes a root->index pairing.
	for _, rec := range ds.history {
		if rec.Op != opDelete && rec.Index > 0 {
			w.indexByRoot[rec.Root] = rec.Index
		}
	}
	ds.dag = w
	return nil
}
