package diskstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"vxml/internal/dewey"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/store"
	"vxml/internal/xmltree"
)

// partXML builds a small part document; variant v controls the content so
// v-equal parts are structurally identical (the dedup fodder).
func partXML(v int) string {
	return fmt.Sprintf(`<part><name>widget type %d</name><supplier><company>acme corp</company><rating>%d</rating></supplier><desc>reliable industrial widget for assembly line %d</desc></part>`,
		v, v%3, v)
}

// seedDocs is a deterministic mixed corpus: every doc with the same v%4
// shares its entire tree with its siblings.
func seedDocs(n int) map[string]string {
	docs := map[string]string{}
	for i := 0; i < n; i++ {
		docs[fmt.Sprintf("part-%02d.xml", i)] = partXML(i % 4)
	}
	docs["authors.xml"] = `<authors><author><name>ada lovelace</name><topic>analytical engines</topic></author><author><name>edgar codd</name><topic>relational model</topic></author></authors>`
	return docs
}

func buildHeap(t *testing.T, docs map[string]string) *store.Store {
	t.Helper()
	s := store.NewSharded(4)
	names := make([]string, 0, len(docs))
	for name := range docs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := s.AddXML(name, docs[name]); err != nil {
			t.Fatalf("AddXML(%s): %v", name, err)
		}
	}
	return s
}

func createDisk(t *testing.T, s *store.Store, opts Options) *Store {
	t.Helper()
	dir := t.TempDir()
	ds, err := Create(s, dir, opts, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	t.Cleanup(func() { ds.Close() }) //nolint:errcheck
	return ds
}

func xmlOf(t *testing.T, n *xmltree.Node) string {
	t.Helper()
	var b strings.Builder
	if err := n.WriteXML(&b, ""); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	return b.String()
}

func TestCreateOpenRoundtrip(t *testing.T) {
	s := buildHeap(t, seedDocs(10))
	ds := createDisk(t, s, Options{})

	if got, want := ds.ShardCount(), s.ShardCount(); got != want {
		t.Fatalf("ShardCount = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(ds.Infos(), s.Infos()) {
		t.Fatalf("Infos mismatch:\n disk %v\n heap %v", ds.Infos(), s.Infos())
	}
	if got, want := ds.TotalBytes(), s.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
	for _, info := range s.Infos() {
		hd, dd := s.Doc(info.Name), ds.Doc(info.Name)
		if dd == nil {
			t.Fatalf("disk Doc(%s) = nil", info.Name)
		}
		if dd.DocID != hd.DocID || dd.Name != hd.Name {
			t.Fatalf("Doc(%s) identity mismatch", info.Name)
		}
		if got, want := xmlOf(t, dd.Root), xmlOf(t, hd.Root); got != want {
			t.Fatalf("Doc(%s) XML mismatch:\n%s\n%s", info.Name, got, want)
		}
	}
	// The shard routing must agree document by document.
	for _, info := range s.Infos() {
		if ds.ShardOf(info.Name) != s.ShardOf(info.Name) {
			t.Fatalf("ShardOf(%s) disagrees", info.Name)
		}
	}
}

func TestStoredIndicesMatchFreshBuild(t *testing.T) {
	s := buildHeap(t, seedDocs(8))
	ds := createDisk(t, s, Options{IndexCacheSize: -1})
	for _, info := range s.Infos() {
		doc := s.Doc(info.Name)
		wantP, wantI := pathindex.Build(doc), invindex.Build(doc)
		gotP, gotI, err := ds.StoredIndices(info.Name)
		if err != nil {
			t.Fatalf("StoredIndices(%s): %v", info.Name, err)
		}
		if !reflect.DeepEqual(gotP.Rows(), wantP.Rows()) {
			t.Fatalf("path rows of %s differ", info.Name)
		}
		if !reflect.DeepEqual(gotP.Paths(), wantP.Paths()) {
			t.Fatalf("path dictionary of %s differs", info.Name)
		}
		if gotI.Elements() != wantI.Elements() || gotI.Keywords() != wantI.Keywords() {
			t.Fatalf("index shape of %s differs", info.Name)
		}
		gl, wl := gotI.Lists(), wantI.Lists()
		if len(gl) != len(wl) {
			t.Fatalf("list count of %s differs", info.Name)
		}
		for i := range gl {
			if gl[i].Keyword != wl[i].Keyword || !reflect.DeepEqual(gl[i].Postings, wl[i].Postings) {
				t.Fatalf("posting list %q of %s differs", wl[i].Keyword, info.Name)
			}
		}
	}
}

func TestSubtreeDirectDecode(t *testing.T) {
	s := buildHeap(t, seedDocs(6))
	// Disable the document cache so every fetch exercises the DAG path.
	ds := createDisk(t, s, Options{DocCacheSize: -1})
	for _, doc := range s.Docs() {
		doc.Root.Walk(func(n *xmltree.Node) {
			got := ds.Subtree(n.ID)
			if got == nil {
				t.Fatalf("Subtree(%v) = nil", n.ID)
			}
			if got.Tag != n.Tag || got.Value != n.Value || got.ByteLen != n.ByteLen {
				t.Fatalf("Subtree(%v) = %s/%q/%d, want %s/%q/%d", n.ID, got.Tag, got.Value, got.ByteLen, n.Tag, n.Value, n.ByteLen)
			}
			if !dewey.Equal(got.ID, n.ID) {
				t.Fatalf("Subtree(%v) carries ID %v", n.ID, got.ID)
			}
			if xmlOf(t, got) != xmlOf(t, n) {
				t.Fatalf("Subtree(%v) XML differs", n.ID)
			}
		})
	}
	// Off-tree ordinals and unknown documents resolve to nil, as on heap.
	if ds.Subtree(dewey.ID{1, 99}) != nil || ds.Subtree(dewey.ID{99}) != nil || ds.Subtree(nil) != nil {
		t.Fatal("out-of-range Subtree should be nil")
	}
	// Counters count found fetches only, mirroring the heap backend.
	ds.ResetCounters()
	s.ResetCounters()
	for _, id := range []dewey.ID{{1}, {1, 2}, {1, 99}, {2, 1}} {
		ds.Subtree(id)
		s.Subtree(id)
	}
	if ds.SubtreeFetches() != s.SubtreeFetches() || ds.BytesFetched() != s.BytesFetched() {
		t.Fatalf("counters diverge: disk %d/%d heap %d/%d",
			ds.SubtreeFetches(), ds.BytesFetched(), s.SubtreeFetches(), s.BytesFetched())
	}
}

func TestDAGSubtreeTFAndContains(t *testing.T) {
	s := buildHeap(t, seedDocs(6))
	ds := createDisk(t, s, Options{DocCacheSize: -1})
	keywords := []string{"widget", "acme", "analytical", "nosuchword"}
	for _, doc := range s.Docs() {
		doc.Root.Walk(func(n *xmltree.Node) {
			wantTF := xmltree.SubtreeTF(n, keywords)
			gotTF, ok := ds.SubtreeTF(n.ID, keywords)
			if !ok || !reflect.DeepEqual(gotTF, wantTF) {
				t.Fatalf("SubtreeTF(%v) = %v/%v, want %v", n.ID, gotTF, ok, wantTF)
			}
			for _, k := range keywords {
				want := xmltree.Contains(n, k)
				got, ok := ds.ContainsKeyword(n.ID, k)
				if !ok || got != want {
					t.Fatalf("ContainsKeyword(%v, %q) = %v/%v, want %v", n.ID, k, got, ok, want)
				}
			}
		})
	}
	if _, ok := ds.SubtreeTF(dewey.ID{99}, keywords); ok {
		t.Fatal("SubtreeTF of unknown doc should report not found")
	}
}

func TestDAGDedupCompression(t *testing.T) {
	// 40 documents, 4 distinct trees: the data log should hold roughly 4
	// documents' worth of structure.
	s := buildHeap(t, seedDocs(40))
	ds := createDisk(t, s, Options{})
	st := ds.DiskStats()
	if st.NodesShared == 0 {
		t.Fatal("expected shared nodes in a high-repetition corpus")
	}
	if st.DataBytes >= int64(st.TotalBytes)/2 {
		t.Fatalf("DataBytes = %d, want < half of TotalBytes %d", st.DataBytes, st.TotalBytes)
	}

	// Registering an exact duplicate of an existing tree appends no data
	// at all: every subtree record and the index record are shared.
	before := ds.dataLen.Load()
	doc, err := xmltree.ParseString(partXML(1), "dup.xml", ds.ReserveID())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.RegisterParsed(doc); err != nil {
		t.Fatal(err)
	}
	if after := ds.dataLen.Load(); after != before {
		t.Fatalf("duplicate registration grew data log by %d bytes", after-before)
	}
	if got := ds.Doc("dup.xml"); got == nil || xmlOf(t, got.Root) != xmlOf(t, doc.Root) {
		t.Fatal("duplicate doc does not round-trip")
	}
}

func TestMutationsAndTombstones(t *testing.T) {
	s := buildHeap(t, seedDocs(4))
	ds := createDisk(t, s, Options{})

	// Replace: fresh DocID, old ID resolvable only while pinned.
	old, _ := ds.Info("part-01.xml")
	doc, err := xmltree.ParseString(`<part><name>replacement</name></part>`, "part-01.xml", ds.ReserveID())
	if err != nil {
		t.Fatal(err)
	}
	ds.Pin()
	if err := ds.ReplaceParsed(doc); err != nil {
		t.Fatalf("ReplaceParsed: %v", err)
	}
	if n := ds.Subtree(dewey.ID{old.DocID, 1}); n == nil || n.Value != "widget type 1" {
		t.Fatalf("pinned reader lost the old subtree: %v", n)
	}
	if ds.Tombstones() != 1 {
		t.Fatalf("Tombstones = %d, want 1", ds.Tombstones())
	}
	ds.Unpin()
	if ds.Subtree(dewey.ID{old.DocID, 1}) != nil {
		t.Fatal("old subtree should be swept after Unpin")
	}
	if n := ds.Subtree(dewey.ID{doc.DocID, 1}); n == nil || n.Value != "replacement" {
		t.Fatal("replacement not resolvable")
	}
	if info, ok := ds.Info("part-01.xml"); !ok || info.DocID != doc.DocID {
		t.Fatal("Info not updated by replace")
	}

	// Delete.
	if err := ds.Delete("part-02.xml"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Info("part-02.xml"); ok {
		t.Fatal("deleted doc still visible")
	}
	if err := ds.Delete("part-02.xml"); !errors.Is(err, store.ErrUnknownName) {
		t.Fatalf("double delete: %v", err)
	}
	if err := ds.ReplaceParsed(doc); err != nil {
		// replacing with a registered name is fine; this re-replace uses a
		// stale reserved ID, but the call path is what matters here
		t.Fatalf("ReplaceParsed again: %v", err)
	}
	dup, _ := xmltree.ParseString(`<x/>`, "part-03.xml", ds.ReserveID())
	if err := ds.RegisterParsed(dup); !errors.Is(err, store.ErrDuplicateName) {
		t.Fatalf("duplicate register: %v", err)
	}
	if got, want := ds.Mutations(), 3; got != want {
		t.Fatalf("Mutations = %d, want %d", got, want)
	}
}

func TestReopenAfterMutations(t *testing.T) {
	s := buildHeap(t, seedDocs(5))
	dir := t.TempDir()
	ds, err := Create(s, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString(`<part><name>late addition</name></part>`, "late.xml", ds.ReserveID())
	if err := ds.RegisterParsed(doc); err != nil {
		t.Fatal(err)
	}
	if err := ds.Delete("part-00.xml"); err != nil {
		t.Fatal(err)
	}
	repl, _ := xmltree.ParseString(`<part><name>v2</name></part>`, "part-01.xml", ds.ReserveID())
	if err := ds.ReplaceParsed(repl); err != nil {
		t.Fatal(err)
	}
	wantInfos := ds.Infos()
	wantNext := ds.NextDocID()
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close() //nolint:errcheck
	if !reflect.DeepEqual(re.Infos(), wantInfos) {
		t.Fatalf("Infos after reopen:\n%v\nwant\n%v", re.Infos(), wantInfos)
	}
	if re.NextDocID() != wantNext {
		t.Fatalf("NextDocID after reopen = %d, want %d", re.NextDocID(), wantNext)
	}
	if re.Mutations() != 0 {
		t.Fatalf("Mutations after reopen = %d, want 0", re.Mutations())
	}
	if d := re.Doc("part-01.xml"); d == nil || xmlOf(t, d.Root) != xmlOf(t, repl.Root) {
		t.Fatal("replaced doc wrong after reopen")
	}
	if re.Doc("part-00.xml") != nil {
		t.Fatal("deleted doc visible after reopen")
	}
	// Mutating after reopen exercises the lazy dedup-table rebuild; an
	// exact duplicate of existing structure must still share everything.
	before := re.dataLen.Load()
	dup, _ := xmltree.ParseString(partXML(2), "dup.xml", re.ReserveID())
	if err := re.RegisterParsed(dup); err != nil {
		t.Fatal(err)
	}
	if after := re.dataLen.Load(); after != before {
		t.Fatalf("dedup table lost across reopen: +%d bytes", after-before)
	}
}

func TestOpenMissing(t *testing.T) {
	if _, err := Open(t.TempDir()); !errors.Is(err, ErrNoCorpus) {
		t.Fatalf("Open(empty) = %v, want ErrNoCorpus", err)
	}
}

func TestInitEmptyAndGrow(t *testing.T) {
	dir := t.TempDir()
	ds, err := Init(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Infos()) != 0 {
		t.Fatal("fresh corpus not empty")
	}
	doc, _ := xmltree.ParseString(`<a><b>hello world</b></a>`, "a.xml", ds.ReserveID())
	if err := ds.RegisterParsed(doc); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	if v, ok := re.Value(dewey.ID{doc.DocID, 1}); !ok || v != "hello world" {
		t.Fatalf("Value = %q/%v", v, ok)
	}
	if _, err := Init(dir, 4, Options{}); err == nil {
		t.Fatal("Init over existing corpus should fail")
	}
}

func TestBlockCacheServesRepeatReads(t *testing.T) {
	s := buildHeap(t, seedDocs(8))
	ds := createDisk(t, s, Options{DocCacheSize: -1, IndexCacheSize: -1, BlockSize: 512})
	for i := 0; i < 3; i++ {
		for _, info := range s.Infos() {
			if ds.Doc(info.Name) == nil {
				t.Fatal("hydrate failed")
			}
		}
	}
	st := ds.DiskStats()
	if st.BlockCache.Hits == 0 {
		t.Fatalf("no block cache hits: %+v", st.BlockCache)
	}
	if st.BlockCache.Bytes > st.BlockCache.Capacity {
		t.Fatalf("block cache over capacity: %+v", st.BlockCache)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	s := buildHeap(t, seedDocs(12))
	// A tiny cache (two 512-byte blocks) must still serve everything.
	ds := createDisk(t, s, Options{DocCacheSize: -1, CacheBytes: 1024, BlockSize: 512})
	for _, info := range s.Infos() {
		hd, dd := s.Doc(info.Name), ds.Doc(info.Name)
		if dd == nil || xmlOf(t, dd.Root) != xmlOf(t, hd.Root) {
			t.Fatalf("doc %s wrong under eviction pressure", info.Name)
		}
	}
	st := ds.DiskStats()
	if st.BlockCache.Bytes > 1024 {
		t.Fatalf("cache exceeded bound: %d bytes", st.BlockCache.Bytes)
	}
}

func TestMmapSource(t *testing.T) {
	s := buildHeap(t, seedDocs(8))
	ds := createDisk(t, s, Options{Mmap: true, DocCacheSize: -1, CacheBytes: -1})
	for _, info := range s.Infos() {
		hd, dd := s.Doc(info.Name), ds.Doc(info.Name)
		if dd == nil || xmlOf(t, dd.Root) != xmlOf(t, hd.Root) {
			t.Fatalf("doc %s wrong via mmap", info.Name)
		}
	}
	// Appends past the mapped prefix must stay readable (pread fallback).
	doc, _ := xmltree.ParseString(`<fresh><leaf>after mmap open</leaf></fresh>`, "fresh.xml", ds.ReserveID())
	if err := ds.RegisterParsed(doc); err != nil {
		t.Fatal(err)
	}
	ds.docsCache.Invalidate()
	if got := ds.Doc("fresh.xml"); got == nil || xmlOf(t, got.Root) != xmlOf(t, doc.Root) {
		t.Fatal("appended doc unreadable through mmap source")
	}
}

func TestSnapshotFilesRestore(t *testing.T) {
	s := buildHeap(t, seedDocs(6))
	ds := createDisk(t, s, Options{})
	dst := t.TempDir()
	err := ds.SnapshotFiles(func(name string, data []byte) error {
		return os.WriteFile(filepath.Join(dst, name), data, 0o644)
	})
	if err != nil {
		t.Fatalf("SnapshotFiles: %v", err)
	}
	re, err := Open(dst)
	if err != nil {
		t.Fatalf("open shipped snapshot: %v", err)
	}
	defer re.Close() //nolint:errcheck
	if !reflect.DeepEqual(re.Infos(), ds.Infos()) {
		t.Fatal("shipped snapshot differs")
	}
}

// TestCrashSafetyProperty is the fault-injection property suite: a corpus
// writer killed at a randomized byte offset — during a full save or during
// any incremental mutation — must leave a directory that opens as the
// corpus either before or after the interrupted operation, never half.
func TestCrashSafetyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	base := buildHeap(t, seedDocs(6))

	// Phase 1: full save torn at increasing budgets.
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		fault := &faultPlan{}
		fault.arm(int64(rng.Intn(40_000)))
		_, err := Create(base, dir, Options{fault: fault}, nil)
		fault.arm(-1)
		if err == nil {
			// Budget exceeded the save size: a complete corpus.
			verifyOpens(t, dir, len(base.Infos()))
			continue
		}
		// Torn: either no corpus at all (manifest never landed) or — had a
		// manifest existed before — the old corpus. Here: no corpus.
		if _, operr := Open(dir); !errors.Is(operr, ErrNoCorpus) {
			t.Fatalf("trial %d: torn create left %v, want ErrNoCorpus", trial, operr)
		}
	}

	// Phase 2: a live store's mutations torn at random budgets. After each
	// tear the directory must reopen as exactly the committed prefix.
	dir := t.TempDir()
	fault := &faultPlan{}
	ds, err := Create(base, dir, Options{fault: fault}, nil)
	if err != nil {
		t.Fatal(err)
	}
	committed := map[string]string{}
	for _, d := range base.Docs() {
		committed[d.Name] = xmlOf(t, d.Root)
	}
	names := sortedNames(committed)
	for trial := 0; trial < 60; trial++ {
		op := rng.Intn(3)
		budget := int64(rng.Intn(3_000))
		fault.arm(budget)
		var name string
		var xml string
		var opErr error
		switch op {
		case 0: // add
			name = fmt.Sprintf("new-%03d.xml", trial)
			xml = partXML(rng.Intn(9))
			doc, _ := xmltree.ParseString(xml, name, ds.ReserveID())
			opErr = ds.RegisterParsed(doc)
		case 1: // replace
			name = names[rng.Intn(len(names))]
			xml = fmt.Sprintf(`<part><rev>%d</rev></part>`, trial)
			doc, _ := xmltree.ParseString(xml, name, ds.ReserveID())
			opErr = ds.ReplaceParsed(doc)
		default: // delete
			name = names[rng.Intn(len(names))]
			opErr = ds.Delete(name)
		}
		fault.arm(-1)
		if opErr == nil {
			switch op {
			case 0, 1:
				committed[name] = xml
			default:
				delete(committed, name)
			}
			names = sortedNames(committed)
			if len(names) == 0 {
				t.Fatal("test consumed every document")
			}
			continue
		}
		if !errors.Is(opErr, errInjectedFault) {
			t.Fatalf("trial %d: unexpected failure %v", trial, opErr)
		}
		// Simulated crash: abandon the wounded store, reopen from disk.
		ds.Close() //nolint:errcheck
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("trial %d: reopen after torn write: %v", trial, err)
		}
		verifyContents(t, re, committed)
		ds = re
	}
	ds.Close() //nolint:errcheck

	// Final reopen sanity.
	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close() //nolint:errcheck
	verifyContents(t, re, committed)
}

func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func verifyOpens(t *testing.T, dir string, wantDocs int) {
	t.Helper()
	ds, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer ds.Close() //nolint:errcheck
	if got := len(ds.Infos()); got != wantDocs {
		t.Fatalf("opened with %d docs, want %d", got, wantDocs)
	}
}

func verifyContents(t *testing.T, ds *Store, want map[string]string) {
	t.Helper()
	infos := ds.Infos()
	if len(infos) != len(want) {
		t.Fatalf("corpus holds %d docs, want %d", len(infos), len(want))
	}
	for name, xml := range want {
		d := ds.Doc(name)
		if d == nil {
			t.Fatalf("doc %s missing", name)
		}
		if got := xmlOf(t, d.Root); got != xml {
			t.Fatalf("doc %s content:\n%s\nwant\n%s", name, got, xml)
		}
	}
}

// TestManifestTornTailIgnored corrupts the manifest tail directly and
// asserts the loader folds only the valid prefix.
func TestManifestTornTailIgnored(t *testing.T) {
	s := buildHeap(t, seedDocs(4))
	dir := t.TempDir()
	ds, err := Create(s, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantInfos := ds.Infos()
	ds.Close() //nolint:errcheck

	mpath := filepath.Join(dir, ManifestFileName)
	for _, garbage := range [][]byte{
		{0x17},                         // lone partial length
		{0xff, 0xff, 0xff, 0x7f, 1, 2}, // huge claimed length
		{4, 0, 0, 0, 9, 9, 9, 9, 'a', 'b', 'c', 'd'}, // bad CRC
	} {
		mdata, err := os.ReadFile(mpath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mpath, append(append([]byte{}, mdata...), garbage...), 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("open with torn tail %v: %v", garbage, err)
		}
		if !reflect.DeepEqual(re.Infos(), wantInfos) {
			t.Fatalf("torn tail changed corpus")
		}
		re.Close() //nolint:errcheck
	}
}

// TestCorruptDataRecords verifies typed, non-panicking errors when node
// records are damaged in place.
func TestCorruptDataRecords(t *testing.T) {
	s := buildHeap(t, seedDocs(3))
	dir := t.TempDir()
	ds, err := Create(s, dir, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dataName := ds.dataName
	ds.Close() //nolint:errcheck

	dpath := filepath.Join(dir, dataName)
	raw, err := os.ReadFile(dpath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the record region.
	raw[len(dataMagic)+len(raw)/3] ^= 0x55
	if err := os.WriteFile(dpath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir)
	if err != nil {
		// Open itself may detect the damage via header checks — fine.
		return
	}
	defer re.Close() //nolint:errcheck
	// Hydrating across the corpus must never panic; failures surface as
	// nil docs with a recorded typed error.
	for _, info := range re.Infos() {
		re.Doc(info.Name)
		re.Subtree(dewey.ID{info.DocID, 1})
	}
	if errp := re.lastDecodeErr.Load(); errp != nil && !errors.Is(*errp, ErrCorrupt) {
		t.Fatalf("decode error not typed: %v", *errp)
	}
}
