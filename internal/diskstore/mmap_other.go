//go:build !linux

package diskstore

import "os"

// newMmapSource is unavailable on this platform; Open falls back to pread.
func newMmapSource(_ *os.File, _ int64) (blockSource, bool) { return nil, false }
