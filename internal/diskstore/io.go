package diskstore

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// errInjectedFault is what the fault seam returns once its byte budget is
// exhausted; the crash-safety property test arms the seam and then asserts
// every interrupted directory still opens as the old or the new corpus.
var errInjectedFault = errors.New("diskstore: injected write fault")

// faultPlan is the write fault-injection seam. When armed, at most budget
// further bytes reach the operating system across ALL writers sharing the
// plan; the write that crosses the budget lands a partial prefix (a torn
// write) and errors. One plan is shared by a store's data and manifest
// appenders — and by Create's temp-file writers — so a single budget models
// a process killed at an arbitrary point of any persistence operation.
type faultPlan struct {
	mu     sync.Mutex
	armed  bool
	budget int64
}

// arm sets the remaining byte budget. budget < 0 disarms.
func (fp *faultPlan) arm(budget int64) {
	fp.mu.Lock()
	fp.armed, fp.budget = budget >= 0, budget
	fp.mu.Unlock()
}

// admit reports how many of n bytes may be written (torn prefix) and
// whether the write must fail afterwards.
func (fp *faultPlan) admit(n int) (allow int, fail bool) {
	if fp == nil {
		return n, false
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if !fp.armed {
		return n, false
	}
	if int64(n) <= fp.budget {
		fp.budget -= int64(n)
		return n, false
	}
	allow = int(fp.budget)
	fp.budget = 0
	return allow, true
}

// appendFile is an append-only file with an explicit logical end offset and
// the fault seam threaded through every write. The logical offset advances
// only on fully successful writes, so after a torn write off points at the
// last consistent end and the caller can truncate back to it.
type appendFile struct {
	f     *os.File
	off   int64
	fault *faultPlan
}

func openAppend(path string, fault *faultPlan) (*appendFile, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close() //nolint:errcheck
		return nil, err
	}
	return &appendFile{f: f, off: st.Size(), fault: fault}, nil
}

// Write appends p at the logical end. On a torn or failed write the
// logical offset is left at the pre-write position.
func (af *appendFile) Write(p []byte) error {
	allow, fail := af.fault.admit(len(p))
	if allow > 0 {
		if _, err := af.f.WriteAt(p[:allow], af.off); err != nil {
			return err
		}
	}
	if fail {
		return errInjectedFault
	}
	af.off += int64(len(p))
	return nil
}

// Truncate discards everything past n and resets the logical end.
func (af *appendFile) Truncate(n int64) error {
	if err := af.f.Truncate(n); err != nil {
		return err
	}
	af.off = n
	return nil
}

// Close closes the underlying file.
func (af *appendFile) Close() error { return af.f.Close() }

// blockSource serves random reads of the committed data log. It is the
// pread/mmap seam: fileSource preads through the OS page cache, and on
// platforms with mmap support an mmapSource copies straight out of the
// mapping. Reads are always for offsets below the committed length, which
// both implementations serve concurrently without locking.
type blockSource interface {
	// ReadAt fills p from offset off; short reads are errors.
	ReadAt(p []byte, off int64) error
	Close() error
}

// fileSource is the portable pread implementation.
type fileSource struct{ f *os.File }

// ReadAt fills p from offset off via pread.
func (fs *fileSource) ReadAt(p []byte, off int64) error {
	if _, err := fs.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("diskstore: read %d bytes at %d: %w", len(p), off, err)
	}
	return nil
}

// Close closes the read handle.
func (fs *fileSource) Close() error { return fs.f.Close() }
