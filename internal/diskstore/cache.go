package diskstore

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/xmltree"
)

// DefaultBlockSize is the data-log block granularity reads are cached at.
const DefaultBlockSize = 4096

// DefaultCacheBytes bounds the decoded-block cache (16 MiB).
const DefaultCacheBytes = 16 << 20

// DefaultDocCacheSize bounds the hydrated-document cache (documents).
const DefaultDocCacheSize = 64

// DefaultIndexCacheSize bounds the decoded-index cache (documents).
const DefaultIndexCacheSize = 256

// blockCache is the bounded LRU over data-log blocks. Entries are stamped
// with the cache generation current when their read began; Invalidate
// bumps the generation, so blocks cached before a file swap (Compact,
// reopen) can never serve stale bytes — the same discard-if-stale
// discipline the query cache uses for async fills.
type blockCache struct {
	mu       sync.Mutex
	blockSiz int
	maxBytes int64
	curBytes int64
	gen      int64
	entries  map[int64]*list.Element
	lru      list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

type blockEntry struct {
	idx int64
	gen int64
	buf []byte
}

func newBlockCache(blockSize int, maxBytes int64) *blockCache {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if maxBytes < 0 {
		maxBytes = DefaultCacheBytes
	}
	return &blockCache{blockSiz: blockSize, maxBytes: maxBytes, entries: map[int64]*list.Element{}}
}

// generation returns the stamp a fill beginning now must carry.
func (c *blockCache) generation() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Invalidate makes every cached block stale.
func (c *blockCache) Invalidate() {
	c.mu.Lock()
	c.gen++
	c.entries = map[int64]*list.Element{}
	c.lru.Init()
	c.curBytes = 0
	c.mu.Unlock()
}

// Get returns the cached block idx, counting a hit or miss.
func (c *blockCache) Get(idx int64) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[idx]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return el.Value.(*blockEntry).buf, true
}

// PutAt inserts a block read under generation gen; the fill is discarded
// if the cache was invalidated while the read was in flight.
func (c *blockCache) PutAt(idx int64, gen int64, buf []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gen || c.maxBytes == 0 {
		return
	}
	if el, ok := c.entries[idx]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*blockEntry)
		c.curBytes += int64(len(buf)) - int64(len(e.buf))
		e.buf = buf
	} else {
		c.entries[idx] = c.lru.PushFront(&blockEntry{idx: idx, gen: gen, buf: buf})
		c.curBytes += int64(len(buf))
	}
	for c.curBytes > c.maxBytes {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := back.Value.(*blockEntry)
		c.lru.Remove(back)
		delete(c.entries, e.idx)
		c.curBytes -= int64(len(e.buf))
	}
}

// stats returns (entries, bytes, hits, misses).
func (c *blockCache) stats() (int, int64, int64, int64) {
	c.mu.Lock()
	n, b := len(c.entries), c.curBytes
	c.mu.Unlock()
	return n, b, c.hits.Load(), c.misses.Load()
}

// docCache keeps recently hydrated documents resident, keyed by name and
// validated by document ID — a replace assigns the document a fresh ID, so
// the ID doubles as the per-name mutation generation and a stale tree can
// never be returned for a newer registration.
type docCache struct {
	mu      sync.Mutex
	maxDocs int
	entries map[string]*list.Element
	lru     list.List

	hits   atomic.Int64
	misses atomic.Int64
}

type docEntry2 struct {
	name  string
	docID int32
	doc   *xmltree.Document
}

func newDocCache(maxDocs int) *docCache {
	if maxDocs < 0 {
		maxDocs = DefaultDocCacheSize
	}
	return &docCache{maxDocs: maxDocs, entries: map[string]*list.Element{}}
}

// Get returns the cached tree for name if its registration ID still
// matches docID.
func (c *docCache) Get(name string, docID int32) (*xmltree.Document, bool) {
	c.mu.Lock()
	el, ok := c.entries[name]
	if ok && el.Value.(*docEntry2).docID == docID {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*docEntry2).doc, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put caches a hydrated document under its name and registration ID.
func (c *docCache) Put(name string, docID int32, doc *xmltree.Document) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxDocs == 0 {
		return
	}
	if el, ok := c.entries[name]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*docEntry2)
		e.docID, e.doc = docID, doc
		return
	}
	c.entries[name] = c.lru.PushFront(&docEntry2{name: name, docID: docID, doc: doc})
	for c.lru.Len() > c.maxDocs {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.entries, back.Value.(*docEntry2).name)
	}
}

// Drop evicts name (mutation and delete paths).
func (c *docCache) Drop(name string) {
	c.mu.Lock()
	if el, ok := c.entries[name]; ok {
		c.lru.Remove(el)
		delete(c.entries, name)
	}
	c.mu.Unlock()
}

// Invalidate empties the cache (reopen/full-save paths).
func (c *docCache) Invalidate() {
	c.mu.Lock()
	c.entries = map[string]*list.Element{}
	c.lru.Init()
	c.mu.Unlock()
}

// resident returns (documents, summed serialized bytes) currently cached.
func (c *docCache) resident() (int, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var bytes int64
	for _, el := range c.entries {
		if d := el.Value.(*docEntry2).doc; d != nil && d.Root != nil {
			bytes += int64(d.Root.ByteLen)
		}
	}
	return len(c.entries), bytes
}

// indexCache memoizes decoded per-document indices, with the same
// name+docID validation as docCache. Probe counters of evicted indices are
// accumulated so Engine.IndexProbes stays monotonic across evictions.
type indexCache struct {
	mu      sync.Mutex
	maxDocs int
	entries map[string]*list.Element
	lru     list.List

	evictedProbes  atomic.Int64
	evictedLookups atomic.Int64
	hits           atomic.Int64
	misses         atomic.Int64
}

type idxEntry struct {
	name  string
	docID int32
	pix   *pathindex.Index
	iix   *invindex.Index
}

func newIndexCache(maxDocs int) *indexCache {
	if maxDocs < 0 {
		maxDocs = DefaultIndexCacheSize
	}
	return &indexCache{maxDocs: maxDocs, entries: map[string]*list.Element{}}
}

// Get returns the cached indices for name if its registration ID still
// matches docID.
func (c *indexCache) Get(name string, docID int32) (*pathindex.Index, *invindex.Index, bool) {
	c.mu.Lock()
	el, ok := c.entries[name]
	if ok && el.Value.(*idxEntry).docID == docID {
		c.lru.MoveToFront(el)
		e := el.Value.(*idxEntry)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.pix, e.iix, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, nil, false
}

// Put caches a document's decoded indices, retiring whatever it displaces
// so probe counters stay monotonic.
func (c *indexCache) Put(name string, docID int32, pix *pathindex.Index, iix *invindex.Index) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxDocs == 0 {
		c.retire(pix, iix)
		return
	}
	if el, ok := c.entries[name]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*idxEntry)
		if e.docID == docID {
			return // concurrent fill already landed
		}
		c.retire(e.pix, e.iix)
		e.docID, e.pix, e.iix = docID, pix, iix
		return
	}
	c.entries[name] = c.lru.PushFront(&idxEntry{name: name, docID: docID, pix: pix, iix: iix})
	for c.lru.Len() > c.maxDocs {
		back := c.lru.Back()
		c.lru.Remove(back)
		e := back.Value.(*idxEntry)
		delete(c.entries, e.name)
		c.retire(e.pix, e.iix)
	}
}

// retire folds a dropped index's probe counters into the evicted totals.
func (c *indexCache) retire(pix *pathindex.Index, iix *invindex.Index) {
	if pix != nil {
		c.evictedProbes.Add(int64(pix.Probes()))
	}
	if iix != nil {
		c.evictedLookups.Add(int64(iix.Lookups()))
	}
}

// Drop evicts name, retiring its probe counters.
func (c *indexCache) Drop(name string) {
	c.mu.Lock()
	if el, ok := c.entries[name]; ok {
		c.lru.Remove(el)
		e := el.Value.(*idxEntry)
		delete(c.entries, e.name)
		c.retire(e.pix, e.iix)
	}
	c.mu.Unlock()
}

// probes sums live and evicted probe counters.
func (c *indexCache) probes() (pathProbes, keywordLookups int) {
	c.mu.Lock()
	for _, el := range c.entries {
		e := el.Value.(*idxEntry)
		if e.pix != nil {
			pathProbes += e.pix.Probes()
		}
		if e.iix != nil {
			keywordLookups += e.iix.Lookups()
		}
	}
	c.mu.Unlock()
	pathProbes += int(c.evictedProbes.Load())
	keywordLookups += int(c.evictedLookups.Load())
	return pathProbes, keywordLookups
}

func (c *indexCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
