package diskstore

// Cold-open laziness: opening an existing store must not scan the data log
// to rebuild the dedup (DAG) tables — that work is deferred to the first
// mutation (writableLocked → loadDedupLocked), so a read-only open costs
// O(manifest) regardless of corpus size. The ds.dag field is the witness:
// nil means the data log was never scanned.

import (
	"testing"

	"vxml/internal/xmltree"
)

func TestColdOpenDefersDedupUntilFirstWrite(t *testing.T) {
	s := buildHeap(t, seedDocs(8))
	dir := t.TempDir()
	ds, err := Create(s, dir, Options{}, nil)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reopened, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer reopened.Close() //nolint:errcheck
	if reopened.dag != nil {
		t.Fatal("open scanned the data log: dag tables resident before any write")
	}

	// A full read workload — document trees, subtrees, persisted indices —
	// must be served without ever touching the dedup tables.
	for _, doc := range reopened.Docs() {
		if doc.Root == nil {
			t.Fatalf("document %q paged in without a root", doc.Name)
		}
		if sub := reopened.Subtree(doc.Root.ID); sub == nil {
			t.Fatalf("Subtree(%v) = nil", doc.Root.ID)
		}
		if _, _, err := reopened.StoredIndices(doc.Name); err != nil {
			t.Fatalf("StoredIndices(%q): %v", doc.Name, err)
		}
	}
	if reopened.dag != nil {
		t.Fatal("read workload loaded the dedup tables: reads must stay scan-free")
	}

	// The first mutation pays for the scan, exactly once — and the rebuilt
	// tables still deduplicate against pre-existing structure: an exact
	// duplicate of a resident document appends no new data bytes.
	doc, err := xmltree.ParseString(partXML(42), "fresh.xml", reopened.ReserveID())
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.RegisterParsed(doc); err != nil {
		t.Fatalf("RegisterParsed: %v", err)
	}
	if reopened.dag == nil {
		t.Fatal("first write did not load the dedup tables")
	}
	before := reopened.dataLen.Load()
	dup, err := xmltree.ParseString(partXML(1), "dup.xml", reopened.ReserveID())
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.RegisterParsed(dup); err != nil {
		t.Fatalf("RegisterParsed(dup): %v", err)
	}
	if after := reopened.dataLen.Load(); after != before {
		t.Fatalf("lazily rebuilt dedup tables missed resident structure: +%d data bytes for a duplicate", after-before)
	}
}
