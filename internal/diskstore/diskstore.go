package diskstore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vxml/internal/dewey"
	"vxml/internal/docname"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/store"
	"vxml/internal/xmltree"
)

// Manifest operation names.
const (
	opAdd     = "add"
	opReplace = "replace"
	opDelete  = "delete"
)

// Options tunes a disk store. The zero value selects every default. Cache
// sizes use 0 for "default" and a negative value for "disabled", so tests
// can force every read through the disk path.
type Options struct {
	// BlockSize is the read-caching granularity (default 4 KiB).
	BlockSize int
	// CacheBytes bounds the decoded-block cache (default 16 MiB; <0 none).
	CacheBytes int64
	// DocCacheSize bounds the hydrated-document cache in documents
	// (default 64; <0 none).
	DocCacheSize int
	// IndexCacheSize bounds the decoded-index cache in documents
	// (default 256; <0 none).
	IndexCacheSize int
	// Mmap serves data-log reads from a read-only memory mapping instead
	// of pread where the platform supports it.
	Mmap bool

	// fault, when set by in-package tests, tears writes after a byte
	// budget — the crash-safety property suite's seam.
	fault *faultPlan
}

func (o Options) blockSize() int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o Options) cacheBytes() int64 {
	if o.CacheBytes == 0 {
		return DefaultCacheBytes
	}
	return max(o.CacheBytes, 0)
}

func (o Options) docCacheSize() int {
	if o.DocCacheSize == 0 {
		return DefaultDocCacheSize
	}
	return max(o.DocCacheSize, 0)
}

func (o Options) indexCacheSize() int {
	if o.IndexCacheSize == 0 {
		return DefaultIndexCacheSize
	}
	return max(o.IndexCacheSize, 0)
}

// docEntry is the immutable per-document record: where the document's root
// node and index records live in the data log. All lookups resolve through
// these; the trees themselves stay on disk until fetched.
type docEntry struct {
	name  string
	docID int32
	root  int64
	index int64
	bytes int
	nodes int // expanded element count (0 for corpora written before tracking)
}

// Store is the disk-resident corpus backend. It satisfies store.Corpus and
// core's IndexSource, so an engine over it plans from manifest metadata,
// reads indices and subtrees on demand through the block cache, and never
// needs the whole corpus in memory.
//
// Concurrency: mutations serialize on mu (they append to shared files);
// reads take mu only to resolve immutable docEntry pointers and then
// decode outside the lock from the committed data-log prefix, which no
// mutation ever rewrites.
type Store struct {
	dir      string
	dataName string
	opts     Options

	mu         sync.RWMutex
	docs       map[string]*docEntry
	byID       map[int32]*docEntry
	history    []manifestRec
	shardDocs  []int
	shardBytes []int
	shardMut   []int
	totalBytes int
	data       *appendFile
	manifest   *appendFile
	dag        *dagWriter
	broken     error

	dataLen atomic.Int64 // committed data-log length
	nextID  atomic.Int32
	gen     atomic.Int64 // committed mutations since open

	graveMu sync.Mutex
	grave   []int32
	pins    atomic.Int64

	source    blockSource
	blocks    *blockCache
	docsCache *docCache
	idxCache  *indexCache

	subtreeFetches atomic.Int64
	bytesFetched   atomic.Int64
	lastDecodeErr  atomic.Pointer[error]

	openWall time.Duration
}

// Compile-time checks: the disk backend is a drop-in store.Corpus, and an
// IndexSource in core's structural sense (core asserts the interface
// itself; mirroring it here documents the full method set in one place).
var _ store.Corpus = (*Store)(nil)
var _ interface {
	StoredIndices(name string) (*pathindex.Index, *invindex.Index, error)
	RegisterIndexed(doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error
	ReplaceIndexed(doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error
	IndexProbes() (pathProbes, keywordLookups int)
} = (*Store)(nil)

// Exists reports whether dir holds a disk corpus (a readable manifest).
func Exists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, ManifestFileName))
	return err == nil
}

// newDataName picks an unused uniquely named data log within dir. The name
// is committed by the manifest header, which is what lets a full save into
// a live directory write its new log beside the old one and switch
// atomically.
func newDataName(dir string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%08x.vxd", dataFilePrefix, uint32(time.Now().UnixNano())+uint32(i)*2654435761)
		if _, err := os.Stat(filepath.Join(dir, name)); os.IsNotExist(err) {
			return name
		}
	}
}

// Init creates an empty disk corpus with the given shard count in dir
// (creating it if needed) and opens it. It fails if dir already holds a
// corpus.
func Init(dir string, shards int, opts Options) (*Store, error) {
	if shards <= 0 {
		shards = store.DefaultShardCount()
	}
	if Exists(dir) {
		return nil, fmt.Errorf("diskstore: %s already holds a corpus", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataName := newDataName(dir)
	if err := writeFileAtomic(dir, dataName, []byte(dataMagic), opts.fault); err != nil {
		return nil, err
	}
	if err := writeFileAtomic(dir, ManifestFileName, []byte(manifestHeaderLine(shards, dataName)), opts.fault); err != nil {
		return nil, err
	}
	return OpenWith(dir, opts)
}

// writeFileAtomic writes a file via temp+rename, threading the fault seam.
func writeFileAtomic(dir, name string, data []byte, fault *faultPlan) error {
	tmp, err := os.CreateTemp(dir, "tmp-"+name+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) //nolint:errcheck
	af := &appendFile{f: tmp, fault: fault}
	if err := af.Write(data); err != nil {
		tmp.Close() //nolint:errcheck
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, name))
}

// Open opens the disk corpus in dir with default options.
func Open(dir string) (*Store, error) { return OpenWith(dir, Options{}) }

// OpenWith opens the disk corpus in dir. Startup cost is O(manifest):
// the manifest's valid record prefix is folded into the in-memory
// document table and everything else — trees, indices, the dedup maps —
// stays on disk until first use. A trailing torn manifest record (or torn
// data-log append) from an interrupted writer is discarded, restoring the
// corpus as of the last committed operation.
func OpenWith(dir string, opts Options) (*Store, error) {
	start := time.Now()
	mpath := filepath.Join(dir, ManifestFileName)
	mdata, err := os.ReadFile(mpath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNoCorpus, dir)
		}
		return nil, err
	}
	shards, dataName, recStart, err := parseManifestHeader(mdata)
	if err != nil {
		return nil, err
	}
	recs, goodLen := foldManifest(mdata, recStart)

	ds := &Store{
		dir:        dir,
		dataName:   dataName,
		opts:       opts,
		docs:       map[string]*docEntry{},
		byID:       map[int32]*docEntry{},
		history:    recs,
		shardDocs:  make([]int, shards),
		shardBytes: make([]int, shards),
		shardMut:   make([]int, shards),
		blocks:     newBlockCache(opts.blockSize(), opts.cacheBytes()),
		docsCache:  newDocCache(opts.docCacheSize()),
		idxCache:   newIndexCache(opts.indexCacheSize()),
	}
	ds.nextID.Store(1)

	// Committed data-log length: the high-water mark of the folded records.
	committed := int64(len(dataMagic))
	for _, rec := range recs {
		if rec.DataLen > committed {
			committed = rec.DataLen
		}
		ds.applyRecordLocked(rec, false)
		ds.EnsureNextID(rec.DocID + 1)
	}
	ds.dataLen.Store(committed)

	// Discard uncommitted tails left by an interrupted writer.
	ds.manifest, err = openAppend(mpath, opts.fault)
	if err != nil {
		return nil, err
	}
	if ds.manifest.off > goodLen {
		if err := ds.manifest.Truncate(goodLen); err != nil {
			ds.manifest.Close() //nolint:errcheck
			return nil, err
		}
	}
	dpath := filepath.Join(dir, dataName)
	ds.data, err = openAppend(dpath, opts.fault)
	if err != nil {
		ds.manifest.Close() //nolint:errcheck
		return nil, err
	}
	if ds.data.off < committed {
		ds.close() //nolint:errcheck
		return nil, corruptf("data log %s is %d bytes, manifest commits %d", dataName, ds.data.off, committed)
	}
	if ds.data.off > committed {
		if err := ds.data.Truncate(committed); err != nil {
			ds.close() //nolint:errcheck
			return nil, err
		}
	}
	var magic [len(dataMagic)]byte
	if _, err := ds.data.f.ReadAt(magic[:], 0); err != nil || string(magic[:]) != dataMagic {
		ds.close() //nolint:errcheck
		return nil, corruptf("data log %s has no header", dataName)
	}

	// Read seam: a separate descriptor (pread, optionally mmap).
	rf, err := os.Open(dpath)
	if err != nil {
		ds.close() //nolint:errcheck
		return nil, err
	}
	ds.source = &fileSource{f: rf}
	if opts.Mmap {
		if src, ok := newMmapSource(rf, committed); ok {
			ds.source = src
		}
	}

	cleanupStale(dir, dataName)
	ds.openWall = time.Since(start)
	return ds, nil
}

// applyRecordLocked folds one manifest record into the document table.
// live=true counts the operation in the per-shard mutation counters (used
// for in-process mutations; replay at open starts the counters at zero,
// matching the heap backend's behavior after Load).
func (ds *Store) applyRecordLocked(rec manifestRec, live bool) {
	sh := store.ShardIndex(rec.Name, len(ds.shardDocs))
	switch rec.Op {
	case opDelete:
		if old, ok := ds.docs[rec.Name]; ok {
			delete(ds.docs, rec.Name)
			ds.shardDocs[sh]--
			ds.shardBytes[sh] -= old.bytes
			ds.totalBytes -= old.bytes
			if live {
				ds.shardMut[sh]++
				ds.retireLocked(old.docID)
			} else {
				delete(ds.byID, old.docID)
			}
		}
	default: // opAdd, opReplace
		e := &docEntry{name: rec.Name, docID: rec.DocID, root: rec.Root, index: rec.Index, bytes: rec.Bytes, nodes: rec.Nodes}
		if old, ok := ds.docs[rec.Name]; ok {
			ds.shardBytes[sh] -= old.bytes
			ds.totalBytes -= old.bytes
			if live {
				ds.shardMut[sh]++
				ds.retireLocked(old.docID)
			} else {
				delete(ds.byID, old.docID)
			}
		} else {
			ds.shardDocs[sh]++
		}
		ds.docs[rec.Name] = e
		ds.byID[rec.DocID] = e
		ds.shardBytes[sh] += e.bytes
		ds.totalBytes += e.bytes
	}
}

// foldManifest decodes the manifest's record frames starting at off,
// stopping at the first torn, corrupt or implausible record. It returns
// the valid records and the byte length of the valid prefix.
func foldManifest(data []byte, off int) ([]manifestRec, int64) {
	var recs []manifestRec
	var dataHigh int64 = int64(len(dataMagic))
	for {
		if off+8 > len(data) {
			return recs, int64(off)
		}
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		crc := uint32(data[off+4]) | uint32(data[off+5])<<8 | uint32(data[off+6])<<16 | uint32(data[off+7])<<24
		if n > maxRecordLen || off+8+n > len(data) {
			return recs, int64(off)
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, int64(off)
		}
		var rec manifestRec
		if err := json.Unmarshal(payload, &rec); err != nil || !plausibleRecord(rec, dataHigh) {
			return recs, int64(off)
		}
		if rec.DataLen > dataHigh {
			dataHigh = rec.DataLen
		}
		recs = append(recs, rec)
		off += 8 + n
	}
}

// plausibleRecord applies the structural sanity checks that make a
// CRC-valid but semantically impossible record (from a corrupted file)
// stop the fold rather than poison the table.
func plausibleRecord(rec manifestRec, dataHigh int64) bool {
	switch rec.Op {
	case opAdd, opReplace:
		if rec.Root < int64(len(dataMagic)) || rec.Index < int64(len(dataMagic)) {
			return false
		}
		if rec.Root >= rec.DataLen || rec.Index >= rec.DataLen {
			return false
		}
	case opDelete:
	default:
		return false
	}
	return rec.Name != "" && rec.DocID > 0 && rec.DataLen >= dataHigh
}

// cleanupStale removes data logs and temp files that no manifest
// references — leftovers of an interrupted full save. Best-effort.
func cleanupStale(dir, keepData string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if name == keepData || ent.IsDir() {
			continue
		}
		if strings.HasPrefix(name, dataFilePrefix) && strings.HasSuffix(name, ".vxd") || strings.HasPrefix(name, "tmp-") {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck
		}
	}
}

// Create writes the whole corpus c as a disk corpus in dir and opens it.
// The data log is written under a fresh unique name and the manifest is
// renamed into place last, so a crash mid-save leaves any previous corpus
// in dir untouched. indices, when non-nil, supplies already-built indices
// per document (the engine's, avoiding a rebuild); a nil func — or a nil
// result — builds them from the tree.
func Create(c store.Corpus, dir string, opts Options, indices func(name string) (*pathindex.Index, *invindex.Index)) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	dataName := newDataName(dir)
	df, err := os.OpenFile(filepath.Join(dir, dataName), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	data := &appendFile{f: df, fault: opts.fault}
	w := &dagWriter{keys: map[string]int64{}, indexByRoot: map[int64]int64{}}
	var recs []manifestRec
	writeAll := func() error {
		if err := data.Write([]byte(dataMagic)); err != nil {
			return err
		}
		for _, doc := range c.Docs() {
			if doc == nil || doc.Root == nil {
				continue
			}
			p := &pending{base: data.off}
			rootOff, nodes := w.addTree(p, doc.Root)
			var pix *pathindex.Index
			var iix *invindex.Index
			if indices != nil {
				pix, iix = indices(doc.Name)
			}
			if pix == nil || iix == nil {
				pix, iix = pathindex.Build(doc), invindex.Build(doc)
			}
			idxOff := w.addIndex(p, rootOff, pix, iix)
			if err := data.Write(p.buf); err != nil {
				return err
			}
			w.commit(p)
			recs = append(recs, manifestRec{
				Op: opAdd, Name: doc.Name, DocID: doc.DocID,
				Root: rootOff, Index: idxOff,
				Bytes: doc.Root.ByteLen, Nodes: nodes, DataLen: data.off,
			})
		}
		return data.f.Sync()
	}
	if err := writeAll(); err != nil {
		df.Close() //nolint:errcheck
		return nil, fmt.Errorf("diskstore: create: %w", err)
	}
	if err := df.Close(); err != nil {
		return nil, err
	}
	var mbuf []byte
	mbuf = append(mbuf, manifestHeaderLine(c.ShardCount(), dataName)...)
	for _, rec := range recs {
		payload, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		mbuf = append(mbuf, frameManifestRec(payload)...)
	}
	if err := writeFileAtomic(dir, ManifestFileName, mbuf, opts.fault); err != nil {
		return nil, fmt.Errorf("diskstore: create: %w", err)
	}
	ds, err := OpenWith(dir, opts)
	if err != nil {
		return nil, err
	}
	// The freshly written dedup maps are exactly what the lazy rebuild
	// would rescan; hand them over so the first mutation skips the scan
	// and DiskStats reports the save's dedup counters.
	ds.dag = w
	return ds, nil
}

// close releases file handles (unexported half shared by Open's error
// paths, which have no source yet).
func (ds *Store) close() error {
	var first error
	note := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if ds.source != nil {
		note(ds.source.Close())
	}
	if ds.data != nil {
		note(ds.data.Close())
	}
	if ds.manifest != nil {
		note(ds.manifest.Close())
	}
	return first
}

// Close releases the store's file handles. The store must not be used
// afterwards.
func (ds *Store) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.broken = fmt.Errorf("diskstore: store closed")
	return ds.close()
}

// --- store.Corpus: topology and IDs ---

// ShardCount returns the shard count recorded in the manifest header.
func (ds *Store) ShardCount() int { return len(ds.shardDocs) }

// ShardOf returns the shard index the given document name hashes to.
func (ds *Store) ShardOf(name string) int { return store.ShardIndex(name, len(ds.shardDocs)) }

// ShardInfos returns per-shard document counts, byte sizes and mutation
// counters (mutations counted since open, like a freshly loaded heap
// store).
func (ds *Store) ShardInfos() []store.ShardInfo {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	out := make([]store.ShardInfo, len(ds.shardDocs))
	for i := range out {
		out[i] = store.ShardInfo{Shard: i, Documents: ds.shardDocs[i], Bytes: ds.shardBytes[i], Mutations: ds.shardMut[i]}
	}
	return out
}

// Mutations returns the total replacements and deletions since open.
func (ds *Store) Mutations() int {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	total := 0
	for _, m := range ds.shardMut {
		total += m
	}
	return total
}

// NextDocID returns the next document ID to be reserved.
func (ds *Store) NextDocID() int32 { return ds.nextID.Load() }

// ReserveID atomically allocates the next document ID.
func (ds *Store) ReserveID() int32 { return ds.nextID.Add(1) - 1 }

// EnsureNextID raises the ID sequence so the next reservation returns at
// least id.
func (ds *Store) EnsureNextID(id int32) {
	for {
		cur := ds.nextID.Load()
		if cur >= id || ds.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// --- store.Corpus: lifecycle ---

// RegisterParsed registers a document with a reserved DocID, building its
// indices first (callers with indices in hand use RegisterIndexed).
func (ds *Store) RegisterParsed(doc *xmltree.Document) error {
	return ds.RegisterIndexed(doc, pathindex.Build(doc), invindex.Build(doc))
}

// ReplaceParsed swaps the document registered under doc.Name.
func (ds *Store) ReplaceParsed(doc *xmltree.Document) error {
	return ds.ReplaceIndexed(doc, pathindex.Build(doc), invindex.Build(doc))
}

// RegisterIndexed registers a parsed document together with its indices:
// DAG-encoded subtree records and the index record are appended to the
// data log (only new structure is written), then one manifest record
// commits the document. This is core's IndexSource write path — the
// indices the engine just built are persisted, not rebuilt.
func (ds *Store) RegisterIndexed(doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.writableLocked(doc); err != nil {
		return err
	}
	if _, dup := ds.docs[doc.Name]; dup {
		return fmt.Errorf("diskstore: %w: %q", store.ErrDuplicateName, doc.Name)
	}
	rec, err := ds.appendDocLocked(opAdd, doc, pix, iix)
	if err != nil {
		return err
	}
	ds.commitDocLocked(rec, doc, pix, iix)
	return nil
}

// ReplaceIndexed swaps the document registered under doc.Name for doc,
// appending only structure the corpus has not seen. The old document's
// records stay in the data log, so pinned readers keep resolving its Dewey
// IDs exactly as on the heap backend.
func (ds *Store) ReplaceIndexed(doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if err := ds.writableLocked(doc); err != nil {
		return err
	}
	if _, ok := ds.docs[doc.Name]; !ok {
		return fmt.Errorf("diskstore: %w: %q", store.ErrUnknownName, doc.Name)
	}
	rec, err := ds.appendDocLocked(opReplace, doc, pix, iix)
	if err != nil {
		return err
	}
	ds.commitDocLocked(rec, doc, pix, iix)
	return nil
}

// Delete unregisters the document stored under name: a single manifest
// record. Tombstone semantics match the heap backend (see Pin).
func (ds *Store) Delete(name string) error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.broken != nil {
		return ds.broken
	}
	old, ok := ds.docs[name]
	if !ok {
		return fmt.Errorf("diskstore: %w: %q", store.ErrUnknownName, name)
	}
	rec := manifestRec{Op: opDelete, Name: name, DocID: old.docID, DataLen: ds.data.off}
	if err := ds.appendManifestLocked(rec); err != nil {
		return err
	}
	ds.applyRecordLocked(rec, true)
	ds.gen.Add(1)
	ds.docsCache.Drop(name)
	ds.idxCache.Drop(name)
	return nil
}

func (ds *Store) writableLocked(doc *xmltree.Document) error {
	if ds.broken != nil {
		return ds.broken
	}
	if doc == nil || doc.Root == nil {
		return fmt.Errorf("diskstore: document without a root cannot be stored")
	}
	return ds.loadDedupLocked()
}

// appendDocLocked stages and appends one document's data-log records and
// its manifest record. The data append lands first and commits the new
// data length; the manifest record is the commit point of the operation.
func (ds *Store) appendDocLocked(op string, doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) (manifestRec, error) {
	p := &pending{base: ds.data.off}
	rootOff, nodes := ds.dag.addTree(p, doc.Root)
	idxOff := ds.dag.addIndex(p, rootOff, pix, iix)
	if err := ds.data.Write(p.buf); err != nil {
		// Torn data append: the staged keys point at bytes we now discard.
		ds.dag.rollback(p)
		if terr := ds.data.Truncate(ds.dataLen.Load()); terr != nil {
			ds.broken = fmt.Errorf("diskstore: truncate after torn append: %w", terr)
		}
		return manifestRec{}, fmt.Errorf("diskstore: append data: %w", err)
	}
	ds.dag.commit(p)
	ds.dataLen.Store(ds.data.off)
	rec := manifestRec{
		Op: op, Name: doc.Name, DocID: doc.DocID,
		Root: rootOff, Index: idxOff,
		Bytes: doc.Root.ByteLen, Nodes: nodes, DataLen: ds.data.off,
	}
	if err := ds.appendManifestLocked(rec); err != nil {
		return manifestRec{}, err
	}
	return rec, nil
}

// appendManifestLocked appends one CRC-framed record; a torn append is
// truncated away so the manifest's valid prefix stays the commit log.
func (ds *Store) appendManifestLocked(rec manifestRec) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := ds.manifest.Write(frameManifestRec(payload)); err != nil {
		if terr := ds.manifest.Truncate(ds.manifest.off); terr != nil {
			ds.broken = fmt.Errorf("diskstore: truncate after torn manifest append: %w", terr)
		}
		return fmt.Errorf("diskstore: append manifest: %w", err)
	}
	ds.history = append(ds.history, rec)
	return nil
}

// commitDocLocked applies a committed add/replace to the in-memory tables
// and seeds the caches with the freshly parsed artifacts — the document
// the caller just ingested is by definition hot.
func (ds *Store) commitDocLocked(rec manifestRec, doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) {
	ds.applyRecordLocked(rec, true)
	ds.EnsureNextID(rec.DocID + 1)
	ds.gen.Add(1)
	ds.docsCache.Put(rec.Name, rec.DocID, doc)
	ds.idxCache.Put(rec.Name, rec.DocID, pix, iix)
}

// --- store.Corpus: pins and tombstones ---

// Pin marks the start of a lock-free read epoch (see store.Store.Pin).
func (ds *Store) Pin() { ds.pins.Add(1) }

// Unpin ends a Pin epoch, sweeping tombstones when the last reader leaves.
func (ds *Store) Unpin() {
	if ds.pins.Add(-1) == 0 {
		ds.sweep()
	}
}

// retireLocked tombstones the byID entry of a replaced or deleted
// document; the caller holds ds.mu for writing, so the sweep happens in
// place when no readers are pinned.
func (ds *Store) retireLocked(docID int32) {
	ds.graveMu.Lock()
	ds.grave = append(ds.grave, docID)
	ds.graveMu.Unlock()
	if ds.pins.Load() == 0 {
		ds.sweepLocked()
	}
}

// sweep acquires ds.mu and drops every tombstoned byID entry (the Unpin
// path, which never holds the lock).
func (ds *Store) sweep() {
	ds.mu.Lock()
	ds.sweepLocked()
	ds.mu.Unlock()
}

func (ds *Store) sweepLocked() {
	ds.graveMu.Lock()
	ids := ds.grave
	ds.grave = nil
	ds.graveMu.Unlock()
	for _, id := range ids {
		// Drop the entry only if it is no longer live under its name
		// (IDs are never reused, so this is belt and suspenders).
		if e, ok := ds.byID[id]; ok && ds.docs[e.name] != e {
			delete(ds.byID, id)
		}
	}
}

// Tombstones returns the number of retired documents awaiting sweep.
func (ds *Store) Tombstones() int {
	ds.graveMu.Lock()
	defer ds.graveMu.Unlock()
	return len(ds.grave)
}

// --- store.Corpus: metadata lookups (never hydrate) ---

func infoOf(e *docEntry) store.DocInfo {
	return store.DocInfo{Name: e.name, DocID: e.docID, Bytes: e.bytes}
}

// Info returns the metadata of the document registered under name,
// straight from the manifest-backed table — no tree is paged in.
func (ds *Store) Info(name string) (store.DocInfo, bool) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if e, ok := ds.docs[name]; ok {
		return infoOf(e), true
	}
	return store.DocInfo{}, false
}

// InfoByID returns the metadata of the document whose Dewey IDs start
// with docID, resolving tombstoned documents like the heap backend.
func (ds *Store) InfoByID(docID int32) (store.DocInfo, bool) {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if e, ok := ds.byID[docID]; ok {
		return infoOf(e), true
	}
	return store.DocInfo{}, false
}

// Infos returns the metadata of all documents in document ID order.
func (ds *Store) Infos() []store.DocInfo {
	ds.mu.RLock()
	out := make([]store.DocInfo, 0, len(ds.docs))
	for _, e := range ds.docs {
		out = append(out, infoOf(e))
	}
	ds.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

// InfosMatching returns the metadata of documents whose names match the
// pattern, in document ID order.
func (ds *Store) InfosMatching(pattern string) []store.DocInfo {
	if !docname.IsPattern(pattern) {
		if info, ok := ds.Info(pattern); ok {
			return []store.DocInfo{info}
		}
		return nil
	}
	ds.mu.RLock()
	var out []store.DocInfo
	for name, e := range ds.docs {
		if docname.Match(pattern, name) {
			out = append(out, infoOf(e))
		}
	}
	ds.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

// --- store.Corpus: tree lookups (hydrate through the document cache) ---

func (ds *Store) entry(name string) *docEntry {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.docs[name]
}

func (ds *Store) docForEntry(e *docEntry) *xmltree.Document {
	if doc, ok := ds.docsCache.Get(e.name, e.docID); ok {
		return doc
	}
	doc, err := ds.hydrate(e)
	if err != nil {
		ds.noteDecodeErr(err)
		return nil
	}
	ds.docsCache.Put(e.name, e.docID, doc)
	return doc
}

// Doc returns the document registered under name, hydrating it from the
// data log (or the document cache) on demand.
func (ds *Store) Doc(name string) *xmltree.Document {
	e := ds.entry(name)
	if e == nil {
		return nil
	}
	return ds.docForEntry(e)
}

// Docs returns all documents in document ID order, hydrating each.
// Intended for persistence and snapshotting, not the serving path.
func (ds *Store) Docs() []*xmltree.Document {
	return ds.docsForEntries(ds.sortedEntries(""))
}

// DocsMatching returns the documents whose names match the pattern in
// document ID order, hydrating each.
func (ds *Store) DocsMatching(pattern string) []*xmltree.Document {
	if !docname.IsPattern(pattern) {
		if d := ds.Doc(pattern); d != nil {
			return []*xmltree.Document{d}
		}
		return nil
	}
	return ds.docsForEntries(ds.sortedEntries(pattern))
}

func (ds *Store) sortedEntries(pattern string) []*docEntry {
	ds.mu.RLock()
	entries := make([]*docEntry, 0, len(ds.docs))
	for name, e := range ds.docs {
		if pattern == "" || docname.Match(pattern, name) {
			entries = append(entries, e)
		}
	}
	ds.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].docID < entries[j].docID })
	return entries
}

func (ds *Store) docsForEntries(entries []*docEntry) []*xmltree.Document {
	var docs []*xmltree.Document
	for _, e := range entries {
		if d := ds.docForEntry(e); d != nil {
			docs = append(docs, d)
		}
	}
	return docs
}

// --- store.Corpus: base-data access ---

// Subtree fetches the element with the given Dewey ID directly over the
// compressed representation: child-offset ordinals are navigated from the
// document's root record and only the target subtree is materialized, so
// fetching one winner from a multi-megabyte document decodes kilobytes. A
// document already hydrated in the cache serves the fetch from memory.
func (ds *Store) Subtree(id dewey.ID) *xmltree.Node {
	if len(id) == 0 {
		return nil
	}
	ds.mu.RLock()
	e := ds.byID[id[0]]
	ds.mu.RUnlock()
	if e == nil {
		return nil
	}
	var n *xmltree.Node
	if doc, ok := ds.docsCache.Get(e.name, e.docID); ok {
		n = doc.FindByID(id)
	} else {
		var err error
		n, err = ds.subtreeAt(e, id)
		if err != nil {
			ds.noteDecodeErr(err)
			return nil
		}
	}
	if n != nil {
		ds.subtreeFetches.Add(1)
		ds.bytesFetched.Add(int64(n.ByteLen))
	}
	return n
}

// Value fetches the atomic value of the element with the given ID.
func (ds *Store) Value(id dewey.ID) (string, bool) {
	n := ds.Subtree(id)
	if n == nil {
		return "", false
	}
	return n.Value, true
}

// SubtreeFetches returns the number of counted Subtree/Value calls.
func (ds *Store) SubtreeFetches() int { return int(ds.subtreeFetches.Load()) }

// BytesFetched returns the summed serialized byte length of fetched
// subtrees.
func (ds *Store) BytesFetched() int { return int(ds.bytesFetched.Load()) }

// ResetCounters zeroes the access counters.
func (ds *Store) ResetCounters() {
	ds.subtreeFetches.Store(0)
	ds.bytesFetched.Store(0)
}

// TotalBytes returns the summed serialized size of all documents — the
// corpus's uncompressed size, from metadata alone.
func (ds *Store) TotalBytes() int {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.totalBytes
}

// Save writes the corpus as a plain store.Save directory (hydrating every
// document); SaveCorpus is the shared writer, so the formats stay
// interchangeable in both directions.
func (ds *Store) Save(dir string) error { return store.SaveCorpus(ds, dir) }

func (ds *Store) noteDecodeErr(err error) {
	ds.lastDecodeErr.Store(&err)
}

// --- core.IndexSource ---

// StoredIndices returns the document's persisted indices, decoding the
// index record through the block cache (memoized per document).
func (ds *Store) StoredIndices(name string) (*pathindex.Index, *invindex.Index, error) {
	e := ds.entry(name)
	if e == nil {
		return nil, nil, fmt.Errorf("diskstore: %w: %q", store.ErrUnknownName, name)
	}
	if pix, iix, ok := ds.idxCache.Get(name, e.docID); ok {
		return pix, iix, nil
	}
	kind, payload, _, err := ds.frameAt(e.index)
	if err != nil {
		return nil, nil, err
	}
	if kind != kindIndex {
		return nil, nil, corruptf("record at %d is kind %q, want index", e.index, kind)
	}
	pix, iix, err := decodeIndexPayload(payload, e.docID)
	if err != nil {
		return nil, nil, err
	}
	ds.idxCache.Put(name, e.docID, pix, iix)
	return pix, iix, nil
}

// IndexProbes sums the probe counters of every index decoded since open
// (live plus evicted).
func (ds *Store) IndexProbes() (pathProbes, keywordLookups int) {
	return ds.idxCache.probes()
}

// --- stats and snapshotting ---

// CacheStats is one cache's hit/miss and occupancy counters.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes,omitempty"`
	Capacity int64 `json:"capacity,omitempty"`
}

// Stats is a point-in-time snapshot of the disk backend's resource
// posture: how much is on disk, how much of it is resident, and how the
// caches are doing.
type Stats struct {
	Dir       string `json:"dir"`
	Documents int    `json:"documents"`
	// DataBytes is the committed data-log size — the corpus's on-disk
	// footprint after DAG compression.
	DataBytes     int64 `json:"data_bytes"`
	ManifestBytes int64 `json:"manifest_bytes"`
	// TotalBytes is the corpus's uncompressed serialized size; the ratio
	// DataBytes/TotalBytes is the structure-sharing win.
	TotalBytes int `json:"total_bytes"`
	// ResidentDocs/ResidentBytes describe the hydrated-document cache:
	// how much of the corpus is currently materialized on the heap.
	ResidentDocs  int   `json:"resident_docs"`
	ResidentBytes int64 `json:"resident_bytes"`
	// NodesWritten/NodesShared count DAG encoding outcomes of committed
	// writes since open (Create folds the full save in).
	NodesWritten int64      `json:"nodes_written"`
	NodesShared  int64      `json:"nodes_shared"`
	BlockSize    int        `json:"block_size"`
	BlockCache   CacheStats `json:"block_cache"`
	DocCache     CacheStats `json:"doc_cache"`
	IndexCache   CacheStats `json:"index_cache"`
	Generation   int64      `json:"generation"`
	// OpenMillis is the wall time the last Open spent — the cold-start
	// cost, O(manifest) rather than O(corpus).
	OpenMillis float64 `json:"open_millis"`
}

// DiskStats returns the current stats snapshot.
func (ds *Store) DiskStats() Stats {
	ds.mu.RLock()
	st := Stats{
		Dir:           ds.dir,
		Documents:     len(ds.docs),
		DataBytes:     ds.dataLen.Load(),
		ManifestBytes: ds.manifest.off,
		TotalBytes:    ds.totalBytes,
		BlockSize:     ds.blocks.blockSiz,
		Generation:    ds.gen.Load(),
		OpenMillis:    float64(ds.openWall.Microseconds()) / 1000,
	}
	if ds.dag != nil {
		st.NodesWritten, st.NodesShared = ds.dag.nodesWritten, ds.dag.nodesShared
	}
	ds.mu.RUnlock()
	st.ResidentDocs, st.ResidentBytes = ds.docsCache.resident()
	entries, bytes, hits, misses := ds.blocks.stats()
	st.BlockCache = CacheStats{Hits: hits, Misses: misses, Entries: entries, Bytes: bytes, Capacity: ds.blocks.maxBytes}
	st.DocCache = CacheStats{Hits: ds.docsCache.hits.Load(), Misses: ds.docsCache.misses.Load(), Entries: st.ResidentDocs}
	st.IndexCache = CacheStats{Hits: ds.idxCache.hits.Load(), Misses: ds.idxCache.misses.Load(), Entries: ds.idxCache.len()}
	return st
}

// OpenDuration returns the wall time the Open call spent.
func (ds *Store) OpenDuration() time.Duration { return ds.openWall }

// SnapshotFiles emits the corpus's raw on-disk files (data log first,
// manifest last, mirroring commit order) — the cluster ships these bytes
// verbatim instead of re-serializing every document, so a snapshot of a
// disk-backed node costs O(compressed bytes). Mutations are excluded for
// the duration, so the pair is consistent.
func (ds *Store) SnapshotFiles(emit func(name string, data []byte) error) error {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if ds.broken != nil {
		return ds.broken
	}
	data, err := os.ReadFile(filepath.Join(ds.dir, ds.dataName))
	if err != nil {
		return err
	}
	if int64(len(data)) > ds.dataLen.Load() {
		data = data[:ds.dataLen.Load()]
	}
	if err := emit(ds.dataName, data); err != nil {
		return err
	}
	mdata, err := os.ReadFile(filepath.Join(ds.dir, ManifestFileName))
	if err != nil {
		return err
	}
	if int64(len(mdata)) > ds.manifest.off {
		mdata = mdata[:ds.manifest.off]
	}
	return emit(ManifestFileName, mdata)
}
