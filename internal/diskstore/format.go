// Package diskstore implements the disk-resident corpus backend: a
// DAG-compressed block file of subtree records plus an append-only,
// CRC-framed manifest, served through a bounded block cache. It satisfies
// store.Corpus (and core's IndexSource), so a Database opened over a disk
// directory answers every search byte-identically to the heap backend
// while keeping only hot documents and blocks resident.
//
// On-disk layout of a corpus directory:
//
//	CORPUS-<nonce>.vxd  append-only data log: subtree (DAG node) records
//	                    and per-document index records
//	MANIFEST.vxd        append-only manifest: a header line naming the
//	                    data file, then length+CRC framed JSON records
//	                    (add/replace/delete), each carrying the committed
//	                    data-log length at the time it was written
//
// Crash safety is structural, not fsync-based: a data-log append that
// tears leaves bytes no manifest record references (the loader trusts only
// the committed prefix), and a manifest append that tears fails its CRC
// frame and is ignored, so a directory always opens as the corpus before
// or after the interrupted operation — never half. Full saves (Create)
// write a fresh uniquely named data log and commit it by renaming the new
// manifest into place last, the same temp+rename discipline store.Save
// uses.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"strconv"
	"strings"

	"vxml/internal/dewey"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
)

// ManifestFileName is the manifest's name within a corpus directory; its
// presence is how Open (and cluster snapshot restore) recognizes a disk
// corpus as opposed to a store.Save directory.
const ManifestFileName = "MANIFEST.vxd"

// dataFilePrefix prefixes the uniquely named data log the manifest header
// points at (CORPUS-<nonce>.vxd).
const dataFilePrefix = "CORPUS-"

// manifestMagic opens the manifest header line:
// "#!vxdisk shards=<N> data=<file>".
const manifestMagic = "#!vxdisk"

// dataMagic is the 8-byte data-log header.
const dataMagic = "vxdata1\n"

// Record kinds in the data log.
const (
	kindNode  = byte('N') // one DAG subtree node
	kindIndex = byte('I') // one document's serialized indices
)

// maxRecordLen bounds a single record payload (64 MiB): larger lengths in
// a frame are treated as corruption rather than allocated.
const maxRecordLen = 64 << 20

// ErrCorrupt is wrapped by every decode failure: a torn or overwritten
// block, a bad CRC frame, a record that does not parse. Callers can
// classify with errors.Is. Decoders never panic on corrupt input — the
// fuzz target pins that.
var ErrCorrupt = errors.New("diskstore: corrupt corpus")

// ErrNoCorpus reports that the directory holds no disk corpus (no
// readable manifest).
var ErrNoCorpus = errors.New("diskstore: no corpus in directory")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// uvarint decodes an unsigned varint at buf[off:], returning the value and
// the offset past it.
func uvarint(buf []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, 0, corruptf("bad varint at %d", off)
	}
	return v, off + n, nil
}

// uvarintLen decodes a varint that sizes a following field of width elem
// bytes, rejecting values that cannot fit in the remaining buffer — the
// bound that keeps corrupt records from driving huge allocations.
func uvarintLen(buf []byte, off int, elem int) (int, int, error) {
	v, off, err := uvarint(buf, off)
	if err != nil {
		return 0, 0, err
	}
	if elem < 1 {
		elem = 1
	}
	if v > uint64((len(buf)-off)/elem+1) {
		return 0, 0, corruptf("length %d exceeds record at %d", v, off)
	}
	return int(v), off, nil
}

func getBytes(buf []byte, off, n int) ([]byte, int, error) {
	if off+n > len(buf) {
		return nil, 0, corruptf("field of %d bytes overruns record at %d", n, off)
	}
	return buf[off : off+n], off + n, nil
}

// nodeRec is one decoded DAG subtree node: the element's tag, direct text
// value and serialized subtree length, plus the data-log offsets of its
// child records. Dewey IDs and parent pointers are per-occurrence — they
// are derived by navigation ordinals at decode time, which is exactly what
// makes structurally identical subtrees shareable.
type nodeRec struct {
	hash     uint64
	tag      string
	value    string
	byteLen  int
	children []int64
}

// appendFrame appends a framed record (kind, payload length, payload).
func appendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// frameAt reads the record frame at buf[off:]: kind and payload bounds.
func frameAt(buf []byte, off int) (kind byte, payload []byte, end int, err error) {
	if off >= len(buf) {
		return 0, nil, 0, corruptf("record offset %d beyond data", off)
	}
	kind = buf[off]
	n, off2, err := uvarint(buf, off+1)
	if err != nil {
		return 0, nil, 0, err
	}
	if n > maxRecordLen || off2+int(n) > len(buf) {
		return 0, nil, 0, corruptf("record at %d claims %d bytes", off, n)
	}
	return kind, buf[off2 : off2+int(n)], off2 + int(n), nil
}

func appendNodePayload(dst []byte, r nodeRec) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, r.hash)
	dst = binary.AppendUvarint(dst, uint64(len(r.tag)))
	dst = append(dst, r.tag...)
	dst = binary.AppendUvarint(dst, uint64(len(r.value)))
	dst = append(dst, r.value...)
	dst = binary.AppendUvarint(dst, uint64(r.byteLen))
	dst = binary.AppendUvarint(dst, uint64(len(r.children)))
	for _, c := range r.children {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

// decodeNodePayload decodes a node record payload. The stored structural
// hash is verified against the decoded content, so a block whose bytes
// were corrupted in a way that still parses is caught here.
func decodeNodePayload(payload []byte) (nodeRec, error) {
	var r nodeRec
	if len(payload) < 8 {
		return r, corruptf("node record of %d bytes", len(payload))
	}
	r.hash = binary.LittleEndian.Uint64(payload)
	off := 8
	n, off, err := uvarintLen(payload, off, 1)
	if err != nil {
		return r, err
	}
	b, off, err := getBytes(payload, off, n)
	if err != nil {
		return r, err
	}
	r.tag = string(b)
	if n, off, err = uvarintLen(payload, off, 1); err != nil {
		return r, err
	}
	if b, off, err = getBytes(payload, off, n); err != nil {
		return r, err
	}
	r.value = string(b)
	v, off, err := uvarint(payload, off)
	if err != nil {
		return r, err
	}
	r.byteLen = int(v)
	nc, off, err := uvarintLen(payload, off, 1)
	if err != nil {
		return r, err
	}
	r.children = make([]int64, nc)
	for i := range r.children {
		if v, off, err = uvarint(payload, off); err != nil {
			return r, err
		}
		r.children[i] = int64(v)
	}
	if h := nodeHash(r.tag, r.value, r.children); h != r.hash {
		return r, corruptf("node hash mismatch (stored %x, content %x)", r.hash, h)
	}
	return r, nil
}

// nodeHash is the structural subtree hash stored in every node record:
// FNV-1a over the tag, the direct text value and the child record offsets.
// Child offsets are themselves deduplicated bottom-up, so equal hashes at
// equal child refs mean structurally identical subtrees. The exact-match
// dedup map uses the full structural key (structKey); the hash doubles as
// a content checksum at decode time.
func nodeHash(tag, value string, children []int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tag))   //nolint:errcheck
	h.Write([]byte{0})     //nolint:errcheck
	h.Write([]byte(value)) //nolint:errcheck
	h.Write([]byte{0})     //nolint:errcheck
	var buf [binary.MaxVarintLen64]byte
	for _, c := range children {
		n := binary.PutUvarint(buf[:], uint64(c))
		h.Write(buf[:n]) //nolint:errcheck
	}
	return h.Sum64()
}

// structKey is the exact structural identity of a subtree: the material
// nodeHash digests, undigested. The dedup table maps it to the offset of
// the canonical record, so structure sharing never relies on a hash not
// colliding.
func structKey(tag, value string, children []int64) string {
	var b strings.Builder
	b.Grow(len(tag) + len(value) + 2 + 10*len(children))
	b.WriteString(tag)
	b.WriteByte(0)
	b.WriteString(value)
	b.WriteByte(0)
	var buf [binary.MaxVarintLen64]byte
	for _, c := range children {
		n := binary.PutUvarint(buf[:], uint64(c))
		b.Write(buf[:n])
	}
	return b.String()
}

// --- index records ---
//
// An index record serializes one document's path index (as
// pathindex.Rows) and inverted index (as invindex posting lists). Dewey
// IDs are stored RELATIVE to the document root (id[1:]): two documents
// with identical content then produce byte-identical index records, and
// the writer shares one record between them (keyed by the shared root
// node offset). The document ID is prepended again at decode time.

func appendRelID(dst []byte, id dewey.ID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(id)-1))
	for _, c := range id[1:] {
		dst = binary.AppendUvarint(dst, uint64(c))
	}
	return dst
}

func decodeRelID(payload []byte, off int, docID int32) (dewey.ID, int, error) {
	depth, off, err := uvarintLen(payload, off, 1)
	if err != nil {
		return nil, 0, err
	}
	id := make(dewey.ID, depth+1)
	id[0] = docID
	for i := 1; i <= depth; i++ {
		v, o, err := uvarint(payload, off)
		if err != nil {
			return nil, 0, err
		}
		id[i], off = int32(v), o
	}
	return id, off, nil
}

// encodeIndexPayload serializes both indices of one document.
func encodeIndexPayload(pix *pathindex.Index, iix *invindex.Index) []byte {
	rows := pix.Rows()
	lists := iix.Lists()
	dst := binary.AppendUvarint(nil, uint64(iix.Elements()))
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	for _, r := range rows {
		dst = binary.AppendUvarint(dst, uint64(len(r.Path)))
		dst = append(dst, r.Path...)
		if r.HasValue {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.AppendUvarint(dst, uint64(len(r.Value)))
		dst = append(dst, r.Value...)
		dst = binary.AppendUvarint(dst, uint64(len(r.Postings)))
		for _, p := range r.Postings {
			dst = appendRelID(dst, p.ID)
			dst = binary.AppendUvarint(dst, uint64(p.ByteLen))
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(lists)))
	for _, pl := range lists {
		dst = binary.AppendUvarint(dst, uint64(len(pl.Keyword)))
		dst = append(dst, pl.Keyword...)
		dst = binary.AppendUvarint(dst, uint64(len(pl.Postings)))
		for _, p := range pl.Postings {
			dst = appendRelID(dst, p.ID)
			dst = binary.AppendUvarint(dst, uint64(p.TF))
			dst = binary.AppendUvarint(dst, uint64(len(p.Positions)))
			for _, pos := range p.Positions {
				dst = binary.AppendUvarint(dst, uint64(pos))
			}
		}
	}
	return dst
}

// decodeIndexPayload rebuilds both indices for the document with the
// given ID. Posting values and row metadata reconstruct exactly what
// pathindex.Build/invindex.Build produced for the document.
func decodeIndexPayload(payload []byte, docID int32) (*pathindex.Index, *invindex.Index, error) {
	elements, off, err := uvarintLen(payload, 0, 1)
	if err != nil {
		return nil, nil, err
	}
	nrows, off, err := uvarintLen(payload, off, 1)
	if err != nil {
		return nil, nil, err
	}
	rows := make([]pathindex.Row, nrows)
	for i := range rows {
		r := &rows[i]
		n, o, err := uvarintLen(payload, off, 1)
		if err != nil {
			return nil, nil, err
		}
		b, o, err := getBytes(payload, o, n)
		if err != nil {
			return nil, nil, err
		}
		r.Path = string(b)
		if b, o, err = getBytes(payload, o, 1); err != nil {
			return nil, nil, err
		}
		r.HasValue = b[0] != 0
		if n, o, err = uvarintLen(payload, o, 1); err != nil {
			return nil, nil, err
		}
		if b, o, err = getBytes(payload, o, n); err != nil {
			return nil, nil, err
		}
		r.Value = string(b)
		np, o, err := uvarintLen(payload, o, 2)
		if err != nil {
			return nil, nil, err
		}
		r.Postings = make([]pathindex.Posting, np)
		for j := range r.Postings {
			p := &r.Postings[j]
			if p.ID, o, err = decodeRelID(payload, o, docID); err != nil {
				return nil, nil, err
			}
			v, o2, err := uvarint(payload, o)
			if err != nil {
				return nil, nil, err
			}
			p.ByteLen, o = int(v), o2
			p.Value, p.HasValue = r.Value, r.HasValue
		}
		off = o
	}
	nlists, off, err := uvarintLen(payload, off, 1)
	if err != nil {
		return nil, nil, err
	}
	lists := make([]*invindex.PostingList, nlists)
	for i := range lists {
		n, o, err := uvarintLen(payload, off, 1)
		if err != nil {
			return nil, nil, err
		}
		b, o, err := getBytes(payload, o, n)
		if err != nil {
			return nil, nil, err
		}
		pl := &invindex.PostingList{Keyword: string(b)}
		np, o, err := uvarintLen(payload, o, 2)
		if err != nil {
			return nil, nil, err
		}
		pl.Postings = make([]invindex.Posting, np)
		for j := range pl.Postings {
			p := &pl.Postings[j]
			if p.ID, o, err = decodeRelID(payload, o, docID); err != nil {
				return nil, nil, err
			}
			v, o2, err := uvarint(payload, o)
			if err != nil {
				return nil, nil, err
			}
			p.TF, o = int(v), o2
			npos, o2, err := uvarintLen(payload, o, 1)
			if err != nil {
				return nil, nil, err
			}
			p.Positions, o = make([]int32, npos), o2
			for k := range p.Positions {
				if v, o, err = uvarint(payload, o); err != nil {
					return nil, nil, err
				}
				p.Positions[k] = int32(v)
			}
		}
		lists[i] = pl
		off = o
	}
	return pathindex.FromRows(rows), invindex.FromLists(lists, elements), nil
}

// --- manifest ---

// manifestRec is one manifest operation. DataLen is the committed data-log
// length at the time the record was written: the loader trusts exactly
// that prefix, which is what makes torn data-log appends invisible.
type manifestRec struct {
	Op      string `json:"op"` // "add", "replace", "delete"
	Name    string `json:"name"`
	DocID   int32  `json:"id"`
	Root    int64  `json:"root,omitempty"`  // data-log offset of the root node record
	Index   int64  `json:"index,omitempty"` // data-log offset of the index record
	Bytes   int    `json:"bytes,omitempty"` // serialized byte length of the document
	Nodes   int    `json:"nodes,omitempty"` // expanded (pre-dedup) element count
	DataLen int64  `json:"data"`
}

// frameManifestRec wraps a JSON-encoded manifest record in its
// [length][crc32][payload] frame.
func frameManifestRec(payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

// manifestHeaderLine renders the manifest's first line.
func manifestHeaderLine(shards int, dataName string) string {
	return fmt.Sprintf("%s shards=%d data=%s\n", manifestMagic, shards, dataName)
}

// parseManifestHeader parses the header line, returning the shard count,
// the data file name, and the offset of the first record frame.
func parseManifestHeader(data []byte) (shards int, dataName string, off int, err error) {
	nl := -1
	for i, b := range data {
		if b == '\n' {
			nl = i
			break
		}
	}
	if nl < 0 || !strings.HasPrefix(string(data[:nl]), manifestMagic) {
		return 0, "", 0, corruptf("bad manifest header")
	}
	for _, field := range strings.Fields(string(data[:nl]))[1:] {
		if v, ok := strings.CutPrefix(field, "shards="); ok {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return 0, "", 0, corruptf("bad shard count %q", v)
			}
			shards = n
		}
		if v, ok := strings.CutPrefix(field, "data="); ok {
			dataName = v
		}
	}
	if shards == 0 || dataName == "" || strings.ContainsAny(dataName, "/\\") {
		return 0, "", 0, corruptf("manifest header missing shards= or data=")
	}
	return shards, dataName, nl + 1, nil
}
