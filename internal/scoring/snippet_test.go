package scoring

import (
	"strings"
	"testing"
	"unicode/utf8"

	"vxml/internal/xmltree"
)

func mkResult(texts ...string) *xmltree.Node {
	root := xmltree.NewElement("r")
	for _, t := range texts {
		root.AppendLeaf("p", t)
	}
	return root
}

func TestSnippetFindsFirstHit(t *testing.T) {
	res := mkResult("nothing here", "all about XML views", "also xml")
	got := Snippet(res, []string{"xml"}, 160)
	if got != "all about XML views" {
		t.Errorf("Snippet = %q", got)
	}
}

func TestSnippetWholeTokenOnly(t *testing.T) {
	res := mkResult("the xmlification of things", "pure xml here")
	got := Snippet(res, []string{"xml"}, 160)
	if got != "pure xml here" {
		t.Errorf("Snippet matched a partial token: %q", got)
	}
}

func TestSnippetClipsLongText(t *testing.T) {
	long := strings.Repeat("pad ", 100) + "needle" + strings.Repeat(" tail", 100)
	res := mkResult(long)
	got := Snippet(res, []string{"needle"}, 60)
	if !strings.Contains(got, "needle") {
		t.Fatalf("hit missing from %q", got)
	}
	if len(got) > 70+6 { // width + ellipses
		t.Errorf("snippet too long: %d bytes", len(got))
	}
	if !strings.HasPrefix(got, "…") || !strings.HasSuffix(got, "…") {
		t.Errorf("expected ellipses on both sides: %q", got)
	}
}

func TestSnippetNoHit(t *testing.T) {
	res := mkResult("nothing relevant")
	if got := Snippet(res, []string{"absent"}, 160); got != "" {
		t.Errorf("Snippet = %q, want empty", got)
	}
}

func TestSnippetStartOfText(t *testing.T) {
	res := mkResult("needle at the very start of a long long long text value here")
	got := Snippet(res, []string{"needle"}, 30)
	if !strings.HasPrefix(got, "needle") {
		t.Errorf("Snippet = %q", got)
	}
	if !strings.HasSuffix(got, "…") {
		t.Errorf("expected trailing ellipsis: %q", got)
	}
}

// TestSnippetEmptyKeyword: a whitespace-only client keyword normalizes to
// "", which must match nothing rather than loop forever in indexToken
// (reachable remotely via the HTTP server's disjunctive search).
func TestSnippetEmptyKeyword(t *testing.T) {
	res := mkResult("alphanumeric start so afterOK is false at offset zero")
	if got := Snippet(res, []string{"", "start"}, 160); !strings.Contains(got, "start") {
		t.Errorf("Snippet = %q, want the non-empty keyword's context", got)
	}
	if got := Snippet(res, []string{""}, 160); got != "" {
		t.Errorf("Snippet with only an empty keyword = %q, want empty", got)
	}
	if got := indexToken("text", ""); got != -1 {
		t.Errorf("indexToken(_, \"\") = %d, want -1", got)
	}
}

func TestSnippetDefaultWidth(t *testing.T) {
	res := mkResult("short hit")
	if got := Snippet(res, []string{"hit"}, 0); got != "short hit" {
		t.Errorf("Snippet = %q", got)
	}
}

func TestIndexToken(t *testing.T) {
	cases := []struct {
		text, k string
		want    int
	}{
		{"xml views", "xml", 0},
		{"the xml", "xml", 4},
		{"xmlish xml", "xml", 7},
		{"prexml postxml", "xml", -1},
		{"a-xml-b", "xml", 2},
		{"", "xml", -1},
		// A valid occurrence overlapping a rejected one must still be found.
		{"aa-a-a", "a-a", 3},
		{"xe-come-commerce text", "e-com", -1},
		{"xe-e-e", "e-e", 3},
	}
	for _, c := range cases {
		if got := indexToken(c.text, c.k); got != c.want {
			t.Errorf("indexToken(%q,%q) = %d, want %d", c.text, c.k, got, c.want)
		}
	}
}

// TestSnippetRuneBoundaries: clipping at arbitrary byte offsets must not
// split a multi-byte rune — the result would be invalid UTF-8, surfacing
// as U+FFFD once it passes through a JSON encoder.
func TestSnippetRuneBoundaries(t *testing.T) {
	// 2-byte runes on every side of the hit, width chosen so both clip
	// edges land mid-rune without snapping.
	long := strings.Repeat("é", 101) + " needle " + strings.Repeat("ü", 101)
	res := mkResult(long)
	for width := 20; width <= 70; width++ {
		got := Snippet(res, []string{"needle"}, width)
		if !utf8.ValidString(got) {
			t.Fatalf("width %d: snippet is invalid UTF-8: %q", width, got)
		}
		if !strings.Contains(got, "needle") {
			t.Fatalf("width %d: hit missing from %q", width, got)
		}
	}
	// 4-byte runes (emoji) too.
	long = strings.Repeat("🜚", 40) + " needle " + strings.Repeat("🜚", 40)
	res = mkResult(long)
	for width := 20; width <= 40; width++ {
		got := Snippet(res, []string{"needle"}, width)
		if !utf8.ValidString(got) {
			t.Fatalf("emoji width %d: snippet is invalid UTF-8: %q", width, got)
		}
	}
}

// TestSnippetLengthChangingFold: İ (U+0130, 2 bytes) lowercases to i
// (1 byte), so a hit offset computed on the lowercased copy is shifted
// relative to the original value. The window must be cut at the hit's
// position in the ORIGINAL string, or a narrow snippet misses the keyword
// entirely.
func TestSnippetLengthChangingFold(t *testing.T) {
	// 60 İ runes: lowered copy is 60 bytes shorter than the original, so
	// an unmapped offset points 60 bytes before the real hit.
	val := strings.Repeat("İ", 60) + " needle comes after the dotted capitals " + strings.Repeat("pad ", 30)
	res := mkResult(val)
	got := Snippet(res, []string{"needle"}, 30)
	if !strings.Contains(got, "needle") {
		t.Fatalf("hit missing from %q: fold misalignment", got)
	}
	if !utf8.ValidString(got) {
		t.Fatalf("snippet is invalid UTF-8: %q", got)
	}
	// Kelvin sign K (U+212A, 3 bytes) folds to k (1 byte): same property.
	val = strings.Repeat("K", 40) + " needle " + strings.Repeat("pad ", 30)
	res = mkResult(val)
	got = Snippet(res, []string{"needle"}, 24)
	if !strings.Contains(got, "needle") || !utf8.ValidString(got) {
		t.Fatalf("Kelvin fold: snippet = %q", got)
	}
}

// TestFoldOffsets pins the offset mapping itself.
func TestFoldOffsets(t *testing.T) {
	lower, offs := foldOffsets("AbİCd")
	if lower != "abicd" {
		t.Fatalf("folded = %q", lower)
	}
	// 'c' is at folded offset 3; in the original, 'C' is at byte 4
	// (A=0, b=1, İ=2..3, C=4).
	if got := offs(3); got != 4 {
		t.Errorf("offs(3) = %d, want 4", got)
	}
	if got := offs(0); got != 0 {
		t.Errorf("offs(0) = %d, want 0", got)
	}
	// Identity fast path for pure ASCII and for same-length folds.
	lower, offs = foldOffsets("Hello Ünïcode")
	if lower != "hello ünïcode" {
		t.Fatalf("folded = %q", lower)
	}
	if got := offs(7); got != 7 {
		t.Errorf("aligned offs(7) = %d, want 7", got)
	}
}
