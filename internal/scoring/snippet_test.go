package scoring

import (
	"strings"
	"testing"

	"vxml/internal/xmltree"
)

func mkResult(texts ...string) *xmltree.Node {
	root := xmltree.NewElement("r")
	for _, t := range texts {
		root.AppendLeaf("p", t)
	}
	return root
}

func TestSnippetFindsFirstHit(t *testing.T) {
	res := mkResult("nothing here", "all about XML views", "also xml")
	got := Snippet(res, []string{"xml"}, 160)
	if got != "all about XML views" {
		t.Errorf("Snippet = %q", got)
	}
}

func TestSnippetWholeTokenOnly(t *testing.T) {
	res := mkResult("the xmlification of things", "pure xml here")
	got := Snippet(res, []string{"xml"}, 160)
	if got != "pure xml here" {
		t.Errorf("Snippet matched a partial token: %q", got)
	}
}

func TestSnippetClipsLongText(t *testing.T) {
	long := strings.Repeat("pad ", 100) + "needle" + strings.Repeat(" tail", 100)
	res := mkResult(long)
	got := Snippet(res, []string{"needle"}, 60)
	if !strings.Contains(got, "needle") {
		t.Fatalf("hit missing from %q", got)
	}
	if len(got) > 70+6 { // width + ellipses
		t.Errorf("snippet too long: %d bytes", len(got))
	}
	if !strings.HasPrefix(got, "…") || !strings.HasSuffix(got, "…") {
		t.Errorf("expected ellipses on both sides: %q", got)
	}
}

func TestSnippetNoHit(t *testing.T) {
	res := mkResult("nothing relevant")
	if got := Snippet(res, []string{"absent"}, 160); got != "" {
		t.Errorf("Snippet = %q, want empty", got)
	}
}

func TestSnippetStartOfText(t *testing.T) {
	res := mkResult("needle at the very start of a long long long text value here")
	got := Snippet(res, []string{"needle"}, 30)
	if !strings.HasPrefix(got, "needle") {
		t.Errorf("Snippet = %q", got)
	}
	if !strings.HasSuffix(got, "…") {
		t.Errorf("expected trailing ellipsis: %q", got)
	}
}

// TestSnippetEmptyKeyword: a whitespace-only client keyword normalizes to
// "", which must match nothing rather than loop forever in indexToken
// (reachable remotely via the HTTP server's disjunctive search).
func TestSnippetEmptyKeyword(t *testing.T) {
	res := mkResult("alphanumeric start so afterOK is false at offset zero")
	if got := Snippet(res, []string{"", "start"}, 160); !strings.Contains(got, "start") {
		t.Errorf("Snippet = %q, want the non-empty keyword's context", got)
	}
	if got := Snippet(res, []string{""}, 160); got != "" {
		t.Errorf("Snippet with only an empty keyword = %q, want empty", got)
	}
	if got := indexToken("text", ""); got != -1 {
		t.Errorf("indexToken(_, \"\") = %d, want -1", got)
	}
}

func TestSnippetDefaultWidth(t *testing.T) {
	res := mkResult("short hit")
	if got := Snippet(res, []string{"hit"}, 0); got != "short hit" {
		t.Errorf("Snippet = %q", got)
	}
}

func TestIndexToken(t *testing.T) {
	cases := []struct {
		text, k string
		want    int
	}{
		{"xml views", "xml", 0},
		{"the xml", "xml", 4},
		{"xmlish xml", "xml", 7},
		{"prexml postxml", "xml", -1},
		{"a-xml-b", "xml", 2},
		{"", "xml", -1},
		// A valid occurrence overlapping a rejected one must still be found.
		{"aa-a-a", "a-a", 3},
		{"xe-come-commerce text", "e-com", -1},
		{"xe-e-e", "e-e", 3},
	}
	for _, c := range cases {
		if got := indexToken(c.text, c.k); got != c.want {
			t.Errorf("indexToken(%q,%q) = %d, want %d", c.text, c.k, got, c.want)
		}
	}
}
