// Microbenchmark for top-k materialization — the only base-data access of
// the Efficient pipeline. Its cost is dominated by deep-copying the fetched
// subtree, so Clone's allocation behavior is what this measures.
package scoring

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

// docFetcher serves subtree fetches straight from one parsed document.
type docFetcher struct{ doc *xmltree.Document }

func (f docFetcher) Subtree(id dewey.ID) *xmltree.Node { return f.doc.FindByID(id) }

func BenchmarkMaterialize(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("<books>")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&sb,
			"<article><fm><tl>study %d</tl><au>author%d</au></fm><bdy>fuzzy neural control systems thomas moore parallel data</bdy></article>",
			i, i%8)
	}
	sb.WriteString("</books>")
	doc, err := xmltree.ParseString(sb.String(), "books.xml", 1)
	if err != nil {
		b.Fatal(err)
	}
	// A pruned winner referencing the whole document subtree via Meta, as
	// PDT generation produces for a 'c' node.
	winner := &xmltree.Node{
		Tag:  doc.Root.Tag,
		ID:   doc.Root.ID,
		Meta: &xmltree.NodeMeta{SrcID: doc.Root.ID, SrcLen: doc.Root.ByteLen},
	}
	f := docFetcher{doc: doc}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := Materialize(winner, f); n == nil {
			b.Fatal("nil materialization")
		}
	}
}
