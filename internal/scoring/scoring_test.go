package scoring

import (
	"math"
	"testing"

	"vxml/internal/dewey"
	"vxml/internal/store"
	"vxml/internal/xmltree"
)

// buildResult constructs a view result: a constructed wrapper referencing
// two pruned PDT elements with Meta payloads.
func buildPDTResult(tfs1, tfs2 []int, len1, len2 int) *xmltree.Node {
	wrapper := xmltree.NewElement("res")
	a := &xmltree.Node{Tag: "title", ID: dewey.MustParse("1.1.1"),
		Meta: &xmltree.NodeMeta{SrcID: dewey.MustParse("1.1.1"), SrcLen: len1, TFs: tfs1}}
	b := &xmltree.Node{Tag: "content", ID: dewey.MustParse("2.1.2"),
		Meta: &xmltree.NodeMeta{SrcID: dewey.MustParse("2.1.2"), SrcLen: len2, TFs: tfs2}}
	wrapper.Children = append(wrapper.Children, a, b)
	return wrapper
}

func TestCollectFromPDT(t *testing.T) {
	res := buildPDTResult([]int{2, 0}, []int{1, 3}, 100, 50)
	st := Collect(res, []string{"xml", "search"}, FromPDT)
	if st.TFs[0] != 3 || st.TFs[1] != 3 {
		t.Errorf("TFs = %v", st.TFs)
	}
	if st.ByteLen != 150 {
		t.Errorf("ByteLen = %d", st.ByteLen)
	}
}

func TestCollectSkipsNestedMeta(t *testing.T) {
	// A Meta node's payload covers its whole subtree: nested Meta children
	// must not double count.
	outer := &xmltree.Node{Tag: "book", ID: dewey.MustParse("1.1"),
		Meta: &xmltree.NodeMeta{SrcID: dewey.MustParse("1.1"), SrcLen: 200, TFs: []int{5}}}
	inner := &xmltree.Node{Tag: "title", ID: dewey.MustParse("1.1.1"),
		Meta: &xmltree.NodeMeta{SrcID: dewey.MustParse("1.1.1"), SrcLen: 50, TFs: []int{2}}}
	outer.Children = append(outer.Children, inner)
	st := Collect(outer, []string{"xml"}, FromPDT)
	if st.TFs[0] != 5 || st.ByteLen != 200 {
		t.Errorf("nested Meta double counted: %+v", st)
	}
}

func TestCollectFromBase(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a>xml search xml</a></r>`, "r.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	wrapper := xmltree.NewElement("res")
	wrapper.Children = append(wrapper.Children, doc.Root.Children[0])
	st := Collect(wrapper, []string{"xml", "search"}, FromBase)
	if st.TFs[0] != 2 || st.TFs[1] != 1 {
		t.Errorf("TFs = %v", st.TFs)
	}
	if st.ByteLen != doc.Root.Children[0].ByteLen {
		t.Errorf("ByteLen = %d", st.ByteLen)
	}
}

func TestRankConjunctiveFiltersAndOrders(t *testing.T) {
	results := []*xmltree.Node{
		buildPDTResult([]int{1, 1}, []int{0, 0}, 100, 100), // both keywords
		buildPDTResult([]int{4, 0}, []int{0, 0}, 100, 100), // missing kw2
		buildPDTResult([]int{5, 5}, []int{0, 0}, 100, 100), // both, higher tf
	}
	r := Rank(results, []string{"a", "b"}, true, 0, FromPDT)
	if r.ViewSize != 3 || r.Matched != 2 {
		t.Fatalf("ViewSize=%d Matched=%d", r.ViewSize, r.Matched)
	}
	if len(r.Results) != 2 {
		t.Fatalf("results = %d", len(r.Results))
	}
	if r.Results[0].Index != 2 || r.Results[1].Index != 0 {
		t.Errorf("order = %d, %d", r.Results[0].Index, r.Results[1].Index)
	}
	if r.Results[0].Score <= r.Results[1].Score {
		t.Errorf("scores not descending: %f, %f", r.Results[0].Score, r.Results[1].Score)
	}
}

func TestRankDisjunctive(t *testing.T) {
	results := []*xmltree.Node{
		buildPDTResult([]int{1, 0}, []int{0, 0}, 10, 10),
		buildPDTResult([]int{0, 0}, []int{0, 0}, 10, 10),
	}
	r := Rank(results, []string{"a", "b"}, false, 0, FromPDT)
	if len(r.Results) != 1 {
		t.Errorf("disjunctive results = %d", len(r.Results))
	}
}

func TestRankIDF(t *testing.T) {
	// keyword "a": in 2 of 4 results -> idf 2; "b": in 1 of 4 -> idf 4.
	results := []*xmltree.Node{
		buildPDTResult([]int{1, 1}, []int{0, 0}, 10, 10),
		buildPDTResult([]int{1, 0}, []int{0, 0}, 10, 10),
		buildPDTResult([]int{0, 0}, []int{0, 0}, 10, 10),
		buildPDTResult([]int{0, 0}, []int{0, 0}, 10, 10),
	}
	r := Rank(results, []string{"a", "b"}, false, 0, FromPDT)
	if r.IDFs[0] != 2 || r.IDFs[1] != 4 {
		t.Errorf("IDFs = %v", r.IDFs)
	}
	// score of result 0 = (1*2 + 1*4) / log2(2+20)
	want := 6.0 / math.Log2(22)
	if math.Abs(r.Results[0].Score-want) > 1e-12 {
		t.Errorf("score = %f, want %f", r.Results[0].Score, want)
	}
}

func TestRankMissingKeywordIDFZero(t *testing.T) {
	results := []*xmltree.Node{buildPDTResult([]int{1, 0}, []int{0, 0}, 10, 10)}
	r := Rank(results, []string{"a", "zz"}, false, 0, FromPDT)
	if r.IDFs[1] != 0 {
		t.Errorf("idf of absent keyword = %f", r.IDFs[1])
	}
	if len(r.Results) != 1 || math.IsNaN(r.Results[0].Score) || math.IsInf(r.Results[0].Score, 0) {
		t.Errorf("score not finite: %+v", r.Results)
	}
}

func TestRankTopK(t *testing.T) {
	var results []*xmltree.Node
	for i := 1; i <= 10; i++ {
		results = append(results, buildPDTResult([]int{i}, []int{0}, 10, 10))
	}
	r := Rank(results, []string{"a"}, true, 3, FromPDT)
	if len(r.Results) != 3 {
		t.Fatalf("top-3 = %d", len(r.Results))
	}
	if r.Results[0].Index != 9 {
		t.Errorf("best = %d", r.Results[0].Index)
	}
}

func TestRankTieBreakByViewOrder(t *testing.T) {
	results := []*xmltree.Node{
		buildPDTResult([]int{1}, []int{0}, 10, 10),
		buildPDTResult([]int{1}, []int{0}, 10, 10),
	}
	r := Rank(results, []string{"a"}, true, 0, FromPDT)
	if r.Results[0].Index != 0 || r.Results[1].Index != 1 {
		t.Errorf("tie order = %d, %d", r.Results[0].Index, r.Results[1].Index)
	}
}

func TestRankEmptyKeywords(t *testing.T) {
	results := []*xmltree.Node{buildPDTResult(nil, nil, 10, 10)}
	r := Rank(results, nil, true, 0, FromPDT)
	if len(r.Results) != 1 {
		t.Errorf("no-keyword rank = %d results", len(r.Results))
	}
}

func TestMaterialize(t *testing.T) {
	st := store.New()
	if _, err := st.AddXML("books.xml",
		`<books><book><title>XML Web Services</title><year>2004</year></book></books>`); err != nil {
		t.Fatal(err)
	}
	// a pruned result: wrapper with a Meta reference to the book
	wrapper := xmltree.NewElement("res")
	pruned := &xmltree.Node{Tag: "book", ID: dewey.MustParse("1.1"),
		Meta: &xmltree.NodeMeta{SrcID: dewey.MustParse("1.1"), SrcLen: 10, TFs: []int{1}}}
	wrapper.Children = append(wrapper.Children, pruned)
	full := Materialize(wrapper, st)
	out := full.XMLString("")
	if out != "<res><book><title>XML Web Services</title><year>2004</year></book></res>" {
		t.Errorf("materialized = %s", out)
	}
	if st.SubtreeFetches() != 1 {
		t.Errorf("fetches = %d", st.SubtreeFetches())
	}
	// the materialized tree is independent of the store's copy
	full.Children[0].Children[0].Value = "mutated"
	if st.Doc("books.xml").Root.Children[0].Children[0].Value == "mutated" {
		t.Error("Materialize must deep-copy")
	}
}
