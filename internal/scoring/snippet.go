package scoring

import (
	"strings"

	"vxml/internal/xmltree"
)

// Snippet extracts a short keyword-in-context excerpt from a materialized
// result: the first text value containing any query keyword, clipped to
// about width bytes around the earliest hit of any keyword. Picking the
// earliest occurrence (rather than the first keyword in list order) makes
// the snippet invariant under keyword permutation, so the query-result
// cache — which shares one entry across keyword orderings — returns
// exactly what the uncached path would. Returns "" when no keyword occurs
// in text content.
func Snippet(result *xmltree.Node, keywords []string, width int) string {
	if width <= 0 {
		width = 160
	}
	var found string
	var hitPos int
	result.Walk(func(n *xmltree.Node) {
		if found != "" || n.Value == "" {
			return
		}
		lower := strings.ToLower(n.Value)
		best := -1
		for _, k := range keywords {
			if pos := indexToken(lower, k); pos >= 0 && (best < 0 || pos < best) {
				best = pos
			}
		}
		if best >= 0 {
			found = n.Value
			hitPos = best
		}
	})
	if found == "" {
		return ""
	}
	start := hitPos - width/2
	if start < 0 {
		start = 0
	}
	end := start + width
	if end > len(found) {
		end = len(found)
		if start > end-width && end-width >= 0 {
			start = end - width
		}
		if start < 0 {
			start = 0
		}
	}
	out := found[start:end]
	if start > 0 {
		out = "…" + out
	}
	if end < len(found) {
		out += "…"
	}
	return out
}

// indexToken finds keyword k as a whole token inside lowercase text,
// returning its byte offset or -1. An empty keyword (whitespace-only client
// input normalizes to "") matches nothing — without this guard the scan
// below would never advance.
func indexToken(lower, k string) int {
	if k == "" {
		return -1
	}
	from := 0
	for {
		i := strings.Index(lower[from:], k)
		if i < 0 {
			return -1
		}
		pos := from + i
		beforeOK := pos == 0 || !isAlnum(lower[pos-1])
		afterOK := pos+len(k) >= len(lower) || !isAlnum(lower[pos+len(k)])
		if beforeOK && afterOK {
			return pos
		}
		// Advance by one byte, not len(k): a valid whole-token occurrence
		// can overlap a rejected one (e.g. "a-a" in "aa-a-a" at offset 3,
		// overlapping the rejected occurrence at offset 1).
		from = pos + 1
		if from >= len(lower) {
			return -1
		}
	}
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
