package scoring

import (
	"strings"

	"vxml/internal/xmltree"
)

// Snippet extracts a short keyword-in-context excerpt from a materialized
// result: the first text value containing any query keyword, clipped to
// about width bytes around the first hit. Returns "" when no keyword
// occurs in text content.
func Snippet(result *xmltree.Node, keywords []string, width int) string {
	if width <= 0 {
		width = 160
	}
	var found string
	var hitPos int
	result.Walk(func(n *xmltree.Node) {
		if found != "" || n.Value == "" {
			return
		}
		lower := strings.ToLower(n.Value)
		for _, k := range keywords {
			pos := indexToken(lower, k)
			if pos >= 0 {
				found = n.Value
				hitPos = pos
				return
			}
		}
	})
	if found == "" {
		return ""
	}
	start := hitPos - width/2
	if start < 0 {
		start = 0
	}
	end := start + width
	if end > len(found) {
		end = len(found)
		if start > end-width && end-width >= 0 {
			start = end - width
		}
		if start < 0 {
			start = 0
		}
	}
	out := found[start:end]
	if start > 0 {
		out = "…" + out
	}
	if end < len(found) {
		out += "…"
	}
	return out
}

// indexToken finds keyword k as a whole token inside lowercase text,
// returning its byte offset or -1.
func indexToken(lower, k string) int {
	from := 0
	for {
		i := strings.Index(lower[from:], k)
		if i < 0 {
			return -1
		}
		pos := from + i
		beforeOK := pos == 0 || !isAlnum(lower[pos-1])
		afterOK := pos+len(k) >= len(lower) || !isAlnum(lower[pos+len(k)])
		if beforeOK && afterOK {
			return pos
		}
		from = pos + len(k)
		if from >= len(lower) {
			return -1
		}
	}
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
