package scoring

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"vxml/internal/xmltree"
)

// Snippet extracts a short keyword-in-context excerpt from a materialized
// result: the first text value containing any query keyword, clipped to
// about width bytes around the earliest hit of any keyword. Picking the
// earliest occurrence (rather than the first keyword in list order) makes
// the snippet invariant under keyword permutation, so the query-result
// cache — which shares one entry across keyword orderings — returns
// exactly what the uncached path would. The clip window is snapped to rune
// boundaries, so the excerpt is always valid UTF-8 even when the raw byte
// window would split a multi-byte rune. Returns "" when no keyword occurs
// in text content.
func Snippet(result *xmltree.Node, keywords []string, width int) string {
	if width <= 0 {
		width = 160
	}
	var found string
	var hitPos int
	result.Walk(func(n *xmltree.Node) {
		if found != "" || n.Value == "" {
			return
		}
		// Keyword matching runs over the lowercased copy, but the window is
		// cut from the original value — and lowercasing can change byte
		// lengths (İ U+0130 → i, K U+212A → k), so a match offset in the
		// copy is mapped back to the original through offs before use.
		lower, offs := foldOffsets(n.Value)
		best := -1
		for _, k := range keywords {
			if pos := indexToken(lower, k); pos >= 0 && (best < 0 || pos < best) {
				best = pos
			}
		}
		if best >= 0 {
			found = n.Value
			hitPos = offs(best)
		}
	})
	if found == "" {
		return ""
	}
	start := hitPos - width/2
	if start < 0 {
		start = 0
	}
	end := start + width
	if end > len(found) {
		end = len(found)
		if start > end-width && end-width >= 0 {
			start = end - width
		}
		if start < 0 {
			start = 0
		}
	}
	// Snap both bounds outward to rune boundaries: an arbitrary byte offset
	// can land inside a multi-byte rune, and slicing there would emit
	// invalid UTF-8 (U+FFFD once it reaches a JSON encoder).
	for start > 0 && !utf8.RuneStart(found[start]) {
		start--
	}
	for end < len(found) && !utf8.RuneStart(found[end]) {
		end++
	}
	out := found[start:end]
	if start > 0 {
		out = "…" + out
	}
	if end < len(found) {
		out += "…"
	}
	return out
}

// foldOffsets lowercases s rune-by-rune (the same simple case mapping
// strings.ToLower applies) and returns the folded string plus a function
// mapping a byte offset in the folded string back to the byte offset of
// the corresponding rune in s. For the common case where folding changes
// no byte lengths, the mapping is the identity and costs nothing extra.
func foldOffsets(s string) (string, func(int) int) {
	aligned := true
	for _, r := range s {
		if utf8.RuneLen(unicode.ToLower(r)) != utf8.RuneLen(r) {
			aligned = false
			break
		}
	}
	if aligned {
		// Every rune folds to the same byte length, so every folded rune
		// occupies exactly its original byte range.
		return strings.ToLower(s), func(p int) int { return p }
	}
	var b strings.Builder
	b.Grow(len(s))
	offs := make([]int, 0, len(s))
	for i, r := range s {
		start := b.Len()
		b.WriteRune(unicode.ToLower(r))
		for j := start; j < b.Len(); j++ {
			offs = append(offs, i)
		}
	}
	return b.String(), func(p int) int {
		if p < 0 || p >= len(offs) {
			return len(s)
		}
		return offs[p]
	}
}

// indexToken finds keyword k as a whole token inside lowercase text,
// returning its byte offset or -1. An empty keyword (whitespace-only client
// input normalizes to "") matches nothing — without this guard the scan
// below would never advance.
func indexToken(lower, k string) int {
	if k == "" {
		return -1
	}
	from := 0
	for {
		i := strings.Index(lower[from:], k)
		if i < 0 {
			return -1
		}
		pos := from + i
		beforeOK := pos == 0 || !isAlnum(lower[pos-1])
		afterOK := pos+len(k) >= len(lower) || !isAlnum(lower[pos+len(k)])
		if beforeOK && afterOK {
			return pos
		}
		// Advance by one byte, not len(k): a valid whole-token occurrence
		// can overlap a rejected one (e.g. "a-a" in "aa-a-a" at offset 3,
		// overlapping the rejected occurrence at offset 1).
		from = pos + 1
		if from >= len(lower) {
			return -1
		}
	}
}

func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
}
