// Package scoring implements the Scoring & Materialization Module (paper
// §2.2 and §4.2.2.2): it enforces conjunctive or disjunctive keyword
// semantics over view results, computes element-level TF-IDF scores, and
// materializes only the top-k winners from document storage.
//
// The same code scores both pipelines. For the Efficient pipeline the term
// frequencies and byte lengths come from the NodeMeta payloads that PDT
// generation attached to 'c' elements; for the Baseline pipeline they are
// computed from the materialized base subtrees referenced by the result.
// Theorem 4.1 guarantees — and the test suite verifies — that both modes
// produce identical scores and rank order.
package scoring

import (
	"math"
	"sort"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

// Mode selects where Collect finds scoring payloads.
type Mode int

// Collection modes.
const (
	// FromPDT reads NodeMeta payloads attached by PDT generation.
	FromPDT Mode = iota
	// FromBase computes statistics from materialized base subtrees
	// (elements that carry a Dewey ID).
	FromBase
)

// Stats aggregates the scoring inputs of one view result element: the
// per-keyword term frequencies and the total byte length of the base
// content it contains.
type Stats struct {
	TFs     []int
	ByteLen int
}

// Collect walks a view result tree and aggregates term frequencies and
// byte lengths from its scoring payloads. Constructed wrapper elements
// contribute nothing; each referenced base element contributes its whole
// subtree exactly once.
func Collect(result *xmltree.Node, keywords []string, mode Mode) Stats {
	st := Stats{TFs: make([]int, len(keywords))}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		switch {
		case mode == FromPDT && n.Meta != nil:
			for i := range keywords {
				if i < len(n.Meta.TFs) {
					st.TFs[i] += n.Meta.TFs[i]
				}
			}
			st.ByteLen += n.Meta.SrcLen
			return // Meta covers the whole base subtree
		case mode == FromBase && len(n.ID) > 0:
			tf := xmltree.SubtreeTF(n, keywords)
			for i := range keywords {
				st.TFs[i] += tf[i]
			}
			st.ByteLen += n.ByteLen
			return // the base subtree is counted wholesale
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(result)
	return st
}

// Scored is one ranked view result.
type Scored struct {
	Result *xmltree.Node
	Stats  Stats
	Score  float64
	Index  int // position of the result in the view output sequence
}

// Ranking is the output of Rank: the matching results ordered by
// descending score, plus the corpus statistics used.
type Ranking struct {
	Results []Scored
	IDFs    []float64
	// ViewSize is |V(D)|, the total number of view results (the TF-IDF
	// numerator of §2.2).
	ViewSize int
	// Matched counts the results that satisfied the keyword semantics.
	Matched int
}

// Rank scores the view results for the keyword query and returns the top k
// (k <= 0 means all matches), implementing Problem Ranked-KS. Results with
// equal scores keep view order (ties broken deterministically).
func Rank(results []*xmltree.Node, keywords []string, conjunctive bool, k int, mode Mode) *Ranking {
	r := &Ranking{ViewSize: len(results)}
	stats := make([]Stats, len(results))
	contains := make([]int, len(keywords)) // # results containing keyword i
	for i, res := range results {
		stats[i] = Collect(res, keywords, mode)
		for j := range keywords {
			if stats[i].TFs[j] > 0 {
				contains[j]++
			}
		}
	}
	// idf(k) = |V(D)| / |{e in V(D) : contains(e, k)}| (§2.2); keywords
	// absent from the whole view contribute nothing.
	r.IDFs = make([]float64, len(keywords))
	for j := range keywords {
		if contains[j] > 0 {
			r.IDFs[j] = float64(len(results)) / float64(contains[j])
		}
	}
	for i, res := range results {
		if !satisfies(stats[i].TFs, conjunctive) {
			continue
		}
		r.Matched++
		score := 0.0
		for j := range keywords {
			score += float64(stats[i].TFs[j]) * r.IDFs[j]
		}
		// Normalize by aggregate byte length (§4.2.2.2). The exact form is
		// immaterial as long as both pipelines share it; log damping is the
		// convention of [40].
		score /= math.Log2(2 + float64(stats[i].ByteLen))
		r.Results = append(r.Results, Scored{Result: res, Stats: stats[i], Score: score, Index: i})
	}
	sort.SliceStable(r.Results, func(a, b int) bool {
		if r.Results[a].Score != r.Results[b].Score {
			return r.Results[a].Score > r.Results[b].Score
		}
		return r.Results[a].Index < r.Results[b].Index
	})
	if k > 0 && len(r.Results) > k {
		r.Results = r.Results[:k]
	}
	return r
}

func satisfies(tfs []int, conjunctive bool) bool {
	if len(tfs) == 0 {
		return true
	}
	for _, tf := range tfs {
		if conjunctive && tf == 0 {
			return false
		}
		if !conjunctive && tf > 0 {
			return true
		}
	}
	return conjunctive
}

// Fetcher serves base subtree fetches during materialization. *store.Store
// implements it; callers that need an exact per-query fetch count wrap it
// (see CountingFetcher).
type Fetcher interface {
	Subtree(id dewey.ID) *xmltree.Node
}

// CountingFetcher counts the fetches of one materialization pass, so a
// search can report its own base-data accesses exactly even while other
// searches drive the store's shared counters concurrently.
type CountingFetcher struct {
	Fetcher
	Fetches int
}

// Subtree delegates and counts successful fetches.
func (c *CountingFetcher) Subtree(id dewey.ID) *xmltree.Node {
	n := c.Fetcher.Subtree(id)
	if n != nil {
		c.Fetches++
	}
	return n
}

// Materialize expands a (possibly pruned) view result into a complete tree:
// PDT elements are replaced by their full base subtrees fetched from
// document storage — the only base-data access of the Efficient pipeline,
// performed for top-k winners only.
func Materialize(result *xmltree.Node, st Fetcher) *xmltree.Node {
	if result.Meta != nil {
		if full := st.Subtree(result.Meta.SrcID); full != nil {
			return full.Clone()
		}
	}
	if len(result.ID) > 0 && result.Meta == nil {
		// Already a base subtree (Baseline pipeline): deep-copy it.
		if full := st.Subtree(result.ID); full != nil {
			return full.Clone()
		}
	}
	out := &xmltree.Node{Tag: result.Tag, Value: result.Value, ID: result.ID.Clone()}
	for _, c := range result.Children {
		out.AppendChild(Materialize(c, st))
	}
	return out
}
