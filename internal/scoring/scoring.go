// Package scoring implements the Scoring & Materialization Module (paper
// §2.2 and §4.2.2.2): it enforces conjunctive or disjunctive keyword
// semantics over view results, computes element-level TF-IDF scores, and
// materializes only the top-k winners from document storage.
//
// The same code scores both pipelines. For the Efficient pipeline the term
// frequencies and byte lengths come from the NodeMeta payloads that PDT
// generation attached to 'c' elements; for the Baseline pipeline they are
// computed from the materialized base subtrees referenced by the result.
// Theorem 4.1 guarantees — and the test suite verifies — that both modes
// produce identical scores and rank order.
package scoring

import (
	"math"
	"sort"
	"sync"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

// Mode selects where Collect finds scoring payloads.
type Mode int

// Collection modes.
const (
	// FromPDT reads NodeMeta payloads attached by PDT generation.
	FromPDT Mode = iota
	// FromBase computes statistics from materialized base subtrees
	// (elements that carry a Dewey ID).
	FromBase
)

// Stats aggregates the scoring inputs of one view result element: the
// per-keyword term frequencies and the total byte length of the base
// content it contains.
type Stats struct {
	TFs     []int
	ByteLen int
}

// Collect walks a view result tree and aggregates term frequencies and
// byte lengths from its scoring payloads. Constructed wrapper elements
// contribute nothing; each referenced base element contributes its whole
// subtree exactly once.
func Collect(result *xmltree.Node, keywords []string, mode Mode) Stats {
	st := Stats{TFs: make([]int, len(keywords))}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		switch {
		case mode == FromPDT && n.Meta != nil:
			for i := range keywords {
				if i < len(n.Meta.TFs) {
					st.TFs[i] += n.Meta.TFs[i]
				}
			}
			st.ByteLen += n.Meta.SrcLen
			return // Meta covers the whole base subtree
		case mode == FromBase && len(n.ID) > 0:
			tf := xmltree.SubtreeTF(n, keywords)
			for i := range keywords {
				st.TFs[i] += tf[i]
			}
			st.ByteLen += n.ByteLen
			return // the base subtree is counted wholesale
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(result)
	return st
}

// Scored is one ranked view result.
type Scored struct {
	Result *xmltree.Node
	Stats  Stats
	Score  float64
	Index  int // position of the result in the view output sequence
}

// Ranking is the output of Rank: the matching results ordered by
// descending score, plus the corpus statistics used.
type Ranking struct {
	Results []Scored
	IDFs    []float64
	// ViewSize is |V(D)|, the total number of view results (the TF-IDF
	// numerator of §2.2).
	ViewSize int
	// Matched counts the results that satisfied the keyword semantics.
	Matched int
}

// Rank scores the view results for the keyword query and returns the top k
// (k <= 0 means all matches), implementing Problem Ranked-KS. Results with
// equal scores keep view order (ties broken deterministically by view
// position).
func Rank(results []*xmltree.Node, keywords []string, conjunctive bool, k int, mode Mode) *Ranking {
	stats := make([]Stats, len(results))
	for i, res := range results {
		stats[i] = Collect(res, keywords, mode)
	}
	return RankWithStats(results, stats, keywords, conjunctive, k)
}

// IDFs computes the inverse document frequencies over precollected result
// stats: idf(k) = |V(D)| / |{e in V(D) : contains(e, k)}| (§2.2). Keywords
// absent from the whole view contribute nothing (idf 0).
func IDFs(stats []Stats, nKeywords int) []float64 {
	return IDFsFromCounts(len(stats), Contains(stats, nKeywords))
}

// Contains counts, for each keyword, the results whose subtree contains it
// (tf > 0) — the denominator statistic of IDFs. It is exposed separately so
// a distributed merge can sum per-partition counts before the one float
// division IDFsFromCounts performs.
func Contains(stats []Stats, nKeywords int) []int {
	contains := make([]int, nKeywords) // # results containing keyword i
	for i := range stats {
		for j := 0; j < nKeywords && j < len(stats[i].TFs); j++ {
			if stats[i].TFs[j] > 0 {
				contains[j]++
			}
		}
	}
	return contains
}

// IDFsFromCounts computes IDFs from a view size and per-keyword containment
// counts (see Contains). Both inputs may be integer sums over disjoint
// corpus partitions: summing exactly and then performing the single float64
// division here yields IDFs bit-identical to a one-partition computation,
// which is what keeps distributed scoring byte-identical to single-node.
func IDFsFromCounts(viewSize int, contains []int) []float64 {
	idfs := make([]float64, len(contains))
	for j := range idfs {
		if contains[j] > 0 {
			idfs[j] = float64(viewSize) / float64(contains[j])
		}
	}
	return idfs
}

// Score computes one result's TF-IDF score from its stats and the view's
// IDFs: sum of tf·idf, normalized by aggregate byte length (§4.2.2.2). The
// exact normalization form is immaterial as long as every pipeline shares
// it; log damping is the convention of [40].
func Score(st Stats, idfs []float64) float64 {
	score := 0.0
	for j := range idfs {
		if j < len(st.TFs) {
			score += float64(st.TFs[j]) * idfs[j]
		}
	}
	return score / math.Log2(2+float64(st.ByteLen))
}

// RankWithStats is Rank over stats that were already collected (possibly by
// concurrent workers). results[i] and stats[i] must correspond, in view
// output order.
func RankWithStats(results []*xmltree.Node, stats []Stats, keywords []string, conjunctive bool, k int) *Ranking {
	r := &Ranking{ViewSize: len(results)}
	r.IDFs = IDFs(stats, len(keywords))
	top := NewTopK(k)
	for i, res := range results {
		if !Satisfies(stats[i].TFs, conjunctive) {
			continue
		}
		r.Matched++
		top.Push(Scored{Result: res, Stats: stats[i], Score: Score(stats[i], r.IDFs), Index: i})
	}
	r.Results = top.Sorted()
	return r
}

// Better is the ranking order: a precedes b on higher score, with ties
// broken deterministically by ascending view position. View positions are
// distinct, so Better is a total order — which is what makes bounded
// selection insensitive to the order results are pushed in.
func Better(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Index < b.Index
}

// TopK selects the top k results under Better. It is safe for concurrent
// Push from multiple workers, and because Better is a total order the
// selected set and its Sorted order are independent of push interleaving —
// the property the parallel search pipeline relies on to stay byte-
// identical with the sequential path. k <= 0 keeps everything.
type TopK struct {
	mu   sync.Mutex
	k    int
	heap []Scored // min-heap: root is the worst kept result
}

// NewTopK returns a selector keeping the top k results (k <= 0: unbounded).
func NewTopK(k int) *TopK { return &TopK{k: k} }

// worse orders the internal heap: the root must lose to every other kept
// result, so the parent relation is "ranks after".
func (t *TopK) worse(i, j int) bool { return Better(t.heap[j], t.heap[i]) }

// Push offers one scored result to the selection.
func (t *TopK) Push(s Scored) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.k <= 0 || len(t.heap) < t.k {
		t.heap = append(t.heap, s)
		t.siftUp(len(t.heap) - 1)
		return
	}
	if Better(s, t.heap[0]) {
		t.heap[0] = s
		t.siftDown(0)
	}
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			return
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *TopK) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(t.heap) && t.worse(l, min) {
			min = l
		}
		if r < len(t.heap) && t.worse(r, min) {
			min = r
		}
		if min == i {
			return
		}
		t.heap[i], t.heap[min] = t.heap[min], t.heap[i]
		i = min
	}
}

// Sorted returns the selection in final rank order (Better). The selector
// must not be pushed to concurrently with Sorted.
func (t *TopK) Sorted() []Scored {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Scored, len(t.heap))
	copy(out, t.heap)
	sort.Slice(out, func(i, j int) bool { return Better(out[i], out[j]) })
	return out
}

// Satisfies reports whether a result's per-keyword term frequencies meet
// the keyword semantics: every keyword present (conjunctive) or any
// keyword present (disjunctive). An empty keyword list is satisfied.
func Satisfies(tfs []int, conjunctive bool) bool {
	if len(tfs) == 0 {
		return true
	}
	for _, tf := range tfs {
		if conjunctive && tf == 0 {
			return false
		}
		if !conjunctive && tf > 0 {
			return true
		}
	}
	return conjunctive
}

// Fetcher serves base subtree fetches during materialization. *store.Store
// implements it; callers that need an exact per-query fetch count wrap it
// (see CountingFetcher).
type Fetcher interface {
	Subtree(id dewey.ID) *xmltree.Node
}

// CountingFetcher counts the fetches of one materialization pass, so a
// search can report its own base-data accesses exactly even while other
// searches drive the store's shared counters concurrently.
type CountingFetcher struct {
	Fetcher
	Fetches int
}

// Subtree delegates and counts successful fetches.
func (c *CountingFetcher) Subtree(id dewey.ID) *xmltree.Node {
	n := c.Fetcher.Subtree(id)
	if n != nil {
		c.Fetches++
	}
	return n
}

// Materialize expands a (possibly pruned) view result into a complete tree:
// PDT elements are replaced by their full base subtrees fetched from
// document storage — the only base-data access of the Efficient pipeline,
// performed for top-k winners only.
func Materialize(result *xmltree.Node, st Fetcher) *xmltree.Node {
	if result.Meta != nil {
		if full := st.Subtree(result.Meta.SrcID); full != nil {
			return full.Clone()
		}
	}
	if len(result.ID) > 0 && result.Meta == nil {
		// Already a base subtree (Baseline pipeline): deep-copy it.
		if full := st.Subtree(result.ID); full != nil {
			return full.Clone()
		}
	}
	out := &xmltree.Node{Tag: result.Tag, Value: result.Value, ID: result.ID.Clone()}
	for _, c := range result.Children {
		out.AppendChild(Materialize(c, st))
	}
	return out
}
