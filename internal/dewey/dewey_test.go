package dewey

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseString(t *testing.T) {
	cases := []string{"", "1", "1.2.3", "10.0.7", "1.1.1.1.1"}
	for _, c := range cases {
		id, err := Parse(c)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c, err)
		}
		if got := id.String(); got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, c := range []string{"a", "1..2", "1.x", ".", "1.", ".1"} {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1", "1", 0},
		{"1", "2", -1},
		{"2", "1", 1},
		{"1", "1.1", -1}, // ancestor precedes descendant
		{"1.1", "1", 1},
		{"1.2", "1.10", -1},
		{"1.2.3", "1.2.3", 0},
		{"1.9.9", "2", -1},
		{"", "1", -1}, // virtual root first
	}
	for _, c := range cases {
		if got := Compare(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("Compare(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAncestry(t *testing.T) {
	cases := []struct {
		a, b             string
		ancestor, parent bool
	}{
		{"1", "1.1", true, true},
		{"1", "1.1.1", true, false},
		{"1.1", "1.2", false, false},
		{"1.1", "1.1", false, false},
		{"1.2", "1.10.3", false, false},
		{"", "1", true, true},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := a.IsAncestorOf(b); got != c.ancestor {
			t.Errorf("IsAncestorOf(%q,%q) = %v, want %v", c.a, c.b, got, c.ancestor)
		}
		if got := a.IsParentOf(b); got != c.parent {
			t.Errorf("IsParentOf(%q,%q) = %v, want %v", c.a, c.b, got, c.parent)
		}
	}
}

func TestParentChild(t *testing.T) {
	id := MustParse("1.2.3")
	if got := id.Parent().String(); got != "1.2" {
		t.Errorf("Parent = %q", got)
	}
	if got := id.Child(5).String(); got != "1.2.3.5" {
		t.Errorf("Child = %q", got)
	}
	if MustParse("1").Parent().Depth() != 0 {
		t.Errorf("Parent of depth-1 should be the virtual root")
	}
}

func TestSuccessorBoundsSubtree(t *testing.T) {
	id := MustParse("1.2")
	inside := []string{"1.2", "1.2.1", "1.2.9.9"}
	outside := []string{"1.3", "2", "1.1.9", "1"}
	succ := id.Successor()
	for _, s := range inside {
		x := MustParse(s)
		if Compare(x, id) < 0 || Compare(x, succ) >= 0 {
			t.Errorf("%q should be within [%q,%q)", s, id, succ)
		}
	}
	for _, s := range outside {
		x := MustParse(s)
		if !(Compare(x, id) < 0 || Compare(x, succ) >= 0) {
			t.Errorf("%q should be outside [%q,%q)", s, id, succ)
		}
	}
}

func TestHasPrefix(t *testing.T) {
	if !MustParse("1.2.3").HasPrefix(MustParse("1.2")) {
		t.Error("1.2 should be a prefix of 1.2.3")
	}
	if !MustParse("1.2").HasPrefix(MustParse("1.2")) {
		t.Error("equal IDs are prefixes")
	}
	if MustParse("1.2").HasPrefix(MustParse("1.2.3")) {
		t.Error("longer IDs are not prefixes")
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.2.3", "1.2.4", 2},
		{"1.2.3", "1.2.3", 3},
		{"1", "2", 0},
		{"1.2", "1.2.3", 2},
	}
	for _, c := range cases {
		if got := CommonPrefixLen(MustParse(c.a), MustParse(c.b)); got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// randomID is a helper for property tests.
func randomID(r *rand.Rand) ID {
	n := 1 + r.Intn(6)
	id := make(ID, n)
	for i := range id {
		id[i] = int32(r.Intn(8))
	}
	return id
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomID(r), randomID(r)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ids := []ID{randomID(r), randomID(r), randomID(r)}
		sort.Slice(ids, func(i, j int) bool { return Less(ids[i], ids[j]) })
		return Compare(ids[0], ids[1]) <= 0 && Compare(ids[1], ids[2]) <= 0 &&
			Compare(ids[0], ids[2]) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAncestorIffPrefixAndOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomID(r)
		b := randomID(r)
		if a.IsAncestorOf(b) {
			// ancestor must precede descendant and be a proper prefix
			if Compare(a, b) >= 0 || len(a) >= len(b) || !b.HasPrefix(a) {
				return false
			}
		}
		// extending a always yields a descendant
		c := a.Child(int32(r.Intn(5)))
		return a.IsAncestorOf(c) && a.IsParentOf(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		id := randomID(r)
		back, err := Parse(id.String())
		return err == nil && reflect.DeepEqual(back, id)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSuccessorTight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		id := randomID(r)
		succ := id.Successor()
		// id < succ, and any descendant of id is < succ
		d := id.Child(int32(r.Intn(100)))
		return Less(id, succ) && Less(d, succ) && !id.IsAncestorOf(succ)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustParse("1.2.3")
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares storage")
	}
	if ID(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

// TestCompareToSuccessorMatchesMaterialized pins the allocation-free range
// comparison to the definitional form: for random IDs,
// CompareToSuccessor(a, id) == Compare(a, id.Successor()).
func TestCompareToSuccessorMatchesMaterialized(t *testing.T) {
	f := func(aRaw, idRaw []uint8) bool {
		toID := func(raw []uint8) ID {
			if len(raw) > 6 {
				raw = raw[:6]
			}
			id := make(ID, len(raw))
			for i, c := range raw {
				id[i] = int32(c % 4)
			}
			return id
		}
		a, id := toID(aRaw), toID(idRaw)
		return CompareToSuccessor(a, id) == Compare(a, id.Successor())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	// The virtual root's successor and its exact boundary.
	if CompareToSuccessor(ID{1 << 30}, nil) != 0 {
		t.Error("successor of virtual root should compare equal to {1<<30}")
	}
	if CompareToSuccessor(nil, nil) != -1 {
		t.Error("virtual root precedes its own successor")
	}
}
