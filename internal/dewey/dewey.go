// Package dewey implements Dewey IDs, the hierarchical element numbering
// scheme used throughout the system to identify XML elements (paper §3.2,
// Figure 4a). The ID of an element contains the ID of its parent element as
// a prefix, so document order is exactly lexicographic order on components,
// and ancestor/descendant tests are prefix tests.
package dewey

import (
	"fmt"
	"strconv"
	"strings"
)

// ID is a Dewey ID: the sequence of sibling ordinals from the document root
// (inclusive) down to an element. The empty ID is the "virtual root" above
// all documents; it is an ancestor of every other ID.
type ID []int32

// Parse converts the textual form "1.2.3" into an ID.
func Parse(s string) (ID, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ".")
	id := make(ID, len(parts))
	for i, p := range parts {
		n, err := strconv.ParseInt(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dewey: invalid component %q in %q", p, s)
		}
		id[i] = int32(n)
	}
	return id, nil
}

// MustParse is Parse for tests and examples; it panics on malformed input.
func MustParse(s string) ID {
	id, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return id
}

// String renders the ID in the dotted form used by the paper, e.g. "1.2.3".
func (id ID) String() string {
	if len(id) == 0 {
		return ""
	}
	var b strings.Builder
	for i, c := range id {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatInt(int64(c), 10))
	}
	return b.String()
}

// Depth is the number of components. The virtual root has depth 0; a
// document root element has depth 1.
func (id ID) Depth() int { return len(id) }

// Compare orders IDs in document order: ancestors sort before descendants,
// and siblings sort by ordinal. It returns -1, 0 or +1.
func Compare(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Less reports whether a precedes b in document order.
func Less(a, b ID) bool { return Compare(a, b) < 0 }

// Equal reports whether the two IDs are identical.
func Equal(a, b ID) bool { return Compare(a, b) == 0 }

// Prefix returns the prefix of id with the given depth. It panics if depth
// is negative or exceeds the depth of id.
func (id ID) Prefix(depth int) ID { return id[:depth] }

// Parent returns the ID of the parent element, or nil for a depth-1 ID.
func (id ID) Parent() ID {
	if len(id) == 0 {
		return nil
	}
	return id[:len(id)-1]
}

// Child returns the ID of the ord-th child of id.
func (id ID) Child(ord int32) ID {
	c := make(ID, len(id)+1)
	copy(c, id)
	c[len(id)] = ord
	return c
}

// Clone returns a copy of id that does not share backing storage.
func (id ID) Clone() ID {
	if id == nil {
		return nil
	}
	c := make(ID, len(id))
	copy(c, id)
	return c
}

// IsAncestorOf reports whether a is a strict ancestor of b, i.e. a proper
// prefix of b.
func (a ID) IsAncestorOf(b ID) bool {
	if len(a) >= len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// IsParentOf reports whether a is the parent of b.
func (a ID) IsParentOf(b ID) bool {
	return len(a)+1 == len(b) && a.IsAncestorOf(b)
}

// HasPrefix reports whether p is a (possibly equal) prefix of id.
func (id ID) HasPrefix(p ID) bool {
	return Equal(id[:min(len(id), len(p))], p) && len(p) <= len(id)
}

// Successor returns the smallest ID in document order that is strictly
// greater than id and every descendant of id. Probing a sorted ID list for
// the range [id, id.Successor()) yields exactly id's subtree.
func (id ID) Successor() ID {
	s := id.Clone()
	if len(s) == 0 {
		return ID{1 << 30}
	}
	s[len(s)-1]++
	return s
}

// CompareToSuccessor compares a against id.Successor() in document order
// without materializing the successor — the subtree-range probes of the
// inverted index run once per candidate element per keyword, and the
// successor clone was their only allocation.
func CompareToSuccessor(a, id ID) int {
	if len(id) == 0 {
		// Successor of the virtual root is ID{1 << 30}.
		if len(a) == 0 {
			return -1
		}
		switch {
		case a[0] < 1<<30:
			return -1
		case a[0] > 1<<30:
			return 1
		}
		if len(a) == 1 {
			return 0
		}
		return 1
	}
	n := min(len(a), len(id))
	for i := 0; i < n; i++ {
		want := id[i]
		if i == len(id)-1 {
			want++ // the successor's bumped last component
		}
		switch {
		case a[i] < want:
			return -1
		case a[i] > want:
			return 1
		}
	}
	switch {
	case len(a) < len(id):
		return -1
	case len(a) > len(id):
		return 1
	}
	return 0
}

// CommonPrefixLen returns the length of the longest common prefix of a and b.
func CommonPrefixLen(a, b ID) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
