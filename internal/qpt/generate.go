package qpt

import (
	"fmt"

	"vxml/internal/pred"
	"vxml/internal/xq"
)

const maxExpandDepth = 32

// analyzeReturn analyzes an expression in output position: its results
// contribute content to the view. Element constructors and sequences
// optional-ize the root edges of variable-anchored twigs, because a
// constructed element exists even when an embedded sub-expression is empty
// (Appendix B, Figure 24 lines 42-60).
func (g *generator) analyzeReturn(e xq.Expr) ([]*twig, error) {
	switch x := e.(type) {
	case *xq.ElementExpr:
		var out []*twig
		for _, child := range x.Children {
			ts, err := g.analyzeReturn(child)
			if err != nil {
				return nil, err
			}
			optionalizeVarRooted(ts)
			out = append(out, ts...)
		}
		return out, nil
	case *xq.SeqExpr:
		var out []*twig
		for _, item := range x.Items {
			ts, err := g.analyzeReturn(item)
			if err != nil {
				return nil, err
			}
			optionalizeVarRooted(ts)
			out = append(out, ts...)
		}
		return out, nil
	default:
		return g.analyze(e, true)
	}
}

// optionalizeVarRooted marks the root edges of variable- and dot-anchored
// twigs optional.
func optionalizeVarRooted(ts []*twig) {
	for _, t := range ts {
		if t.anchor == "." || t.anchor[0] == '$' {
			for _, edge := range t.root.Edges {
				edge.Mandatory = false
			}
		}
	}
}

// analyze derives twigs for an expression. content reports whether the
// expression's value is propagated to the view output (sets 'c' on spine
// leaves).
func (g *generator) analyze(e xq.Expr, content bool) ([]*twig, error) {
	switch x := e.(type) {
	case *xq.DocExpr:
		t := &twig{anchor: docAnchor(x.Name), root: &Node{}}
		t.leaf = t.root
		t.root.C = content
		return []*twig{t}, nil
	case *xq.VarExpr:
		t := &twig{anchor: varAnchor(x.Name), root: &Node{}}
		t.leaf = t.root
		t.root.C = content
		return []*twig{t}, nil
	case *xq.DotExpr:
		t := &twig{anchor: ".", root: &Node{}}
		t.leaf = t.root
		t.root.C = content
		return []*twig{t}, nil
	case *xq.LiteralExpr:
		return nil, nil
	case *xq.StepExpr:
		ts, err := g.analyze(x.Base, false)
		if err != nil {
			return nil, err
		}
		if len(ts) == 0 {
			return nil, fmt.Errorf("qpt: path steps applied to literal")
		}
		main := ts[0]
		for _, st := range x.Steps {
			main.leaf = main.leaf.addChild(st.Tag, st.Axis, true)
		}
		main.leaf.C = content
		return ts, nil
	case *xq.FilterExpr:
		ts, err := g.analyze(x.Base, content)
		if err != nil {
			return nil, err
		}
		if len(ts) == 0 {
			return nil, fmt.Errorf("qpt: filter applied to literal")
		}
		main := ts[0]
		predTwigs, err := g.analyzePred(x.Pred)
		if err != nil {
			return nil, err
		}
		for _, pt := range predTwigs {
			if pt.anchor == "." {
				graft(main.leaf, pt, false)
			} else {
				ts = append(ts, pt)
			}
		}
		return ts, nil
	case *xq.CmpExpr, *xq.FTContainsExpr:
		return g.analyzePred(e)
	case *xq.CondExpr:
		condTs, err := g.analyzePred(x.Cond)
		if err != nil {
			return nil, err
		}
		// Condition sub-expressions never contribute content (Figure 21
		// lines 36-39).
		for _, t := range condTs {
			clearContent(t.root)
		}
		thenTs, err := g.analyze(x.Then, content)
		if err != nil {
			return nil, err
		}
		elseTs, err := g.analyze(x.Else, content)
		if err != nil {
			return nil, err
		}
		return append(condTs, append(thenTs, elseTs...)...), nil
	case *xq.SeqExpr:
		var out []*twig
		for _, item := range x.Items {
			ts, err := g.analyze(item, content)
			if err != nil {
				return nil, err
			}
			optionalizeVarRooted(ts)
			out = append(out, ts...)
		}
		return out, nil
	case *xq.ElementExpr:
		return g.analyzeReturn(x)
	case *xq.FLWORExpr:
		return g.analyzeFLWOR(x, content)
	case *xq.CallExpr:
		return g.analyzeCall(x, content)
	}
	return nil, fmt.Errorf("qpt: unsupported expression %T in view", e)
}

// analyzePred analyzes a predicate expression (where clause, filter, if
// condition): path existence, comparison to a literal (predicate pushed to
// the leaf, 'v' set so the evaluator can re-check it over the PDT), or a
// value join (both leaves 'v').
func (g *generator) analyzePred(e xq.Expr) ([]*twig, error) {
	switch x := e.(type) {
	case *xq.CmpExpr:
		if lit, ok := x.Right.(*xq.LiteralExpr); ok {
			ts, err := g.analyze(x.Left, false)
			if err != nil {
				return nil, err
			}
			if len(ts) > 0 {
				leaf := ts[0].leaf
				leaf.Preds = append(leaf.Preds, pred.Predicate{Op: x.Op, Lit: lit.Value})
				leaf.V = true
			}
			return ts, nil
		}
		if lit, ok := x.Left.(*xq.LiteralExpr); ok {
			// literal Comp path: flip the comparison
			ts, err := g.analyze(x.Right, false)
			if err != nil {
				return nil, err
			}
			if len(ts) > 0 {
				leaf := ts[0].leaf
				leaf.Preds = append(leaf.Preds, pred.Predicate{Op: flip(x.Op), Lit: lit.Value})
				leaf.V = true
			}
			return ts, nil
		}
		left, err := g.analyze(x.Left, false)
		if err != nil {
			return nil, err
		}
		right, err := g.analyze(x.Right, false)
		if err != nil {
			return nil, err
		}
		ts := append(left, right...)
		for _, t := range ts {
			t.leaf.V = true
		}
		return ts, nil
	case *xq.FTContainsExpr:
		return nil, fmt.Errorf("qpt: ftcontains inside a view definition is not supported; pose keywords over the view")
	default:
		return g.analyze(e, false)
	}
}

func flip(op pred.Op) pred.Op {
	switch op {
	case pred.Lt:
		return pred.Gt
	case pred.Gt:
		return pred.Lt
	}
	return op
}

func clearContent(n *Node) {
	n.C = false
	for _, e := range n.Edges {
		clearContent(e.Child)
	}
}

// analyzeFLWOR implements Figure 24: analyze where and return, then bind
// for/let clauses from the innermost to the outermost, grafting twigs
// anchored at each clause variable onto the leaf of the clause's binding
// path.
func (g *generator) analyzeFLWOR(x *xq.FLWORExpr, content bool) ([]*twig, error) {
	var pending []*twig
	if x.Where != nil {
		ts, err := g.analyzePred(x.Where)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			clearContent(t.root)
		}
		pending = append(pending, ts...)
	}
	retTs, err := g.analyzeReturnExpr(x.Return, content)
	if err != nil {
		return nil, err
	}
	for _, t := range retTs {
		t.fromReturn = true
	}
	pending = append(pending, retTs...)

	for i := len(x.Clauses) - 1; i >= 0; i-- {
		cl := x.Clauses[i]
		pathTs, err := g.analyze(cl.In, false)
		if err != nil {
			return nil, err
		}
		if len(pathTs) == 0 {
			return nil, fmt.Errorf("qpt: clause $%s binds a literal", cl.Var)
		}
		main := pathTs[0]
		anchor := varAnchor(cl.Var)
		var remaining []*twig
		for _, t := range pending {
			if t.anchor != anchor {
				remaining = append(remaining, t)
				continue
			}
			isPlainVarReturn := t.fromReturn && len(t.root.Edges) == 0
			graft(main.leaf, t, isPlainVarReturn)
		}
		pending = append(remaining, pathTs...)
	}
	return pending, nil
}

// analyzeReturnExpr dispatches return expressions with content=true unless
// the FLWOR itself is in a non-content position.
func (g *generator) analyzeReturnExpr(e xq.Expr, content bool) ([]*twig, error) {
	if !content {
		ts, err := g.analyzeReturn(e)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			clearContent(t.root)
		}
		return ts, nil
	}
	return g.analyzeReturn(e)
}

// graft attaches twig t (anchored at a variable or '.') onto leaf: t's root
// edges become leaf's edges, and the anchor's annotations fold into the
// leaf. When the twig is a bare `return $var`, the leaf inherits the
// content annotation (Figure 24 lines 21-27).
func graft(leaf *Node, t *twig, inheritContent bool) {
	for _, e := range t.root.Edges {
		e.From = leaf
		leaf.Edges = append(leaf.Edges, e)
	}
	leaf.V = leaf.V || t.root.V
	leaf.Preds = append(leaf.Preds, t.root.Preds...)
	if inheritContent {
		leaf.C = leaf.C || t.root.C
	}
}

// analyzeCall expands a non-recursive function call: the body is analyzed
// and parameter-anchored twigs are grafted onto the argument paths
// (Figure 21 lines 43-60).
func (g *generator) analyzeCall(x *xq.CallExpr, content bool) ([]*twig, error) {
	fd, ok := g.funcs[x.Name]
	if !ok {
		return nil, fmt.Errorf("qpt: unknown function %q", x.Name)
	}
	if len(x.Args) != len(fd.Params) {
		return nil, fmt.Errorf("qpt: %s expects %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
	}
	if g.depth >= maxExpandDepth {
		return nil, fmt.Errorf("qpt: function expansion too deep (recursion is not supported)")
	}
	g.depth++
	defer func() { g.depth-- }()
	bodyTs, err := g.analyze(fd.Body, content)
	if err != nil {
		return nil, err
	}
	pending := bodyTs
	for i, arg := range x.Args {
		argTs, err := g.analyze(arg, false)
		if err != nil {
			return nil, err
		}
		if len(argTs) == 0 {
			continue // literal argument
		}
		main := argTs[0]
		anchor := varAnchor(fd.Params[i])
		var remaining []*twig
		for _, t := range pending {
			if t.anchor != anchor {
				remaining = append(remaining, t)
				continue
			}
			isPlainVarReturn := len(t.root.Edges) == 0
			graft(main.leaf, t, isPlainVarReturn)
		}
		pending = append(remaining, argTs...)
	}
	return pending, nil
}
