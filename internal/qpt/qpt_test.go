package qpt

import (
	"strings"
	"testing"

	"vxml/internal/pathindex"
	"vxml/internal/xq"
)

// figure2View is the view definition of the paper's running example
// (Figure 2, the $view binding).
const figure2View = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book> {$book/title} </book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func generate(t *testing.T, view string) []*QPT {
	t.Helper()
	q, err := xq.Parse(view)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	qpts, err := Generate(q.Body, q.Functions)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return qpts
}

// TestFigure6a checks the generated QPTs against the paper's Figure 6(a).
func TestFigure6a(t *testing.T) {
	qpts := generate(t, figure2View)
	if len(qpts) != 2 {
		t.Fatalf("expected 2 QPTs, got %d", len(qpts))
	}
	books, reviews := qpts[0], qpts[1]
	if books.Doc != "books.xml" || reviews.Doc != "reviews.xml" {
		t.Fatalf("docs = %s, %s", books.Doc, reviews.Doc)
	}
	wantBooks := `doc(books.xml)
  /books m
    //book m
      /year m v pred(> 1995)
      /title o c
      /isbn o v
`
	if got := books.String(); got != wantBooks {
		t.Errorf("books QPT:\n%swant:\n%s", got, wantBooks)
	}
	wantReviews := `doc(reviews.xml)
  /reviews m
    //review m
      /isbn m v
      /content m c
`
	if got := reviews.String(); got != wantReviews {
		t.Errorf("reviews QPT:\n%swant:\n%s", got, wantReviews)
	}
}

func TestSelectionOnlyView(t *testing.T) {
	qpts := generate(t, `
for $b in fn:doc(books.xml)/books//book
where $b/year > 1995
return $b`)
	if len(qpts) != 1 {
		t.Fatalf("QPTs = %d", len(qpts))
	}
	want := `doc(books.xml)
  /books m
    //book m c
      /year m v pred(> 1995)
`
	if got := qpts[0].String(); got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

func TestFilterPredicateView(t *testing.T) {
	qpts := generate(t, `fn:doc(books.xml)/books/book[year > 1995]/title`)
	want := `doc(books.xml)
  /books m
    /book m
      /year m v pred(> 1995)
      /title m c
`
	if got := qpts[0].String(); got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

func TestExistencePredicate(t *testing.T) {
	qpts := generate(t, `fn:doc(books.xml)/books/book[isbn]`)
	want := `doc(books.xml)
  /books m
    /book m c
      /isbn m
`
	if got := qpts[0].String(); got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

func TestSequenceReturnOptionalizes(t *testing.T) {
	qpts := generate(t, `
for $b in fn:doc(books.xml)/books/book
return $b/title, $b/year`)
	want := `doc(books.xml)
  /books m
    /book m
      /title o c
      /year o c
`
	if got := qpts[0].String(); got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

func TestPlainReturnStaysMandatory(t *testing.T) {
	// A plain `return $b/title` keeps the edge mandatory: bindings without
	// a title contribute nothing to the view, so pruning them is safe
	// (Lemma D.3).
	qpts := generate(t, `
for $b in fn:doc(books.xml)/books/book
return $b/title`)
	want := `doc(books.xml)
  /books m
    /book m
      /title m c
`
	if got := qpts[0].String(); got != want {
		t.Errorf("got:\n%swant:\n%s", got, want)
	}
}

func TestNestedFLWORLevels(t *testing.T) {
	qpts := generate(t, `
for $j in fn:doc(inex.xml)/journals//journal
return <jr>
  {$j/title}
  {for $a in fn:doc(inex.xml)/journals//journal/article
   where $a/jid = $j/jid
   return $a/title}
</jr>`)
	if len(qpts) != 1 {
		t.Fatalf("QPTs = %d (expected 1, both paths on inex.xml)", len(qpts))
	}
	got := qpts[0].String()
	for _, want := range []string{"//journal m", "/jid o v", "/title o c", "/article m", "/jid m v", "/title m c"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestFunctionExpansion(t *testing.T) {
	qpts := generate(t, `
declare function revsFor($i) {
  for $r in fn:doc(reviews.xml)/reviews//review
  where $r/isbn = $i
  return $r/content
}
for $b in fn:doc(books.xml)/books//book
return <e>{$b/title}{revsFor($b/isbn)}</e>`)
	if len(qpts) != 2 {
		t.Fatalf("QPTs = %d", len(qpts))
	}
	books := qpts[0].String()
	if !strings.Contains(books, "/isbn o v") {
		t.Errorf("isbn arg should be optional+v:\n%s", books)
	}
	reviews := qpts[1].String()
	if !strings.Contains(reviews, "/isbn m v") || !strings.Contains(reviews, "/content m c") {
		t.Errorf("reviews QPT:\n%s", reviews)
	}
}

func TestCondExprUnion(t *testing.T) {
	qpts := generate(t, `
for $b in fn:doc(books.xml)/books/book
return if $b/year > 2000 then $b/title else $b/isbn`)
	got := qpts[0].String()
	for _, want := range []string{"/year", "pred(> 2000)", "/title", "/isbn"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	// condition contributes no content
	if strings.Contains(got, "/year m v c") {
		t.Errorf("condition leaf must not be 'c':\n%s", got)
	}
}

func TestLiteralOnLeftFlips(t *testing.T) {
	qpts := generate(t, `
for $b in fn:doc(books.xml)/books/book
where 1995 < $b/year
return $b/title`)
	got := qpts[0].String()
	if !strings.Contains(got, "pred(> 1995)") {
		t.Errorf("flipped predicate missing:\n%s", got)
	}
}

func TestStepsFromRoot(t *testing.T) {
	qpts := generate(t, figure2View)
	var isbn *Node
	for _, n := range qpts[0].Nodes() {
		if n.Tag == "isbn" {
			isbn = n
		}
	}
	if isbn == nil {
		t.Fatal("no isbn node")
	}
	steps := isbn.StepsFromRoot()
	if got := pathindex.FormatSteps(steps); got != "/books//book/isbn" {
		t.Errorf("StepsFromRoot = %q", got)
	}
}

func TestNodesAndDepth(t *testing.T) {
	qpts := generate(t, figure2View)
	books := qpts[0]
	if got := len(books.Nodes()); got != 5 {
		t.Errorf("Nodes = %d", got)
	}
	if got := books.Depth(); got != 3 {
		t.Errorf("Depth = %d", got)
	}
}

func TestHasMandatoryChild(t *testing.T) {
	qpts := generate(t, figure2View)
	for _, n := range qpts[0].Nodes() {
		switch n.Tag {
		case "books", "book":
			if !n.HasMandatoryChild() {
				t.Errorf("%s should have a mandatory child", n.Tag)
			}
		case "year", "title", "isbn":
			if n.HasMandatoryChild() {
				t.Errorf("%s should be a leaf", n.Tag)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"$free/path",                  // unresolved variable
		"for $v in $free return $v/x", // free variable binding
		"for $b in fn:doc(b.xml)/a where $b ftcontains('x') return $b", // ftcontains in view
		"unknownFn($x)",
	}
	for _, view := range cases {
		q, err := xq.Parse(view)
		if err != nil {
			continue
		}
		if _, err := Generate(q.Body, q.Functions); err == nil {
			t.Errorf("Generate(%q): expected error", view)
		}
	}
}

func TestNonLeafPredicateRejected(t *testing.T) {
	// `.` predicates attach to the filtered node itself; when that node
	// has QPT children the view needs a string-value predicate on a
	// non-leaf element, which the paper's grammar excludes (§3.1).
	q := xq.MustParse(`fn:doc(b.xml)/books/book[. = 'x']/title`)
	if _, err := Generate(q.Body, q.Functions); err == nil {
		t.Error("expected non-leaf predicate rejection")
	}
	// On a leaf it is fine.
	q = xq.MustParse(`fn:doc(b.xml)/books/book/title[. = 'x']`)
	if _, err := Generate(q.Body, q.Functions); err != nil {
		t.Errorf("leaf dot predicate should be accepted: %v", err)
	}
}

func TestMergeSharedPrefixes(t *testing.T) {
	// Two paths into the same doc share the /books/book prefix.
	qpts := generate(t, `
for $b in fn:doc(books.xml)/books/book
where $b/year > 1995
return <e>{$b/title}{$b/publisher}</e>`)
	if len(qpts) != 1 {
		t.Fatalf("QPTs = %d", len(qpts))
	}
	got := qpts[0].String()
	if strings.Count(got, "/book m") != 1 {
		t.Errorf("book chain not merged:\n%s", got)
	}
	for _, want := range []string{"/year m v pred(> 1995)", "/title o c", "/publisher o c"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}
