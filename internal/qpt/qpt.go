// Package qpt implements the Query Pattern Tree and its generation from a
// view definition (paper §3.3 and Appendix B). The QPT generalizes the GTP
// of Chen et al. with two node annotations: 'v' marks nodes whose values
// are required during query evaluation (join keys, predicate operands) and
// 'c' marks nodes whose content is propagated to the view output (needed
// for scoring and final materialization). Edges carry an axis ('/' or '//')
// and are mandatory or optional.
//
// One deliberate deviation from the appendix pseudocode: leaves compared to
// literals (e.g. year > 1995) are annotated 'v' in addition to carrying the
// predicate, matching the paper's Figure 6(b) where the PDT materializes
// year values. This lets the unchanged evaluator re-check the predicate
// over the PDT, which is how the architecture avoids modifying the
// evaluator.
package qpt

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vxml/internal/pathindex"
	"vxml/internal/pred"
	"vxml/internal/xq"
)

// Node is one node of a QPT. The root of a finalized QPT is a virtual node
// standing for the document itself (Tag == ""); all other nodes carry
// element tag names.
type Node struct {
	Tag   string
	Preds []pred.Predicate
	V     bool // value required during evaluation
	C     bool // content propagated to the view output
	Edges []*Edge
	// Parent is the edge leading to this node (nil for the root).
	Parent *Edge
}

// Edge links a parent QPT node to a child.
type Edge struct {
	From      *Node
	Child     *Node
	Axis      pathindex.Axis
	Mandatory bool
}

// QPT is a finalized query pattern tree for one document.
type QPT struct {
	Doc  string // document name from fn:doc
	Root *Node  // virtual document node

	layoutOnce sync.Once
	layout     *MandLayout
}

// MandLayout is the DescendantMap bit layout of a QPT: for every node, the
// bit it occupies among its parent's mandatory children, and for every
// parent, how many mandatory children it has. PDT generation consults it
// for every element of every candidate document, and a QPT is immutable
// after Generate, so the layout is computed once per QPT and shared
// (read-only) by concurrent searches instead of being rebuilt per document.
type MandLayout struct {
	// Bit maps a node to 1 << (its position among the parent's mandatory
	// children); absent for optional children.
	Bit map[*Node]uint64
	// Count maps a node to its number of mandatory children.
	Count map[*Node]int
}

// MandatoryLayout returns the QPT's DescendantMap bit layout, computing it
// on first use. Safe for concurrent callers.
func (q *QPT) MandatoryLayout() *MandLayout {
	q.layoutOnce.Do(func() {
		l := &MandLayout{Bit: map[*Node]uint64{}, Count: map[*Node]int{}}
		var walk func(n *Node)
		walk = func(n *Node) {
			pos := 0
			for _, e := range n.Edges {
				if e.Mandatory {
					l.Bit[e.Child] = 1 << pos
					pos++
				}
				walk(e.Child)
			}
			l.Count[n] = pos
		}
		walk(q.Root)
		q.layout = l
	})
	return q.layout
}

// addChild appends a child node and returns it.
func (n *Node) addChild(tag string, axis pathindex.Axis, mandatory bool) *Node {
	c := &Node{Tag: tag}
	e := &Edge{From: n, Child: c, Axis: axis, Mandatory: mandatory}
	c.Parent = e
	n.Edges = append(n.Edges, e)
	return c
}

// HasMandatoryChild reports whether any child edge is mandatory.
func (n *Node) HasMandatoryChild() bool {
	for _, e := range n.Edges {
		if e.Mandatory {
			return true
		}
	}
	return false
}

// IsLeaf reports whether the node has no child edges.
func (n *Node) IsLeaf() bool { return len(n.Edges) == 0 }

// StepsFromRoot returns the root-anchored path pattern leading to n,
// suitable for path index lookups.
func (n *Node) StepsFromRoot() []pathindex.Step {
	var rev []pathindex.Step
	for cur := n; cur.Parent != nil; cur = cur.Parent.From {
		rev = append(rev, pathindex.Step{Axis: cur.Parent.Axis, Tag: cur.Tag})
	}
	steps := make([]pathindex.Step, len(rev))
	for i := range rev {
		steps[i] = rev[len(rev)-1-i]
	}
	return steps
}

// Nodes returns all non-virtual nodes in pre-order.
func (q *QPT) Nodes() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Tag != "" {
			out = append(out, n)
		}
		for _, e := range n.Edges {
			walk(e.Child)
		}
	}
	walk(q.Root)
	return out
}

// Depth returns the maximum node depth (root element = 1).
func (q *QPT) Depth() int {
	var walk func(n *Node, d int) int
	walk = func(n *Node, d int) int {
		max := d
		for _, e := range n.Edges {
			if m := walk(e.Child, d+1); m > max {
				max = m
			}
		}
		return max
	}
	return walk(q.Root, 0)
}

// String renders the QPT in a stable indented form used by golden tests:
//
//	doc(books.xml)
//	  /books m
//	    //book m
//	      /year m v pred(> 1995)
//	      /title o c
//	      /isbn o v
func (q *QPT) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "doc(%s)\n", q.Doc)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for _, e := range n.Edges {
			b.WriteString(strings.Repeat("  ", depth))
			b.WriteString(e.Axis.String())
			b.WriteString(e.Child.Tag)
			if e.Mandatory {
				b.WriteString(" m")
			} else {
				b.WriteString(" o")
			}
			if e.Child.V {
				b.WriteString(" v")
			}
			if e.Child.C {
				b.WriteString(" c")
			}
			for _, p := range e.Child.Preds {
				fmt.Fprintf(&b, " pred(%s)", p)
			}
			b.WriteString("\n")
			walk(e.Child, depth+1)
		}
	}
	walk(q.Root, 1)
	return b.String()
}

// ----------------------------------------------------------- generation --

// twig is an intermediate pattern tree rooted at an anchor: a document
// (anchor "doc:name"), a variable ("$name"), or the context item (".").
type twig struct {
	anchor     string
	root       *Node // virtual anchor node; Edges are real pattern steps
	leaf       *Node // spine leaf for grafting further steps
	fromReturn bool  // whether this twig came from a return expression
}

func docAnchor(name string) string { return "doc:" + name }
func varAnchor(name string) string { return "$" + name }

// generator carries the function environment during analysis.
type generator struct {
	funcs map[string]*xq.FuncDecl
	depth int
}

// Generate derives the QPT set for a view definition: one QPT per document
// referenced by the view. Every variable must be resolvable within the
// expression (the engine extracts the view from the keyword query before
// calling Generate).
func Generate(view xq.Expr, funcs map[string]*xq.FuncDecl) ([]*QPT, error) {
	g := &generator{funcs: funcs}
	twigs, err := g.analyzeReturn(view)
	if err != nil {
		return nil, err
	}
	byDoc := map[string]*QPT{}
	var order []string
	for _, t := range twigs {
		if !strings.HasPrefix(t.anchor, "doc:") {
			return nil, fmt.Errorf("qpt: unresolved anchor %q in view (free variable or context item)", t.anchor)
		}
		name := strings.TrimPrefix(t.anchor, "doc:")
		q := byDoc[name]
		if q == nil {
			q = &QPT{Doc: name, Root: &Node{}}
			byDoc[name] = q
			order = append(order, name)
		}
		mergeInto(q.Root, t.root)
	}
	sort.Strings(order)
	qpts := make([]*QPT, 0, len(order))
	for _, name := range order {
		q := byDoc[name]
		if err := validate(q); err != nil {
			return nil, err
		}
		qpts = append(qpts, q)
	}
	if len(qpts) == 0 {
		return nil, fmt.Errorf("qpt: view references no documents")
	}
	return qpts, nil
}

// validate rejects QPT shapes outside the supported grammar: predicates on
// the string values of non-leaf elements (paper §3.1 lists these as
// unsupported).
func validate(q *QPT) error {
	var err error
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Preds) > 0 && len(n.Edges) > 0 && err == nil {
			err = fmt.Errorf("qpt: predicate %s on non-leaf element <%s> is not supported", n.Preds[0], n.Tag)
		}
		for _, e := range n.Edges {
			walk(e.Child)
		}
	}
	walk(q.Root)
	return err
}

// mergeInto merges src's children into dst, unifying structurally identical
// chains (same tag, axis, annotation and predicates) so that several paths
// into the same document form a single twig as in Figure 6(a).
func mergeInto(dst, src *Node) {
	dst.V = dst.V || src.V
	dst.C = dst.C || src.C
	for _, e := range src.Edges {
		var match *Edge
		for _, d := range dst.Edges {
			if d.Child.Tag == e.Child.Tag && d.Axis == e.Axis &&
				d.Mandatory == e.Mandatory && predsEqual(d.Child.Preds, e.Child.Preds) {
				match = d
				break
			}
		}
		if match == nil {
			e.From = dst
			dst.Edges = append(dst.Edges, e)
			continue
		}
		mergeInto(match.Child, e.Child)
	}
}

func predsEqual(a, b []pred.Predicate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
