// Package intern canonicalizes frequently repeated strings through the
// runtime's unique package: element tag names, indexed keyword tokens and
// root-to-element paths recur across every document of a corpus (and across
// every shard of the store), so retaining one canonical copy instead of one
// copy per document bounds index memory by the vocabulary, not the corpus.
//
// unique.Make keeps canonical values alive only while something references
// them (weak interning), so a deleted corpus's vocabulary is reclaimed with
// it — a plain map-based interner would leak it forever.
package intern

import "unique"

// String returns the canonical copy of s. Callers that retain many equal
// strings (index builders) intern once per distinct value, not per
// occurrence: the canonical copy is shared process-wide, across documents
// and shards.
func String(s string) string {
	if s == "" {
		return ""
	}
	return unique.Make(s).Value()
}
