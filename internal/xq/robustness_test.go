package xq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanics feeds the parser random byte soup and mutated
// fragments of valid queries; it must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	pieces := []string{
		"for", "let", "$x", "in", "where", "return", "fn:doc(", ")",
		"'lit'", "//", "/", "[", "]", "<a>", "</a>", "{", "}", "=", ">",
		"<", "ftcontains", "(", ",", ".", ":=", "&", "|", "declare",
		"function", "if", "then", "else", "tag", "1995", "$", `"q"`,
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(25)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(pieces[r.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		_, _ = Parse(b.String()) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserRandomBytes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		buf := make([]byte, r.Intn(120))
		for i := range buf {
			buf[i] = byte(32 + r.Intn(95))
		}
		_, _ = Parse(string(buf)) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserTruncatedQueries(t *testing.T) {
	full := `declare function f($x) { for $r in fn:doc(reviews.xml)/reviews//review where $r/isbn = $x return $r/content } for $b in fn:doc(books.xml)/books//book[year > 1995] return <e>{$b/title}{f($b/isbn)}</e>`
	for i := 0; i < len(full); i++ {
		_, _ = Parse(full[:i]) // must not panic at any truncation point
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Parse("$v ftcontains('unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestDeepNestingNoStackOverflow(t *testing.T) {
	var b strings.Builder
	depth := 300
	for i := 0; i < depth; i++ {
		b.WriteString("<a>")
	}
	b.WriteString("{$x}")
	for i := 0; i < depth; i++ {
		b.WriteString("</a>")
	}
	if _, err := Parse("for $x in fn:doc(d.xml)/d return " + b.String()); err != nil {
		t.Errorf("deep constructor nesting should parse: %v", err)
	}
}
