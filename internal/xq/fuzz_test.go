package xq

import (
	"errors"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParseQuery throws arbitrary byte strings at the XQuery parser and
// pins its total-function contract: it never panics, a nil error always
// comes with a query, and every syntax error is a *ParseError whose byte
// offset lands inside (or one past) the input — the API the HTTP layer
// relies on to render machine-readable diagnostics.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		// The grammar's happy paths, shaped like the shipped view suite.
		`for $a in fn:doc(books.xml)/books//article return <r>{$a/bdy}</r>`,
		`for $a in fn:collection("part-*")/books//article where $a/fm/yr > 1993 return <r>{$a/fm/tl}</r>`,
		`for $a in fn:doc(a.xml)/x//y return <r>{$a/t}, {for $b in fn:doc(b.xml)/p//q where $b/n = $a/m return $b/v}</r>`,
		`declare function local:f($x) { $x/title }; for $a in fn:doc(d.xml)//e return local:f($a)`,
		`let $n := fn:doc(d.xml)//name return <out>{$n}</out>`,
		// Near-misses that must fail cleanly.
		`for $a in`,
		`for $a in fn:doc(books.xml)/books//article return`,
		`return $x`,
		`for $a in fn:doc(books.xml)//a return <r>{$a`,
		`for $$ in x return 1`,
		"for $a in fn:doc(b.xml)//x return \x00",
		"",
		"<",
		strings.Repeat("(", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err == nil {
			if q == nil {
				t.Fatal("nil error and nil query")
			}
			return
		}
		if q != nil {
			t.Fatalf("non-nil query alongside error %v", err)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("parse failure is not a *ParseError: %T %v", err, err)
		}
		if pe.Pos < 0 || pe.Pos > len(input) {
			t.Fatalf("ParseError.Pos = %d outside input of %d bytes", pe.Pos, len(input))
		}
		if pe.Msg == "" {
			t.Fatal("ParseError with empty message")
		}
		// The rendered message must stay valid UTF-8 even when the input
		// is not — it travels in JSON error bodies.
		if !utf8.ValidString(pe.Error()) && utf8.ValidString(input) {
			t.Fatalf("error message is invalid UTF-8 for valid-UTF-8 input: %q", pe.Error())
		}
	})
}
