// Package xq implements the supported XQuery subset of the paper
// (Appendix A): path expressions with named child and descendant axes,
// predicates on leaf values, nested FLWOR expressions, conditional
// expressions, element constructors, non-recursive function declarations,
// and the ftcontains full-text predicate used to pose keyword queries over
// views (Figure 2).
package xq

import (
	"strings"

	"vxml/internal/pathindex"
	"vxml/internal/pred"
)

// Expr is any expression of the supported grammar.
type Expr interface {
	exprNode()
	String() string
}

// DocExpr is fn:doc(Name).
type DocExpr struct{ Name string }

// VarExpr is a variable reference $name (Name excludes the '$').
type VarExpr struct{ Name string }

// DotExpr is the context item '.'.
type DotExpr struct{}

// StepExpr is a relative path applied to a base expression, e.g.
// fn:doc(books.xml)/books//book. Steps reuse the path index Step type.
type StepExpr struct {
	Base  Expr
	Steps []pathindex.Step
}

// FilterExpr is PathExpr '[' PredExpr ']'. The predicate is evaluated with
// '.' bound to each item of the base sequence (existence semantics).
type FilterExpr struct {
	Base Expr
	Pred Expr
}

// CmpExpr is a general comparison PredExpr: PathExpr Comp Literal or
// PathExpr Comp PathExpr. Existential semantics: true iff some pair of
// atomized operand values satisfies the comparison.
type CmpExpr struct {
	Left  Expr
	Op    pred.Op
	Right Expr // LiteralExpr for the Comp-Literal form
}

// LiteralExpr is a quoted string or numeric literal.
type LiteralExpr struct{ Value string }

// CondExpr is 'if' Expr 'then' Expr 'else' Expr.
type CondExpr struct{ Cond, Then, Else Expr }

// ForLetClause is one 'for $v in e' or 'let $v := e' clause.
type ForLetClause struct {
	IsLet bool
	Var   string
	In    Expr
}

// FLWORExpr is (ForClause | LetClause)+ (WhereClause)? ReturnClause.
type FLWORExpr struct {
	Clauses []ForLetClause
	Where   Expr // nil if absent; may be *FTContainsExpr
	Return  Expr
}

// ElementExpr is an element constructor '<t>' ('{' e '}')* '</t>'.
type ElementExpr struct {
	Tag      string
	Children []Expr
}

// SeqExpr is Expr ',' Expr (flattened).
type SeqExpr struct{ Items []Expr }

// CallExpr is QName '(' args ')'.
type CallExpr struct {
	Name string
	Args []Expr
}

// FuncDecl is 'declare function QName (params) { Expr }'.
type FuncDecl struct {
	Name   string
	Params []string
	Body   Expr
}

// FTContainsExpr is the full-text predicate of Figure 2:
// Expr ftcontains('k1' & 'k2' ...) — conjunctive with '&', disjunctive
// with '|'.
type FTContainsExpr struct {
	Target      Expr
	Keywords    []string
	Conjunctive bool
}

// Query is a parsed program: zero or more function declarations followed by
// a body expression.
type Query struct {
	Functions map[string]*FuncDecl
	Body      Expr
}

func (*DocExpr) exprNode()        {}
func (*VarExpr) exprNode()        {}
func (*DotExpr) exprNode()        {}
func (*StepExpr) exprNode()       {}
func (*FilterExpr) exprNode()     {}
func (*CmpExpr) exprNode()        {}
func (*LiteralExpr) exprNode()    {}
func (*CondExpr) exprNode()       {}
func (*FLWORExpr) exprNode()      {}
func (*ElementExpr) exprNode()    {}
func (*SeqExpr) exprNode()        {}
func (*CallExpr) exprNode()       {}
func (*FTContainsExpr) exprNode() {}

func (e *DocExpr) String() string { return "fn:doc(" + e.Name + ")" }
func (e *VarExpr) String() string { return "$" + e.Name }
func (*DotExpr) String() string   { return "." }

func (e *StepExpr) String() string {
	return e.Base.String() + pathindex.FormatSteps(e.Steps)
}

func (e *FilterExpr) String() string {
	return e.Base.String() + "[" + e.Pred.String() + "]"
}

func (e *CmpExpr) String() string {
	return e.Left.String() + " " + string(e.Op) + " " + e.Right.String()
}

func (e *LiteralExpr) String() string { return "'" + e.Value + "'" }

func (e *CondExpr) String() string {
	return "if " + e.Cond.String() + " then " + e.Then.String() + " else " + e.Else.String()
}

func (e *FLWORExpr) String() string {
	var b strings.Builder
	for _, c := range e.Clauses {
		if c.IsLet {
			b.WriteString("let $" + c.Var + " := " + c.In.String() + " ")
		} else {
			b.WriteString("for $" + c.Var + " in " + c.In.String() + " ")
		}
	}
	if e.Where != nil {
		b.WriteString("where " + e.Where.String() + " ")
	}
	b.WriteString("return " + e.Return.String())
	return b.String()
}

func (e *ElementExpr) String() string {
	var b strings.Builder
	b.WriteString("<" + e.Tag + ">")
	for _, c := range e.Children {
		b.WriteString("{" + c.String() + "}")
	}
	b.WriteString("</" + e.Tag + ">")
	return b.String()
}

func (e *SeqExpr) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

func (e *CallExpr) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return e.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (e *FTContainsExpr) String() string {
	sep := " & "
	if !e.Conjunctive {
		sep = " | "
	}
	quoted := make([]string, len(e.Keywords))
	for i, k := range e.Keywords {
		quoted[i] = "'" + k + "'"
	}
	return e.Target.String() + " ftcontains(" + strings.Join(quoted, sep) + ")"
}
