package xq

import (
	"fmt"
	"strings"

	"vxml/internal/pathindex"
	"vxml/internal/pred"
)

// Parse parses a complete program (function declarations followed by a body
// expression) in the supported grammar of Appendix A.
func Parse(input string) (*Query, error) {
	p := &parser{lex: newLexer(input), funcs: map[string]*FuncDecl{}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// ---------------------------------------------------------------- lexer --

type tokenKind int

const (
	tEOF tokenKind = iota
	tIdent
	tVar    // $name
	tString // 'lit' or "lit"
	tNumber
	tSlash   // /
	tDSlash  // //
	tLBrack  // [
	tRBrack  // ]
	tLParen  // (
	tRParen  // )
	tLBrace  // {
	tRBrace  // }
	tComma   // ,
	tDot     // .
	tEq      // =
	tLt      // <
	tGt      // >
	tAssign  // :=
	tAmp     // &
	tPipe    // |
	tLtSlash // </
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	input string
	pos   int
	toks  []token // small lookahead buffer
}

func newLexer(input string) *lexer { return &lexer{input: input} }

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '-' || c == ':'
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// XQuery comments (: ... :), possibly nested.
		if c == '(' && l.pos+1 < len(l.input) && l.input[l.pos+1] == ':' {
			depth := 1
			l.pos += 2
			for l.pos < len(l.input) && depth > 0 {
				if strings.HasPrefix(l.input[l.pos:], "(:") {
					depth++
					l.pos += 2
				} else if strings.HasPrefix(l.input[l.pos:], ":)") {
					depth--
					l.pos += 2
				} else {
					l.pos++
				}
			}
			continue
		}
		return
	}
}

func (l *lexer) scan() token {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.input) {
		return token{kind: tEOF, pos: start}
	}
	c := l.input[l.pos]
	switch {
	case c == '/':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '/' {
			l.pos += 2
			return token{tDSlash, "//", start}
		}
		l.pos++
		return token{tSlash, "/", start}
	case c == '<':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '/' {
			l.pos += 2
			return token{tLtSlash, "</", start}
		}
		l.pos++
		return token{tLt, "<", start}
	case c == ':':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{tAssign, ":=", start}
		}
		l.pos++
		return token{tIdent, ":", start} // lone colon; rejected by parser
	case c == '$':
		l.pos++
		s := l.pos
		for l.pos < len(l.input) && isIdentChar(l.input[l.pos]) {
			l.pos++
		}
		return token{tVar, l.input[s:l.pos], start}
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		s := l.pos
		for l.pos < len(l.input) && l.input[l.pos] != quote {
			l.pos++
		}
		text := l.input[s:l.pos]
		if l.pos < len(l.input) {
			l.pos++ // closing quote
		}
		return token{tString, text, start}
	case c >= '0' && c <= '9':
		s := l.pos
		for l.pos < len(l.input) && (l.input[l.pos] >= '0' && l.input[l.pos] <= '9' || l.input[l.pos] == '.') {
			// a trailing dot is a path dot, not part of the number
			if l.input[l.pos] == '.' &&
				(l.pos+1 >= len(l.input) || l.input[l.pos+1] < '0' || l.input[l.pos+1] > '9') {
				break
			}
			l.pos++
		}
		return token{tNumber, l.input[s:l.pos], start}
	case isIdentStart(c):
		s := l.pos
		for l.pos < len(l.input) && isIdentChar(l.input[l.pos]) {
			l.pos++
		}
		return token{tIdent, l.input[s:l.pos], start}
	}
	l.pos++
	switch c {
	case '[':
		return token{tLBrack, "[", start}
	case ']':
		return token{tRBrack, "]", start}
	case '(':
		return token{tLParen, "(", start}
	case ')':
		return token{tRParen, ")", start}
	case '{':
		return token{tLBrace, "{", start}
	case '}':
		return token{tRBrace, "}", start}
	case ',':
		return token{tComma, ",", start}
	case '.':
		return token{tDot, ".", start}
	case '=':
		return token{tEq, "=", start}
	case '>':
		return token{tGt, ">", start}
	case '&':
		return token{tAmp, "&", start}
	case '|':
		return token{tPipe, "|", start}
	}
	return token{tEOF, string(c), start}
}

// peek returns the i-th upcoming token without consuming it.
func (l *lexer) peek(i int) token {
	for len(l.toks) <= i {
		l.toks = append(l.toks, l.scan())
	}
	return l.toks[i]
}

// next consumes and returns the next token.
func (l *lexer) next() token {
	t := l.peek(0)
	l.toks = l.toks[1:]
	return t
}

// --------------------------------------------------------------- parser --

type parser struct {
	lex   *lexer
	funcs map[string]*FuncDecl
}

// ParseError reports a syntax error with the byte offset it was detected
// at, so callers (e.g. an HTTP API) can surface machine-readable
// diagnostics instead of matching message strings. Retrieve it with
// errors.As.
type ParseError struct {
	// Pos is the byte offset into the query text where parsing failed.
	Pos int
	// Msg describes what the parser expected or found.
	Msg string
}

// Error renders the historical message format ("xq: parse error at offset
// N: msg").
func (e *ParseError) Error() string {
	return fmt.Sprintf("xq: parse error at offset %d: %s", e.Pos, e.Msg)
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.lex.peek(0).pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t := p.lex.peek(0)
	if t.kind != kind {
		return t, p.errf("expected %s, found %s", what, t)
	}
	return p.lex.next(), nil
}

func (p *parser) isKeyword(kw string) bool {
	t := p.lex.peek(0)
	return t.kind == tIdent && t.text == kw
}

func (p *parser) parseQuery() (*Query, error) {
	for p.isKeyword("declare") {
		fd, err := p.parseFuncDecl()
		if err != nil {
			return nil, err
		}
		if _, dup := p.funcs[fd.Name]; dup {
			return nil, p.errf("duplicate function %q", fd.Name)
		}
		p.funcs[fd.Name] = fd
	}
	body, err := p.parseExprSequence()
	if err != nil {
		return nil, err
	}
	if t := p.lex.peek(0); t.kind != tEOF {
		return nil, p.errf("unexpected trailing input %s", t)
	}
	return &Query{Functions: p.funcs, Body: body}, nil
}

func (p *parser) parseFuncDecl() (*FuncDecl, error) {
	p.lex.next() // declare
	if !p.isKeyword("function") {
		return nil, p.errf("expected 'function' after 'declare'")
	}
	p.lex.next()
	name, err := p.expect(tIdent, "function name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tLParen, "'('"); err != nil {
		return nil, err
	}
	var params []string
	for p.lex.peek(0).kind == tVar {
		params = append(params, p.lex.next().text)
		if p.lex.peek(0).kind == tComma {
			p.lex.next()
		}
	}
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tLBrace, "'{'"); err != nil {
		return nil, err
	}
	body, err := p.parseExprSequence()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRBrace, "'}'"); err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.text, Params: params, Body: body}, nil
}

// parseExprSequence parses Expr (',' Expr)*.
func (p *parser) parseExprSequence() (Expr, error) {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.lex.peek(0).kind != tComma {
		return first, nil
	}
	items := []Expr{first}
	for p.lex.peek(0).kind == tComma {
		p.lex.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &SeqExpr{Items: items}, nil
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.lex.peek(0)
	switch {
	case t.kind == tIdent && (t.text == "for" || t.text == "let"):
		return p.parseFLWOR()
	case t.kind == tIdent && t.text == "if":
		return p.parseCond()
	case t.kind == tLt:
		return p.parseElementCtor()
	default:
		return p.parsePath()
	}
}

func (p *parser) parseFLWOR() (Expr, error) {
	fl := &FLWORExpr{}
	for {
		t := p.lex.peek(0)
		if t.kind != tIdent || (t.text != "for" && t.text != "let") {
			break
		}
		p.lex.next()
		isLet := t.text == "let"
		v, err := p.expect(tVar, "variable")
		if err != nil {
			return nil, err
		}
		// 'for $v in e'; 'let $v := e' (the paper's grammar also writes
		// 'let $v in e', which we accept).
		bind := p.lex.peek(0)
		switch {
		case bind.kind == tAssign:
			p.lex.next()
		case bind.kind == tIdent && bind.text == "in":
			p.lex.next()
		default:
			return nil, p.errf("expected 'in' or ':=' after $%s", v.text)
		}
		in, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fl.Clauses = append(fl.Clauses, ForLetClause{IsLet: isLet, Var: v.text, In: in})
	}
	if len(fl.Clauses) == 0 {
		return nil, p.errf("FLWOR requires at least one for/let clause")
	}
	if p.isKeyword("where") {
		p.lex.next()
		w, err := p.parsePred()
		if err != nil {
			return nil, err
		}
		fl.Where = w
	}
	if !p.isKeyword("return") {
		return nil, p.errf("expected 'return', found %s", p.lex.peek(0))
	}
	p.lex.next()
	ret, err := p.parseReturnExpr()
	if err != nil {
		return nil, err
	}
	fl.Return = ret
	return fl, nil
}

// parseReturnExpr parses RetExpr: an expression, an element constructor, or
// a comma sequence of these.
func (p *parser) parseReturnExpr() (Expr, error) {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.lex.peek(0).kind != tComma {
		return first, nil
	}
	items := []Expr{first}
	for p.lex.peek(0).kind == tComma {
		p.lex.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	return &SeqExpr{Items: items}, nil
}

func (p *parser) parseCond() (Expr, error) {
	p.lex.next() // if
	cond, err := p.parsePred()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("then") {
		return nil, p.errf("expected 'then'")
	}
	p.lex.next()
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.isKeyword("else") {
		return nil, p.errf("expected 'else'")
	}
	p.lex.next()
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &CondExpr{Cond: cond, Then: then, Else: els}, nil
}

// parseElementCtor parses '<tag>' children '</tag>'. Children are brace
// expressions and nested constructors, optionally comma-separated as in the
// paper's Figure 2.
func (p *parser) parseElementCtor() (Expr, error) {
	if _, err := p.expect(tLt, "'<'"); err != nil {
		return nil, err
	}
	tag, err := p.expect(tIdent, "tag name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tGt, "'>'"); err != nil {
		return nil, err
	}
	ctor := &ElementExpr{Tag: tag.text}
	for {
		t := p.lex.peek(0)
		switch t.kind {
		case tLBrace:
			p.lex.next()
			e, err := p.parseExprSequence()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrace, "'}'"); err != nil {
				return nil, err
			}
			ctor.Children = append(ctor.Children, e)
		case tLt:
			e, err := p.parseElementCtor()
			if err != nil {
				return nil, err
			}
			ctor.Children = append(ctor.Children, e)
		case tComma:
			p.lex.next() // separators between children, as in Figure 2
		case tLtSlash:
			p.lex.next()
			closeTag, err := p.expect(tIdent, "closing tag name")
			if err != nil {
				return nil, err
			}
			if closeTag.text != tag.text {
				return nil, p.errf("mismatched closing tag </%s> for <%s>", closeTag.text, tag.text)
			}
			if _, err := p.expect(tGt, "'>'"); err != nil {
				return nil, err
			}
			return ctor, nil
		default:
			return nil, p.errf("unexpected %s inside <%s> constructor", t, tag.text)
		}
	}
}

// parsePred parses PredExpr: PathExpr, PathExpr Comp (Literal|PathExpr), or
// Expr ftcontains('k' & 'k' ...).
func (p *parser) parsePred() (Expr, error) {
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	t := p.lex.peek(0)
	switch {
	case t.kind == tEq || t.kind == tLt || t.kind == tGt:
		p.lex.next()
		var op pred.Op
		switch t.kind {
		case tEq:
			op = pred.Eq
		case tLt:
			op = pred.Lt
		default:
			op = pred.Gt
		}
		right, err := p.parseComparand()
		if err != nil {
			return nil, err
		}
		return &CmpExpr{Left: left, Op: op, Right: right}, nil
	case t.kind == tIdent && t.text == "ftcontains":
		p.lex.next()
		return p.parseFTContains(left)
	}
	return left, nil
}

func (p *parser) parseComparand() (Expr, error) {
	t := p.lex.peek(0)
	if t.kind == tString || t.kind == tNumber {
		p.lex.next()
		return &LiteralExpr{Value: t.text}, nil
	}
	return p.parsePath()
}

func (p *parser) parseFTContains(target Expr) (Expr, error) {
	if _, err := p.expect(tLParen, "'(' after ftcontains"); err != nil {
		return nil, err
	}
	ft := &FTContainsExpr{Target: target, Conjunctive: true}
	sawPipe, sawAmp := false, false
	for {
		kw, err := p.expect(tString, "quoted keyword")
		if err != nil {
			return nil, err
		}
		ft.Keywords = append(ft.Keywords, strings.ToLower(kw.text))
		t := p.lex.peek(0)
		if t.kind == tAmp {
			sawAmp = true
			p.lex.next()
			continue
		}
		if t.kind == tPipe {
			sawPipe = true
			p.lex.next()
			continue
		}
		break
	}
	if sawAmp && sawPipe {
		return nil, p.errf("ftcontains cannot mix '&' and '|'")
	}
	ft.Conjunctive = !sawPipe
	if _, err := p.expect(tRParen, "')'"); err != nil {
		return nil, err
	}
	return ft, nil
}

// parsePath parses PathExpr (with filters) and function calls.
func (p *parser) parsePath() (Expr, error) {
	base, err := p.parsePathBase()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lex.peek(0)
		switch t.kind {
		case tSlash, tDSlash:
			var steps []pathindex.Step
			for {
				t := p.lex.peek(0)
				if t.kind != tSlash && t.kind != tDSlash {
					break
				}
				p.lex.next()
				axis := pathindex.Child
				if t.kind == tDSlash {
					axis = pathindex.Descendant
				}
				tag, err := p.expect(tIdent, "tag name after "+t.text)
				if err != nil {
					return nil, err
				}
				if isReservedWord(tag.text) {
					return nil, p.errf("reserved word %q used as tag name", tag.text)
				}
				steps = append(steps, pathindex.Step{Axis: axis, Tag: tag.text})
			}
			base = &StepExpr{Base: base, Steps: steps}
		case tLBrack:
			p.lex.next()
			cond, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRBrack, "']'"); err != nil {
				return nil, err
			}
			base = &FilterExpr{Base: base, Pred: cond}
		default:
			return base, nil
		}
	}
}

func isReservedWord(s string) bool {
	switch s {
	case "for", "let", "in", "where", "return", "if", "then", "else",
		"declare", "function", "ftcontains":
		return true
	}
	return false
}

func (p *parser) parsePathBase() (Expr, error) {
	t := p.lex.peek(0)
	switch t.kind {
	case tVar:
		p.lex.next()
		return &VarExpr{Name: t.text}, nil
	case tDot:
		p.lex.next()
		return &DotExpr{}, nil
	case tString, tNumber:
		p.lex.next()
		return &LiteralExpr{Value: t.text}, nil
	case tLParen:
		p.lex.next()
		if p.lex.peek(0).kind == tRParen { // '()' empty sequence
			p.lex.next()
			return &SeqExpr{}, nil
		}
		e, err := p.parseExprSequence()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tIdent:
		if isReservedWord(t.text) {
			return nil, p.errf("unexpected keyword %q", t.text)
		}
		if t.text == "fn:doc" || t.text == "doc" || t.text == "fn:collection" {
			p.lex.next()
			if _, err := p.expect(tLParen, "'('"); err != nil {
				return nil, err
			}
			name, err := p.parseDocName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tRParen, "')'"); err != nil {
				return nil, err
			}
			return &DocExpr{Name: name}, nil
		}
		if p.lex.peek(1).kind == tLParen { // function call
			p.lex.next()
			p.lex.next() // '('
			call := &CallExpr{Name: t.text}
			for p.lex.peek(0).kind != tRParen {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.lex.peek(0).kind == tComma {
					p.lex.next()
				}
			}
			p.lex.next() // ')'
			return call, nil
		}
		// Bare tag name: shorthand for a child step off the context item,
		// e.g. the predicate [year > 1995] meaning [./year > 1995].
		p.lex.next()
		return &StepExpr{Base: &DotExpr{}, Steps: []pathindex.Step{{Axis: pathindex.Child, Tag: t.text}}}, nil
	}
	return nil, p.errf("unexpected %s at start of path expression", t)
}

// parseDocName reads a document name, which may be quoted or a bare name
// containing dots such as books.xml.
func (p *parser) parseDocName() (string, error) {
	t := p.lex.peek(0)
	if t.kind == tString {
		p.lex.next()
		return t.text, nil
	}
	// bare name: identifiers, dots and numbers until ')'
	var parts []string
	for {
		t := p.lex.peek(0)
		if t.kind == tRParen || t.kind == tEOF {
			break
		}
		if t.kind != tIdent && t.kind != tDot && t.kind != tNumber {
			return "", p.errf("invalid document name token %s", t)
		}
		p.lex.next()
		parts = append(parts, t.text)
	}
	if len(parts) == 0 {
		return "", p.errf("empty document name")
	}
	return strings.Join(parts, ""), nil
}
