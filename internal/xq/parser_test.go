package xq

import (
	"strings"
	"testing"

	"vxml/internal/pathindex"
	"vxml/internal/pred"
)

// figure2Query is the paper's running example (Figure 2).
const figure2Query = `
let $view :=
  for $book in fn:doc(books.xml)/books//book
  where $book/year > 1995
  return <bookrevs>
           <book> {$book/title} </book>,
           {for $rev in fn:doc(reviews.xml)/reviews//review
            where $rev/isbn = $book/isbn
            return $rev/content}
         </bookrevs>
for $bookrev in $view
where $bookrev ftcontains('XML' & 'Search')
return $bookrev`

func TestParseFigure2(t *testing.T) {
	q, err := Parse(figure2Query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fl, ok := q.Body.(*FLWORExpr)
	if !ok {
		t.Fatalf("body is %T", q.Body)
	}
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(fl.Clauses))
	}
	if !fl.Clauses[0].IsLet || fl.Clauses[0].Var != "view" {
		t.Errorf("first clause = %+v", fl.Clauses[0])
	}
	if fl.Clauses[1].IsLet || fl.Clauses[1].Var != "bookrev" {
		t.Errorf("second clause = %+v", fl.Clauses[1])
	}
	ft, ok := fl.Where.(*FTContainsExpr)
	if !ok {
		t.Fatalf("where is %T", fl.Where)
	}
	if len(ft.Keywords) != 2 || ft.Keywords[0] != "xml" || ft.Keywords[1] != "search" {
		t.Errorf("keywords = %v", ft.Keywords)
	}
	if !ft.Conjunctive {
		t.Error("'&' should be conjunctive")
	}
	// inner view
	view, ok := fl.Clauses[0].In.(*FLWORExpr)
	if !ok {
		t.Fatalf("view binding is %T", fl.Clauses[0].In)
	}
	cmp, ok := view.Where.(*CmpExpr)
	if !ok || cmp.Op != pred.Gt {
		t.Fatalf("view where = %+v", view.Where)
	}
	ctor, ok := view.Return.(*ElementExpr)
	if !ok || ctor.Tag != "bookrevs" {
		t.Fatalf("view return = %+v", view.Return)
	}
	if len(ctor.Children) != 2 {
		t.Fatalf("bookrevs children = %d", len(ctor.Children))
	}
	if inner, ok := ctor.Children[1].(*FLWORExpr); !ok {
		t.Errorf("second child should be the review FLWOR, got %T", ctor.Children[1])
	} else if join, ok := inner.Where.(*CmpExpr); !ok || join.Op != pred.Eq {
		t.Errorf("review where = %+v", inner.Where)
	}
}

func TestParsePathForms(t *testing.T) {
	cases := map[string]string{
		"fn:doc(books.xml)/books//book/isbn": "fn:doc(books.xml)/books//book/isbn",
		"$x/a/b":                             "$x/a/b",
		"fn:doc('books.xml')//book":          "fn:doc(books.xml)//book",
		".":                                  ".",
		"./year":                             "./year",
	}
	for in, want := range cases {
		q, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got := q.Body.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestParseFilterWithPredicates(t *testing.T) {
	q := MustParse("fn:doc(b.xml)/books/book[year > 1995]/title")
	// StepExpr(FilterExpr(StepExpr(doc)))
	outer, ok := q.Body.(*StepExpr)
	if !ok || len(outer.Steps) != 1 || outer.Steps[0].Tag != "title" {
		t.Fatalf("outer = %+v", q.Body)
	}
	filter, ok := outer.Base.(*FilterExpr)
	if !ok {
		t.Fatalf("filter = %T", outer.Base)
	}
	cmp, ok := filter.Pred.(*CmpExpr)
	if !ok || cmp.Op != pred.Gt {
		t.Fatalf("pred = %+v", filter.Pred)
	}
	if lit, ok := cmp.Right.(*LiteralExpr); !ok || lit.Value != "1995" {
		t.Errorf("literal = %+v", cmp.Right)
	}
	// bare tag in predicate means ./tag
	step, ok := cmp.Left.(*StepExpr)
	if !ok || len(step.Steps) != 1 || step.Steps[0].Tag != "year" {
		t.Fatalf("pred left = %+v", cmp.Left)
	}
	if _, ok := step.Base.(*DotExpr); !ok {
		t.Errorf("bare tag should be relative to '.'")
	}
}

func TestParseExistencePredicate(t *testing.T) {
	q := MustParse("fn:doc(b.xml)/books/book[isbn]")
	filter := q.Body.(*FilterExpr)
	if _, ok := filter.Pred.(*StepExpr); !ok {
		t.Errorf("existence pred = %T", filter.Pred)
	}
}

func TestParseFunctionDecl(t *testing.T) {
	q := MustParse(`
declare function reviewsFor($isbn) {
  for $r in fn:doc(reviews.xml)/reviews//review
  where $r/isbn = $isbn
  return $r/content
}
for $b in fn:doc(books.xml)/books//book
return <entry>{$b/title}{reviewsFor($b/isbn)}</entry>`)
	fd := q.Functions["reviewsFor"]
	if fd == nil {
		t.Fatal("function not registered")
	}
	if len(fd.Params) != 1 || fd.Params[0] != "isbn" {
		t.Errorf("params = %v", fd.Params)
	}
	fl := q.Body.(*FLWORExpr)
	ctor := fl.Return.(*ElementExpr)
	if call, ok := ctor.Children[1].(*CallExpr); !ok || call.Name != "reviewsFor" {
		t.Errorf("call = %+v", ctor.Children[1])
	}
}

func TestParseCondExpr(t *testing.T) {
	q := MustParse("if $x/year > 2000 then $x/title else $x/isbn")
	cond := q.Body.(*CondExpr)
	if _, ok := cond.Cond.(*CmpExpr); !ok {
		t.Errorf("cond = %T", cond.Cond)
	}
}

func TestParseDisjunctiveFT(t *testing.T) {
	q := MustParse("for $v in $view where $v ftcontains('a' | 'b' | 'c') return $v")
	ft := q.Body.(*FLWORExpr).Where.(*FTContainsExpr)
	if ft.Conjunctive {
		t.Error("'|' should be disjunctive")
	}
	if len(ft.Keywords) != 3 {
		t.Errorf("keywords = %v", ft.Keywords)
	}
}

func TestParseSequenceReturn(t *testing.T) {
	q := MustParse("for $b in fn:doc(b.xml)/books/book return $b/title, $b/year")
	fl := q.Body.(*FLWORExpr)
	seq, ok := fl.Return.(*SeqExpr)
	if !ok || len(seq.Items) != 2 {
		t.Fatalf("return = %+v", fl.Return)
	}
}

func TestParseNestedConstructors(t *testing.T) {
	q := MustParse("for $b in fn:doc(b.xml)/books/book return <a><b>{$b/title}</b><c>{$b/year}</c></a>")
	ctor := q.Body.(*FLWORExpr).Return.(*ElementExpr)
	if len(ctor.Children) != 2 {
		t.Fatalf("children = %d", len(ctor.Children))
	}
	if inner, ok := ctor.Children[0].(*ElementExpr); !ok || inner.Tag != "b" {
		t.Errorf("first child = %+v", ctor.Children[0])
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse("(: a comment (: nested :) :) fn:doc(b.xml)/books")
	if _, ok := q.Body.(*StepExpr); !ok {
		t.Errorf("body = %T", q.Body)
	}
}

func TestParseLetIn(t *testing.T) {
	// the paper's grammar writes LetClause with 'in'
	q := MustParse("let $x in fn:doc(b.xml)/books return $x")
	if !q.Body.(*FLWORExpr).Clauses[0].IsLet {
		t.Error("let clause not recognized")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"for $x return $x",               // missing in
		"for $x in fn:doc(a.xml)/a",      // missing return
		"<a>{$x}</b>",                    // mismatched tags
		"fn:doc(a.xml)/a[",               // unterminated filter
		"$v ftcontains('a' & 'b' | 'c')", // mixed connectives
		"declare function f($x) { $x } $y trailing", // trailing tokens
		"fn:doc(a.xml)/for",                         // reserved word as tag
		"for $x in fn:doc(a.xml)/a return $x extra",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): expected error", in)
		}
	}
}

func TestStringRoundTripStable(t *testing.T) {
	// String() output must reparse to the same String().
	inputs := []string{
		figure2Query,
		"fn:doc(b.xml)/books/book[year > 1995]/title",
		"for $b in fn:doc(b.xml)/books/book return <a><b>{$b/title}</b></a>",
		"if $x/a > 3 then $x/b else $x/c",
	}
	for _, in := range inputs {
		q1, err := Parse(in)
		if err != nil {
			t.Fatalf("parse %q: %v", in, err)
		}
		s1 := q1.Body.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := q2.Body.String(); s1 != s2 {
			t.Errorf("String round trip unstable:\n%s\nvs\n%s", s1, s2)
		}
	}
}

func TestStepsRendering(t *testing.T) {
	q := MustParse("fn:doc(b.xml)/books//book")
	se := q.Body.(*StepExpr)
	if got := pathindex.FormatSteps(se.Steps); got != "/books//book" {
		t.Errorf("steps = %q", got)
	}
	if !strings.Contains(q.Body.String(), "//book") {
		t.Errorf("String = %q", q.Body.String())
	}
}
