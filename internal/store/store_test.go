package store

import (
	"errors"
	"testing"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

const booksXML = `<books><book><isbn>111</isbn><title>XML Web Services</title></book></books>`
const reviewsXML = `<reviews><review><isbn>111</isbn><content>about search</content></review></reviews>`

func newStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	if _, err := s.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDocIDsAssignedSequentially(t *testing.T) {
	s := newStore(t)
	if s.Doc("books.xml").DocID != 1 || s.Doc("reviews.xml").DocID != 2 {
		t.Errorf("doc IDs: %d, %d", s.Doc("books.xml").DocID, s.Doc("reviews.xml").DocID)
	}
	if s.DocByID(2).Name != "reviews.xml" {
		t.Error("DocByID(2) wrong")
	}
	if s.NextDocID() != 3 {
		t.Errorf("NextDocID = %d", s.NextDocID())
	}
}

func TestDocsOrdered(t *testing.T) {
	s := newStore(t)
	docs := s.Docs()
	if len(docs) != 2 || docs[0].Name != "books.xml" || docs[1].Name != "reviews.xml" {
		t.Errorf("Docs() = %v", docs)
	}
}

func TestSubtreeFetchCounted(t *testing.T) {
	s := newStore(t)
	n := s.Subtree(dewey.MustParse("2.1.2"))
	if n == nil || n.Tag != "content" {
		t.Fatalf("Subtree = %v", n)
	}
	if s.SubtreeFetches() != 1 || s.BytesFetched() != n.ByteLen {
		t.Errorf("counters: %d fetches, %d bytes", s.SubtreeFetches(), s.BytesFetched())
	}
	if s.Subtree(dewey.MustParse("9.1")) != nil {
		t.Error("unknown doc should return nil")
	}
	if s.Subtree(nil) != nil {
		t.Error("empty ID should return nil")
	}
	s.ResetCounters()
	if s.SubtreeFetches() != 0 || s.BytesFetched() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestValue(t *testing.T) {
	s := newStore(t)
	v, ok := s.Value(dewey.MustParse("1.1.1"))
	if !ok || v != "111" {
		t.Errorf("Value = %q, %v", v, ok)
	}
	if _, ok := s.Value(dewey.MustParse("1.1.9")); ok {
		t.Error("missing element should not have a value")
	}
}

func TestAddParsed(t *testing.T) {
	s := newStore(t)
	root := xmltree.NewElement("r")
	root.AppendLeaf("x", "hello")
	doc := s.AddParsed(&xmltree.Document{Name: "extra.xml", Root: root})
	if doc.DocID != 3 {
		t.Errorf("DocID = %d", doc.DocID)
	}
	if got := doc.Root.Children[0].ID.String(); got != "3.1" {
		t.Errorf("child ID = %q", got)
	}
}

func TestDuplicateName(t *testing.T) {
	s := newStore(t)
	if _, err := s.AddXML("books.xml", booksXML); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("AddXML duplicate: err = %v, want ErrDuplicateName", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate AddParsed name")
		}
	}()
	root := xmltree.NewElement("r")
	s.AddParsed(&xmltree.Document{Name: "books.xml", Root: root})
}

func TestTotalBytes(t *testing.T) {
	s := newStore(t)
	want := s.Doc("books.xml").Root.ByteLen + s.Doc("reviews.xml").Root.ByteLen
	if got := s.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

func TestShardingInvariants(t *testing.T) {
	s := NewSharded(4)
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d, want 4", s.ShardCount())
	}
	names := []string{"part-0.xml", "part-1.xml", "part-2.xml", "part-3.xml", "part-4.xml", "other.xml"}
	for i, name := range names {
		if _, err := s.AddXML(name, "<d><v>"+name+"</v></d>"); err != nil {
			t.Fatal(err)
		}
		if got := s.Doc(name); got == nil || got.DocID != int32(i+1) {
			t.Fatalf("doc %q not registered with sequential ID", name)
		}
	}
	// Hash assignment is stable and per-shard counters add up.
	docs, bytes := 0, 0
	for _, info := range s.ShardInfos() {
		docs += info.Documents
		bytes += info.Bytes
	}
	if docs != len(names) || bytes != s.TotalBytes() {
		t.Fatalf("shard counters (%d docs, %d bytes) vs corpus (%d docs, %d bytes)", docs, bytes, len(names), s.TotalBytes())
	}
	for _, name := range names {
		sh := s.ShardOf(name)
		if sh < 0 || sh >= 4 || sh != s.ShardOf(name) {
			t.Fatalf("ShardOf(%q) unstable or out of range", name)
		}
	}
	// DocsMatching returns pattern matches in document ID order.
	matched := s.DocsMatching("part-*")
	if len(matched) != 5 {
		t.Fatalf("DocsMatching(part-*) = %d docs, want 5", len(matched))
	}
	for i := 1; i < len(matched); i++ {
		if matched[i-1].DocID >= matched[i].DocID {
			t.Fatalf("DocsMatching not in document ID order")
		}
	}
	if got := s.DocsMatching("other.xml"); len(got) != 1 || got[0].Name != "other.xml" {
		t.Fatalf("DocsMatching(exact) = %v", got)
	}
	if got := s.DocsMatching("missing-*"); len(got) != 0 {
		t.Fatalf("DocsMatching(missing-*) = %v, want empty", got)
	}
	// Docs() remains insertion-ordered across shards.
	all := s.Docs()
	for i := range all {
		if all[i].DocID != int32(i+1) {
			t.Fatalf("Docs() out of insertion order: %v", all[i])
		}
	}
}

func TestDocByIDLockFreeAcrossShards(t *testing.T) {
	s := NewSharded(3)
	doc, err := s.AddXML("a.xml", "<a><b>x</b></a>")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.DocByID(doc.DocID); got != doc {
		t.Fatalf("DocByID(%d) = %v", doc.DocID, got)
	}
	if got := s.DocByID(99); got != nil {
		t.Fatalf("DocByID(unknown) = %v, want nil", got)
	}
}
