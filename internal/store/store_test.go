package store

import (
	"errors"
	"testing"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

const booksXML = `<books><book><isbn>111</isbn><title>XML Web Services</title></book></books>`
const reviewsXML = `<reviews><review><isbn>111</isbn><content>about search</content></review></reviews>`

func newStore(t *testing.T) *Store {
	t.Helper()
	s := New()
	if _, err := s.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDocIDsAssignedSequentially(t *testing.T) {
	s := newStore(t)
	if s.Doc("books.xml").DocID != 1 || s.Doc("reviews.xml").DocID != 2 {
		t.Errorf("doc IDs: %d, %d", s.Doc("books.xml").DocID, s.Doc("reviews.xml").DocID)
	}
	if s.DocByID(2).Name != "reviews.xml" {
		t.Error("DocByID(2) wrong")
	}
	if s.NextDocID() != 3 {
		t.Errorf("NextDocID = %d", s.NextDocID())
	}
}

func TestDocsOrdered(t *testing.T) {
	s := newStore(t)
	docs := s.Docs()
	if len(docs) != 2 || docs[0].Name != "books.xml" || docs[1].Name != "reviews.xml" {
		t.Errorf("Docs() = %v", docs)
	}
}

func TestSubtreeFetchCounted(t *testing.T) {
	s := newStore(t)
	n := s.Subtree(dewey.MustParse("2.1.2"))
	if n == nil || n.Tag != "content" {
		t.Fatalf("Subtree = %v", n)
	}
	if s.SubtreeFetches() != 1 || s.BytesFetched() != n.ByteLen {
		t.Errorf("counters: %d fetches, %d bytes", s.SubtreeFetches(), s.BytesFetched())
	}
	if s.Subtree(dewey.MustParse("9.1")) != nil {
		t.Error("unknown doc should return nil")
	}
	if s.Subtree(nil) != nil {
		t.Error("empty ID should return nil")
	}
	s.ResetCounters()
	if s.SubtreeFetches() != 0 || s.BytesFetched() != 0 {
		t.Error("ResetCounters failed")
	}
}

func TestValue(t *testing.T) {
	s := newStore(t)
	v, ok := s.Value(dewey.MustParse("1.1.1"))
	if !ok || v != "111" {
		t.Errorf("Value = %q, %v", v, ok)
	}
	if _, ok := s.Value(dewey.MustParse("1.1.9")); ok {
		t.Error("missing element should not have a value")
	}
}

func TestAddParsed(t *testing.T) {
	s := newStore(t)
	root := xmltree.NewElement("r")
	root.AppendLeaf("x", "hello")
	doc := s.AddParsed(&xmltree.Document{Name: "extra.xml", Root: root})
	if doc.DocID != 3 {
		t.Errorf("DocID = %d", doc.DocID)
	}
	if got := doc.Root.Children[0].ID.String(); got != "3.1" {
		t.Errorf("child ID = %q", got)
	}
}

func TestDuplicateName(t *testing.T) {
	s := newStore(t)
	if _, err := s.AddXML("books.xml", booksXML); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("AddXML duplicate: err = %v, want ErrDuplicateName", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate AddParsed name")
		}
	}()
	root := xmltree.NewElement("r")
	s.AddParsed(&xmltree.Document{Name: "books.xml", Root: root})
}

func TestTotalBytes(t *testing.T) {
	s := newStore(t)
	want := s.Doc("books.xml").Root.ByteLen + s.Doc("reviews.xml").Root.ByteLen
	if got := s.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}
