package store

import (
	"hash/fnv"
	"sort"

	"vxml/internal/dewey"
	"vxml/internal/docname"
	"vxml/internal/xmltree"
)

// DocInfo is the metadata the planning layers need about a stored document
// without hydrating its tree: existence checks, shard routing, corpus
// enumeration and size accounting. On the heap backend it is a cheap
// projection of the in-memory document; on the disk backend it is read from
// the manifest alone, so planning a search never pages base data in.
type DocInfo struct {
	Name  string
	DocID int32
	// Bytes is the serialized byte length of the document (Root.ByteLen).
	Bytes int
}

// Corpus is the storage seam the engine and every comparator pipeline run
// against. *Store (the heap backend) satisfies it directly; the disk
// backend in internal/diskstore satisfies it over a block file. The
// contract mirrors Store's documented behavior exactly — document IDs,
// shard assignment, tombstone semantics for pinned readers, and the
// fetch counters — so the two backends are interchangeable under the
// byte-identity oracle suites.
//
// Tree-returning methods (Doc, Docs, DocsMatching, Subtree) may hydrate
// lazily on a disk backend; the Info methods never do. Planning code
// should prefer Info/Infos/InfoByID for existence and routing checks.
type Corpus interface {
	// Shard topology. Shard assignment is a pure function of name and
	// shard count (ShardIndex), so both backends route identically.
	ShardCount() int
	ShardOf(name string) int
	ShardInfos() []ShardInfo
	Mutations() int

	// Document ID sequence.
	NextDocID() int32
	ReserveID() int32
	EnsureNextID(id int32)

	// Lifecycle. RegisterParsed and ReplaceParsed take documents with
	// reserved IDs; Delete tombstones for pinned readers.
	RegisterParsed(doc *xmltree.Document) error
	ReplaceParsed(doc *xmltree.Document) error
	Delete(name string) error

	// Pin/Unpin bracket lock-free read epochs: replaced and deleted
	// documents stay resolvable by Dewey ID until the last reader unpins.
	// Tombstones reports how many retired documents are being retained
	// for such readers (diagnostics and tests).
	Pin()
	Unpin()
	Tombstones() int

	// Metadata lookups (never hydrate).
	Info(name string) (DocInfo, bool)
	InfoByID(docID int32) (DocInfo, bool)
	Infos() []DocInfo
	InfosMatching(pattern string) []DocInfo

	// Tree lookups (may hydrate on a disk backend).
	Doc(name string) *xmltree.Document
	Docs() []*xmltree.Document
	DocsMatching(pattern string) []*xmltree.Document

	// Base-data access (counted).
	Subtree(id dewey.ID) *xmltree.Node
	Value(id dewey.ID) (string, bool)
	SubtreeFetches() int
	BytesFetched() int
	ResetCounters()

	// Size accounting and persistence.
	TotalBytes() int
	Save(dir string) error
}

// ShardIndex returns the shard a document name hashes to among n shards.
// This is the one shard-assignment function: both backends and the cluster
// router call it (directly or through ShardOf), so a corpus saved from one
// backend and opened by the other keeps every document on the same shard.
func ShardIndex(name string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(name)) //nolint:errcheck
	return int(h.Sum32() % uint32(n))
}

// Info returns the metadata of the document registered under name.
func (s *Store) Info(name string) (DocInfo, bool) {
	if d := s.Doc(name); d != nil {
		return infoOf(d), true
	}
	return DocInfo{}, false
}

// InfoByID returns the metadata of the document whose Dewey IDs start with
// docID. Like DocByID it resolves tombstoned documents for as long as a
// pinned reader may hold their IDs.
func (s *Store) InfoByID(docID int32) (DocInfo, bool) {
	if d := s.DocByID(docID); d != nil {
		return infoOf(d), true
	}
	return DocInfo{}, false
}

// Infos returns the metadata of all documents in document ID order.
func (s *Store) Infos() []DocInfo {
	var out []DocInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, d := range sh.byName {
			out = append(out, infoOf(d))
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

// InfosMatching returns the metadata of documents whose names match the
// pattern (docname.Match) in document ID order.
func (s *Store) InfosMatching(pattern string) []DocInfo {
	if !docname.IsPattern(pattern) {
		if info, ok := s.Info(pattern); ok {
			return []DocInfo{info}
		}
		return nil
	}
	var out []DocInfo
	for _, sh := range s.shards {
		sh.mu.RLock()
		for name, d := range sh.byName {
			if docname.Match(pattern, name) {
				out = append(out, infoOf(d))
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DocID < out[j].DocID })
	return out
}

func infoOf(d *xmltree.Document) DocInfo {
	info := DocInfo{Name: d.Name, DocID: d.DocID}
	if d.Root != nil {
		info.Bytes = d.Root.ByteLen
	}
	return info
}

// compile-time check: the heap backend satisfies the storage seam.
var _ Corpus = (*Store)(nil)
