package store

import (
	"errors"
	"fmt"
	"testing"

	"vxml/internal/dewey"
)

func TestReplaceXML(t *testing.T) {
	s := New()
	old, err := s.AddXML("a.xml", "<a><t>old text</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	repl, err := s.ReplaceXML("a.xml", "<a><t>new text</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	if repl.DocID == old.DocID {
		t.Fatalf("replacement reused document ID %d", old.DocID)
	}
	if got := s.Doc("a.xml"); got != repl {
		t.Fatalf("Doc resolves to %v, want replacement", got)
	}
	if docs := s.Docs(); len(docs) != 1 || docs[0] != repl {
		t.Fatalf("Docs = %v", docs)
	}
	if got := s.TotalBytes(); got != repl.Root.ByteLen {
		t.Errorf("TotalBytes = %d, want %d (old document's bytes still counted?)", got, repl.Root.ByteLen)
	}
	if s.Mutations() != 1 {
		t.Errorf("Mutations = %d, want 1", s.Mutations())
	}
}

func TestReplaceUnknownName(t *testing.T) {
	s := New()
	if _, err := s.ReplaceXML("absent.xml", "<a/>"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("err = %v, want ErrUnknownName", err)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	doc, err := s.AddXML("a.xml", "<a><t>text</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddXML("b.xml", "<b><t>more</t></b>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a.xml"); err != nil {
		t.Fatal(err)
	}
	if s.Doc("a.xml") != nil {
		t.Error("deleted document still resolvable by name")
	}
	if docs := s.Docs(); len(docs) != 1 || docs[0].Name != "b.xml" {
		t.Errorf("Docs = %v", docs)
	}
	if got := s.DocsMatching("*.xml"); len(got) != 1 {
		t.Errorf("DocsMatching still sees %d docs", len(got))
	}
	if s.DocByID(doc.DocID) != nil {
		t.Error("deleted document's ID entry not swept with no pinned readers")
	}
	if err := s.Delete("a.xml"); !errors.Is(err, ErrUnknownName) {
		t.Fatalf("double delete err = %v, want ErrUnknownName", err)
	}
	// The name is free again: re-adding succeeds with a fresh ID.
	if _, err := s.AddXML("a.xml", "<a><t>again</t></a>"); err != nil {
		t.Fatalf("re-add after delete: %v", err)
	}
}

func TestTombstonesSurviveUntilUnpin(t *testing.T) {
	s := New()
	doc, err := s.AddXML("a.xml", "<a><t>pinned text</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	id := doc.Root.Children[0].ID
	s.Pin()
	if err := s.Delete("a.xml"); err != nil {
		t.Fatal(err)
	}
	// A reader that planned before the delete keeps resolving the subtree.
	if n := s.Subtree(id); n == nil || n.Value != "pinned text" {
		t.Fatalf("pinned Subtree = %v, want old subtree", n)
	}
	if s.Tombstones() != 1 {
		t.Errorf("Tombstones = %d, want 1", s.Tombstones())
	}
	// Name lookups — what any new search plans from — already miss.
	if s.Doc("a.xml") != nil || len(s.DocsMatching("*")) != 0 {
		t.Error("deleted document still visible to name lookups while pinned")
	}
	s.Unpin()
	if s.Subtree(id) != nil {
		t.Error("tombstone not swept after last reader unpinned")
	}
	if s.Tombstones() != 0 {
		t.Errorf("Tombstones = %d after sweep, want 0", s.Tombstones())
	}
}

func TestReplaceTombstonesOldSubtree(t *testing.T) {
	s := New()
	old, err := s.AddXML("a.xml", "<a><t>old</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	oldID := old.Root.Children[0].ID
	s.Pin()
	repl, err := s.ReplaceXML("a.xml", "<a><t>new</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	// Both generations resolve while a reader is pinned; the old one
	// disappears with the last reader.
	if n := s.Subtree(oldID); n == nil || n.Value != "old" {
		t.Fatalf("old subtree = %v while pinned", n)
	}
	newID := repl.Root.Children[0].ID
	if n := s.Subtree(newID); n == nil || n.Value != "new" {
		t.Fatalf("new subtree = %v", n)
	}
	s.Unpin()
	if s.Subtree(oldID) != nil {
		t.Error("old generation still resolvable after unpin")
	}
	if n := s.Subtree(newID); n == nil || n.Value != "new" {
		t.Errorf("new generation swept by mistake: %v", n)
	}
}

func TestOverlappingPinsDelaySweep(t *testing.T) {
	s := New()
	doc, err := s.AddXML("a.xml", "<a><t>text</t></a>")
	if err != nil {
		t.Fatal(err)
	}
	s.Pin()
	s.Pin()
	if err := s.Delete("a.xml"); err != nil {
		t.Fatal(err)
	}
	s.Unpin()
	if s.DocByID(doc.DocID) == nil {
		t.Fatal("tombstone swept while a reader was still pinned")
	}
	s.Unpin()
	if s.DocByID(doc.DocID) != nil {
		t.Fatal("tombstone survived the last unpin")
	}
}

func TestShardInfoMutations(t *testing.T) {
	s := NewSharded(4)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("doc-%d.xml", i)
		if _, err := s.AddXML(name, "<d><t>x</t></d>"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ReplaceXML("doc-3.xml", "<d><t>y</t></d>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("doc-5.xml"); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, info := range s.ShardInfos() {
		total += info.Mutations
	}
	if total != 2 || s.Mutations() != 2 {
		t.Errorf("mutations: per-shard sum %d, aggregate %d, want 2", total, s.Mutations())
	}
	// The replace counter landed on the replaced doc's shard.
	if got := s.ShardInfos()[s.ShardOf("doc-3.xml")].Mutations; got < 1 {
		t.Errorf("replaced doc's shard reports %d mutations", got)
	}
}

func TestMutatedDeweyAddressing(t *testing.T) {
	// After interleaved mutations, Dewey addressing over the survivors
	// still works and deleted IDs resolve to nothing.
	s := New()
	for i := 0; i < 4; i++ {
		if _, err := s.AddXML(fmt.Sprintf("d%d", i), fmt.Sprintf("<r><v>doc %d</v></r>", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("d1"); err != nil {
		t.Fatal(err)
	}
	repl, err := s.ReplaceXML("d2", "<r><v>doc 2 v2</v></r>")
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Subtree(dewey.ID{repl.DocID, 1}); n == nil || n.Value != "doc 2 v2" {
		t.Errorf("replacement subtree = %v", n)
	}
	if n := s.Subtree(dewey.ID{2, 1}); n != nil {
		t.Errorf("deleted d1 subtree still resolves: %v", n)
	}
}
