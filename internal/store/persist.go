package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Save writes every document to dir as <name> plus a manifest recording
// load order, so document IDs — and therefore every Dewey ID — are stable
// across a save/load round trip. Indices are rebuilt on load; they are
// deterministic functions of the documents.
func (s *Store) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	var manifest []string
	for _, doc := range s.Docs() {
		if strings.ContainsAny(doc.Name, "/\\\n") {
			return fmt.Errorf("store: save: document name %q is not a safe file name", doc.Name)
		}
		path := filepath.Join(dir, doc.Name)
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("store: save %s: %w", doc.Name, err)
		}
		if err := doc.Root.WriteXML(f, ""); err != nil {
			f.Close() //nolint:errcheck
			return fmt.Errorf("store: save %s: %w", doc.Name, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("store: save %s: %w", doc.Name, err)
		}
		manifest = append(manifest, doc.Name)
	}
	data := strings.Join(manifest, "\n") + "\n"
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte(data), 0o644); err != nil {
		return fmt.Errorf("store: save manifest: %w", err)
	}
	return nil
}

// Load reads a directory written by Save into a fresh store, preserving
// document order (and therefore Dewey IDs). Without a MANIFEST it loads
// every .xml file in name order.
func Load(dir string) (*Store, error) {
	names, err := manifestNames(dir)
	if err != nil {
		return nil, err
	}
	s := New()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: load %s: %w", name, err)
		}
		if _, err := s.AddXML(name, string(data)); err != nil {
			return nil, fmt.Errorf("store: load %s: %w", name, err)
		}
	}
	return s, nil
}

func manifestNames(dir string) ([]string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err == nil {
		var names []string
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line != "" {
				names = append(names, line)
			}
		}
		return names, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("store: load: no MANIFEST and no .xml files in %s", dir)
	}
	return names, nil
}
