package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vxml/internal/xmltree"
)

// manifestName is the reserved file the manifest is written to. A document
// may not use it as its own name: the manifest write would silently
// overwrite the document (or the document the manifest), and the directory
// would load back as a different corpus.
const manifestName = "MANIFEST"

// manifestHeader opens a v2 manifest and records the shard count; the lines
// that follow are "<docID>:<name>". A v1 manifest (no header, bare names
// per line) is still loadable: documents then receive fresh sequential IDs
// in manifest order.
const manifestHeader = "#!vxml"

// Save writes every document to dir plus a manifest recording document IDs,
// load order and the shard count, so Dewey IDs and shard assignment are
// stable across a save/load round trip — including for a corpus that has
// seen replacements and deletions, whose ID sequence has gaps. Indices are
// rebuilt on load; they are deterministic functions of the documents.
//
// Every file, the manifest included, is written to a temporary name in dir
// and renamed into place, and the manifest is renamed last: a save that
// fails part-way never leaves a directory that half-loads — Load is driven
// by the manifest, which at every instant is either the previous complete
// one or the new complete one.
func (s *Store) Save(dir string) error { return SaveCorpus(s, dir) }

// SaveFile is one serialized corpus file as EmitSaveFiles produces it.
type SaveFile struct {
	// Name is the file's base name within a save directory: a document
	// name, or "MANIFEST" for the final manifest file.
	Name string
	// WriteTo streams the file's content. It may be called at most once.
	WriteTo func(w io.Writer) error
}

// EmitSaveFiles serializes the corpus in Save's on-disk format and passes
// each file to emit — every document first, the manifest last. It is the
// single serialization path shared by Save (which writes the files to a
// directory) and cluster snapshot shipping (which streams them over HTTP),
// so a snapshot never re-serializes a corpus the save path already knows
// how to write, and the two cannot drift. Name validation happens here:
// an unsafe or reserved document name fails the whole emission before the
// manifest is produced.
func EmitSaveFiles(c Corpus, emit func(SaveFile) error) error {
	var manifest strings.Builder
	fmt.Fprintf(&manifest, "%s shards=%d\n", manifestHeader, c.ShardCount())
	for _, doc := range c.Docs() {
		// EqualFold: on a case-insensitive filesystem (macOS, Windows) a
		// document named "manifest" would resolve to the same file the
		// manifest rename targets and be silently clobbered.
		if strings.EqualFold(doc.Name, manifestName) {
			return fmt.Errorf("store: save: document name %q is reserved for the manifest", doc.Name)
		}
		if strings.ContainsAny(doc.Name, "/\\\n") || strings.HasPrefix(doc.Name, manifestHeader) {
			return fmt.Errorf("store: save: document name %q is not a safe file name", doc.Name)
		}
		root := doc.Root
		if err := emit(SaveFile{Name: doc.Name, WriteTo: func(w io.Writer) error {
			return root.WriteXML(w, "")
		}}); err != nil {
			return fmt.Errorf("store: save %s: %w", doc.Name, err)
		}
		fmt.Fprintf(&manifest, "%d:%s\n", doc.DocID, doc.Name)
	}
	if err := emit(SaveFile{Name: manifestName, WriteTo: func(w io.Writer) error {
		_, err := io.WriteString(w, manifest.String())
		return err
	}}); err != nil {
		return fmt.Errorf("store: save manifest: %w", err)
	}
	return nil
}

// SaveCorpus writes any Corpus to dir in Save's format: every file via
// temp-file plus rename, the manifest renamed last, then best-effort
// cleanup of files a previous save in dir wrote for documents that no
// longer exist.
func SaveCorpus(c Corpus, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: save: %w", err)
	}
	// Names of a previous save in this directory, for post-save cleanup of
	// files whose documents no longer exist (best-effort: a missing or old
	// manifest just means nothing to clean).
	previous := map[string]bool{}
	if oldEntries, _, err := manifestEntries(dir); err == nil {
		for _, e := range oldEntries {
			previous[e.name] = true
		}
	}
	saved := map[string]bool{}
	if err := EmitSaveFiles(c, func(sf SaveFile) error {
		if err := writeFileAtomic(dir, sf.Name, func(f *os.File) error {
			return sf.WriteTo(f)
		}); err != nil {
			return err
		}
		if sf.Name != manifestName {
			saved[sf.Name] = true
		}
		return nil
	}); err != nil {
		return err
	}
	// The new manifest is in place; remove files of documents a previous
	// save wrote that no longer exist (e.g. deleted since). Left behind,
	// they could resurrect through Load's no-MANIFEST *.xml fallback. Only
	// names the old manifest listed are touched — never arbitrary
	// directory contents.
	for name := range previous {
		if !saved[name] && !strings.ContainsAny(name, "/\\") {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck // best-effort cleanup
		}
	}
	return nil
}

// writeFileAtomic writes a file via a uniquely named temp file in the same
// directory plus rename, so the final name only ever holds complete
// content. The temp file is removed on any failure.
func writeFileAtomic(dir, name string, write func(*os.File) error) error {
	f, err := os.CreateTemp(dir, "savetmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	// CreateTemp opens 0600; match the 0644-modulo-umask mode a plain
	// os.Create would have given, so another uid can still read a saved
	// corpus.
	if err := f.Chmod(0o644); err != nil {
		f.Close()      //nolint:errcheck
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp) //nolint:errcheck
		return err
	}
	return nil
}

// manifestEntry is one document line of a manifest: the name plus the saved
// document ID (0 in a v1 manifest, meaning "assign the next sequential ID").
type manifestEntry struct {
	docID int32
	name  string
}

// Load reads a directory written by Save into a fresh store, preserving
// shard count, document order and document IDs (and therefore Dewey IDs) —
// a corpus saved after replacements and deletions loads with the same gapped
// ID sequence it was saved with. Without a MANIFEST it loads every .xml
// file in name order with fresh IDs.
func Load(dir string) (*Store, error) {
	entries, shardCount, err := manifestEntries(dir)
	if err != nil {
		return nil, err
	}
	s := NewSharded(shardCount)
	var maxID int32
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.name))
		if err != nil {
			return nil, fmt.Errorf("store: load %s: %w", e.name, err)
		}
		if e.docID == 0 {
			if _, err := s.AddXML(e.name, string(data)); err != nil {
				return nil, fmt.Errorf("store: load %s: %w", e.name, err)
			}
			continue
		}
		doc, err := xmlDocAt(string(data), e.name, e.docID)
		if err != nil {
			return nil, fmt.Errorf("store: load %s: %w", e.name, err)
		}
		if err := s.RegisterParsed(doc); err != nil {
			return nil, fmt.Errorf("store: load %s: %w", e.name, err)
		}
		if e.docID > maxID {
			maxID = e.docID
		}
	}
	if next := maxID + 1; next > s.nextID.Load() {
		s.nextID.Store(next)
	}
	return s, nil
}

// manifestEntries reads the manifest (v1 or v2) or falls back to .xml
// directory listing; shardCount is 0 (caller default) unless a v2 header
// recorded one.
func manifestEntries(dir string) ([]manifestEntry, int, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err == nil {
		return parseManifest(string(data))
	}
	dirEntries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: load: %w", err)
	}
	var names []string
	for _, e := range dirEntries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, 0, fmt.Errorf("store: load: no MANIFEST and no .xml files in %s", dir)
	}
	entries := make([]manifestEntry, len(names))
	for i, n := range names {
		entries[i] = manifestEntry{name: n}
	}
	return entries, 0, nil
}

func parseManifest(data string) ([]manifestEntry, int, error) {
	lines := strings.Split(data, "\n")
	shardCount := 0
	v2 := false
	if len(lines) > 0 && strings.HasPrefix(lines[0], manifestHeader) {
		v2 = true
		for _, field := range strings.Fields(lines[0])[1:] {
			if n, ok := strings.CutPrefix(field, "shards="); ok {
				c, err := strconv.Atoi(n)
				if err != nil || c < 1 {
					return nil, 0, fmt.Errorf("store: load: bad manifest shard count %q", n)
				}
				shardCount = c
			}
		}
		lines = lines[1:]
	}
	var entries []manifestEntry
	for _, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !v2 {
			entries = append(entries, manifestEntry{name: line})
			continue
		}
		idText, name, ok := strings.Cut(line, ":")
		id, err := strconv.ParseInt(idText, 10, 32)
		if !ok || err != nil || id < 1 || name == "" {
			return nil, 0, fmt.Errorf("store: load: bad manifest line %q", line)
		}
		entries = append(entries, manifestEntry{docID: int32(id), name: name})
	}
	return entries, shardCount, nil
}

// xmlDocAt parses xmlText under an explicit document ID (the one the
// manifest recorded).
func xmlDocAt(xmlText, name string, docID int32) (*xmltree.Document, error) {
	return xmltree.ParseString(xmlText, name, docID)
}
