package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveRejectsManifestName(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if _, err := s.AddXML("MANIFEST", "<a><b>x</b></a>"); err != nil {
		t.Fatal(err)
	}
	err := s.Save(dir)
	if err == nil || !strings.Contains(err.Error(), "MANIFEST") {
		t.Fatalf("Save with a document named MANIFEST: err = %v, want rejection", err)
	}
	// Nothing usable may be left behind — in particular no MANIFEST file
	// whose content is the document (or a manifest listing it).
	if _, statErr := os.Stat(filepath.Join(dir, "MANIFEST")); statErr == nil {
		t.Error("rejected save still wrote a MANIFEST file")
	}
}

// TestFailedSaveKeepsOldStateLoadable is the atomicity property: a save
// that fails part-way (here: on a name that cannot be a file name) must
// leave the previously saved corpus fully loadable — the old manifest is
// only ever replaced by a complete new one, via rename.
func TestFailedSaveKeepsOldStateLoadable(t *testing.T) {
	dir := t.TempDir()
	good := New()
	if _, err := good.AddXML("a.xml", "<a><t>alpha</t></a>"); err != nil {
		t.Fatal(err)
	}
	if _, err := good.AddXML("b.xml", "<b><t>beta</t></b>"); err != nil {
		t.Fatal(err)
	}
	if err := good.Save(dir); err != nil {
		t.Fatal(err)
	}

	bad := New()
	if _, err := bad.AddXML("c.xml", "<c><t>gamma</t></c>"); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.AddXML("MANIFEST", "<m><t>poison</t></m>"); err != nil {
		t.Fatal(err)
	}
	if err := bad.Save(dir); err == nil {
		t.Fatal("save of corpus with reserved name should fail")
	}

	loaded, err := Load(dir)
	if err != nil {
		t.Fatalf("directory no longer loads after failed save: %v", err)
	}
	docs := loaded.Docs()
	if len(docs) != 2 || loaded.Doc("a.xml") == nil || loaded.Doc("b.xml") == nil {
		t.Fatalf("loaded %d docs %v, want the pre-failure corpus", len(docs), docs)
	}
	// No temp droppings.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "savetmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestMutatedCorpusRoundTrip(t *testing.T) {
	s := NewSharded(3)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("part-%d.xml", i)
		if _, err := s.AddXML(name, fmt.Sprintf("<part><name>part %d</name></part>", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("part-1.xml"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReplaceXML("part-4.xml", "<part><name>part 4 revised</name></part>"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddXML("part-6.xml", "<part><name>part 6</name></part>"); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.ShardCount(), s.ShardCount(); got != want {
		t.Errorf("shard count %d, want %d", got, want)
	}
	want := s.Docs()
	got := loaded.Docs()
	if len(got) != len(want) {
		t.Fatalf("loaded %d docs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name || got[i].DocID != want[i].DocID {
			t.Errorf("doc %d: %s#%d, want %s#%d (gapped IDs not preserved)",
				i, got[i].Name, got[i].DocID, want[i].Name, want[i].DocID)
		}
		if got[i].Root.XMLString("") != want[i].Root.XMLString("") {
			t.Errorf("doc %s content changed across round trip", want[i].Name)
		}
	}
	// The ID sequence resumes past the saved maximum: a post-load ingest
	// cannot collide with a surviving document's Dewey space.
	added, err := loaded.AddXML("part-7.xml", "<part><name>part 7</name></part>")
	if err != nil {
		t.Fatal(err)
	}
	if maxID := want[len(want)-1].DocID; added.DocID <= maxID {
		t.Errorf("post-load ingest got ID %d, want > %d", added.DocID, maxID)
	}
}

func TestSaveRejectsManifestNameCaseInsensitively(t *testing.T) {
	// On case-insensitive filesystems (macOS, Windows) "manifest" resolves
	// to the manifest's own file; the guard must fold case.
	for _, name := range []string{"manifest", "Manifest", "mAnIfEsT"} {
		s := New()
		if _, err := s.AddXML(name, "<a><b>x</b></a>"); err != nil {
			t.Fatal(err)
		}
		if err := s.Save(t.TempDir()); err == nil {
			t.Errorf("Save with document %q should be rejected", name)
		}
	}
}

func TestSaveRemovesStaleDocumentFiles(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if _, err := s.AddXML("a.xml", "<a><t>alpha</t></a>"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddXML("b.xml", "<b><t>beta</t></b>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("b.xml"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "b.xml")); err == nil {
		t.Error("deleted document's file survived the re-save")
	}
	// Without the cleanup, losing the MANIFEST would resurrect b.xml via
	// the *.xml fallback; with it, the fallback load matches the corpus.
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if docs := loaded.Docs(); len(docs) != 1 || docs[0].Name != "a.xml" {
		t.Errorf("fallback load = %v, want just a.xml", docs)
	}
}

func TestSavedFilesAreWorldReadable(t *testing.T) {
	dir := t.TempDir()
	s := New()
	if _, err := s.AddXML("a.xml", "<a><t>x</t></a>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.xml", "MANIFEST"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if perm := fi.Mode().Perm(); perm != 0o644 {
			t.Errorf("%s mode = %o, want 0644 (CreateTemp's 0600 leaked through)", name, perm)
		}
	}
}
