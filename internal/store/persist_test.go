package store

import (
	"os"
	"path/filepath"
	"testing"

	"vxml/internal/dewey"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Docs()) != 2 {
		t.Fatalf("loaded %d docs", len(loaded.Docs()))
	}
	// Document IDs — and content — survive the round trip.
	for _, doc := range s.Docs() {
		got := loaded.Doc(doc.Name)
		if got == nil || got.DocID != doc.DocID {
			t.Fatalf("doc %s: id %v vs %v", doc.Name, got, doc.DocID)
		}
		if got.Root.XMLString("") != doc.Root.XMLString("") {
			t.Errorf("doc %s content changed", doc.Name)
		}
	}
	// Dewey addressing still works.
	n := loaded.Subtree(dewey.MustParse("2.1.2"))
	if n == nil || n.Tag != "content" {
		t.Errorf("Subtree after load = %v", n)
	}
}

func TestLoadWithoutManifest(t *testing.T) {
	dir := t.TempDir()
	s := newStore(t)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "MANIFEST")); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Docs()) != 2 {
		t.Errorf("loaded %d docs without manifest", len(loaded.Docs()))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir should fail")
	}
	if _, err := Load("/nonexistent/path"); err == nil {
		t.Error("missing dir should fail")
	}
}

func TestSaveRejectsUnsafeNames(t *testing.T) {
	s := New()
	if _, err := s.AddXML("../evil.xml", "<a><b>x</b></a>"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(t.TempDir()); err == nil {
		t.Error("path traversal in name should be rejected")
	}
}
