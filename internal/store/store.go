// Package store implements the document storage subsystem (paper Figure 3,
// bottom box). It holds the base XML documents, assigns document IDs, and
// serves subtree fetches by Dewey ID — the only operation the Efficient
// pipeline performs against base data, and only for the final top-k results
// (paper §4.2.2.2). Access counters make that claim measurable.
//
// The store is sharded: documents are hash-assigned to one of N shards by
// name at ingest, and each shard guards its own name table with its own
// RWMutex, so an ingest into one shard never contends with reads against
// another. Dewey-ID lookups (DocByID, Subtree, Value) go through a
// lock-free append-only ID table and never touch a shard lock at all. The
// access counters are atomic so counted reads stay lock-free with respect
// to each other. Cross-shard snapshots (Docs, TotalBytes) lock one shard at
// a time; since every registration publishes exactly one document under one
// shard lock, such a snapshot still observes each individual document
// either entirely or not at all.
package store

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"vxml/internal/dewey"
	"vxml/internal/docname"
	"vxml/internal/xmltree"
)

// ErrDuplicateName is returned (or wrapped) when a document is added under a
// name that is already registered.
var ErrDuplicateName = errors.New("duplicate document name")

// ErrUnknownName is returned (or wrapped) when a replace or delete names a
// document that is not registered.
var ErrUnknownName = errors.New("unknown document name")

// shard is one corpus partition: a name table and its lock, plus cached
// per-shard size counters for ShardInfos.
type shard struct {
	mu     sync.RWMutex
	byName map[string]*xmltree.Document
	bytes  int // summed serialized size of the shard's documents
	// mutations counts replacements and deletions applied to this shard
	// (ingests are visible as Documents; mutations otherwise leave no
	// trace, so dashboards need the counter to see corpus churn).
	mutations int
}

// Store is a collection of named documents, partitioned into shards.
type Store struct {
	shards []*shard
	nextID atomic.Int32
	// byID maps document ID -> *xmltree.Document. Entries are written once
	// at publication and never deleted, so reads are lock-free (sync.Map is
	// optimal for this append-only, read-mostly shape).
	byID sync.Map

	// subtreeFetches counts Subtree and Value calls; bytesFetched sums the
	// serialized byte lengths returned. Benchmarks report these to show the
	// Efficient pipeline touches base data only for top-k winners.
	subtreeFetches atomic.Int64
	bytesFetched   atomic.Int64

	// pins counts in-flight lock-free readers (Pin/Unpin); grave holds the
	// document IDs of replaced or deleted documents whose byID entries must
	// outlive every reader that may still hold their Dewey IDs. See the
	// tombstone discussion on Delete.
	pins    atomic.Int64
	graveMu sync.Mutex
	grave   []int32
}

// DefaultShardCount is the shard count New uses: one shard per available
// CPU, clamped to [1, 16]. Shard assignment is a pure function of document
// name and shard count, so the count never affects query results — only
// contention.
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 16 {
		n = 16
	}
	return n
}

// New returns an empty store with DefaultShardCount shards.
func New() *Store { return NewSharded(0) }

// NewSharded returns an empty store with n shards (n <= 0 selects
// DefaultShardCount).
func NewSharded(n int) *Store {
	if n <= 0 {
		n = DefaultShardCount()
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{byName: map[string]*xmltree.Document{}}
	}
	s.nextID.Store(1)
	return s
}

// ShardCount returns the number of corpus shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// ShardOf returns the shard index the given document name hashes to.
func (s *Store) ShardOf(name string) int {
	return ShardIndex(name, len(s.shards))
}

// ShardInfo is a point-in-time snapshot of one shard's corpus counters.
type ShardInfo struct {
	Shard     int
	Documents int
	Bytes     int
	// Mutations counts the replacements and deletions applied to the shard.
	Mutations int
}

// ShardInfos returns per-shard document counts, byte sizes and mutation
// counters.
func (s *Store) ShardInfos() []ShardInfo {
	out := make([]ShardInfo, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.RLock()
		out[i] = ShardInfo{Shard: i, Documents: len(sh.byName), Bytes: sh.bytes, Mutations: sh.mutations}
		sh.mu.RUnlock()
	}
	return out
}

// Mutations returns the total number of replacements and deletions applied
// across all shards.
func (s *Store) Mutations() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += sh.mutations
		sh.mu.RUnlock()
	}
	return total
}

// NextDocID returns the document ID the next AddParsed/AddXML call will use.
func (s *Store) NextDocID() int32 { return s.nextID.Load() }

// ReserveID atomically allocates the next document ID, so a caller can
// parse and index a document outside any lock before registering it with
// RegisterParsed. A reservation wasted on a failed parse leaves a gap in
// the ID sequence, which is harmless.
func (s *Store) ReserveID() int32 { return s.nextID.Add(1) - 1 }

// EnsureNextID raises the ID sequence so the next reservation returns at
// least id. Callers registering documents under externally assigned IDs
// (a cluster node ingesting under coordinator-assigned IDs, Load restoring
// a manifest) use it to keep later local reservations from colliding with
// IDs already handed out elsewhere. It never lowers the sequence.
func (s *Store) EnsureNextID(id int32) {
	for {
		cur := s.nextID.Load()
		if cur >= id || s.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// RegisterParsed registers a document whose DocID was allocated with
// ReserveID. It returns an error wrapping ErrDuplicateName if the name is
// already taken.
func (s *Store) RegisterParsed(doc *xmltree.Document) error {
	sh := s.shards[s.ShardOf(doc.Name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return s.publishLocked(sh, doc)
}

// publishLocked makes doc visible under its name and DocID; the caller
// holds sh's write lock, sh is doc's home shard, and doc already owns a
// reserved DocID. This is the single publication path — every registration
// goes through it so its invariants cannot diverge.
func (s *Store) publishLocked(sh *shard, doc *xmltree.Document) error {
	if _, dup := sh.byName[doc.Name]; dup {
		return fmt.Errorf("store: %w: %q", ErrDuplicateName, doc.Name)
	}
	sh.byName[doc.Name] = doc
	if doc.Root != nil {
		sh.bytes += doc.Root.ByteLen
	}
	s.byID.Store(doc.DocID, doc)
	return nil
}

// AddXML parses the XML text and registers it under name. Documents receive
// document IDs in reservation order. Adding a name that already exists
// returns an error wrapping ErrDuplicateName. The parse runs outside the
// shard lock — only the registration excludes readers.
func (s *Store) AddXML(name, xmlText string) (*xmltree.Document, error) {
	if s.Doc(name) != nil {
		return nil, fmt.Errorf("store: %w: %q", ErrDuplicateName, name)
	}
	doc, err := xmltree.ParseString(xmlText, name, s.ReserveID())
	if err != nil {
		return nil, err
	}
	if err := s.RegisterParsed(doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// AddParsed registers a document built programmatically. The document's
// DocID is overwritten with the store's next ID and the tree re-finalized.
// It panics on a duplicate name (programmatic corpora control their names).
func (s *Store) AddParsed(doc *xmltree.Document) *xmltree.Document {
	doc.DocID = s.ReserveID()
	doc.Finalize()
	if err := s.RegisterParsed(doc); err != nil {
		panic(fmt.Sprintf("store: %v", err))
	}
	return doc
}

// ReplaceParsed atomically swaps the document registered under doc.Name for
// doc, which must carry a freshly reserved DocID. The old document's byID
// entry is tombstoned, not dropped: a reader that planned its search before
// the swap may still materialize the old subtree (see Pin), while any search
// planned afterwards resolves the name to the replacement only. It returns
// an error wrapping ErrUnknownName if the name is not registered.
func (s *Store) ReplaceParsed(doc *xmltree.Document) error {
	sh := s.shards[s.ShardOf(doc.Name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.byName[doc.Name]
	if !ok {
		return fmt.Errorf("store: %w: %q", ErrUnknownName, doc.Name)
	}
	sh.byName[doc.Name] = doc
	if old.Root != nil {
		sh.bytes -= old.Root.ByteLen
	}
	if doc.Root != nil {
		sh.bytes += doc.Root.ByteLen
	}
	sh.mutations++
	s.byID.Store(doc.DocID, doc)
	s.retire(old.DocID)
	return nil
}

// ReplaceXML parses the XML text and swaps it in under name, assigning a
// fresh document ID (the replacement is a new document in global document
// order; only the name is stable). Replacing a name that does not exist
// returns an error wrapping ErrUnknownName. Like AddXML, the parse runs
// outside the shard lock.
func (s *Store) ReplaceXML(name, xmlText string) (*xmltree.Document, error) {
	if s.Doc(name) == nil {
		return nil, fmt.Errorf("store: %w: %q", ErrUnknownName, name)
	}
	doc, err := xmltree.ParseString(xmlText, name, s.ReserveID())
	if err != nil {
		return nil, err
	}
	if err := s.ReplaceParsed(doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// Delete unregisters the document stored under name. The document vanishes
// from every name-driven lookup (Doc, Docs, DocsMatching) immediately, so a
// search planned after Delete returns cannot see it; its Dewey entries are
// tombstoned rather than dropped, so a search planned before — which may
// already hold the document's IDs and materialize winners lock-free after
// releasing its shard locks — keeps resolving the old subtree until the
// last such reader unpins. Deleting an unknown name returns an error
// wrapping ErrUnknownName.
func (s *Store) Delete(name string) error {
	sh := s.shards[s.ShardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	old, ok := sh.byName[name]
	if !ok {
		return fmt.Errorf("store: %w: %q", ErrUnknownName, name)
	}
	delete(sh.byName, name)
	if old.Root != nil {
		sh.bytes -= old.Root.ByteLen
	}
	sh.mutations++
	s.retire(old.DocID)
	return nil
}

// Pin marks the start of a lock-free read epoch: until the matching Unpin,
// replaced and deleted documents stay resolvable by Dewey ID (Subtree,
// Value, DocByID), so a search that planned under shard locks and then
// released them before materializing its winners never observes a nil
// subtree. Searches that begin after a mutation never probe the retired IDs
// at all — the mutation removed the name under the same shard lock their
// planning takes — so tombstones are invisible to them regardless.
func (s *Store) Pin() { s.pins.Add(1) }

// Unpin ends a Pin epoch. When the last pinned reader leaves, tombstoned
// byID entries are swept and their memory becomes reclaimable.
func (s *Store) Unpin() {
	if s.pins.Add(-1) == 0 {
		s.sweep()
	}
}

// retire tombstones the byID entry of a replaced or deleted document. With
// no pinned readers it is dropped immediately; otherwise it joins the
// graveyard swept when the reader count next reaches zero. Under a
// continuously overlapping read load tombstones can accumulate until the
// first quiescent instant — they cost one map entry plus the retained
// document each, never correctness.
func (s *Store) retire(docID int32) {
	s.graveMu.Lock()
	s.grave = append(s.grave, docID)
	s.graveMu.Unlock()
	if s.pins.Load() == 0 {
		s.sweep()
	}
}

// sweep drops every tombstoned byID entry. A reader pinning concurrently
// with a sweep cannot be harmed: it planned (or will plan) under shard
// locks that already exclude the retired documents from every name lookup,
// so it holds none of their Dewey IDs.
func (s *Store) sweep() {
	s.graveMu.Lock()
	ids := s.grave
	s.grave = nil
	s.graveMu.Unlock()
	for _, id := range ids {
		s.byID.Delete(id)
	}
}

// Tombstones returns the number of retired documents awaiting sweep
// (diagnostics and tests).
func (s *Store) Tombstones() int {
	s.graveMu.Lock()
	defer s.graveMu.Unlock()
	return len(s.grave)
}

// Doc returns the document registered under name, or nil.
func (s *Store) Doc(name string) *xmltree.Document {
	sh := s.shards[s.ShardOf(name)]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.byName[name]
}

// DocByID returns the document whose Dewey IDs start with docID, or nil.
// The lookup is lock-free: it never contends with ingest on any shard.
func (s *Store) DocByID(docID int32) *xmltree.Document {
	if d, ok := s.byID.Load(docID); ok {
		return d.(*xmltree.Document)
	}
	return nil
}

// Docs returns all documents in insertion (document ID) order.
func (s *Store) Docs() []*xmltree.Document {
	var docs []*xmltree.Document
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, d := range sh.byName {
			docs = append(docs, d)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	return docs
}

// DocsMatching returns the documents whose names match the pattern (see
// docname.Match) in insertion (document ID) order. An exact name — no '*'
// — matches at most its own document.
func (s *Store) DocsMatching(pattern string) []*xmltree.Document {
	if !docname.IsPattern(pattern) {
		if d := s.Doc(pattern); d != nil {
			return []*xmltree.Document{d}
		}
		return nil
	}
	var docs []*xmltree.Document
	for _, sh := range s.shards {
		sh.mu.RLock()
		for name, d := range sh.byName {
			if docname.Match(pattern, name) {
				docs = append(docs, d)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	return docs
}

// Subtree fetches the element with the given Dewey ID from base storage.
// This is the materialization primitive used for top-k results and for the
// GTP baseline's join-value access; it is counted.
func (s *Store) Subtree(id dewey.ID) *xmltree.Node {
	if len(id) == 0 {
		return nil
	}
	doc := s.DocByID(id[0])
	if doc == nil {
		return nil
	}
	n := doc.FindByID(id)
	if n != nil {
		s.subtreeFetches.Add(1)
		s.bytesFetched.Add(int64(n.ByteLen))
	}
	return n
}

// Value fetches the atomic value of the element with the given ID from base
// storage (used by the GTP baseline, which unlike the Efficient pipeline
// must access base data for join values).
func (s *Store) Value(id dewey.ID) (string, bool) {
	n := s.Subtree(id)
	if n == nil {
		return "", false
	}
	return n.Value, true
}

// SubtreeFetches returns the number of counted Subtree/Value calls.
func (s *Store) SubtreeFetches() int { return int(s.subtreeFetches.Load()) }

// BytesFetched returns the summed serialized byte length of fetched
// subtrees.
func (s *Store) BytesFetched() int { return int(s.bytesFetched.Load()) }

// ResetCounters zeroes the access counters (between benchmark phases).
func (s *Store) ResetCounters() {
	s.subtreeFetches.Store(0)
	s.bytesFetched.Store(0)
}

// TotalBytes returns the summed serialized size of all documents.
func (s *Store) TotalBytes() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		total += sh.bytes
		sh.mu.RUnlock()
	}
	return total
}
