// Package store implements the document storage subsystem (paper Figure 3,
// bottom box). It holds the base XML documents, assigns document IDs, and
// serves subtree fetches by Dewey ID — the only operation the Efficient
// pipeline performs against base data, and only for the final top-k results
// (paper §4.2.2.2). Access counters make that claim measurable.
package store

import (
	"fmt"
	"sort"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

// Store is a collection of named documents.
type Store struct {
	byName map[string]*xmltree.Document
	byID   map[int32]*xmltree.Document
	nextID int32

	// SubtreeFetches counts Subtree and Value calls; BytesFetched sums the
	// serialized byte lengths returned. Benchmarks report these to show the
	// Efficient pipeline touches base data only for top-k winners.
	SubtreeFetches int
	BytesFetched   int
}

// New returns an empty store.
func New() *Store {
	return &Store{byName: map[string]*xmltree.Document{}, byID: map[int32]*xmltree.Document{}, nextID: 1}
}

// NextDocID returns the document ID the next AddParsed/AddXML call will use.
func (s *Store) NextDocID() int32 { return s.nextID }

// AddXML parses the XML text and registers it under name. Documents receive
// consecutive document IDs in insertion order.
func (s *Store) AddXML(name, xmlText string) (*xmltree.Document, error) {
	doc, err := xmltree.ParseString(xmlText, name, s.nextID)
	if err != nil {
		return nil, err
	}
	s.register(doc)
	return doc, nil
}

// AddParsed registers a document built programmatically. The document's
// DocID is overwritten with the store's next ID and the tree re-finalized.
func (s *Store) AddParsed(doc *xmltree.Document) *xmltree.Document {
	doc.DocID = s.nextID
	doc.Finalize()
	s.register(doc)
	return doc
}

func (s *Store) register(doc *xmltree.Document) {
	if _, dup := s.byName[doc.Name]; dup {
		panic(fmt.Sprintf("store: duplicate document name %q", doc.Name))
	}
	s.byName[doc.Name] = doc
	s.byID[doc.DocID] = doc
	s.nextID++
}

// Doc returns the document registered under name, or nil.
func (s *Store) Doc(name string) *xmltree.Document { return s.byName[name] }

// DocByID returns the document whose Dewey IDs start with docID, or nil.
func (s *Store) DocByID(docID int32) *xmltree.Document { return s.byID[docID] }

// Docs returns all documents in insertion (document ID) order.
func (s *Store) Docs() []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, len(s.byName))
	for _, d := range s.byName {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	return docs
}

// Subtree fetches the element with the given Dewey ID from base storage.
// This is the materialization primitive used for top-k results and for the
// GTP baseline's join-value access; it is counted.
func (s *Store) Subtree(id dewey.ID) *xmltree.Node {
	if len(id) == 0 {
		return nil
	}
	doc := s.byID[id[0]]
	if doc == nil {
		return nil
	}
	n := doc.FindByID(id)
	if n != nil {
		s.SubtreeFetches++
		s.BytesFetched += n.ByteLen
	}
	return n
}

// Value fetches the atomic value of the element with the given ID from base
// storage (used by the GTP baseline, which unlike the Efficient pipeline
// must access base data for join values).
func (s *Store) Value(id dewey.ID) (string, bool) {
	n := s.Subtree(id)
	if n == nil {
		return "", false
	}
	return n.Value, true
}

// ResetCounters zeroes the access counters (between benchmark phases).
func (s *Store) ResetCounters() {
	s.SubtreeFetches = 0
	s.BytesFetched = 0
}

// TotalBytes returns the summed serialized size of all documents.
func (s *Store) TotalBytes() int {
	total := 0
	for _, d := range s.byName {
		total += d.Root.ByteLen
	}
	return total
}
