// Package store implements the document storage subsystem (paper Figure 3,
// bottom box). It holds the base XML documents, assigns document IDs, and
// serves subtree fetches by Dewey ID — the only operation the Efficient
// pipeline performs against base data, and only for the final top-k results
// (paper §4.2.2.2). Access counters make that claim measurable.
//
// The store is safe for concurrent use: reads (Doc, DocByID, Docs, Subtree,
// Value, TotalBytes) proceed in parallel under a read lock, while AddXML and
// AddParsed take the write lock. The access counters are atomic so counted
// reads stay lock-free with respect to each other.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"vxml/internal/dewey"
	"vxml/internal/xmltree"
)

// ErrDuplicateName is returned (or wrapped) when a document is added under a
// name that is already registered.
var ErrDuplicateName = errors.New("duplicate document name")

// Store is a collection of named documents.
type Store struct {
	mu     sync.RWMutex
	byName map[string]*xmltree.Document
	byID   map[int32]*xmltree.Document
	nextID int32

	// subtreeFetches counts Subtree and Value calls; bytesFetched sums the
	// serialized byte lengths returned. Benchmarks report these to show the
	// Efficient pipeline touches base data only for top-k winners.
	subtreeFetches atomic.Int64
	bytesFetched   atomic.Int64
}

// New returns an empty store.
func New() *Store {
	return &Store{byName: map[string]*xmltree.Document{}, byID: map[int32]*xmltree.Document{}, nextID: 1}
}

// NextDocID returns the document ID the next AddParsed/AddXML call will use.
func (s *Store) NextDocID() int32 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextID
}

// ReserveID atomically allocates the next document ID, so a caller can
// parse and index a document outside any lock before registering it with
// RegisterParsed. A reservation wasted on a failed parse leaves a gap in
// the ID sequence, which is harmless.
func (s *Store) ReserveID() int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	return id
}

// RegisterParsed registers a document whose DocID was allocated with
// ReserveID. It returns an error wrapping ErrDuplicateName if the name is
// already taken.
func (s *Store) RegisterParsed(doc *xmltree.Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.publishLocked(doc)
}

// publishLocked makes doc visible under its name and DocID; the caller
// holds the write lock and doc already owns a reserved DocID. This is the
// single publication path — every registration goes through it so its
// invariants cannot diverge.
func (s *Store) publishLocked(doc *xmltree.Document) error {
	if _, dup := s.byName[doc.Name]; dup {
		return fmt.Errorf("store: %w: %q", ErrDuplicateName, doc.Name)
	}
	s.byName[doc.Name] = doc
	s.byID[doc.DocID] = doc
	return nil
}

// AddXML parses the XML text and registers it under name. Documents receive
// document IDs in reservation order. Adding a name that already exists
// returns an error wrapping ErrDuplicateName. The parse runs outside the
// store lock — only the registration excludes readers.
func (s *Store) AddXML(name, xmlText string) (*xmltree.Document, error) {
	if s.Doc(name) != nil {
		return nil, fmt.Errorf("store: %w: %q", ErrDuplicateName, name)
	}
	doc, err := xmltree.ParseString(xmlText, name, s.ReserveID())
	if err != nil {
		return nil, err
	}
	if err := s.RegisterParsed(doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// AddParsed registers a document built programmatically. The document's
// DocID is overwritten with the store's next ID and the tree re-finalized.
// It panics on a duplicate name (programmatic corpora control their names).
func (s *Store) AddParsed(doc *xmltree.Document) *xmltree.Document {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc.DocID = s.nextID
	s.nextID++
	doc.Finalize()
	if err := s.publishLocked(doc); err != nil {
		panic(fmt.Sprintf("store: %v", err))
	}
	return doc
}

// Doc returns the document registered under name, or nil.
func (s *Store) Doc(name string) *xmltree.Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byName[name]
}

// DocByID returns the document whose Dewey IDs start with docID, or nil.
func (s *Store) DocByID(docID int32) *xmltree.Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.byID[docID]
}

// Docs returns all documents in insertion (document ID) order.
func (s *Store) Docs() []*xmltree.Document {
	s.mu.RLock()
	docs := make([]*xmltree.Document, 0, len(s.byName))
	for _, d := range s.byName {
		docs = append(docs, d)
	}
	s.mu.RUnlock()
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
	return docs
}

// Subtree fetches the element with the given Dewey ID from base storage.
// This is the materialization primitive used for top-k results and for the
// GTP baseline's join-value access; it is counted.
func (s *Store) Subtree(id dewey.ID) *xmltree.Node {
	if len(id) == 0 {
		return nil
	}
	doc := s.DocByID(id[0])
	if doc == nil {
		return nil
	}
	n := doc.FindByID(id)
	if n != nil {
		s.subtreeFetches.Add(1)
		s.bytesFetched.Add(int64(n.ByteLen))
	}
	return n
}

// Value fetches the atomic value of the element with the given ID from base
// storage (used by the GTP baseline, which unlike the Efficient pipeline
// must access base data for join values).
func (s *Store) Value(id dewey.ID) (string, bool) {
	n := s.Subtree(id)
	if n == nil {
		return "", false
	}
	return n.Value, true
}

// SubtreeFetches returns the number of counted Subtree/Value calls.
func (s *Store) SubtreeFetches() int { return int(s.subtreeFetches.Load()) }

// BytesFetched returns the summed serialized byte length of fetched
// subtrees.
func (s *Store) BytesFetched() int { return int(s.bytesFetched.Load()) }

// ResetCounters zeroes the access counters (between benchmark phases).
func (s *Store) ResetCounters() {
	s.subtreeFetches.Store(0)
	s.bytesFetched.Store(0)
}

// TotalBytes returns the summed serialized size of all documents.
func (s *Store) TotalBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, d := range s.byName {
		total += d.Root.ByteLen
	}
	return total
}
