// Package xmltree provides the XML document model used by the whole system:
// element trees with Dewey IDs, an XML parser and serializer, a text
// tokenizer, and subtree byte lengths (paper §2.1, §3.2).
//
// Following the paper, attributes are treated as though they were
// subelements, and keyword containment is defined over element text content
// (contains(u,k) holds iff k occurs in the text of u or of a descendant).
package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"vxml/internal/dewey"
	"vxml/internal/intern"
)

// Node is an XML element. Text content directly inside the element is
// concatenated into Value; attributes are converted to leading child
// elements. Children are ordered, and the i-th child (0-based) carries the
// Dewey component i+1.
type Node struct {
	Tag      string
	Value    string
	Children []*Node
	Parent   *Node
	ID       dewey.ID
	// ByteLen is the serialized byte length of the subtree rooted here,
	// computed once at load time (paper: len(e), used for score
	// normalization and verified by Theorem 4.1(b)).
	ByteLen int
	// Meta carries PDT provenance for pruned elements whose content is
	// propagated to the view output ('c'-annotated QPT nodes): the base
	// element's ID, its full subtree byte length, and its per-query-keyword
	// term frequencies (paper Figure 6b). Nil for ordinary nodes.
	Meta *NodeMeta
}

// NodeMeta is the scoring payload attached to 'c'-annotated PDT elements.
type NodeMeta struct {
	SrcID  dewey.ID
	SrcLen int
	TFs    []int // aligned with the query keyword list
}

// Document is a parsed XML document. DocID is the first Dewey component of
// every element in the document, so IDs from different documents interleave
// correctly in a single global document order.
type Document struct {
	Name  string
	Root  *Node
	DocID int32
}

// NewElement creates a detached element node.
func NewElement(tag string) *Node { return &Node{Tag: tag} }

// AppendChild attaches c as the last child of n and returns c.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// AppendLeaf attaches a new leaf child with the given tag and value.
func (n *Node) AppendLeaf(tag, value string) *Node {
	return n.AppendChild(&Node{Tag: tag, Value: value})
}

// Parse reads an XML document from r, converts attributes to subelements,
// assigns Dewey IDs rooted at docID, and computes subtree byte lengths.
func Parse(r io.Reader, name string, docID int32) (*Document, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			// Tag names recur across every element, document and shard;
			// interning retains one canonical copy per distinct name instead
			// of one per element.
			n := NewElement(intern.String(t.Name.Local))
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.AppendLeaf(intern.String(a.Name.Local), a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: parse %s: multiple roots", name)
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse %s: unbalanced end tag", name)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					top := stack[len(stack)-1]
					if top.Value != "" {
						top.Value += " "
					}
					top.Value += text
				}
			}
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: parse %s: empty document", name)
	}
	doc := &Document{Name: name, Root: root, DocID: docID}
	doc.Finalize()
	return doc, nil
}

// ParseString is Parse over a string.
func ParseString(s, name string, docID int32) (*Document, error) {
	return Parse(strings.NewReader(s), name, docID)
}

// Finalize (re)assigns Dewey IDs, parent pointers, and byte lengths for the
// whole document. Call it after constructing or mutating a tree by hand.
func (d *Document) Finalize() {
	assignIDs(d.Root, dewey.ID{d.DocID})
	computeLen(d.Root)
}

func assignIDs(n *Node, id dewey.ID) {
	n.ID = id
	for i, c := range n.Children {
		c.Parent = n
		assignIDs(c, id.Child(int32(i+1)))
	}
}

// computeLen computes the serialized byte length of each subtree: tags cost
// len(tag)*2+5 bytes ("<t>" + "</t>"), text costs its length. The same
// formula is used by the scoring module when reconstructing lengths from
// PDTs, so Theorem 4.1(b) is checkable exactly.
func computeLen(n *Node) int {
	total := 2*len(n.Tag) + 5 + len(n.Value)
	for _, c := range n.Children {
		total += computeLen(c)
	}
	n.ByteLen = total
	return total
}

// Walk visits n and all descendants in document (pre-) order.
func (n *Node) Walk(visit func(*Node)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// FindByID returns the descendant-or-self of the document root with the
// given Dewey ID, or nil if it does not exist.
func (d *Document) FindByID(id dewey.ID) *Node {
	if len(id) == 0 || id[0] != d.DocID {
		return nil
	}
	n := d.Root
	for depth := 1; depth < len(id); depth++ {
		ord := int(id[depth])
		if ord < 1 || ord > len(n.Children) {
			return nil
		}
		n = n.Children[ord-1]
	}
	return n
}

// PathFromRoot returns the slash-joined tag names from the document root to
// n, e.g. "/books/book/isbn".
func (n *Node) PathFromRoot() string {
	var tags []string
	for cur := n; cur != nil; cur = cur.Parent {
		tags = append(tags, cur.Tag)
	}
	var b strings.Builder
	for i := len(tags) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(tags[i])
	}
	return b.String()
}

// IsLeaf reports whether n has no element children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// NodeCount returns the number of elements in the subtree rooted at n.
func (n *Node) NodeCount() int {
	count := 1
	for _, c := range n.Children {
		count += c.NodeCount()
	}
	return count
}

// Clone deep-copies the subtree rooted at n. The copy keeps IDs and byte
// lengths but has a nil parent. Allocation is O(1) in the subtree size:
// one sizing walk, then nodes, child-pointer slices and Dewey-ID storage
// are carved from three arenas — materializing a top-k winner is a handful
// of allocations instead of several per element.
func (n *Node) Clone() *Node {
	nodes, comps := cloneSize(n)
	slab := make([]Node, nodes)
	childArena := make([]*Node, nodes-1)
	idArena := make([]int32, comps)
	var nodeCur, childCur, idCur int
	var build func(src *Node) *Node
	build = func(src *Node) *Node {
		dst := &slab[nodeCur]
		nodeCur++
		dst.Tag, dst.Value, dst.ByteLen = src.Tag, src.Value, src.ByteLen
		if src.ID != nil {
			// Full-capacity subslice: an append on the cloned ID can never
			// bleed into the next node's components.
			seg := idArena[idCur : idCur+len(src.ID) : idCur+len(src.ID)]
			copy(seg, src.ID)
			dst.ID = seg
			idCur += len(src.ID)
		}
		if len(src.Children) > 0 {
			seg := childArena[childCur : childCur+len(src.Children) : childCur+len(src.Children)]
			childCur += len(src.Children)
			dst.Children = seg
			for i, c := range src.Children {
				cc := build(c)
				cc.Parent = dst
				seg[i] = cc
			}
		}
		return dst
	}
	return build(n)
}

// cloneSize sizes Clone's arenas: the subtree's node count and total Dewey
// ID components.
func cloneSize(n *Node) (nodes, comps int) {
	nodes, comps = 1, len(n.ID)
	for _, c := range n.Children {
		cn, cc := cloneSize(c)
		nodes += cn
		comps += cc
	}
	return nodes, comps
}

// WriteXML serializes the subtree rooted at n to w with proper escaping.
// indent enables human-readable output; an empty indent yields compact XML.
func (n *Node) WriteXML(w io.Writer, indent string) error {
	return writeXML(w, n, indent, 0)
}

func writeXML(w io.Writer, n *Node, indent string, depth int) error {
	pad := ""
	nl := ""
	if indent != "" {
		pad = strings.Repeat(indent, depth)
		nl = "\n"
	}
	if n.IsLeaf() {
		_, err := fmt.Fprintf(w, "%s<%s>%s</%s>%s", pad, n.Tag, escape(n.Value), n.Tag, nl)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s<%s>%s", pad, n.Tag, nl); err != nil {
		return err
	}
	if n.Value != "" {
		if _, err := fmt.Fprintf(w, "%s%s%s", pad+indent, escape(n.Value), nl); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeXML(w, c, indent, depth+1); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s</%s>%s", pad, n.Tag, nl)
	return err
}

// XMLString returns the serialized subtree as a string.
func (n *Node) XMLString(indent string) string {
	var b strings.Builder
	n.WriteXML(&b, indent) //nolint:errcheck // strings.Builder cannot fail
	return b.String()
}

func escape(s string) string {
	if !strings.ContainsAny(s, "<>&") {
		return s
	}
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

// Tokenize splits text into lowercase keyword tokens: maximal runs of
// letters and digits. It is the single tokenizer used by indexing, scoring
// and the baselines, so term frequencies agree across pipelines. Callers on
// hot paths that only consume the tokens should prefer VisitTokens, which
// produces the same tokens without building the slice.
func Tokenize(text string) []string {
	var tokens []string
	VisitTokens(text, func(tok string) bool {
		tokens = append(tokens, tok)
		return true
	})
	return tokens
}

// VisitTokens streams the tokens of Tokenize(text) to fn in order; fn
// returns false to stop early. ASCII text — the overwhelmingly common case
// — is tokenized without allocating: tokens that are already lowercase are
// substrings of text, and only tokens containing uppercase letters are
// copied (to their lowered form). Text with any non-ASCII byte falls back
// to the generic Unicode-folding path, so the emitted tokens are identical
// to Tokenize's for every input.
func VisitTokens(text string, fn func(tok string) bool) {
	for i := 0; i < len(text); i++ {
		if text[i] >= 0x80 {
			for _, tok := range tokenizeUnicode(text) {
				if !fn(tok) {
					return
				}
			}
			return
		}
	}
	// ASCII: lowering maps only 'A'-'Z', so token boundaries (bytes outside
	// [A-Za-z0-9]) and the lowered forms are computable in place.
	start := -1
	hasUpper := false
	for i := 0; i <= len(text); i++ {
		var alnum, upper bool
		if i < len(text) {
			c := text[i]
			upper = c >= 'A' && c <= 'Z'
			alnum = upper || c >= 'a' && c <= 'z' || c >= '0' && c <= '9'
		}
		switch {
		case alnum && start < 0:
			start, hasUpper = i, upper
		case alnum:
			hasUpper = hasUpper || upper
		case start >= 0:
			if !fn(lowerASCII(text[start:i], hasUpper)) {
				return
			}
			start = -1
		}
	}
}

// lowerASCII lowers an all-ASCII token, returning tok itself when it has no
// uppercase letters (the caller tracked that during the scan).
func lowerASCII(tok string, hasUpper bool) string {
	if !hasUpper {
		return tok
	}
	b := make([]byte, len(tok))
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}

// tokenizeUnicode is the generic tokenizer for text containing non-ASCII
// bytes: Unicode-fold the whole text, then split. Kept verbatim as the
// semantics VisitTokens's ASCII fast path must reproduce.
func tokenizeUnicode(text string) []string {
	var tokens []string
	start := -1
	lower := strings.ToLower(text)
	for i, r := range lower {
		alnum := r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			tokens = append(tokens, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, lower[start:])
	}
	return tokens
}

// SubtreeTF counts occurrences of each query keyword in the text of n and
// its descendants (the paper's tf(e,k)). Keywords must be lowercase.
func SubtreeTF(n *Node, keywords []string) []int {
	tf := make([]int, len(keywords))
	count := func(tok string) bool {
		for i, k := range keywords {
			if tok == k {
				tf[i]++
			}
		}
		return true
	}
	n.Walk(func(x *Node) {
		if x.Value == "" {
			return
		}
		VisitTokens(x.Value, count)
	})
	return tf
}

// Contains reports whether the subtree rooted at n contains the lowercase
// keyword k in its text content (the paper's contains(u,k) predicate).
func Contains(n *Node, k string) bool {
	found := false
	match := func(tok string) bool {
		if tok == k {
			found = true
			return false
		}
		return true
	}
	n.Walk(func(x *Node) {
		if found || x.Value == "" {
			return
		}
		VisitTokens(x.Value, match)
	})
	return found
}

// LeafPaths returns the sorted set of distinct root-to-node label paths of
// the document, one entry per distinct path that reaches any element (not
// only leaves). The path index uses this as its path dictionary.
func (d *Document) LeafPaths() []string {
	set := map[string]bool{}
	d.Root.Walk(func(n *Node) { set[n.PathFromRoot()] = true })
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// Stats summarizes a document for diagnostics.
type Stats struct {
	Elements int
	Bytes    int
	MaxDepth int
}

// ComputeStats walks the document once and reports element count, byte
// length and maximum depth.
func (d *Document) ComputeStats() Stats {
	var s Stats
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Elements++
		if depth > s.MaxDepth {
			s.MaxDepth = depth
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(d.Root, 1)
	s.Bytes = d.Root.ByteLen
	return s
}

// FormatDocID renders id prefixed with the document name for error messages.
func (d *Document) FormatDocID(id dewey.ID) string {
	return d.Name + "#" + id.String()
}
