// Microbenchmarks for the tokenization hot path: Tokenize/VisitTokens is
// run for every text node during index construction and for every node of
// every materialized subtree during FromBase scoring, so its per-token
// allocation behavior dominates those paths. vxmlbench's hot_paths scenario
// reports the same comparison machine-readably.
package xmltree

import (
	"fmt"
	"strings"
	"testing"
)

// benchText builds a corpus-shaped text blob: lowercase ASCII words with
// digits and punctuation, the common case of the synthetic corpora.
func benchText(words int) string {
	var b strings.Builder
	for i := 0; i < words; i++ {
		if i%7 == 0 {
			fmt.Fprintf(&b, "ref-%d ", i)
		}
		b.WriteString("fuzzy neural control systems thomas moore parallel data ")
	}
	return b.String()
}

func benchDoc(b *testing.B, articles int) *Document {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<books>")
	for i := 0; i < articles; i++ {
		fmt.Fprintf(&sb, "<article><tl>study %d</tl><bdy>%s</bdy></article>", i, benchText(8))
	}
	sb.WriteString("</books>")
	doc, err := ParseString(sb.String(), "bench.xml", 1)
	if err != nil {
		b.Fatal(err)
	}
	return doc
}

func BenchmarkTokenize(b *testing.B) {
	text := benchText(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}

func BenchmarkSubtreeTF(b *testing.B) {
	doc := benchDoc(b, 50)
	kws := []string{"thomas", "control"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SubtreeTF(doc.Root, kws)
	}
}

func BenchmarkContains(b *testing.B) {
	doc := benchDoc(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Contains(doc.Root, "moore")
	}
}

func BenchmarkClone(b *testing.B) {
	doc := benchDoc(b, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc.Root.Clone()
	}
}
