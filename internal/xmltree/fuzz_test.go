package xmltree

import (
	"slices"
	"testing"
)

// FuzzVisitTokens pins the tokenizer's two-path design: the zero-allocation
// ASCII fast path must emit byte-identical tokens, in order, to the generic
// Unicode-folding tokenizer that defines the semantics — for every input,
// including ones that mix the paths' trigger conditions (uppercase runs,
// digits at boundaries, high bytes, invalid UTF-8). Divergence here would
// silently split the posting lists from the query terms.
func FuzzVisitTokens(f *testing.F) {
	seeds := []string{
		"", " ", "hello world", "Hello World", "MiXeD CaSe tOkEnS",
		"already lowercase text stays shared",
		"a1b2c3 4d5e 678", "trailing", "trailing ", " leading",
		"punct,separated;tokens!and(more)",
		"Grüße aus München",         // non-ASCII letters are boundaries
		"caf\xc3\xa9 touch\xc3\xa9", // multi-byte UTF-8 mid-token
		"broken \xff\xfe bytes",     // invalid UTF-8
		"ASCII then unicode: naïve", // fast path until the high byte scan
		"ÅNGSTRÖM UPPER",            // folding applies on the slow path
		"tab\tand\nnewline\rbreaks",
		"0123456789",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		want := tokenizeUnicode(text)

		var got []string
		VisitTokens(text, func(tok string) bool {
			got = append(got, tok)
			return true
		})
		if !slices.Equal(got, want) {
			t.Fatalf("VisitTokens diverges from the Unicode tokenizer\n text: %q\n  got: %q\n want: %q", text, got, want)
		}
		if toks := Tokenize(text); !slices.Equal(toks, want) {
			t.Fatalf("Tokenize diverges from the Unicode tokenizer\n text: %q\n  got: %q\n want: %q", text, toks, want)
		}

		// Early stop delivers exactly the prefix: no token is emitted after
		// fn returns false.
		if len(want) > 1 {
			stop := len(want) / 2
			var prefix []string
			VisitTokens(text, func(tok string) bool {
				prefix = append(prefix, tok)
				return len(prefix) < stop
			})
			if !slices.Equal(prefix, want[:stop]) {
				t.Fatalf("early stop after %d tokens delivered %q, want %q", stop, prefix, want[:stop])
			}
		}
	})
}
