package xmltree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/dewey"
)

const booksXML = `<books>
  <book isbn="111-11-1111">
    <title>XML Web Services</title>
    <publisher>Prentice Hall</publisher>
    <year>2004</year>
  </book>
  <book isbn="222-22-2222">
    <title>Artificial Intelligence</title>
    <publisher>Prentice Hall</publisher>
    <year>2002</year>
  </book>
</books>`

func parseBooks(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseString(booksXML, "books.xml", 1)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestParseStructure(t *testing.T) {
	doc := parseBooks(t)
	if doc.Root.Tag != "books" {
		t.Fatalf("root tag = %q", doc.Root.Tag)
	}
	if len(doc.Root.Children) != 2 {
		t.Fatalf("expected 2 books, got %d", len(doc.Root.Children))
	}
	book := doc.Root.Children[0]
	// Attribute becomes the first child element.
	if book.Children[0].Tag != "isbn" || book.Children[0].Value != "111-11-1111" {
		t.Errorf("attribute conversion failed: %+v", book.Children[0])
	}
	if book.Children[1].Tag != "title" || book.Children[1].Value != "XML Web Services" {
		t.Errorf("title = %+v", book.Children[1])
	}
}

func TestDeweyAssignment(t *testing.T) {
	doc := parseBooks(t)
	if got := doc.Root.ID.String(); got != "1" {
		t.Errorf("root ID = %q", got)
	}
	book2 := doc.Root.Children[1]
	if got := book2.ID.String(); got != "1.2" {
		t.Errorf("second book ID = %q", got)
	}
	if got := book2.Children[1].ID.String(); got != "1.2.2" {
		t.Errorf("title of second book ID = %q", got)
	}
}

func TestFindByID(t *testing.T) {
	doc := parseBooks(t)
	cases := []struct {
		id  string
		tag string
		ok  bool
	}{
		{"1", "books", true},
		{"1.1", "book", true},
		{"1.1.2", "title", true},
		{"1.9", "", false},
		{"2", "", false},
		{"1.1.2.1", "", false},
	}
	for _, c := range cases {
		n := doc.FindByID(dewey.MustParse(c.id))
		if c.ok && (n == nil || n.Tag != c.tag) {
			t.Errorf("FindByID(%s) = %v, want tag %q", c.id, n, c.tag)
		}
		if !c.ok && n != nil {
			t.Errorf("FindByID(%s) = %v, want nil", c.id, n)
		}
	}
}

func TestFindByIDInverseOfWalk(t *testing.T) {
	doc := parseBooks(t)
	doc.Root.Walk(func(n *Node) {
		if got := doc.FindByID(n.ID); got != n {
			t.Errorf("FindByID(%s) did not return the walked node", n.ID)
		}
	})
}

func TestPathFromRoot(t *testing.T) {
	doc := parseBooks(t)
	title := doc.FindByID(dewey.MustParse("1.1.2"))
	if got := title.PathFromRoot(); got != "/books/book/title" {
		t.Errorf("PathFromRoot = %q", got)
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"XML Web Services", []string{"xml", "web", "services"}},
		{"  easy-to-read, really! ", []string{"easy", "to", "read", "really"}},
		{"", nil},
		{"...", nil},
		{"a1 B2", []string{"a1", "b2"}},
		{"111-11-1111", []string{"111", "11", "1111"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSubtreeTFAndContains(t *testing.T) {
	doc, err := ParseString(
		`<r><a>xml search</a><b><c>xml xml</c></b></r>`, "r.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	tf := SubtreeTF(doc.Root, []string{"xml", "search", "missing"})
	if !reflect.DeepEqual(tf, []int{3, 1, 0}) {
		t.Errorf("SubtreeTF = %v", tf)
	}
	if !Contains(doc.Root, "search") {
		t.Error("Contains(search) = false")
	}
	if Contains(doc.Root.Children[1], "search") {
		t.Error("b subtree should not contain 'search'")
	}
	if Contains(doc.Root, "missing") {
		t.Error("Contains(missing) = true")
	}
}

func TestByteLenAdditive(t *testing.T) {
	doc := parseBooks(t)
	doc.Root.Walk(func(n *Node) {
		want := 2*len(n.Tag) + 5 + len(n.Value)
		for _, c := range n.Children {
			want += c.ByteLen
		}
		if n.ByteLen != want {
			t.Errorf("ByteLen(%s) = %d, want %d", n.ID, n.ByteLen, want)
		}
	})
}

func TestSerializeParseRoundTrip(t *testing.T) {
	doc := parseBooks(t)
	out := doc.Root.XMLString("")
	doc2, err := ParseString(out, "books.xml", 1)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !equalTree(doc.Root, doc2.Root) {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", out, doc2.Root.XMLString(""))
	}
}

func TestEscaping(t *testing.T) {
	doc, err := ParseString("<r><a>x &lt; y &amp; z</a></r>", "r.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Root.Children[0].Value != "x < y & z" {
		t.Errorf("unescape failed: %q", doc.Root.Children[0].Value)
	}
	out := doc.Root.XMLString("")
	doc2, err := ParseString(out, "r.xml", 1)
	if err != nil {
		t.Fatalf("reparse escaped: %v (%s)", err, out)
	}
	if doc2.Root.Children[0].Value != "x < y & z" {
		t.Errorf("round trip of special chars: %q", doc2.Root.Children[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a><b></a></b>", "<a></a><b></b>", "just text"} {
		if _, err := ParseString(bad, "bad.xml", 1); err == nil {
			t.Errorf("ParseString(%q): expected error", bad)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	doc := parseBooks(t)
	c := doc.Root.Clone()
	c.Children[0].Children[1].Value = "mutated"
	if doc.Root.Children[0].Children[1].Value == "mutated" {
		t.Error("Clone shares nodes")
	}
	if !equalTree(doc.Root, parseBooks(t).Root) {
		t.Error("original changed")
	}
}

func TestLeafPaths(t *testing.T) {
	doc := parseBooks(t)
	paths := doc.LeafPaths()
	want := []string{
		"/books", "/books/book", "/books/book/isbn",
		"/books/book/publisher", "/books/book/title", "/books/book/year",
	}
	if !reflect.DeepEqual(paths, want) {
		t.Errorf("LeafPaths = %v, want %v", paths, want)
	}
}

func TestComputeStats(t *testing.T) {
	doc := parseBooks(t)
	s := doc.ComputeStats()
	if s.Elements != 11 { // books + 2*(book + 4 fields)
		t.Errorf("Elements = %d", s.Elements)
	}
	if s.MaxDepth != 3 {
		t.Errorf("MaxDepth = %d", s.MaxDepth)
	}
	if s.Bytes != doc.Root.ByteLen {
		t.Errorf("Bytes = %d, want %d", s.Bytes, doc.Root.ByteLen)
	}
}

func equalTree(a, b *Node) bool {
	if a.Tag != b.Tag || a.Value != b.Value || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !equalTree(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// randomTree builds a small random element tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	tags := []string{"a", "b", "c", "d"}
	words := []string{"xml", "search", "data", "query", "view"}
	n := NewElement(tags[r.Intn(len(tags))])
	if depth <= 0 || r.Intn(3) == 0 {
		n.Value = words[r.Intn(len(words))] + " " + words[r.Intn(len(words))]
		return n
	}
	for i := 0; i < 1+r.Intn(3); i++ {
		n.AppendChild(randomTree(r, depth-1))
	}
	return n
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := &Document{Name: "t.xml", Root: randomTree(r, 3), DocID: 1}
		doc.Finalize()
		out := doc.Root.XMLString("  ")
		doc2, err := ParseString(out, "t.xml", 1)
		return err == nil && equalTree(doc.Root, doc2.Root)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickIDsStrictlyIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := &Document{Name: "t.xml", Root: randomTree(r, 4), DocID: 1}
		doc.Finalize()
		var prev dewey.ID
		ok := true
		doc.Root.Walk(func(n *Node) {
			if prev != nil && dewey.Compare(prev, n.ID) >= 0 {
				ok = false
			}
			prev = n.ID
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtreeTFMatchesTokenCount(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := &Document{Name: "t.xml", Root: randomTree(r, 3), DocID: 1}
		doc.Finalize()
		kw := []string{"xml", "query"}
		tf := SubtreeTF(doc.Root, kw)
		// reference: serialize all text and count
		var texts []string
		doc.Root.Walk(func(n *Node) { texts = append(texts, n.Value) })
		all := Tokenize(strings.Join(texts, " "))
		want := make([]int, len(kw))
		for _, tok := range all {
			for i, k := range kw {
				if tok == k {
					want[i]++
				}
			}
		}
		return reflect.DeepEqual(tf, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
