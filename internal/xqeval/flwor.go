package xqeval

import (
	"fmt"

	"vxml/internal/pred"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

// evalBool computes the effective boolean value of a predicate expression:
// comparisons are existential over atomized operands, ftcontains checks
// keyword containment over materialized subtrees, and any other expression
// is true iff its value sequence is non-empty.
func (e *Evaluator) evalBool(expr xq.Expr, en *env) (bool, error) {
	switch x := expr.(type) {
	case *xq.CmpExpr:
		left, err := e.Eval(x.Left, en)
		if err != nil {
			return false, err
		}
		right, err := e.Eval(x.Right, en)
		if err != nil {
			return false, err
		}
		for _, l := range left {
			lv := Atomize(l)
			for _, r := range right {
				if pred.Compare(lv, Atomize(r), x.Op) {
					return true, nil
				}
			}
		}
		return false, nil
	case *xq.FTContainsExpr:
		targets, err := e.Eval(x.Target, en)
		if err != nil {
			return false, err
		}
		for _, item := range targets {
			n, ok := item.(*xmltree.Node)
			if !ok {
				continue
			}
			if ContainsKeywords(n, x.Keywords, x.Conjunctive) {
				return true, nil
			}
		}
		return false, nil
	default:
		v, err := e.Eval(expr, en)
		if err != nil {
			return false, err
		}
		if len(v) == 1 {
			if s, ok := v[0].(string); ok {
				return s != "", nil
			}
		}
		return len(v) > 0, nil
	}
}

// ContainsKeywords reports whether the materialized subtree satisfies the
// keyword set conjunctively or disjunctively (used by the Baseline
// pipeline; the Efficient pipeline enforces this from PDT tf values).
func ContainsKeywords(n *xmltree.Node, keywords []string, conjunctive bool) bool {
	for _, k := range keywords {
		has := xmltree.Contains(n, k)
		if conjunctive && !has {
			return false
		}
		if !conjunctive && has {
			return true
		}
	}
	return conjunctive
}

// evalCtor constructs a fresh element. Node children are attached by
// reference (no deep copy) so that scoring can trace view results back to
// base or PDT elements; parent pointers of referenced nodes are left
// untouched.
func (e *Evaluator) evalCtor(x *xq.ElementExpr, en *env) ([]Item, error) {
	n := xmltree.NewElement(x.Tag)
	for _, childExpr := range x.Children {
		items, err := e.Eval(childExpr, en)
		if err != nil {
			return nil, err
		}
		for _, item := range items {
			switch c := item.(type) {
			case *xmltree.Node:
				n.Children = append(n.Children, c)
			case string:
				if n.Value != "" {
					n.Value += " "
				}
				n.Value += c
			}
		}
	}
	return []Item{n}, nil
}

const maxCallDepth = 64

func (e *Evaluator) evalCall(x *xq.CallExpr, en *env) ([]Item, error) {
	fd, ok := e.funcs[x.Name]
	if !ok {
		return nil, fmt.Errorf("xqeval: unknown function %q", x.Name)
	}
	if len(x.Args) != len(fd.Params) {
		return nil, fmt.Errorf("xqeval: %s expects %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
	}
	if e.callDepth >= maxCallDepth {
		return nil, fmt.Errorf("xqeval: call depth exceeded (recursive functions are not supported)")
	}
	// Functions see only their parameters (no caller locals).
	var fnEnv *env
	for i, arg := range x.Args {
		v, err := e.Eval(arg, en)
		if err != nil {
			return nil, err
		}
		fnEnv = fnEnv.bind(fd.Params[i], v)
	}
	e.callDepth++
	defer func() { e.callDepth-- }()
	return e.Eval(fd.Body, fnEnv)
}

// joinIndex is the hash index built for the equality-join fast path: it
// maps atomized join-key values of the loop sequence to the positions of
// matching items.
type joinIndex struct {
	items   []Item
	byKey   map[string][]int
	keyExpr xq.Expr
}

func (e *Evaluator) evalFLWOR(x *xq.FLWORExpr, en *env) ([]Item, error) {
	return e.evalClauses(x, 0, en)
}

// OuterBindings evaluates the binding sequence of a top-level FLWOR's first
// clause, the axis along which evaluation can be partitioned: FLWOR
// semantics evaluates the remaining clauses independently per binding and
// concatenates, so Eval(x) is exactly the concatenation of
// EvalTail(x, item) over these items in order. ok is false when the first
// clause is a let binding (no partitionable sequence).
func (e *Evaluator) OuterBindings(x *xq.FLWORExpr) ([]Item, bool, error) {
	if len(x.Clauses) == 0 || x.Clauses[0].IsLet {
		return nil, false, nil
	}
	seq, err := e.Eval(x.Clauses[0].In, nil)
	return seq, true, err
}

// EvalTail evaluates the FLWOR's remaining clauses, where-filter and return
// for a single binding of its first (for) clause. Different bindings may be
// evaluated by different Evaluators — over the same immutable catalog —
// and the concatenation of their outputs in binding order reproduces the
// single-evaluator result exactly.
func (e *Evaluator) EvalTail(x *xq.FLWORExpr, binding Item) ([]Item, error) {
	return e.evalClauses(x, 1, (*env)(nil).bind1(x.Clauses[0].Var, binding))
}

func (e *Evaluator) evalClauses(x *xq.FLWORExpr, idx int, en *env) ([]Item, error) {
	if idx == len(x.Clauses) {
		if x.Where != nil {
			ok, err := e.evalBool(x.Where, en)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
		}
		return e.Eval(x.Return, en)
	}
	cl := x.Clauses[idx]
	if cl.IsLet {
		v, err := e.Eval(cl.In, en)
		if err != nil {
			return nil, err
		}
		return e.evalClauses(x, idx+1, en.bind(cl.Var, v))
	}
	// Hash-join fast path: the last clause is a for-loop whose sequence is
	// loop-invariant and whose where-clause is an equality with the loop
	// variable on exactly one side.
	if e.HashJoin && idx == len(x.Clauses)-1 {
		if out, ok, err := e.tryHashJoin(x, cl, en); ok || err != nil {
			return out, err
		}
	}
	seq, err := e.Eval(cl.In, en)
	if err != nil {
		return nil, err
	}
	var out []Item
	for _, item := range seq {
		if err := e.ctxErr(); err != nil {
			return nil, err
		}
		v, err := e.evalClauses(x, idx+1, en.bind1(cl.Var, item))
		if err != nil {
			return nil, err
		}
		out = append(out, v...)
	}
	return out, nil
}

// tryHashJoin applies the equality-join fast path when eligible. It
// returns ok=false when the FLWOR shape does not qualify.
func (e *Evaluator) tryHashJoin(x *xq.FLWORExpr, cl xq.ForLetClause, en *env) ([]Item, bool, error) {
	cmp, isCmp := x.Where.(*xq.CmpExpr)
	if !isCmp || cmp.Op != pred.Eq {
		return nil, false, nil
	}
	if len(FreeVars(cl.In)) != 0 {
		return nil, false, nil // loop sequence is not invariant
	}
	// Identify which comparison side is keyed by the loop variable.
	leftVars, rightVars := FreeVars(cmp.Left), FreeVars(cmp.Right)
	var keyExpr, probeExpr xq.Expr
	switch {
	case onlyVar(leftVars, cl.Var) && !rightVars[cl.Var]:
		keyExpr, probeExpr = cmp.Left, cmp.Right
	case onlyVar(rightVars, cl.Var) && !leftVars[cl.Var]:
		keyExpr, probeExpr = cmp.Right, cmp.Left
	default:
		return nil, false, nil
	}
	ji := e.joinCache[x]
	if ji == nil || ji.keyExpr != keyExpr {
		seq, err := e.Eval(cl.In, en)
		if err != nil {
			return nil, true, err
		}
		ji = &joinIndex{items: seq, byKey: map[string][]int{}, keyExpr: keyExpr}
		for i, item := range seq {
			if err := e.ctxErr(); err != nil {
				return nil, true, err
			}
			keys, err := e.Eval(keyExpr, (*env)(nil).bind1(cl.Var, item))
			if err != nil {
				return nil, true, err
			}
			seen := map[string]bool{}
			for _, k := range keys {
				kv := Atomize(k)
				if !seen[kv] {
					seen[kv] = true
					ji.byKey[kv] = append(ji.byKey[kv], i)
				}
			}
		}
		e.joinCache[x] = ji
	}
	probes, err := e.Eval(probeExpr, en)
	if err != nil {
		return nil, true, err
	}
	e.JoinProbes += len(probes)
	matched := map[int]bool{}
	var order []int
	for _, p := range probes {
		for _, i := range ji.byKey[Atomize(p)] {
			if !matched[i] {
				matched[i] = true
				order = append(order, i)
			}
		}
	}
	sortInts(order)
	var out []Item
	for _, i := range order {
		if err := e.ctxErr(); err != nil {
			return nil, true, err
		}
		v, err := e.Eval(x.Return, en.bind1(cl.Var, ji.items[i]))
		if err != nil {
			return nil, true, err
		}
		out = append(out, v...)
	}
	return out, true, nil
}

func onlyVar(vars map[string]bool, v string) bool {
	return len(vars) == 1 && vars[v]
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FreeVars returns the set of free variable names in expr.
func FreeVars(expr xq.Expr) map[string]bool {
	free := map[string]bool{}
	collectFree(expr, map[string]bool{}, free)
	return free
}

func collectFree(expr xq.Expr, bound, free map[string]bool) {
	switch x := expr.(type) {
	case *xq.VarExpr:
		if !bound[x.Name] {
			free[x.Name] = true
		}
	case *xq.StepExpr:
		collectFree(x.Base, bound, free)
	case *xq.FilterExpr:
		collectFree(x.Base, bound, free)
		collectFree(x.Pred, bound, free)
	case *xq.CmpExpr:
		collectFree(x.Left, bound, free)
		collectFree(x.Right, bound, free)
	case *xq.CondExpr:
		collectFree(x.Cond, bound, free)
		collectFree(x.Then, bound, free)
		collectFree(x.Else, bound, free)
	case *xq.SeqExpr:
		for _, it := range x.Items {
			collectFree(it, bound, free)
		}
	case *xq.ElementExpr:
		for _, c := range x.Children {
			collectFree(c, bound, free)
		}
	case *xq.CallExpr:
		for _, a := range x.Args {
			collectFree(a, bound, free)
		}
	case *xq.FTContainsExpr:
		collectFree(x.Target, bound, free)
	case *xq.FLWORExpr:
		inner := map[string]bool{}
		for k := range bound {
			inner[k] = true
		}
		for _, cl := range x.Clauses {
			collectFree(cl.In, inner, free)
			inner[cl.Var] = true
		}
		if x.Where != nil {
			collectFree(x.Where, inner, free)
		}
		collectFree(x.Return, inner, free)
	}
}
