// Package xqeval is the "traditional query evaluator" of the system
// architecture (paper Figure 3): it evaluates the supported XQuery subset
// over a catalog of XML documents. The same evaluator runs unchanged over
// base documents (the Baseline pipeline) and over PDTs (the Efficient
// pipeline), which is exactly the property the paper's architecture relies
// on ("our proposed architecture requires no changes to the XML query
// evaluator").
//
// The evaluator includes an optional hash-join fast path for equality
// where-clauses over loop-invariant sequences; it stands in for the value
// indexes a production engine such as Quark would use, and can be disabled
// to measure its effect (see the ablation benchmarks).
package xqeval

import (
	"context"
	"fmt"
	"sort"

	"vxml/internal/docname"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

// Item is one item of an XQuery value sequence: an element node or an
// atomic string value.
type Item any

// Catalog resolves fn:doc(name) references. A nil document means the name
// is unknown; the evaluator treats it as an empty sequence so that views
// over empty PDTs evaluate to empty results.
type Catalog interface {
	Doc(name string) *xmltree.Document
}

// CollectionCatalog is the optional Catalog extension that resolves
// fn:collection name patterns (docname.IsPattern) to every matching
// document. Implementations must return documents in a deterministic
// corpus order — document ID (insertion) order everywhere in this system —
// because the returned order is the view's result order and ranking breaks
// score ties by it. A catalog without this extension evaluates patterns as
// empty sequences.
type CollectionCatalog interface {
	DocsMatching(pattern string) []*xmltree.Document
}

// MapCatalog is a Catalog backed by a map. Patterns resolve against the
// map keys with matches ordered by document ID (ties by name, for
// programmatic documents that never got one).
type MapCatalog map[string]*xmltree.Document

// Doc implements Catalog.
func (m MapCatalog) Doc(name string) *xmltree.Document { return m[name] }

// DocsMatching implements CollectionCatalog.
func (m MapCatalog) DocsMatching(pattern string) []*xmltree.Document {
	var docs []*xmltree.Document
	for name, d := range m {
		if d != nil && docname.Match(pattern, name) {
			docs = append(docs, d)
		}
	}
	sort.Slice(docs, func(i, j int) bool {
		if docs[i].DocID != docs[j].DocID {
			return docs[i].DocID < docs[j].DocID
		}
		return docs[i].Name < docs[j].Name
	})
	return docs
}

// Evaluator evaluates parsed queries against a catalog.
type Evaluator struct {
	catalog Catalog
	funcs   map[string]*xq.FuncDecl
	// HashJoin enables the equality-join fast path (on by default).
	HashJoin bool
	// JoinProbes counts hash-join probes for diagnostics.
	JoinProbes int

	ctx       context.Context
	joinCache map[*xq.FLWORExpr]*joinIndex
	docNodes  map[*xmltree.Document]*xmltree.Node
	callDepth int
}

// New returns an evaluator for the query's function environment.
func New(catalog Catalog, funcs map[string]*xq.FuncDecl) *Evaluator {
	if funcs == nil {
		funcs = map[string]*xq.FuncDecl{}
	}
	return &Evaluator{
		catalog:   catalog,
		funcs:     funcs,
		HashJoin:  true,
		joinCache: map[*xq.FLWORExpr]*joinIndex{},
		docNodes:  map[*xmltree.Document]*xmltree.Node{},
	}
}

// EvalQuery evaluates the query body in an empty environment.
func (e *Evaluator) EvalQuery(q *xq.Query) ([]Item, error) {
	e.funcs = q.Functions
	e.joinCache = map[*xq.FLWORExpr]*joinIndex{}
	return e.Eval(q.Body, nil)
}

// SetContext arms cooperative cancellation: subsequent evaluation checks
// ctx between FLWOR bindings, filter items and hash-join build steps — the
// loops whose trip counts grow with the corpus — and unwinds with ctx.Err()
// (context.Canceled or context.DeadlineExceeded) at the first failed check.
// A nil ctx (the default) disables the checks. The evaluator is
// single-threaded, so SetContext must not race with Eval.
func (e *Evaluator) SetContext(ctx context.Context) { e.ctx = ctx }

// ctxErr reports the armed context's error, nil when no context is set.
func (e *Evaluator) ctxErr() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// docNode returns the cached document node for doc: a "#document" wrapper
// whose single child is the root element, so a leading /roottag step works
// as in XPath. The wrapper references the root without rewriting its
// parent pointer, keeping catalog documents immutable — which is what lets
// concurrent evaluators share one catalog.
func (e *Evaluator) docNode(doc *xmltree.Document) *xmltree.Node {
	dn := e.docNodes[doc]
	if dn == nil {
		dn = &xmltree.Node{Tag: "#document", Children: []*xmltree.Node{doc.Root}}
		e.docNodes[doc] = dn
	}
	return dn
}

// env is an immutable chain of variable bindings; the context item is bound
// under the name ".".
type env struct {
	name   string
	value  []Item
	parent *env
}

func (en *env) bind(name string, value []Item) *env {
	return &env{name: name, value: value, parent: en}
}

// env1 carries a single-item binding and its one-item sequence in a single
// allocation. FLWOR loops, filters and hash-join probes bind one item per
// iteration, so the separate []Item{item} literal of the generic bind was
// half the evaluator's environment churn.
type env1 struct {
	e   env
	buf [1]Item
}

// bind1 binds a one-item sequence, allocating once instead of twice.
func (en *env) bind1(name string, item Item) *env {
	x := &env1{buf: [1]Item{item}}
	x.e = env{name: name, value: x.buf[:1:1], parent: en}
	return &x.e
}

func (en *env) lookup(name string) ([]Item, bool) {
	for cur := en; cur != nil; cur = cur.parent {
		if cur.name == name {
			return cur.value, true
		}
	}
	return nil, false
}

// Eval evaluates expr in the given environment (nil for empty).
func (e *Evaluator) Eval(expr xq.Expr, en *env) ([]Item, error) {
	switch x := expr.(type) {
	case *xq.DocExpr:
		if docname.IsPattern(x.Name) {
			// fn:collection over a name pattern: the concatenation of every
			// matching document's node, in corpus (document ID) order. A
			// catalog without collection support yields an empty sequence,
			// like an unknown single document.
			cc, ok := e.catalog.(CollectionCatalog)
			if !ok {
				return nil, nil
			}
			var out []Item
			for _, doc := range cc.DocsMatching(x.Name) {
				if doc == nil || doc.Root == nil {
					continue
				}
				out = append(out, e.docNode(doc))
			}
			return out, nil
		}
		doc := e.catalog.Doc(x.Name)
		if doc == nil || doc.Root == nil {
			return nil, nil
		}
		return []Item{e.docNode(doc)}, nil
	case *xq.VarExpr:
		v, ok := en.lookup(x.Name)
		if !ok {
			return nil, fmt.Errorf("xqeval: unbound variable $%s", x.Name)
		}
		return v, nil
	case *xq.DotExpr:
		v, ok := en.lookup(".")
		if !ok {
			return nil, fmt.Errorf("xqeval: no context item for '.'")
		}
		return v, nil
	case *xq.LiteralExpr:
		return []Item{x.Value}, nil
	case *xq.StepExpr:
		base, err := e.Eval(x.Base, en)
		if err != nil {
			return nil, err
		}
		return evalSteps(base, x.Steps), nil
	case *xq.FilterExpr:
		base, err := e.Eval(x.Base, en)
		if err != nil {
			return nil, err
		}
		var out []Item
		for _, item := range base {
			if err := e.ctxErr(); err != nil {
				return nil, err
			}
			ok, err := e.evalBool(x.Pred, en.bind1(".", item))
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, item)
			}
		}
		return out, nil
	case *xq.SeqExpr:
		var out []Item
		for _, it := range x.Items {
			v, err := e.Eval(it, en)
			if err != nil {
				return nil, err
			}
			out = append(out, v...)
		}
		return out, nil
	case *xq.CondExpr:
		cond, err := e.evalBool(x.Cond, en)
		if err != nil {
			return nil, err
		}
		if cond {
			return e.Eval(x.Then, en)
		}
		return e.Eval(x.Else, en)
	case *xq.ElementExpr:
		return e.evalCtor(x, en)
	case *xq.CallExpr:
		return e.evalCall(x, en)
	case *xq.FLWORExpr:
		return e.evalFLWOR(x, en)
	case *xq.CmpExpr, *xq.FTContainsExpr:
		// Predicates in item position yield their boolean as a string so
		// that ebv works; the grammar only produces them in predicate
		// positions.
		ok, err := e.evalBool(expr, en)
		if err != nil {
			return nil, err
		}
		if ok {
			return []Item{"true"}, nil
		}
		return nil, nil
	}
	return nil, fmt.Errorf("xqeval: unsupported expression %T", expr)
}
