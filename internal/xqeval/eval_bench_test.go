// Microbenchmark for FLWOR evaluation — the per-binding environment churn
// of the evaluator, which runs once per view result during every search.
package xqeval

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

func benchCatalog(b *testing.B, books, reviews int) MapCatalog {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<books>")
	for i := 0; i < books; i++ {
		fmt.Fprintf(&sb, "<book><isbn>%d</isbn><title>xml search volume %d</title><year>%d</year></book>", i, i, 1990+i%20)
	}
	sb.WriteString("</books>")
	bdoc, err := xmltree.ParseString(sb.String(), "books.xml", 1)
	if err != nil {
		b.Fatal(err)
	}
	sb.Reset()
	sb.WriteString("<reviews>")
	for i := 0; i < reviews; i++ {
		fmt.Fprintf(&sb, "<review><isbn>%d</isbn><content>review of volume %d</content></review>", i%books, i)
	}
	sb.WriteString("</reviews>")
	rdoc, err := xmltree.ParseString(sb.String(), "reviews.xml", 2)
	if err != nil {
		b.Fatal(err)
	}
	return MapCatalog{"books.xml": bdoc, "reviews.xml": rdoc}
}

func BenchmarkEvalFLWOR(b *testing.B) {
	cat := benchCatalog(b, 100, 200)
	q, err := xq.Parse(`
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <r>{$book/title},
  {for $rev in fn:doc(reviews.xml)/reviews//review
   where $rev/isbn = $book/isbn
   return $rev/content}</r>`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := New(cat, q.Functions)
		out, err := ev.Eval(q.Body, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("no results")
		}
	}
}
