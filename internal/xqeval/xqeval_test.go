package xqeval

import (
	"strings"
	"testing"

	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

const booksXML = `<books>
  <book><isbn>111-11-1111</isbn><title>XML Web Services</title><publisher>Prentice Hall</publisher><year>2004</year></book>
  <book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title><publisher>Prentice Hall</publisher><year>2002</year></book>
  <book><isbn>333-33-3333</isbn><title>Old Compilers</title><publisher>Ancient Press</publisher><year>1990</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111-11-1111</isbn><rate>Excellent</rate><content>all about search</content><reviewer>John</reviewer></review>
  <review><isbn>111-11-1111</isbn><rate>Good</rate><content>easy to read</content><reviewer>Alex</reviewer></review>
  <review><isbn>222-22-2222</isbn><rate>Fair</rate><content>dated but solid</content><reviewer>Mary</reviewer></review>
  <review><isbn>999-99-9999</isbn><rate>Poor</rate><content>orphan review</content><reviewer>Sam</reviewer></review>
</reviews>`

func catalog(t *testing.T) MapCatalog {
	t.Helper()
	books, err := xmltree.ParseString(booksXML, "books.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	reviews, err := xmltree.ParseString(reviewsXML, "reviews.xml", 2)
	if err != nil {
		t.Fatal(err)
	}
	return MapCatalog{"books.xml": books, "reviews.xml": reviews}
}

func eval(t *testing.T, cat Catalog, query string) []Item {
	t.Helper()
	q, err := xq.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ev := New(cat, q.Functions)
	out, err := ev.EvalQuery(q)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return out
}

func values(items []Item) []string {
	var out []string
	for _, it := range items {
		out = append(out, Atomize(it))
	}
	return out
}

func TestPathNavigation(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, "fn:doc(books.xml)/books/book/title")
	if len(out) != 3 {
		t.Fatalf("titles = %v", values(out))
	}
	if Atomize(out[0]) != "XML Web Services" {
		t.Errorf("first title = %q", Atomize(out[0]))
	}
	// descendant axis
	out = eval(t, cat, "fn:doc(books.xml)//isbn")
	if len(out) != 3 {
		t.Errorf("//isbn = %v", values(out))
	}
	// missing path
	if out := eval(t, cat, "fn:doc(books.xml)/books/missing"); len(out) != 0 {
		t.Errorf("missing path = %v", values(out))
	}
	// unknown doc evaluates to empty
	if out := eval(t, cat, "fn:doc(nope.xml)/a"); len(out) != 0 {
		t.Errorf("unknown doc = %v", values(out))
	}
}

func TestFilterPredicates(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, "fn:doc(books.xml)/books/book[year > 1995]/title")
	got := values(out)
	if len(got) != 2 || got[0] != "XML Web Services" || got[1] != "Artificial Intelligence" {
		t.Errorf("filtered titles = %v", got)
	}
	// existence predicate
	out = eval(t, cat, "fn:doc(reviews.xml)/reviews/review[reviewer]/rate")
	if len(out) != 4 {
		t.Errorf("existence pred = %v", values(out))
	}
	// equality on string
	out = eval(t, cat, "fn:doc(reviews.xml)/reviews/review[reviewer = 'John']/content")
	if len(out) != 1 || Atomize(out[0]) != "all about search" {
		t.Errorf("string eq = %v", values(out))
	}
}

func TestFLWORWithWhere(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, `
for $b in fn:doc(books.xml)/books/book
where $b/year > 1995
return $b/isbn`)
	got := values(out)
	if len(got) != 2 || got[0] != "111-11-1111" {
		t.Errorf("isbns = %v", got)
	}
}

func TestLetClause(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, `
let $all := fn:doc(books.xml)/books/book
for $b in $all
where $b/year > 2003
return $b/title`)
	if len(out) != 1 || Atomize(out[0]) != "XML Web Services" {
		t.Errorf("let = %v", values(out))
	}
}

func TestJoinNestedFLWOR(t *testing.T) {
	cat := catalog(t)
	query := `
for $b in fn:doc(books.xml)/books/book
return <entry>
  <t>{$b/title}</t>
  {for $r in fn:doc(reviews.xml)/reviews/review
   where $r/isbn = $b/isbn
   return $r/content}
</entry>`
	for _, hashJoin := range []bool{true, false} {
		q := xq.MustParse(query)
		ev := New(cat, q.Functions)
		ev.HashJoin = hashJoin
		out, err := ev.EvalQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 3 {
			t.Fatalf("hashJoin=%v: %d entries", hashJoin, len(out))
		}
		first := out[0].(*xmltree.Node)
		// title child + 2 joined review contents
		if len(first.Children) != 3 {
			t.Errorf("hashJoin=%v: first entry children = %d", hashJoin, len(first.Children))
		}
		third := out[2].(*xmltree.Node)
		if len(third.Children) != 1 { // no reviews for book 3
			t.Errorf("hashJoin=%v: third entry children = %d", hashJoin, len(third.Children))
		}
		if hashJoin && ev.JoinProbes == 0 {
			t.Error("hash join was not exercised")
		}
	}
}

func TestJoinResultsIdenticalWithAndWithoutHashJoin(t *testing.T) {
	cat := catalog(t)
	query := `
for $b in fn:doc(books.xml)/books/book
return <e>{$b/isbn}
  {for $r in fn:doc(reviews.xml)/reviews/review
   where $b/isbn = $r/isbn
   return $r/rate}
</e>`
	render := func(hash bool) string {
		q := xq.MustParse(query)
		ev := New(cat, q.Functions)
		ev.HashJoin = hash
		out, err := ev.EvalQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, item := range out {
			item.(*xmltree.Node).WriteXML(&b, "") //nolint:errcheck
		}
		return b.String()
	}
	if a, b := render(true), render(false); a != b {
		t.Errorf("hash join changed results:\n%s\nvs\n%s", a, b)
	}
}

func TestElementConstructorReferencesNotCopies(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, "for $b in fn:doc(books.xml)/books/book return <w>{$b/title}</w>")
	w := out[0].(*xmltree.Node)
	title := w.Children[0]
	// The referenced node must be the base document node itself (provenance).
	base := cat["books.xml"].FindByID(title.ID)
	if base != title {
		t.Error("constructor should reference base nodes, not copies")
	}
	// And the base node's parent pointer must be untouched.
	if title.Parent == w {
		t.Error("constructor must not rewrite parent pointers of base nodes")
	}
}

func TestCondExpr(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, `
for $b in fn:doc(books.xml)/books/book
return if $b/year > 2000 then $b/title else $b/isbn`)
	got := values(out)
	want := []string{"XML Web Services", "Artificial Intelligence", "333-33-3333"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cond[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFunctionCall(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, `
declare function revsFor($isbn) {
  for $r in fn:doc(reviews.xml)/reviews/review
  where $r/isbn = $isbn
  return $r/content
}
for $b in fn:doc(books.xml)/books/book
where $b/year > 2003
return revsFor($b/isbn)`)
	got := values(out)
	if len(got) != 2 || got[0] != "all about search" {
		t.Errorf("function call = %v", got)
	}
}

func TestFTContains(t *testing.T) {
	cat := catalog(t)
	// conjunctive over constructed view elements
	out := eval(t, cat, `
let $view := for $r in fn:doc(reviews.xml)/reviews/review return <rev>{$r/content}</rev>
for $v in $view
where $v ftcontains('about' & 'search')
return $v`)
	if len(out) != 1 {
		t.Fatalf("conjunctive ftcontains = %d results", len(out))
	}
	out = eval(t, cat, `
let $view := for $r in fn:doc(reviews.xml)/reviews/review return <rev>{$r/content}</rev>
for $v in $view
where $v ftcontains('search' | 'read')
return $v`)
	if len(out) != 2 {
		t.Fatalf("disjunctive ftcontains = %d results", len(out))
	}
}

func TestSequenceAndEmptySequence(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, "for $b in fn:doc(books.xml)/books/book where $b/year > 2003 return $b/title, $b/year")
	// sequence return yields title, year per binding
	if got := values(out); len(got) != 2 || got[1] != "2004" {
		t.Errorf("sequence return = %v", got)
	}
	if out := eval(t, cat, "()"); len(out) != 0 {
		t.Errorf("() = %v", values(out))
	}
}

func TestErrors(t *testing.T) {
	cat := catalog(t)
	for _, bad := range []string{
		"$undefined",
		"unknownFn($x)",
		"for $x in fn:doc(books.xml)/books return unknownFn($x)",
	} {
		q, err := xq.Parse(bad)
		if err != nil {
			continue // parse errors also acceptable
		}
		ev := New(cat, q.Functions)
		if _, err := ev.EvalQuery(q); err == nil {
			t.Errorf("eval(%q): expected error", bad)
		}
	}
}

func TestDescendantDedup(t *testing.T) {
	doc, err := xmltree.ParseString(`<r><a><a><x>1</x></a><x>2</x></a></r>`, "r.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	cat := MapCatalog{"r.xml": doc}
	out := eval(t, cat, "fn:doc(r.xml)//a//x")
	// x=1 reachable from both a elements; must be deduplicated
	if len(out) != 2 {
		t.Errorf("//a//x = %v", values(out))
	}
}

func TestFigure2EndToEnd(t *testing.T) {
	cat := catalog(t)
	out := eval(t, cat, `
let $view :=
  for $book in fn:doc(books.xml)/books//book
  where $book/year > 1995
  return <bookrevs>
           <book> {$book/title} </book>,
           {for $rev in fn:doc(reviews.xml)/reviews//review
            where $rev/isbn = $book/isbn
            return $rev/content}
         </bookrevs>
for $bookrev in $view
where $bookrev ftcontains('XML' & 'Search')
return $bookrev`)
	// Only the first book's element contains both: "XML" (title) and
	// "search" (review content).
	if len(out) != 1 {
		t.Fatalf("results = %d", len(out))
	}
	res := out[0].(*xmltree.Node)
	if res.Tag != "bookrevs" {
		t.Errorf("result tag = %q", res.Tag)
	}
	var text []string
	res.Walk(func(n *xmltree.Node) {
		if n.Value != "" {
			text = append(text, n.Value)
		}
	})
	joined := strings.Join(text, " ")
	if !strings.Contains(joined, "XML Web Services") || !strings.Contains(joined, "all about search") {
		t.Errorf("result text = %q", joined)
	}
}
