package xqeval

import (
	"vxml/internal/pathindex"
	"vxml/internal/xmltree"
)

// evalSteps applies a path step sequence to every node of the base
// sequence, deduplicating nodes while preserving encounter order (which is
// document order when the base sequence is in document order).
func evalSteps(base []Item, steps []pathindex.Step) []Item {
	current := base
	for _, st := range steps {
		var next []Item
		seen := map[*xmltree.Node]bool{}
		for _, item := range current {
			n, ok := item.(*xmltree.Node)
			if !ok {
				continue // atomic values have no children
			}
			if st.Axis == pathindex.Child {
				for _, c := range n.Children {
					if c.Tag == st.Tag && !seen[c] {
						seen[c] = true
						next = append(next, c)
					}
				}
			} else {
				collectDescendants(n, st.Tag, seen, &next)
			}
		}
		current = next
	}
	return current
}

func collectDescendants(n *xmltree.Node, tag string, seen map[*xmltree.Node]bool, out *[]Item) {
	for _, c := range n.Children {
		if c.Tag == tag && !seen[c] {
			seen[c] = true
			*out = append(*out, c)
		}
		collectDescendants(c, tag, seen, out)
	}
}

// Atomize converts an item to its atomic string value: atomics are
// themselves, nodes contribute their direct text content (the supported
// grammar restricts value predicates to leaf elements, whose string value
// is exactly their text).
func Atomize(item Item) string {
	switch x := item.(type) {
	case string:
		return x
	case *xmltree.Node:
		return x.Value
	}
	return ""
}
