package xqeval

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

// randomJoinCatalog builds randomized two-document corpora for join
// equivalence properties.
func randomJoinCatalog(r *rand.Rand) MapCatalog {
	nA, nB := 2+r.Intn(8), 2+r.Intn(12)
	var a strings.Builder
	a.WriteString("<as>")
	for i := 0; i < nA; i++ {
		fmt.Fprintf(&a, "<a><k>k%d</k><v>va%d</v></a>", r.Intn(6), i)
	}
	a.WriteString("</as>")
	var b strings.Builder
	b.WriteString("<bs>")
	for i := 0; i < nB; i++ {
		// some b elements have multiple keys, some none
		b.WriteString("<b>")
		for j := 0; j < r.Intn(3); j++ {
			fmt.Fprintf(&b, "<k>k%d</k>", r.Intn(6))
		}
		fmt.Fprintf(&b, "<v>vb%d</v></b>", i)
		b.WriteString("")
	}
	b.WriteString("</bs>")
	docA, err := xmltree.ParseString(a.String(), "a.xml", 1)
	if err != nil {
		panic(err)
	}
	docB, err := xmltree.ParseString(b.String(), "b.xml", 2)
	if err != nil {
		panic(err)
	}
	return MapCatalog{"a.xml": docA, "b.xml": docB}
}

const joinQuery = `
for $a in fn:doc(a.xml)/as/a
return <r>{$a/v}
  {for $b in fn:doc(b.xml)/bs/b
   where $b/k = $a/k
   return $b/v}
</r>`

// TestQuickHashJoinEqualsNestedLoop: the equality-join fast path must be
// semantically invisible, including duplicate keys, multi-valued keys and
// keyless elements.
func TestQuickHashJoinEqualsNestedLoop(t *testing.T) {
	q := xq.MustParse(joinQuery)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cat := randomJoinCatalog(r)
		render := func(hash bool) string {
			ev := New(cat, q.Functions)
			ev.HashJoin = hash
			out, err := ev.EvalQuery(q)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			for _, item := range out {
				if n, ok := item.(*xmltree.Node); ok {
					n.WriteXML(&b, "") //nolint:errcheck
				}
			}
			return b.String()
		}
		return render(true) == render(false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickFilterEqualsWhere: [pred] filters and where clauses agree.
func TestQuickFilterEqualsWhere(t *testing.T) {
	filterQ := xq.MustParse(`fn:doc(a.xml)/as/a[k = 'k3']/v`)
	whereQ := xq.MustParse(`for $a in fn:doc(a.xml)/as/a where $a/k = 'k3' return $a/v`)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cat := randomJoinCatalog(r)
		ev := New(cat, nil)
		a, err := ev.Eval(filterQ.Body, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ev.Eval(whereQ.Body, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if Atomize(a[i]) != Atomize(b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickStepsMatchPathIndexSemantics: evaluator path navigation agrees
// with a document walk using the same axis semantics.
func TestQuickStepsMatchWalk(t *testing.T) {
	q := xq.MustParse(`fn:doc(b.xml)/bs//k`)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cat := randomJoinCatalog(r)
		ev := New(cat, nil)
		out, err := ev.Eval(q.Body, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want []string
		cat["b.xml"].Root.Walk(func(n *xmltree.Node) {
			if n.Tag == "k" && n.Parent != nil {
				want = append(want, n.Value)
			}
		})
		if len(out) != len(want) {
			return false
		}
		for i := range out {
			if Atomize(out[i]) != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
