package xqeval

import (
	"strings"
	"testing"

	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

func miniCatalog(t *testing.T, xmlText string) MapCatalog {
	t.Helper()
	doc, err := xmltree.ParseString(xmlText, "d.xml", 1)
	if err != nil {
		t.Fatal(err)
	}
	return MapCatalog{"d.xml": doc}
}

func TestLetBindsWholeSequence(t *testing.T) {
	cat := miniCatalog(t, `<d><x>1</x><x>2</x><x>3</x></d>`)
	out := eval(t, cat, `let $all := fn:doc(d.xml)/d/x return <w>{$all}</w>`)
	if len(out) != 1 {
		t.Fatalf("let should produce one wrapper, got %d", len(out))
	}
	if n := out[0].(*xmltree.Node); len(n.Children) != 3 {
		t.Errorf("wrapper children = %d, want all 3", len(n.Children))
	}
}

func TestNestedFunctionCalls(t *testing.T) {
	cat := miniCatalog(t, `<d><x><v>7</v></x></d>`)
	out := eval(t, cat, `
declare function inner($n) { $n/v }
declare function outer($n) { inner($n) }
for $x in fn:doc(d.xml)/d/x return outer($x)`)
	if len(out) != 1 || Atomize(out[0]) != "7" {
		t.Errorf("nested calls = %v", values(out))
	}
}

func TestRecursionDepthLimited(t *testing.T) {
	cat := miniCatalog(t, `<d><x>1</x></d>`)
	q, err := xq.Parse(`
declare function loop($n) { loop($n) }
for $x in fn:doc(d.xml)/d/x return loop($x)`)
	if err != nil {
		t.Fatal(err)
	}
	ev := New(cat, q.Functions)
	_, err = ev.EvalQuery(q)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected call depth error, got %v", err)
	}
}

func TestEBVOfEmptyStringIsFalse(t *testing.T) {
	cat := miniCatalog(t, `<d><x></x><x>v</x></d>`)
	// if-condition over a leaf with empty value: ebv('') = false
	out := eval(t, cat, `
for $x in fn:doc(d.xml)/d/x
return if $x then 'present' else 'absent'`)
	// both x elements exist as nodes -> true both times
	if len(out) != 2 || Atomize(out[0]) != "present" {
		t.Errorf("node ebv = %v", values(out))
	}
}

func TestComparisonExistentialSemantics(t *testing.T) {
	cat := miniCatalog(t, `<d><x><k>1</k><k>2</k></x></d>`)
	// existential: some k equals 2
	out := eval(t, cat, `for $x in fn:doc(d.xml)/d/x where $x/k = 2 return 'yes'`)
	if len(out) != 1 {
		t.Errorf("existential eq failed: %v", values(out))
	}
	out = eval(t, cat, `for $x in fn:doc(d.xml)/d/x where $x/k = 3 return 'yes'`)
	if len(out) != 0 {
		t.Errorf("no k equals 3: %v", values(out))
	}
}

func TestConstructedElementsNavigable(t *testing.T) {
	cat := miniCatalog(t, `<d><x><v>7</v></x></d>`)
	// navigate INTO a constructed element bound by let
	out := eval(t, cat, `
let $w := (for $x in fn:doc(d.xml)/d/x return <wrap>{$x/v}</wrap>)
for $r in $w
return $r/v`)
	if len(out) != 1 || Atomize(out[0]) != "7" {
		t.Errorf("navigation into constructed nodes = %v", values(out))
	}
}

func TestEmptyDocumentCatalog(t *testing.T) {
	cat := MapCatalog{"empty.xml": {Name: "empty.xml"}} // nil root
	q := xq.MustParse(`fn:doc(empty.xml)/a/b`)
	ev := New(cat, nil)
	out, err := ev.Eval(q.Body, nil)
	if err != nil || len(out) != 0 {
		t.Errorf("empty doc: %v, %v", out, err)
	}
}

func TestJoinCacheIsolationBetweenQueries(t *testing.T) {
	// The same evaluator evaluating a different outer binding must not
	// reuse stale probe results (only the loop-invariant index is cached).
	cat := miniCatalog(t, `<d><a><k>1</k></a><a><k>2</k></a><b><k>1</k><v>x</v></b><b><k>2</k><v>y</v></b></d>`)
	out := eval(t, cat, `
for $a in fn:doc(d.xml)/d/a
return <r>{for $b in fn:doc(d.xml)/d/b where $b/k = $a/k return $b/v}</r>`)
	if len(out) != 2 {
		t.Fatalf("results = %d", len(out))
	}
	r1 := out[0].(*xmltree.Node)
	r2 := out[1].(*xmltree.Node)
	if Atomize(r1.Children[0]) != "x" || Atomize(r2.Children[0]) != "y" {
		t.Errorf("join cache leaked across bindings: %s / %s",
			r1.XMLString(""), r2.XMLString(""))
	}
}
