// Package gtp implements the "GTP" comparator of the paper's evaluation
// (§5.1): Generalized Tree Patterns [Chen et al., VLDB'03] with TermJoin
// [Al-Khalifa et al., SIGMOD'03], the state-of-the-art integration of
// structure and keyword search the paper compares against.
//
// The pipeline derives the same pruned trees as the Efficient system, but
// by the two mechanisms the paper identifies as GTP's cost sources:
//
//  1. structural joins over full per-tag element lists (instead of path
//     index probes), and
//  2. base-data access for join values and predicate evaluation (instead
//     of value retrieval from the Path-Values table).
//
// Downstream evaluation and scoring are shared with the Efficient
// pipeline, so GTP's results are identical and only its costs differ —
// which is exactly how the paper frames the comparison.
package gtp

import (
	"context"
	"fmt"
	"sort"
	"time"

	"vxml/internal/core"
	"vxml/internal/dewey"
	"vxml/internal/pathindex"
	"vxml/internal/pdt"
	"vxml/internal/pred"
	"vxml/internal/qpt"
	"vxml/internal/scoring"
	"vxml/internal/xmltree"
	"vxml/internal/xqeval"
)

// Stats reports the GTP cost breakdown.
type Stats struct {
	StructJoinTime time.Duration // structural joins over tag lists
	EvalTime       time.Duration // view evaluation over the joined trees
	PostTime       time.Duration // scoring + materialization
	// BaseValueFetches counts base-data accesses for join values and
	// predicates — the cost Efficient avoids via the Path-Values table.
	BaseValueFetches int
	TagListEntries   int // total tag-list entries scanned
	// IntermediatePairs counts the (ancestor, descendant) tuples the
	// binary structural joins materialize.
	IntermediatePairs int
	ViewResults       int
	Matched           int
	// Candidates counts the documents the view's QPTs resolved to and
	// ShardsSearched the corpus shards whose read locks the run held (all
	// of them: the comparator brackets with Engine.RLock). Mirrors
	// core.Stats so dashboards read comparator runs the same way.
	Candidates     int
	ShardsSearched int
}

// Total returns the end-to-end time.
func (s *Stats) Total() time.Duration { return s.StructJoinTime + s.EvalTime + s.PostTime }

// Search evaluates the ranked keyword query using GTP with TermJoin. It
// never cancels; use SearchContext for deadlines and cancellation.
func Search(e *core.Engine, v *core.View, keywords []string, opts core.Options) ([]core.Result, *Stats, error) {
	return SearchContext(context.Background(), e, v, keywords, opts)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between per-document structural-join passes, between FLWOR bindings
// during evaluation (through the evaluator) and between winners during
// materialization, and the returned error wraps ctx.Err(). The engine read
// locks are released before SearchContext returns.
func SearchContext(ctx context.Context, e *core.Engine, v *core.View, keywords []string, opts core.Options) ([]core.Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("gtp: search interrupted: %w", err)
	}
	e.RLock()
	defer e.RUnlock()
	stats := &Stats{ShardsSearched: e.Store.ShardCount()}
	kws := normalizeKeywords(keywords)

	start := time.Now()
	catalog := xqeval.MapCatalog{}
	for _, q := range v.QPTs {
		// A collection pattern expands to one structural-join pass per
		// matching document; the catalog resolves the pattern back to the
		// pruned documents in corpus order.
		for _, doc := range e.Store.DocsMatching(q.Doc) {
			stats.Candidates++
			if err := ctx.Err(); err != nil {
				return nil, nil, fmt.Errorf("gtp: search interrupted: %w", err)
			}
			pix := e.PathIndex(doc.Name)
			if pix == nil {
				continue
			}
			pruned := joinQPT(e, q, doc.Name, pix, kws, stats)
			if pruned.Doc != nil {
				catalog[doc.Name] = pruned.Doc
			}
		}
	}
	stats.StructJoinTime = time.Since(start)

	start = time.Now()
	ev := xqeval.New(catalog, v.Funcs)
	ev.HashJoin = !opts.DisableHashJoin
	ev.SetContext(ctx)
	items, err := ev.Eval(v.Expr, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("gtp: evaluating view: %w", err)
	}
	var results []*xmltree.Node
	for _, it := range items {
		if n, ok := it.(*xmltree.Node); ok {
			results = append(results, n)
		}
	}
	stats.EvalTime = time.Since(start)
	stats.ViewResults = len(results)

	start = time.Now()
	ranking := scoring.Rank(results, kws, !opts.Disjunctive, opts.K, scoring.FromPDT)
	stats.Matched = ranking.Matched
	out := make([]core.Result, 0, len(ranking.Results))
	for i, sc := range ranking.Results {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("gtp: search interrupted: %w", err)
		}
		elem := sc.Result
		if !opts.SkipMaterialize {
			elem = scoring.Materialize(sc.Result, e.Store)
		}
		out = append(out, core.Result{Rank: i + 1, Score: sc.Score, TFs: sc.Stats.TFs, Element: elem})
	}
	stats.PostTime = time.Since(start)
	return out, stats, nil
}

// candSet is a Dewey-sorted candidate list for one QPT node.
type candSet struct {
	ids []dewey.ID
}

func (c *candSet) containsInRange(lo, hi dewey.ID) bool {
	i := sort.Search(len(c.ids), func(i int) bool { return dewey.Compare(c.ids[i], lo) >= 0 })
	return i < len(c.ids) && dewey.Compare(c.ids[i], hi) < 0
}

func (c *candSet) has(id dewey.ID) bool {
	i := sort.Search(len(c.ids), func(i int) bool { return dewey.Compare(c.ids[i], id) >= 0 })
	return i < len(c.ids) && dewey.Equal(c.ids[i], id)
}

// joinPair is one (ancestor, descendant) tuple materialized by a binary
// structural join, as in Timber's stack-tree joins.
type joinPair struct {
	anc, desc dewey.ID
}

// structuralJoin materializes the (ancestor, descendant) pairs between a
// sorted ancestor candidate list and a sorted descendant candidate list.
func structuralJoin(ancs *candSet, descs *candSet, axis pathindex.Axis, stats *Stats) []joinPair {
	var pairs []joinPair
	for _, d := range descs.ids {
		if axis == pathindex.Child {
			if len(d) > 1 && ancs.has(d.Parent()) {
				pairs = append(pairs, joinPair{anc: d.Parent(), desc: d})
			}
			continue
		}
		for a := d.Parent(); len(a) > 0; a = a.Parent() {
			if ancs.has(a) {
				pairs = append(pairs, joinPair{anc: a, desc: d})
			}
		}
	}
	stats.IntermediatePairs += len(pairs)
	return pairs
}

// joinQPT computes the pruned tree for one QPT against one document it
// resolved to, via structural joins over tag lists, fetching predicate and
// join values from base data.
func joinQPT(e *core.Engine, q *qpt.QPT, docName string, pix *pathindex.Index, kws []string, stats *Stats) *pdt.PDT {
	iix := e.InvIndex(docName)
	// Bottom-up: candidate elements per QPT node (descendant constraints),
	// computed with pair-producing binary structural joins.
	ce := map[*qpt.Node]*candSet{}
	var computeCE func(n *qpt.Node)
	computeCE = func(n *qpt.Node) {
		for _, edge := range n.Edges {
			computeCE(edge.Child)
		}
		postings := pix.TagPostings(n.Tag)
		stats.TagListEntries += len(postings)
		set := &candSet{ids: make([]dewey.ID, 0, len(postings))}
		for _, p := range postings {
			// Predicates require the element value: GTP fetches it from
			// base storage (counted).
			if len(n.Preds) > 0 {
				stats.BaseValueFetches++
				sub := e.Store.Subtree(p.ID)
				// predicates apply to leaf values only
				if sub == nil || !sub.IsLeaf() || !pred.All(n.Preds, sub.Value) {
					continue
				}
			}
			set.ids = append(set.ids, p.ID)
		}
		// One binary structural join per mandatory edge; the surviving
		// ancestors are the distinct ancestors of the pair list.
		for _, edge := range n.Edges {
			if !edge.Mandatory {
				continue
			}
			pairs := structuralJoin(set, ce[edge.Child], edge.Axis, stats)
			next := &candSet{ids: make([]dewey.ID, 0, len(pairs))}
			for _, pr := range pairs {
				next.ids = append(next.ids, pr.anc)
			}
			sortIDs(next.ids)
			next.ids = dedupeSorted(next.ids)
			set = next
		}
		// GTP extracts join values and keyword containment for every
		// structural candidate from base data / inverted lists — it cannot
		// defer this the way PDT generation does (§6: "GTP requires
		// accessing the base data to support value joins").
		if n.V {
			for _, id := range set.ids {
				stats.BaseValueFetches++
				e.Store.Value(id) //nolint:errcheck
			}
		}
		if n.C && iix != nil {
			for _, id := range set.ids {
				for _, k := range kws {
					iix.Lookup(k).SubtreeTF(id) // TermJoin probe
				}
			}
		}
		ce[n] = set
	}
	for _, edge := range q.Root.Edges {
		computeCE(edge.Child)
	}

	// Top-down: PDT elements (ancestor constraints).
	pe := map[*qpt.Node]*candSet{}
	var computePE func(n *qpt.Node)
	computePE = func(n *qpt.Node) {
		parentEdge := n.Parent
		set := &candSet{}
		for _, id := range ce[n].ids {
			ok := false
			if parentEdge.From == q.Root {
				ok = parentEdge.Axis == pathindex.Descendant || len(id) == 1
			} else {
				parents := pe[parentEdge.From]
				if parentEdge.Axis == pathindex.Child {
					ok = len(id) > 1 && parents.has(id.Parent())
				} else {
					for p := id.Parent(); len(p) > 0; p = p.Parent() {
						if parents.has(p) {
							ok = true
							break
						}
					}
				}
			}
			if ok {
				set.ids = append(set.ids, id)
			}
		}
		pe[n] = set
		for _, edge := range n.Edges {
			computePE(edge.Child)
		}
	}
	for _, edge := range q.Root.Edges {
		computePE(edge.Child)
	}

	// Assemble the pruned tree; values and byte lengths come from base
	// data (GTP has no Path-Values table), tf values from TermJoin over
	// the inverted lists.
	type annot struct{ needV, needC bool }
	selected := map[string]*pdt.Element{}
	anns := map[string]*annot{}
	var collect func(n *qpt.Node)
	collect = func(n *qpt.Node) {
		for _, id := range pe[n].ids {
			key := id.String()
			el := selected[key]
			if el == nil {
				el = &pdt.Element{ID: id, Tag: n.Tag}
				selected[key] = el
				anns[key] = &annot{}
			}
			a := anns[key]
			a.needV = a.needV || n.V
			a.needC = a.needC || n.C
		}
		for _, edge := range n.Edges {
			collect(edge.Child)
		}
	}
	for _, edge := range q.Root.Edges {
		collect(edge.Child)
	}
	elements := make([]*pdt.Element, 0, len(selected))
	for key, el := range selected {
		a := anns[key]
		el.NeedV, el.NeedC = a.needV, a.needC
		if a.needV || a.needC {
			stats.BaseValueFetches++
			if base := e.Store.Subtree(el.ID); base != nil {
				el.ByteLen = base.ByteLen
				if base.IsLeaf() {
					el.Value = base.Value
					el.HasValue = true
				}
			}
		}
		if a.needC {
			el.TFs = make([]int, len(kws))
			for i, k := range kws {
				el.TFs[i] = iix.Lookup(k).SubtreeTF(el.ID) // TermJoin
			}
		}
		elements = append(elements, el)
	}
	return pdt.BuildPruned(elements, docName)
}

func sortIDs(ids []dewey.ID) {
	sort.Slice(ids, func(i, j int) bool { return dewey.Less(ids[i], ids[j]) })
}

func dedupeSorted(ids []dewey.ID) []dewey.ID {
	out := ids[:0]
	for _, id := range ids {
		if len(out) == 0 || !dewey.Equal(out[len(out)-1], id) {
			out = append(out, id)
		}
	}
	return out
}

func normalizeKeywords(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = core.NormalizeKeyword(k)
	}
	return out
}
