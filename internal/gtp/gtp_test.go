package gtp

import (
	"strings"
	"testing"

	"vxml/internal/core"
	"vxml/internal/store"
)

const booksXML = `<books>
  <book><isbn>111</isbn><title>XML Views</title><year>2004</year></book>
  <book><isbn>222</isbn><title>Query Engines</title><year>1990</year></book>
  <book><isbn>333</isbn><title>Search Papers</title><year>2001</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111</isbn><content>great search coverage</content></review>
  <review><isbn>333</isbn><content>all about xml</content></review>
  <review><content>orphan</content></review>
</reviews>`

const viewText = `
for $b in fn:doc(books.xml)/books//book
where $b/year > 1995
return <e>{$b/title},
  {for $r in fn:doc(reviews.xml)/reviews//review
   where $r/isbn = $b/isbn
   return $r/content}
</e>`

func engine(t *testing.T) (*core.Engine, *core.View) {
	t.Helper()
	st := store.New()
	if _, err := st.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	e := core.New(st)
	v, err := e.CompileView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	return e, v
}

func TestGTPSearchMatchesEfficient(t *testing.T) {
	e, v := engine(t)
	g, gstats, err := Search(e, v, []string{"xml", "search"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eff, _, err := e.Search(v, []string{"xml", "search"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != len(eff) {
		t.Fatalf("gtp %d results, efficient %d", len(g), len(eff))
	}
	for i := range g {
		if g[i].Score != eff[i].Score {
			t.Errorf("score[%d]: %f vs %f", i, g[i].Score, eff[i].Score)
		}
		if g[i].Element.XMLString("") != eff[i].Element.XMLString("") {
			t.Errorf("result[%d] differs", i)
		}
	}
	if gstats.TagListEntries == 0 || gstats.IntermediatePairs == 0 {
		t.Errorf("structural join stats empty: %+v", gstats)
	}
}

func TestGTPAccessesBaseDataForPredicatesAndValues(t *testing.T) {
	e, v := engine(t)
	_, stats, err := Search(e, v, []string{"xml"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// year predicate (3 books) + isbn join values on both sides.
	if stats.BaseValueFetches < 6 {
		t.Errorf("BaseValueFetches = %d, expected predicate + join-value accesses", stats.BaseValueFetches)
	}
}

func TestGTPPhaseTimings(t *testing.T) {
	e, v := engine(t)
	_, stats, err := Search(e, v, []string{"xml"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() <= 0 || stats.StructJoinTime <= 0 {
		t.Errorf("timings not recorded: %+v", stats)
	}
}

func TestGTPTopKAndDisjunctive(t *testing.T) {
	e, v := engine(t)
	all, _, err := Search(e, v, []string{"xml", "search"}, core.Options{Disjunctive: true})
	if err != nil {
		t.Fatal(err)
	}
	top1, _, err := Search(e, v, []string{"xml", "search"}, core.Options{Disjunctive: true, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 || len(all) < len(top1) {
		t.Errorf("topK: all=%d top1=%d", len(all), len(top1))
	}
	if top1[0].Score != all[0].Score {
		t.Errorf("top-1 score mismatch")
	}
}

func TestGTPMaterializesWinners(t *testing.T) {
	e, v := engine(t)
	results, _, err := Search(e, v, []string{"coverage"}, core.Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(results[0].Element.XMLString(""), "great search coverage") {
		t.Errorf("winner not materialized: %s", results[0].Element.XMLString(""))
	}
}
