package core

import (
	"context"
	"sync"
	"sync/atomic"

	"vxml/internal/scoring"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
	"vxml/internal/xqeval"
)

// forEach runs fn(0..n-1) on a pool of at most `workers` goroutines
// (inline when the pool would be pointless). Workers pull indices from an
// atomic counter, so uneven per-item cost still balances. Cancellation is
// cooperative: every worker checks ctx before pulling its next item, so a
// cancel stops the pool within one item per worker; forEach always waits
// for the in-flight items to finish (no goroutine outlives the call) and
// returns the wrapped ctx error if the loop was cut short.
func forEach(ctx context.Context, workers, n int, fn func(i int)) error {
	return forEachWorker(ctx, workers, n, func() func(int) { return fn })
}

// forEachWorker is forEach for work that needs per-worker state (e.g. a
// single-threaded evaluator): newWorker runs once per pool goroutine and
// returns that worker's item function.
func forEachWorker(ctx context.Context, workers, n int, newWorker func() func(i int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		fn := newWorker()
		for i := 0; i < n; i++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn := newWorker()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctxErr(ctx)
}

// chunkBounds splits n items into at most `chunks` contiguous [lo, hi)
// ranges. Chunk boundaries never affect results — outputs are concatenated
// back in index order — only load balance.
func chunkBounds(n, chunks int) [][2]int {
	if chunks > n {
		chunks = n
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([][2]int, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo, hi := i*n/chunks, (i+1)*n/chunks
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}

// evalView runs the view expression over the PDT catalog. With one worker
// it is a single evaluator pass (the legacy path). With more, and a
// top-level FLWOR to partition, the outer for-clause's binding sequence is
// split into contiguous chunks and each worker evaluates the remaining
// clauses for its chunk with its own evaluator over the shared immutable
// catalog; concatenating the chunk outputs in order reproduces the
// single-evaluator result exactly (FLWOR evaluates bindings independently).
// Every evaluator carries ctx, so cancellation unwinds between FLWOR
// bindings on both paths.
func (e *Engine) evalView(ctx context.Context, v *View, catalog xqeval.Catalog, opts Options, workers int) ([]*xmltree.Node, error) {
	newEval := func() *xqeval.Evaluator {
		ev := xqeval.New(catalog, v.Funcs)
		ev.HashJoin = !opts.DisableHashJoin
		ev.SetContext(ctx)
		return ev
	}
	fl, isFLWOR := v.Expr.(*xq.FLWORExpr)
	if workers <= 1 || !isFLWOR {
		return evalWhole(newEval(), v.Expr)
	}
	primary := newEval()
	bindings, ok, err := primary.OuterBindings(fl)
	if err != nil {
		return nil, wrapEvalErr(err)
	}
	if !ok || len(bindings) < 2 {
		// A leading let clause, or nothing to partition: evaluate whole.
		return evalWhole(primary, v.Expr)
	}
	// More chunks than workers lets fast workers steal from slow ones;
	// outputs are stitched back in chunk order so the partition is
	// invisible in the result.
	chunks := chunkBounds(len(bindings), workers*4)
	outs := make([][]xqeval.Item, len(chunks))
	errs := make([]error, len(chunks))
	poolErr := forEachWorker(ctx, workers, len(chunks), func() func(int) {
		ev := newEval() // evaluators are single-threaded; one per worker
		return func(c int) {
			for _, b := range bindings[chunks[c][0]:chunks[c][1]] {
				items, err := ev.EvalTail(fl, b)
				if err != nil {
					errs[c] = err
					return
				}
				outs[c] = append(outs[c], items...)
			}
		}
	})
	if poolErr != nil {
		return nil, poolErr
	}
	var items []xqeval.Item
	for c := range chunks {
		if errs[c] != nil {
			return nil, wrapEvalErr(errs[c])
		}
		items = append(items, outs[c]...)
	}
	return nodesOf(items), nil
}

func evalWhole(ev *xqeval.Evaluator, expr xq.Expr) ([]*xmltree.Node, error) {
	items, err := ev.Eval(expr, nil)
	if err != nil {
		return nil, wrapEvalErr(err)
	}
	return nodesOf(items), nil
}

func wrapEvalErr(err error) error {
	return &evalError{err}
}

// evalError marks an evaluation failure so Search can report its phase. It
// unwraps, so a context error surfacing through the evaluator still
// matches errors.Is(err, context.Canceled).
type evalError struct{ err error }

func (e *evalError) Error() string { return "core: evaluating view over PDTs: " + e.err.Error() }
func (e *evalError) Unwrap() error { return e.err }

// rank scores the view results and selects the top k. With one worker the
// stats are collected in a single pass (the legacy path, with a ctx check
// per result). With more, stats collection fans out over the pool, then
// each worker scores its chunk against the globally computed IDFs and
// streams the scored results into a shared concurrent top-k heap; the
// heap's total order (score desc, view position asc) makes the merged
// selection independent of push interleaving.
func (e *Engine) rank(ctx context.Context, results []*xmltree.Node, kws []string, opts Options, workers int) (*scoring.Ranking, error) {
	stats := make([]scoring.Stats, len(results))
	if workers <= 1 || len(results) < 2 {
		for i, res := range results {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
			stats[i] = scoring.Collect(res, kws, scoring.FromPDT)
		}
		return scoring.RankWithStats(results, stats, kws, !opts.Disjunctive, opts.K), nil
	}
	chunks := chunkBounds(len(results), workers*4)
	if err := forEach(ctx, workers, len(chunks), func(c int) {
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			stats[i] = scoring.Collect(results[i], kws, scoring.FromPDT)
		}
	}); err != nil {
		return nil, err
	}
	r := &scoring.Ranking{ViewSize: len(results)}
	r.IDFs = scoring.IDFs(stats, len(kws))
	top := scoring.NewTopK(opts.K)
	var matched atomic.Int64
	if err := forEach(ctx, workers, len(chunks), func(c int) {
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			if !scoring.Satisfies(stats[i].TFs, !opts.Disjunctive) {
				continue
			}
			matched.Add(1)
			top.Push(scoring.Scored{Result: results[i], Stats: stats[i], Score: scoring.Score(stats[i], r.IDFs), Index: i})
		}
	}); err != nil {
		return nil, err
	}
	r.Matched = int(matched.Load())
	r.Results = top.Sorted()
	return r, nil
}
