package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vxml/internal/store"
)

// TestConcurrentSearchAndIngest hammers parallel Search calls against
// interleaved AddXML from multiple goroutines. The view references only the
// initial documents, so every search must return the same results no matter
// how many unrelated ingests land mid-flight: a deviation is a torn read.
// Run under -race to catch unsynchronized access.
func TestConcurrentSearchAndIngest(t *testing.T) {
	e := New(store.New())
	if err := e.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	// Reference answer, computed single-threaded.
	want, _, err := e.Search(v, []string{"XML", "Search"}, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("reference search returned no results")
	}

	const (
		searchers          = 6
		writers            = 3
		searchesPerWorker  = 40
		documentsPerWriter = 15
	)
	var (
		wg       sync.WaitGroup
		searches atomic.Int64
		ingests  atomic.Int64
	)
	errCh := make(chan error, searchers+writers)

	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < searchesPerWorker; i++ {
				results, stats, err := e.Search(v, []string{"XML", "Search"}, Options{K: 10})
				if err != nil {
					errCh <- fmt.Errorf("searcher %d: %v", g, err)
					return
				}
				if len(results) != len(want) {
					errCh <- fmt.Errorf("searcher %d: torn read: %d results, want %d", g, len(results), len(want))
					return
				}
				for j, r := range results {
					if r.Rank != want[j].Rank || r.Score != want[j].Score {
						errCh <- fmt.Errorf("searcher %d: result %d diverged: rank %d score %v, want rank %d score %v",
							g, j, r.Rank, r.Score, want[j].Rank, want[j].Score)
						return
					}
				}
				if stats.PDTNodes < 0 || stats.ViewResults < 0 || stats.SubtreeFetches < 0 {
					errCh <- fmt.Errorf("searcher %d: negative stats: %+v", g, stats)
					return
				}
				searches.Add(1)
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < documentsPerWriter; i++ {
				name := fmt.Sprintf("extra-%d-%d.xml", g, i)
				doc := fmt.Sprintf("<extra><note>filler %d %d with xml search words</note></extra>", g, i)
				if err := e.AddXML(name, doc); err != nil {
					errCh <- fmt.Errorf("writer %d: %v", g, err)
					return
				}
				ingests.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if got := searches.Load(); got != searchers*searchesPerWorker {
		t.Errorf("completed searches = %d, want %d", got, searchers*searchesPerWorker)
	}
	if got := ingests.Load(); got != writers*documentsPerWriter {
		t.Errorf("completed ingests = %d, want %d", got, writers*documentsPerWriter)
	}
	// After the storm, the collection holds every ingested document and
	// both original ones, each with its two indices.
	docs := e.Store.Docs()
	wantDocs := 2 + writers*documentsPerWriter
	if len(docs) != wantDocs {
		t.Errorf("documents = %d, want %d", len(docs), wantDocs)
	}
	e.RLock()
	for _, d := range docs {
		if e.PathIndex(d.Name) == nil || e.InvIndex(d.Name) == nil {
			t.Errorf("document %q missing an index", d.Name)
		}
	}
	e.RUnlock()
}

// TestConcurrentStatsMonotonic checks that the shared access counters only
// grow while searches and ingests race: a concurrent decrement or lost
// update would show up as a non-monotonic observation.
func TestConcurrentStatsMonotonic(t *testing.T) {
	e := New(store.New())
	if err := e.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}

	var workers sync.WaitGroup
	errCh := make(chan error, 6)
	stopObserver := make(chan struct{})
	observerDone := make(chan struct{})
	go func() { // observer: counters must never decrease
		defer close(observerDone)
		lastFetches, lastBytes := 0, 0
		for {
			select {
			case <-stopObserver:
				return
			default:
			}
			f, b := e.Store.SubtreeFetches(), e.Store.BytesFetched()
			if f < lastFetches || b < lastBytes {
				errCh <- fmt.Errorf("counters went backwards: fetches %d->%d bytes %d->%d", lastFetches, f, lastBytes, b)
				return
			}
			lastFetches, lastBytes = f, b
			// Sample, don't busy-spin: the observer must not peg a core
			// and starve the workers it is observing.
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for g := 0; g < 4; g++ {
		workers.Add(1)
		go func(g int) {
			defer workers.Done()
			for i := 0; i < 30; i++ {
				if _, _, err := e.Search(v, []string{"xml"}, Options{K: 3}); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	// One writer interleaves ingests with the searches above.
	workers.Add(1)
	go func() {
		defer workers.Done()
		for i := 0; i < 10; i++ {
			if err := e.AddXML(fmt.Sprintf("mono-%d.xml", i), "<m><x>xml</x></m>"); err != nil {
				errCh <- err
				return
			}
		}
	}()

	workers.Wait()
	close(stopObserver)
	<-observerDone
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if e.Store.SubtreeFetches() == 0 {
		t.Error("no subtree fetches recorded across 120 materializing searches")
	}
}

// TestConcurrentCompileAndExplain exercises the read-mostly entry points
// (view compilation, Explain) against concurrent ingest.
func TestConcurrentCompileAndExplain(t *testing.T) {
	e := New(store.New())
	if err := e.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v, err := e.CompileView(figure2View)
				if err != nil {
					errCh <- err
					return
				}
				if plan := e.Explain(v, []string{"xml", "search"}); plan == "" {
					errCh <- fmt.Errorf("empty explain plan")
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := e.AddXML(fmt.Sprintf("ce-%d.xml", i), "<d><v>text</v></d>"); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
