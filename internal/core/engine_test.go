package core

import (
	"strings"
	"testing"

	"vxml/internal/store"
	"vxml/internal/xq"
)

const booksXML = `<books>
  <book><isbn>111-11-1111</isbn><title>XML Web Services</title><year>2004</year></book>
  <book><isbn>222-22-2222</isbn><title>Artificial Intelligence</title><year>2002</year></book>
  <book><isbn>333-33-3333</isbn><title>Old Scrolls</title><year>1990</year></book>
  <book><isbn>444-44-4444</isbn><title>Search Systems</title><year>2001</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111-11-1111</isbn><content>all about search engines</content></review>
  <review><isbn>111-11-1111</isbn><content>easy to read</content></review>
  <review><isbn>222-22-2222</isbn><content>classic xml search text</content></review>
  <review><isbn>444-44-4444</isbn><content>great xml coverage</content></review>
  <review><content>orphan note</content></review>
</reviews>`

const figure2View = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book> {$book/title} </book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func TestSearchFigure2(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := e.Search(v, []string{"XML", "Search"}, Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Books 1 (xml in title + search in review), 2 (xml+search in review)
	// and 4 (search in title + xml in review) match conjunctively.
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	for i, r := range results {
		if r.Rank != i+1 {
			t.Errorf("rank[%d] = %d", i, r.Rank)
		}
		if r.Score <= 0 {
			t.Errorf("score[%d] = %f", i, r.Score)
		}
		if r.Element == nil || r.Element.Tag != "bookrevs" {
			t.Fatalf("element[%d] = %+v", i, r.Element)
		}
	}
	if stats.ViewResults != 3 {
		// view has 3 books passing year > 1995... books 1,2,4
		t.Errorf("ViewResults = %d", stats.ViewResults)
	}
	if stats.PDTNodes == 0 {
		t.Error("PDT stats missing")
	}
	// Materialized results contain full review text fetched from storage.
	text := results[0].Element.XMLString("")
	if !strings.Contains(text, "title") {
		t.Errorf("materialized result missing title: %s", text)
	}
}

func engineWithBooks(t *testing.T) *Engine {
	t.Helper()
	e := emptyEngine()
	if err := e.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSearchConjunctiveVsDisjunctive(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	conj, _, err := e.Search(v, []string{"xml", "read"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	disj, _, err := e.Search(v, []string{"xml", "read"}, Options{Disjunctive: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(conj) >= len(disj) && len(disj) > 0 && len(conj) > 0 {
		// conjunctive must be a subset
		if len(conj) > len(disj) {
			t.Errorf("conjunctive (%d) larger than disjunctive (%d)", len(conj), len(disj))
		}
	}
	if len(disj) == 0 {
		t.Error("disjunctive query should match")
	}
}

func TestSearchTopK(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := e.Search(v, []string{"xml"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("need at least 2 matches, got %d", len(all))
	}
	top1, stats, err := e.Search(v, []string{"xml"}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(top1) != 1 {
		t.Fatalf("top-1 = %d results", len(top1))
	}
	if top1[0].Score != all[0].Score {
		t.Errorf("top-1 score %f != best score %f", top1[0].Score, all[0].Score)
	}
	if stats.SubtreeFetches == 0 {
		t.Error("expected materialization fetches for the winner")
	}
	// With SkipMaterialize no base data is touched at all.
	_, stats2, err := e.Search(v, []string{"xml"}, Options{K: 1, SkipMaterialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SubtreeFetches != 0 {
		t.Errorf("SkipMaterialize still fetched %d subtrees", stats2.SubtreeFetches)
	}
}

func TestSplitKeywordQuery(t *testing.T) {
	full := `
let $view := ` + figure2View + `
for $r in $view
where $r ftcontains('XML' & 'Search')
return $r`
	q, err := xq.Parse(full)
	if err != nil {
		t.Fatal(err)
	}
	kq, err := SplitKeywordQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(kq.Keywords) != 2 || kq.Keywords[0] != "xml" {
		t.Errorf("keywords = %v", kq.Keywords)
	}
	if !kq.Conjunctive {
		t.Error("expected conjunctive")
	}
	if _, ok := kq.ViewExpr.(*xq.FLWORExpr); !ok {
		t.Errorf("view expr = %T", kq.ViewExpr)
	}
}

func TestSplitKeywordQueryErrors(t *testing.T) {
	bad := []string{
		"fn:doc(a.xml)/x",                                                           // not a FLWOR
		"for $r in fn:doc(a.xml)/x return $r",                                       // no ftcontains
		"for $r in $v where $r ftcontains('k') return $r/x",                         // return not the var
		"let $v := fn:doc(a.xml)/x for $r in $w where $r ftcontains('k') return $r", // unbound view var
	}
	for _, in := range bad {
		q, err := xq.Parse(in)
		if err != nil {
			continue
		}
		if _, err := SplitKeywordQuery(q); err == nil {
			t.Errorf("SplitKeywordQuery(%q): expected error", in)
		}
	}
}

func TestCompileViewErrors(t *testing.T) {
	e := engineWithBooks(t)
	if _, err := e.CompileView("for $b in fn:doc(missing.xml)/a return $b"); err == nil {
		t.Error("unknown document should fail compilation")
	}
	if _, err := e.CompileView("not a query ["); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestSelectionViewSearch(t *testing.T) {
	// A pure selection view (nesting level 1, zero joins).
	e := engineWithBooks(t)
	v, err := e.CompileView(`
for $b in fn:doc(books.xml)/books//book
where $b/year > 1995
return $b`)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := e.Search(v, []string{"xml"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if results[0].Element.Tag != "book" {
		t.Errorf("tag = %s", results[0].Element.Tag)
	}
	// Fully materialized: publisher etc. come back from storage.
	if !strings.Contains(results[0].Element.XMLString(""), "XML Web Services") {
		t.Errorf("materialization incomplete: %s", results[0].Element.XMLString(""))
	}
}

func emptyEngine() *Engine {
	return New(store.New())
}
