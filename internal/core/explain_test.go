package core

import (
	"strings"
	"testing"
)

func TestExplainListsProbesAndQPTs(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Explain(v, []string{"XML", "Search"})
	for _, want := range []string{
		"QPT for books.xml:",
		"QPT for reviews.xml:",
		"/books//book/year [values, pred(> 1995)]",
		"/books//book/title [tf+len]",
		"/books//book/isbn [values]",
		"-> /books/book/year", // '//' expansion against the dictionary
		"/reviews//review/content [tf+len]",
		"inverted list probes: xml, search",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainWithoutKeywords(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Explain(v, nil)
	if strings.Contains(out, "inverted list probes") {
		t.Error("no keywords means no inverted probes section")
	}
}
