package core

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/store"
)

// newCollectionEngine loads n small part documents whose bodies embed the
// doc index, so result provenance is visible in the output.
func newCollectionEngine(t *testing.T, n int) *Engine {
	t.Helper()
	e := New(store.New())
	for i := 0; i < n; i++ {
		xml := fmt.Sprintf("<books><article><tl>study %d</tl><bdy>xml search doc%d</bdy></article></books>", i, i)
		if err := e.AddXML(fmt.Sprintf("part-%d.xml", i), xml); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

const collectionView = `for $a in fn:collection("part-*")/books//article
return <art>{$a/tl}, {$a/bdy}</art>`

func TestCollectionViewExpandsInDocumentOrder(t *testing.T) {
	e := newCollectionEngine(t, 5)
	v, err := e.CompileView(collectionView)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := e.Search(v, []string{"xml"}, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5", len(results))
	}
	if stats.Candidates != 5 {
		t.Errorf("Candidates = %d, want 5", stats.Candidates)
	}
	// Identical scores everywhere: rank order must be ingest order.
	for i, r := range results {
		if want := fmt.Sprintf("doc%d", i); !strings.Contains(r.Element.XMLString(""), want) {
			t.Errorf("result %d is not from %s: %s", i, want, r.Element.XMLString(""))
		}
	}
}

func TestCollectionPatternCompilesAgainstEmptyCorpus(t *testing.T) {
	e := New(store.New())
	v, err := e.CompileView(collectionView)
	if err != nil {
		t.Fatalf("pattern view must compile with no matching documents: %v", err)
	}
	results, _, err := e.Search(v, []string{"xml"}, Options{})
	if err != nil || len(results) != 0 {
		t.Fatalf("search over empty collection = %v results, err %v", len(results), err)
	}
	// A literal reference to a missing document still fails at compile.
	if _, err := e.CompileView(`for $a in fn:doc(missing.xml)/books//article return $a`); err == nil {
		t.Fatal("literal unknown document must not compile")
	}
}

func TestOverlappingDocReferencesRejected(t *testing.T) {
	e := newCollectionEngine(t, 3)
	v, err := e.CompileView(`for $a in fn:collection("part-*")/books//article
	 for $b in fn:doc(part-0.xml)/books//article
	 return <pair>{$a/tl}, {$b/tl}</pair>`)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = e.Search(v, []string{"xml"}, Options{})
	if err == nil || !strings.Contains(err.Error(), "matches both") {
		t.Fatalf("overlapping pattern/literal references must be rejected, got %v", err)
	}
}

func TestExplainMentionsCollectionPattern(t *testing.T) {
	e := newCollectionEngine(t, 4)
	v, err := e.CompileView(collectionView)
	if err != nil {
		t.Fatal(err)
	}
	out := e.Explain(v, []string{"xml"})
	if !strings.Contains(out, "collection pattern: 4 matching document(s)") {
		t.Errorf("Explain missing pattern note:\n%s", out)
	}
}
