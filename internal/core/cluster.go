package core

// Cluster primitives: the node-side half of distributed scatter-gather
// serving. A coordinator (internal/cluster) fans a search over N node
// processes, each holding a disjoint slice of the partitioned corpus plus a
// copy of every broadcast document. Ranking is split in two phases so the
// merged result is byte-identical to a single-node search:
//
//   - ClusterRank runs the index-only pipeline (PDT generation, view
//     evaluation, TF/byte-length collection) and reports every
//     keyword-matching view result as an unmaterialized candidate, plus the
//     local view size and per-keyword containment counts. The coordinator
//     sums those integers across nodes and performs the one float division
//     (scoring.IDFsFromCounts), scores candidates with scoring.Score, and
//     merges through the same total-ordered scoring.TopK heap — exactly the
//     arithmetic the single-node pipeline performs, in a different grouping
//     that changes no bits.
//   - MaterializeAt deterministically re-runs the same pipeline and
//     materializes only the winning view positions, preserving the paper's
//     deferred-materialization property across the process boundary: no
//     node touches base data for a result that did not win globally.
//
// Both phases attribute every view result to the document its outer FLWOR
// binding came from, which is what gives the coordinator a global (document
// ID, view position) sort key; views whose results cannot be attributed
// that way are rejected with ErrUnpartitionableView and must be served by a
// single node instead.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"vxml/internal/pdt"
	"vxml/internal/qpt"
	"vxml/internal/scoring"
	"vxml/internal/store"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
	"vxml/internal/xqeval"
)

// ErrUnpartitionableView reports a view whose results cannot be attributed
// one-to-one to outer-binding documents — there is no sound way to scatter
// its evaluation over disjoint corpus partitions (compare with errors.Is).
// Such views are still servable by routing the whole search to one node
// that holds every referenced document.
var ErrUnpartitionableView = errors.New("view cannot be partitioned over outer bindings")

// CompileViewUnchecked compiles a view definition without CompileParsedView's
// literal-document existence check. A cluster node holds only its partition
// of the corpus, so a view the coordinator validated against the
// cluster-wide registry may legitimately reference documents absent here;
// routing guarantees a node only serves searches whose referenced documents
// it holds.
func (e *Engine) CompileViewUnchecked(text string) (*View, error) {
	q, err := xq.Parse(text)
	if err != nil {
		return nil, err
	}
	qpts, err := qpt.Generate(q.Body, q.Functions)
	if err != nil {
		return nil, err
	}
	return &View{Text: text, Expr: q.Body, Funcs: q.Functions, QPTs: qpts}, nil
}

// AddXMLAt is AddXML under an externally assigned document ID: the document
// is parsed, stored and indexed with docID as the first component of every
// Dewey ID. A cluster node ingests under coordinator-assigned IDs so that
// global document order (the tie-break order of ranking) is identical on
// every node and on the single-node oracle. The local ID sequence is raised
// past docID, so mixed local/remote ingest cannot collide.
func (e *Engine) AddXMLAt(name, xmlText string, docID int32) error {
	if docID < 1 {
		return fmt.Errorf("core: add %q: document ID %d out of range", name, docID)
	}
	if _, exists := e.Store.Info(name); exists {
		return fmt.Errorf("core: %w: %q", store.ErrDuplicateName, name)
	}
	if _, inUse := e.Store.InfoByID(docID); inUse {
		return fmt.Errorf("core: add %q: document ID %d already in use", name, docID)
	}
	e.Store.EnsureNextID(docID + 1)
	doc, err := xmltree.ParseString(xmlText, name, docID)
	if err != nil {
		return err
	}
	pix, iix := buildIndices(doc)
	sh := e.shards[e.Store.ShardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return e.registerLocked(sh, doc, pix, iix)
}

// ReplaceXMLAt is ReplaceXML under an externally assigned document ID (see
// AddXMLAt): the replacement takes its position in global document order
// from docID, which the coordinator allocates, so every node agrees on it.
func (e *Engine) ReplaceXMLAt(name, xmlText string, docID int32) error {
	if docID < 1 {
		return fmt.Errorf("core: replace %q: document ID %d out of range", name, docID)
	}
	if _, exists := e.Store.Info(name); !exists {
		return fmt.Errorf("core: replace: %w %q", ErrUnknownDocument, name)
	}
	if _, inUse := e.Store.InfoByID(docID); inUse {
		return fmt.Errorf("core: replace %q: document ID %d already in use", name, docID)
	}
	e.Store.EnsureNextID(docID + 1)
	doc, err := xmltree.ParseString(xmlText, name, docID)
	if err != nil {
		return err
	}
	pix, iix := buildIndices(doc)
	sh := e.shards[e.Store.ShardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := e.replaceLocked(sh, doc, pix, iix); err != nil {
		if errors.Is(err, store.ErrUnknownName) {
			return fmt.Errorf("core: replace: %w %q", ErrUnknownDocument, name)
		}
		return err
	}
	return nil
}

// ClusterCandidate is one keyword-matching view result of a node-local
// ranking pass, reduced to what the coordinator needs to score and order it
// globally: nothing is materialized.
type ClusterCandidate struct {
	// Doc is the ID of the document the result's outer FLWOR binding came
	// from. Partitioned documents live on exactly one node, so (Doc, Pos)
	// orders candidates across nodes exactly as view positions order them
	// in the equivalent single-node search.
	Doc int32
	// Pos is the result's index in the node's full local view output — the
	// handle MaterializeAt resolves.
	Pos int
	// TFs are the per-keyword term frequencies of the result's subtree.
	TFs []int
	// ByteLen is the aggregate serialized length scoring normalizes by.
	ByteLen int
}

// ClusterRanking is a node's reply to the scatter phase of a distributed
// search: every matching candidate plus the integer score statistics the
// coordinator sums across nodes before computing IDFs.
type ClusterRanking struct {
	// ViewSize is the node-local |V(D)| — including results that did not
	// match the keywords, which still count toward IDF denominators.
	ViewSize int
	// Contains counts, per keyword, the local view results containing it.
	Contains []int
	// Matched is len(Candidates), kept explicit for the wire.
	Matched int
	// Candidates holds the matching results in local view order.
	Candidates []ClusterCandidate
	// Stats is the node-local cost breakdown (materialization not included).
	Stats *Stats
}

// ClusterRank runs the index-only phases of a search — PDT generation, view
// evaluation, stat collection, keyword-semantics filtering — and returns
// every matching result as an unmaterialized candidate attributed to its
// outer-binding document. Scoring and top-k selection are the coordinator's
// job: a score depends on corpus-global IDFs no single node can know.
// Options.K is ignored (every candidate is reported) and KeywordPruning is
// not applied (its context-sensitive IDF statistics cannot be merged).
func (e *Engine) ClusterRank(ctx context.Context, v *View, keywords []string, opts Options) (*ClusterRanking, error) {
	kws := normalizeKeywords(keywords)
	results, owners, stats, err := e.clusterEval(ctx, v, kws, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	rstats := make([]scoring.Stats, len(results))
	chunks := chunkBounds(len(results), stats.Workers*4)
	if err := forEach(ctx, stats.Workers, len(chunks), func(c int) {
		for i := chunks[c][0]; i < chunks[c][1]; i++ {
			rstats[i] = scoring.Collect(results[i], kws, scoring.FromPDT)
		}
	}); err != nil {
		return nil, err
	}
	out := &ClusterRanking{
		ViewSize: len(results),
		Contains: scoring.Contains(rstats, len(kws)),
		Stats:    stats,
	}
	for i := range results {
		if !scoring.Satisfies(rstats[i].TFs, !opts.Disjunctive) {
			continue
		}
		out.Candidates = append(out.Candidates, ClusterCandidate{
			Doc: owners[i], Pos: i, TFs: rstats[i].TFs, ByteLen: rstats[i].ByteLen,
		})
	}
	out.Matched = len(out.Candidates)
	stats.Matched = out.Matched
	stats.PostTime = time.Since(start)
	return out, nil
}

// ClusterMaterialized is one view result expanded by MaterializeAt.
type ClusterMaterialized struct {
	// Pos echoes the requested view position.
	Pos int
	// Element is the fully materialized result subtree.
	Element *xmltree.Node
	// Snippet is the keyword-in-context excerpt cut from Element.
	Snippet string
}

// MaterializeAt re-runs the pipeline that produced a ClusterRanking and
// materializes the view results at the given positions (ClusterCandidate
// handles), in the order requested. The re-run is deterministic, so as long
// as the corpus has not mutated in between — the cluster RPC layer guards
// this with a generation check — position i resolves to the same result the
// ranking reported. A position out of range reports the corpus changed
// underneath and is an error, never a silent skip. The int result counts
// the base-data subtree fetches performed (Stats.SubtreeFetches of this
// pass alone).
func (e *Engine) MaterializeAt(ctx context.Context, v *View, keywords []string, opts Options, positions []int) ([]ClusterMaterialized, int, error) {
	// Pin before planning, exactly like SearchPage: materialization below
	// runs after the shard locks are released.
	e.Store.Pin()
	defer e.Store.Unpin()
	kws := normalizeKeywords(keywords)
	results, _, _, err := e.clusterEval(ctx, v, kws, opts)
	if err != nil {
		return nil, 0, err
	}
	fetcher := &scoring.CountingFetcher{Fetcher: e.Store}
	out := make([]ClusterMaterialized, 0, len(positions))
	for _, pos := range positions {
		if err := ctxErr(ctx); err != nil {
			return nil, 0, err
		}
		if pos < 0 || pos >= len(results) {
			return nil, 0, fmt.Errorf("core: materialize position %d out of range (view has %d results)", pos, len(results))
		}
		elem := scoring.Materialize(results[pos], fetcher)
		out = append(out, ClusterMaterialized{Pos: pos, Element: elem, Snippet: scoring.Snippet(elem, kws, snippetWidth)})
	}
	return out, fetcher.Fetches, nil
}

// clusterEval runs plan → PDT generation → attributed view evaluation and
// returns the full view output with one owner document ID per result.
// Keywords are already normalized. Every shard read lock is released by
// return time (like rankedSearch), so callers may collect stats or
// materialize lock-free afterwards.
func (e *Engine) clusterEval(ctx context.Context, v *View, kws []string, opts Options) ([]*xmltree.Node, []int32, *Stats, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	p, err := e.lockAndPlan(v)
	if err != nil {
		return nil, nil, nil, err
	}
	defer p.unlock()
	stats := &Stats{Workers: opts.workers(), Candidates: len(p.units), ShardsSearched: len(p.shards)}

	start := time.Now()
	pdts := make([]*pdt.PDT, len(p.units))
	if err := forEach(ctx, stats.Workers, len(p.units), func(i int) {
		pdts[i] = p.units[i].generatePDT(kws, nil)
	}); err != nil {
		return nil, nil, nil, err
	}
	for _, pd := range pdts {
		if pd == nil {
			continue
		}
		stats.PDTNodes += pd.Nodes
		stats.PDTBytes += pd.Bytes
	}
	catalog := catalogOf(pdts)
	stats.PDTTime = time.Since(start)

	start = time.Now()
	results, owners, err := e.evalViewAttributed(ctx, v, catalog, opts, stats.Workers)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.EvalTime = time.Since(start)
	stats.ViewResults = len(results)
	return results, owners, stats, nil
}

// evalViewAttributed is evalView with provenance: it always evaluates the
// view per outer FLWOR binding (the partition evalView uses when parallel,
// which is documented — and property-tested — to reproduce the whole-query
// result exactly), and labels every output node with the document ID of the
// binding that produced it. Views that are not outer-partitionable — no
// top-level FLWOR, a leading let clause, or outer bindings that are not
// base elements — fail with ErrUnpartitionableView.
func (e *Engine) evalViewAttributed(ctx context.Context, v *View, catalog xqeval.Catalog, opts Options, workers int) ([]*xmltree.Node, []int32, error) {
	newEval := func() *xqeval.Evaluator {
		ev := xqeval.New(catalog, v.Funcs)
		ev.HashJoin = !opts.DisableHashJoin
		ev.SetContext(ctx)
		return ev
	}
	fl, isFLWOR := v.Expr.(*xq.FLWORExpr)
	if !isFLWOR {
		return nil, nil, fmt.Errorf("core: %w: view is not a FLWOR expression", ErrUnpartitionableView)
	}
	bindings, ok, err := newEval().OuterBindings(fl)
	if err != nil {
		return nil, nil, wrapEvalErr(err)
	}
	if !ok {
		return nil, nil, fmt.Errorf("core: %w: view starts with a let clause", ErrUnpartitionableView)
	}
	owners := make([]int32, len(bindings))
	for i, b := range bindings {
		n, isNode := b.(*xmltree.Node)
		if !isNode || len(n.ID) == 0 {
			return nil, nil, fmt.Errorf("core: %w: outer binding %d is not a base element", ErrUnpartitionableView, i)
		}
		owners[i] = n.ID[0]
	}
	chunks := chunkBounds(len(bindings), workers*4)
	outs := make([][]*xmltree.Node, len(chunks))
	odocs := make([][]int32, len(chunks))
	errs := make([]error, len(chunks))
	poolErr := forEachWorker(ctx, workers, len(chunks), func() func(int) {
		ev := newEval() // evaluators are single-threaded; one per worker
		return func(c int) {
			for bi := chunks[c][0]; bi < chunks[c][1]; bi++ {
				items, err := ev.EvalTail(fl, bindings[bi])
				if err != nil {
					errs[c] = err
					return
				}
				nodes := nodesOf(items)
				outs[c] = append(outs[c], nodes...)
				for range nodes {
					odocs[c] = append(odocs[c], owners[bi])
				}
			}
		}
	})
	if poolErr != nil {
		return nil, nil, poolErr
	}
	var results []*xmltree.Node
	var resultOwners []int32
	for c := range chunks {
		if errs[c] != nil {
			return nil, nil, wrapEvalErr(errs[c])
		}
		results = append(results, outs[c]...)
		resultOwners = append(resultOwners, odocs[c]...)
	}
	return results, resultOwners, nil
}
