package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// buildBigSelection creates a corpus where only a few elements contain the
// keyword, so pruning has something to skip.
func buildBigSelection(t *testing.T, n int) *Engine {
	t.Helper()
	r := rand.New(rand.NewSource(5))
	var b strings.Builder
	b.WriteString("<articles>")
	for i := 0; i < n; i++ {
		kw := "filler"
		if i%17 == 0 {
			kw = "quantum"
		}
		extra := ""
		if i%23 == 0 {
			kw += " entangled"
		}
		fmt.Fprintf(&b, "<article><yr>%d</yr><body>%s text %d %s</body></article>",
			1990+r.Intn(20), kw, i, extra)
	}
	b.WriteString("</articles>")
	e := emptyEngine()
	if err := e.AddXML("articles.xml", b.String()); err != nil {
		t.Fatal(err)
	}
	return e
}

const selectionView = `
for $a in fn:doc(articles.xml)/articles//article
where $a/yr > 1995
return $a`

func resultSet(results []Result) []string {
	var out []string
	for _, r := range results {
		out = append(out, r.Element.XMLString(""))
	}
	sort.Strings(out)
	return out
}

func TestKeywordPruningSameResultSet(t *testing.T) {
	e := buildBigSelection(t, 400)
	v, err := e.CompileView(selectionView)
	if err != nil {
		t.Fatal(err)
	}
	for _, disjunctive := range []bool{false, true} {
		plain, pstats, err := e.Search(v, []string{"quantum", "entangled"},
			Options{Disjunctive: disjunctive})
		if err != nil {
			t.Fatal(err)
		}
		pruned, stats, err := e.Search(v, []string{"quantum", "entangled"},
			Options{Disjunctive: disjunctive, KeywordPruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.KeywordPruned {
			t.Fatal("pruning not applied to a selection view")
		}
		a, b := resultSet(plain), resultSet(pruned)
		if len(a) != len(b) {
			t.Fatalf("disj=%v: result sets differ: %d vs %d", disjunctive, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("disj=%v: result %d differs", disjunctive, i)
			}
		}
		if stats.PDTNodes >= pstats.PDTNodes {
			t.Errorf("disj=%v: pruning did not shrink the PDT: %d vs %d",
				disjunctive, stats.PDTNodes, pstats.PDTNodes)
		}
	}
}

func TestKeywordPruningDisjunctivePreservesOrder(t *testing.T) {
	e := buildBigSelection(t, 400)
	v, err := e.CompileView(selectionView)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := e.Search(v, []string{"quantum", "entangled"}, Options{Disjunctive: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, _, err := e.Search(v, []string{"quantum", "entangled"},
		Options{Disjunctive: true, KeywordPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	// Under disjunctive semantics pruned elements contain no keyword, so
	// IDF rescaling is uniform and the rank order is preserved.
	if len(plain) != len(pruned) {
		t.Fatalf("result counts differ: %d vs %d", len(plain), len(pruned))
	}
	for i := range plain {
		if plain[i].Element.XMLString("") != pruned[i].Element.XMLString("") {
			t.Errorf("rank %d differs", i+1)
		}
	}
}

func TestKeywordPruningIgnoredForJoins(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.Search(v, []string{"xml"}, Options{KeywordPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeywordPruned {
		t.Error("pruning must not apply to join views (non-monotone)")
	}
}

func TestKeywordPruningIgnoredForConstructors(t *testing.T) {
	e := buildBigSelection(t, 50)
	v, err := e.CompileView(`
for $a in fn:doc(articles.xml)/articles//article
return <w>{$a/body}</w>`)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.Search(v, []string{"quantum"}, Options{KeywordPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.KeywordPruned {
		t.Error("pruning must not apply to constructor views")
	}
}

func TestParallelPDTSameResults(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := e.Search(v, []string{"xml", "search"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := e.Search(v, []string{"xml", "search"}, Options{ParallelPDT: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("serial %d vs parallel %d results", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Score != parallel[i].Score ||
			serial[i].Element.XMLString("") != parallel[i].Element.XMLString("") {
			t.Errorf("result %d differs under ParallelPDT", i)
		}
	}
}

func TestKeywordPruningBarePathView(t *testing.T) {
	e := buildBigSelection(t, 200)
	v, err := e.CompileView(`fn:doc(articles.xml)/articles/article[yr > 1995]`)
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := e.Search(v, []string{"quantum"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pruned, stats, err := e.Search(v, []string{"quantum"}, Options{KeywordPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.KeywordPruned {
		t.Fatal("bare path views are selection-shaped")
	}
	a, b := resultSet(plain), resultSet(pruned)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Error("result sets differ for bare path view")
	}
}
