package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"vxml/internal/store"
)

// partXML builds a document whose <extra> child is invisible to the view
// and the keywords, so it reaches a result only through base-data
// materialization — which makes torn or tombstone-broken materialization
// observable as a missing marker.
func partXML(marker string) string {
	return fmt.Sprintf("<part><t>needle text</t><extra>%s</extra></part>", marker)
}

const partView = `for $p in fn:collection("part-*")/part return $p`

func TestReplaceAndDeleteVisibleToSearch(t *testing.T) {
	e := emptyEngine()
	for i := 0; i < 3; i++ {
		if err := e.AddXML(fmt.Sprintf("part-%d.xml", i), partXML(fmt.Sprintf("orig-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.CompileView(partView)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := e.Search(v, []string{"needle"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}

	if err := e.ReplaceXML("part-1.xml", partXML("revised-1")); err != nil {
		t.Fatal(err)
	}
	if err := e.Delete("part-2.xml"); err != nil {
		t.Fatal(err)
	}
	results, _, err = e.Search(v, []string{"needle"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("after mutation: results = %d, want 2", len(results))
	}
	all := results[0].Element.XMLString("") + results[1].Element.XMLString("")
	if !strings.Contains(all, "revised-1") || strings.Contains(all, "orig-1") {
		t.Errorf("replacement not visible: %s", all)
	}
	if strings.Contains(all, "orig-2") {
		t.Errorf("deleted document still in results: %s", all)
	}
	// The replaced document got a fresh ID, so the collection enumerates
	// it after the older survivor: part-0 first, then part-1's replacement.
	if first := results[0].Element.XMLString(""); !strings.Contains(first, "orig-0") {
		t.Errorf("collection order after replace: first result = %s", first)
	}

	if err := e.ReplaceXML("part-2.xml", partXML("x")); err == nil {
		t.Error("replace of a deleted name should fail")
	}
	if err := e.Delete("part-2.xml"); err == nil {
		t.Error("double delete should fail")
	}
}

// TestStreamSurvivesMutationMidConsumption pins the tombstone contract:
// a streaming search that planned before a mutation keeps materializing
// the old subtrees for every winner it yields afterwards, while the next
// search sees only the mutated corpus.
func TestStreamSurvivesMutationMidConsumption(t *testing.T) {
	e := emptyEngine()
	for i := 0; i < 4; i++ {
		if err := e.AddXML(fmt.Sprintf("part-%d.xml", i), partXML(fmt.Sprintf("orig-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := e.CompileView(partView)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	mutated := false
	for r, err := range e.ResultsSeq(context.Background(), v, []string{"needle"}, Options{}, 0) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r.Element.XMLString(""))
		if !mutated {
			// Mutate documents the stream has not yielded yet.
			if err := e.Delete("part-2.xml"); err != nil {
				t.Fatal(err)
			}
			if err := e.ReplaceXML("part-3.xml", partXML("revised-3")); err != nil {
				t.Fatal(err)
			}
			mutated = true
		}
	}
	if len(got) != 4 {
		t.Fatalf("stream yielded %d results, want 4 (planned pre-mutation)", len(got))
	}
	for i, xml := range got {
		want := fmt.Sprintf("orig-%d", i)
		if !strings.Contains(xml, want) {
			t.Errorf("result %d lost its pre-mutation subtree: %s", i, xml)
		}
	}
	// The stream is done; its pin is released and the tombstones swept.
	if n := e.Store.Tombstones(); n != 0 {
		t.Errorf("tombstones after stream end = %d, want 0", n)
	}
	// A fresh search sees the mutated corpus only.
	results, _, err := e.Search(v, []string{"needle"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("post-mutation results = %d, want 3", len(results))
	}
	all := ""
	for _, r := range results {
		all += r.Element.XMLString("")
	}
	if strings.Contains(all, "orig-2") || strings.Contains(all, "orig-3") || !strings.Contains(all, "revised-3") {
		t.Errorf("post-mutation corpus wrong: %s", all)
	}
}

// TestConcurrentSearchAndMutate hammers searches against a mutator that
// flips a document between two generations and periodically deletes and
// re-adds another. Every returned result must be fully materialized from
// exactly one generation — a result missing its <extra> marker means a
// winner materialized against a swept tombstone (or a torn swap). Run
// under -race.
func TestConcurrentSearchAndMutate(t *testing.T) {
	e := New(store.NewSharded(4))
	if err := e.AddXML("part-a.xml", partXML("gen-a-0")); err != nil {
		t.Fatal(err)
	}
	if err := e.AddXML("part-b.xml", partXML("stable-b")); err != nil {
		t.Fatal(err)
	}
	v, err := e.CompileView(partView)
	if err != nil {
		t.Fatal(err)
	}

	const (
		searchers         = 4
		searchesPerWorker = 60
		flips             = 120
	)
	var wg sync.WaitGroup
	errCh := make(chan error, searchers+2)

	wg.Add(1)
	go func() { // replacer: part-a alternates generations
		defer wg.Done()
		for i := 1; i <= flips; i++ {
			if err := e.ReplaceXML("part-a.xml", partXML(fmt.Sprintf("gen-a-%d", i))); err != nil {
				errCh <- fmt.Errorf("replace: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // churner: part-c appears and disappears
		defer wg.Done()
		for i := 0; i < flips/2; i++ {
			if err := e.AddXML("part-c.xml", partXML("churn-c")); err != nil {
				errCh <- fmt.Errorf("churn add: %v", err)
				return
			}
			if err := e.Delete("part-c.xml"); err != nil {
				errCh <- fmt.Errorf("churn delete: %v", err)
				return
			}
		}
	}()
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			opts := Options{Parallelism: 1 + g%2} // sequential and pooled searchers
			for i := 0; i < searchesPerWorker; i++ {
				results, _, err := e.Search(v, []string{"needle"}, opts)
				if err != nil {
					errCh <- fmt.Errorf("searcher %d: %v", g, err)
					return
				}
				for _, r := range results {
					xml := r.Element.XMLString("")
					if !strings.Contains(xml, "<extra>") {
						errCh <- fmt.Errorf("searcher %d: winner lost its base subtree: %s", g, xml)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Quiesced: every retired generation must be sweepable — one pinless
	// probe (Pin+Unpin) forces the final sweep.
	e.Store.Pin()
	e.Store.Unpin()
	if n := e.Store.Tombstones(); n != 0 {
		t.Errorf("tombstones after quiesce = %d, want 0", n)
	}
}
