package core

import (
	"context"
	"fmt"
	"strings"

	"vxml/internal/docname"
	"vxml/internal/pathindex"
)

// ExplainContext is Explain with a cancellation pre-flight: plan rendering
// is cheap (no PDT is generated, no view evaluated), so one ctx check
// before taking the read locks is the whole cooperation.
func (e *Engine) ExplainContext(ctx context.Context, v *View, keywords []string) (string, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	return e.Explain(v, keywords), nil
}

// Explain renders the query plan for a keyword search over the view: the
// QPT per document, the exact index probes PrepareLists will issue (with
// '//' expansion against each document's path dictionary), and the
// inverted-list probes for the keywords. No PDT is generated.
func (e *Engine) Explain(v *View, keywords []string) string {
	e.RLock()
	defer e.RUnlock()
	var b strings.Builder
	b.WriteString("view:\n")
	for _, line := range strings.Split(strings.TrimSpace(v.Text), "\n") {
		b.WriteString("  ")
		b.WriteString(strings.TrimSpace(line))
		b.WriteString("\n")
	}
	for _, q := range v.QPTs {
		fmt.Fprintf(&b, "\nQPT for %s:\n", q.Doc)
		for _, line := range strings.Split(strings.TrimRight(q.String(), "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteString("\n")
		}
		if docname.IsPattern(q.Doc) {
			docs := e.Store.InfosMatching(q.Doc)
			fmt.Fprintf(&b, "  collection pattern: %d matching document(s)\n", len(docs))
		}
		b.WriteString("  path index probes:\n")
		var pix *pathindex.Index
		if !docname.IsPattern(q.Doc) {
			pix = e.PathIndex(q.Doc)
		}
		for _, n := range q.Nodes() {
			if n.HasMandatoryChild() && !n.V && !n.C {
				continue
			}
			steps := n.StepsFromRoot()
			var ann []string
			if n.V {
				ann = append(ann, "values")
			}
			if n.C {
				ann = append(ann, "tf+len")
			}
			for _, p := range n.Preds {
				ann = append(ann, "pred("+p.String()+")")
			}
			suffix := ""
			if len(ann) > 0 {
				suffix = " [" + strings.Join(ann, ", ") + "]"
			}
			fmt.Fprintf(&b, "    %s%s\n", pathindex.FormatSteps(steps), suffix)
			if pix != nil {
				for _, fp := range pix.MatchFullPaths(steps) {
					fmt.Fprintf(&b, "      -> %s\n", fp)
				}
			}
		}
	}
	if len(keywords) > 0 {
		fmt.Fprintf(&b, "\ninverted list probes: %s\n",
			strings.Join(normalizeKeywords(keywords), ", "))
	}
	return b.String()
}
