// Package core wires the paper's architecture together (Figure 3): QPT
// generation, index-only PDT generation, evaluation of the unchanged view
// query over the PDTs, and scoring with deferred top-k materialization.
// This is the "Efficient" system of the experimental section.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/pdt"
	"vxml/internal/qpt"
	"vxml/internal/scoring"
	"vxml/internal/store"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
	"vxml/internal/xqeval"
)

// Engine owns the document store and the per-document path and
// inverted-list indices.
//
// The engine is safe for concurrent use: Search, Explain and view
// compilation hold a read lock and proceed in parallel, while AddXML and
// AddParsed take the write lock so a search never observes a document whose
// indices are half-built. The Path and Inv maps must only be read while a
// search is in flight (the comparator pipelines in internal/baseline and
// internal/gtp do so under the read lock via RLock/RUnlock).
type Engine struct {
	mu    sync.RWMutex
	Store *store.Store
	Path  map[string]*pathindex.Index
	Inv   map[string]*invindex.Index
}

// RLock takes the engine's read lock. Comparator pipelines that reach into
// Path/Inv directly (baseline, gtp) bracket their run with RLock/RUnlock so
// they serialize correctly against AddXML.
func (e *Engine) RLock() { e.mu.RLock() }

// RUnlock releases the read lock taken by RLock.
func (e *Engine) RUnlock() { e.mu.RUnlock() }

// New builds an engine over an existing store, indexing every document.
func New(st *store.Store) *Engine {
	e := &Engine{
		Store: st,
		Path:  map[string]*pathindex.Index{},
		Inv:   map[string]*invindex.Index{},
	}
	for _, doc := range st.Docs() {
		e.Path[doc.Name], e.Inv[doc.Name] = buildIndices(doc)
	}
	return e
}

// AddXML parses, stores and indexes a document. It takes the write lock, so
// concurrent searches see either no trace of the document or its store entry
// and both indices together.
func (e *Engine) AddXML(name, xmlText string) error {
	// Parse and build both indices before taking the write lock: the
	// document is private until registered, so only publication needs
	// exclusion and concurrent searches stall for microseconds, not for
	// the duration of a large ingest.
	if e.Store.Doc(name) != nil {
		return fmt.Errorf("core: %w: %q", store.ErrDuplicateName, name)
	}
	doc, err := xmltree.ParseString(xmlText, name, e.Store.ReserveID())
	if err != nil {
		return err
	}
	pix, iix := buildIndices(doc)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.Store.RegisterParsed(doc); err != nil {
		return err
	}
	e.Path[name], e.Inv[name] = pix, iix
	return nil
}

// AddParsed stores and indexes a programmatically built document. Like
// AddXML it finalizes and indexes the document before taking the write
// lock, so only publication excludes searches. It panics on a duplicate
// name (programmatic corpora control their names, matching Store.AddParsed).
func (e *Engine) AddParsed(doc *xmltree.Document) {
	doc.DocID = e.Store.ReserveID()
	doc.Finalize()
	pix, iix := buildIndices(doc)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.Store.RegisterParsed(doc); err != nil {
		panic(err)
	}
	e.Path[doc.Name], e.Inv[doc.Name] = pix, iix
}

// buildIndices builds both indices for doc. Ingest paths call it before
// taking the write lock (the document is private until published) and
// assign the results under it; New calls it during single-threaded
// construction.
func buildIndices(doc *xmltree.Document) (*pathindex.Index, *invindex.Index) {
	return pathindex.Build(doc), invindex.Build(doc)
}

// View is a compiled virtual view: the parsed definition plus one QPT per
// referenced document.
type View struct {
	Text  string
	Expr  xq.Expr
	Funcs map[string]*xq.FuncDecl
	QPTs  []*qpt.QPT
}

// CompileView parses a view definition (an XQuery expression without
// ftcontains) and derives its QPTs.
func (e *Engine) CompileView(text string) (*View, error) {
	q, err := xq.Parse(text)
	if err != nil {
		return nil, err
	}
	return e.CompileParsedView(text, q.Body, q.Functions)
}

// CompileParsedView compiles an already-parsed view expression. QPT
// generation is corpus-independent and runs unlocked; only the
// referenced-document check takes the read lock (a long compile must not
// queue behind it and stall a pending ingest, which would in turn stall
// every subsequent search).
func (e *Engine) CompileParsedView(text string, expr xq.Expr, funcs map[string]*xq.FuncDecl) (*View, error) {
	qpts, err := qpt.Generate(expr, funcs)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, q := range qpts {
		if e.Store.Doc(q.Doc) == nil {
			return nil, fmt.Errorf("core: view references unknown document %q", q.Doc)
		}
	}
	return &View{Text: text, Expr: expr, Funcs: funcs, QPTs: qpts}, nil
}

// Options configure a search.
type Options struct {
	// K is the number of results to return (top-K); 0 returns all matches.
	K int
	// Disjunctive switches from conjunctive (all keywords) to disjunctive
	// (any keyword) semantics.
	Disjunctive bool
	// DisableHashJoin turns off the evaluator's equality-join fast path
	// (used by ablation benchmarks).
	DisableHashJoin bool
	// SkipMaterialize leaves the winners pruned (used by benchmarks that
	// measure phases separately).
	SkipMaterialize bool
	// KeywordPruning enables the monotone top-k extension sketched in the
	// paper's conclusion: for selection-shaped views (a view result is a
	// single base element), elements that cannot satisfy the keyword
	// semantics are skipped during PDT generation. The result SET is
	// unchanged; scores are computed with IDF statistics over the matching
	// subset (context-sensitive flavor), so under conjunctive semantics
	// the rank order can differ from the exact TF-IDF order. Ignored for
	// views where it would be unsound (joins, nesting, constructors).
	KeywordPruning bool
	// ParallelPDT generates the per-document PDTs concurrently. Safe
	// because each PDT touches only its own document's indices; off by
	// default so phase timings stay comparable to the paper's.
	ParallelPDT bool
}

// Stats reports the per-module cost breakdown of Figure 14 plus size
// counters.
type Stats struct {
	PDTTime  time.Duration // PDT generation (PrepareLists + GeneratePDT)
	EvalTime time.Duration // query evaluation over the PDTs
	PostTime time.Duration // scoring + top-k materialization
	PDTNodes int
	PDTBytes int
	// ViewResults is |V(D)|; Matched counts results satisfying the
	// keyword semantics.
	ViewResults int
	Matched     int
	// KeywordPruned reports whether the selection-view keyword pruning
	// optimization was applied.
	KeywordPruned bool
	// SubtreeFetches counts base-data accesses during materialization.
	SubtreeFetches int
}

// Total returns the end-to-end time.
func (s *Stats) Total() time.Duration { return s.PDTTime + s.EvalTime + s.PostTime }

// Result is one ranked, materialized search result.
type Result struct {
	Rank  int
	Score float64
	TFs   []int
	// Element is the materialized result (pruned if SkipMaterialize).
	Element *xmltree.Node
	// Snippet is a keyword-in-context excerpt from the materialized
	// element ("" when SkipMaterialize is set).
	Snippet string
}

// Search evaluates a ranked keyword query over the virtual view: the
// Efficient pipeline of the paper. Scores and rank order are identical to
// materializing the view and searching it (Theorem 4.1).
func (e *Engine) Search(v *View, keywords []string, opts Options) ([]Result, *Stats, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	stats := &Stats{}
	kws := normalizeKeywords(keywords)

	// Phase 1+2: QPTs are compile-time; generate the PDTs from indices.
	start := time.Now()
	var filter *pdt.KeywordFilter
	if opts.KeywordPruning && len(kws) > 0 {
		if node := selectionFilterNode(v); node != nil {
			filter = &pdt.KeywordFilter{Node: node, Conjunctive: !opts.Disjunctive}
			stats.KeywordPruned = true
		}
	}
	catalog := xqeval.MapCatalog{}
	pdts := make([]*pdt.PDT, len(v.QPTs))
	generateOne := func(i int) {
		q := v.QPTs[i]
		pix, iix := e.Path[q.Doc], e.Inv[q.Doc]
		if pix == nil || iix == nil {
			return // unknown doc: empty PDT
		}
		lists := pdt.PrepareLists(q, pix, iix, kws)
		pdts[i] = pdt.GenerateFiltered(q, lists, q.Doc, filter)
	}
	if opts.ParallelPDT && len(v.QPTs) > 1 {
		var wg sync.WaitGroup
		for i := range v.QPTs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				generateOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range v.QPTs {
			generateOne(i)
		}
	}
	for _, p := range pdts {
		if p == nil {
			continue
		}
		stats.PDTNodes += p.Nodes
		stats.PDTBytes += p.Bytes
		if p.Doc != nil {
			catalog[p.SourceName] = p.Doc
		}
	}
	stats.PDTTime = time.Since(start)

	// Phase 3: the unchanged evaluator runs the view over the PDTs.
	start = time.Now()
	ev := xqeval.New(catalog, v.Funcs)
	ev.HashJoin = !opts.DisableHashJoin
	items, err := ev.Eval(v.Expr, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("core: evaluating view over PDTs: %w", err)
	}
	results := nodesOf(items)
	stats.EvalTime = time.Since(start)
	stats.ViewResults = len(results)

	// Phase 4: score from PDT payloads, then materialize only the top-k.
	// A per-search counting fetcher keeps the reported fetch count exact
	// even while concurrent searches drive the store's shared counters.
	start = time.Now()
	fetcher := &scoring.CountingFetcher{Fetcher: e.Store}
	ranking := scoring.Rank(results, kws, !opts.Disjunctive, opts.K, scoring.FromPDT)
	stats.Matched = ranking.Matched
	out := make([]Result, 0, len(ranking.Results))
	for i, sc := range ranking.Results {
		elem := sc.Result
		snippet := ""
		if !opts.SkipMaterialize {
			elem = scoring.Materialize(sc.Result, fetcher)
			snippet = scoring.Snippet(elem, kws, 160)
		}
		out = append(out, Result{Rank: i + 1, Score: sc.Score, TFs: sc.Stats.TFs, Element: elem, Snippet: snippet})
	}
	stats.PostTime = time.Since(start)
	stats.SubtreeFetches = fetcher.Fetches
	return out, stats, nil
}

// selectionFilterNode decides whether a view is selection-shaped — every
// view result is exactly one base element — and if so returns the QPT node
// whose elements are the results. Shapes accepted: a FLWOR whose clauses
// bind paths over a single document and whose return is the (last) loop
// variable, or a bare (filtered) path expression. Exactly one QPT with
// exactly one 'c'-annotated node is required; anything else (joins across
// documents, constructors, nesting) is rejected as non-monotone.
func selectionFilterNode(v *View) *qpt.Node {
	if len(v.QPTs) != 1 {
		return nil
	}
	switch x := v.Expr.(type) {
	case *xq.FLWORExpr:
		rv, ok := x.Return.(*xq.VarExpr)
		if !ok || rv.Name != x.Clauses[len(x.Clauses)-1].Var {
			return nil
		}
	case *xq.StepExpr, *xq.FilterExpr:
		// bare path views return base elements directly
		_ = x
	default:
		return nil
	}
	var cnode *qpt.Node
	for _, n := range v.QPTs[0].Nodes() {
		if n.C {
			if cnode != nil {
				return nil // multiple output nodes: not a selection view
			}
			cnode = n
		}
	}
	return cnode
}

// NormalizeKeyword canonicalizes one query keyword the way every pipeline
// matches it. The query-result cache keys and re-expresses TF maps through
// this same definition, so any change here propagates everywhere at once.
func NormalizeKeyword(k string) string { return strings.ToLower(strings.TrimSpace(k)) }

func normalizeKeywords(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = NormalizeKeyword(k)
	}
	return out
}

func nodesOf(items []xqeval.Item) []*xmltree.Node {
	var nodes []*xmltree.Node
	for _, it := range items {
		if n, ok := it.(*xmltree.Node); ok {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// KeywordQuery is a Figure-2 style query split into its parts.
type KeywordQuery struct {
	ViewExpr    xq.Expr
	Funcs       map[string]*xq.FuncDecl
	Keywords    []string
	Conjunctive bool
}

// SplitKeywordQuery recognizes the keyword-search-over-view pattern of
// Figure 2 and splits it into the view definition and the keyword query:
//
//	let $view := <view expression>
//	for $r in $view
//	where $r ftcontains('k1' & 'k2')
//	return $r
//
// The variant without the let clause (for $r in (<view>) where ...) is also
// accepted.
func SplitKeywordQuery(q *xq.Query) (*KeywordQuery, error) {
	fl, ok := q.Body.(*xq.FLWORExpr)
	if !ok {
		return nil, fmt.Errorf("core: keyword query must be a FLWOR expression")
	}
	ft, ok := fl.Where.(*xq.FTContainsExpr)
	if !ok {
		return nil, fmt.Errorf("core: keyword query needs an ftcontains where-clause")
	}
	last := fl.Clauses[len(fl.Clauses)-1]
	if last.IsLet {
		return nil, fmt.Errorf("core: the final clause must iterate the view (for $r in $view)")
	}
	tv, ok := ft.Target.(*xq.VarExpr)
	if !ok || tv.Name != last.Var {
		return nil, fmt.Errorf("core: ftcontains must apply to the iteration variable $%s", last.Var)
	}
	rv, ok := fl.Return.(*xq.VarExpr)
	if !ok || rv.Name != last.Var {
		return nil, fmt.Errorf("core: the return clause must return the iteration variable $%s", last.Var)
	}
	viewExpr := last.In
	if v, ok := viewExpr.(*xq.VarExpr); ok {
		// resolve through the preceding let clauses
		resolved := false
		for _, cl := range fl.Clauses[:len(fl.Clauses)-1] {
			if cl.IsLet && cl.Var == v.Name {
				viewExpr = cl.In
				resolved = true
			}
		}
		if !resolved {
			return nil, fmt.Errorf("core: view variable $%s is not bound by a let clause", v.Name)
		}
	}
	return &KeywordQuery{
		ViewExpr:    viewExpr,
		Funcs:       q.Functions,
		Keywords:    ft.Keywords,
		Conjunctive: ft.Conjunctive,
	}, nil
}
