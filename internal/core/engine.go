// Package core wires the paper's architecture together (Figure 3): QPT
// generation, index-only PDT generation, evaluation of the unchanged view
// query over the PDTs, and scoring with deferred top-k materialization.
// This is the "Efficient" system of the experimental section.
//
// The engine partitions the corpus into shards (mirroring its
// store.Store): each shard owns the path and inverted-list indices of the
// documents hash-assigned to it, guarded by its own RWMutex, and a search
// locks only the shards its view touches — so an ingest into one shard
// never contends with a search over another. With Options.Parallelism > 1
// the per-document pipeline (keyword lookup, QPT matching, PDT generation,
// evaluation, scoring) fans out over a bounded worker pool and merges into
// a top-k heap; results are byte-identical to the sequential path.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"vxml/internal/catalog"
	"vxml/internal/docname"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/pdt"
	"vxml/internal/qpt"
	"vxml/internal/scoring"
	"vxml/internal/store"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
	"vxml/internal/xqeval"
)

// ErrUnknownDocument reports a view that references a document name absent
// from the corpus (compare with errors.Is). Collection patterns are exempt:
// they may legitimately match nothing today and many documents later.
var ErrUnknownDocument = errors.New("unknown document")

// ctxErr reports ctx's cancellation state, wrapped so callers can classify
// the failure with errors.Is(err, context.Canceled) or
// errors.Is(err, context.DeadlineExceeded).
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: search interrupted: %w", err)
	}
	return nil
}

// engineShard guards the per-document indices of one corpus shard. The
// shard boundaries coincide with the store's (same name hash, same count),
// so one write lock covers the publication of a document's store entry and
// both its indices.
type engineShard struct {
	mu   sync.RWMutex
	path map[string]*pathindex.Index
	inv  map[string]*invindex.Index
}

// Engine owns the document store and the per-document path and
// inverted-list indices, partitioned into shards aligned with the store's.
//
// The engine is safe for concurrent use: Search, Explain and view
// compilation hold read locks on the shards they touch and proceed in
// parallel, while AddXML and AddParsed take one shard's write lock, so a
// search never observes a document whose indices are half-built and an
// ingest stalls only the searches that touch its shard.
type Engine struct {
	Store  store.Corpus
	shards []*engineShard
	// src is non-nil when Store persists per-document indices itself
	// (IndexSource): the shard maps then stay empty, index lookups
	// resolve through the source, and mutations publish document and
	// indices to the backend in one operation.
	src IndexSource
	// Catalog is the view catalog the planner consults (always non-nil
	// for engines built with New). Its generation is bumped inside every
	// mutation's shard write lock, so a planned search — which checks
	// artifact liveness under its shard read locks — can never mix
	// artifact state from before a mutation with corpus state from after.
	// Layers above (the Database, the HTTP server) share this same
	// catalog for their exact result-cache tier.
	Catalog *catalog.Catalog
	// promoteMu single-flights view materialization (see maybePromote).
	promoteMu sync.Mutex
}

// IndexSource is the optional seam a storage backend implements when it
// persists per-document indices alongside the documents (the disk backend
// does). When a Corpus passed to New satisfies it, the engine skips the
// eager whole-corpus index rebuild — startup cost becomes proportional to
// the manifest, not the corpus — and resolves each document's indices
// through StoredIndices on first use. Mutations flow through
// RegisterIndexed/ReplaceIndexed so the backend persists a document and
// its freshly built indices as one atomic publication; Delete remains a
// Corpus operation (the backend drops its own index state).
//
// StoredIndices must be safe for concurrent use under the engine's shard
// read locks; the engine calls the mutating methods only under the home
// shard's write lock, mirroring the heap backend's publication discipline.
type IndexSource interface {
	StoredIndices(name string) (*pathindex.Index, *invindex.Index, error)
	RegisterIndexed(doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error
	ReplaceIndexed(doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error
	// IndexProbes mirrors Engine.IndexProbes for source-resident indices.
	IndexProbes() (pathProbes, keywordLookups int)
}

// RLock takes every shard's read lock, in shard order. Comparator
// pipelines that reach into the indices directly (baseline, gtp) bracket
// their run with RLock/RUnlock so they serialize correctly against AddXML
// regardless of which shards their view touches.
func (e *Engine) RLock() {
	for _, sh := range e.shards {
		sh.mu.RLock()
	}
}

// RUnlock releases the read locks taken by RLock.
func (e *Engine) RUnlock() {
	for _, sh := range e.shards {
		sh.mu.RUnlock()
	}
}

// PathIndex returns the path index of the named document, or nil. The
// caller must hold the engine's read lock (RLock, or the shard locks a
// running Search holds) — the maps are written only under shard write
// locks, so any read lock makes the plain map read safe.
func (e *Engine) PathIndex(name string) *pathindex.Index {
	if e.src != nil {
		pix, _, err := e.src.StoredIndices(name)
		if err != nil {
			return nil
		}
		return pix
	}
	return e.shards[e.Store.ShardOf(name)].path[name]
}

// InvIndex returns the inverted index of the named document, or nil. The
// same locking requirement as PathIndex applies.
func (e *Engine) InvIndex(name string) *invindex.Index {
	if e.src != nil {
		_, iix, err := e.src.StoredIndices(name)
		if err != nil {
			return nil
		}
		return iix
	}
	return e.shards[e.Store.ShardOf(name)].inv[name]
}

// IndexProbes sums the served index-probe counters across the whole
// corpus: path-index B+-tree probes and inverted-list keyword lookups.
// Benchmarks report deltas of these to show that the number of probes per
// query depends on the query, never on the data size (paper Figure 7).
func (e *Engine) IndexProbes() (pathProbes, keywordLookups int) {
	if e.src != nil {
		return e.src.IndexProbes()
	}
	e.RLock()
	defer e.RUnlock()
	for _, sh := range e.shards {
		for _, ix := range sh.path {
			pathProbes += ix.Probes()
		}
		for _, ix := range sh.inv {
			keywordLookups += ix.Lookups()
		}
	}
	return pathProbes, keywordLookups
}

// New builds an engine over an existing corpus. A heap corpus is indexed
// eagerly, document by document; a corpus that persists its own indices
// (IndexSource — the disk backend) is not: its stored indices are decoded
// on first use, so opening a large saved corpus costs a manifest read, not
// a rebuild.
func New(st store.Corpus) *Engine {
	e := &Engine{
		Store:   st,
		shards:  make([]*engineShard, st.ShardCount()),
		Catalog: catalog.New(0),
	}
	for i := range e.shards {
		e.shards[i] = &engineShard{path: map[string]*pathindex.Index{}, inv: map[string]*invindex.Index{}}
	}
	if src, ok := st.(IndexSource); ok {
		e.src = src
		return e
	}
	for _, doc := range st.Docs() {
		sh := e.shards[st.ShardOf(doc.Name)]
		sh.path[doc.Name], sh.inv[doc.Name] = buildIndices(doc)
	}
	return e
}

// AddXML parses, stores and indexes a document. It takes the home shard's
// write lock, so concurrent searches see either no trace of the document
// or its store entry and both indices together — and searches over other
// shards are not disturbed at all.
func (e *Engine) AddXML(name, xmlText string) error {
	// Parse and build both indices before taking the write lock: the
	// document is private until registered, so only publication needs
	// exclusion and concurrent searches stall for microseconds, not for
	// the duration of a large ingest.
	if _, exists := e.Store.Info(name); exists {
		return fmt.Errorf("core: %w: %q", store.ErrDuplicateName, name)
	}
	doc, err := xmltree.ParseString(xmlText, name, e.Store.ReserveID())
	if err != nil {
		return err
	}
	pix, iix := buildIndices(doc)
	sh := e.shards[e.Store.ShardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return e.registerLocked(sh, doc, pix, iix)
}

// registerLocked publishes a parsed document and its freshly built indices
// under the home shard's write lock, which the caller holds: through the
// index source when the backend persists indices itself, else to the heap
// store plus the shard maps.
func (e *Engine) registerLocked(sh *engineShard, doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error {
	if e.src != nil {
		if err := e.src.RegisterIndexed(doc, pix, iix); err != nil {
			return err
		}
		e.bumpCatalogLocked()
		return nil
	}
	if err := e.Store.RegisterParsed(doc); err != nil {
		return err
	}
	sh.path[doc.Name], sh.inv[doc.Name] = pix, iix
	e.bumpCatalogLocked()
	return nil
}

// replaceLocked is registerLocked for the replacement path.
func (e *Engine) replaceLocked(sh *engineShard, doc *xmltree.Document, pix *pathindex.Index, iix *invindex.Index) error {
	if e.src != nil {
		if err := e.src.ReplaceIndexed(doc, pix, iix); err != nil {
			return err
		}
		e.bumpCatalogLocked()
		return nil
	}
	if err := e.Store.ReplaceParsed(doc); err != nil {
		return err
	}
	sh.path[doc.Name], sh.inv[doc.Name] = pix, iix
	e.bumpCatalogLocked()
	return nil
}

// bumpCatalogLocked invalidates the catalog inside a mutation's shard
// write lock. The ordering matters: a planned search takes the touched
// shards' read locks and then checks artifact generations, so a mutation
// that affects a view's documents is either entirely before the search
// (the search sees the bumped generation and rejects stale artifacts) or
// entirely after it. A bump from a mutation on an unrelated shard can
// interleave with a search's compute, but only costs a conservative
// artifact refusal — never a stale serve.
func (e *Engine) bumpCatalogLocked() {
	if e.Catalog != nil {
		e.Catalog.Invalidate()
	}
}

// AddParsed stores and indexes a programmatically built document. Like
// AddXML it finalizes and indexes the document before taking the write
// lock, so only publication excludes searches. It panics on a duplicate
// name (programmatic corpora control their names, matching Store.AddParsed).
func (e *Engine) AddParsed(doc *xmltree.Document) {
	doc.DocID = e.Store.ReserveID()
	doc.Finalize()
	pix, iix := buildIndices(doc)
	sh := e.shards[e.Store.ShardOf(doc.Name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := e.registerLocked(sh, doc, pix, iix); err != nil {
		panic(err)
	}
}

// ReplaceXML parses, indexes and atomically swaps the document registered
// under name: one shard write lock covers unregistering the old document's
// indices and publishing the replacement's store entry and indices, so a
// concurrent search sees entirely the old document or entirely the new one.
// The replacement carries a fresh document ID — it is a new document in
// global document order; only the name is stable — so collection views
// enumerate it at its new position. Replacing an unregistered name returns
// an error wrapping ErrUnknownDocument. Like AddXML, parsing and index
// construction run outside the lock.
func (e *Engine) ReplaceXML(name, xmlText string) error {
	if _, exists := e.Store.Info(name); !exists {
		return fmt.Errorf("core: replace: %w %q", ErrUnknownDocument, name)
	}
	doc, err := xmltree.ParseString(xmlText, name, e.Store.ReserveID())
	if err != nil {
		return err
	}
	pix, iix := buildIndices(doc)
	sh := e.shards[e.Store.ShardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := e.replaceLocked(sh, doc, pix, iix); err != nil {
		if errors.Is(err, store.ErrUnknownName) {
			return fmt.Errorf("core: replace: %w %q", ErrUnknownDocument, name)
		}
		return err
	}
	return nil
}

// Delete unregisters the named document and drops its path and inverted
// indices under the home shard's write lock. Searches planned afterwards
// cannot see the document; searches already past planning keep materializing
// its subtrees through the store's tombstones (see store.Store.Delete).
// Deleting an unregistered name returns an error wrapping ErrUnknownDocument.
func (e *Engine) Delete(name string) error {
	sh := e.shards[e.Store.ShardOf(name)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if err := e.Store.Delete(name); err != nil {
		if errors.Is(err, store.ErrUnknownName) {
			return fmt.Errorf("core: delete: %w %q", ErrUnknownDocument, name)
		}
		return err
	}
	delete(sh.path, name)
	delete(sh.inv, name)
	e.bumpCatalogLocked()
	return nil
}

// buildIndices builds both indices for doc. Ingest paths call it before
// taking the write lock (the document is private until published) and
// assign the results under it; New calls it during single-threaded
// construction.
func buildIndices(doc *xmltree.Document) (*pathindex.Index, *invindex.Index) {
	return pathindex.Build(doc), invindex.Build(doc)
}

// View is a compiled virtual view: the parsed definition plus one QPT per
// referenced document or collection pattern.
type View struct {
	Text  string
	Expr  xq.Expr
	Funcs map[string]*xq.FuncDecl
	QPTs  []*qpt.QPT
}

// CompileView parses a view definition (an XQuery expression without
// ftcontains) and derives its QPTs.
func (e *Engine) CompileView(text string) (*View, error) {
	q, err := xq.Parse(text)
	if err != nil {
		return nil, err
	}
	v, err := e.CompileParsedView(text, q.Body, q.Functions)
	if err != nil {
		return nil, err
	}
	// Register here, not in CompileParsedView: synthetic per-query views
	// (Database.Query compiles the verbatim query text) should not claim
	// registry entries at compile time — planned searches register lazily.
	if e.Catalog != nil {
		e.Catalog.Register(text)
	}
	return v, nil
}

// CompileParsedView compiles an already-parsed view expression. QPT
// generation is corpus-independent and runs unlocked; only the
// referenced-document check takes read locks (a long compile must not
// queue behind them and stall a pending ingest, which would in turn stall
// every subsequent search). Collection patterns (fn:collection("part-*"))
// are not checked against the corpus: a pattern may legitimately match
// nothing today and many documents after the next ingest.
func (e *Engine) CompileParsedView(text string, expr xq.Expr, funcs map[string]*xq.FuncDecl) (*View, error) {
	qpts, err := qpt.Generate(expr, funcs)
	if err != nil {
		return nil, err
	}
	for _, q := range qpts {
		if docname.IsPattern(q.Doc) {
			continue
		}
		if _, exists := e.Store.Info(q.Doc); !exists {
			return nil, fmt.Errorf("core: view references %w %q", ErrUnknownDocument, q.Doc)
		}
	}
	return &View{Text: text, Expr: expr, Funcs: funcs, QPTs: qpts}, nil
}

// Options configure a search.
type Options struct {
	// K is the number of results to return (top-K); 0 returns all matches.
	K int
	// Disjunctive switches from conjunctive (all keywords) to disjunctive
	// (any keyword) semantics.
	Disjunctive bool
	// Parallelism bounds the worker pool the Efficient pipeline fans the
	// per-document work (keyword lookup, QPT matching, PDT generation),
	// view evaluation and scoring out over. 0 (the default) uses
	// GOMAXPROCS; 1 (or any negative value) selects the sequential legacy
	// path. Results are byte-identical at every setting.
	Parallelism int
	// DisableHashJoin turns off the evaluator's equality-join fast path
	// (used by ablation benchmarks).
	DisableHashJoin bool
	// SkipMaterialize leaves the winners pruned (used by benchmarks that
	// measure phases separately).
	SkipMaterialize bool
	// KeywordPruning enables the monotone top-k extension sketched in the
	// paper's conclusion: for selection-shaped views (a view result is a
	// single base element), elements that cannot satisfy the keyword
	// semantics are skipped during PDT generation. The result SET is
	// unchanged; scores are computed with IDF statistics over the matching
	// subset (context-sensitive flavor), so under conjunctive semantics
	// the rank order can differ from the exact TF-IDF order. Ignored for
	// views where it would be unsound (joins, nesting, constructors).
	KeywordPruning bool
	// ParallelPDT generates the per-document PDTs concurrently even when
	// Parallelism is 1. Subsumed by Parallelism (which also parallelizes
	// evaluation and scoring); kept so phase-timing benchmarks can isolate
	// the PDT module.
	ParallelPDT bool
	// Plan routes the search through the catalog planner: a live artifact
	// of the view (skeleton or materialized view) serves the query instead
	// of the PDT pipeline, and direct evaluations record artifacts and
	// count toward adaptive materialization. Planned answers are
	// byte-identical to direct evaluation at every option combination;
	// Stats.PlanSource reports which path answered. Ignored (treated as
	// false) when SkipMaterialize or KeywordPruning is set.
	Plan bool
}

// workers resolves the Parallelism setting to a pool size.
func (o Options) workers() int {
	switch {
	case o.Parallelism > 1:
		return o.Parallelism
	case o.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	default: // 1 or negative: the sequential legacy path
		return 1
	}
}

// Stats reports the per-module cost breakdown of Figure 14 plus size
// counters.
type Stats struct {
	PDTTime  time.Duration // PDT generation (PrepareLists + GeneratePDT)
	EvalTime time.Duration // query evaluation over the PDTs
	PostTime time.Duration // scoring + top-k materialization
	PDTNodes int
	PDTBytes int
	// ViewResults is |V(D)|; Matched counts results satisfying the
	// keyword semantics.
	ViewResults int
	Matched     int
	// KeywordPruned reports whether the selection-view keyword pruning
	// optimization was applied.
	KeywordPruned bool
	// SubtreeFetches counts base-data accesses during materialization.
	SubtreeFetches int
	// Workers is the resolved worker-pool size the search ran with (1 =
	// sequential path). Candidates counts the documents the view's QPTs
	// resolved to, and ShardsSearched the corpus shards whose read locks
	// the search held. These describe the execution, never the results.
	Workers        int
	Candidates     int
	ShardsSearched int
	// PlanSource reports how the answer was produced (catalog.PlanDirect /
	// PlanRewritten / PlanMaterialized; the Database layer adds
	// PlanCacheHit for exact result-cache hits). PlanView is the catalog
	// ID of the serving view ("" on the direct path). Like the fields
	// above they describe the execution — the results are byte-identical
	// across every plan source.
	PlanSource string
	PlanView   string
	// promotable is set when this search pushed its view over the
	// promotion threshold; the entry points run maybePromote after the
	// shard locks are released.
	promotable bool
}

// Total returns the end-to-end time.
func (s *Stats) Total() time.Duration { return s.PDTTime + s.EvalTime + s.PostTime }

// Result is one ranked, materialized search result.
type Result struct {
	Rank  int
	Score float64
	TFs   []int
	// Element is the materialized result (pruned if SkipMaterialize).
	Element *xmltree.Node
	// Snippet is a keyword-in-context excerpt from the materialized
	// element ("" when SkipMaterialize is set).
	Snippet string
}

// unit is one candidate-document work item of a search: a QPT paired with
// the name of one document it resolved to and that document's indices,
// snapshotted under the shard read locks the search holds. Planning is
// metadata- and index-only — the document tree itself is never touched,
// which is what lets a disk-backed corpus search without paging base data
// in (paper §4.2.2.2: only materialization reads base storage).
type unit struct {
	q    *qpt.QPT
	name string
	pix  *pathindex.Index
	iix  *invindex.Index
}

// plan is a search's locked view of the corpus: the candidate units in
// deterministic order (QPT order, then document ID order within a QPT)
// and the set of shards whose read locks are held.
type plan struct {
	units  []unit
	shards []*engineShard // locked, in shard order
}

func (p *plan) unlock() {
	for _, sh := range p.shards {
		sh.mu.RUnlock()
	}
}

// lockAndPlan acquires the read locks of every shard the view touches (all
// shards for collection patterns) in shard order, then resolves each QPT to
// its candidate documents. Two QPTs resolving to the same document — a
// literal reference shadowed by an overlapping pattern — would make the
// document's PDT ambiguous and is rejected.
func (e *Engine) lockAndPlan(v *View) (*plan, error) {
	needed := map[int]bool{}
	all := false
	for _, q := range v.QPTs {
		if docname.IsPattern(q.Doc) {
			all = true
			break
		}
		needed[e.Store.ShardOf(q.Doc)] = true
	}
	p := &plan{}
	for i, sh := range e.shards {
		if all || needed[i] {
			sh.mu.RLock()
			p.shards = append(p.shards, sh)
		}
	}
	seen := map[string]string{} // doc name -> QPT reference that claimed it
	for _, q := range v.QPTs {
		for _, info := range e.Store.InfosMatching(q.Doc) {
			if prev, dup := seen[info.Name]; dup {
				p.unlock()
				return nil, fmt.Errorf("core: document %q matches both %q and %q in one view", info.Name, prev, q.Doc)
			}
			seen[info.Name] = q.Doc
			u := unit{q: q, name: info.Name}
			if e.src != nil {
				pix, iix, err := e.src.StoredIndices(info.Name)
				if err != nil {
					p.unlock()
					return nil, fmt.Errorf("core: indices of %q: %w", info.Name, err)
				}
				u.pix, u.iix = pix, iix
			} else {
				sh := e.shards[e.Store.ShardOf(info.Name)]
				u.pix, u.iix = sh.path[info.Name], sh.inv[info.Name]
			}
			p.units = append(p.units, u)
		}
	}
	return p, nil
}

// generatePDT runs the per-document index pipeline for one unit: inverted-
// list keyword lookup, path-index probes and QPT (pattern) matching inside
// PrepareLists, then PDT construction.
func (u unit) generatePDT(kws []string, filter *pdt.KeywordFilter) *pdt.PDT {
	if u.pix == nil || u.iix == nil {
		return nil // unindexed document: empty PDT
	}
	lists := pdt.PrepareLists(u.q, u.pix, u.iix, kws)
	return pdt.GenerateFiltered(u.q, lists, u.name, filter)
}

// evalCatalog resolves fn:doc and fn:collection references against the
// generated PDTs. ordered holds the candidate PDTs in corpus (source
// document ID) order, which DocsMatching preserves — making pattern
// expansion order identical in every pipeline and at every parallelism.
type evalCatalog struct {
	byName  map[string]*xmltree.Document
	ordered []*xmltree.Document
}

func (c *evalCatalog) Doc(name string) *xmltree.Document { return c.byName[name] }

func (c *evalCatalog) DocsMatching(pattern string) []*xmltree.Document {
	var out []*xmltree.Document
	for _, d := range c.ordered {
		if docname.Match(pattern, d.Name) {
			out = append(out, d)
		}
	}
	return out
}

// catalogOf assembles the evaluation catalog from the generated PDTs (a
// nil PDT or a PDT with no qualifying elements contributes nothing,
// exactly like an unknown document).
func catalogOf(pdts []*pdt.PDT) *evalCatalog {
	c := &evalCatalog{byName: map[string]*xmltree.Document{}}
	for _, p := range pdts {
		if p == nil || p.Doc == nil {
			continue
		}
		c.byName[p.SourceName] = p.Doc
		c.ordered = append(c.ordered, p.Doc)
	}
	// Units are ordered QPT-major; pattern expansion must follow corpus
	// order across the whole catalog.
	sortDocsByID(c.ordered)
	return c
}

func sortDocsByID(docs []*xmltree.Document) {
	sort.Slice(docs, func(i, j int) bool { return docs[i].DocID < docs[j].DocID })
}

// Search evaluates a ranked keyword query over the virtual view: the
// Efficient pipeline of the paper. Scores and rank order are identical to
// materializing the view and searching it (Theorem 4.1), and identical at
// every Parallelism setting. Search never cancels; use SearchContext for
// deadlines and cancellation.
func (e *Engine) Search(v *View, keywords []string, opts Options) ([]Result, *Stats, error) {
	return e.SearchContext(context.Background(), v, keywords, opts)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between candidate documents during PDT generation, between FLWOR bindings
// during evaluation, between results during scoring and between winners
// during materialization, so a cancel or deadline unwinds within one work
// unit. The returned error wraps ctx.Err() (classify with errors.Is); the
// shard read locks are released before SearchContext returns, canceled or
// not, and no pool goroutine outlives the call.
func (e *Engine) SearchContext(ctx context.Context, v *View, keywords []string, opts Options) ([]Result, *Stats, error) {
	return e.SearchPage(ctx, v, keywords, opts, 0)
}

// SearchPage is SearchContext that returns only the ranked winners from
// offset on: the skipped prefix is never materialized (no base-data
// fetch, no snippet), and Rank numbers keep their absolute position in
// the ranking. Callers paging uncached results combine it with
// Options.K = offset + page size.
func (e *Engine) SearchPage(ctx context.Context, v *View, keywords []string, opts Options, offset int) ([]Result, *Stats, error) {
	// Pin before planning: materialization below runs after the shard read
	// locks are released, and the pin keeps a concurrently replaced or
	// deleted document's subtrees resolvable until this search is done.
	e.Store.Pin()
	defer e.Store.Unpin()
	ranked, kws, stats, err := e.rankedSearch(ctx, v, keywords, opts)
	if err != nil {
		return nil, nil, err
	}
	// Materialize only the winners on the page. A per-search counting
	// fetcher keeps the reported fetch count exact even while concurrent
	// searches drive the store's shared counters.
	start := time.Now()
	fetcher := &scoring.CountingFetcher{Fetcher: e.Store}
	prebuilt := stats.PlanSource == catalog.PlanMaterialized
	out := make([]Result, 0, max(0, len(ranked)-offset))
	for i := max(0, offset); i < len(ranked); i++ {
		if err := ctxErr(ctx); err != nil {
			return nil, nil, err
		}
		out = append(out, materializeResult(ranked[i], i+1, kws, opts, fetcher, prebuilt))
	}
	stats.PostTime += time.Since(start)
	stats.SubtreeFetches = fetcher.Fetches
	e.maybePromote(ctx, v, opts, stats)
	return out, stats, nil
}

// rankedSearch runs the index-only phases — PDT generation, view
// evaluation, scoring and top-k selection — and returns the ranked winners
// still pruned (unmaterialized), plus the normalized keywords and the stats
// so far (PostTime covers ranking only; the caller adds materialization).
// Every shard read lock is released by the time rankedSearch returns:
// Dewey-ID subtree fetches are lock-free, so callers are free to
// materialize the winners afterwards — all at once (SearchContext) or one
// by one as a consumer pulls them (ResultsSeq).
func (e *Engine) rankedSearch(ctx context.Context, v *View, keywords []string, opts Options) ([]scoring.Scored, []string, *Stats, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, nil, nil, err
	}
	p, err := e.lockAndPlan(v)
	if err != nil {
		return nil, nil, nil, err
	}
	defer p.unlock()
	stats := &Stats{Workers: opts.workers(), Candidates: len(p.units), ShardsSearched: len(p.shards), PlanSource: catalog.PlanDirect}
	kws := normalizeKeywords(keywords)

	// The planner: serve from a live catalog artifact when one exists,
	// else fall through to the pipeline and record one. planGen is read
	// under the shard read locks, so a mutation touching this view's
	// documents cannot land between here and the store below — a bump
	// from an unrelated shard only makes the store a refused no-op.
	planGen := -1
	if e.Catalog != nil && planEligible(opts) {
		planGen = e.Catalog.Gen()
		if ranked, ok, err := e.tryPlan(ctx, v, p, kws, opts, stats); err != nil {
			return nil, nil, nil, err
		} else if ok {
			return ranked, kws, stats, nil
		}
	}

	// Phase 1+2: QPTs are compile-time; generate the PDTs from indices.
	start := time.Now()
	var filter *pdt.KeywordFilter
	if opts.KeywordPruning && len(kws) > 0 {
		if node := selectionFilterNode(v); node != nil {
			filter = &pdt.KeywordFilter{Node: node, Conjunctive: !opts.Disjunctive}
			stats.KeywordPruned = true
		}
	}
	pdts := make([]*pdt.PDT, len(p.units))
	pdtWorkers := stats.Workers
	if opts.ParallelPDT && pdtWorkers < len(p.units) {
		pdtWorkers = len(p.units)
	}
	if err := forEach(ctx, pdtWorkers, len(p.units), func(i int) {
		pdts[i] = p.units[i].generatePDT(kws, filter)
	}); err != nil {
		return nil, nil, nil, err
	}
	for _, pd := range pdts {
		if pd == nil {
			continue
		}
		stats.PDTNodes += pd.Nodes
		stats.PDTBytes += pd.Bytes
	}
	cat := catalogOf(pdts)
	stats.PDTTime = time.Since(start)

	// Phase 3: the unchanged evaluator runs the view over the PDTs —
	// partitioned over the outer FLWOR bindings when a worker pool is
	// available.
	start = time.Now()
	results, err := e.evalView(ctx, v, cat, opts, stats.Workers)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.EvalTime = time.Since(start)
	stats.ViewResults = len(results)

	// Phase 4a: score from PDT payloads and select the top k.
	start = time.Now()
	ranking, err := e.rank(ctx, results, kws, opts, stats.Workers)
	if err != nil {
		return nil, nil, nil, err
	}
	stats.Matched = ranking.Matched
	stats.PostTime = time.Since(start)

	// Record artifacts for the next search over this view. The skeleton is
	// the eval output itself: its nodes never escape to callers (winners
	// are materialized into fresh trees below the lock), so sharing them
	// with future serves is safe. AccessDirect counts this search toward
	// promotion; the entry points materialize after the locks drop.
	if planGen >= 0 {
		e.Catalog.StoreSkeleton(v.Text, planGen, results, skeletonFootprint(results))
		stats.promotable = e.Catalog.AccessDirect(v.Text)
	}
	return ranking.Results, kws, stats, nil
}

// snippetWidth is the keyword-in-context excerpt width every
// materialization path cuts snippets at; a single definition keeps local
// and cluster materialization byte-identical.
const snippetWidth = 160

// materializeResult expands one ranked winner into a caller-facing Result
// (phase 4b). It needs no shard lock: subtree fetches resolve through the
// store's lock-free Dewey map. prebuilt marks winners served from a
// materialized view — already complete trees, so a clone replaces the
// base-data fetch (Clone preserves everything XMLString and Snippet read,
// keeping the output byte-identical to a fetched materialization).
func materializeResult(sc scoring.Scored, rank int, kws []string, opts Options, fetcher scoring.Fetcher, prebuilt bool) Result {
	elem := sc.Result
	snippet := ""
	if !opts.SkipMaterialize {
		if prebuilt {
			elem = sc.Result.Clone()
		} else {
			elem = scoring.Materialize(sc.Result, fetcher)
		}
		snippet = scoring.Snippet(elem, kws, snippetWidth)
	}
	return Result{Rank: rank, Score: sc.Score, TFs: sc.Stats.TFs, Element: elem, Snippet: snippet}
}

// selectionFilterNode decides whether a view is selection-shaped — every
// view result is exactly one base element — and if so returns the QPT node
// whose elements are the results. Shapes accepted: a FLWOR whose clauses
// bind paths over a single document and whose return is the (last) loop
// variable, or a bare (filtered) path expression. Exactly one QPT with
// exactly one 'c'-annotated node is required; anything else (joins across
// documents, constructors, nesting) is rejected as non-monotone.
func selectionFilterNode(v *View) *qpt.Node {
	if len(v.QPTs) != 1 {
		return nil
	}
	switch x := v.Expr.(type) {
	case *xq.FLWORExpr:
		rv, ok := x.Return.(*xq.VarExpr)
		if !ok || rv.Name != x.Clauses[len(x.Clauses)-1].Var {
			return nil
		}
	case *xq.StepExpr, *xq.FilterExpr:
		// bare path views return base elements directly
		_ = x
	default:
		return nil
	}
	var cnode *qpt.Node
	for _, n := range v.QPTs[0].Nodes() {
		if n.C {
			if cnode != nil {
				return nil // multiple output nodes: not a selection view
			}
			cnode = n
		}
	}
	return cnode
}

// NormalizeKeyword canonicalizes one query keyword the way every pipeline
// matches it. The definition lives in the catalog package (whose cache
// keys re-express TF maps through it), so keys and matching can never
// drift apart.
func NormalizeKeyword(k string) string { return catalog.NormalizeKeyword(k) }

func normalizeKeywords(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = NormalizeKeyword(k)
	}
	return out
}

func nodesOf(items []xqeval.Item) []*xmltree.Node {
	var nodes []*xmltree.Node
	for _, it := range items {
		if n, ok := it.(*xmltree.Node); ok {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// KeywordQuery is a Figure-2 style query split into its parts.
type KeywordQuery struct {
	ViewExpr    xq.Expr
	Funcs       map[string]*xq.FuncDecl
	Keywords    []string
	Conjunctive bool
}

// SplitKeywordQuery recognizes the keyword-search-over-view pattern of
// Figure 2 and splits it into the view definition and the keyword query:
//
//	let $view := <view expression>
//	for $r in $view
//	where $r ftcontains('k1' & 'k2')
//	return $r
//
// The variant without the let clause (for $r in (<view>) where ...) is also
// accepted.
func SplitKeywordQuery(q *xq.Query) (*KeywordQuery, error) {
	fl, ok := q.Body.(*xq.FLWORExpr)
	if !ok {
		return nil, fmt.Errorf("core: keyword query must be a FLWOR expression")
	}
	ft, ok := fl.Where.(*xq.FTContainsExpr)
	if !ok {
		return nil, fmt.Errorf("core: keyword query needs an ftcontains where-clause")
	}
	last := fl.Clauses[len(fl.Clauses)-1]
	if last.IsLet {
		return nil, fmt.Errorf("core: the final clause must iterate the view (for $r in $view)")
	}
	tv, ok := ft.Target.(*xq.VarExpr)
	if !ok || tv.Name != last.Var {
		return nil, fmt.Errorf("core: ftcontains must apply to the iteration variable $%s", last.Var)
	}
	rv, ok := fl.Return.(*xq.VarExpr)
	if !ok || rv.Name != last.Var {
		return nil, fmt.Errorf("core: the return clause must return the iteration variable $%s", last.Var)
	}
	viewExpr := last.In
	if v, ok := viewExpr.(*xq.VarExpr); ok {
		// resolve through the preceding let clauses
		resolved := false
		for _, cl := range fl.Clauses[:len(fl.Clauses)-1] {
			if cl.IsLet && cl.Var == v.Name {
				viewExpr = cl.In
				resolved = true
			}
		}
		if !resolved {
			return nil, fmt.Errorf("core: view variable $%s is not bound by a let clause", v.Name)
		}
	}
	return &KeywordQuery{
		ViewExpr:    viewExpr,
		Funcs:       q.Functions,
		Keywords:    ft.Keywords,
		Conjunctive: ft.Conjunctive,
	}, nil
}
