package core

// The query planner. A planned search (Options.Plan) consults the engine's
// catalog before running the PDT pipeline and serves from the strongest
// live artifact of its view:
//
//   - A materialized view answers from stored result trees and a token
//     index — no PDT generation, no evaluation, no base-data access.
//   - A skeleton (the view's pruned evaluation output) skips PDT
//     generation and evaluation and re-scores: skeletons are
//     keyword-independent, because each result's term frequencies are
//     re-derived from the inverted indices at serve time rather than read
//     from the (keyword-specific) stored Meta payloads. One skeleton
//     therefore rewrites ANY keyword query over its view — supersets,
//     disjoint sets, either semantics — not just the conjunctive-superset
//     case.
//
// Both tiers reproduce the direct pipeline's scoring inputs exactly — the
// same per-result Stats fed to the same RankWithStats — so planned answers
// are byte-identical to direct evaluation (ranks, scores, trees,
// snippets). Artifacts are generation-stamped and every serve happens
// under the search's shard read locks, where the corpus (and hence the
// generation) cannot change for the view's documents.
//
// A search that falls through to direct evaluation records the view's
// skeleton for the next query and counts toward promotion; when the
// catalog reports the view hot, the search materializes it inline after
// releasing its locks (single-flighted under promoteMu).

import (
	"context"
	"time"

	"vxml/internal/catalog"
	"vxml/internal/invindex"
	"vxml/internal/scoring"
	"vxml/internal/xmltree"
)

// planEligible reports whether this search may serve from or record
// catalog artifacts. SkipMaterialize hands internal (possibly shared)
// trees to the caller and KeywordPruning changes scoring statistics by
// design; both are benchmark/ablation modes the planner stays out of.
func planEligible(opts Options) bool {
	return opts.Plan && !opts.SkipMaterialize && !opts.KeywordPruning
}

// tryPlan attempts to answer the search from a live catalog artifact. It
// runs under the plan's shard read locks, so a live (current-generation)
// artifact stays live for the duration of the serve. ok = false means no
// artifact: fall through to direct evaluation.
func (e *Engine) tryPlan(ctx context.Context, v *View, p *plan, kws []string, opts Options, stats *Stats) ([]scoring.Scored, bool, error) {
	if mv, id, ok := e.Catalog.Materialized(v.Text); ok {
		start := time.Now()
		perKw := make([][]int, len(kws))
		for j, kw := range kws {
			perKw[j] = mv.TF(kw)
		}
		sts := make([]scoring.Stats, len(mv.Trees))
		for i := range sts {
			if err := ctxErr(ctx); err != nil {
				return nil, false, err
			}
			tfs := make([]int, len(kws))
			for j := range perKw {
				tfs[j] = perKw[j][i]
			}
			sts[i] = scoring.Stats{TFs: tfs, ByteLen: mv.ByteLens[i]}
		}
		ranking := scoring.RankWithStats(mv.Trees, sts, kws, !opts.Disjunctive, opts.K)
		stats.ViewResults = len(mv.Trees)
		stats.Matched = ranking.Matched
		stats.PostTime = time.Since(start)
		stats.PlanSource = catalog.PlanMaterialized
		stats.PlanView = id
		e.Catalog.AccessPlanned(v.Text, catalog.PlanMaterialized)
		return ranking.Results, true, nil
	}
	if sk, id, ok := e.Catalog.Skeleton(v.Text); ok {
		start := time.Now()
		lists := e.skeletonLists(p, kws)
		sts := make([]scoring.Stats, len(sk.Results))
		for i, res := range sk.Results {
			if err := ctxErr(ctx); err != nil {
				return nil, false, err
			}
			sts[i] = skeletonStats(res, len(kws), lists)
		}
		ranking := scoring.RankWithStats(sk.Results, sts, kws, !opts.Disjunctive, opts.K)
		stats.ViewResults = len(sk.Results)
		stats.Matched = ranking.Matched
		stats.PostTime = time.Since(start)
		stats.PlanSource = catalog.PlanRewritten
		stats.PlanView = id
		// Rewrite serves count toward promotion too: a view whose skeleton
		// keeps answering is the one worth materializing fully.
		stats.promotable = e.Catalog.AccessPlanned(v.Text, catalog.PlanRewritten)
		return ranking.Results, true, nil
	}
	return nil, false, nil
}

// skeletonLists resolves every candidate document's posting list for each
// keyword, keyed by document ID (skeleton Meta payloads name their source
// document through the leading Dewey component). Lookup on an absent
// keyword returns an empty list whose range sums are 0, so no nil checks
// are needed per keyword.
func (e *Engine) skeletonLists(p *plan, kws []string) map[int32][]*invindex.PostingList {
	lists := make(map[int32][]*invindex.PostingList, len(p.units))
	for _, u := range p.units {
		if u.iix == nil {
			continue
		}
		info, ok := e.Store.Info(u.name)
		if !ok {
			continue
		}
		pls := make([]*invindex.PostingList, len(kws))
		for j, kw := range kws {
			pls[j] = u.iix.Lookup(kw)
		}
		lists[info.DocID] = pls
	}
	return lists
}

// skeletonStats recomputes one skeleton result's scoring inputs for the
// incoming keywords, mirroring scoring.Collect(FromPDT)'s walk: each Meta
// node contributes its whole base subtree exactly once, constructed
// wrappers contribute nothing. The stored Meta.TFs were collected for
// whatever keywords built the skeleton, so they are ignored; each term
// frequency is re-derived as the posting list's Dewey-range sum — by
// construction the same value PDT generation would attach (the pdt
// property suite pins Meta.TFs == SubtreeTF over the base subtree).
func skeletonStats(result *xmltree.Node, nKws int, lists map[int32][]*invindex.PostingList) scoring.Stats {
	st := scoring.Stats{TFs: make([]int, nKws)}
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if n.Meta != nil {
			st.ByteLen += n.Meta.SrcLen
			if len(n.Meta.SrcID) > 0 {
				if pls := lists[n.Meta.SrcID[0]]; pls != nil {
					for j, pl := range pls {
						st.TFs[j] += pl.SubtreeTF(n.Meta.SrcID)
					}
				}
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(result)
	return st
}

// skeletonFootprint estimates the resident bytes of a skeleton forest for
// the catalog's artifact budget.
func skeletonFootprint(results []*xmltree.Node) int {
	total := 0
	for _, r := range results {
		r.Walk(func(n *xmltree.Node) {
			total += 64 + len(n.Tag) + len(n.Value) + 4*len(n.ID)
			if n.Meta != nil {
				total += 32 + 8*len(n.Meta.TFs)
			}
		})
	}
	return total
}

// maybePromote materializes the view inline when the search that just
// completed pushed it over the promotion threshold. It must run after
// rankedSearch has released its shard read locks (it re-enters the
// pipeline) but while the caller's store pin is held (materialization
// fetches base subtrees). promoteMu single-flights concurrent promotions;
// a loser re-checks under the lock and finds the artifact already live.
//
// The unranked evaluation (empty keyword set, K = 0) returns every view
// result in view order — all scores are 0 and ties break by view position
// — with exact FromPDT byte lengths in its Stats, so the stored artifact
// carries precisely the ByteLen a direct search would compute. The token
// histogram is built over the materialized trees with the same scoping as
// scoring.Collect(FromBase), which the Baseline-vs-Efficient equivalence
// suites pin equal to the PDT-derived statistics.
func (e *Engine) maybePromote(ctx context.Context, v *View, opts Options, stats *Stats) {
	if stats == nil || !stats.promotable || e.Catalog == nil {
		return
	}
	e.promoteMu.Lock()
	defer e.promoteMu.Unlock()
	if _, _, ok := e.Catalog.Materialized(v.Text); ok {
		return
	}
	gen := e.Catalog.Gen()
	ranked, _, _, err := e.rankedSearch(ctx, v, nil, Options{Parallelism: opts.Parallelism})
	if err != nil {
		return
	}
	mv := &catalog.MatView{
		Trees:    make([]*xmltree.Node, len(ranked)),
		ByteLens: make([]int, len(ranked)),
		Tokens:   map[string][]catalog.TokenCount{},
	}
	for i, sc := range ranked {
		if ctxErr(ctx) != nil {
			return
		}
		tree := scoring.Materialize(sc.Result, e.Store)
		mv.Trees[i] = tree
		mv.ByteLens[i] = sc.Stats.ByteLen
		counts := map[string]int{}
		treeTokens(tree, counts)
		for tok, c := range counts {
			mv.Tokens[tok] = append(mv.Tokens[tok], catalog.TokenCount{Index: i, TF: c})
		}
		mv.Bytes += treeFootprint(tree)
	}
	for tok, entries := range mv.Tokens {
		mv.Bytes += len(tok) + 16*len(entries)
	}
	// A mutation since gen was read makes the stamp stale and the store a
	// no-op — the artifact would describe a corpus that no longer exists.
	e.Catalog.StoreMaterialized(v.Text, gen, mv)
}

// treeTokens accumulates one materialized result's token histogram with
// the same scoping as scoring.Collect(FromBase): each topmost
// Dewey-ID-bearing subtree contributes every token it contains, wholesale;
// constructed wrapper elements contribute nothing.
func treeTokens(n *xmltree.Node, counts map[string]int) {
	if len(n.ID) > 0 {
		n.Walk(func(x *xmltree.Node) {
			if x.Value == "" {
				return
			}
			xmltree.VisitTokens(x.Value, func(tok string) bool { counts[tok]++; return true })
		})
		return
	}
	for _, c := range n.Children {
		treeTokens(c, counts)
	}
}

// treeFootprint estimates the resident bytes of one materialized tree for
// the artifact budget.
func treeFootprint(root *xmltree.Node) int {
	total := 0
	root.Walk(func(n *xmltree.Node) {
		total += 64 + len(n.Tag) + len(n.Value) + 4*len(n.ID)
	})
	return total
}

// PlanProbe predicts, without executing a search, how a planned search
// over v would be served right now: PlanMaterialized when a live
// materialized artifact exists, PlanRewritten for a live skeleton, else
// PlanDirect. The second return is the view's catalog ID ("" before first
// compile). The exact result cache is not consulted — whether it hits
// depends on the full option set, which the caller (the Database layer)
// checks itself.
func (e *Engine) PlanProbe(v *View) (source, viewID string) {
	if e.Catalog == nil {
		return catalog.PlanDirect, ""
	}
	if _, id, ok := e.Catalog.Materialized(v.Text); ok {
		return catalog.PlanMaterialized, id
	}
	if _, id, ok := e.Catalog.Skeleton(v.Text); ok {
		return catalog.PlanRewritten, id
	}
	return catalog.PlanDirect, e.Catalog.IDOf(v.Text)
}
