package core

import (
	"context"
	"iter"

	"vxml/internal/catalog"
)

// ResultsSeq evaluates the search and yields the ranked winners one at a
// time, extending the paper's deferred materialization to the delivery
// path: a winner's base subtree is fetched and its snippet cut only when
// the consumer pulls it, and a consumer that stops early (or a canceled
// ctx) never pays for the rest. offset skips that many leading winners
// without materializing them; Rank numbers keep their absolute position in
// the full ranking, so yielded results are byte-identical to the
// corresponding slice of a SearchContext call with the same options.
//
// The pipeline runs — and the shard read locks are held — inside the first
// resumption of the returned sequence, not inside ResultsSeq itself; the
// locks are released before the first yield. A pipeline failure or a ctx
// cancellation is delivered as the final (zero Result, non-nil error)
// pair. The sequence is single-use.
func (e *Engine) ResultsSeq(ctx context.Context, v *View, keywords []string, opts Options, offset int) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		// Pinned for the whole consumption: winners materialize lock-free
		// as the consumer pulls them, possibly long after planning, and the
		// pin keeps concurrently replaced or deleted documents' subtrees
		// resolvable until the sequence finishes.
		e.Store.Pin()
		defer e.Store.Unpin()
		ranked, kws, stats, err := e.rankedSearch(ctx, v, keywords, opts)
		if err != nil {
			yield(Result{}, err)
			return
		}
		e.maybePromote(ctx, v, opts, stats)
		prebuilt := stats.PlanSource == catalog.PlanMaterialized
		// The store is the fetcher directly: the sequence yields no Stats,
		// so there is no per-search fetch count to keep.
		for i := offset; i < len(ranked); i++ {
			if err := ctxErr(ctx); err != nil {
				yield(Result{}, err)
				return
			}
			if !yield(materializeResult(ranked[i], i+1, kws, opts, e.Store, prebuilt), nil) {
				return
			}
		}
	}
}
