package core

import (
	"strings"
	"testing"
)

// TestEmptyPDTForOneSource: when one source document yields no qualifying
// elements, the view still evaluates (the join side is simply empty).
func TestEmptyPDTForOneSource(t *testing.T) {
	e := emptyEngine()
	if err := e.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	// reviews exist but none has an isbn: mandatory edge empties the PDT
	if err := e.AddXML("reviews.xml",
		`<reviews><review><content>no isbn here xml</content></review></reviews>`); err != nil {
		t.Fatal(err)
	}
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := e.Search(v, []string{"xml"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Books with "xml" in their own content still match (title), with no
	// nested reviews.
	for _, r := range results {
		if strings.Contains(r.Element.XMLString(""), "<content>") {
			t.Errorf("orphan review leaked into %s", r.Element.XMLString(""))
		}
	}
	if stats.ViewResults == 0 {
		t.Error("view should still produce book records")
	}
}

// TestNoKeywordMatchesAnywhere: keywords absent from the corpus yield an
// empty result but a well-formed response.
func TestNoKeywordMatchesAnywhere(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := e.Search(v, []string{"zzzznope"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || stats.Matched != 0 {
		t.Errorf("expected no results, got %d", len(results))
	}
	if stats.SubtreeFetches != 0 {
		t.Error("no winners => no base-data access")
	}
}

// TestEmptyKeywordListReturnsAllViewResults: with no keywords every view
// result matches (vacuous conjunction), scored zero.
func TestEmptyKeywordList(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := e.Search(v, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != stats.ViewResults {
		t.Errorf("all view results should match: %d vs %d", len(results), stats.ViewResults)
	}
}

// TestSnippetOnResults: winners carry keyword-in-context excerpts.
func TestSnippetOnResults(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := e.Search(v, []string{"search"}, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(strings.ToLower(results[0].Snippet), "search") {
		t.Errorf("snippet = %q", results[0].Snippet)
	}
}

// TestRepeatedSearchesAreStable: the engine has no per-search state leaks.
func TestRepeatedSearchesAreStable(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 5; i++ {
		results, _, err := e.Search(v, []string{"xml", "search"}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, r := range results {
			b.WriteString(r.Element.XMLString(""))
		}
		if i == 0 {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("search %d returned different results", i)
		}
	}
}

// TestAddDocumentAfterView: documents added after view compilation are
// visible to subsequent searches through their indices.
func TestAddDocumentAfterCompile(t *testing.T) {
	e := engineWithBooks(t)
	v, err := e.CompileView(figure2View)
	if err != nil {
		t.Fatal(err)
	}
	before, _, err := e.Search(v, []string{"xml"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// adding an unrelated document must not disturb results
	if err := e.AddXML("extra.xml", `<extra><x>xml xml xml</x></extra>`); err != nil {
		t.Fatal(err)
	}
	after, _, err := e.Search(v, []string{"xml"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != len(after) {
		t.Errorf("unrelated document changed results: %d vs %d", len(before), len(after))
	}
}
