// Package benchkit builds the experimental workloads of the paper's §5 and
// runs the four competing pipelines over them. Every figure of the
// evaluation section has a runner here; cmd/benchrunner and the top-level
// benchmarks are thin wrappers around this package.
package benchkit

import (
	"fmt"
	"strings"
)

// Params is the experimental parameter space of Table 1. The paper's data
// unit is 100MB; ours is UnitBytes (default 1MB) so the sweeps keep the
// same shape at laptop scale.
type Params struct {
	// SizeUnits is the data size in units (Table 1: 1-5, default 5).
	SizeUnits int
	// UnitBytes is the byte size of one unit (the paper's 100MB).
	UnitBytes int
	// NumKeywords is the query keyword count (1-5, default 2).
	NumKeywords int
	// Selectivity is "low", "medium" or "high" (default medium).
	Selectivity string
	// NumJoins is the number of value joins in the view (0-4, default 1).
	NumJoins int
	// JoinPartitions controls join selectivity: 1=1X, 2=0.5X, 5=0.2X,
	// 10=0.1X (default 1).
	JoinPartitions int
	// Nesting is the FLWOR nesting level (1-4, default 2).
	Nesting int
	// TopK is K in top-K (default 10).
	TopK int
	// ElemSizeX scales the average view element size (1-5, default 1).
	ElemSizeX int
	// Seed drives deterministic data generation.
	Seed int64
}

// Default returns Table 1's default configuration (bold values), scaled to
// the default unit.
func Default() Params {
	return Params{
		SizeUnits:      5,
		UnitBytes:      1 << 20,
		NumKeywords:    2,
		Selectivity:    "medium",
		NumJoins:       1,
		JoinPartitions: 1,
		Nesting:        2,
		TopK:           10,
		ElemSizeX:      1,
		Seed:           42,
	}
}

// TargetBytes is the generated corpus size.
func (p Params) TargetBytes() int { return p.SizeUnits * p.UnitBytes }

// Keywords returns the query keyword set implied by the parameters.
func (p Params) Keywords() []string {
	switch strings.ToLower(p.Selectivity) {
	case "low":
		return clip(lowKeywords, p.NumKeywords)
	case "high":
		return clip(highKeywords, p.NumKeywords)
	default:
		return clip(mediumKeywords, p.NumKeywords)
	}
}

var (
	lowKeywords    = []string{"ieee", "computing", "system", "data", "model"}
	mediumKeywords = []string{"thomas", "control", "fuzzy", "neural", "parallel"}
	highKeywords   = []string{"moore", "burnett", "fuzzy", "neural", "parallel"}
)

func clip(words []string, n int) []string {
	if n <= 0 {
		n = 2
	}
	if n > len(words) {
		n = len(words)
	}
	return words[:n]
}

// ViewText builds the experiment's view definition from the nesting level
// and join count (§5.1: level 1 removes the value join and keeps only the
// selection predicate; level 2 associates publications with authors; deeper
// levels nest the shallower view one level down; extra joins extend the
// value-join chain over the auxiliary documents).
func (p Params) ViewText() string {
	if p.Nesting <= 1 || p.NumJoins == 0 {
		return `
for $a in fn:doc(inex.xml)/books//article
where $a/fm/yr > 1992
return <art>{$a/fm/tl}, {$a/bdy}</art>`
	}
	// innermost: the article loop joined to the author, with optional
	// topic (3rd) and venue (4th) joins nested inside.
	articleExtras := ""
	if p.NumJoins >= 3 {
		articleExtras += `,
      {for $t in fn:doc(topics.xml)/topics//topic
       where $t/tname = $a/fm/kwd
       return <top>{$t/desc}</top>}`
	}
	if p.NumJoins >= 4 {
		articleExtras += `,
      {for $v in fn:doc(venues.xml)/venues//venue
       where $v/vid = $a/vid
       return <ven>{$v/vname}</ven>}`
	}
	articleLoop := fmt.Sprintf(`{for $a in fn:doc(inex.xml)/books//article
     where $a/fm/au = $au/name
     return <art>{$a/fm/tl}, {$a/bdy}%s</art>}`, articleExtras)

	affilExtra := ""
	if p.NumJoins >= 2 && p.Nesting < 3 {
		affilExtra = `
  {for $f in fn:doc(affils.xml)/affils//affil
   where $f/affid = $au/affid
   return <inst>{$f/instname}</inst>},`
	}
	authorView := fmt.Sprintf(`for $au in fn:doc(authors.xml)/authors//author
return <arec>
  <aname>{$au/name}</aname>,%s
  %s
</arec>`, affilExtra, articleLoop)
	if p.Nesting == 2 {
		return authorView
	}

	// nesting 3: affiliations on top of the author view.
	authorLoop := fmt.Sprintf(`{for $au in fn:doc(authors.xml)/authors//author
   where $au/affid = $f/affid
   return <arec><aname>{$au/name}</aname>, %s</arec>}`, articleLoop)
	affilView := fmt.Sprintf(`for $f in fn:doc(affils.xml)/affils//affil
return <frec><inst>{$f/instname}</inst>, %s</frec>`, authorLoop)
	if p.Nesting == 3 {
		return affilView
	}

	// nesting 4: countries on top of the affiliation view.
	affilLoop := fmt.Sprintf(`{for $f in fn:doc(affils.xml)/affils//affil
   where $f/country = $c/cname
   return <frec><inst>{$f/instname}</inst>, %s</frec>}`, authorLoop)
	return fmt.Sprintf(`for $c in fn:doc(countries.xml)/countries//country
return <crec><cn>{$c/cname}</cn>, %s</crec>`, affilLoop)
}
