package benchkit

import (
	"strings"
	"testing"

	"vxml/internal/xq"
)

func TestDefaultMatchesTable1(t *testing.T) {
	p := Default()
	if p.SizeUnits != 5 || p.NumKeywords != 2 || p.Selectivity != "medium" ||
		p.NumJoins != 1 || p.JoinPartitions != 1 || p.Nesting != 2 ||
		p.TopK != 10 || p.ElemSizeX != 1 {
		t.Errorf("defaults diverge from Table 1: %+v", p)
	}
}

func TestKeywordsPerSelectivity(t *testing.T) {
	p := Default()
	cases := map[string]string{"low": "ieee", "medium": "thomas", "high": "moore"}
	for sel, first := range cases {
		p.Selectivity = sel
		kws := p.Keywords()
		if len(kws) != 2 || kws[0] != first {
			t.Errorf("%s keywords = %v", sel, kws)
		}
	}
	p.Selectivity = "medium"
	for n := 1; n <= 5; n++ {
		p.NumKeywords = n
		if got := len(p.Keywords()); got != n {
			t.Errorf("NumKeywords=%d -> %d keywords", n, got)
		}
	}
}

// TestViewTextsParseAndAnalyze: every parameter combination must yield a
// view that parses and produces QPTs for the right documents.
func TestViewTextsParseAndAnalyze(t *testing.T) {
	for joins := 0; joins <= 4; joins++ {
		for nesting := 1; nesting <= 4; nesting++ {
			p := Default()
			p.NumJoins = joins
			p.Nesting = nesting
			text := p.ViewText()
			q, err := xq.Parse(text)
			if err != nil {
				t.Fatalf("joins=%d nesting=%d: parse: %v\n%s", joins, nesting, err, text)
			}
			_ = q
		}
	}
}

func TestViewTextJoinChain(t *testing.T) {
	p := Default()
	p.NumJoins = 4
	text := p.ViewText()
	for _, doc := range []string{"inex.xml", "authors.xml", "topics.xml", "venues.xml"} {
		if !strings.Contains(text, doc) {
			t.Errorf("joins=4 view missing %s:\n%s", doc, text)
		}
	}
	p.NumJoins = 0
	text = p.ViewText()
	if strings.Contains(text, "authors.xml") {
		t.Errorf("joins=0 view should be selection-only:\n%s", text)
	}
}

func TestViewTextNesting(t *testing.T) {
	p := Default()
	p.Nesting = 4
	text := p.ViewText()
	for _, doc := range []string{"countries.xml", "affils.xml", "authors.xml", "inex.xml"} {
		if !strings.Contains(text, doc) {
			t.Errorf("nesting=4 view missing %s", doc)
		}
	}
}

func TestBuildWorkload(t *testing.T) {
	p := smallParams(1)
	w, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.View.QPTs) < 2 {
		t.Errorf("QPTs = %d (expected inex + authors)", len(w.View.QPTs))
	}
	if w.Engine.Store.TotalBytes() == 0 {
		t.Error("empty corpus")
	}
	stats, err := w.RunEfficient()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ViewResults == 0 {
		t.Error("view produced no results")
	}
	if d, nodes := w.RunProj(); d <= 0 || nodes == 0 {
		t.Errorf("proj: %v, %d nodes", d, nodes)
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		Title:   "T",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"xxxxx", "y"}},
	}
	out := table.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "a    ") {
		t.Errorf("header misaligned: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "xxxxx") {
		t.Errorf("row misaligned: %q", lines[2])
	}
}

func TestParamsTable(t *testing.T) {
	out := ParamsTable().Render()
	for _, want := range []string{"# keywords", "Join selectivity", "FIVE"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

// TestFigureRunnersSmall smoke-tests every figure runner at tiny scale.
func TestFigureRunnersSmall(t *testing.T) {
	old := Runs
	Runs = 1
	defer func() { Runs = old }()
	base := Default()
	base.UnitBytes = 8 << 10
	base.SizeUnits = 1

	if tab, err := Fig13(base, []int{1}); err != nil || len(tab.Rows) != 1 {
		t.Errorf("Fig13: %v", err)
	}
	if tab, err := Fig14(base, []int{1}); err != nil || len(tab.Rows) != 1 {
		t.Errorf("Fig14: %v", err)
	}
	for name, run := range map[string]func(Params) (*Table, error){
		"Fig15": Fig15, "Fig16": Fig16, "Fig17": Fig17,
		"Fig18": Fig18, "Fig19": Fig19, "Fig20": Fig20, "Fig21": Fig21,
	} {
		tab, err := run(base)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
	}
}
