package benchkit

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"vxml/internal/baseline"
	"vxml/internal/core"
	"vxml/internal/gtp"
	"vxml/internal/inex"
	"vxml/internal/store"
)

// smallParams keeps the corpora tiny so equivalence tests stay fast.
func smallParams(seed int64) Params {
	p := Default()
	p.UnitBytes = 16 << 10
	p.SizeUnits = 2
	p.Seed = seed
	return p
}

// renderResults fingerprints a ranked result list: rank, score and the
// materialized XML of every result.
func renderResults(results []core.Result) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "#%d %.9f\n%s\n", r.Rank, r.Score, r.Element.XMLString(""))
	}
	return b.String()
}

// TestTheorem41EfficientEqualsBaseline is the paper's headline correctness
// claim: searching the virtual view through PDTs yields exactly the same
// results, scores and rank order as materializing the view.
func TestTheorem41EfficientEqualsBaseline(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		w, err := Build(smallParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{K: 0} // all matches, full materialization
		eff, _, err := w.Engine.Search(w.View, w.Keywords, opts)
		if err != nil {
			t.Fatalf("seed %d: efficient: %v", seed, err)
		}
		base, _, err := baseline.Search(w.Engine, w.View, w.Keywords, opts)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		if len(eff) != len(base) {
			t.Fatalf("seed %d: efficient %d results, baseline %d", seed, len(eff), len(base))
		}
		for i := range eff {
			if math.Abs(eff[i].Score-base[i].Score) > 1e-9 {
				t.Errorf("seed %d: score[%d] %f vs %f", seed, i, eff[i].Score, base[i].Score)
			}
			for j := range eff[i].TFs {
				if eff[i].TFs[j] != base[i].TFs[j] {
					t.Errorf("seed %d: tf[%d][%d] %d vs %d", seed, i, j, eff[i].TFs[j], base[i].TFs[j])
				}
			}
		}
		if a, b := renderResults(eff), renderResults(base); a != b {
			t.Errorf("seed %d: materialized results differ:\n%s\n-- vs --\n%s", seed, head(a), head(b))
		}
	}
}

// TestGTPEqualsEfficient: the GTP comparator derives the same pruned trees
// by structural joins, so its ranked output must match exactly.
func TestGTPEqualsEfficient(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		w, err := Build(smallParams(seed))
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{K: 0}
		eff, _, err := w.Engine.Search(w.View, w.Keywords, opts)
		if err != nil {
			t.Fatal(err)
		}
		g, gstats, err := gtp.Search(w.Engine, w.View, w.Keywords, opts)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := renderResults(eff), renderResults(g); a != b {
			t.Errorf("seed %d: GTP results differ:\n%s\n-- vs --\n%s", seed, head(a), head(b))
		}
		if gstats.TagListEntries == 0 {
			t.Error("GTP should scan tag lists")
		}
		if gstats.BaseValueFetches == 0 {
			t.Error("GTP should access base data for values")
		}
	}
}

// TestEquivalenceAcrossViewShapes exercises joins 0-4 and nesting 1-4.
func TestEquivalenceAcrossViewShapes(t *testing.T) {
	for joins := 0; joins <= 4; joins++ {
		p := smallParams(7)
		p.NumJoins = joins
		w, err := Build(p)
		if err != nil {
			t.Fatalf("joins=%d: %v", joins, err)
		}
		checkEquivalence(t, w, fmt.Sprintf("joins=%d", joins))
	}
	for nesting := 1; nesting <= 4; nesting++ {
		p := smallParams(9)
		p.Nesting = nesting
		w, err := Build(p)
		if err != nil {
			t.Fatalf("nesting=%d: %v", nesting, err)
		}
		checkEquivalence(t, w, fmt.Sprintf("nesting=%d", nesting))
	}
}

func checkEquivalence(t *testing.T, w *Workload, label string) {
	t.Helper()
	opts := core.Options{K: 0}
	eff, _, err := w.Engine.Search(w.View, w.Keywords, opts)
	if err != nil {
		t.Fatalf("%s: efficient: %v", label, err)
	}
	base, _, err := baseline.Search(w.Engine, w.View, w.Keywords, opts)
	if err != nil {
		t.Fatalf("%s: baseline: %v", label, err)
	}
	if a, b := renderResults(eff), renderResults(base); a != b {
		t.Errorf("%s: efficient != baseline\n%s\n-- vs --\n%s", label, head(a), head(b))
	}
}

// TestEquivalenceDisjunctive checks the disjunctive semantics path.
func TestEquivalenceDisjunctive(t *testing.T) {
	w, err := Build(smallParams(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{K: 0, Disjunctive: true}
	eff, _, err := w.Engine.Search(w.View, w.Keywords, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := baseline.Search(w.Engine, w.View, w.Keywords, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderResults(eff), renderResults(base); a != b {
		t.Errorf("disjunctive: efficient != baseline\n%s\n-- vs --\n%s", head(a), head(b))
	}
	if len(eff) == 0 {
		t.Error("disjunctive query matched nothing; generator markers missing?")
	}
}

// TestBooksReviewsEquivalence uses the paper's running-example generator.
func TestBooksReviewsEquivalence(t *testing.T) {
	booksXML, reviewsXML := inex.GenerateBooksReviews(60, 11)
	st := store.New()
	if _, err := st.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	e := core.New(st)
	v, err := e.CompileView(`
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book> {$book/title} </book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`)
	if err != nil {
		t.Fatal(err)
	}
	for _, kws := range [][]string{{"data"}, {"system", "data"}, {"moore"}} {
		opts := core.Options{K: 0}
		eff, _, err := e.Search(v, kws, opts)
		if err != nil {
			t.Fatal(err)
		}
		base, _, err := baseline.Search(e, v, kws, opts)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := gtp.Search(e, v, kws, opts)
		if err != nil {
			t.Fatal(err)
		}
		a, b, c := renderResults(eff), renderResults(base), renderResults(g)
		if a != b || a != c {
			t.Errorf("keywords %v: pipelines disagree (eff=%d base=%d gtp=%d chars)",
				kws, len(a), len(b), len(c))
		}
	}
}

func head(s string) string {
	if len(s) > 1200 {
		return s[:1200] + "..."
	}
	return s
}
