package benchkit

// Disk-backend scenarios: cold_start measures what the disk store exists
// for — opening a persisted corpus without re-parsing or re-indexing it —
// and dag_dedup measures what the DAG encoding exists for — structurally
// repeated subtrees stored once. Both run against the same collection
// corpus shape as the other post-paper scenarios, so the numbers compose.

import (
	"fmt"
	"math/rand"
	"os"

	"vxml"
)

// runColdStart saves one collection corpus in both persistence formats and
// measures open + first ranked search for each: the heap path (Load:
// re-parse every document, rebuild every index) versus the disk path
// (OpenDisk: fold the manifest, page in what the search touches).
func runColdStart(cfg Config) (*Scenario, error) {
	db, _, kws, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	plainDir, err := os.MkdirTemp("", "vxmlbench-plain-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(plainDir)
	diskDir, err := os.MkdirTemp("", "vxmlbench-disk-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(diskDir)
	if err := db.Save(plainDir); err != nil {
		return nil, err
	}
	if err := db.SaveDisk(diskDir); err != nil {
		return nil, err
	}

	searchOpened := func(d *vxml.Database) {
		v, err := d.DefineView(CollectionView)
		if err != nil {
			panic(err)
		}
		if _, _, err := d.Search(v, kws, &vxml.Options{TopK: 10}); err != nil {
			panic(err)
		}
	}
	heapOpenOnly := Measure(cfg.Profile.Budget, func() {
		if _, err := vxml.Load(plainDir); err != nil {
			panic(err)
		}
	})
	heapFull := Measure(cfg.Profile.Budget, func() {
		d, err := vxml.Load(plainDir)
		if err != nil {
			panic(err)
		}
		searchOpened(d)
	})
	diskOpenOnly := Measure(cfg.Profile.Budget, func() {
		d, err := vxml.OpenDisk(diskDir)
		if err != nil {
			panic(err)
		}
		d.Close()
	})
	diskFull := Measure(cfg.Profile.Budget, func() {
		d, err := vxml.OpenDisk(diskDir)
		if err != nil {
			panic(err)
		}
		searchOpened(d)
		d.Close()
	})

	s := &Scenario{}
	s.Rows = append(s.Rows, Row{Label: "heap_load_first_search", Measurement: heapFull, Extra: map[string]float64{
		"open_only_ns": heapOpenOnly.NsPerOp,
	}})
	s.Rows = append(s.Rows, Row{Label: "disk_open_first_search", Measurement: diskFull, Extra: map[string]float64{
		"open_only_ns": diskOpenOnly.NsPerOp,
		// The acceptance ratio: manifest fold vs full rebuild, search cost
		// excluded from both sides.
		"open_fraction_of_rebuild": diskOpenOnly.NsPerOp / heapOpenOnly.NsPerOp,
		"speedup_vs_heap":          heapFull.NsPerOp / diskFull.NsPerOp,
	}})
	return s, nil
}

// runDAGDedup builds a high-repetition part-* corpus (every document body
// drawn from a small pool of distinct trees, the shape of versioned or
// templated corpora), saves it to the disk store, and reports the on-disk
// data-log size against the uncompressed serialized corpus size — the
// structure-sharing win — next to an all-distinct control corpus.
func runDAGDedup(cfg Config) (*Scenario, error) {
	docs := cfg.Profile.CollectionDocs
	if docs < 12 {
		docs = 12
	}
	s := &Scenario{}
	for _, variant := range []struct {
		label    string
		distinct int
	}{
		{"high_repetition", 4},
		{"all_distinct", 0}, // 0: every document unique
	} {
		db := vxml.Open()
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		var pool []string
		for d := 0; d < docs; d++ {
			var content string
			if variant.distinct > 0 {
				if len(pool) < variant.distinct {
					pool = append(pool, partXML(rng, len(pool), 8, 0))
				}
				content = pool[d%variant.distinct]
			} else {
				content = partXML(rng, d, 8, 0)
			}
			if err := db.Add(fmt.Sprintf("part-%03d.xml", d), content); err != nil {
				return nil, err
			}
		}
		dir, err := os.MkdirTemp("", "vxmlbench-dedup-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		// The row's measurement is the SaveDisk cost itself (DAG encode +
		// index persist + fsync); each run supersedes the previous save.
		save := Measure(cfg.Profile.Budget, func() {
			if err := db.SaveDisk(dir); err != nil {
				panic(err)
			}
		})
		opened, err := vxml.OpenDisk(dir)
		if err != nil {
			return nil, err
		}
		stats, ok := opened.DiskStats()
		opened.Close()
		if !ok {
			return nil, fmt.Errorf("benchkit: disk stats unavailable after OpenDisk")
		}
		s.Rows = append(s.Rows, Row{Label: variant.label, Measurement: save, Extra: map[string]float64{
			"documents":          float64(stats.Documents),
			"uncompressed_bytes": float64(stats.TotalBytes),
			"data_bytes":         float64(stats.DataBytes),
			// The acceptance ratio: on-disk footprint as a fraction of the
			// uncompressed serialization (indices included in the numerator,
			// which only makes the win harder to show).
			"compression_ratio": float64(stats.DataBytes) / float64(stats.TotalBytes),
		}})
	}
	return s, nil
}
