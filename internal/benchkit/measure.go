package benchkit

import (
	"runtime"
	"time"
)

// Measurement is the result of one timed measurement loop: the paper-style
// ns/op plus the allocation counters that make optimization work provable.
type Measurement struct {
	// Iters is the number of times the function ran inside the budget.
	Iters int `json:"iters"`
	// NsPerOp is the mean wall-clock nanoseconds per run.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp is the mean heap allocations per run, from the runtime's
	// cumulative Mallocs counter. Process-global: concurrent scenarios
	// attribute every goroutine's allocations to the measured op, which is
	// the per-query cost a capacity planner wants anyway.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// BytesPerOp is the mean heap bytes allocated per run (TotalAlloc).
	BytesPerOp float64 `json:"bytes_per_op"`
}

// Measure runs fn repeatedly for at least budget (and at least once),
// returning timing and allocation means. One untimed warm-up run populates
// caches (worker pools, interners, lazily built layouts) so steady-state
// cost is what gets reported — the same convention as testing.B.
func Measure(budget time.Duration, fn func()) Measurement {
	fn() // warm-up, untimed
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	iters := 0
	for {
		fn()
		iters++
		if time.Since(start) >= budget {
			break
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return Measurement{
		Iters:       iters,
		NsPerOp:     float64(elapsed.Nanoseconds()) / n,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / n,
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / n,
	}
}
