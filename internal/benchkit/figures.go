package benchkit

import (
	"fmt"
	"strings"
	"time"

	"vxml/internal/core"
)

// Table is a rendered experiment result: one row per x-axis point.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// Runs is how many times each configuration is executed; runners report
// the fastest run (benchmark convention, suppresses GC noise).
var Runs = 3

// minEfficient runs the Efficient pipeline Runs times and returns the
// stats of the fastest run.
func minEfficient(w *Workload) (*core.Stats, error) {
	var best *core.Stats
	for i := 0; i < Runs; i++ {
		s, err := w.RunEfficient()
		if err != nil {
			return nil, err
		}
		if best == nil || s.Total() < best.Total() {
			best = s
		}
	}
	return best, nil
}

func minDuration(run func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < Runs; i++ {
		d, err := run()
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Fig13 reproduces Figure 13: total run time of the four approaches while
// varying the data size.
func Fig13(base Params, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 2, 3, 4, 5}
	}
	t := &Table{
		Title:   "Figure 13: run time (s) vs data size — Baseline / GTP / Proj / Efficient",
		Columns: []string{"size(units)", "Baseline", "GTP", "Proj", "Efficient"},
	}
	for _, size := range sizes {
		p := base
		p.SizeUnits = size
		w, err := Build(p)
		if err != nil {
			return nil, err
		}
		baseTime, err := minDuration(func() (time.Duration, error) {
			s, err := w.RunBaseline()
			if err != nil {
				return 0, err
			}
			return s.Total(), nil
		})
		if err != nil {
			return nil, err
		}
		gtpTime, err := minDuration(func() (time.Duration, error) {
			s, err := w.RunGTP()
			if err != nil {
				return 0, err
			}
			return s.Total(), nil
		})
		if err != nil {
			return nil, err
		}
		projTime, err := minDuration(func() (time.Duration, error) {
			d, _ := w.RunProj()
			return d, nil
		})
		if err != nil {
			return nil, err
		}
		es, err := minEfficient(w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", size),
			secs(baseTime), secs(gtpTime), secs(projTime), secs(es.Total()),
		})
	}
	return t, nil
}

// breakdownRow runs Efficient once and reports the Figure 14 module split.
func breakdownRow(p Params, label string) ([]string, error) {
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	s, err := minEfficient(w)
	if err != nil {
		return nil, err
	}
	return []string{label, secs(s.PDTTime), secs(s.EvalTime), secs(s.PostTime), secs(s.Total())}, nil
}

var breakdownColumns = []string{"x", "PDT", "Evaluator", "Post-processing", "Total"}

func breakdownTable(title, xLabel string) *Table {
	cols := append([]string{}, breakdownColumns...)
	cols[0] = xLabel
	return &Table{Title: title, Columns: cols}
}

// Fig14 reproduces Figure 14: Efficient's per-module cost vs data size.
func Fig14(base Params, sizes []int) (*Table, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 2, 3, 4, 5}
	}
	t := breakdownTable("Figure 14: Efficient module breakdown (s) vs data size", "size(units)")
	for _, size := range sizes {
		p := base
		p.SizeUnits = size
		row, err := breakdownRow(p, fmt.Sprintf("%d", size))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig15 reproduces Figure 15: varying the number of keywords (1-5).
func Fig15(base Params) (*Table, error) {
	t := breakdownTable("Figure 15: Efficient module breakdown (s) vs #keywords", "#keywords")
	for n := 1; n <= 5; n++ {
		p := base
		p.NumKeywords = n
		row, err := breakdownRow(p, fmt.Sprintf("%d", n))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig16 reproduces Figure 16: varying keyword selectivity.
func Fig16(base Params) (*Table, error) {
	t := breakdownTable("Figure 16: Efficient module breakdown (s) vs keyword selectivity", "selectivity")
	for _, sel := range []string{"low", "medium", "high"} {
		p := base
		p.Selectivity = sel
		row, err := breakdownRow(p, sel)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig17 reproduces Figure 17: varying the number of value joins (0-4).
func Fig17(base Params) (*Table, error) {
	t := breakdownTable("Figure 17: Efficient module breakdown (s) vs #joins", "#joins")
	for joins := 0; joins <= 4; joins++ {
		p := base
		p.NumJoins = joins
		row, err := breakdownRow(p, fmt.Sprintf("%d", joins))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig18 reproduces Figure 18: varying join selectivity (0.1X-1X).
func Fig18(base Params) (*Table, error) {
	t := breakdownTable("Figure 18: Efficient module breakdown (s) vs join selectivity", "selectivity")
	for _, pt := range []struct {
		label      string
		partitions int
	}{{"0.1X", 10}, {"0.2X", 5}, {"0.5X", 2}, {"1X", 1}} {
		p := base
		p.JoinPartitions = pt.partitions
		row, err := breakdownRow(p, pt.label)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig19 reproduces Figure 19: varying the level of nesting (1-4).
func Fig19(base Params) (*Table, error) {
	t := breakdownTable("Figure 19: Efficient module breakdown (s) vs nesting level", "nesting")
	for level := 1; level <= 4; level++ {
		p := base
		p.Nesting = level
		row, err := breakdownRow(p, fmt.Sprintf("%d", level))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig20 reproduces Figure 20: varying K in top-K.
func Fig20(base Params) (*Table, error) {
	t := breakdownTable("Figure 20: Efficient module breakdown (s) vs #results (top-K)", "K")
	for _, k := range []int{1, 10, 20, 30, 40} {
		p := base
		p.TopK = k
		row, err := breakdownRow(p, fmt.Sprintf("%d", k))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig21 reproduces the "other results" of §5.2.3: view element size sweep
// and the PDT-size-vs-data-size observation (the paper reports ~2MB of
// PDTs from 500MB of data).
func Fig21(base Params) (*Table, error) {
	t := &Table{
		Title:   "Figure 21 (§5.2.3 other results): element size sweep and PDT size",
		Columns: []string{"elem-size", "Efficient(s)", "PDT nodes", "PDT bytes", "data bytes"},
	}
	for x := 1; x <= 5; x++ {
		p := base
		p.ElemSizeX = x
		w, err := Build(p)
		if err != nil {
			return nil, err
		}
		s, err := minEfficient(w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dX", x), secs(s.Total()),
			fmt.Sprintf("%d", s.PDTNodes), fmt.Sprintf("%d", s.PDTBytes),
			fmt.Sprintf("%d", w.Engine.Store.TotalBytes()),
		})
	}
	return t, nil
}

// ParamsTable renders Table 1.
func ParamsTable() *Table {
	return &Table{
		Title:   "Table 1: experimental parameters (defaults in CAPS)",
		Columns: []string{"parameter", "values"},
		Rows: [][]string{
			{"Size of data (units)", "1, 2, 3, 4, FIVE"},
			{"# keywords", "1, TWO, 3, 4, 5"},
			{"Selectivity of keywords", "low(ieee,computing), MEDIUM(thomas,control), high(moore,burnett)"},
			{"# of joins", "0, ONE, 2, 3, 4"},
			{"Join selectivity", "1X(default), 0.5X, 0.2X, 0.1X"},
			{"Level of nestings", "1, TWO, 3, 4"},
			{"# of results (K)", "1, TEN, 20, 30, 40"},
			{"Avg. size of view element", "1X(default), 2X, 3X, 4X, 5X"},
		},
	}
}
