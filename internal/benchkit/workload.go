package benchkit

import (
	"fmt"
	"time"

	"vxml/internal/baseline"
	"vxml/internal/core"
	"vxml/internal/gtp"
	"vxml/internal/inex"
	"vxml/internal/proj"
	"vxml/internal/store"
)

// Workload is a generated corpus, its indexes, and a compiled view.
type Workload struct {
	Params   Params
	Engine   *core.Engine
	View     *core.View
	Keywords []string
	Corpus   *inex.Corpus
}

// Build generates the corpus for p, loads and indexes it, and compiles the
// experiment view.
func Build(p Params) (*Workload, error) {
	corpus := inex.Generate(inex.Options{
		TargetBytes: p.TargetBytes(),
		Seed:        p.Seed,
		Partitions:  p.JoinPartitions,
		ElemSizeX:   p.ElemSizeX,
	})
	st := store.New()
	for _, doc := range corpus.Docs() {
		st.AddParsed(doc)
	}
	engine := core.New(st)
	view, err := engine.CompileView(p.ViewText())
	if err != nil {
		return nil, fmt.Errorf("benchkit: compiling view: %w", err)
	}
	return &Workload{
		Params:   p,
		Engine:   engine,
		View:     view,
		Keywords: p.Keywords(),
		Corpus:   corpus,
	}, nil
}

// options maps the workload parameters to search options.
func (w *Workload) options() core.Options {
	return core.Options{K: w.Params.TopK}
}

// RunEfficient executes the paper's Efficient pipeline once.
func (w *Workload) RunEfficient() (*core.Stats, error) {
	_, stats, err := w.Engine.Search(w.View, w.Keywords, w.options())
	return stats, err
}

// RunBaseline executes the materialize-then-search Baseline once.
func (w *Workload) RunBaseline() (*baseline.Stats, error) {
	_, stats, err := baseline.Search(w.Engine, w.View, w.Keywords, w.options())
	return stats, err
}

// RunGTP executes the GTP+TermJoin comparator once.
func (w *Workload) RunGTP() (*gtp.Stats, error) {
	_, stats, err := gtp.Search(w.Engine, w.View, w.Keywords, w.options())
	return stats, err
}

// RunProj times document projection (the paper reports only projection
// cost for Proj).
func (w *Workload) RunProj() (time.Duration, int) {
	start := time.Now()
	nodes := 0
	for _, q := range w.View.QPTs {
		doc := w.Engine.Store.Doc(q.Doc)
		if doc == nil {
			continue
		}
		nodes += proj.Size(proj.Project(doc, q))
	}
	return time.Since(start), nodes
}
