package benchkit

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vxml/internal/xmltree"
)

// tinyConfig is the smallest viable run, for tests.
func tinyConfig() Config {
	p, err := ProfileByName("tiny")
	if err != nil {
		panic(err)
	}
	p.Budget = 5 * time.Millisecond
	p.CollectionDocs = 6
	return Config{Profile: p, Seed: 42}
}

// TestReportRoundTrip runs a pair of cheap scenarios end to end, writes the
// report and validates it — the same gate CI applies to the artifact.
func TestReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement loops are slow in -short mode")
	}
	cfg := tinyConfig()
	report, err := RunReport(cfg, []string{"cache_hit_miss", "hot_paths"})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(report.Scenarios))
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := report.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestValidateRejectsBadReports pins the validator's failure modes.
func TestValidateRejectsBadReports(t *testing.T) {
	cases := map[string]string{
		"not json":        `{`,
		"wrong schema":    `{"schema":"other/9","profile":"tiny","seed":1,"generated_by":"x","host":{"go_version":"go","goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1},"scenarios":[{"name":"a","description":"d","rows":[{"label":"l","iters":1,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}]}`,
		"unknown field":   `{"schema":"vxmlbench/1","bogus":true,"profile":"tiny","seed":1,"generated_by":"x","host":{"go_version":"go","goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1},"scenarios":[{"name":"a","description":"d","rows":[{"label":"l","iters":1,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}]}`,
		"no scenarios":    `{"schema":"vxmlbench/1","profile":"tiny","seed":1,"generated_by":"x","host":{"go_version":"go","goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1},"scenarios":[]}`,
		"empty host":      `{"schema":"vxmlbench/1","profile":"tiny","seed":1,"generated_by":"x","host":{"go_version":"","goos":"","goarch":"","num_cpu":0,"gomaxprocs":0},"scenarios":[{"name":"a","description":"d","rows":[{"label":"l","iters":1,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}]}`,
		"zero iters":      `{"schema":"vxmlbench/1","profile":"tiny","seed":1,"generated_by":"x","host":{"go_version":"go","goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1},"scenarios":[{"name":"a","description":"d","rows":[{"label":"l","iters":0,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}]}`,
		"duplicate names": `{"schema":"vxmlbench/1","profile":"tiny","seed":1,"generated_by":"x","host":{"go_version":"go","goos":"linux","goarch":"amd64","num_cpu":1,"gomaxprocs":1},"scenarios":[{"name":"a","description":"d","rows":[{"label":"l","iters":1,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]},{"name":"a","description":"d","rows":[{"label":"l","iters":1,"ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}]}`,
	}
	for name, data := range cases {
		if err := Validate([]byte(data)); err == nil {
			t.Errorf("Validate accepted case %q", name)
		}
	}
}

// TestRunReportUnknownScenario pins the error for a bad -scenarios value.
func TestRunReportUnknownScenario(t *testing.T) {
	_, err := RunReport(tinyConfig(), []string{"no_such_scenario"})
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v, want unknown scenario", err)
	}
}

// TestScenarioCatalogIsWellFormed: stable names, no duplicates, figures
// 13-21 all present — the mapping docs/BENCHMARKS.md documents.
func TestScenarioCatalogIsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	figures := map[string]bool{}
	for _, def := range ScenarioCatalog() {
		if def.Name == "" || def.Description == "" || def.Run == nil {
			t.Fatalf("malformed scenario def %+v", def)
		}
		if seen[def.Name] {
			t.Fatalf("duplicate scenario %q", def.Name)
		}
		seen[def.Name] = true
		if def.Figure != "" {
			figures[def.Figure] = true
		}
	}
	for fig := 13; fig <= 21; fig++ {
		if !figures[itoa(fig)] {
			t.Errorf("no scenario maps to paper figure %d", fig)
		}
	}
	for _, name := range []string{"parallelism_sweep", "concurrent_throughput", "mutation_mix", "cache_hit_miss", "streaming_early_break", "hot_paths"} {
		if !seen[name] {
			t.Errorf("missing scenario %q", name)
		}
	}
}

func itoa(n int) string { return string(rune('0'+n/10)) + string(rune('0'+n%10)) }

// TestHotPathReferencesMatchOptimized is the equivalence oracle for the
// hot_paths scenario: the reference (pre-optimization) implementations must
// produce exactly the optimized paths' results, or the before/after
// comparison would be comparing different computations.
func TestHotPathReferencesMatchOptimized(t *testing.T) {
	cfg := tinyConfig()
	p := baseParams(cfg)
	p.SizeUnits = 1
	w, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	doc := w.Corpus.INEX
	kws := []string{"thomas", "control", "İstanbul"} // incl. a non-ASCII keyword

	if got, want := xmltree.SubtreeTF(doc.Root, kws), referenceSubtreeTF(doc.Root, kws); !reflect.DeepEqual(got, want) {
		t.Errorf("SubtreeTF = %v, reference = %v", got, want)
	}

	sample := doc.Root.Children[0]
	if got, want := sample.Clone().XMLString(" "), referenceClone(sample).XMLString(" "); got != want {
		t.Error("Clone diverges from reference clone")
	}

	w.Engine.RLock()
	iix := w.Engine.InvIndex(doc.Name)
	w.Engine.RUnlock()
	pl := iix.Lookup("thomas")
	for _, n := range doc.Root.Children {
		refLo, refHi := referenceRangeProbe(pl.Postings, n.ID)
		refTF := 0
		for i := refLo; i < refHi; i++ {
			refTF += pl.Postings[i].TF
		}
		if got := pl.SubtreeTF(n.ID); got != refTF {
			t.Fatalf("SubtreeTF(%v) = %d, reference range sum = %d", n.ID, got, refTF)
		}
	}

	// Tokenizer parity on mixed-case and non-ASCII text.
	for _, text := range []string{
		"Plain lowercase words", "MIXED Case-Tokens 42x",
		"Ünïcode İstanbul Text with K (Kelvin)", "", "  ", "a",
	} {
		var streamed []string
		xmltree.VisitTokens(text, func(tok string) bool {
			streamed = append(streamed, tok)
			return true
		})
		if want := referenceTokenize(text); !reflect.DeepEqual(streamed, want) {
			t.Errorf("VisitTokens(%q) = %v, reference = %v", text, streamed, want)
		}
	}
}
