package benchkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout this package emits and
// Validate accepts. Validation is strict — unknown fields are rejected —
// so the version string fully determines the layout: bump it for ANY field
// change, additive included, and teach Validate the new layout in the same
// change.
const SchemaVersion = "vxmlbench/1"

// Report is the machine-readable output of one vxmlbench run: the perf
// trajectory artifact committed as BENCH_<n>.json at the repo root and
// uploaded from CI, schema-versioned so downstream tooling can diff runs
// across PRs.
type Report struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// Profile names the scale preset the run used (tiny/small/medium/large).
	Profile string `json:"profile"`
	// Seed is the data-generation seed, for reproducing the exact corpora.
	Seed int64 `json:"seed"`
	// GeneratedBy records the producing command for provenance.
	GeneratedBy string `json:"generated_by"`
	// Host describes the machine the numbers were measured on.
	Host Host `json:"host"`
	// Scenarios holds one entry per executed scenario, in catalog order.
	Scenarios []Scenario `json:"scenarios"`
}

// Host is the measurement environment: perf numbers are meaningless
// without it.
type Host struct {
	// GoVersion is runtime.Version().
	GoVersion string `json:"go_version"`
	// GOOS and GOARCH identify the platform.
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// NumCPU is the machine's logical CPU count; GOMAXPROCS the scheduler
	// limit the run used (parallel speedups are bounded by it).
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
}

// HostInfo captures the current process's Host record.
func HostInfo() Host {
	return Host{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Scenario is one benchmark scenario's results: a sweep over one axis
// (data size, keyword count, parallelism, ...) with one Row per point.
type Scenario struct {
	// Name is the scenario's stable registry name (e.g. "fig13_approaches").
	Name string `json:"name"`
	// Figure maps the scenario to the paper's evaluation figure ("13".."21"),
	// empty for post-paper scenarios.
	Figure string `json:"figure,omitempty"`
	// Description says what the scenario measures, for readers of the JSON.
	Description string `json:"description"`
	// Rows are the sweep points in sweep order.
	Rows []Row `json:"rows"`
}

// Row is one sweep point of a scenario.
type Row struct {
	// Label identifies the point (e.g. "size=3", "parallelism=4").
	Label string `json:"label"`
	// Measurement carries ns/op, allocs/op, bytes/op and the iteration
	// count behind them.
	Measurement
	// BytesFetched is the base-data bytes fetched per operation (the
	// store's materialization counter delta), when the scenario tracks it.
	BytesFetched float64 `json:"bytes_fetched,omitempty"`
	// IndexProbes is the number of index probes (path-index B+-tree probes
	// plus inverted-list keyword lookups) per operation, when tracked.
	IndexProbes float64 `json:"index_probes,omitempty"`
	// Extra holds scenario-specific metrics (speedup ratios, PDT sizes,
	// cache hit costs, fetch savings), keyed by stable snake_case names.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Encode renders the report as indented, trailing-newline JSON — the
// canonical on-disk form (stable for git diffs).
func (r *Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("benchkit: encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// WriteFile validates the report and writes it atomically (temp file +
// rename), so a crashed run never leaves a half-written artifact and an
// invalid report is never written at all.
func (r *Report) WriteFile(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	if err := Validate(data); err != nil {
		return fmt.Errorf("benchkit: refusing to write invalid report: %w", err)
	}
	return AtomicWriteFile(path, data)
}

// AtomicWriteFile writes data to path via a same-directory temp file and
// rename, so a crashed or interrupted writer never leaves a half-written
// artifact behind. It is the shared sink for every report in the
// BENCH_*.json family (vxmlbench's vxmlbench/1, vxmlload's vxmlload/1).
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-*.json")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// Validate checks that data is a structurally valid SchemaVersion report:
// correct schema tag, no unknown fields, host metadata present, at least
// one scenario, and every row carrying a label and positive measurement.
// CI runs it against the emitted artifact so a schema regression fails the
// build instead of silently corrupting the perf trajectory.
func Validate(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("report does not decode as %s: %w", SchemaVersion, err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the report object")
	}
	if r.Schema != SchemaVersion {
		return fmt.Errorf("schema is %q, want %q", r.Schema, SchemaVersion)
	}
	if r.Profile == "" {
		return fmt.Errorf("missing profile")
	}
	h := r.Host
	if h.GoVersion == "" || h.GOOS == "" || h.GOARCH == "" || h.NumCPU <= 0 || h.GOMAXPROCS <= 0 {
		return fmt.Errorf("incomplete host metadata: %+v", h)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("no scenarios")
	}
	seen := map[string]bool{}
	for _, s := range r.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("scenario with empty name")
		}
		if seen[s.Name] {
			return fmt.Errorf("duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Rows) == 0 {
			return fmt.Errorf("scenario %q has no rows", s.Name)
		}
		for _, row := range s.Rows {
			if row.Label == "" {
				return fmt.Errorf("scenario %q has a row with no label", s.Name)
			}
			if row.Iters <= 0 || row.NsPerOp <= 0 {
				return fmt.Errorf("scenario %q row %q has a non-positive measurement", s.Name, row.Label)
			}
		}
	}
	return nil
}

// ValidateFile runs Validate over a report file on disk.
func ValidateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Validate(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// Profile is a scale preset for a vxmlbench run: how big the generated
// corpora are and how long each sweep point measures. The sweep shapes are
// identical at every profile — only cost changes — so a tiny CI run and a
// large workstation run are directly comparable point by point.
type Profile struct {
	// Name is the -profile flag value.
	Name string `json:"name"`
	// UnitBytes maps the paper's 100MB data unit to a byte size.
	UnitBytes int `json:"unit_bytes"`
	// Budget is the measurement loop budget per sweep point.
	Budget time.Duration `json:"budget_ns"`
	// CollectionDocs sizes the multi-document corpus used by the
	// parallelism, throughput, mutation and streaming scenarios.
	CollectionDocs int `json:"collection_docs"`
}

// Profiles returns the built-in scale presets, smallest first.
func Profiles() []Profile {
	return []Profile{
		{Name: "tiny", UnitBytes: 32 << 10, Budget: 60 * time.Millisecond, CollectionDocs: 24},
		{Name: "small", UnitBytes: 128 << 10, Budget: 150 * time.Millisecond, CollectionDocs: 60},
		{Name: "medium", UnitBytes: 512 << 10, Budget: 300 * time.Millisecond, CollectionDocs: 120},
		{Name: "large", UnitBytes: 1 << 20, Budget: 600 * time.Millisecond, CollectionDocs: 240},
	}
}

// ProfileByName resolves a -profile flag value.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("benchkit: unknown profile %q (tiny, small, medium, large)", name)
}
