package benchkit

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"vxml"
	"vxml/internal/catalog"
	"vxml/internal/core"
	"vxml/internal/dewey"
	"vxml/internal/invindex"
	"vxml/internal/xmltree"
)

// Config parameterizes a vxmlbench run: the scale profile and the data
// generation seed shared by every scenario.
type Config struct {
	// Profile selects corpus sizes and per-point measurement budgets.
	Profile Profile
	// Seed drives every deterministic corpus generator in the run.
	Seed int64
}

// ScenarioDef is one entry of the scenario catalog.
type ScenarioDef struct {
	// Name is the stable registry name used by -scenarios and in the JSON.
	Name string
	// Figure is the paper figure the scenario reproduces ("" for
	// post-paper scenarios).
	Figure string
	// Description says what the scenario measures.
	Description string
	// Run executes the scenario.
	Run func(cfg Config) (*Scenario, error)
}

// ScenarioCatalog returns every scenario in report order: the paper's
// figures 13-21 first, then the post-paper scenarios (parallelism,
// throughput, mutation, caching, streaming) and the hot-path
// reference-vs-optimized comparison.
func ScenarioCatalog() []ScenarioDef {
	return []ScenarioDef{
		{Name: "fig13_approaches", Figure: "13", Description: "total run time of the four approaches (Efficient, Baseline, GTP, Proj) vs data size, with speedup ratios", Run: runFig13},
		{Name: "fig14_data_size", Figure: "14", Description: "Efficient module breakdown (PDT / eval / post) vs data size", Run: sweepScenario("fig14_data_size", "14", "Efficient module breakdown (PDT / eval / post) vs data size", sizePoints)},
		{Name: "fig15_keywords", Figure: "15", Description: "Efficient module breakdown vs number of query keywords (1-5)", Run: sweepScenario("fig15_keywords", "15", "Efficient module breakdown vs number of query keywords (1-5)", keywordPoints)},
		{Name: "fig16_selectivity", Figure: "16", Description: "Efficient module breakdown vs keyword selectivity (low/medium/high)", Run: sweepScenario("fig16_selectivity", "16", "Efficient module breakdown vs keyword selectivity (low/medium/high)", selectivityPoints)},
		{Name: "fig17_joins", Figure: "17", Description: "Efficient module breakdown vs number of value joins (0-4)", Run: sweepScenario("fig17_joins", "17", "Efficient module breakdown vs number of value joins (0-4)", joinPoints)},
		{Name: "fig18_join_selectivity", Figure: "18", Description: "Efficient module breakdown vs join selectivity (1X down to 0.1X)", Run: sweepScenario("fig18_join_selectivity", "18", "Efficient module breakdown vs join selectivity (1X down to 0.1X)", joinSelectivityPoints)},
		{Name: "fig19_nesting", Figure: "19", Description: "Efficient module breakdown vs view nesting level (1-4)", Run: sweepScenario("fig19_nesting", "19", "Efficient module breakdown vs view nesting level (1-4)", nestingPoints)},
		{Name: "fig20_topk", Figure: "20", Description: "Efficient module breakdown vs K in top-K", Run: sweepScenario("fig20_topk", "20", "Efficient module breakdown vs K in top-K", topkPoints)},
		{Name: "fig21_elem_size", Figure: "21", Description: "Efficient run time and PDT size vs average view element size (§5.2.3 other results)", Run: sweepScenario("fig21_elem_size", "21", "Efficient run time and PDT size vs average view element size (§5.2.3 other results)", elemSizePoints)},
		{Name: "parallelism_sweep", Description: "one ranked collection-view search at Parallelism 1, 2, 4 and GOMAXPROCS, with speedup vs sequential", Run: runParallelismSweep},
		{Name: "concurrent_throughput", Description: "concurrent clients hammering one Database: queries/sec at increasing goroutine counts", Run: runConcurrentThroughput},
		{Name: "mutation_mix", Description: "document lifecycle cost: replace, delete+add, and search-after-invalidation over a live corpus", Run: runMutationMix},
		{Name: "cache_hit_miss", Description: "query-result cache: uncached search vs cache hit, with the hit speedup", Run: runCacheHitMiss},
		{Name: "view_rewrite", Description: "query planner skeleton tier: direct evaluation vs rewriting ever-distinct keyword queries against the view's cached skeleton", Run: runViewRewrite},
		{Name: "materialized_view", Description: "query planner materialized tier: direct evaluation vs serving ever-distinct keyword queries from the adaptively materialized view", Run: runMaterializedView},
		{Name: "streaming_early_break", Description: "deferred delivery: full materialization vs streaming with an early break, with base-data fetch savings", Run: runStreamingEarlyBreak},
		{Name: "hot_paths", Description: "allocation hot paths, reference (pre-optimization) implementation vs optimized, with allocs/op reduction", Run: runHotPaths},
		{Name: "cold_start", Description: "open a persisted corpus + first ranked search: heap Load (re-parse + re-index) vs disk OpenDisk (manifest fold), with the open-time fraction", Run: runColdStart},
		{Name: "dag_dedup", Description: "disk-store DAG compression: on-disk data bytes vs uncompressed serialization on a high-repetition corpus, with an all-distinct control", Run: runDAGDedup},
	}
}

// RunReport executes the named scenarios (nil or empty: all) and wraps the
// results in a schema-versioned Report.
func RunReport(cfg Config, names []string) (*Report, error) {
	catalog := ScenarioCatalog()
	selected := map[string]bool{}
	for _, n := range names {
		found := false
		for _, def := range catalog {
			if def.Name == n {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("benchkit: unknown scenario %q (use -list)", n)
		}
		selected[n] = true
	}
	report := &Report{
		Schema:      SchemaVersion,
		Profile:     cfg.Profile.Name,
		Seed:        cfg.Seed,
		GeneratedBy: "vxmlbench -profile " + cfg.Profile.Name,
		Host:        HostInfo(),
	}
	for _, def := range catalog {
		if len(selected) > 0 && !selected[def.Name] {
			continue
		}
		s, err := def.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("benchkit: scenario %s: %w", def.Name, err)
		}
		s.Name, s.Figure, s.Description = def.Name, def.Figure, def.Description
		report.Scenarios = append(report.Scenarios, *s)
	}
	return report, nil
}

// baseParams maps a Config to the Table 1 defaults at the profile's scale.
func baseParams(cfg Config) Params {
	p := Default()
	p.UnitBytes = cfg.Profile.UnitBytes
	p.Seed = cfg.Seed
	return p
}

// sweepPoint is one x-axis point of a figure sweep.
type sweepPoint struct {
	label string
	mut   func(*Params)
}

func sizePoints() []sweepPoint {
	var pts []sweepPoint
	for _, size := range []int{1, 2, 3, 4, 5} {
		size := size
		pts = append(pts, sweepPoint{fmt.Sprintf("size=%d", size), func(p *Params) { p.SizeUnits = size }})
	}
	return pts
}

func keywordPoints() []sweepPoint {
	var pts []sweepPoint
	for n := 1; n <= 5; n++ {
		n := n
		pts = append(pts, sweepPoint{fmt.Sprintf("keywords=%d", n), func(p *Params) { p.NumKeywords = n }})
	}
	return pts
}

func selectivityPoints() []sweepPoint {
	var pts []sweepPoint
	for _, sel := range []string{"low", "medium", "high"} {
		sel := sel
		pts = append(pts, sweepPoint{"selectivity=" + sel, func(p *Params) { p.Selectivity = sel }})
	}
	return pts
}

func joinPoints() []sweepPoint {
	var pts []sweepPoint
	for j := 0; j <= 4; j++ {
		j := j
		pts = append(pts, sweepPoint{fmt.Sprintf("joins=%d", j), func(p *Params) { p.NumJoins = j }})
	}
	return pts
}

func joinSelectivityPoints() []sweepPoint {
	var pts []sweepPoint
	for _, pt := range []struct {
		label string
		parts int
	}{{"1X", 1}, {"0.5X", 2}, {"0.2X", 5}, {"0.1X", 10}} {
		pt := pt
		pts = append(pts, sweepPoint{"selectivity=" + pt.label, func(p *Params) { p.JoinPartitions = pt.parts }})
	}
	return pts
}

func nestingPoints() []sweepPoint {
	var pts []sweepPoint
	for level := 1; level <= 4; level++ {
		level := level
		pts = append(pts, sweepPoint{fmt.Sprintf("nesting=%d", level), func(p *Params) { p.Nesting = level }})
	}
	return pts
}

func topkPoints() []sweepPoint {
	var pts []sweepPoint
	for _, k := range []int{1, 10, 20, 30, 40} {
		k := k
		pts = append(pts, sweepPoint{fmt.Sprintf("k=%d", k), func(p *Params) { p.TopK = k }})
	}
	return pts
}

func elemSizePoints() []sweepPoint {
	var pts []sweepPoint
	for x := 1; x <= 5; x++ {
		x := x
		pts = append(pts, sweepPoint{fmt.Sprintf("elemsize=%dX", x), func(p *Params) { p.ElemSizeX = x }})
	}
	return pts
}

// sweepScenario builds a figure-sweep runner: one Efficient measurement per
// point, with the module breakdown, PDT sizes, base-data bytes and index
// probes in Extra.
func sweepScenario(name, figure, desc string, points func() []sweepPoint) func(cfg Config) (*Scenario, error) {
	return func(cfg Config) (*Scenario, error) {
		s := &Scenario{Name: name, Figure: figure, Description: desc}
		for _, pt := range points() {
			p := baseParams(cfg)
			pt.mut(&p)
			w, err := Build(p)
			if err != nil {
				return nil, err
			}
			row, err := efficientRow(w, pt.label, cfg.Profile.Budget)
			if err != nil {
				return nil, err
			}
			s.Rows = append(s.Rows, row)
		}
		return s, nil
	}
}

// efficientRow measures the Efficient pipeline on one workload and packs
// the per-module breakdown and counter deltas into a Row.
func efficientRow(w *Workload, label string, budget time.Duration) (Row, error) {
	if _, err := w.RunEfficient(); err != nil {
		return Row{}, err
	}
	var last *core.Stats
	bytesBefore := w.Engine.Store.BytesFetched()
	pp0, kl0 := w.Engine.IndexProbes()
	m := Measure(budget, func() {
		if s, err := w.RunEfficient(); err == nil {
			last = s
		}
	})
	bytesAfter := w.Engine.Store.BytesFetched()
	pp1, kl1 := w.Engine.IndexProbes()
	runs := float64(m.Iters + 1) // the counters also saw Measure's warm-up run
	row := Row{
		Label:        label,
		Measurement:  m,
		BytesFetched: float64(bytesAfter-bytesBefore) / runs,
		IndexProbes:  float64(pp1-pp0+kl1-kl0) / runs,
		Extra: map[string]float64{
			"pdt_ns":       float64(last.PDTTime.Nanoseconds()),
			"eval_ns":      float64(last.EvalTime.Nanoseconds()),
			"post_ns":      float64(last.PostTime.Nanoseconds()),
			"pdt_nodes":    float64(last.PDTNodes),
			"pdt_bytes":    float64(last.PDTBytes),
			"view_results": float64(last.ViewResults),
			"matched":      float64(last.Matched),
			"data_bytes":   float64(w.Engine.Store.TotalBytes()),
		},
	}
	return row, nil
}

// runFig13 measures all four approaches per data size and reports the
// paper's headline speedup ratios.
func runFig13(cfg Config) (*Scenario, error) {
	s := &Scenario{}
	for _, size := range []int{1, 3, 5} {
		p := baseParams(cfg)
		p.SizeUnits = size
		w, err := Build(p)
		if err != nil {
			return nil, err
		}
		row, err := efficientRow(w, fmt.Sprintf("size=%d", size), cfg.Profile.Budget)
		if err != nil {
			return nil, err
		}
		if _, err := w.RunBaseline(); err != nil {
			return nil, err
		}
		base := Measure(cfg.Profile.Budget, func() { w.RunBaseline() }) //nolint:errcheck // pre-flighted above
		if _, err := w.RunGTP(); err != nil {
			return nil, err
		}
		gtp := Measure(cfg.Profile.Budget, func() { w.RunGTP() }) //nolint:errcheck // pre-flighted above
		proj := Measure(cfg.Profile.Budget, func() { w.RunProj() })
		row.Extra["baseline_ns"] = base.NsPerOp
		row.Extra["gtp_ns"] = gtp.NsPerOp
		row.Extra["proj_ns"] = proj.NsPerOp
		row.Extra["speedup_vs_baseline"] = base.NsPerOp / row.NsPerOp
		row.Extra["speedup_vs_gtp"] = gtp.NsPerOp / row.NsPerOp
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// CollectionVocabulary is the word list of the collection corpora, shared
// with the root-package parallel benchmarks (and mirroring the equivalence
// suites' list): "copper" and "quartz" are the planted search terms,
// repeated so term frequencies vary per article.
var CollectionVocabulary = []string{
	"copper", "quartz", "basalt", "granite", "mica", "shale",
	"copper", "quartz", "system", "survey", "archive", "ledger",
}

// partXML builds one deterministic part document for the collection
// corpora; variant perturbs the content so replacements differ.
func partXML(rng *rand.Rand, part, articles, variant int) string {
	var sb strings.Builder
	sb.WriteString("<books>")
	for a := 0; a < articles; a++ {
		var body strings.Builder
		for w, n := 0, 30+rng.Intn(90); w < n; w++ {
			if w > 0 {
				body.WriteByte(' ')
			}
			body.WriteString(CollectionVocabulary[rng.Intn(len(CollectionVocabulary))])
		}
		fmt.Fprintf(&sb,
			`<article><fm><tl>study %d rev %d</tl><au>author%d</au><yr>%d</yr></fm><bdy>%s</bdy></article>`,
			part*1000+a, variant, rng.Intn(8), 1985+rng.Intn(16), body.String())
	}
	sb.WriteString("</books>")
	return sb.String()
}

// CollectionView joins a part-* collection against the authors document —
// the view every collection-corpus scenario and benchmark searches.
const CollectionView = `
for $a in fn:collection("part-*")/books//article
return <rec><t>{$a/fm/tl}</t>,
  {for $u in fn:doc(authors.xml)/authors//author
   where $u/name = $a/fm/au
   return <inst>{$u/affil}</inst>},
  {$a/bdy}</rec>`

// CollectionKeywords returns the planted search terms of the collection
// corpora.
func CollectionKeywords() []string { return []string{"copper", "quartz"} }

// BuildCollectionCorpus deterministically ingests a part-* collection
// corpus (docs part documents with articlesPerDoc articles each, plus the
// authors document CollectionView joins against) into db. The same builder
// feeds the vxmlbench scenarios and the root-package parallel benchmarks,
// so the two measure one corpus shape.
func BuildCollectionCorpus(db *vxml.Database, docs, articlesPerDoc int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for d := 0; d < docs; d++ {
		if err := db.Add(fmt.Sprintf("part-%03d.xml", d), partXML(rng, d, articlesPerDoc, 0)); err != nil {
			return err
		}
	}
	var authors strings.Builder
	authors.WriteString("<authors>")
	for i := 0; i < 8; i++ {
		fmt.Fprintf(&authors, `<author><name>author%d</name><affil>institute %d</affil></author>`, i, i)
	}
	authors.WriteString("</authors>")
	return db.Add("authors.xml", authors.String())
}

// buildCollectionDB assembles the shared multi-document corpus the
// post-paper scenarios run against.
func buildCollectionDB(cfg Config) (*vxml.Database, *vxml.View, []string, error) {
	db := vxml.Open()
	if err := BuildCollectionCorpus(db, cfg.Profile.CollectionDocs, 8, cfg.Seed); err != nil {
		return nil, nil, nil, err
	}
	view, err := db.DefineView(CollectionView)
	if err != nil {
		return nil, nil, nil, err
	}
	return db, view, CollectionKeywords(), nil
}

// runParallelismSweep measures the same top-10 ranked search at fixed pool
// sizes and at GOMAXPROCS (Parallelism 0).
func runParallelismSweep(cfg Config) (*Scenario, error) {
	db, view, kws, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	s := &Scenario{}
	var seqNs float64
	for _, par := range []int{1, 2, 4, 0} {
		opts := &vxml.Options{TopK: 10, Parallelism: par}
		if _, _, err := db.Search(view, kws, opts); err != nil {
			return nil, err
		}
		m := Measure(cfg.Profile.Budget, func() { db.Search(view, kws, opts) }) //nolint:errcheck // pre-flighted above
		label := fmt.Sprintf("parallelism=%d", par)
		if par == 0 {
			label = "parallelism=gomaxprocs"
		}
		row := Row{Label: label, Measurement: m, Extra: map[string]float64{}}
		if par == 1 {
			seqNs = m.NsPerOp
		} else if seqNs > 0 {
			row.Extra["speedup_vs_sequential"] = seqNs / m.NsPerOp
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// runConcurrentThroughput measures aggregate search throughput with G
// concurrent clients sharing one Database (the HTTP service's shape).
func runConcurrentThroughput(cfg Config) (*Scenario, error) {
	db, view, kws, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	if _, _, err := db.Search(view, kws, &vxml.Options{TopK: 10, Parallelism: 1}); err != nil {
		return nil, err
	}
	s := &Scenario{}
	for _, g := range []int{1, 2, 4, 8} {
		g := g
		// One op = each of the G clients completing one sequential search;
		// per-search parallelism stays 1 so added clients are the only
		// concurrency.
		m := Measure(cfg.Profile.Budget, func() {
			var wg sync.WaitGroup
			wg.Add(g)
			for i := 0; i < g; i++ {
				go func() {
					defer wg.Done()
					db.Search(view, kws, &vxml.Options{TopK: 10, Parallelism: 1}) //nolint:errcheck // pre-flighted above
				}()
			}
			wg.Wait()
		})
		s.Rows = append(s.Rows, Row{
			Label:       fmt.Sprintf("clients=%d", g),
			Measurement: m,
			Extra: map[string]float64{
				"queries_per_sec": float64(g) * 1e9 / m.NsPerOp,
			},
		})
	}
	return s, nil
}

// runMutationMix measures the document lifecycle: in-place replacement,
// delete+re-add churn, and the cost of the first (cache-cold) search after
// an invalidating mutation.
func runMutationMix(cfg Config) (*Scenario, error) {
	db, view, kws, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	docs := cfg.Profile.CollectionDocs
	variant := 1
	s := &Scenario{}

	name := func(i int) string { return fmt.Sprintf("part-%03d.xml", i%docs) }
	replace := Measure(cfg.Profile.Budget, func() {
		if err := db.Replace(name(variant), partXML(rng, variant%docs, 8, variant)); err != nil {
			panic(err)
		}
		variant++
	})
	s.Rows = append(s.Rows, Row{Label: "replace", Measurement: replace})

	deleteAdd := Measure(cfg.Profile.Budget, func() {
		n := name(variant)
		if err := db.Delete(n); err != nil {
			panic(err)
		}
		if err := db.Add(n, partXML(rng, variant%docs, 8, variant)); err != nil {
			panic(err)
		}
		variant++
	})
	s.Rows = append(s.Rows, Row{Label: "delete_add", Measurement: deleteAdd})

	// Each op replaces one document (invalidating the cache) and runs the
	// search that must recompute against the mutated corpus.
	searchAfter := Measure(cfg.Profile.Budget, func() {
		if err := db.Replace(name(variant), partXML(rng, variant%docs, 8, variant)); err != nil {
			panic(err)
		}
		variant++
		db.Search(view, kws, &vxml.Options{TopK: 10, Cache: true}) //nolint:errcheck // view/kws pre-flighted by buildCollectionDB scenarios
	})
	s.Rows = append(s.Rows, Row{Label: "replace_then_search", Measurement: searchAfter, Extra: map[string]float64{
		"replace_ns": replace.NsPerOp,
	}})
	return s, nil
}

// runCacheHitMiss compares an uncached search (the cost every miss pays)
// with a warm cache hit of the same query.
func runCacheHitMiss(cfg Config) (*Scenario, error) {
	db, view, kws, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	uncachedOpts := &vxml.Options{TopK: 10}
	if _, _, err := db.Search(view, kws, uncachedOpts); err != nil {
		return nil, err
	}
	uncached := Measure(cfg.Profile.Budget, func() { db.Search(view, kws, uncachedOpts) }) //nolint:errcheck // pre-flighted above
	cachedOpts := &vxml.Options{TopK: 10, Cache: true}
	if _, _, err := db.Search(view, kws, cachedOpts); err != nil {
		return nil, err
	}
	hit := Measure(cfg.Profile.Budget, func() { db.Search(view, kws, cachedOpts) }) //nolint:errcheck // pre-flighted above
	stats := db.CacheStats()
	s := &Scenario{}
	s.Rows = append(s.Rows, Row{Label: "uncached", Measurement: uncached})
	s.Rows = append(s.Rows, Row{Label: "hit", Measurement: hit, Extra: map[string]float64{
		"speedup_vs_uncached": uncached.NsPerOp / hit.NsPerOp,
		"cache_hits":          float64(stats.Hits),
		"cache_entries":       float64(stats.Entries),
	}})
	return s, nil
}

// plannerKeywords returns a keyword set unique per call: the counter token
// never occurs in the corpus, so under disjunctive semantics it cannot
// change the ranking — but it does change the cache key, so every search
// is an exact-cache miss and must be answered by the planner tier under
// measurement, never by the result cache (that tier is cache_hit_miss's
// subject).
func plannerKeywords(counter *int) []string {
	*counter++
	return []string{"copper", fmt.Sprintf("uniq%d", *counter)}
}

// runViewRewrite measures the planner's skeleton tier: after one planned
// search records the view's keyword-independent skeleton, every distinct
// keyword query over the view skips PDT generation and evaluation and only
// re-scores, byte-identically to the direct pipeline it replaces.
func runViewRewrite(cfg Config) (*Scenario, error) {
	db, view, _, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	// Promotion disabled: this scenario isolates the skeleton tier
	// (materialized_view measures the next tier up).
	db.SetPlanPolicy(1<<30, 0)
	n := 0
	directOpts := &vxml.Options{TopK: 10, Disjunctive: true}
	if _, _, err := db.Search(view, plannerKeywords(&n), directOpts); err != nil {
		return nil, err
	}
	direct := Measure(cfg.Profile.Budget, func() { db.Search(view, plannerKeywords(&n), directOpts) }) //nolint:errcheck // pre-flighted above

	// The first planned search evaluates directly and records the skeleton;
	// every measured search after it rewrites.
	plannedOpts := &vxml.Options{TopK: 10, Disjunctive: true, Cache: true}
	if _, _, err := db.Search(view, plannerKeywords(&n), plannedOpts); err != nil {
		return nil, err
	}
	var last *vxml.Stats
	rewritten := Measure(cfg.Profile.Budget, func() {
		if _, s, err := db.Search(view, plannerKeywords(&n), plannedOpts); err == nil {
			last = s
		}
	})
	if last == nil || last.PlanSource != catalog.PlanRewritten {
		return nil, fmt.Errorf("view_rewrite: measured serve did not come from the skeleton tier (last plan source %v)", planSourceOf(last))
	}
	cs := db.CacheStats()
	s := &Scenario{}
	s.Rows = append(s.Rows, Row{Label: "direct", Measurement: direct})
	s.Rows = append(s.Rows, Row{Label: "skeleton_rewrite", Measurement: rewritten, Extra: map[string]float64{
		"speedup_vs_direct": direct.NsPerOp / rewritten.NsPerOp,
		"rewrite_hits":      float64(cs.RewriteHits),
		"skeletons":         float64(cs.Skeletons),
	}})
	return s, nil
}

// runMaterializedView measures the planner's top tier: the view promotes to
// a fully materialized artifact on first heat, after which every distinct
// keyword query is answered from stored result trees and a token index —
// no PDT generation, no evaluation, no base-data access.
func runMaterializedView(cfg Config) (*Scenario, error) {
	db, view, _, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	// Promote on first heat: the scenario measures steady-state serves
	// from the materialized view, not the promotion itself.
	db.SetPlanPolicy(1, 0)
	n := 0
	directOpts := &vxml.Options{TopK: 10, Disjunctive: true}
	if _, _, err := db.Search(view, plannerKeywords(&n), directOpts); err != nil {
		return nil, err
	}
	direct := Measure(cfg.Profile.Budget, func() { db.Search(view, plannerKeywords(&n), directOpts) }) //nolint:errcheck // pre-flighted above

	plannedOpts := &vxml.Options{TopK: 10, Disjunctive: true, Cache: true}
	if _, _, err := db.Search(view, plannerKeywords(&n), plannedOpts); err != nil {
		return nil, err
	}
	if cs := db.CacheStats(); cs.Materialized != 1 {
		return nil, fmt.Errorf("materialized_view: first planned search did not promote (materialized=%d)", cs.Materialized)
	}
	var last *vxml.Stats
	mat := Measure(cfg.Profile.Budget, func() {
		if _, s, err := db.Search(view, plannerKeywords(&n), plannedOpts); err == nil {
			last = s
		}
	})
	if last == nil || last.PlanSource != catalog.PlanMaterialized {
		return nil, fmt.Errorf("materialized_view: measured serve did not come from the materialized tier (last plan source %v)", planSourceOf(last))
	}
	cs := db.CacheStats()
	s := &Scenario{}
	s.Rows = append(s.Rows, Row{Label: "direct", Measurement: direct})
	s.Rows = append(s.Rows, Row{Label: "materialized_serve", Measurement: mat, Extra: map[string]float64{
		"speedup_vs_direct": direct.NsPerOp / mat.NsPerOp,
		"materialized_hits": float64(cs.MaterializedHits),
		"promotions":        float64(cs.Promotions),
		"artifact_bytes":    float64(cs.ArtifactBytes),
	}})
	return s, nil
}

// planSourceOf formats a possibly-nil Stats' plan source for error text.
func planSourceOf(s *vxml.Stats) string {
	if s == nil {
		return "<no stats>"
	}
	return s.PlanSource
}

// runStreamingEarlyBreak compares materializing a full unranked result set
// with streaming the same ranking and breaking after a few results — the
// deferred-materialization payoff in fetch counts.
func runStreamingEarlyBreak(cfg Config) (*Scenario, error) {
	db, view, kws, err := buildCollectionDB(cfg)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	full := func() {
		if _, _, err := db.Search(view, kws, &vxml.Options{}); err != nil {
			panic(err)
		}
	}
	const keep = 3
	streamed := func() {
		n := 0
		for _, err := range db.Results(ctx, view, kws, &vxml.Options{}) {
			if err != nil {
				panic(err)
			}
			if n++; n >= keep {
				break
			}
		}
	}
	full()
	streamed()
	fullFetches := fetchesPerOp(db, cfg.Profile.Budget, full)
	streamFetches := fetchesPerOp(db, cfg.Profile.Budget, streamed)
	s := &Scenario{}
	s.Rows = append(s.Rows, Row{Label: "full_materialization", Measurement: fullFetches.m, Extra: map[string]float64{
		"subtree_fetches": fullFetches.fetches,
	}})
	saved := 0.0
	if fullFetches.fetches > 0 {
		saved = 1 - streamFetches.fetches/fullFetches.fetches
	}
	s.Rows = append(s.Rows, Row{Label: fmt.Sprintf("streamed_break_after_%d", keep), Measurement: streamFetches.m, Extra: map[string]float64{
		"subtree_fetches":        streamFetches.fetches,
		"fetch_fraction_saved":   saved,
		"speedup_vs_full":        fullFetches.m.NsPerOp / streamFetches.m.NsPerOp,
		"results_kept_per_query": keep,
	}})
	return s, nil
}

// fetchResult pairs a measurement with the store fetch counter delta.
type fetchResult struct {
	m       Measurement
	fetches float64
}

// fetchesPerOp measures fn and attributes the store's subtree-fetch
// counter delta per operation (including Measure's warm-up run).
func fetchesPerOp(db *vxml.Database, budget time.Duration, fn func()) fetchResult {
	before := db.SubtreeFetches()
	m := Measure(budget, fn)
	after := db.SubtreeFetches()
	return fetchResult{m: m, fetches: float64(after-before) / float64(m.Iters+1)}
}

// ---------------------------------------------------------- hot paths ----

// runHotPaths measures the optimized allocation hot paths against
// reference implementations of the same computation (the pre-optimization
// algorithms, kept here verbatim), so every emitted report carries its own
// machine-honest before/after allocs-per-op comparison. The references are
// also equivalence-checked against the optimized paths in the package
// tests.
func runHotPaths(cfg Config) (*Scenario, error) {
	p := baseParams(cfg)
	p.SizeUnits = 1
	w, err := Build(p)
	if err != nil {
		return nil, err
	}
	doc := w.Corpus.INEX
	kws := []string{"thomas", "control"}
	budget := cfg.Profile.Budget

	s := &Scenario{}
	pair := func(label string, ref, opt func()) {
		before := Measure(budget, ref)
		after := Measure(budget, opt)
		reduction := 0.0
		if before.AllocsPerOp > 0 {
			reduction = 1 - after.AllocsPerOp/before.AllocsPerOp
		}
		s.Rows = append(s.Rows, Row{Label: label, Measurement: after, Extra: map[string]float64{
			"before_ns_per_op":     before.NsPerOp,
			"before_allocs_per_op": before.AllocsPerOp,
			"before_bytes_per_op":  before.BytesPerOp,
			"allocs_reduction":     reduction,
			"speedup":              before.NsPerOp / after.NsPerOp,
		}})
	}

	// Tokenization + subtree term frequencies (FromBase scoring, indexing).
	pair("subtree_tf",
		func() { referenceSubtreeTF(doc.Root, kws) },
		func() { xmltree.SubtreeTF(doc.Root, kws) })

	// Winner materialization: deep-copying a fetched base subtree.
	sample := doc.Root
	if len(sample.Children) > 0 {
		sample = sample.Children[0]
	}
	pair("materialize_clone",
		func() { referenceClone(sample) },
		func() { sample.Clone() })

	// Inverted-list subtree range probes (PDT generation's tf source). The
	// index is immutable once built, so it is safe to keep probing it after
	// the lock is released.
	w.Engine.RLock()
	iix := w.Engine.InvIndex(doc.Name)
	w.Engine.RUnlock()
	pl := iix.Lookup(kws[0])
	targets := doc.Root.Children
	if len(targets) == 0 {
		targets = []*xmltree.Node{doc.Root}
	}
	pair("dewey_range_probe",
		func() {
			for _, t := range targets {
				referenceRangeProbe(pl.Postings, t.ID)
			}
		},
		func() {
			for _, t := range targets {
				pl.SubtreeTF(t.ID)
			}
		})
	return s, nil
}

// referenceSubtreeTF is the pre-optimization SubtreeTF: a Unicode-folding
// tokenizer materializing a token slice per text node.
func referenceSubtreeTF(n *xmltree.Node, keywords []string) []int {
	tf := make([]int, len(keywords))
	n.Walk(func(x *xmltree.Node) {
		if x.Value == "" {
			return
		}
		for _, tok := range referenceTokenize(x.Value) {
			for i, k := range keywords {
				if tok == k {
					tf[i]++
				}
			}
		}
	})
	return tf
}

// referenceTokenize is the pre-optimization tokenizer: lower the whole
// text, then slice tokens out of the copy.
func referenceTokenize(text string) []string {
	var tokens []string
	start := -1
	lower := strings.ToLower(text)
	for i, r := range lower {
		alnum := r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		if alnum && start < 0 {
			start = i
		}
		if !alnum && start >= 0 {
			tokens = append(tokens, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		tokens = append(tokens, lower[start:])
	}
	return tokens
}

// referenceClone is the pre-optimization deep copy: one node, one ID and
// one child append chain per element.
func referenceClone(n *xmltree.Node) *xmltree.Node {
	c := &xmltree.Node{Tag: n.Tag, Value: n.Value, ID: n.ID.Clone(), ByteLen: n.ByteLen}
	for _, ch := range n.Children {
		cc := referenceClone(ch)
		cc.Parent = c
		c.Children = append(c.Children, cc)
	}
	return c
}

// referenceRangeProbe is the pre-optimization subtree range probe: it
// materializes id.Successor() for the upper bound of every probe.
func referenceRangeProbe(postings []invindex.Posting, id dewey.ID) (lo, hi int) {
	succ := id.Successor()
	lo = sort.Search(len(postings), func(i int) bool {
		return dewey.Compare(postings[i].ID, id) >= 0
	})
	hi = sort.Search(len(postings), func(i int) bool {
		return dewey.Compare(postings[i].ID, succ) >= 0
	})
	return lo, hi
}
