// Package pdt implements the PDT Generation Module, the paper's main
// technical contribution (§4): constructing Pruned Document Trees from a
// QPT using only the path index and the inverted-list index — the base
// document is never touched. The PDT contains exactly the elements that
// satisfy the QPT's mutual ancestor/descendant constraints (Definitions
// 1-3), with values materialized for 'v' nodes and per-keyword term
// frequencies plus byte lengths attached to 'c' nodes.
//
// GeneratePDT makes a single pass over the Dewey-ordered ID lists with a
// Candidate Tree maintained as the root-to-cursor chain (the paper's
// "left-most path"): ParentLists and DescendantMaps enforce the mutual
// constraints, PdtCaches hold elements whose ancestor constraints are still
// undecided, and CTQNodeSets handle repeated tag names where one element
// matches several QPT nodes (Appendix E). Unlike the paper we defer the
// InPdt fast-path emission and resolve all pending cache entries when their
// ancestors finalize; this changes memory behaviour slightly (pending
// candidates are held until their ancestors pop) but not the output, which
// tests verify against a direct implementation of Definitions 1-3.
package pdt

import (
	"strings"

	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/qpt"
)

// PathList is one ordered ID list produced by PrepareLists: the postings of
// one full data path serving one QPT node, together with the per-depth QPT
// match sets of that full path (used to map ID prefixes back to QPT nodes).
type PathList struct {
	QNode    *qpt.Node
	FullPath string
	Segs     []string
	Postings []pathindex.Posting
	// Matches[d] holds the QPT nodes matched by the prefix of depth d+1
	// (Matches[len(Segs)-1] always contains QNode).
	Matches [][]*qpt.Node
}

// Lists is the output of PrepareLists.
type Lists struct {
	Paths    []*PathList
	Keywords []string
	Inv      []*invindex.PostingList // one per keyword
}

// PrepareLists issues the fixed set of index probes of Figure 7: one path
// lookup per QPT node that has no mandatory child edges (which includes all
// leaves), plus lookups for 'v' nodes (retrieving values alongside IDs) and
// for 'c' nodes (whose byte lengths ride in the postings), plus one
// inverted-list lookup per query keyword. The number of probes depends only
// on the query, never on the data size.
func PrepareLists(q *qpt.QPT, pix *pathindex.Index, iix *invindex.Index, keywords []string) *Lists {
	out := &Lists{Keywords: keywords}
	for _, n := range q.Nodes() {
		if n.HasMandatoryChild() && !n.V && !n.C {
			continue // IDs arrive as prefixes of its mandatory descendants
		}
		steps := n.StepsFromRoot()
		for _, pp := range pix.LookupPath(steps, n.Preds) {
			pl := &PathList{
				QNode:    n,
				FullPath: pp.FullPath,
				Segs:     splitPath(pp.FullPath),
				Postings: pp.Postings,
			}
			pl.Matches = matchSets(q, pl.Segs)
			out.Paths = append(out.Paths, pl)
		}
	}
	for _, k := range keywords {
		out.Inv = append(out.Inv, iix.Lookup(k))
	}
	return out
}

func splitPath(p string) []string {
	p = strings.TrimPrefix(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

// matchSets computes, for each prefix depth d (1-based), the set of QPT
// nodes whose root-to-node pattern matches the first d segments of the full
// data path. Handles '//' edges and repeated tag names ("//a//a" over
// "/a/a/a") by dynamic programming over the QPT.
//
// Predicate-bearing leaves are deliberately excluded: an element counts as
// a candidate for such a node only if its value satisfies the predicates
// (Definition 1), which is known only from that node's own filtered list —
// GeneratePDT adds those items when the filtered posting arrives.
func matchSets(q *qpt.QPT, segs []string) [][]*qpt.Node {
	n := len(segs)
	out := make([][]*qpt.Node, n)
	// reach[node] = bitset over depths 0..n (depth 0 = virtual root)
	reach := map[*qpt.Node][]bool{}
	rootReach := make([]bool, n+1)
	rootReach[0] = true
	reach[q.Root] = rootReach

	var walk func(node *qpt.Node)
	walk = func(node *qpt.Node) {
		for _, e := range node.Edges {
			child := e.Child
			parentReach := reach[node]
			childReach := make([]bool, n+1)
			// prefixAny[d] = parent reachable at any depth < d
			any := false
			for d := 1; d <= n; d++ {
				anyBelow := any
				any = any || parentReach[d-1]
				if segs[d-1] != child.Tag {
					continue
				}
				if e.Axis == pathindex.Child {
					childReach[d] = parentReach[d-1]
				} else {
					childReach[d] = anyBelow || parentReach[d-1]
				}
			}
			reach[child] = childReach
			if len(child.Preds) == 0 {
				for d := 1; d <= n; d++ {
					if childReach[d] {
						out[d-1] = append(out[d-1], child)
					}
				}
			}
			walk(child)
		}
	}
	walk(q.Root)
	return out
}
