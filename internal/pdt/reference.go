package pdt

import (
	"sort"

	"vxml/internal/dewey"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/pred"
	"vxml/internal/qpt"
	"vxml/internal/xmltree"
)

// Reference computes the PDT by directly evaluating Definitions 1-3 over
// the materialized document: candidate elements (descendant constraints)
// bottom-up, PDT elements (ancestor constraints) top-down. It exists to
// validate Generate in tests; it scans the whole document and is not part
// of the production pipeline.
func Reference(q *qpt.QPT, doc *xmltree.Document, keywords []string) *PDT {
	var elements []*xmltree.Node
	doc.Root.Walk(func(n *xmltree.Node) { elements = append(elements, n) })

	// ce[qnode] = set of candidate elements (Definition 1), computed
	// bottom-up over the QPT.
	ce := map[*qpt.Node]map[*xmltree.Node]bool{}
	var computeCE func(n *qpt.Node)
	computeCE = func(n *qpt.Node) {
		for _, e := range n.Edges {
			computeCE(e.Child)
		}
		set := map[*xmltree.Node]bool{}
		for _, v := range elements {
			if v.Tag != n.Tag {
				continue
			}
			if len(n.Preds) > 0 && (!v.IsLeaf() || !pred.All(n.Preds, v.Value)) {
				continue
			}
			ok := true
			for _, e := range n.Edges {
				if !e.Mandatory {
					continue
				}
				childSet := ce[e.Child]
				found := false
				for c := range childSet {
					if e.Axis == pathindex.Child && v.ID.IsParentOf(c.ID) ||
						e.Axis == pathindex.Descendant && v.ID.IsAncestorOf(c.ID) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				set[v] = true
			}
		}
		ce[n] = set
	}
	for _, e := range q.Root.Edges {
		computeCE(e.Child)
	}

	// pe[qnode] = set of PDT elements (Definition 2), top-down. The
	// virtual root stands for the document node: a '/' edge from it admits
	// only the root element, a '//' edge admits any element.
	pe := map[*qpt.Node]map[*xmltree.Node]bool{}
	var computePE func(n *qpt.Node)
	computePE = func(n *qpt.Node) {
		set := map[*xmltree.Node]bool{}
		parentEdge := n.Parent
		for v := range ce[n] {
			ok := false
			if parentEdge.From == q.Root {
				if parentEdge.Axis == pathindex.Child {
					ok = v.Parent == nil // the document root element
				} else {
					ok = true
				}
			} else {
				for p := range pe[parentEdge.From] {
					if parentEdge.Axis == pathindex.Child && p.ID.IsParentOf(v.ID) ||
						parentEdge.Axis == pathindex.Descendant && p.ID.IsAncestorOf(v.ID) {
						ok = true
						break
					}
				}
			}
			if ok {
				set[v] = true
			}
		}
		pe[n] = set
		for _, e := range n.Edges {
			computePE(e.Child)
		}
	}
	for _, e := range q.Root.Edges {
		computePE(e.Child)
	}

	// Union the PE sets, remembering which annotations apply per element.
	type annot struct{ needV, needC bool }
	selected := map[*xmltree.Node]*annot{}
	var collect func(n *qpt.Node)
	collect = func(n *qpt.Node) {
		for v := range pe[n] {
			a := selected[v]
			if a == nil {
				a = &annot{}
				selected[v] = a
			}
			a.needV = a.needV || n.V
			a.needC = a.needC || n.C
		}
		for _, e := range n.Edges {
			collect(e.Child)
		}
	}
	for _, e := range q.Root.Edges {
		collect(e.Child)
	}

	inv := invindex.Build(doc)
	infos := make([]*emitInfo, 0, len(selected))
	for v, a := range selected {
		info := &emitInfo{
			ID:       v.ID,
			Tag:      v.Tag,
			Value:    v.Value,
			HasValue: v.IsLeaf(),
			ByteLen:  v.ByteLen,
			NeedV:    a.needV,
			NeedC:    a.needC,
		}
		if a.needC {
			info.TFs = make([]int, len(keywords))
			for i, k := range keywords {
				info.TFs[i] = inv.Lookup(k).SubtreeTF(v.ID)
			}
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return dewey.Less(infos[i].ID, infos[j].ID) })
	return assemble(infos, doc.Name)
}
