package pdt

import (
	"sort"
	"sync"

	"vxml/internal/dewey"
	"vxml/internal/pathindex"
	"vxml/internal/qpt"
	"vxml/internal/xmltree"
)

// PDT is a generated Pruned Document Tree. Doc is an xmltree document whose
// nodes keep their ORIGINAL base-document Dewey IDs (so provenance survives
// evaluation); 'v' nodes carry materialized values and 'c' nodes carry a
// NodeMeta payload (source ID, subtree byte length, per-keyword tf) exactly
// as in the paper's Figure 6(b). Doc is nil when no element qualifies.
type PDT struct {
	SourceName string
	Doc        *xmltree.Document
	Nodes      int
	Bytes      int // serialized byte estimate of the pruned tree
}

// ctItem is one entry of a CT node's CTQNodeSet: the state of the element
// with respect to one matching QPT node (Appendix E). The DescendantMap is
// a bitmask over the node's mandatory children (their positions are
// precomputed per QPT).
type ctItem struct {
	q         *qpt.Node
	owner     *ctNode
	pl        []*ctItem // ancestor items whose QPT node is q's parent
	dm        uint64    // satisfied mandatory-children bits
	need      int       // unsatisfied mandatory children
	candidate bool
	inPdt     bool
}

// ctNode is a node of the Candidate Tree. The live CT is exactly the
// root-to-cursor chain (the paper's left-most path), maintained as a stack.
type ctNode struct {
	id       dewey.ID
	depth    int
	tag      string
	items    []*ctItem
	cache    []*cacheEntry // descendants awaiting ancestor-constraint checks
	value    string
	hasValue bool
	byteLen  int
	tfs      []int
	needV    bool
	needC    bool
	rec      *emitInfo // lazily built emission record
}

// cacheEntry is a pending element that satisfies its descendant constraints
// but whose ancestor constraints are still undecided (the paper's
// PdtCache). Each group tracks one candidate QPT node independently so the
// 'v'/'c' annotations of the element come only from QPT nodes whose
// ancestor constraints actually resolve.
type cacheEntry struct {
	info   *emitInfo
	groups []*entryGroup
}

// entryGroup is one candidate QPT node's pending ancestor constraint.
type entryGroup struct {
	q  *qpt.Node
	pl []*ctItem
}

// Element is the payload of one pruned-tree element: identity, selectively
// materialized value, and scoring payload. It is shared with the GTP
// comparator, which produces the same pruned trees by structural joins.
type Element struct {
	ID       dewey.ID
	Tag      string
	Value    string
	HasValue bool
	ByteLen  int
	TFs      []int
	NeedV    bool
	NeedC    bool

	listed bool // already appended to the generator's output
}

type emitInfo = Element

type generator struct {
	q      *qpt.QPT
	lists  *Lists
	stack  []*ctNode
	out    []*emitInfo
	filter *KeywordFilter
	// layout is the QPT's DescendantMap bit layout, computed once per QPT
	// (qpt.MandatoryLayout) and shared read-only across generator runs.
	layout *qpt.MandLayout
	// free lists: CT nodes and items die when finalized, so the generator
	// recycles them to keep the merge allocation-free in steady state. The
	// generator itself is recycled through genPool, so the free lists (and
	// the merge cursors and emission-record chunks below) survive across
	// documents and searches.
	nodePool []*ctNode
	itemPool []*ctItem
	cursors  []int
	recChunk []emitInfo
	// tfChunk arenas the per-'c'-node TF slices. Unlike the scratch above
	// it escapes into the PDT's NodeMeta payloads (which outlive the run,
	// e.g. in SkipMaterialize results), so reset drops it instead of
	// recycling it — the win is one allocation per chunk, not per node.
	tfChunk []int
}

// genPool recycles generators across GenerateFiltered calls: a search runs
// one generation per candidate document, and the Candidate-Tree scratch
// (stack, free lists, cursors) is identical in shape every time.
var genPool = sync.Pool{New: func() any { return &generator{} }}

// record returns the node's emission record, carving it from the
// generator's chunk arena on first use. Payload fields are final by the
// time any emission can happen, because an element's own postings always
// precede its descendants in Dewey order. Records are referenced only
// until the PDT is assembled, so the chunks are recycled with the
// generator.
func (g *generator) record(n *ctNode) *emitInfo {
	if n.rec == nil {
		if len(g.recChunk) == cap(g.recChunk) {
			g.recChunk = make([]emitInfo, 0, 256)
		}
		g.recChunk = append(g.recChunk, emitInfo{
			ID:       n.id,
			Tag:      n.tag,
			Value:    n.value,
			HasValue: n.hasValue,
			ByteLen:  n.byteLen,
			TFs:      n.tfs,
		})
		n.rec = &g.recChunk[len(g.recChunk)-1]
	}
	return n.rec
}

// KeywordFilter enables the monotone special case of the paper's "avoid
// producing pruned view elements that do not make it to the top few
// results" future-work direction (§7): for selection views, a view result
// is exactly one base element, so an element of Node whose subtree lacks a
// required keyword can be skipped during PDT generation — it can never be
// a query result. Joins and nesting make this unsound in general (the
// paper's non-monotonicity discussion), so callers only pass a filter for
// selection-shaped views.
type KeywordFilter struct {
	Node *qpt.Node
	// Conjunctive requires every keyword in the element; otherwise any.
	Conjunctive bool
}

// Generate builds the PDT for one QPT over one document's prepared lists,
// using only index data (no base-document access).
func Generate(q *qpt.QPT, lists *Lists, sourceName string) *PDT {
	return GenerateFiltered(q, lists, sourceName, nil)
}

// GenerateFiltered is Generate with an optional keyword filter for
// selection views. Generators are recycled through a pool: the Candidate
// Tree scratch, free lists and emission-record chunks survive across
// candidate documents, so steady-state generation allocates only for the
// PDT it emits.
func GenerateFiltered(q *qpt.QPT, lists *Lists, sourceName string, filter *KeywordFilter) *PDT {
	g := genPool.Get().(*generator)
	g.q, g.lists, g.filter, g.layout = q, lists, filter, q.MandatoryLayout()
	// Virtual root CT node: the document itself, always in the PDT.
	rootItem := &ctItem{q: q.Root, inPdt: true, need: g.layout.Count[q.Root]}
	rootItem.candidate = rootItem.need == 0
	virtual := &ctNode{depth: 0, items: []*ctItem{rootItem}}
	rootItem.owner = virtual
	g.stack = append(g.stack[:0], virtual)

	g.mergeLists()

	// End of input: drain everything above the virtual root.
	for len(g.stack) > 1 {
		g.finalize(g.pop())
	}
	// The document itself is always "in the PDT": flush its cache.
	for _, x := range sortEntries(virtual.cache) {
		for _, gr := range x.groups {
			if anyPLInPdt(gr.pl) {
				g.emit(x.info, gr.q)
			}
		}
	}
	pdt := g.build(sourceName)
	g.reset()
	genPool.Put(g)
	return pdt
}

// reset clears the per-run state while keeping the recycled scratch (free
// lists, cursor and record chunks, slice backings) for the next run.
func (g *generator) reset() {
	g.q, g.lists, g.filter, g.layout = nil, nil, nil, nil
	g.stack = g.stack[:0]
	for i := range g.out {
		g.out[i] = nil
	}
	g.out = g.out[:0]
	// Records emitted in previous runs are dead once their PDT is
	// assembled; reuse the final chunk's storage.
	g.recChunk = g.recChunk[:0]
	// TF payloads escaped into the PDT: drop the arena, never reuse it.
	g.tfChunk = nil
}

// mergeLists is the single k-way merge pass over the ordered ID lists.
func (g *generator) mergeLists() {
	for len(g.cursors) < len(g.lists.Paths) {
		g.cursors = append(g.cursors, 0)
	}
	cursors := g.cursors[:len(g.lists.Paths)]
	for i := range cursors {
		cursors[i] = 0
	}
	for {
		minIdx := -1
		for i, pl := range g.lists.Paths {
			if cursors[i] >= len(pl.Postings) {
				continue
			}
			if minIdx < 0 ||
				dewey.Less(pl.Postings[cursors[i]].ID, g.lists.Paths[minIdx].Postings[cursors[minIdx]].ID) {
				minIdx = i
			}
		}
		if minIdx < 0 {
			return
		}
		pl := g.lists.Paths[minIdx]
		g.insert(pl, pl.Postings[cursors[minIdx]])
		cursors[minIdx]++
	}
}

// insert pushes the element (and its matched prefixes) onto the CT,
// finalizing nodes that are no longer ancestors of the incoming ID.
func (g *generator) insert(pl *PathList, posting pathindex.Posting) {
	id := posting.ID
	// Pop completed branches: everything on the stack that is not a prefix
	// of the incoming ID has seen all of its descendants.
	for len(g.stack) > 1 {
		top := g.stack[len(g.stack)-1]
		if id.HasPrefix(top.id) && len(top.id) < len(id) {
			break
		}
		if dewey.Equal(top.id, id) {
			break // same element arriving from another list
		}
		g.finalize(g.pop())
	}
	// Push matched prefixes not yet on the stack.
	for d := 1; d <= len(id); d++ {
		if g.onStack(d) != nil {
			continue
		}
		qnodes := g.filterQNodes(pl.Matches[d-1], id.Prefix(d))
		if len(qnodes) == 0 {
			continue
		}
		g.push(id.Prefix(d), d, pl.Segs[d-1], qnodes)
	}
	// The target node: structural matches may exclude the list's own QPT
	// node when it carries predicates (those items exist only because this
	// posting passed the predicate-filtered lookup).
	target := g.onStack(len(id))
	if target == nil {
		if len(pl.QNode.Preds) == 0 {
			return // element matched no QPT node (stale prefix)
		}
		g.push(id, len(id), pl.Segs[len(id)-1], nil)
		target = g.stack[len(g.stack)-1]
	}
	if len(pl.QNode.Preds) > 0 && !target.hasItemFor(pl.QNode) {
		if g.filter == nil || pl.QNode != g.filter.Node || g.keywordEligible(id) {
			g.addItem(target, pl.QNode)
		}
	}
	// Attach the posting payload.
	if posting.HasValue && !target.hasValue {
		target.value = posting.Value
		target.hasValue = true
	}
	if posting.ByteLen > 0 {
		target.byteLen = posting.ByteLen
	}
	if pl.QNode.V {
		target.needV = true
	}
	if pl.QNode.C {
		target.needC = true
	}
	if target.needC && target.tfs == nil {
		target.tfs = g.subtreeTFs(target.id)
	}
}

// filterQNodes drops the keyword filter's node from a match set when the
// element's subtree cannot satisfy the keyword semantics. The input slice
// is shared across postings and never mutated.
func (g *generator) filterQNodes(qnodes []*qpt.Node, id dewey.ID) []*qpt.Node {
	if g.filter == nil {
		return qnodes
	}
	for i, q := range qnodes {
		if q == g.filter.Node && !g.keywordEligible(id) {
			out := make([]*qpt.Node, 0, len(qnodes)-1)
			out = append(out, qnodes[:i]...)
			return append(out, qnodes[i+1:]...)
		}
	}
	return qnodes
}

// keywordEligible checks the subtree term frequencies of id against the
// keyword filter (index-only).
func (g *generator) keywordEligible(id dewey.ID) bool {
	if len(g.lists.Inv) == 0 {
		return true
	}
	for _, pl := range g.lists.Inv {
		has := pl.ContainsSubtree(id)
		if g.filter.Conjunctive && !has {
			return false
		}
		if !g.filter.Conjunctive && has {
			return true
		}
	}
	return g.filter.Conjunctive
}

func (n *ctNode) hasItemFor(q *qpt.Node) bool {
	for _, it := range n.items {
		if it.q == q {
			return true
		}
	}
	return false
}

// onStack returns the stack node at the given Dewey depth, or nil. The
// stack holds only matched prefixes, so depths are sparse.
func (g *generator) onStack(depth int) *ctNode {
	for i := len(g.stack) - 1; i >= 1; i-- {
		n := g.stack[i]
		if n.depth == depth {
			return n
		}
		if n.depth < depth {
			return nil
		}
	}
	return nil
}

func (g *generator) pop() *ctNode {
	n := g.stack[len(g.stack)-1]
	g.stack = g.stack[:len(g.stack)-1]
	return n
}

// push creates the CT node for one matched prefix, wiring one ctItem per
// matching QPT node with its ParentList (respecting the edge axis) and
// DescendantMap.
func (g *generator) push(id dewey.ID, depth int, tag string, qnodes []*qpt.Node) {
	var n *ctNode
	if len(g.nodePool) > 0 {
		n = g.nodePool[len(g.nodePool)-1]
		g.nodePool = g.nodePool[:len(g.nodePool)-1]
	} else {
		n = &ctNode{}
	}
	n.id, n.depth, n.tag = id, depth, tag
	g.stack = append(g.stack, n)
	for _, qn := range qnodes {
		g.addItem(n, qn)
	}
}

// release recycles a finalized CT node and its items. Safe because after
// finalize nothing references the structs themselves: cache-entry
// ParentLists are rewritten to live ancestors before the node pops, and the
// emission record has its own allocation. The pl slice backings must NOT be
// reused, though — pending cache-entry groups alias them (finalize hands
// item.pl to entryGroups), so a recycled item appending into an old backing
// would corrupt a live group's ParentList.
func (g *generator) release(n *ctNode) {
	for _, it := range n.items {
		*it = ctItem{}
		g.itemPool = append(g.itemPool, it)
	}
	items := n.items[:0]
	*n = ctNode{}
	n.items = items
	g.nodePool = append(g.nodePool, n)
}

// addItem wires one ctItem for a QPT node onto an existing CT node,
// building its ParentList from the strict ancestors currently on the stack
// (depth-adjacent for '/' edges, any ancestor for '//').
func (g *generator) addItem(n *ctNode, qn *qpt.Node) {
	var item *ctItem
	if len(g.itemPool) > 0 {
		item = g.itemPool[len(g.itemPool)-1]
		g.itemPool = g.itemPool[:len(g.itemPool)-1]
	} else {
		item = &ctItem{}
	}
	item.q, item.owner, item.need = qn, n, g.layout.Count[qn]
	parentQ := g.q.Root
	axis := pathindex.Child
	if qn.Parent != nil {
		parentQ = qn.Parent.From
		axis = qn.Parent.Axis
	}
	for _, anc := range g.stack {
		if anc.depth >= n.depth {
			continue // strict ancestors only
		}
		if axis == pathindex.Child && anc.depth != n.depth-1 {
			continue
		}
		for _, ai := range anc.items {
			if ai.q == parentQ {
				item.pl = append(item.pl, ai)
			}
		}
	}
	n.items = append(n.items, item)
	if qn.V {
		n.needV = true
	}
	if qn.C {
		n.needC = true
	}
}

// subtreeTFs aggregates per-keyword term frequencies for the subtree of id
// from the inverted lists (index-only, O(log n) per keyword). The slices
// are carved full-capacity from tfChunk, whose chunks live as long as the
// PDT payloads referencing them.
func (g *generator) subtreeTFs(id dewey.ID) []int {
	n := len(g.lists.Inv)
	if cap(g.tfChunk)-len(g.tfChunk) < n {
		size := 256
		if n > size {
			size = n
		}
		g.tfChunk = make([]int, 0, size)
	}
	start := len(g.tfChunk)
	g.tfChunk = g.tfChunk[:start+n]
	tfs := g.tfChunk[start : start+n : start+n]
	for i, pl := range g.lists.Inv {
		tfs[i] = pl.SubtreeTF(id)
	}
	return tfs
}

// finalize is called when a CT node has seen all of its descendants: decide
// candidacy (descendant constraints), propagate DescendantMap bits to
// parents, resolve or defer the ancestor constraints, and process the
// node's own PdtCache (Figure 27).
func (g *generator) finalize(n *ctNode) {
	parent := g.stack[len(g.stack)-1]
	var pending []*entryGroup
	for _, item := range n.items {
		if item.need > 0 {
			continue // descendant constraints unsatisfiable: failed
		}
		if !item.candidate {
			item.candidate = true
			g.propagate(item)
		}
		// Ancestor constraint: some parent item already in the PDT? The
		// propagation above may have promoted ancestors (the paper's InPdt
		// optimization), so mandatory chains usually resolve right here.
		if !item.inPdt {
			for _, p := range item.pl {
				if p.inPdt {
					item.inPdt = true
					break
				}
			}
		}
		if item.inPdt {
			g.emit(g.record(n), item.q)
		} else if len(item.pl) > 0 {
			pending = append(pending, &entryGroup{q: item.q, pl: item.pl})
		}
	}
	if len(pending) > 0 {
		parent.cache = append(parent.cache, &cacheEntry{info: g.record(n), groups: pending})
	}
	// Process the node's PdtCache: entry groups reference items of n or of
	// live ancestors (the upward-rewrite invariant).
	for _, x := range sortEntries(n.cache) {
		var remaining []*entryGroup
		for _, gr := range x.groups {
			if anyPLInPdt(gr.pl) {
				g.emit(x.info, gr.q)
				continue
			}
			var lifted []*ctItem
			for _, p := range gr.pl {
				if p.owner != n {
					lifted = append(lifted, p)
					continue
				}
				if p.candidate {
					// The group's hope now rests on p's own parents
					// (Figure 27 line 28: x.PL.replace(q, q.PL)).
					lifted = append(lifted, p.pl...)
				}
				// failed items contribute nothing
			}
			if len(lifted) > 0 {
				gr.pl = dedupeItems(lifted)
				remaining = append(remaining, gr)
			}
		}
		if len(remaining) > 0 {
			x.groups = remaining
			parent.cache = append(parent.cache, x)
		}
	}
	n.cache = nil
	g.release(n)
}

// propagate sets the DescendantMap bit of every parent item and cascades
// candidate promotion upward; promoted ancestors whose own ancestor
// constraints are already resolved become InPdt immediately and are emitted
// (paper §4.2.2.1), which is what lets descendants emit directly instead of
// travelling through PdtCaches.
func (g *generator) propagate(item *ctItem) {
	bit := g.layout.Bit[item.q]
	if bit == 0 {
		return // item.q is an optional child: no DescendantMap entry
	}
	for _, p := range item.pl {
		if p.dm&bit != 0 {
			continue
		}
		p.dm |= bit
		p.need--
		if p.need == 0 && !p.candidate {
			p.candidate = true
			g.propagate(p)
			if !p.inPdt {
				for _, pp := range p.pl {
					if pp.inPdt {
						p.inPdt = true
						g.emit(g.record(p.owner), p.q)
						break
					}
				}
			}
		}
	}
}

func anyPLInPdt(pl []*ctItem) bool {
	for _, p := range pl {
		if p.inPdt {
			return true
		}
	}
	return false
}

// dedupeItems removes duplicate items in place. ParentLists are a handful
// of entries, so the quadratic scan beats allocating a set.
func dedupeItems(items []*ctItem) []*ctItem {
	if len(items) < 2 {
		return items
	}
	out := items[:0]
	for _, it := range items {
		dup := false
		for _, o := range out {
			if o == it {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, it)
		}
	}
	return out
}

func sortEntries(entries []*cacheEntry) []*cacheEntry {
	sort.SliceStable(entries, func(i, j int) bool {
		return dewey.Less(entries[i].info.ID, entries[j].info.ID)
	})
	return entries
}

// emit records the element as a PDT member qualified via QPT node q,
// merging the annotations of multiple qualifying nodes.
func (g *generator) emit(rec *emitInfo, q *qpt.Node) {
	if !rec.listed {
		rec.listed = true
		rec.NeedV = false
		rec.NeedC = false
		g.out = append(g.out, rec)
	}
	rec.NeedV = rec.NeedV || q.V
	rec.NeedC = rec.NeedC || q.C
}

// build sorts the emitted elements and assembles the pruned document.
func (g *generator) build(sourceName string) *PDT {
	sort.Slice(g.out, func(i, j int) bool { return dewey.Less(g.out[i].ID, g.out[j].ID) })
	return assemble(g.out, sourceName)
}

// BuildPruned assembles a pruned document from an element list (in any
// order). It is used by the GTP comparator, which derives the same element
// sets through structural joins.
func BuildPruned(elements []*Element, sourceName string) *PDT {
	sorted := append([]*Element(nil), elements...)
	sort.Slice(sorted, func(i, j int) bool { return dewey.Less(sorted[i].ID, sorted[j].ID) })
	return assemble(sorted, sourceName)
}

// assemble turns a Dewey-sorted element list into a pruned xmltree
// document: every element's parent is its closest emitted ancestor
// (Definition 3). Nodes and scoring payloads are carved from slabs sized
// by the element list, so assembling a PDT costs a fixed handful of
// allocations plus child-slice growth.
func assemble(infos []*emitInfo, sourceName string) *PDT {
	pdt := &PDT{SourceName: sourceName}
	if len(infos) == 0 {
		return pdt
	}
	slab := make([]xmltree.Node, len(infos))
	nMeta := 0
	for _, info := range infos {
		if info.NeedC {
			nMeta++
		}
	}
	metaSlab := make([]xmltree.NodeMeta, 0, nMeta)
	var root *xmltree.Node
	chain := make([]*xmltree.Node, 0, 16) // current root-to-leaf construction chain
	for i, info := range infos {
		node := &slab[i]
		node.Tag, node.ID, node.ByteLen = info.Tag, info.ID, info.ByteLen
		if info.NeedV && info.HasValue {
			node.Value = info.Value
		}
		if info.NeedC {
			metaSlab = append(metaSlab, xmltree.NodeMeta{SrcID: info.ID, SrcLen: info.ByteLen, TFs: info.TFs})
			node.Meta = &metaSlab[len(metaSlab)-1]
		}
		pdt.Nodes++
		pdt.Bytes += 2*len(info.Tag) + 5 + len(node.Value)
		// pop chain until top is an ancestor of node
		for len(chain) > 0 && !chain[len(chain)-1].ID.IsAncestorOf(info.ID) {
			chain = chain[:len(chain)-1]
		}
		if len(chain) == 0 {
			if root != nil {
				// Multiple top-level emitted elements cannot happen within
				// one document (the document root is their common prefix),
				// but guard defensively by keeping the first.
				continue
			}
			root = node
		} else {
			parent := chain[len(chain)-1]
			node.Parent = parent
			parent.Children = append(parent.Children, node)
		}
		chain = append(chain, node)
	}
	pdt.Doc = &xmltree.Document{Name: sourceName, Root: root, DocID: root.ID[0]}
	return pdt
}
