// Microbenchmark for PDT generation — the per-candidate-document inner
// loop of every Efficient search. vxmlbench's figure scenarios measure the
// same pipeline end to end; this isolates Generate (merge + Candidate Tree
// maintenance + emission) over prepared lists.
package pdt

import (
	"fmt"
	"strings"
	"testing"

	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/xmltree"
	"vxml/internal/xq"

	"vxml/internal/qpt"
)

func benchWorkload(b *testing.B, articles int) (*qpt.QPT, *Lists) {
	b.Helper()
	var sb strings.Builder
	sb.WriteString("<books>")
	for i := 0; i < articles; i++ {
		fmt.Fprintf(&sb,
			"<book><isbn>%d</isbn><title>xml search volume %d</title><year>%d</year></book>",
			i, i, 1990+i%20)
	}
	sb.WriteString("</books>")
	doc, err := xmltree.ParseString(sb.String(), "books.xml", 1)
	if err != nil {
		b.Fatal(err)
	}
	q, err := xq.Parse(`
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <r>{$book/isbn}, {$book/title}</r>`)
	if err != nil {
		b.Fatal(err)
	}
	qpts, err := qpt.Generate(q.Body, q.Functions)
	if err != nil {
		b.Fatal(err)
	}
	lists := PrepareLists(qpts[0], pathindex.Build(doc), invindex.Build(doc), []string{"xml", "search"})
	return qpts[0], lists
}

func BenchmarkGenerate(b *testing.B) {
	q, lists := benchWorkload(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := Generate(q, lists, "books.xml"); p.Nodes == 0 {
			b.Fatal("empty PDT")
		}
	}
}
