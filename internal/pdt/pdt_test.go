package pdt

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vxml/internal/dewey"
	"vxml/internal/invindex"
	"vxml/internal/pathindex"
	"vxml/internal/pred"
	"vxml/internal/qpt"
	"vxml/internal/xmltree"
	"vxml/internal/xq"
)

const booksXML = `<books>
  <book><isbn>111-11-1111</isbn><title>XML Web Services</title><year>1996</year></book>
  <book><isbn>222-22-2222</isbn><title>Ancient History</title><year>1990</year></book>
  <book><isbn>333-33-3333</isbn><title>Search Engines</title><year>2004</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111-11-1111</isbn><content>all about search</content></review>
  <review><content>orphan review with xml</content></review>
  <review><isbn>333-33-3333</isbn><content>an xml search classic</content></review>
</reviews>`

const figure2View = `
for $book in fn:doc(books.xml)/books//book
where $book/year > 1995
return <bookrevs>
         <book> {$book/title} </book>,
         {for $rev in fn:doc(reviews.xml)/reviews//review
          where $rev/isbn = $book/isbn
          return $rev/content}
       </bookrevs>`

func parseDoc(t *testing.T, xmlText, name string, docID int32) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString(xmlText, name, docID)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func generateFor(t *testing.T, doc *xmltree.Document, q *qpt.QPT, keywords []string) *PDT {
	t.Helper()
	pix := pathindex.Build(doc)
	iix := invindex.Build(doc)
	lists := PrepareLists(q, pix, iix, keywords)
	return Generate(q, lists, doc.Name)
}

func viewQPTs(t *testing.T, view string) []*qpt.QPT {
	t.Helper()
	q, err := xq.Parse(view)
	if err != nil {
		t.Fatal(err)
	}
	qpts, err := qpt.Generate(q.Body, q.Functions)
	if err != nil {
		t.Fatal(err)
	}
	return qpts
}

// TestFigure6bBooks mirrors the paper's Figure 6(b): the book PDT keeps
// only books passing the year predicate, materializes isbn and year values,
// and attaches tf payloads to title elements.
func TestFigure6bBooks(t *testing.T) {
	books := parseDoc(t, booksXML, "books.xml", 1)
	qpts := viewQPTs(t, figure2View)
	pdt := generateFor(t, books, qpts[0], []string{"xml", "search"})
	if pdt.Doc == nil {
		t.Fatal("empty PDT")
	}
	root := pdt.Doc.Root
	if root.Tag != "books" || len(root.Children) != 2 {
		t.Fatalf("root = %s with %d children", root.Tag, len(root.Children))
	}
	book1, book3 := root.Children[0], root.Children[1]
	if book1.ID.String() != "1.1" || book3.ID.String() != "1.3" {
		t.Fatalf("kept books %s, %s (year predicate should drop 1.2)", book1.ID, book3.ID)
	}
	// isbn ('v') has its value; year ('v') has its value; title ('c') has
	// tf payload but no value.
	byTag := map[string]*xmltree.Node{}
	for _, c := range book1.Children {
		byTag[c.Tag] = c
	}
	if byTag["isbn"] == nil || byTag["isbn"].Value != "111-11-1111" {
		t.Errorf("isbn = %+v", byTag["isbn"])
	}
	if byTag["year"] == nil || byTag["year"].Value != "1996" {
		t.Errorf("year = %+v", byTag["year"])
	}
	title := byTag["title"]
	if title == nil || title.Meta == nil {
		t.Fatalf("title = %+v", title)
	}
	if title.Value != "" {
		t.Errorf("title value should be pruned, got %q", title.Value)
	}
	// "XML Web Services": tf(xml)=1, tf(search)=0
	if title.Meta.TFs[0] != 1 || title.Meta.TFs[1] != 0 {
		t.Errorf("title TFs = %v", title.Meta.TFs)
	}
	if title.Meta.SrcLen == 0 || !dewey.Equal(title.Meta.SrcID, title.ID) {
		t.Errorf("title Meta = %+v", title.Meta)
	}
}

// TestFigure6bReviews: reviews without an isbn fail the mandatory edge, and
// their content is excluded by the ancestor constraint even though content
// itself has no constraints.
func TestFigure6bReviews(t *testing.T) {
	reviews := parseDoc(t, reviewsXML, "reviews.xml", 2)
	qpts := viewQPTs(t, figure2View)
	pdt := generateFor(t, reviews, qpts[1], []string{"xml", "search"})
	root := pdt.Doc.Root
	if len(root.Children) != 2 {
		t.Fatalf("kept %d reviews, want 2 (orphan must be pruned)", len(root.Children))
	}
	for _, rev := range root.Children {
		if rev.ID.String() == "2.2" {
			t.Error("review without isbn must not be in the PDT")
		}
		var hasIsbn, hasContent bool
		for _, c := range rev.Children {
			if c.Tag == "isbn" && c.Value != "" {
				hasIsbn = true
			}
			if c.Tag == "content" && c.Meta != nil {
				hasContent = true
			}
		}
		if !hasIsbn || !hasContent {
			t.Errorf("review %s missing isbn value or content meta", rev.ID)
		}
	}
	// content of review 2.3: "an xml search classic" -> tf(xml)=1, tf(search)=1
	last := root.Children[1]
	for _, c := range last.Children {
		if c.Tag == "content" {
			if c.Meta.TFs[0] != 1 || c.Meta.TFs[1] != 1 {
				t.Errorf("content TFs = %v", c.Meta.TFs)
			}
		}
	}
}

func TestEmptyPDT(t *testing.T) {
	books := parseDoc(t, booksXML, "books.xml", 1)
	qpts := viewQPTs(t, `
for $b in fn:doc(books.xml)/books//book
where $b/year > 2100
return $b/title`)
	pdt := generateFor(t, books, qpts[0], nil)
	if pdt.Doc != nil && pdt.Doc.Root != nil {
		t.Errorf("expected empty PDT, got %d nodes", pdt.Nodes)
	}
}

func TestPDTMuchSmallerThanDoc(t *testing.T) {
	// The paper reports ~2MB PDTs from 500MB data; at small scale the PDT
	// must still contain only QPT-relevant elements.
	var b strings.Builder
	b.WriteString("<books>")
	for i := 0; i < 200; i++ {
		year := 1980 + i%40
		fmt.Fprintf(&b, "<book><isbn>i%d</isbn><title>t%d</title><year>%d</year>", i, i, year)
		// noise subtree that no QPT node matches
		for j := 0; j < 10; j++ {
			fmt.Fprintf(&b, "<noise><deep><deeper>text %d %d</deeper></deep></noise>", i, j)
		}
		b.WriteString("</book>")
	}
	b.WriteString("</books>")
	doc := parseDoc(t, b.String(), "books.xml", 1)
	qpts := viewQPTs(t, figure2View)
	pdt := generateFor(t, doc, qpts[0], []string{"xml"})
	total := doc.ComputeStats().Elements
	if pdt.Nodes >= total/3 {
		t.Errorf("PDT has %d nodes of %d total; pruning ineffective", pdt.Nodes, total)
	}
}

func TestRepeatedTagsDeepPath(t *testing.T) {
	// QPT //a//a over /a/a/a: the middle element matches both QPT nodes.
	doc := parseDoc(t, `<a><a><a><x>v</x></a></a></a>`, "r.xml", 1)
	qpts := viewQPTs(t, `for $v in fn:doc(r.xml)//a//a return $v`)
	pdt := generateFor(t, doc, qpts[0], nil)
	ref := Reference(qpts[0], doc, nil)
	if got, want := render(pdt), render(ref); got != want {
		t.Errorf("repeated tags:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// PE(//a, outer) = {1, 1.1} (must have an 'a' descendant); PE(//a,
	// inner) = {1.1, 1.1.1} (must have an 'a' ancestor); the PDT is their
	// union.
	if pdt.Nodes != 3 {
		t.Errorf("PDT nodes = %d:\n%s", pdt.Nodes, render(pdt))
	}
}

func TestMandatoryDescendantAxis(t *testing.T) {
	doc := parseDoc(t, `<r><g><b><c>x</c></b></g><g><b>no c</b></g></r>`, "r.xml", 1)
	qpts := viewQPTs(t, `for $g in fn:doc(r.xml)/r/g where $g//c = 'x' return $g`)
	pdt := generateFor(t, doc, qpts[0], nil)
	ref := Reference(qpts[0], doc, nil)
	if got, want := render(pdt), render(ref); got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
	if pdt.Doc == nil || len(pdt.Doc.Root.Children) != 1 {
		t.Fatalf("expected exactly one g:\n%s", render(pdt))
	}
}

// render dumps a PDT deterministically for comparisons.
func render(p *PDT) string {
	if p.Doc == nil || p.Doc.Root == nil {
		return "(empty)"
	}
	var b strings.Builder
	var walk func(n *xmltree.Node, depth int)
	walk = func(n *xmltree.Node, depth int) {
		b.WriteString(strings.Repeat(" ", depth))
		fmt.Fprintf(&b, "%s id=%s", n.Tag, n.ID)
		if n.Value != "" {
			fmt.Fprintf(&b, " val=%q", n.Value)
		}
		if n.Meta != nil {
			fmt.Fprintf(&b, " tf=%v len=%d", n.Meta.TFs, n.Meta.SrcLen)
		}
		b.WriteString("\n")
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(p.Doc.Root, 0)
	return b.String()
}

// ---------------------------------------------------------------- random --

// randomDoc builds documents over a small tag alphabet with values drawn
// from a tiny vocabulary, so predicates and keywords both hit.
func randomDoc(r *rand.Rand, docID int32) *xmltree.Document {
	tags := []string{"a", "b", "c", "d"}
	words := []string{"xml", "search", "data", "1", "2", "3"}
	var build func(depth int) *xmltree.Node
	build = func(depth int) *xmltree.Node {
		n := xmltree.NewElement(tags[r.Intn(len(tags))])
		if depth <= 0 || r.Intn(3) == 0 {
			n.Value = words[r.Intn(len(words))]
			return n
		}
		for i := 0; i < 1+r.Intn(3); i++ {
			n.AppendChild(build(depth - 1))
		}
		return n
	}
	root := xmltree.NewElement("r")
	for i := 0; i < 2+r.Intn(3); i++ {
		root.AppendChild(build(2 + r.Intn(2)))
	}
	doc := &xmltree.Document{Name: "r.xml", Root: root, DocID: docID}
	doc.Finalize()
	return doc
}

// randomQPT builds a random valid QPT: predicates only on leaves, root
// anchored at the document.
func randomQPT(r *rand.Rand) *qpt.QPT {
	tags := []string{"a", "b", "c", "d"}
	q := &qpt.QPT{Doc: "r.xml", Root: &qpt.Node{}}
	rootElem := addQPTChild(q.Root, "r", pathindex.Child, true)
	var grow func(n *qpt.Node, depth int)
	grow = func(n *qpt.Node, depth int) {
		kids := 1 + r.Intn(2)
		for i := 0; i < kids; i++ {
			axis := pathindex.Child
			if r.Intn(2) == 0 {
				axis = pathindex.Descendant
			}
			child := addQPTChild(n, tags[r.Intn(len(tags))], axis, r.Intn(2) == 0)
			if depth > 0 && r.Intn(2) == 0 {
				grow(child, depth-1)
			} else {
				// leaf: random annotations, sometimes a predicate
				child.V = r.Intn(2) == 0
				child.C = r.Intn(2) == 0
				if r.Intn(3) == 0 {
					child.Preds = []pred.Predicate{{Op: pred.Eq, Lit: []string{"xml", "1", "2"}[r.Intn(3)]}}
					child.V = true
				}
			}
		}
	}
	grow(rootElem, 2)
	return q
}

func addQPTChild(n *qpt.Node, tag string, axis pathindex.Axis, mandatory bool) *qpt.Node {
	child := &qpt.Node{Tag: tag}
	e := &qpt.Edge{From: n, Child: child, Axis: axis, Mandatory: mandatory}
	child.Parent = e
	n.Edges = append(n.Edges, e)
	return child
}

// TestQuickGenerateEqualsReference is the central correctness property:
// the single-pass index-only merge produces exactly the PDT defined by
// Definitions 1-3 over the materialized document.
func TestQuickGenerateEqualsReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, 1)
		q := randomQPT(r)
		keywords := []string{"xml", "search"}
		pix := pathindex.Build(doc)
		iix := invindex.Build(doc)
		lists := PrepareLists(q, pix, iix, keywords)
		got := render(Generate(q, lists, doc.Name))
		want := render(Reference(q, doc, keywords))
		if got != want {
			t.Logf("seed %d\nQPT:\n%s\ndoc:\n%s\ngot:\n%s\nwant:\n%s",
				seed, q, doc.Root.XMLString("  "), got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTFsMatchMaterialized: tf payloads of 'c' nodes equal term
// frequencies computed over the materialized subtrees (Theorem 4.1(c)).
func TestQuickTFsMatchMaterialized(t *testing.T) {
	keywords := []string{"xml", "search", "data"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		doc := randomDoc(r, 1)
		q := randomQPT(r)
		pix := pathindex.Build(doc)
		iix := invindex.Build(doc)
		pdt := Generate(q, PrepareLists(q, pix, iix, keywords), doc.Name)
		if pdt.Doc == nil {
			return true
		}
		ok := true
		pdt.Doc.Root.Walk(func(n *xmltree.Node) {
			if n.Meta == nil {
				return
			}
			base := doc.FindByID(n.Meta.SrcID)
			if base == nil {
				ok = false
				return
			}
			want := xmltree.SubtreeTF(base, keywords)
			for i := range keywords {
				if n.Meta.TFs[i] != want[i] {
					ok = false
				}
			}
			if n.Meta.SrcLen != base.ByteLen {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickPrepareListsProbeCountIndependentOfData: the number of path
// index probes depends on the QPT, not on the document size.
func TestQuickPrepareListsProbeCountIndependentOfData(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	q := randomQPT(r)
	var counts []int
	for _, size := range []int{1, 5, 25} {
		root := xmltree.NewElement("r")
		for i := 0; i < size; i++ {
			sub := randomDoc(r, 1)
			root.AppendChild(sub.Root)
		}
		doc := &xmltree.Document{Name: "r.xml", Root: root, DocID: 1}
		doc.Finalize()
		pix := pathindex.Build(doc)
		iix := invindex.Build(doc)
		before := pix.Probes()
		PrepareLists(q, pix, iix, []string{"xml"})
		counts = append(counts, pix.Probes()-before)
	}
	// Probe counts may differ slightly because larger documents can have
	// more distinct full data paths for '//' expansion, but must stay tiny
	// and must not scale with element count.
	for _, c := range counts {
		if c > 64 {
			t.Errorf("probe counts %v scale with data size", counts)
		}
	}
}
