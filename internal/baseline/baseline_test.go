package baseline

import (
	"strings"
	"testing"

	"vxml/internal/core"
	"vxml/internal/store"
)

const booksXML = `<books>
  <book><isbn>111</isbn><title>XML Views</title><year>2004</year></book>
  <book><isbn>222</isbn><title>Old Almanac</title><year>1990</year></book>
</books>`

const reviewsXML = `<reviews>
  <review><isbn>111</isbn><content>search inside</content></review>
</reviews>`

const viewText = `
for $b in fn:doc(books.xml)/books//book
where $b/year > 1995
return <e>{$b/title},
  {for $r in fn:doc(reviews.xml)/reviews//review
   where $r/isbn = $b/isbn
   return $r/content}
</e>`

func engine(t *testing.T) (*core.Engine, *core.View) {
	t.Helper()
	st := store.New()
	if _, err := st.AddXML("books.xml", booksXML); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AddXML("reviews.xml", reviewsXML); err != nil {
		t.Fatal(err)
	}
	e := core.New(st)
	v, err := e.CompileView(viewText)
	if err != nil {
		t.Fatal(err)
	}
	return e, v
}

func TestBaselineSearch(t *testing.T) {
	e, v := engine(t)
	results, stats, err := Search(e, v, []string{"xml", "search"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	if !strings.Contains(results[0].Element.XMLString(""), "search inside") {
		t.Errorf("result = %s", results[0].Element.XMLString(""))
	}
	if stats.ViewResults != 1 || stats.Matched != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.MaterializeTime <= 0 {
		t.Error("materialization not timed")
	}
	// Materialization produced the serialized view.
	if stats.MaterializedBytes == 0 {
		t.Error("MaterializedBytes = 0; baseline must write out the view")
	}
}

func TestBaselineMatchesEfficientScores(t *testing.T) {
	e, v := engine(t)
	base, _, err := Search(e, v, []string{"xml"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eff, _, err := e.Search(v, []string{"xml"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(eff) {
		t.Fatalf("baseline %d vs efficient %d", len(base), len(eff))
	}
	for i := range base {
		if base[i].Score != eff[i].Score {
			t.Errorf("score[%d]: %f vs %f", i, base[i].Score, eff[i].Score)
		}
	}
}

func TestBaselineNoMatches(t *testing.T) {
	e, v := engine(t)
	results, stats, err := Search(e, v, []string{"nonexistentword"}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || stats.Matched != 0 {
		t.Errorf("expected no matches, got %d", len(results))
	}
	if stats.ViewResults != 1 {
		t.Errorf("view still has %d results", stats.ViewResults)
	}
}

func TestBaselineSkipMaterialize(t *testing.T) {
	e, v := engine(t)
	fetchesBefore := e.Store.SubtreeFetches()
	_, _, err := Search(e, v, []string{"xml"}, core.Options{SkipMaterialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.Store.SubtreeFetches() != fetchesBefore {
		t.Error("SkipMaterialize should avoid top-k subtree fetches")
	}
}
