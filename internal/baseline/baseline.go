// Package baseline implements the "Baseline" comparator of the paper's
// evaluation (§5.1): materialize the entire view over the base documents at
// query time, then tokenize, score and rank the materialized results. Its
// cost is dominated by view materialization, which is what Figure 13
// shows; its scores are by construction the ground truth that the
// Efficient pipeline must reproduce exactly (Theorem 4.1).
package baseline

import (
	"context"
	"fmt"
	"time"

	"vxml/internal/core"
	"vxml/internal/scoring"
	"vxml/internal/xmltree"
	"vxml/internal/xqeval"
)

// Stats reports the Baseline cost breakdown.
type Stats struct {
	MaterializeTime time.Duration // evaluating + writing out the view
	SearchTime      time.Duration // tokenizing, scoring and ranking
	ViewResults     int
	Matched         int
	// MaterializedBytes is the serialized size of the materialized view —
	// the write volume Efficient never produces.
	MaterializedBytes int
	// Candidates counts the documents the view's QPTs resolved to and
	// ShardsSearched the corpus shards whose read locks the run held (all
	// of them: the comparator brackets with Engine.RLock). Mirrors
	// core.Stats so dashboards read comparator runs the same way.
	Candidates     int
	ShardsSearched int
}

// Total returns the end-to-end time.
func (s *Stats) Total() time.Duration { return s.MaterializeTime + s.SearchTime }

// Search materializes the view and evaluates the ranked keyword query over
// the materialized results. It never cancels; use SearchContext for
// deadlines and cancellation.
func Search(e *core.Engine, v *core.View, keywords []string, opts core.Options) ([]core.Result, *Stats, error) {
	return SearchContext(context.Background(), e, v, keywords, opts)
}

// SearchContext is Search with cooperative cancellation: ctx is checked
// between FLWOR bindings during materialization (through the evaluator)
// and between winners afterwards, and the returned error wraps ctx.Err().
// The engine read locks are released before SearchContext returns.
func SearchContext(ctx context.Context, e *core.Engine, v *core.View, keywords []string, opts core.Options) ([]core.Result, *Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("baseline: search interrupted: %w", err)
	}
	e.RLock()
	defer e.RUnlock()
	stats := &Stats{ShardsSearched: e.Store.ShardCount()}
	for _, q := range v.QPTs {
		stats.Candidates += len(e.Store.DocsMatching(q.Doc))
	}
	kws := normalize(keywords)

	start := time.Now()
	ev := xqeval.New(storeCatalog{e}, v.Funcs)
	ev.HashJoin = !opts.DisableHashJoin
	ev.SetContext(ctx)
	items, err := ev.Eval(v.Expr, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: materializing view: %w", err)
	}
	var results []*xmltree.Node
	for _, it := range items {
		if n, ok := it.(*xmltree.Node); ok {
			results = append(results, n)
		}
	}
	// Materializing the view means producing the documents the keyword
	// search will run over: serialize every result (Quark's baseline spent
	// 58 of 59 seconds here on a 13MB input). The Efficient pipeline never
	// pays this.
	for _, n := range results {
		stats.MaterializedBytes += len(n.XMLString(""))
	}
	stats.MaterializeTime = time.Since(start)
	stats.ViewResults = len(results)

	start = time.Now()
	ranking := scoring.Rank(results, kws, !opts.Disjunctive, opts.K, scoring.FromBase)
	stats.Matched = ranking.Matched
	out := make([]core.Result, 0, len(ranking.Results))
	for i, sc := range ranking.Results {
		if err := ctx.Err(); err != nil {
			return nil, nil, fmt.Errorf("baseline: search interrupted: %w", err)
		}
		elem := sc.Result
		if !opts.SkipMaterialize {
			elem = scoring.Materialize(sc.Result, e.Store)
		}
		out = append(out, core.Result{Rank: i + 1, Score: sc.Score, TFs: sc.Stats.TFs, Element: elem})
	}
	stats.SearchTime = time.Since(start)
	return out, stats, nil
}

// storeCatalog evaluates the view directly over base documents; patterns
// resolve against the whole registered corpus in document ID order.
type storeCatalog struct{ e *core.Engine }

func (c storeCatalog) Doc(name string) *xmltree.Document { return c.e.Store.Doc(name) }

func (c storeCatalog) DocsMatching(pattern string) []*xmltree.Document {
	return c.e.Store.DocsMatching(pattern)
}

func normalize(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = core.NormalizeKeyword(k)
	}
	return out
}
