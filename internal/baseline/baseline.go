// Package baseline implements the "Baseline" comparator of the paper's
// evaluation (§5.1): materialize the entire view over the base documents at
// query time, then tokenize, score and rank the materialized results. Its
// cost is dominated by view materialization, which is what Figure 13
// shows; its scores are by construction the ground truth that the
// Efficient pipeline must reproduce exactly (Theorem 4.1).
package baseline

import (
	"fmt"
	"time"

	"vxml/internal/core"
	"vxml/internal/scoring"
	"vxml/internal/xmltree"
	"vxml/internal/xqeval"
)

// Stats reports the Baseline cost breakdown.
type Stats struct {
	MaterializeTime time.Duration // evaluating + writing out the view
	SearchTime      time.Duration // tokenizing, scoring and ranking
	ViewResults     int
	Matched         int
	// MaterializedBytes is the serialized size of the materialized view —
	// the write volume Efficient never produces.
	MaterializedBytes int
}

// Total returns the end-to-end time.
func (s *Stats) Total() time.Duration { return s.MaterializeTime + s.SearchTime }

// Search materializes the view and evaluates the ranked keyword query over
// the materialized results.
func Search(e *core.Engine, v *core.View, keywords []string, opts core.Options) ([]core.Result, *Stats, error) {
	e.RLock()
	defer e.RUnlock()
	stats := &Stats{}
	kws := normalize(keywords)

	start := time.Now()
	ev := xqeval.New(storeCatalog{e}, v.Funcs)
	ev.HashJoin = !opts.DisableHashJoin
	items, err := ev.Eval(v.Expr, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("baseline: materializing view: %w", err)
	}
	var results []*xmltree.Node
	for _, it := range items {
		if n, ok := it.(*xmltree.Node); ok {
			results = append(results, n)
		}
	}
	// Materializing the view means producing the documents the keyword
	// search will run over: serialize every result (Quark's baseline spent
	// 58 of 59 seconds here on a 13MB input). The Efficient pipeline never
	// pays this.
	for _, n := range results {
		stats.MaterializedBytes += len(n.XMLString(""))
	}
	stats.MaterializeTime = time.Since(start)
	stats.ViewResults = len(results)

	start = time.Now()
	ranking := scoring.Rank(results, kws, !opts.Disjunctive, opts.K, scoring.FromBase)
	stats.Matched = ranking.Matched
	out := make([]core.Result, 0, len(ranking.Results))
	for i, sc := range ranking.Results {
		elem := sc.Result
		if !opts.SkipMaterialize {
			elem = scoring.Materialize(sc.Result, e.Store)
		}
		out = append(out, core.Result{Rank: i + 1, Score: sc.Score, TFs: sc.Stats.TFs, Element: elem})
	}
	stats.SearchTime = time.Since(start)
	return out, stats, nil
}

// storeCatalog evaluates the view directly over base documents; patterns
// resolve against the whole registered corpus in document ID order.
type storeCatalog struct{ e *core.Engine }

func (c storeCatalog) Doc(name string) *xmltree.Document { return c.e.Store.Doc(name) }

func (c storeCatalog) DocsMatching(pattern string) []*xmltree.Document {
	return c.e.Store.DocsMatching(pattern)
}

func normalize(keywords []string) []string {
	out := make([]string, len(keywords))
	for i, k := range keywords {
		out[i] = core.NormalizeKeyword(k)
	}
	return out
}
