// The vxmlload/1 report: the machine-readable artifact of one load run,
// emitted into the same BENCH_*.json family as vxmlbench's reports and
// held to the same standard — strict structural validation before a byte
// reaches disk.
package loadkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"vxml/internal/benchkit"
)

// SchemaVersion identifies the report layout this package emits and
// Validate accepts. Validation is strict — unknown fields are rejected —
// so the version string fully determines the layout: bump it for ANY
// field change, additive included, and teach Validate the new layout in
// the same change.
const SchemaVersion = "vxmlload/1"

// Report is the output of one vxmlload run.
type Report struct {
	// Schema is SchemaVersion.
	Schema string `json:"schema"`
	// Spec names the scenario that ran; Description is its description.
	Spec        string `json:"spec"`
	Description string `json:"description,omitempty"`
	// GeneratedBy records the producing command for provenance.
	GeneratedBy string `json:"generated_by"`
	// Target is "self" for the in-process server or the external base URL.
	Target string `json:"target"`
	// DurationScale and RateScale record how the committed spec was scaled
	// for this run (1 = as written), so a CI tiny-scale report cannot be
	// mistaken for a full run.
	DurationScale float64 `json:"duration_scale"`
	RateScale     float64 `json:"rate_scale"`
	// Host describes the measuring process's environment (shared with
	// vxmlbench reports).
	Host benchkit.Host `json:"host"`
	// DurationMillis is the whole run's wall-clock time, drain included.
	DurationMillis int64 `json:"duration_ms"`
	// Phases holds one entry per executed phase, in spec order.
	Phases []PhaseReport `json:"phases"`
	// Overall aggregates every phase.
	Overall Totals `json:"overall"`
	// Errors counts failures by taxonomy key: exact "http_NNN" keys for
	// unexpected statuses, "transport" for requests that never got a
	// response, "stream_error_line" for in-band NDJSON errors,
	// "pathological_unexpected" for pathological requests the server did
	// NOT reject with a 4xx, and "oracle_mismatch" for spot checks that
	// diverged from the sequential oracle.
	Errors map[string]int64 `json:"errors,omitempty"`
	// Resources are the goroutine/heap ceilings sampled over the run.
	Resources Resources `json:"resources"`
	// Soak reports the churn loop, when the spec configured one.
	Soak *SoakReport `json:"soak,omitempty"`
	// Failures carries the first flagged requests, each with its captured
	// execution trace when POST /v1/explain could provide one.
	Failures []Failure `json:"failures,omitempty"`
}

// PhaseReport is one phase's measured traffic.
type PhaseReport struct {
	// Name is the phase's spec name.
	Name string `json:"name"`
	// DurationMillis is the phase's actual (scaled) wall-clock length.
	DurationMillis int64 `json:"duration_ms"`
	// Totals aggregates the phase's requests; Ops breaks them down by op
	// kind ("search", "stream", ...).
	Totals
	Ops map[string]OpStats `json:"ops,omitempty"`
}

// Totals aggregates requests over a window: counts, sustained QPS and the
// latency distribution.
type Totals struct {
	// Requests counts attempted requests; Errors the failed ones.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// QPS is completed requests per second of window time.
	QPS float64 `json:"qps"`
	// Latency summarizes every completed request's latency.
	Latency LatencySummary `json:"latency"`
}

// OpStats is one op kind's share of a phase.
type OpStats struct {
	// Requests counts attempts; Errors failures.
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Latency summarizes the op's completed requests.
	Latency LatencySummary `json:"latency"`
}

// LatencySummary is a histogram rendered to the quantiles the roadmap
// asks for. All values are microseconds.
type LatencySummary struct {
	// Count is the number of observations behind the quantiles.
	Count int64 `json:"count"`
	// MinMicros through MaxMicros are the distribution's summary points.
	MinMicros  int64 `json:"min_us"`
	MeanMicros int64 `json:"mean_us"`
	P50Micros  int64 `json:"p50_us"`
	P95Micros  int64 `json:"p95_us"`
	P99Micros  int64 `json:"p99_us"`
	P999Micros int64 `json:"p999_us"`
	MaxMicros  int64 `json:"max_us"`
}

// Resources are the process-level ceilings sampled while the run was in
// flight. In self-serve mode (the default) the server shares the process,
// so these bound the serving stack too; in -target mode they describe the
// harness side only.
type Resources struct {
	// Samples counts sampler ticks.
	Samples int `json:"samples"`
	// GoroutinesBaseline is the count before traffic started;
	// GoroutinesMax the ceiling during the run; GoroutinesAfterDrain the
	// count once traffic stopped and the drain wait settled.
	GoroutinesBaseline   int `json:"goroutines_baseline"`
	GoroutinesMax        int `json:"goroutines_max"`
	GoroutinesAfterDrain int `json:"goroutines_after_drain"`
	// DrainedToBaseline reports whether the goroutine count returned to
	// (near) baseline after drain — the leak check the soak scenario
	// asserts on.
	DrainedToBaseline bool `json:"drained_to_baseline"`
	// HeapBytesMax is the highest sampled heap allocation.
	HeapBytesMax uint64 `json:"heap_bytes_max"`
}

// SoakReport summarizes the churn loop.
type SoakReport struct {
	// ChurnOps counts mutation-loop iterations; Replaces and Deletes the
	// operations they issued (a delete + re-add counts one Delete).
	ChurnOps int64 `json:"churn_ops"`
	Replaces int64 `json:"replaces"`
	Deletes  int64 `json:"deletes"`
	// SpotChecks counts oracle byte-identity checks; Mismatches the ones
	// that failed. A non-zero Mismatches fails the run.
	SpotChecks int64 `json:"spot_checks"`
	Mismatches int64 `json:"mismatches"`
}

// Failure is one flagged request, with enough captured context to debug
// it after the run: the op, the phase, what went wrong, and the query
// plan from POST /v1/explain when the request had one.
type Failure struct {
	// Op is the op kind ("search", "stream", "spot_check", ...); Phase
	// the phase it ran in ("churn" for churner-issued ops).
	Op    string `json:"op"`
	Phase string `json:"phase"`
	// Status is the HTTP status, when a response arrived.
	Status int `json:"status,omitempty"`
	// Error describes the failure.
	Error string `json:"error"`
	// Request is the JSON request body that was sent.
	Request string `json:"request,omitempty"`
	// Explain is the captured query plan, the execution trace attached
	// the way vcltest attaches VCL line traces.
	Explain string `json:"explain,omitempty"`
}

// Encode renders the report as indented, trailing-newline JSON — the
// canonical on-disk form (stable for git diffs).
func (r *Report) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("loadkit: encoding report: %w", err)
	}
	return buf.Bytes(), nil
}

// WriteFile validates the report and writes it atomically through the
// shared benchkit sink, so an invalid report is never written at all.
func (r *Report) WriteFile(path string) error {
	data, err := r.Encode()
	if err != nil {
		return err
	}
	if err := Validate(data); err != nil {
		return fmt.Errorf("loadkit: refusing to write invalid report: %w", err)
	}
	return benchkit.AtomicWriteFile(path, data)
}

// checkLatency enforces the internal consistency of one summary: ordered
// quantiles bracketed by min/max.
func checkLatency(where string, l LatencySummary) error {
	if l.Count == 0 {
		if l != (LatencySummary{}) {
			return fmt.Errorf("%s: zero-count latency summary has non-zero fields", where)
		}
		return nil
	}
	if l.MinMicros < 0 {
		return fmt.Errorf("%s: negative min", where)
	}
	ordered := []int64{l.MinMicros, l.P50Micros, l.P95Micros, l.P99Micros, l.P999Micros, l.MaxMicros}
	for i := 1; i < len(ordered); i++ {
		if ordered[i] < ordered[i-1] {
			return fmt.Errorf("%s: quantiles out of order: %+v", where, l)
		}
	}
	if l.MeanMicros < l.MinMicros || l.MeanMicros > l.MaxMicros {
		return fmt.Errorf("%s: mean outside [min, max]: %+v", where, l)
	}
	return nil
}

// Validate checks that data is a structurally valid SchemaVersion report:
// correct schema tag, no unknown fields, complete host metadata, at least
// one phase, ordered quantiles everywhere, and counts that add up. CI
// runs it against the emitted artifact so a schema regression fails the
// build instead of silently corrupting the trajectory.
func Validate(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return fmt.Errorf("report does not decode as %s: %w", SchemaVersion, err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the report object")
	}
	if r.Schema != SchemaVersion {
		return fmt.Errorf("schema is %q, want %q", r.Schema, SchemaVersion)
	}
	if r.Spec == "" {
		return fmt.Errorf("missing spec name")
	}
	if r.Target == "" {
		return fmt.Errorf("missing target")
	}
	if r.DurationScale <= 0 || r.RateScale <= 0 {
		return fmt.Errorf("non-positive duration_scale/rate_scale")
	}
	h := r.Host
	if h.GoVersion == "" || h.GOOS == "" || h.GOARCH == "" || h.NumCPU <= 0 || h.GOMAXPROCS <= 0 {
		return fmt.Errorf("incomplete host metadata: %+v", h)
	}
	if r.DurationMillis <= 0 {
		return fmt.Errorf("non-positive duration_ms")
	}
	if len(r.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	seen := map[string]bool{}
	var reqSum int64
	for _, p := range r.Phases {
		if p.Name == "" {
			return fmt.Errorf("phase with empty name")
		}
		if seen[p.Name] {
			return fmt.Errorf("duplicate phase %q", p.Name)
		}
		seen[p.Name] = true
		if p.DurationMillis <= 0 {
			return fmt.Errorf("phase %q has non-positive duration", p.Name)
		}
		if p.Requests < 0 || p.Errors < 0 || p.Errors > p.Requests || p.QPS < 0 {
			return fmt.Errorf("phase %q has inconsistent counts: %+v", p.Name, p.Totals)
		}
		if err := checkLatency("phase "+p.Name, p.Latency); err != nil {
			return err
		}
		var opReqs int64
		for kind, op := range p.Ops {
			if op.Requests < 0 || op.Errors < 0 || op.Errors > op.Requests {
				return fmt.Errorf("phase %q op %q has inconsistent counts", p.Name, kind)
			}
			if err := checkLatency(fmt.Sprintf("phase %q op %q", p.Name, kind), op.Latency); err != nil {
				return err
			}
			opReqs += op.Requests
		}
		if len(p.Ops) > 0 && opReqs != p.Requests {
			return fmt.Errorf("phase %q op requests sum to %d, phase says %d", p.Name, opReqs, p.Requests)
		}
		reqSum += p.Requests
	}
	if r.Overall.Requests != reqSum {
		return fmt.Errorf("overall requests %d != phase sum %d", r.Overall.Requests, reqSum)
	}
	if err := checkLatency("overall", r.Overall.Latency); err != nil {
		return err
	}
	for key, n := range r.Errors {
		if key == "" || n < 0 {
			return fmt.Errorf("error taxonomy entry %q=%d is invalid", key, n)
		}
	}
	res := r.Resources
	if res.GoroutinesBaseline <= 0 || res.GoroutinesMax < res.GoroutinesBaseline || res.Samples < 0 {
		return fmt.Errorf("inconsistent resources block: %+v", res)
	}
	if s := r.Soak; s != nil {
		if s.ChurnOps < 0 || s.Replaces < 0 || s.Deletes < 0 || s.SpotChecks < 0 || s.Mismatches < 0 {
			return fmt.Errorf("negative soak counter: %+v", s)
		}
		if s.Mismatches > s.SpotChecks {
			return fmt.Errorf("soak mismatches %d exceed spot checks %d", s.Mismatches, s.SpotChecks)
		}
	}
	for i, f := range r.Failures {
		if f.Op == "" || f.Error == "" {
			return fmt.Errorf("failures[%d] lacks op or error", i)
		}
	}
	return nil
}

// ValidateFile runs Validate over a report file on disk.
func ValidateFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := Validate(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
