package loadkit

import (
	"strings"
	"testing"
)

// validSpecJSON is a fully-featured spec exercising every section.
const validSpecJSON = `{
  "schema": "vxmlload-spec/1",
  "name": "unit",
  "description": "spec used by parser tests",
  "corpus": {"books": 4, "seed": 11},
  "views": [{"name": "q", "xquery": "for $b in fn:doc(books.xml)/books//book return <r>{$b/title}</r>"}],
  "requests": [{"view": "q", "keywords": ["thomas"], "top_k": 5}],
  "phases": [
    {"name": "warm", "duration": "200ms", "clients": 2, "mix": {"search": 1}},
    {"name": "ramp", "duration": "300ms", "clients": 4, "rate": 40, "rate_end": 120,
     "mix": {"search": 3, "stream": 1, "paginate": 1, "pathological": 0.5}}
  ],
  "churn": {"interval": "50ms", "documents": ["books.xml", "reviews.xml"],
            "delete_every": 3, "spot_check_every": 2}
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if s.Name != "unit" || len(s.Phases) != 2 || s.Churn == nil {
		t.Fatalf("spec parsed oddly: %+v", s)
	}
	if s.Phases[1].RateEnd != 120 {
		t.Fatalf("rate_end lost: %+v", s.Phases[1])
	}
}

// mutate applies a string substitution to the valid spec; the tests below
// each break one invariant and assert the validator names it.
func mutate(old, new string) []byte {
	return []byte(strings.Replace(validSpecJSON, old, new, 1))
}

func TestParseSpecRejections(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string // substring of the expected error
	}{
		{"wrong schema", mutate(`"vxmlload-spec/1"`, `"vxmlload-spec/99"`), "schema"},
		{"unknown field", mutate(`"name": "unit"`, `"name": "unit", "vibes": 1`), "unknown field"},
		{"no views", mutate(`"views": [{"name": "q",`, `"views": [],"unused": [{"name": "q",`), ""},
		{"undefined view ref", mutate(`{"view": "q", "keywords"`, `{"view": "nope", "keywords"`), "undefined view"},
		{"no keywords", mutate(`"keywords": ["thomas"]`, `"keywords": []`), "no keywords"},
		{"negative top_k", mutate(`"top_k": 5`, `"top_k": -5`), "negative"},
		{"zero clients", mutate(`"clients": 2`, `"clients": 0`), "clients"},
		{"rate_end without rate", mutate(`"rate": 40, `, ``), "rate_end without rate"},
		{"unknown op kind", mutate(`"mix": {"search": 1}`, `"mix": {"teleport": 1}`), "unknown op"},
		{"bad duration", mutate(`"duration": "200ms"`, `"duration": "soon"`), "duration"},
		{"churn foreign doc", mutate(`["books.xml", "reviews.xml"]`, `["books.xml", "other.xml"]`), "generated pair"},
		{"churn without corpus", mutate(`"corpus": {"books": 4, "seed": 11}`,
			`"corpus": {"documents": [{"name": "books.xml", "xml": "<books/>"}]}`), "generated corpus"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec(tc.data)
			if err == nil {
				t.Fatalf("spec accepted, want rejection")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseSpecWriteMixNeedsOracleOff(t *testing.T) {
	data := mutate(`"mix": {"search": 3, "stream": 1, "paginate": 1, "pathological": 0.5}`,
		`"mix": {"search": 3, "write": 1}`)
	_, err := ParseSpec(data)
	if err == nil || !strings.Contains(err.Error(), "spot checks") {
		t.Fatalf("write mix + spot checks accepted (err=%v); the oracle cannot track racing writers", err)
	}
}

func TestMixPickerProportionsAndDeterminism(t *testing.T) {
	mix := map[string]float64{"search": 3, "stream": 1}
	a, b := newMixPicker(mix), newMixPicker(mix)
	counts := map[string]int{}
	for i := int64(0); i < 64; i++ {
		ka, kb := a.pick(i), b.pick(i)
		if ka != kb {
			t.Fatalf("picker is not deterministic at %d: %q vs %q", i, ka, kb)
		}
		counts[ka]++
	}
	if counts["search"] < 40 || counts["stream"] < 10 {
		t.Fatalf("schedule proportions off: %v (want ~48/16)", counts)
	}
	// A kind with a tiny weight still gets at least one slot.
	p := newMixPicker(map[string]float64{"search": 100, "pathological": 0.01})
	seen := map[string]bool{}
	for i := int64(0); i < int64(len(p.schedule)); i++ {
		seen[p.pick(i)] = true
	}
	if !seen["pathological"] {
		t.Fatalf("tiny-weight kind starved out of the schedule")
	}
}
