package loadkit

import (
	"path/filepath"
	"testing"
)

// TestCommittedScenarios keeps the specs under scenarios/ honest: each
// must parse, its views must compile over its corpus, and every request
// template must actually hit the corpus — a template whose keywords the
// generator stopped planting would otherwise quietly load-test the
// empty-result path.
func TestCommittedScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(paths) < 4 {
		t.Fatalf("found %d committed scenarios, want at least 4: %v", len(paths), paths)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			spec, err := LoadSpec(path)
			if err != nil {
				t.Fatalf("LoadSpec: %v", err)
			}
			// NewOracle builds the corpus and compiles every view — the
			// same setup SelfServe performs, minus the listener.
			oracle, err := NewOracle(spec)
			if err != nil {
				t.Fatalf("building corpus/views: %v", err)
			}
			for i, tmpl := range spec.Requests {
				results, err := oracle.Search(tmpl)
				if err != nil {
					t.Errorf("requests[%d] %v: %v", i, tmpl.Keywords, err)
					continue
				}
				if len(results) == 0 {
					t.Errorf("requests[%d] keywords %v return no results over this corpus", i, tmpl.Keywords)
				}
			}
		})
	}
}
