// Self-serve mode: boot a real internal/server over the spec's corpus on
// a loopback listener, so the harness exercises the full HTTP stack —
// router, JSON codecs, streaming writer, timeouts — not a Database in a
// test harness. The load still travels over real TCP connections.
package loadkit

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"vxml"
	"vxml/internal/inex"
	"vxml/internal/server"
)

// corpusDocuments expands a Corpus declaration into the concrete document
// list, generated pair first — the same expansion the oracle applies, so
// self-served server and oracle start byte-identical.
func corpusDocuments(c Corpus) []DocumentSpec {
	var docs []DocumentSpec
	if c.Books > 0 {
		books, reviews := inex.GenerateBooksReviews(c.Books, c.Seed)
		docs = append(docs,
			DocumentSpec{Name: "books.xml", XML: books},
			DocumentSpec{Name: "reviews.xml", XML: reviews})
	}
	return append(docs, c.Documents...)
}

// churnContent regenerates a churn document's content for iteration i:
// the same deterministic generator as the corpus, reseeded per iteration,
// so the churner and the oracle agree on every byte without coordination.
func churnContent(c Corpus, name string, i int64) string {
	books, reviews := inex.GenerateBooksReviews(c.Books, c.Seed+i+1)
	if name == "books.xml" {
		return books
	}
	return reviews
}

// buildDatabase opens a Database over the spec corpus.
func buildDatabase(spec *Spec) (*vxml.Database, error) {
	db := vxml.Open()
	for _, d := range corpusDocuments(spec.Corpus) {
		if err := db.Add(d.Name, d.XML); err != nil {
			return nil, fmt.Errorf("loadkit: adding %s: %w", d.Name, err)
		}
	}
	return db, nil
}

// SelfServe boots an internal/server over the spec's corpus and views on
// a loopback listener with the same timeout posture as cmd/vxmlserve, and
// returns its base URL plus a shutdown func that drains in-flight
// requests.
func SelfServe(spec *Spec) (base string, shutdown func(), err error) {
	db, err := buildDatabase(spec)
	if err != nil {
		return "", nil, err
	}
	srv := server.New(db)
	for _, v := range spec.Views {
		if err := srv.DefineView(v.Name, v.XQuery); err != nil {
			return "", nil, fmt.Errorf("loadkit: defining view %s: %w", v.Name, err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	done := make(chan struct{})
	go func() {
		httpSrv.Serve(ln) //nolint:errcheck // Shutdown's ErrServerClosed is the clean exit
		close(done)
	}()
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck
		<-done
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
