// Log-linear latency histogram: HDR-style bucketing with bounded relative
// error, so a multi-minute soak can record millions of latencies in a few
// KB of counters and still report a meaningful p999.
package loadkit

import "math/bits"

// histSubBuckets is the linear resolution inside each power-of-two coarse
// bucket: 16 sub-buckets bound the relative quantile error at ~6%.
const histSubBuckets = 16

// histBuckets covers values up to 2^40 µs (~13 days) — far beyond any
// plausible request latency.
const histBuckets = histSubBuckets + 40*histSubBuckets

// Histogram records non-negative microsecond latencies into log-linear
// buckets. It is not safe for concurrent use; the collector serializes
// access.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// histIndex maps a microsecond value to its bucket.
func histIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	// v >= 16: coarse bucket = bit length, linear position = the 4 bits
	// below the leading one.
	coarse := bits.Len64(uint64(v)) // >= 5 here
	idx := histSubBuckets + (coarse-5)*histSubBuckets + int((v>>(coarse-5))&(histSubBuckets-1))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// histValue reconstructs a bucket's representative (midpoint) value.
func histValue(idx int) int64 {
	if idx < histSubBuckets {
		return int64(idx)
	}
	exp := (idx - histSubBuckets) / histSubBuckets
	sub := (idx - histSubBuckets) % histSubBuckets
	lo := int64(histSubBuckets+sub) << exp
	return lo + (int64(1)<<exp)/2
}

// Record adds one latency observation in microseconds.
func (h *Histogram) Record(micros int64) {
	if micros < 0 {
		micros = 0
	}
	h.counts[histIndex(micros)]++
	h.count++
	h.sum += micros
	if h.count == 1 || micros < h.min {
		h.min = micros
	}
	if micros > h.max {
		h.max = micros
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
}

// Quantile returns the value at quantile q (0 < q <= 1), clamped to the
// observed min/max so bucket midpoints cannot report a p50 below the
// fastest or a p999 above the slowest request. Zero observations yield 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= target {
			v := histValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Summary renders the histogram as the report's latency block.
func (h *Histogram) Summary() LatencySummary {
	if h.count == 0 {
		return LatencySummary{}
	}
	return LatencySummary{
		Count:      h.count,
		MinMicros:  h.min,
		MeanMicros: h.sum / h.count,
		P50Micros:  h.Quantile(0.50),
		P95Micros:  h.Quantile(0.95),
		P99Micros:  h.Quantile(0.99),
		P999Micros: h.Quantile(0.999),
		MaxMicros:  h.max,
	}
}
