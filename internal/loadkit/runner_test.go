package loadkit

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// e2eSpec is a miniature of the committed mutation-soak scenario: a
// generated corpus, a join view, a closed-loop mixed phase plus an
// open-loop ramp, and churn with delete cycles and oracle spot checks.
func e2eSpec() *Spec {
	return &Spec{
		Schema: SpecSchemaVersion,
		Name:   "e2e",
		Corpus: Corpus{Books: 16, Seed: 3},
		Views: []ViewSpec{{Name: "q", XQuery: `
			for $book in fn:doc(books.xml)/books//book
			return <bookrevs>
			         <book>{$book/title}</book>,
			         {for $rev in fn:doc(reviews.xml)/reviews//review
			          where $rev/isbn = $book/isbn
			          return $rev/content}
			       </bookrevs>`}},
		// "ieee"/"computing" are the generator's low-selectivity planted
		// markers — present in any seed at this corpus size.
		Requests: []RequestTemplate{
			{View: "q", Keywords: []string{"ieee"}, TopK: 5},
			{View: "q", Keywords: []string{"computing", "ieee"}, Disjunctive: true, TopK: 3},
		},
		Phases: []Phase{
			{Name: "mixed", Duration: Duration(500 * time.Millisecond), Clients: 4,
				Mix: map[string]float64{"search": 4, "stream": 2, "paginate": 1, "pathological": 1}},
			{Name: "ramp", Duration: Duration(400 * time.Millisecond), Clients: 4,
				Rate: 60, RateEnd: 150, Mix: map[string]float64{"search": 1}},
		},
		Churn: &Churn{
			Interval:       Duration(25 * time.Millisecond),
			Documents:      []string{"books.xml", "reviews.xml"},
			DeleteEvery:    3,
			SpotCheckEvery: 2,
		},
	}
}

func TestRunnerEndToEnd(t *testing.T) {
	spec := e2eSpec()
	base, shutdown, err := SelfServe(spec)
	if err != nil {
		t.Fatalf("SelfServe: %v", err)
	}
	defer shutdown()

	r := &Runner{Spec: spec, Target: base, TargetLabel: "self", Logf: t.Logf}
	report, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	// The emitted artifact must pass its own strict validation.
	data, err := report.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("run produced an invalid report: %v\n%s", err, data)
	}

	if report.Overall.Requests == 0 {
		t.Fatalf("no traffic recorded")
	}
	if len(report.Phases) != 2 || report.Phases[0].Name != "mixed" || report.Phases[1].Name != "ramp" {
		t.Fatalf("phases recorded oddly: %+v", report.Phases)
	}
	mixed := report.Phases[0]
	for _, kind := range []string{"search", "stream", "paginate", "pathological"} {
		if mixed.Ops[kind].Requests == 0 {
			t.Errorf("mixed phase issued no %q ops: %+v", kind, mixed.Ops)
		}
	}
	if lat := report.Overall.Latency; lat.Count == 0 || lat.P50Micros == 0 || lat.P999Micros < lat.P50Micros {
		t.Errorf("overall latency summary is degenerate: %+v", lat)
	}

	// The server must have taken the mixed traffic cleanly: no 5xx, no
	// pathological acceptance, no transport failures.
	for key, n := range report.Errors {
		t.Errorf("error taxonomy non-empty: %s=%d", key, n)
	}
	for _, f := range report.Failures {
		t.Errorf("flagged request: %+v", f)
	}

	// Soak: the churner ran, deleted, and every spot check matched the
	// single-threaded oracle byte-for-byte.
	soak := report.Soak
	if soak == nil {
		t.Fatalf("no soak report despite configured churn")
	}
	if soak.ChurnOps == 0 || soak.Replaces == 0 || soak.Deletes == 0 {
		t.Errorf("churn barely ran: %+v", soak)
	}
	if soak.SpotChecks == 0 {
		t.Errorf("no oracle spot checks ran: %+v", soak)
	}
	if soak.Mismatches != 0 {
		t.Errorf("%d oracle mismatches — concurrent serving diverged from sequential ground truth", soak.Mismatches)
	}

	res := report.Resources
	if res.Samples == 0 || res.GoroutinesMax < res.GoroutinesBaseline {
		t.Errorf("resource sampling is degenerate: %+v", res)
	}
	if !res.DrainedToBaseline {
		t.Errorf("goroutines did not drain: baseline %d, after drain %d",
			res.GoroutinesBaseline, res.GoroutinesAfterDrain)
	}
}

// TestOracleCompareCatchesDivergence proves the byte-identity check has
// teeth: a single corrupted byte in a server response must be flagged.
func TestOracleCompareCatchesDivergence(t *testing.T) {
	spec := e2eSpec()
	oracle, err := NewOracle(spec)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	tmpl := spec.Requests[0]
	want, err := oracle.Search(tmpl)
	if err != nil {
		t.Fatalf("oracle search: %v", err)
	}
	if len(want) == 0 {
		t.Fatalf("oracle search returned no results — spec keywords miss the corpus")
	}
	clean := rawCopy(want)
	if diff, err := oracle.Compare(tmpl, clean); err != nil || diff != "" {
		t.Fatalf("identical responses compared unequal: diff=%q err=%v", diff, err)
	}
	tampered := rawCopy(want)
	last := len(tampered[0]) - 2
	tampered[0][last] ^= 1
	diff, err := oracle.Compare(tmpl, tampered)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if diff == "" {
		t.Fatalf("single-byte corruption went undetected")
	}
	short := rawCopy(want)[:len(want)-1]
	if diff, _ := oracle.Compare(tmpl, short); diff == "" {
		t.Fatalf("dropped result went undetected")
	}
}

// rawCopy deep-copies oracle result lines into the client's raw-message
// shape.
func rawCopy(in [][]byte) []json.RawMessage {
	out := make([]json.RawMessage, len(in))
	for i, b := range in {
		out[i] = append(json.RawMessage(nil), b...)
	}
	return out
}
