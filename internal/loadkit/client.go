// HTTP driver: thin typed wrappers over the server's /v1 surface, built
// for being hammered — one shared Transport sized to the client count, no
// hidden retries, and raw result bytes surfaced so the oracle can compare
// byte-for-byte.
package loadkit

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// requestTimeout bounds any single harness request; streams get the
// longer streamTimeout since they legitimately run for a while.
const (
	requestTimeout = 30 * time.Second
	streamTimeout  = 120 * time.Second
)

// Client drives one vxml HTTP server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for base (no trailing slash) with a
// connection pool sized for maxConns concurrent workers.
func NewClient(base string, maxConns int) *Client {
	if maxConns < 2 {
		maxConns = 2
	}
	tr := &http.Transport{
		MaxIdleConns:        maxConns * 2,
		MaxIdleConnsPerHost: maxConns * 2,
		IdleConnTimeout:     30 * time.Second,
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{Transport: tr}}
}

// Close releases idle connections so post-run goroutine drain checks see
// the true baseline.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// searchBody renders a template as the /v1/search (and stream, and
// explain-compatible) request JSON.
func searchBody(t RequestTemplate) []byte {
	m := map[string]any{"view": t.View, "keywords": t.Keywords}
	if t.TopK != 0 {
		m["top_k"] = t.TopK
	}
	if t.Offset != 0 {
		m["offset"] = t.Offset
	}
	if t.Disjunctive {
		m["disjunctive"] = true
	}
	if t.Cache {
		m["cache"] = true
	}
	if t.Parallelism != 0 {
		m["parallelism"] = t.Parallelism
	}
	data, _ := json.Marshal(m) //nolint:errcheck // map of marshalable primitives
	return data
}

// post issues one JSON POST and returns the response; the caller owns the
// body.
func (c *Client) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.hc.Do(req)
}

// Search runs one /v1/search request and returns the status plus the raw
// per-result JSON objects (exactly the bytes the server sent, for oracle
// comparison).
func (c *Client) Search(ctx context.Context, t RequestTemplate) (status int, results []json.RawMessage, err error) {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	resp, err := c.post(ctx, "/v1/search", searchBody(t))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		drain(resp)
		return resp.StatusCode, nil, nil
	}
	var body struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return resp.StatusCode, nil, fmt.Errorf("decoding search response: %w", err)
	}
	return resp.StatusCode, body.Results, nil
}

// StreamResult is what one /v1/search/stream request yielded.
type StreamResult struct {
	// Status is the HTTP status of the stream opening.
	Status int
	// Lines counts result lines received.
	Lines int
	// ErrorLine carries the in-band {"error": ...} diagnostic, when the
	// stream ended with one.
	ErrorLine string
}

// Stream runs one /v1/search/stream request, consuming the whole NDJSON
// body.
func (c *Client) Stream(ctx context.Context, t RequestTemplate) (StreamResult, error) {
	ctx, cancel := context.WithTimeout(ctx, streamTimeout)
	defer cancel()
	resp, err := c.post(ctx, "/v1/search/stream", searchBody(t))
	if err != nil {
		return StreamResult{}, err
	}
	defer resp.Body.Close() //nolint:errcheck
	out := StreamResult{Status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		drain(resp)
		return out, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Error string `json:"error"`
			Rank  int    `json:"rank"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return out, fmt.Errorf("malformed NDJSON line %q: %w", line, err)
		}
		if probe.Error != "" {
			out.ErrorLine = probe.Error
			return out, nil
		}
		out.Lines++
	}
	return out, sc.Err()
}

// Replace PUTs new content for a document.
func (c *Client) Replace(ctx context.Context, name, xml string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"xml": xml}) //nolint:errcheck
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+"/v1/documents/"+name, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

// Delete removes a document.
func (c *Client) Delete(ctx context.Context, name string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/documents/"+name, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

// Add POSTs a new document.
func (c *Client) Add(ctx context.Context, name, xml string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"name": name, "xml": xml}) //nolint:errcheck
	resp, err := c.post(ctx, "/v1/documents", body)
	if err != nil {
		return 0, err
	}
	drain(resp)
	return resp.StatusCode, nil
}

// Explain captures the query plan for a template through POST
// /v1/explain — the execution trace attached to flagged requests. A
// failure to explain is reported as text, never as an error: trace
// capture must not mask the failure it documents.
func (c *Client) Explain(ctx context.Context, t RequestTemplate) string {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	body, _ := json.Marshal(map[string]any{"view": t.View, "keywords": t.Keywords}) //nolint:errcheck
	resp, err := c.post(ctx, "/v1/explain", body)
	if err != nil {
		return fmt.Sprintf("(explain unavailable: %v)", err)
	}
	defer resp.Body.Close() //nolint:errcheck
	var out struct {
		Plan  string `json:"plan"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Sprintf("(explain undecodable: %v)", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Sprintf("(explain answered %d: %s)", resp.StatusCode, out.Error)
	}
	return out.Plan
}

// pathologicalRequests are the malformed inputs the "pathological" op
// cycles through; each must draw a 4xx — anything else (a 5xx, or a 200
// that accepted garbage) flags the server.
var pathologicalRequests = []struct {
	// Name keys the case in failure records.
	Name string
	// Path is the route; Body the raw (deliberately broken) payload.
	Path string
	Body string
}{
	{"unknown-view", "/v1/search", `{"view":"no-such-view-anywhere","keywords":["xml"]}`},
	{"empty-keywords", "/v1/search", `{"view":"q","keywords":[]}`},
	{"negative-top-k", "/v1/search", `{"view":"q","keywords":["xml"],"top_k":-3}`},
	{"unknown-approach", "/v1/search", `{"view":"q","keywords":["xml"],"approach":"quantum"}`},
	{"truncated-json", "/v1/search", `{"view":"q","keywords":["xml"`},
	{"unknown-field", "/v1/search", `{"view":"q","keywords":["xml"],"vibes":"immaculate"}`},
	{"negative-offset-stream", "/v1/search/stream", `{"view":"q","keywords":["xml"],"offset":-1}`},
	{"explain-no-keywords", "/v1/explain", `{"view":"q"}`},
}

// Pathological sends the i-th (mod len) pathological request and reports
// its name and status.
func (c *Client) Pathological(ctx context.Context, i int) (name string, status int, err error) {
	ctx, cancel := context.WithTimeout(ctx, requestTimeout)
	defer cancel()
	p := pathologicalRequests[i%len(pathologicalRequests)]
	resp, err := c.post(ctx, p.Path, []byte(p.Body))
	if err != nil {
		return p.Name, 0, err
	}
	drain(resp)
	return p.Name, resp.StatusCode, nil
}

// WaitReady polls /v1/stats until the server answers or the deadline
// passes — how the harness knows an externally booted target is up.
func (c *Client) WaitReady(ctx context.Context, deadline time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, deadline)
	defer cancel()
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
		if err != nil {
			return err
		}
		resp, err := c.hc.Do(req)
		if err == nil {
			drain(resp)
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server at %s not ready: %w", c.base, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// drain discards (up to a cap) and closes a response body so the
// connection returns to the pool.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
	resp.Body.Close()                                     //nolint:errcheck
}
