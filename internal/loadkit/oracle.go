// The soak oracle: a single-threaded vxml.Database that mirrors every
// mutation the churner sends to the server, so a spot check can compare a
// live HTTP response byte-for-byte against what a sequential,
// single-client execution of the same corpus state must produce. Any
// divergence is a serving bug — cache staleness, a torn mutation, a
// tombstone swept too early — that microbenchmarks cannot see.
package loadkit

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"vxml"
)

// Oracle wraps the mirror Database. It is confined to the churner
// goroutine: mutations and spot checks happen between churn ops, never
// concurrently, which is exactly what makes its answers a ground truth.
type Oracle struct {
	db    *vxml.Database
	views map[string]*vxml.View
}

// NewOracle builds the mirror from the spec's corpus and views — the same
// expansion SelfServe applies.
func NewOracle(spec *Spec) (*Oracle, error) {
	db, err := buildDatabase(spec)
	if err != nil {
		return nil, err
	}
	o := &Oracle{db: db, views: map[string]*vxml.View{}}
	for _, v := range spec.Views {
		view, err := db.DefineView(v.XQuery)
		if err != nil {
			return nil, fmt.Errorf("loadkit: oracle view %s: %w", v.Name, err)
		}
		o.views[v.Name] = view
	}
	return o, nil
}

// Replace mirrors a replace the server acknowledged.
func (o *Oracle) Replace(name, xml string) error { return o.db.Replace(name, xml) }

// Delete mirrors a delete the server acknowledged.
func (o *Oracle) Delete(name string) error { return o.db.Delete(name) }

// Add mirrors an add the server acknowledged.
func (o *Oracle) Add(name, xml string) error { return o.db.Add(name, xml) }

// oracleWireResult mirrors internal/server's wire shape exactly; with
// encoding/json's deterministic struct-field order and sorted map keys,
// marshaling it reproduces the server's result bytes.
type oracleWireResult struct {
	Rank    int            `json:"rank"`
	Score   float64        `json:"score"`
	TF      map[string]int `json:"tf"`
	XML     string         `json:"xml"`
	Snippet string         `json:"snippet"`
}

// Search runs the template sequentially (Parallelism 1, no cache) and
// returns each result marshaled to the server's wire shape.
func (o *Oracle) Search(t RequestTemplate) ([][]byte, error) {
	view := o.views[t.View]
	if view == nil {
		return nil, fmt.Errorf("loadkit: oracle has no view %q", t.View)
	}
	opts := &vxml.Options{
		TopK:        t.TopK,
		Offset:      t.Offset,
		Disjunctive: t.Disjunctive,
		Approach:    vxml.Efficient,
		Parallelism: 1,
		Cache:       false,
	}
	results, _, err := o.db.SearchContext(context.Background(), view, t.Keywords, opts)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(results))
	for i, r := range results {
		line, err := json.Marshal(oracleWireResult{Rank: r.Rank, Score: r.Score, TF: r.TF, XML: r.XML, Snippet: r.Snippet})
		if err != nil {
			return nil, err
		}
		out[i] = line
	}
	return out, nil
}

// Compare checks a server response (raw per-result JSON) against the
// oracle's answer for the same template, returning a description of the
// first divergence or "" when byte-identical.
func (o *Oracle) Compare(t RequestTemplate, got []json.RawMessage) (string, error) {
	want, err := o.Search(t)
	if err != nil {
		return "", fmt.Errorf("loadkit: oracle search: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Sprintf("result count diverged: server %d, oracle %d", len(got), len(want)), nil
	}
	for i := range want {
		if !bytes.Equal(bytes.TrimSpace(got[i]), want[i]) {
			return fmt.Sprintf("result %d diverged:\nserver: %s\noracle: %s", i, got[i], want[i]), nil
		}
	}
	return "", nil
}
