// The runner: executes a Spec phase by phase against a live server,
// pacing arrivals open- or closed-loop, running the churner underneath,
// sampling process ceilings, and folding everything into a vxmlload/1
// Report.
package loadkit

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vxml/internal/benchkit"
)

// maxFailures caps the failure records a report carries; maxExplains caps
// how many of them get a plan captured (each capture is a live request).
const (
	maxFailures = 16
	maxExplains = 8
)

// drainWait bounds how long the runner waits for the goroutine count to
// return to baseline after traffic stops; drainSlack is the tolerated
// residue (timer and netpoll goroutines wind down asynchronously).
const (
	drainWait  = 5 * time.Second
	drainSlack = 3
)

// Runner executes one Spec. Target must point at a live server already
// holding the spec's corpus and views (SelfServe provides one);
// TargetLabel is what the report calls it ("self" or the URL).
type Runner struct {
	Spec        *Spec
	Target      string
	TargetLabel string
	// DurationScale multiplies phase durations, RateScale arrival rates;
	// 0 means 1. CI runs committed specs scaled down.
	DurationScale float64
	RateScale     float64
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) durationScale() float64 {
	if r.DurationScale <= 0 {
		return 1
	}
	return r.DurationScale
}

func (r *Runner) rateScale() float64 {
	if r.RateScale <= 0 {
		return 1
	}
	return r.RateScale
}

// opOutcome is what one executed op reports back to the collector.
type opOutcome struct {
	op        string
	latency   time.Duration
	completed bool // a response arrived; latency is meaningful
	failed    bool
	dropped   bool // the runner's own shutdown cut it — keep it off the books
	errKey    string           // taxonomy key when failed
	failure   *Failure         // detailed record, when worth keeping
	template  *RequestTemplate // identity for explain capture
}

// collector aggregates outcomes across workers. One mutex is plenty: the
// harness's request rates are orders of magnitude below what a single
// uncontended lock sustains.
type collector struct {
	mu         sync.Mutex
	phaseOrder []string
	phases     map[string]*phaseAgg
	overall    Histogram
	reqs, errs int64
	taxonomy   map[string]int64
	failures   []Failure
	explains   int
}

// phaseAgg is one phase's accumulation.
type phaseAgg struct {
	hist       Histogram
	reqs, errs int64
	ops        map[string]*opAgg
}

// opAgg is one op kind's share of a phase.
type opAgg struct {
	hist       Histogram
	reqs, errs int64
}

func newCollector() *collector {
	return &collector{phases: map[string]*phaseAgg{}, taxonomy: map[string]int64{}}
}

func (c *collector) phase(name string) *phaseAgg {
	p := c.phases[name]
	if p == nil {
		p = &phaseAgg{ops: map[string]*opAgg{}}
		c.phases[name] = p
		c.phaseOrder = append(c.phaseOrder, name)
	}
	return p
}

// record folds one outcome into the phase, op and overall aggregates.
func (c *collector) record(phase string, out opOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.phase(phase)
	op := p.ops[out.op]
	if op == nil {
		op = &opAgg{}
		p.ops[out.op] = op
	}
	p.reqs++
	op.reqs++
	c.reqs++
	if out.completed {
		micros := out.latency.Microseconds()
		p.hist.Record(micros)
		op.hist.Record(micros)
		c.overall.Record(micros)
	}
	if out.failed {
		p.errs++
		op.errs++
		c.errs++
		if out.errKey != "" {
			c.taxonomy[out.errKey]++
		}
		if out.failure != nil && len(c.failures) < maxFailures {
			c.failures = append(c.failures, *out.failure)
		}
	}
}

// count bumps one taxonomy key outside the per-request path (churner,
// spot checks).
func (c *collector) count(key string) {
	c.mu.Lock()
	c.taxonomy[key]++
	c.mu.Unlock()
}

// addFailure records a failure from outside the per-request path.
func (c *collector) addFailure(f Failure) {
	c.mu.Lock()
	if len(c.failures) < maxFailures {
		c.failures = append(c.failures, f)
	}
	c.mu.Unlock()
}

// takeExplainSlot reserves one of the bounded explain captures; the
// caller only issues the /v1/explain request when it returns true.
func (c *collector) takeExplainSlot() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.explains >= maxExplains {
		return false
	}
	c.explains++
	return true
}

// mixPicker deals op kinds deterministically in weight proportion: a
// 64-slot schedule indexed by sequence number, so two runs of one spec
// shape identical traffic without shared RNG state or locks.
type mixPicker struct {
	schedule []string
}

func newMixPicker(mix map[string]float64) *mixPicker {
	// Deterministic kind order (map iteration is not).
	kinds := make([]string, 0, len(mix))
	for _, k := range []string{"search", "stream", "paginate", "pathological", "write"} {
		if mix[k] > 0 {
			kinds = append(kinds, k)
		}
	}
	total := 0.0
	for _, k := range kinds {
		total += mix[k]
	}
	var schedule []string
	for _, k := range kinds {
		n := int(mix[k] / total * 64)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			schedule = append(schedule, k)
		}
	}
	// Interleave by striding the concatenated blocks with a step coprime
	// to the length, so one kind does not monopolize long runs.
	out := make([]string, len(schedule))
	step := 13
	for gcd(step, len(schedule)) != 1 {
		step++
	}
	for i := range schedule {
		out[i] = schedule[(i*step)%len(schedule)]
	}
	return &mixPicker{schedule: out}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (m *mixPicker) pick(seq int64) string {
	return m.schedule[int(seq%int64(len(m.schedule)))]
}

// sampler polls process ceilings while traffic runs.
type sampler struct {
	stop    chan struct{}
	done    chan struct{}
	samples int
	maxG    int
	maxHeap uint64
}

func startSampler() *sampler {
	s := &sampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		var ms runtime.MemStats
		for {
			select {
			case <-s.stop:
				return
			case <-ticker.C:
				s.samples++
				if g := runtime.NumGoroutine(); g > s.maxG {
					s.maxG = g
				}
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.maxHeap {
					s.maxHeap = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

func (s *sampler) finish() (samples, maxG int, maxHeap uint64) {
	close(s.stop)
	<-s.done
	return s.samples, s.maxG, s.maxHeap
}

// Run executes the spec and returns its report. It fails only on harness
// breakage (a dead target, a context cancellation); serving misbehavior —
// 5xx, oracle mismatches, unexpected pathological acceptance — lands in
// the report's error taxonomy and failure records instead, and the caller
// decides what fails the build.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	if r.Spec == nil || r.Target == "" {
		return nil, fmt.Errorf("loadkit: runner needs a Spec and a Target")
	}
	spec := r.Spec
	started := time.Now()
	baselineG := runtime.NumGoroutine()
	client := NewClient(r.Target, maxPhaseClients(spec))
	defer client.Close()
	if err := client.WaitReady(ctx, 15*time.Second); err != nil {
		return nil, err
	}

	col := newCollector()
	smp := startSampler()

	// The churner spans every phase: mutation churn is background weather,
	// not a phase of its own.
	churnCtx, stopChurn := context.WithCancel(ctx)
	defer stopChurn()
	var churnDone chan *SoakReport
	if spec.Churn != nil {
		var oracle *Oracle
		if spec.Churn.SpotCheckEvery > 0 {
			var err error
			if oracle, err = NewOracle(spec); err != nil {
				return nil, err
			}
		}
		churnDone = make(chan *SoakReport, 1)
		go r.churn(churnCtx, client, oracle, col, churnDone)
	}

	var seq atomic.Int64
	phaseDurations := map[string]time.Duration{}
	for _, ph := range spec.Phases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := time.Duration(float64(time.Duration(ph.Duration)) * r.durationScale())
		if d < 50*time.Millisecond {
			d = 50 * time.Millisecond
		}
		phaseDurations[ph.Name] = d
		r.logf("phase %s: %s, %d clients, rate=%.0f/s mix=%v", ph.Name, d, ph.Clients, ph.Rate*r.rateScale(), ph.Mix)
		r.runPhase(ctx, ph, d, client, col, &seq)
	}

	// Drain: stop churn, then wait for the goroutine count to settle.
	stopChurn()
	var soak *SoakReport
	if churnDone != nil {
		soak = <-churnDone
	}
	samples, maxG, maxHeap := smp.finish()
	client.Close()
	afterG := waitForDrain(baselineG)

	if maxG < baselineG {
		maxG = baselineG
	}
	report := &Report{
		Schema:        SchemaVersion,
		Spec:          spec.Name,
		Description:   spec.Description,
		GeneratedBy:   "vxmlload",
		Target:        r.TargetLabel,
		DurationScale: r.durationScale(),
		RateScale:     r.rateScale(),
		Host:          benchkit.HostInfo(),
		Resources: Resources{
			Samples:              samples,
			GoroutinesBaseline:   baselineG,
			GoroutinesMax:        maxG,
			GoroutinesAfterDrain: afterG,
			DrainedToBaseline:    afterG <= baselineG+drainSlack,
			HeapBytesMax:         maxHeap,
		},
		Soak: soak,
	}
	if report.Target == "" {
		report.Target = r.Target
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	var totalDur time.Duration
	for _, name := range col.phaseOrder {
		p := col.phases[name]
		d := phaseDurations[name]
		if d <= 0 {
			d = time.Millisecond // churn pseudo-phase: counts only
		}
		totalDur += d
		pr := PhaseReport{
			Name:           name,
			DurationMillis: d.Milliseconds(),
			Totals: Totals{
				Requests: p.reqs,
				Errors:   p.errs,
				QPS:      float64(p.hist.Count()) / d.Seconds(),
				Latency:  p.hist.Summary(),
			},
			Ops: map[string]OpStats{},
		}
		for kind, op := range p.ops {
			pr.Ops[kind] = OpStats{Requests: op.reqs, Errors: op.errs, Latency: op.hist.Summary()}
		}
		report.Phases = append(report.Phases, pr)
	}
	report.Overall = Totals{
		Requests: col.reqs,
		Errors:   col.errs,
		QPS:      float64(col.overall.Count()) / totalDur.Seconds(),
		Latency:  col.overall.Summary(),
	}
	if len(col.taxonomy) > 0 {
		report.Errors = map[string]int64{}
		for k, v := range col.taxonomy {
			report.Errors[k] = v
		}
	}
	report.Failures = append(report.Failures, col.failures...)
	report.DurationMillis = time.Since(started).Milliseconds()
	return report, nil
}

// maxPhaseClients sizes the connection pool to the busiest phase.
func maxPhaseClients(spec *Spec) int {
	max := 1
	for _, p := range spec.Phases {
		if p.Clients > max {
			max = p.Clients
		}
	}
	return max
}

// waitForDrain polls the goroutine count until it returns to (near)
// baseline or the wait expires, and reports the final count.
func waitForDrain(baseline int) int {
	deadline := time.Now().Add(drainWait)
	g := runtime.NumGoroutine()
	for g > baseline+drainSlack && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		g = runtime.NumGoroutine()
	}
	return g
}

// runPhase shapes one phase's traffic: closed-loop when Rate is 0 (each
// client re-fires on completion), open-loop otherwise (a scheduler paces
// arrivals at the — possibly ramping — rate, and latency is measured from
// the scheduled arrival, so a saturated server's queueing delay lands in
// the histogram instead of being coordinated away).
func (r *Runner) runPhase(ctx context.Context, ph Phase, d time.Duration, client *Client, col *collector, seq *atomic.Int64) {
	picker := newMixPicker(ph.Mix)
	deadline := time.Now().Add(d)
	phCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	if ph.Rate <= 0 {
		var wg sync.WaitGroup
		for i := 0; i < ph.Clients; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for phCtx.Err() == nil && time.Now().Before(deadline) {
					n := seq.Add(1)
					start := time.Now()
					out := r.executeOp(phCtx, client, picker.pick(n), n)
					out.latency = time.Since(start)
					r.finishOp(phCtx, client, col, ph.Name, out)
				}
			}()
		}
		wg.Wait()
		return
	}

	jobs := make(chan time.Time, ph.Clients*2)
	var wg sync.WaitGroup
	for i := 0; i < ph.Clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for scheduled := range jobs {
				n := seq.Add(1)
				out := r.executeOp(phCtx, client, picker.pick(n), n)
				out.latency = time.Since(scheduled)
				r.finishOp(phCtx, client, col, ph.Name, out)
			}
		}()
	}

	startRate := ph.Rate * r.rateScale()
	endRate := startRate
	if ph.RateEnd > 0 {
		endRate = ph.RateEnd * r.rateScale()
	}
	phaseStart := time.Now()
	next := phaseStart
	for {
		frac := float64(time.Since(phaseStart)) / float64(d)
		if frac > 1 {
			break
		}
		rate := startRate + (endRate-startRate)*frac
		if rate < 0.5 {
			rate = 0.5
		}
		next = next.Add(time.Duration(float64(time.Second) / rate))
		if next.After(deadline) {
			break
		}
		if sleep := time.Until(next); sleep > 0 {
			time.Sleep(sleep)
		}
		select {
		case jobs <- next:
		case <-phCtx.Done():
			close(jobs)
			wg.Wait()
			return
		}
	}
	close(jobs)
	wg.Wait()
}

// finishOp attaches the (budgeted) execution trace to a flagged request
// and records the outcome.
func (r *Runner) finishOp(ctx context.Context, client *Client, col *collector, phase string, out opOutcome) {
	if out.dropped {
		return
	}
	if out.failure != nil {
		out.failure.Phase = phase
		if out.template != nil && col.takeExplainSlot() {
			out.failure.Explain = client.Explain(ctx, *out.template)
		}
	}
	col.record(phase, out)
}

// executeOp issues one request of the given kind. The returned outcome's
// latency is filled by the caller (closed-loop: service time; open-loop:
// scheduled-arrival to completion).
func (r *Runner) executeOp(ctx context.Context, client *Client, kind string, n int64) opOutcome {
	out := opOutcome{op: kind}
	templates := r.Spec.Requests
	switch kind {
	case "search", "paginate", "write":
		// handled below
	case "stream":
		tmpl := templates[int(n)%len(templates)]
		res, err := client.Stream(ctx, tmpl)
		out.template = &tmpl
		switch {
		case err != nil:
			r.transportOutcome(ctx, &out, err)
		case res.ErrorLine != "":
			out.completed, out.failed, out.errKey = true, true, "stream_error_line"
			out.failure = &Failure{Op: kind, Status: res.Status,
				Error:   "in-band stream error: " + res.ErrorLine,
				Request: string(searchBody(tmpl))}
		case res.Status != http.StatusOK:
			r.statusOutcome(&out, kind, res.Status, tmpl)
		default:
			out.completed = true
		}
		return out
	case "pathological":
		name, status, err := client.Pathological(ctx, int(n))
		switch {
		case err != nil:
			r.transportOutcome(ctx, &out, err)
		case status < 400 || status > 499:
			out.completed, out.failed, out.errKey = true, true, "pathological_unexpected"
			out.failure = &Failure{Op: kind, Status: status,
				Error: fmt.Sprintf("pathological request %q drew %d, want a 4xx rejection", name, status)}
		default:
			out.completed = true
		}
		return out
	default:
		out.failed, out.errKey = true, "unknown_op"
		return out
	}

	if kind == "write" {
		doc := "books.xml"
		if n%2 == 1 && r.Spec.Corpus.Books > 0 {
			doc = "reviews.xml"
		}
		status, err := client.Replace(ctx, doc, churnContent(r.Spec.Corpus, doc, n))
		switch {
		case err != nil:
			r.transportOutcome(ctx, &out, err)
		case status != http.StatusOK:
			out.completed, out.failed, out.errKey = true, true, fmt.Sprintf("http_%d", status)
			out.failure = &Failure{Op: kind, Status: status, Error: fmt.Sprintf("replace %s answered %d", doc, status)}
		default:
			out.completed = true
		}
		return out
	}

	tmpl := templates[int(n)%len(templates)]
	if kind == "paginate" {
		if tmpl.TopK == 0 {
			tmpl.TopK = 5
		}
		tmpl.Offset = int(1+n%3) * tmpl.TopK
	}
	out.template = &tmpl
	status, _, err := client.Search(ctx, tmpl)
	switch {
	case err != nil:
		r.transportOutcome(ctx, &out, err)
	case status != http.StatusOK:
		r.statusOutcome(&out, kind, status, tmpl)
	default:
		out.completed = true
	}
	return out
}

// transportOutcome classifies a request that never got a response. A
// phase-deadline cancellation is the runner's own doing, not a serving
// failure — it is dropped from the books entirely.
func (r *Runner) transportOutcome(ctx context.Context, out *opOutcome, err error) {
	if ctx.Err() != nil {
		out.dropped = true
		return
	}
	out.failed, out.errKey = true, "transport"
	out.failure = &Failure{Op: out.op, Error: err.Error()}
	out.template = nil // no point explaining a request that never arrived
}

// statusOutcome classifies an unexpected HTTP status on a well-formed
// request.
func (r *Runner) statusOutcome(out *opOutcome, kind string, status int, tmpl RequestTemplate) {
	out.completed, out.failed = true, true
	out.errKey = fmt.Sprintf("http_%d", status)
	out.failure = &Failure{Op: kind, Status: status,
		Error:   fmt.Sprintf("%s answered %d to a well-formed request", kind, status),
		Request: string(searchBody(tmpl))}
}

// churn is the single-threaded mutation loop: every interval it replaces
// (or deletes and re-adds) one of the configured documents with
// deterministically regenerated content, mirrors each acknowledged
// mutation into the oracle, and periodically pauses to byte-compare a
// live response against the oracle's sequential answer.
func (r *Runner) churn(ctx context.Context, client *Client, oracle *Oracle, col *collector, done chan<- *SoakReport) {
	spec := r.Spec
	cfg := spec.Churn
	soak := &SoakReport{}
	// A churn op that fails (or whose ack never arrived) leaves the
	// server and the oracle potentially divergent; spot checks stop, the
	// taint is recorded, and the churn keeps running — mutation load is
	// still load.
	tainted := false
	ticker := time.NewTicker(time.Duration(cfg.Interval))
	defer ticker.Stop()
	defer func() { done <- soak }()
	for i := int64(0); ; i++ {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		doc := cfg.Documents[int(i)%len(cfg.Documents)]
		content := churnContent(spec.Corpus, doc, i)
		if cfg.DeleteEvery > 0 && (i+1)%int64(cfg.DeleteEvery) == 0 {
			if !r.churnDelete(ctx, client, oracle, col, soak, &tainted, doc, content) {
				return
			}
		} else {
			if !r.churnReplace(ctx, client, oracle, col, soak, &tainted, doc, content) {
				return
			}
		}
		soak.ChurnOps++
		if oracle != nil && !tainted && cfg.SpotCheckEvery > 0 && (i+1)%int64(cfg.SpotCheckEvery) == 0 {
			r.spotCheck(ctx, client, oracle, col, soak, i)
		}
	}
}

// churnReplace replaces doc on the server and mirrors it on success; it
// reports false only when the run is shutting down.
func (r *Runner) churnReplace(ctx context.Context, client *Client, oracle *Oracle, col *collector, soak *SoakReport, tainted *bool, doc, content string) bool {
	status, err := client.Replace(ctx, doc, content)
	if err != nil {
		if ctx.Err() != nil {
			return false
		}
		*tainted = true
		col.count("transport")
		col.addFailure(Failure{Op: "churn_replace", Phase: "churn", Error: err.Error()})
		return true
	}
	if status != http.StatusOK {
		*tainted = true
		col.count(fmt.Sprintf("http_%d", status))
		col.addFailure(Failure{Op: "churn_replace", Phase: "churn", Status: status,
			Error: fmt.Sprintf("replace %s answered %d", doc, status)})
		return true
	}
	soak.Replaces++
	if oracle != nil {
		if err := oracle.Replace(doc, content); err != nil {
			*tainted = true
			col.addFailure(Failure{Op: "churn_replace", Phase: "churn", Error: "oracle replace: " + err.Error()})
		}
	}
	return true
}

// churnDelete deletes doc and re-adds it with fresh content, mirroring
// both ops; it reports false only when the run is shutting down.
func (r *Runner) churnDelete(ctx context.Context, client *Client, oracle *Oracle, col *collector, soak *SoakReport, tainted *bool, doc, content string) bool {
	status, err := client.Delete(ctx, doc)
	if err != nil || status != http.StatusOK {
		if ctx.Err() != nil {
			return false
		}
		*tainted = true
		key := "transport"
		if err == nil {
			key = fmt.Sprintf("http_%d", status)
		}
		col.count(key)
		col.addFailure(Failure{Op: "churn_delete", Phase: "churn", Status: status,
			Error: fmt.Sprintf("delete %s: status %d err %v", doc, status, err)})
		return true
	}
	soak.Deletes++
	if oracle != nil {
		if err := oracle.Delete(doc); err != nil {
			*tainted = true
			col.addFailure(Failure{Op: "churn_delete", Phase: "churn", Error: "oracle delete: " + err.Error()})
		}
	}
	status, err = client.Add(ctx, doc, content)
	if err != nil || status != http.StatusCreated {
		if ctx.Err() != nil {
			return false
		}
		*tainted = true
		key := "transport"
		if err == nil {
			key = fmt.Sprintf("http_%d", status)
		}
		col.count(key)
		col.addFailure(Failure{Op: "churn_readd", Phase: "churn", Status: status,
			Error: fmt.Sprintf("re-add %s: status %d err %v", doc, status, err)})
		return true
	}
	if oracle != nil {
		if err := oracle.Add(doc, content); err != nil {
			*tainted = true
			col.addFailure(Failure{Op: "churn_readd", Phase: "churn", Error: "oracle add: " + err.Error()})
		}
	}
	return true
}

// spotCheck byte-compares one live search against the oracle. It runs on
// the churner goroutine with no mutation in flight, so the corpus state
// is exactly the mutation sequence both sides have applied — any byte of
// divergence is a serving bug, and gets the execution trace attached.
func (r *Runner) spotCheck(ctx context.Context, client *Client, oracle *Oracle, col *collector, soak *SoakReport, i int64) {
	tmpl := r.Spec.Requests[int(i)%len(r.Spec.Requests)]
	status, results, err := client.Search(ctx, tmpl)
	if err != nil {
		if ctx.Err() == nil {
			col.count("transport")
		}
		return
	}
	soak.SpotChecks++
	if status != http.StatusOK {
		soak.Mismatches++
		col.count(fmt.Sprintf("http_%d", status))
		col.addFailure(Failure{Op: "spot_check", Phase: "churn", Status: status,
			Error:   fmt.Sprintf("spot check answered %d", status),
			Request: string(searchBody(tmpl))})
		return
	}
	diff, err := oracle.Compare(tmpl, results)
	if err != nil {
		soak.Mismatches++
		col.count("oracle_mismatch")
		col.addFailure(Failure{Op: "spot_check", Phase: "churn", Error: err.Error(),
			Request: string(searchBody(tmpl))})
		return
	}
	if diff != "" {
		soak.Mismatches++
		col.count("oracle_mismatch")
		f := Failure{Op: "spot_check", Phase: "churn",
			Error:   "response diverged from the single-threaded oracle: " + diff,
			Request: string(searchBody(tmpl))}
		if col.takeExplainSlot() {
			f.Explain = client.Explain(ctx, tmpl)
		}
		col.addFailure(f)
	}
}
