package loadkit

import (
	"path/filepath"
	"strings"
	"testing"

	"vxml/internal/benchkit"
)

// sampleReport builds a minimal structurally-valid report.
func sampleReport() *Report {
	var h Histogram
	for v := int64(100); v <= 200; v++ {
		h.Record(v)
	}
	lat := h.Summary()
	return &Report{
		Schema:        SchemaVersion,
		Spec:          "unit",
		GeneratedBy:   "vxmlload",
		Target:        "self",
		DurationScale: 1,
		RateScale:     1,
		Host:          benchkit.HostInfo(),
		DurationMillis: 1234,
		Phases: []PhaseReport{{
			Name:           "warm",
			DurationMillis: 1000,
			Totals:         Totals{Requests: 101, Errors: 1, QPS: 101, Latency: lat},
			Ops: map[string]OpStats{
				"search": {Requests: 80, Errors: 1, Latency: lat},
				"stream": {Requests: 21, Latency: lat},
			},
		}},
		Overall: Totals{Requests: 101, Errors: 1, QPS: 101, Latency: lat},
		Errors:  map[string]int64{"http_500": 1},
		Resources: Resources{
			Samples: 10, GoroutinesBaseline: 8, GoroutinesMax: 40,
			GoroutinesAfterDrain: 9, DrainedToBaseline: true, HeapBytesMax: 1 << 20,
		},
		Soak:     &SoakReport{ChurnOps: 10, Replaces: 7, Deletes: 3, SpotChecks: 5},
		Failures: []Failure{{Op: "search", Phase: "warm", Status: 500, Error: "kaboom"}},
	}
}

func TestReportValidateAcceptsWellFormed(t *testing.T) {
	data, err := sampleReport().Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if err := Validate(data); err != nil {
		t.Fatalf("Validate rejected a well-formed report: %v", err)
	}
}

func TestReportValidateRejections(t *testing.T) {
	base := string(mustEncode(t, sampleReport()))
	cases := []struct {
		name string
		data string
		want string
	}{
		{"wrong schema", strings.Replace(base, `"vxmlload/1"`, `"vxmlload/9"`, 1), "schema"},
		{"unknown field", strings.Replace(base, `"spec": "unit"`, `"spec": "unit", "extra": 1`, 1), "decode"},
		{"op sum mismatch", strings.Replace(base, `"requests": 80`, `"requests": 70`, 1), "sum"},
		{"overall mismatch", strings.Replace(base, `"requests": 101,
    "errors": 1,
    "qps": 101`, `"requests": 999,
    "errors": 1,
    "qps": 101`, 2), ""},
		{"mismatches exceed checks", strings.Replace(base, `"mismatches": 0`, `"mismatches": 99`, 1), "exceed"},
		{"errors exceed requests", strings.Replace(base, `"errors": 1,
      "qps"`, `"errors": 500,
      "qps"`, 1), "inconsistent"},
		{"missing target", strings.Replace(base, `"target": "self"`, `"target": ""`, 1), "target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.data == base {
				t.Fatalf("mutation did not apply — test fixture drifted")
			}
			err := Validate([]byte(tc.data))
			if err == nil {
				t.Fatalf("Validate accepted a broken report")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestReportWriteFileRefusesInvalid(t *testing.T) {
	dir := t.TempDir()
	r := sampleReport()
	path := filepath.Join(dir, "BENCH_LOAD_unit.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatalf("WriteFile(valid): %v", err)
	}
	if err := ValidateFile(path); err != nil {
		t.Fatalf("ValidateFile round-trip: %v", err)
	}
	r.Overall.Requests = 999 // breaks the phase-sum invariant
	bad := filepath.Join(dir, "BENCH_LOAD_bad.json")
	if err := r.WriteFile(bad); err == nil {
		t.Fatalf("WriteFile wrote a report that fails its own validation")
	}
	if err := ValidateFile(bad); err == nil {
		t.Fatalf("invalid report reached disk")
	}
}

func mustEncode(t *testing.T, r *Report) []byte {
	t.Helper()
	data, err := r.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return data
}
