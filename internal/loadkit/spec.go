// Package loadkit is the traffic-shaped load and soak harness behind
// cmd/vxmlload. Where internal/benchkit measures ns/op per scenario in
// isolation, loadkit drives declarative workload specs — phases with
// arrival rates, open- and closed-loop clients, read/stream/paginate
// mixes, burst ramps, mid-run replace/delete churn and pathological
// inputs — against a real internal/server over HTTP, records every
// request's latency into a log-linear histogram, and emits a
// schema-versioned vxmlload/1 report (p50/p95/p99/p999, sustained QPS, an
// error taxonomy, goroutine/heap ceilings) into the same BENCH_*.json
// family. In soak mode a single-threaded oracle Database mirrors every
// mutation the churner sends and spot-checks response byte-identity;
// flagged requests get their query plan captured through POST /v1/explain
// the way vcltest attaches VCL line traces to failures.
package loadkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// SpecSchemaVersion identifies the scenario-spec layout Spec parses.
// Parsing is strict — unknown fields are rejected — so the version string
// fully determines the layout; bump it for any field change.
const SpecSchemaVersion = "vxmlload-spec/1"

// Duration is a time.Duration that marshals as a Go duration string
// ("1500ms", "10s") so spec files stay human-editable.
type Duration time.Duration

// UnmarshalJSON parses a Go duration string.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"250ms\": %w", err)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return err
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Spec is one declarative workload scenario: the corpus and views it runs
// over, the pool of search request templates the traffic draws from, the
// phases that shape the traffic over time, and (optionally) the mutation
// churn that runs underneath it.
type Spec struct {
	// Schema must be SpecSchemaVersion.
	Schema string `json:"schema"`
	// Name identifies the scenario in the report ("steady-read").
	Name string `json:"name"`
	// Description says what the scenario exercises, for readers.
	Description string `json:"description"`
	// Corpus declares the documents the scenario runs over.
	Corpus Corpus `json:"corpus"`
	// Views are defined on the server (self-serve mode) and on the soak
	// oracle; in -target mode they must already exist server-side.
	Views []ViewSpec `json:"views"`
	// Requests is the template pool read traffic draws from round-robin.
	Requests []RequestTemplate `json:"requests"`
	// Phases run in order; each shapes traffic for its duration.
	Phases []Phase `json:"phases"`
	// Churn, when present, runs a single-threaded mutation loop under the
	// read traffic for the whole run.
	Churn *Churn `json:"churn,omitempty"`
}

// Corpus declares the scenario's documents: a deterministic generated
// books/reviews pair (Books > 0 — the same generator, seed included, that
// `vxmlserve -demo` uses, so a spec can describe an externally booted demo
// server exactly), plus optional inline documents.
type Corpus struct {
	// Books sizes the generated corpus: Books books plus 2×Books reviews,
	// registered as "books.xml" and "reviews.xml".
	Books int `json:"books,omitempty"`
	// Seed drives the deterministic generator.
	Seed int64 `json:"seed,omitempty"`
	// Documents are inline extras, added after the generated pair.
	Documents []DocumentSpec `json:"documents,omitempty"`
}

// DocumentSpec is one inline corpus document.
type DocumentSpec struct {
	// Name registers the document; XML is its content.
	Name string `json:"name"`
	// XML is the document text.
	XML string `json:"xml"`
}

// ViewSpec is one named view definition.
type ViewSpec struct {
	// Name registers the view; XQuery defines it.
	Name string `json:"name"`
	// XQuery is the view definition.
	XQuery string `json:"xquery"`
}

// RequestTemplate is one entry of the read-traffic pool: the search
// request body the harness sends, shared by the one-shot, streaming and
// paginating op kinds.
type RequestTemplate struct {
	// View names the registered view to search.
	View string `json:"view"`
	// Keywords are the search keywords.
	Keywords []string `json:"keywords"`
	// TopK, Offset, Disjunctive, Cache and Parallelism mirror the
	// /v1/search request fields.
	TopK        int  `json:"top_k,omitempty"`
	Offset      int  `json:"offset,omitempty"`
	Disjunctive bool `json:"disjunctive,omitempty"`
	Cache       bool `json:"cache,omitempty"`
	Parallelism int  `json:"parallelism,omitempty"`
}

// Phase is one traffic-shaping window: how many client workers run, how
// arrivals are paced, and the op mix they draw.
type Phase struct {
	// Name labels the phase in the report ("warmup", "burst").
	Name string `json:"name"`
	// Duration is the phase length (scaled by the runner's DurationScale).
	Duration Duration `json:"duration"`
	// Clients is the worker count: the concurrency cap in open-loop
	// phases, the exact loop count in closed-loop ones.
	Clients int `json:"clients"`
	// Rate is the open-loop arrival rate in requests/second; 0 selects
	// closed-loop pacing (each client issues its next request as soon as
	// the previous one completes). Open-loop latency is measured from the
	// scheduled arrival time, so queueing behind a saturated server counts
	// against the latency distribution instead of being coordinated away.
	Rate float64 `json:"rate,omitempty"`
	// RateEnd, when > 0, ramps the arrival rate linearly from Rate to
	// RateEnd across the phase — the burst-ramp shape.
	RateEnd float64 `json:"rate_end,omitempty"`
	// Mix weights the op kinds: "search", "stream", "paginate",
	// "pathological" and "write". Weights are relative, not percentages.
	Mix map[string]float64 `json:"mix"`
}

// Churn configures the single-threaded mutation loop that runs under the
// read traffic: every Interval it replaces one of Documents with
// deterministically regenerated content (every DeleteEvery-th op is a
// delete + re-add instead), and every SpotCheckEvery-th op pauses to
// byte-compare a live search response against the single-threaded oracle
// Database that mirrored every mutation.
type Churn struct {
	// Interval paces the mutation loop.
	Interval Duration `json:"interval"`
	// Documents are the corpus documents the loop cycles over; each must
	// be "books.xml" or "reviews.xml" (their content is regenerated with
	// the corpus generator, so views over them keep matching).
	Documents []string `json:"documents"`
	// DeleteEvery makes every Nth op a delete + re-add (0 = never).
	DeleteEvery int `json:"delete_every,omitempty"`
	// SpotCheckEvery runs an oracle byte-identity spot check every Nth op
	// (0 = oracle disabled).
	SpotCheckEvery int `json:"spot_check_every,omitempty"`
}

// opKinds are the mix keys a phase may use.
var opKinds = map[string]bool{
	"search": true, "stream": true, "paginate": true, "pathological": true, "write": true,
}

// ParseSpec decodes and validates a scenario spec. Unknown fields are
// rejected, so a typoed key fails loudly instead of silently shaping no
// traffic.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("loadkit: spec does not decode as %s: %w", SpecSchemaVersion, err)
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("loadkit: invalid spec: %w", err)
	}
	return &s, nil
}

// LoadSpec reads and parses a scenario spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// validate enforces the structural invariants the runner assumes.
func (s *Spec) validate() error {
	if s.Schema != SpecSchemaVersion {
		return fmt.Errorf("schema is %q, want %q", s.Schema, SpecSchemaVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("missing name")
	}
	if s.Corpus.Books < 0 {
		return fmt.Errorf("corpus.books must be >= 0")
	}
	if s.Corpus.Books == 0 && len(s.Corpus.Documents) == 0 {
		return fmt.Errorf("corpus declares no documents")
	}
	for _, d := range s.Corpus.Documents {
		if d.Name == "" || d.XML == "" {
			return fmt.Errorf("inline document needs both name and xml")
		}
	}
	if len(s.Views) == 0 {
		return fmt.Errorf("no views")
	}
	viewNames := map[string]bool{}
	for _, v := range s.Views {
		if v.Name == "" || v.XQuery == "" {
			return fmt.Errorf("view needs both name and xquery")
		}
		if viewNames[v.Name] {
			return fmt.Errorf("duplicate view %q", v.Name)
		}
		viewNames[v.Name] = true
	}
	if len(s.Requests) == 0 {
		return fmt.Errorf("no request templates")
	}
	for i, r := range s.Requests {
		if !viewNames[r.View] {
			return fmt.Errorf("requests[%d] references undefined view %q", i, r.View)
		}
		if len(r.Keywords) == 0 {
			return fmt.Errorf("requests[%d] has no keywords", i)
		}
		if r.TopK < 0 || r.Offset < 0 || r.Parallelism < 0 {
			return fmt.Errorf("requests[%d] has negative top_k/offset/parallelism", i)
		}
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("no phases")
	}
	mixHasWrite := false
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("phases[%d] has no name", i)
		}
		if time.Duration(p.Duration) <= 0 {
			return fmt.Errorf("phase %q has non-positive duration", p.Name)
		}
		if p.Clients <= 0 {
			return fmt.Errorf("phase %q needs clients >= 1", p.Name)
		}
		if p.Rate < 0 || p.RateEnd < 0 {
			return fmt.Errorf("phase %q has a negative rate", p.Name)
		}
		if p.RateEnd > 0 && p.Rate == 0 {
			return fmt.Errorf("phase %q sets rate_end without rate (ramps are open-loop)", p.Name)
		}
		if len(p.Mix) == 0 {
			return fmt.Errorf("phase %q has an empty mix", p.Name)
		}
		total := 0.0
		for kind, w := range p.Mix {
			if !opKinds[kind] {
				return fmt.Errorf("phase %q mixes unknown op %q (want search, stream, paginate, pathological, write)", p.Name, kind)
			}
			if w < 0 {
				return fmt.Errorf("phase %q has a negative weight for %q", p.Name, kind)
			}
			if kind == "write" && w > 0 {
				mixHasWrite = true
			}
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("phase %q has no positive mix weight", p.Name)
		}
	}
	if mixHasWrite && s.Corpus.Books == 0 {
		return fmt.Errorf("a write mix needs a generated corpus (corpus.books > 0) to regenerate content from")
	}
	if c := s.Churn; c != nil {
		if time.Duration(c.Interval) <= 0 {
			return fmt.Errorf("churn needs a positive interval")
		}
		if len(c.Documents) == 0 {
			return fmt.Errorf("churn lists no documents")
		}
		if s.Corpus.Books == 0 {
			return fmt.Errorf("churn needs a generated corpus (corpus.books > 0) to regenerate content from")
		}
		for _, d := range c.Documents {
			if d != "books.xml" && d != "reviews.xml" {
				return fmt.Errorf("churn document %q is not part of the generated pair (books.xml, reviews.xml)", d)
			}
		}
		if c.DeleteEvery < 0 || c.SpotCheckEvery < 0 {
			return fmt.Errorf("churn delete_every/spot_check_every must be >= 0")
		}
		if c.SpotCheckEvery > 0 && mixHasWrite {
			return fmt.Errorf("oracle spot checks require all mutations to flow through the churner; remove \"write\" from the mix")
		}
	}
	return nil
}
