package loadkit

import (
	"math"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 10000; v++ {
		h.Record(v)
	}
	if h.Count() != 10000 {
		t.Fatalf("count = %d, want 10000", h.Count())
	}
	s := h.Summary()
	if s.MinMicros != 1 || s.MaxMicros != 10000 {
		t.Fatalf("min/max = %d/%d, want exact 1/10000", s.MinMicros, s.MaxMicros)
	}
	// Log-linear buckets with 16 sub-buckets guarantee ~6% relative
	// error; allow 8% slack.
	check := func(name string, got, want int64) {
		t.Helper()
		if math.Abs(float64(got-want)) > 0.08*float64(want) {
			t.Errorf("%s = %d, want within 8%% of %d", name, got, want)
		}
	}
	check("p50", s.P50Micros, 5000)
	check("p95", s.P95Micros, 9500)
	check("p99", s.P99Micros, 9900)
	check("p999", s.P999Micros, 9990)
	check("mean", s.MeanMicros, 5000)
	for _, q := range []int64{s.P50Micros, s.P95Micros, s.P99Micros, s.P999Micros} {
		if q < s.MinMicros || q > s.MaxMicros {
			t.Errorf("quantile %d escapes [min, max]", q)
		}
	}
}

func TestHistogramSingleValueAndEmpty(t *testing.T) {
	var h Histogram
	if s := h.Summary(); s != (LatencySummary{}) {
		t.Fatalf("empty histogram summarizes to %+v, want zero", s)
	}
	h.Record(742)
	s := h.Summary()
	if s.MinMicros != 742 || s.MaxMicros != 742 || s.P50Micros != 742 || s.P999Micros != 742 {
		t.Fatalf("single observation must clamp every quantile to it: %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(1); v <= 100; v++ {
		a.Record(v)
		b.Record(v * 100)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", a.Count())
	}
	s := a.Summary()
	if s.MinMicros != 1 || s.MaxMicros != 10000 {
		t.Fatalf("merged min/max = %d/%d, want 1/10000", s.MinMicros, s.MaxMicros)
	}
	if s.P95Micros < 5000 {
		t.Fatalf("p95 = %d: merge lost b's heavy tail", s.P95Micros)
	}
}
