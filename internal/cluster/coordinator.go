package cluster

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"vxml"
	"vxml/internal/catalog"
	"vxml/internal/docname"
	"vxml/internal/qpt"
	"vxml/internal/xq"
)

// ErrStaleGeneration reports a distributed search that could not observe a
// stable generation vector within the bounded retry budget: some node kept
// answering at a generation other than the coordinator expected (a mutation
// storm, or a replica that was bootstrapped from an outdated snapshot).
// The HTTP layer maps it to 503 — the condition is transient and the
// request is safe to retry.
var ErrStaleGeneration = errors.New("cluster: generation vector stale")

// ErrUnroutableView reports a search over a view that references
// partitioned documents on more than one node without being scatterable:
// no node holds every document the evaluation needs, and cross-node joins
// are not implemented. The HTTP layer maps it to 400.
var ErrUnroutableView = errors.New("cluster: view cannot be routed over the partitioned corpus")

// ErrNodeUnavailable reports a mutation that could not reach the owning
// slot's primary (connection failure or per-RPC timeout): the corpus is
// unchanged on that slot and the request is safe to retry once the node
// returns. The HTTP layer maps it to 502 — the failure is the cluster's,
// not the client's.
var ErrNodeUnavailable = errors.New("cluster: node unavailable")

// Defaults for Config's zero fields.
const (
	defaultTimeout       = 30 * time.Second
	defaultRetries       = 1
	defaultSearchRetries = 3
)

// Config describes a cluster to a Coordinator.
type Config struct {
	// Slots lists the cluster members: Slots[i] holds the base URLs of the
	// processes serving corpus partition i, primary first, read replicas
	// after. Mutations go to the primary only; reads fail over in order.
	Slots [][]string
	// Partition holds the document-name patterns (docname wildcards) that
	// hash-partition across slots; every other document is broadcast to
	// all slots. Nil defaults to {"part-*"}. An empty (non-nil) slice
	// broadcasts everything.
	Partition []string
	// Timeout bounds each node RPC attempt, including reading a streamed
	// reply. 0 defaults to 30s.
	Timeout time.Duration
	// Retries is the number of extra attempts per member after a transport
	// failure. 0 defaults to 1; negative means none.
	Retries int
	// SearchRetries is the number of times a whole search is re-issued
	// when a node answers at an unexpectedly newer generation (a mutation
	// landed mid-search). 0 defaults to 3; negative means none.
	SearchRetries int
	// Client is the HTTP client for node RPCs; nil uses a private default.
	Client *http.Client
}

// docInfo is one registry entry: where a document lives and what the
// cluster-global ID the coordinator assigned it is.
type docInfo struct {
	id    int32
	slot  int // owning slot; -1 = broadcast (resident on every slot)
	bytes int
}

// compiledView is the coordinator's compilation of a view: enough structure
// to route searches, none of the per-corpus index state (nodes hold that).
type compiledView struct {
	text string
	// refs are the distinct document references (names and patterns) of
	// the view's QPTs.
	refs []string
	// outerRef is the document reference the outer FLWOR binding ranges
	// over, or "" when the view has no such shape.
	outerRef string
	// refCount counts every fn:doc/fn:collection occurrence per reference
	// across the whole query — an outer reference used again inside the
	// view is a self-join and must not be scattered.
	refCount map[string]int
}

// Coordinator owns the cluster-global state — document registry, document
// ID allocation, per-slot generation vector, view registry, query-result
// catalog — and serves the same search/mutation surface as a vxml.Database,
// scatter-gathering over the configured nodes. Results are byte-identical
// to a single-process database holding the same corpus (see the package
// documentation for the argument). It is safe for concurrent use.
//
// The catalog is the same type the single-process engine uses
// (internal/catalog): the coordinator's tiers are the exact result cache
// and the TopK-window rewrite over the shared unpaged entry; skeleton and
// materialized artifacts live node-side, inside each member's own engine.
type Coordinator struct {
	cfg    Config
	client *http.Client
	cache  *catalog.Catalog

	// mutMu serializes mutations and is held across their node RPCs; mu
	// guards the registry state below and is held only for memory access,
	// so searches snapshot the registry without waiting out a mutation's
	// network round trips.
	mutMu sync.Mutex
	mu    sync.RWMutex
	// gens is the generation vector: gens[s] is the generation slot s's
	// corpus must answer reads at. Each acknowledged mutation on a slot
	// advances it by one.
	gens   []uint64
	docs   map[string]*docInfo
	views  map[string]*compiledView
	nextID int32
}

// NewCoordinator validates cfg, applies defaults and returns an empty
// coordinator. Nodes are not contacted; they must simply be empty (or
// snapshot-bootstrapped consistently) when traffic starts.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Slots) == 0 {
		return nil, errors.New("cluster: config needs at least one slot")
	}
	for i, members := range cfg.Slots {
		if len(members) == 0 {
			return nil, fmt.Errorf("cluster: slot %d has no members", i)
		}
	}
	if cfg.Partition == nil {
		cfg.Partition = []string{"part-*"}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = defaultTimeout
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = defaultRetries
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	switch {
	case cfg.SearchRetries == 0:
		cfg.SearchRetries = defaultSearchRetries
	case cfg.SearchRetries < 0:
		cfg.SearchRetries = 0
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{
		cfg:    cfg,
		client: client,
		cache:  catalog.New(0),
		gens:   make([]uint64, len(cfg.Slots)),
		docs:   map[string]*docInfo{},
		views:  map[string]*compiledView{},
		nextID: 1,
	}, nil
}

// partitioned reports whether a document name hash-partitions (matches one
// of the Partition patterns) rather than broadcasting.
func (c *Coordinator) partitioned(name string) bool {
	for _, p := range c.cfg.Partition {
		if docname.Match(p, name) {
			return true
		}
	}
	return false
}

// slotOf assigns a partitioned name its owning slot (FNV-1a, like
// store.ShardOf one level down — any fixed hash works; it only decides
// placement, never results).
func (c *Coordinator) slotOf(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(c.cfg.Slots)))
}

// AddDocument parses, stores and indexes a document on its owning slot
// (partitioned names) or on every slot (broadcast names), under a freshly
// allocated cluster-global document ID, then invalidates the query-result
// cache — the cluster-wide equivalent of Database.Add.
func (c *Coordinator) AddDocument(ctx context.Context, name, xmlText string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: add interrupted: %w", err)
	}
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	c.mu.Lock()
	_, dup := c.docs[name]
	id := c.nextID
	if !dup {
		// Reserve the ID before pushing: a failed mutation may still have
		// landed on some node (partial broadcast, ambiguous timeout), so the
		// ID is consumed either way and must never be handed to a different
		// document.
		c.nextID = id + 1
	}
	c.mu.Unlock()
	if dup {
		return fmt.Errorf("cluster: add: %w: %q", vxml.ErrDuplicateDocument, name)
	}
	slot := -1
	if c.partitioned(name) {
		slot = c.slotOf(name)
	}
	byteLen, err := c.mutate(ctx, "add", slot, documentRequest{Schema: Schema, Op: "add", Name: name, XML: xmlText, DocID: id})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.docs[name] = &docInfo{id: id, slot: slot, bytes: byteLen}
	c.mu.Unlock()
	c.cache.Invalidate()
	return nil
}

// ReplaceDocument atomically swaps a document's content cluster-wide. Like
// Database.Replace, the replacement is a new document in global order: it
// receives a fresh coordinator-assigned ID, so collection views on every
// node enumerate it last.
func (c *Coordinator) ReplaceDocument(ctx context.Context, name, xmlText string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: replace interrupted: %w", err)
	}
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	c.mu.Lock()
	info, ok := c.docs[name]
	id := c.nextID
	var slot int
	if ok {
		slot = info.slot
		// Reserved up front for the same reason AddDocument reserves: a
		// failed push may have consumed the ID on some node.
		c.nextID = id + 1
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: replace: %w %q", vxml.ErrUnknownDocument, name)
	}
	byteLen, err := c.mutate(ctx, "replace", slot, documentRequest{Schema: Schema, Op: "replace", Name: name, XML: xmlText, DocID: id})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.docs[name] = &docInfo{id: id, slot: slot, bytes: byteLen}
	c.mu.Unlock()
	c.cache.Invalidate()
	return nil
}

// DeleteDocument removes a document cluster-wide and invalidates the
// query-result cache.
func (c *Coordinator) DeleteDocument(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("cluster: delete interrupted: %w", err)
	}
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	c.mu.RLock()
	info, ok := c.docs[name]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("cluster: delete: %w %q", vxml.ErrUnknownDocument, name)
	}
	if _, err := c.mutate(ctx, "delete", info.slot, documentRequest{Schema: Schema, Op: "delete", Name: name}); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.docs, name)
	c.mu.Unlock()
	c.cache.Invalidate()
	return nil
}

// mutate applies one mutation on the owning slot (slot >= 0) or on every
// slot (slot < 0), advancing each slot's generation as its primary
// acknowledges. The registry is only updated by the caller after full
// success. A failure mid-broadcast is repaired in place: a half-applied
// add is compensated with best-effort deletes (undoAdd) so the name is
// left unregistered everywhere and a retry starts clean, and a delete
// that finds the document already absent on some slot (a prior
// partially-failed delete) treats absence as the goal state and moves on.
// A half-applied replace is the one case left divergent until the failed
// slot recovers — the coordinator keeps the old registry entry, and only
// broadcast documents can be mid-replace, so partitioned reads are never
// affected.
func (c *Coordinator) mutate(ctx context.Context, verb string, slot int, req documentRequest) (int, error) {
	targets := make([]int, 0, len(c.cfg.Slots))
	if slot >= 0 {
		targets = append(targets, slot)
	} else {
		for s := range c.cfg.Slots {
			targets = append(targets, s)
		}
	}
	byteLen := 0
	acked := make([]int, 0, len(targets))
	for _, s := range targets {
		c.mu.RLock()
		gen := c.gens[s]
		primary := c.cfg.Slots[s][0]
		c.mu.RUnlock()
		req.SetGen = gen + 1
		var resp documentResponse
		if err := c.postJSON(ctx, primary, "/documents", req, &resp); err != nil {
			var ne *nodeCallError
			if req.Op == "delete" && errors.As(err, &ne) && ne.Code == codeUnknownDocument {
				// The document is already gone on this slot (a prior
				// partially-failed delete): absence is what a delete wants,
				// so count the slot as done. The registry guaranteed the
				// name was registered before we got here, so this can only
				// be repair, not a user error.
				continue
			}
			if req.Op == "add" {
				c.undoAdd(ctx, req.Name, append(acked, s))
			}
			return 0, c.mutationError(ctx, verb, req.Name, s, err)
		}
		byteLen = resp.ByteLen
		c.mu.Lock()
		c.gens[s] = gen + 1
		c.mu.Unlock()
		acked = append(acked, s)
	}
	return byteLen, nil
}

// undoAdd best-effort deletes a partially-applied add from every slot that
// may hold it, so the name is left unregistered cluster-wide and a retry
// (or any later add of the same name) starts clean rather than tripping
// over an orphan. The failed slot is included because a timeout is
// ambiguous — the node may have applied the add before the deadline — and
// deleting an absent name is a cheap rejected RPC. Compensation runs on a
// cancellation-free context so a caller that already gave up cannot strand
// the orphan; each RPC is still bounded by the per-call timeout.
func (c *Coordinator) undoAdd(ctx context.Context, name string, slots []int) {
	ctx = context.WithoutCancel(ctx)
	for _, s := range slots {
		c.mu.RLock()
		gen := c.gens[s]
		primary := c.cfg.Slots[s][0]
		c.mu.RUnlock()
		req := documentRequest{Schema: Schema, Op: "delete", Name: name, SetGen: gen + 1}
		var resp documentResponse
		if err := c.postJSON(ctx, primary, "/documents", req, &resp); err != nil {
			// Unreachable, or the slot never applied the add — either way
			// there is nothing left to clean up here.
			continue
		}
		c.mu.Lock()
		c.gens[s] = gen + 1
		c.mu.Unlock()
	}
}

// mutationError translates a node mutation failure into the public error
// taxonomy: node-reported duplicate/unknown conditions keep their vxml
// sentinels, a canceled caller context keeps its context error, and
// anything else (node down, per-RPC timeout) is ErrNodeUnavailable with
// the transport cause in the message.
func (c *Coordinator) mutationError(ctx context.Context, verb, name string, slot int, err error) error {
	var ne *nodeCallError
	if errors.As(err, &ne) {
		switch ne.Code {
		case codeDuplicate:
			return fmt.Errorf("cluster: %s: %w: %q", verb, vxml.ErrDuplicateDocument, name)
		case codeUnknownDocument:
			return fmt.Errorf("cluster: %s: %w %q", verb, vxml.ErrUnknownDocument, name)
		case codeInvalid:
			// The node rejected the request body (malformed XML) — the
			// client's fault, not the cluster's.
			return fmt.Errorf("cluster: %s %q: %w", verb, name, err)
		}
	}
	if ctxErr := ctx.Err(); ctxErr != nil {
		return fmt.Errorf("cluster: %s %q interrupted: %w", verb, name, ctxErr)
	}
	return fmt.Errorf("%s %q on slot %d primary: %w: %v", verb, name, slot, ErrNodeUnavailable, err)
}

// DefineView compiles and registers a named view cluster-wide: the
// definition is validated against the cluster-wide registry (literal
// references must name registered documents), classified for routing, and
// pushed to every member. A member that is down simply learns the view
// later through the self-healing re-push a read triggers on unknown_view.
// Defining an already-registered name fails with vxml.ErrDuplicateView.
func (c *Coordinator) DefineView(ctx context.Context, name, xquery string) (string, error) {
	return c.defineView(ctx, name, xquery, false)
}

// ForceDefineView is DefineView that silently replaces an existing
// registration — the pre-traffic setup path binaries use, mirroring
// server.Server.DefineView.
func (c *Coordinator) ForceDefineView(ctx context.Context, name, xquery string) (string, error) {
	return c.defineView(ctx, name, xquery, true)
}

func (c *Coordinator) defineView(ctx context.Context, name, xquery string, replace bool) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("cluster: define view interrupted: %w", err)
	}
	q, err := xq.Parse(xquery)
	if err != nil {
		return "", err
	}
	qpts, err := qpt.Generate(q.Body, q.Functions)
	if err != nil {
		return "", err
	}
	cv := &compiledView{text: xquery, outerRef: outerDocRef(q.Body), refCount: countDocRefs(q)}
	for _, qp := range qpts {
		cv.refs = append(cv.refs, qp.Doc)
	}
	c.mu.RLock()
	_, dup := c.views[name]
	for _, ref := range cv.refs {
		if docname.IsPattern(ref) {
			continue
		}
		if _, ok := c.docs[ref]; !ok {
			c.mu.RUnlock()
			return "", fmt.Errorf("cluster: view references %w %q", vxml.ErrUnknownDocument, ref)
		}
	}
	members := c.allMembersLocked()
	c.mu.RUnlock()
	if dup && !replace {
		return "", fmt.Errorf("cluster: %w: %q", vxml.ErrDuplicateView, name)
	}
	for _, m := range members {
		_ = c.pushView(ctx, m, name, xquery) // best-effort; reads self-heal
	}
	c.mu.Lock()
	c.views[name] = cv
	c.mu.Unlock()
	// Catalog registration gives the view a stable ID ("cv1", "cv2", …)
	// that plan stats and /v1/explain report — same discipline as
	// core.Engine.CompileView.
	c.cache.Register(xquery)
	return xquery, nil
}

// pushView ships one view definition to one member.
func (c *Coordinator) pushView(ctx context.Context, member, name, xquery string) error {
	return c.postJSON(ctx, member, "/views", viewRequest{Schema: Schema, Name: name, XQuery: xquery}, nil)
}

// allMembersLocked flattens the member URLs of every slot. Caller holds mu.
func (c *Coordinator) allMembersLocked() []string {
	var members []string
	for _, slot := range c.cfg.Slots {
		members = append(members, slot...)
	}
	return members
}

// HasView reports whether a view name is registered.
func (c *Coordinator) HasView(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.views[name]
	return ok
}

// ViewCount reports the number of registered views.
func (c *Coordinator) ViewCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.views)
}

// DocumentNames returns every registered document name in cluster-global
// document order — the order collection views enumerate them on every node.
func (c *Coordinator) DocumentNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.docs))
	for name := range c.docs {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return c.docs[names[i]].id < c.docs[names[j]].id })
	return names
}

// TotalBytes reports the summed serialized size of all registered
// documents, each counted once regardless of replication.
func (c *Coordinator) TotalBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, info := range c.docs {
		total += info.bytes
	}
	return total
}

// CacheStats snapshots the coordinator's query-result catalog counters.
func (c *Coordinator) CacheStats() catalog.Stats { return c.cache.Stats() }

// PlanProbe reports which catalog tier would answer a cached search over
// the named view with the given keywords, without evaluating anything:
// "cache_hit" when the shared unpaged result-cache entry is resident (both
// exact and TopK-window queries are served from it), otherwise "direct".
// The coordinator has no skeleton or materialized tiers — those artifacts
// live inside each member node's engine. viewID is the catalog ID of the
// view.
func (c *Coordinator) PlanProbe(name string, keywords []string) (source, viewID string, err error) {
	c.mu.RLock()
	cv := c.views[name]
	c.mu.RUnlock()
	if cv == nil {
		return "", "", fmt.Errorf("cluster: %w: %q", vxml.ErrUnknownView, name)
	}
	fullKey := catalog.Key(cv.text, keywords,
		catalog.IntPart(0),
		catalog.BoolPart(false),
		catalog.IntPart(int(vxml.Efficient)))
	if _, ok := c.cache.Probe(fullKey); ok {
		return catalog.PlanCacheHit, c.cache.IDOf(cv.text), nil
	}
	return catalog.PlanDirect, c.cache.IDOf(cv.text), nil
}

// GenVector returns a copy of the current generation vector (diagnostics
// and tests).
func (c *Coordinator) GenVector() []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]uint64, len(c.gens))
	copy(out, c.gens)
	return out
}

// SlotCounters is a point-in-time snapshot of one slot for stats surfaces.
type SlotCounters struct {
	Slot    int
	Members []string
	// Documents and Bytes count the documents resident on the slot —
	// broadcast documents count on every slot, partitioned ones on their
	// owner only.
	Documents int
	Bytes     int
	// Gen is the slot's current generation; since every acknowledged
	// mutation advances it by exactly one, it doubles as the slot's
	// mutation count.
	Gen uint64
}

// Slots snapshots per-slot counters in slot order.
func (c *Coordinator) Slots() []SlotCounters {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]SlotCounters, len(c.cfg.Slots))
	for s := range c.cfg.Slots {
		out[s] = SlotCounters{Slot: s, Members: append([]string(nil), c.cfg.Slots[s]...), Gen: c.gens[s]}
	}
	for _, info := range c.docs {
		if info.slot >= 0 {
			out[info.slot].Documents++
			out[info.slot].Bytes += info.bytes
			continue
		}
		for s := range out {
			out[s].Documents++
			out[s].Bytes += info.bytes
		}
	}
	return out
}

// route is a classification decision: scatter over every slot, or serve
// whole on one slot (slot -1: any slot works).
type route struct {
	scatter bool
	slot    int
}

// classifyLocked decides how to serve a search over cv against the current
// registry. Caller holds mu (read). The decision is per-search because it
// depends on what documents currently match each collection pattern.
//
// Scatter requires: the outer FLWOR binding ranges over a reference that
// resolves to partitioned documents only (each lives on exactly one node,
// so concatenating per-node view outputs in document-ID order reproduces
// the global view output), the outer reference is used exactly once (a
// second use is a self-join across partitions), and every other reference
// resolves to broadcast documents only (bit-identical on every node).
// Otherwise the search runs whole on the single slot owning every
// partitioned document it references — or fails with ErrUnroutableView
// when no such slot exists.
func (c *Coordinator) classifyLocked(cv *compiledView) (route, error) {
	type expansion struct{ partitioned, broadcast []string }
	expand := func(ref string) expansion {
		var ex expansion
		if docname.IsPattern(ref) {
			for name, info := range c.docs {
				if !docname.Match(ref, name) {
					continue
				}
				if info.slot >= 0 {
					ex.partitioned = append(ex.partitioned, name)
				} else {
					ex.broadcast = append(ex.broadcast, name)
				}
			}
			return ex
		}
		if info, ok := c.docs[ref]; ok {
			if info.slot >= 0 {
				ex.partitioned = append(ex.partitioned, ref)
			} else {
				ex.broadcast = append(ex.broadcast, ref)
			}
		}
		return ex
	}

	if outer := cv.outerRef; outer != "" && cv.refCount[outer] == 1 {
		scatterable := len(expand(outer).broadcast) == 0
		if scatterable {
			for _, ref := range cv.refs {
				if ref != outer && len(expand(ref).partitioned) > 0 {
					scatterable = false
					break
				}
			}
		}
		if scatterable {
			return route{scatter: true}, nil
		}
	}
	slot := -1
	for _, ref := range cv.refs {
		for _, name := range expand(ref).partitioned {
			s := c.docs[name].slot
			if slot == -1 {
				slot = s
			} else if slot != s {
				return route{}, fmt.Errorf("%w: it references partitioned documents on multiple nodes", ErrUnroutableView)
			}
		}
	}
	return route{slot: slot}, nil
}

// outerDocRef walks the outer FLWOR binding expression down to its
// document reference: for $x in fn:doc(name)/path… or a collection
// pattern. "" means the view has no scatterable outer shape.
func outerDocRef(e xq.Expr) string {
	fl, ok := e.(*xq.FLWORExpr)
	if !ok || len(fl.Clauses) == 0 || fl.Clauses[0].IsLet {
		return ""
	}
	cur := fl.Clauses[0].In
	for {
		switch x := cur.(type) {
		case *xq.DocExpr:
			return x.Name
		case *xq.StepExpr:
			cur = x.Base
		case *xq.FilterExpr:
			cur = x.Base
		default:
			return ""
		}
	}
}

// countDocRefs counts fn:doc/fn:collection occurrences per reference across
// the whole query, function bodies included (conservatively: a function
// mentioning a reference counts even if never called — that can only
// demote a view from scatter to single-node, never mis-scatter it).
func countDocRefs(q *xq.Query) map[string]int {
	counts := map[string]int{}
	var walk func(e xq.Expr)
	walk = func(e xq.Expr) {
		switch x := e.(type) {
		case nil:
		case *xq.DocExpr:
			counts[x.Name]++
		case *xq.StepExpr:
			walk(x.Base)
		case *xq.FilterExpr:
			walk(x.Base)
			walk(x.Pred)
		case *xq.CmpExpr:
			walk(x.Left)
			walk(x.Right)
		case *xq.CondExpr:
			walk(x.Cond)
			walk(x.Then)
			walk(x.Else)
		case *xq.FLWORExpr:
			for _, cl := range x.Clauses {
				walk(cl.In)
			}
			walk(x.Where)
			walk(x.Return)
		case *xq.ElementExpr:
			for _, ch := range x.Children {
				walk(ch)
			}
		case *xq.SeqExpr:
			for _, it := range x.Items {
				walk(it)
			}
		case *xq.CallExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *xq.FTContainsExpr:
			walk(x.Target)
		}
	}
	walk(q.Body)
	for _, f := range q.Functions {
		walk(f.Body)
	}
	return counts
}

// Explain renders the coordinator's routing plan for a search over the
// named view: classification, target slots and members, the generation
// vector — the cluster-level analogue of Database.Explain (node-local
// index plans live on the nodes).
func (c *Coordinator) Explain(ctx context.Context, name string, keywords []string) (string, error) {
	if err := ctx.Err(); err != nil {
		return "", fmt.Errorf("cluster: explain interrupted: %w", err)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	cv := c.views[name]
	if cv == nil {
		return "", fmt.Errorf("cluster: %w: %q", vxml.ErrUnknownView, name)
	}
	var b strings.Builder
	b.WriteString("view:\n")
	for _, line := range strings.Split(strings.TrimSpace(cv.text), "\n") {
		b.WriteString("  ")
		b.WriteString(strings.TrimSpace(line))
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "\npartition patterns: %s\n", strings.Join(c.cfg.Partition, ", "))
	rt, err := c.classifyLocked(cv)
	switch {
	case err != nil:
		fmt.Fprintf(&b, "route: unroutable: %v\n", err)
	case rt.scatter:
		fmt.Fprintf(&b, "route: scatter-gather over %d slot(s)\n", len(c.cfg.Slots))
	case rt.slot >= 0:
		fmt.Fprintf(&b, "route: single node, slot %d\n", rt.slot)
	default:
		b.WriteString("route: single node, any slot\n")
	}
	for s, members := range c.cfg.Slots {
		fmt.Fprintf(&b, "slot %d @ gen %d: %s\n", s, c.gens[s], strings.Join(members, ", "))
	}
	if len(keywords) > 0 {
		fmt.Fprintf(&b, "keywords: %s\n", strings.Join(keywords, ", "))
	}
	return b.String(), nil
}
