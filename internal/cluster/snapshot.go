package cluster

// Snapshot shipping: a node streams its persisted corpus plus its view
// registry and generation as one NDJSON response, and NewNodeFromSnapshot
// rebuilds a byte-identical replica from that stream. A heap-backed node
// streams the v2 MANIFEST format through store.EmitSaveFiles — the exact
// serialization store.Save writes, so the two can never drift; a
// disk-backed node ships its block files verbatim (data log, then
// MANIFEST.vxd), so the replica inherits the DAG-compressed representation
// byte for byte and opens it without a rebuild. In both formats the
// manifest travels last: a replica that receives a truncated stream fails
// fast instead of opening a partial corpus. Because the snapshot carries
// coordinator-assigned document IDs and the generation it was cut at, a
// bootstrapped replica serves reads indistinguishable from its primary for
// as long as its generation matches the coordinator's vector — and is
// rejected by the generation check, never silently stale, once the primary
// moves on.

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"vxml/internal/core"
	"vxml/internal/diskstore"
	"vxml/internal/store"
)

// fileSnapshotter is the seam a backend implements to ship its persisted
// files verbatim instead of re-serializing documents (diskstore.Store
// does). Files must be emitted with the corpus-committing manifest last.
type fileSnapshotter interface {
	SnapshotFiles(emit func(name string, data []byte) error) error
}

// handleSnapshot streams the node's corpus: header (generation + views),
// one line per persisted file (manifest last), then an explicit done
// marker whose absence tells the receiver the stream was truncated. The
// read lock is held for the whole emission, so the snapshot is a
// consistent cut at exactly the advertised generation. Nothing touches the
// local filesystem: both backends stream straight from memory or their
// already-persisted files.
func (n *Node) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	header := snapshotHeader{Schema: Schema, Gen: n.gen, Views: make([]viewSnapshot, 0, len(n.texts))}
	for name, text := range n.texts {
		header.Views = append(header.Views, viewSnapshot{Name: name, XQuery: text})
	}
	sort.Slice(header.Views, func(i, j int) bool { return header.Views[i].Name < header.Views[j].Name })

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	if err := enc.Encode(header); err != nil {
		return
	}
	sendFile := func(name string, data []byte) error {
		return enc.Encode(snapshotChunk{File: name, Data: base64.StdEncoding.EncodeToString(data)})
	}
	var err error
	if fs, ok := n.engine.Store.(fileSnapshotter); ok {
		err = fs.SnapshotFiles(sendFile)
	} else {
		err = store.EmitSaveFiles(n.engine.Store, func(f store.SaveFile) error {
			var buf bytes.Buffer
			if werr := f.WriteTo(&buf); werr != nil {
				return werr
			}
			return sendFile(f.Name, buf.Bytes())
		})
	}
	if err != nil {
		// Headers are long gone; an in-stream error line is all we can do,
		// and the absent done marker makes truncation unmistakable anyway.
		_ = enc.Encode(snapshotChunk{Error: err.Error(), Code: codeInternal})
		return
	}
	_ = enc.Encode(snapshotChunk{Done: true})
}

// NewNodeFromSnapshot bootstraps a node (typically a read replica) from
// another node's snapshot stream: it fetches GET /cluster/v1/snapshot from
// baseURL, restores the corpus (document IDs and shard count preserved),
// compiles the shipped views, and adopts the snapshot's generation. The
// stream's own file names say which backend the primary runs: a shipped
// MANIFEST.vxd opens as a disk-resident store over the received block
// files (kept in a temp directory for the node's lifetime — Close removes
// it), anything else loads through store.Load. A nil client uses
// http.DefaultClient.
func NewNodeFromSnapshot(ctx context.Context, client *http.Client, baseURL string) (*Node, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+pathPrefix+"/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching snapshot from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot from %s: %s", baseURL, readNodeError(resp))
	}
	dec := json.NewDecoder(resp.Body)
	var header snapshotHeader
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("cluster: snapshot header: %w", err)
	}
	if header.Schema != Schema {
		return nil, fmt.Errorf("cluster: snapshot schema %q not supported (want %q)", header.Schema, Schema)
	}
	dir, err := os.MkdirTemp("", "vxmlboot-")
	if err != nil {
		return nil, err
	}
	keepDir := false
	defer func() {
		if !keepDir {
			os.RemoveAll(dir)
		}
	}()
	done, isDisk := false, false
	for !done {
		var chunk snapshotChunk
		if err := dec.Decode(&chunk); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("cluster: snapshot stream: %w", err)
		}
		switch {
		case chunk.Error != "":
			return nil, fmt.Errorf("cluster: snapshot stream: %s", chunk.Error)
		case chunk.Done:
			done = true
		default:
			if chunk.File == "" || filepath.Base(chunk.File) != chunk.File {
				return nil, fmt.Errorf("cluster: snapshot names unsafe file %q", chunk.File)
			}
			data, err := base64.StdEncoding.DecodeString(chunk.Data)
			if err != nil {
				return nil, fmt.Errorf("cluster: snapshot file %s: %w", chunk.File, err)
			}
			if err := os.WriteFile(filepath.Join(dir, chunk.File), data, 0o644); err != nil {
				return nil, err
			}
			if chunk.File == diskstore.ManifestFileName {
				isDisk = true
			}
		}
	}
	if !done {
		return nil, fmt.Errorf("cluster: snapshot from %s truncated (no done marker)", baseURL)
	}
	var eng *core.Engine
	if isDisk {
		ds, err := diskstore.Open(dir)
		if err != nil {
			return nil, fmt.Errorf("cluster: restoring disk snapshot: %w", err)
		}
		eng = core.New(ds)
		keepDir = true
	} else {
		st, err := store.Load(dir)
		if err != nil {
			return nil, fmt.Errorf("cluster: restoring snapshot: %w", err)
		}
		eng = core.New(st)
	}
	n := &Node{engine: eng, views: map[string]*core.View{}, texts: map[string]string{}}
	if isDisk {
		n.bootDir = dir
	}
	for _, vs := range header.Views {
		v, err := n.engine.CompileViewUnchecked(vs.XQuery)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("cluster: compiling shipped view %q: %w", vs.Name, err)
		}
		n.views[vs.Name], n.texts[vs.Name] = v, vs.XQuery
	}
	n.gen = header.Gen
	return n, nil
}
