package cluster

// Snapshot shipping: a node streams its persisted corpus (the v2 MANIFEST
// format of store.Save) plus its view registry and generation as one NDJSON
// response, and NewNodeFromSnapshot rebuilds a byte-identical replica from
// that stream. Because the snapshot carries coordinator-assigned document
// IDs and the generation it was cut at, a bootstrapped replica serves reads
// indistinguishable from its primary for as long as its generation matches
// the coordinator's vector — and is rejected by the generation check, never
// silently stale, once the primary moves on.

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"

	"vxml/internal/core"
	"vxml/internal/store"
)

// manifestFile is the store's manifest name; it is shipped last so a
// replica that loads a truncated snapshot fails fast instead of opening a
// partial corpus.
const manifestFile = "MANIFEST"

// handleSnapshot streams the node's corpus: header (generation + views),
// one line per persisted file (manifest last), then an explicit done
// marker whose absence tells the receiver the stream was truncated. The
// read lock is held for the whole save, so the snapshot is a consistent
// cut at exactly the advertised generation.
func (n *Node) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	dir, err := os.MkdirTemp("", "vxmlsnap-")
	if err != nil {
		nodeErrorFor(w, err)
		return
	}
	defer os.RemoveAll(dir)
	if err := n.engine.Store.Save(dir); err != nil {
		nodeErrorFor(w, err)
		return
	}
	header := snapshotHeader{Schema: Schema, Gen: n.gen, Views: make([]viewSnapshot, 0, len(n.texts))}
	for name, text := range n.texts {
		header.Views = append(header.Views, viewSnapshot{Name: name, XQuery: text})
	}
	sort.Slice(header.Views, func(i, j int) bool { return header.Views[i].Name < header.Views[j].Name })

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	if err := enc.Encode(header); err != nil {
		return
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		_ = enc.Encode(snapshotChunk{Error: err.Error(), Code: codeInternal})
		return
	}
	var files []string
	for _, e := range entries {
		if e.Name() != manifestFile {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	files = append(files, manifestFile)
	for _, f := range files {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			_ = enc.Encode(snapshotChunk{Error: err.Error(), Code: codeInternal})
			return
		}
		if err := enc.Encode(snapshotChunk{File: f, Data: base64.StdEncoding.EncodeToString(data)}); err != nil {
			return
		}
	}
	_ = enc.Encode(snapshotChunk{Done: true})
}

// NewNodeFromSnapshot bootstraps a node (typically a read replica) from
// another node's snapshot stream: it fetches GET /cluster/v1/snapshot from
// baseURL, restores the corpus through store.Load (document IDs and shard
// count preserved), compiles the shipped views, and adopts the snapshot's
// generation. A nil client uses http.DefaultClient.
func NewNodeFromSnapshot(ctx context.Context, client *http.Client, baseURL string) (*Node, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+pathPrefix+"/snapshot", nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: snapshot request: %w", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching snapshot from %s: %w", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot from %s: %s", baseURL, readNodeError(resp))
	}
	dec := json.NewDecoder(resp.Body)
	var header snapshotHeader
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("cluster: snapshot header: %w", err)
	}
	if header.Schema != Schema {
		return nil, fmt.Errorf("cluster: snapshot schema %q not supported (want %q)", header.Schema, Schema)
	}
	dir, err := os.MkdirTemp("", "vxmlboot-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	done := false
	for !done {
		var chunk snapshotChunk
		if err := dec.Decode(&chunk); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("cluster: snapshot stream: %w", err)
		}
		switch {
		case chunk.Error != "":
			return nil, fmt.Errorf("cluster: snapshot stream: %s", chunk.Error)
		case chunk.Done:
			done = true
		default:
			if chunk.File == "" || filepath.Base(chunk.File) != chunk.File {
				return nil, fmt.Errorf("cluster: snapshot names unsafe file %q", chunk.File)
			}
			data, err := base64.StdEncoding.DecodeString(chunk.Data)
			if err != nil {
				return nil, fmt.Errorf("cluster: snapshot file %s: %w", chunk.File, err)
			}
			if err := os.WriteFile(filepath.Join(dir, chunk.File), data, 0o644); err != nil {
				return nil, err
			}
		}
	}
	if !done {
		return nil, fmt.Errorf("cluster: snapshot from %s truncated (no done marker)", baseURL)
	}
	st, err := store.Load(dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: restoring snapshot: %w", err)
	}
	n := &Node{engine: core.New(st), views: map[string]*core.View{}, texts: map[string]string{}}
	for _, vs := range header.Views {
		v, err := n.engine.CompileViewUnchecked(vs.XQuery)
		if err != nil {
			return nil, fmt.Errorf("cluster: compiling shipped view %q: %w", vs.Name, err)
		}
		n.views[vs.Name], n.texts[vs.Name] = v, vs.XQuery
	}
	n.gen = header.Gen
	return n, nil
}
