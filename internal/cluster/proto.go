// Package cluster implements distributed scatter-gather serving: a
// Coordinator fans ranked keyword searches out over N node processes (each
// holding one hash partition of the corpus plus a copy of every broadcast
// document) and merges their candidates into results byte-identical to a
// single-process vxml.Database holding the whole corpus.
//
// # Why the merge is sound
//
// A TF-IDF score depends on two corpus-global statistics: the view size
// |V(D)| and, per keyword, how many view results contain it. Nodes report
// those as integers (core.Engine.ClusterRank); the coordinator sums them
// and performs the single float64 division (scoring.IDFsFromCounts), then
// scores each candidate with scoring.Score and selects through the same
// total-ordered scoring.TopK heap the in-process pipeline uses. Integer
// sums are exact, so the IDFs — and therefore every score — are
// bit-identical to the single-node computation; ties break on a global
// (document ID, view position) key that orders candidates exactly as view
// positions order them in the oracle, because partitioned documents live on
// exactly one node and document IDs are coordinator-assigned. Winners are
// materialized in a second phase (MaterializeAt), preserving the paper's
// deferred-materialization property across the process boundary.
//
// # Generation protocol
//
// Every slot has a generation counter on the coordinator; every mutation
// RPC carries the generation the node must adopt (set_gen) and every read
// RPC the generation the reply must be computed at (gen). A node guards its
// whole pipeline with one RWMutex — mutations hold it exclusively across
// [apply + adopt generation], reads hold it shared across the whole search
// — so a reply stamped generation g was computed on exactly the
// generation-g corpus. Replies at any other generation are rejected with
// 409 and the coordinator retries the whole search a bounded number of
// times before failing with ErrStaleGeneration, exactly as catalog.PutAt
// discards inserts stamped with a stale generation.
//
// # Wire protocol (vxmlcluster/1)
//
// Nodes speak JSON/NDJSON over HTTP under /cluster/v1 (shape derived from
// the public /v1/search/stream route):
//
//	GET  /cluster/v1/health       → {schema, gen, documents, total_bytes, views}
//	POST /cluster/v1/views        {name, xquery}
//	POST /cluster/v1/documents    {op, name, xml, doc_id, set_gen} → {gen, byte_len}
//	POST /cluster/v1/rank         {view, keywords, …, gen} → {gen, view_size, contains, candidates, …}
//	POST /cluster/v1/materialize  rank request + positions → NDJSON {pos, xml, snippet}… {done, gen, fetches}
//	POST /cluster/v1/search       {view, keywords, top_k, offset, …, gen} → NDJSON {rank, score, …}… {done, gen, stats}
//	GET  /cluster/v1/snapshot     → NDJSON {schema, gen, views}, {file, data}…, {done}
//
// Errors are JSON {error, code} bodies; code "stale_generation" (409)
// additionally carries the node's current generation so the coordinator can
// tell a lagging replica (fail over to the next member) from its own
// outdated generation vector (retry the whole search).
package cluster

// Schema identifies the node RPC protocol version; every request and
// response carries it and nodes reject mismatches.
const Schema = "vxmlcluster/1"

// pathPrefix is the route prefix all node RPC endpoints live under.
const pathPrefix = "/cluster/v1"

// Node error codes (the "code" field of error bodies).
const (
	codeUnknownView     = "unknown_view"     // 404: view name not pushed to this node
	codeUnknownDocument = "unknown_document" // 404: mutation names an absent document
	codeDuplicate       = "duplicate"        // 409: add under an existing name
	codeStaleGeneration = "stale_generation" // 409: request generation != node generation
	codeInvalid         = "invalid"          // 400: malformed request or unservable view
	codeCanceled        = "canceled"         // 499: request context canceled
	codeDeadline        = "deadline"         // 408: request context deadline exceeded
	codeInternal        = "internal"         // 500
)

// errorBody is the JSON error shape of every non-2xx node reply (and of
// in-band NDJSON error lines).
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
	// Gen is the node's current generation, set on stale_generation errors.
	Gen uint64 `json:"gen,omitempty"`
}

// healthResponse answers GET /cluster/v1/health.
type healthResponse struct {
	Schema     string `json:"schema"`
	Gen        uint64 `json:"gen"`
	Documents  int    `json:"documents"`
	TotalBytes int    `json:"total_bytes"`
	Views      int    `json:"views"`
}

// viewRequest pushes one compiled view definition to a node.
type viewRequest struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	XQuery string `json:"xquery"`
}

// documentRequest applies one corpus mutation on a node. DocID is the
// coordinator-assigned global document ID (adds and replaces); SetGen is
// the generation the node adopts after applying the operation.
type documentRequest struct {
	Schema string `json:"schema"`
	Op     string `json:"op"` // "add" | "replace" | "delete"
	Name   string `json:"name"`
	XML    string `json:"xml,omitempty"`
	DocID  int32  `json:"doc_id,omitempty"`
	SetGen uint64 `json:"set_gen"`
}

// documentResponse acknowledges a mutation. ByteLen reports the stored
// document's serialized size (adds and replaces) so the coordinator can
// account corpus bytes without reparsing XML.
type documentResponse struct {
	Gen     uint64 `json:"gen"`
	ByteLen int    `json:"byte_len,omitempty"`
}

// rankRequest runs the index-only scatter phase of a distributed search.
type rankRequest struct {
	Schema      string   `json:"schema"`
	View        string   `json:"view"`
	Keywords    []string `json:"keywords"`
	Disjunctive bool     `json:"disjunctive,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Gen         uint64   `json:"gen"`
}

// wireCandidate is core.ClusterCandidate on the wire.
type wireCandidate struct {
	Doc     int32 `json:"doc"`
	Pos     int   `json:"pos"`
	TFs     []int `json:"tfs"`
	ByteLen int   `json:"byte_len"`
}

// wireNodeStats is the node-local cost breakdown reported by rank and
// search replies (microsecond timings, like the public /v1 stats shape).
type wireNodeStats struct {
	PDTTimeUS      int64 `json:"pdt_time_us"`
	EvalTimeUS     int64 `json:"eval_time_us"`
	PostTimeUS     int64 `json:"post_time_us"`
	PDTNodes       int   `json:"pdt_nodes"`
	ViewSize       int   `json:"view_size"`
	Matched        int   `json:"matched"`
	BaseData       int   `json:"base_data"`
	Workers        int   `json:"workers"`
	Candidates     int   `json:"candidates"`
	ShardsSearched int   `json:"shards_searched"`
}

// rankResponse is a node's scatter-phase reply: integer score statistics
// plus every keyword-matching candidate, nothing materialized.
type rankResponse struct {
	Schema     string          `json:"schema"`
	Gen        uint64          `json:"gen"`
	ViewSize   int             `json:"view_size"`
	Contains   []int           `json:"contains"`
	Matched    int             `json:"matched"`
	Candidates []wireCandidate `json:"candidates"`
	Stats      wireNodeStats   `json:"stats"`
}

// materializeRequest asks a node to expand the winning view positions of a
// rank it served earlier, at the same generation.
type materializeRequest struct {
	rankRequest
	Positions []int `json:"positions"`
}

// materializeChunk is one NDJSON line of a materialize response: either a
// materialized position (Pos set), the final summary (Done set), or an
// in-band error (Error set).
type materializeChunk struct {
	Pos     *int   `json:"pos,omitempty"`
	XML     string `json:"xml,omitempty"`
	Snippet string `json:"snippet,omitempty"`
	Done    bool   `json:"done,omitempty"`
	Gen     uint64 `json:"gen,omitempty"`
	Fetches int    `json:"fetches,omitempty"`
	Error   string `json:"error,omitempty"`
	Code    string `json:"code,omitempty"`
}

// searchRequest runs a complete single-node search (the route for views the
// coordinator cannot scatter: every referenced document lives on the target
// node). TopK and Offset follow vxml's window semantics: rank the top TopK,
// return winners from Offset on with absolute ranks.
type searchRequest struct {
	Schema      string   `json:"schema"`
	View        string   `json:"view"`
	Keywords    []string `json:"keywords"`
	TopK        int      `json:"top_k,omitempty"`
	Offset      int      `json:"offset,omitempty"`
	Disjunctive bool     `json:"disjunctive,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Gen         uint64   `json:"gen"`
}

// searchChunk is one NDJSON line of a single-node search response: a ranked
// result (Rank set), the final summary (Done set), or an in-band error.
type searchChunk struct {
	Rank    int            `json:"rank,omitempty"`
	Score   float64        `json:"score,omitempty"`
	TFs     []int          `json:"tfs,omitempty"`
	XML     string         `json:"xml,omitempty"`
	Snippet string         `json:"snippet,omitempty"`
	Done    bool           `json:"done,omitempty"`
	Gen     uint64         `json:"gen,omitempty"`
	Stats   *wireNodeStats `json:"stats,omitempty"`
	Error   string         `json:"error,omitempty"`
	Code    string         `json:"code,omitempty"`
}

// snapshotHeader is the first NDJSON line of a snapshot stream: the
// generation the files were saved at and every view definition the node
// holds, so a bootstrapping replica reproduces reads byte-identically.
type snapshotHeader struct {
	Schema string         `json:"schema"`
	Gen    uint64         `json:"gen"`
	Views  []viewSnapshot `json:"views"`
}

// viewSnapshot is one pushed view inside a snapshot header.
type viewSnapshot struct {
	Name   string `json:"name"`
	XQuery string `json:"xquery"`
}

// snapshotChunk is one NDJSON line after the snapshot header: a persisted
// file (File set, Data base64), the end marker (Done set — its absence
// means the stream was truncated), or an in-band error.
type snapshotChunk struct {
	File  string `json:"file,omitempty"`
	Data  string `json:"data,omitempty"`
	Done  bool   `json:"done,omitempty"`
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`
}
