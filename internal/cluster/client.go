package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// nodeCallError is a decoded non-2xx node reply, kept structured so retry
// logic can classify it (stale generation, unknown view, …).
type nodeCallError struct {
	Status int
	Code   string
	Msg    string
	// Gen is the node's current generation on stale_generation replies.
	Gen uint64
}

func (e *nodeCallError) Error() string {
	return fmt.Sprintf("node replied %d (%s): %s", e.Status, e.Code, e.Msg)
}

// readNodeError renders a non-2xx reply body for a wrap message.
func readNodeError(resp *http.Response) string {
	var body errorBody
	if json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body) == nil && body.Error != "" {
		return fmt.Sprintf("%d (%s): %s", resp.StatusCode, body.Code, body.Error)
	}
	return fmt.Sprintf("status %d", resp.StatusCode)
}

// errorFromResponse drains a non-2xx reply into a nodeCallError.
func errorFromResponse(resp *http.Response) error {
	var body errorBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
	if body.Error == "" {
		body.Error = http.StatusText(resp.StatusCode)
	}
	return &nodeCallError{Status: resp.StatusCode, Code: body.Code, Msg: body.Error, Gen: body.Gen}
}

// postJSON performs one JSON round trip against a node, bounded by the
// per-RPC timeout. A non-200 reply decodes into a *nodeCallError.
func (c *Coordinator) postJSON(ctx context.Context, baseURL, path string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	resp, err := c.post(ctx, baseURL, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errorFromResponse(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("decoding %s reply: %w", path, err)
	}
	return nil
}

// postStream performs one streaming POST against a node. The returned
// cancel releases the per-RPC timeout that bounds the whole body read and
// must be called when the caller is done with the response.
func (c *Coordinator) postStream(ctx context.Context, baseURL, path string, in any) (*http.Response, context.CancelFunc, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	resp, err := c.post(ctx, baseURL, path, in)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		err := errorFromResponse(resp)
		resp.Body.Close()
		cancel()
		return nil, nil, err
	}
	return resp, cancel, nil
}

func (c *Coordinator) post(ctx context.Context, baseURL, path string, in any) (*http.Response, error) {
	payload, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+pathPrefix+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.client.Do(req)
}

// staleGen extracts the node's current generation from a stale_generation
// reply.
func staleGen(err error) (uint64, bool) {
	var ne *nodeCallError
	if errors.As(err, &ne) && ne.Code == codeStaleGeneration {
		return ne.Gen, true
	}
	return 0, false
}

// isUnknownView reports an unknown_view reply — the trigger for the
// coordinator's self-healing view re-push.
func isUnknownView(err error) bool {
	var ne *nodeCallError
	return errors.As(err, &ne) && ne.Code == codeUnknownView
}
