package cluster

// Distributed search: the scatter-gather merge (rank on every node, sum
// integer statistics, score and select centrally, materialize winners where
// they live) and the single-node route for views that cannot scatter. Both
// routes mirror vxml.Database.SearchContext's option normalization, paging
// and query-result caching exactly, so a coordinator is a drop-in Database
// for the serving layer — byte-identical results included.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"iter"
	"sync"
	"time"

	"vxml"
	"vxml/internal/catalog"
	"vxml/internal/core"
	"vxml/internal/scoring"
)

// cachedSearch is the coordinator's query-result cache entry — same shape
// as vxml's: TF maps normalized, stats frozen at compute time.
type cachedSearch struct {
	results []vxml.Result
	stats   vxml.Stats
}

// Search runs a ranked keyword search over a registered view, distributed
// across the cluster, with vxml.Database.SearchContext semantics: same
// option normalization, same Offset/TopK paging, same query-result cache
// discipline, byte-identical results. When one or more slots are lost
// mid-search the surviving partitions' results are returned together with
// an error wrapping vxml.ErrPartialCluster (and per-member outcomes in
// Stats.Nodes); partial results are never cached.
func (c *Coordinator) Search(ctx context.Context, name string, keywords []string, opts *vxml.Options) ([]vxml.Result, *vxml.Stats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("vxml: search interrupted: %w", err)
	}
	opts = normalizeOptions(opts)
	if opts.Approach != vxml.Efficient {
		return nil, nil, fmt.Errorf("%w: the cluster serves only the efficient approach", vxml.ErrInvalidOptions)
	}
	c.mu.RLock()
	cv := c.views[name]
	c.mu.RUnlock()
	if cv == nil {
		return nil, nil, fmt.Errorf("cluster: %w: %q", vxml.ErrUnknownView, name)
	}
	if opts.Offset > 0 {
		// Same page-of-a-deeper-ranking semantics as vxml: cached pages
		// slice one shared unpaged entry, uncached pages rank only the
		// top Offset+TopK and skip the prefix unmaterialized.
		if opts.Cache {
			full := *opts
			full.Offset, full.TopK = 0, 0
			results, stats, err := c.Search(ctx, name, keywords, &full)
			if err != nil {
				return nil, stats, err
			}
			return pageSlice(results, opts.Offset, opts.TopK), stats, nil
		}
		window := *opts
		window.Offset = 0
		if opts.TopK > 0 {
			window.TopK = opts.Offset + opts.TopK
		}
		return c.searchUncached(ctx, name, cv, keywords, &window, opts.Offset)
	}
	var key string
	var gen int
	if opts.Cache {
		key = catalog.Key(cv.text, keywords,
			catalog.IntPart(opts.TopK),
			catalog.BoolPart(opts.Disjunctive),
			catalog.IntPart(int(opts.Approach)))
		gen = c.cache.Gen()
		if val, ok := c.cache.Get(key); ok {
			hit := val.(*cachedSearch)
			stats := hit.stats
			stats.CacheHit = true
			stats.PlanSource = catalog.PlanCacheHit
			stats.PlanView = c.cache.IDOf(cv.text)
			return remapTF(hit.results, keywords), &stats, nil
		}
		// Window rewrite, exactly as vxml.Database.SearchContext: a top-K
		// ranking is a prefix of the full ranking, so a cached unranked
		// TopK=0 entry answers any TopK>0 query over the same (view,
		// keywords, semantics) by slicing.
		if opts.TopK > 0 && !opts.NoRewrite {
			fullKey := catalog.Key(cv.text, keywords,
				catalog.IntPart(0),
				catalog.BoolPart(opts.Disjunctive),
				catalog.IntPart(int(opts.Approach)))
			if val, ok := c.cache.Probe(fullKey); ok {
				hit := val.(*cachedSearch)
				stats := hit.stats
				stats.PlanSource = catalog.PlanRewritten
				stats.PlanView = c.cache.IDOf(cv.text)
				c.cache.AccessPlanned(cv.text, catalog.PlanRewritten)
				return pageSlice(remapTF(hit.results, keywords), 0, opts.TopK), &stats, nil
			}
		}
	}
	out, stats, err := c.searchUncached(ctx, name, cv, keywords, opts, 0)
	if err != nil {
		return out, stats, err
	}
	if opts.Cache {
		stored := storedResults(out)
		c.cache.PutAt(key, &cachedSearch{results: stored, stats: *stats}, gen, resultsFootprint(stored))
	}
	return out, stats, nil
}

// searchUncached re-issues the search while nodes keep answering at newer
// generations than the snapshot vector (a mutation landed mid-search); the
// bounded budget turns a mutation storm into ErrStaleGeneration instead of
// a livelock.
func (c *Coordinator) searchUncached(ctx context.Context, name string, cv *compiledView, keywords []string, opts *vxml.Options, pageOffset int) ([]vxml.Result, *vxml.Stats, error) {
	attempts := 1 + c.cfg.SearchRetries
	var lastErr error
	for a := 0; a < attempts; a++ {
		results, stats, err := c.searchOnce(ctx, name, cv, keywords, opts, pageOffset)
		if err == nil || !errors.Is(err, ErrStaleGeneration) {
			if err == nil && stats != nil {
				stats.PlanSource = catalog.PlanDirect
			}
			return results, stats, err
		}
		lastErr = err
	}
	return nil, nil, fmt.Errorf("cluster: search kept racing mutations after %d attempts: %w", attempts, lastErr)
}

// searchOnce snapshots the generation vector and routing decision, then
// runs one scatter-gather or single-node pass against that snapshot.
func (c *Coordinator) searchOnce(ctx context.Context, name string, cv *compiledView, keywords []string, opts *vxml.Options, pageOffset int) ([]vxml.Result, *vxml.Stats, error) {
	c.mu.RLock()
	vec := make([]uint64, len(c.gens))
	copy(vec, c.gens)
	rt, err := c.classifyLocked(cv)
	c.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	if rt.scatter {
		return c.scatterSearch(ctx, name, keywords, opts, pageOffset, vec)
	}
	return c.singleSearch(ctx, name, keywords, opts, pageOffset, vec, rt.slot)
}

// candRef locates a merged candidate for the materialize phase: the slot
// that ranked it and its position in that node's local view output.
type candRef struct {
	slot int
	pos  int
}

// slotRank is one slot's scatter-phase outcome.
type slotRank struct {
	resp     *rankResponse
	member   int // index of the member that answered; -1 if none
	err      error
	statuses []vxml.NodeStatus
}

// scatterSearch is the distributed route: rank on every slot, merge
// centrally, materialize winners where they live.
func (c *Coordinator) scatterSearch(ctx context.Context, name string, keywords []string, opts *vxml.Options, pageOffset int, vec []uint64) ([]vxml.Result, *vxml.Stats, error) {
	start := time.Now()
	slots := c.cfg.Slots
	base := rankRequest{Schema: Schema, View: name, Keywords: keywords, Disjunctive: opts.Disjunctive, Parallelism: opts.Parallelism}

	// Phase 1: rank everywhere, concurrently.
	ranks := make([]slotRank, len(slots))
	var wg sync.WaitGroup
	for s := range slots {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			req := base
			req.Gen = vec[s]
			ranks[s] = c.rankSlot(ctx, s, req)
		}(s)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("cluster: search interrupted: %w", err)
	}

	stats := &vxml.Stats{Workers: 1}
	failedSlots := 0
	for s := range ranks {
		if err := ranks[s].err; err != nil {
			if errors.Is(err, ErrStaleGeneration) {
				c.flattenStatuses(stats, ranks)
				return nil, stats, err
			}
			var ne *nodeCallError
			if errors.As(err, &ne) && ne.Code == codeInvalid {
				// Deterministic rejection (the view is not scatterable on
				// the node either): no amount of failover helps.
				c.flattenStatuses(stats, ranks)
				return nil, stats, fmt.Errorf("%w: %s", ErrUnroutableView, ne.Msg)
			}
			failedSlots++
		}
	}
	if failedSlots == len(slots) {
		c.flattenStatuses(stats, ranks)
		return nil, stats, fmt.Errorf("cluster: all %d slot(s) failed: %w", len(slots), vxml.ErrPartialCluster)
	}

	// Merge: sum the integer statistics, then do the one float64 division
	// and per-candidate scoring exactly as a single node would.
	totalView := 0
	contains := make([]int, len(keywords))
	for s := range ranks {
		resp := ranks[s].resp
		if resp == nil {
			continue
		}
		totalView += resp.ViewSize
		for j := range contains {
			if j < len(resp.Contains) {
				contains[j] += resp.Contains[j]
			}
		}
		stats.Matched += resp.Matched
		ws := resp.Stats
		stats.PDTTime += time.Duration(ws.PDTTimeUS) * time.Microsecond
		stats.EvalTime += time.Duration(ws.EvalTimeUS) * time.Microsecond
		stats.PostTime += time.Duration(ws.PostTimeUS) * time.Microsecond
		stats.PDTNodes += ws.PDTNodes
		stats.Candidates += ws.Candidates
		stats.ShardsSearched += ws.ShardsSearched
		if ws.Workers > stats.Workers {
			stats.Workers = ws.Workers
		}
	}
	stats.ViewSize = totalView
	idfs := scoring.IDFsFromCounts(totalView, contains)
	top := scoring.NewTopK(opts.TopK)
	refs := map[int]candRef{}
	for s := range ranks {
		resp := ranks[s].resp
		if resp == nil {
			continue
		}
		for _, cand := range resp.Candidates {
			// (doc ID, local view position) is order-isomorphic to the
			// global view position the oracle breaks ties on: the outer
			// enumeration is document-ID order and each partitioned
			// document lives on exactly one node.
			idx := int(cand.Doc)<<32 | cand.Pos
			if _, dup := refs[idx]; dup {
				continue
			}
			refs[idx] = candRef{slot: s, pos: cand.Pos}
			st := scoring.Stats{TFs: cand.TFs, ByteLen: cand.ByteLen}
			top.Push(scoring.Scored{Stats: st, Score: scoring.Score(st, idfs), Index: idx})
		}
	}
	winners := top.Sorted()
	if pageOffset >= len(winners) {
		winners = nil
	} else {
		winners = winners[pageOffset:]
	}

	// Phase 2: materialize the winners on their owning slots, each slot's
	// batch in winner order so results stream back already ordered.
	type slotBatch struct {
		positions []int
		winnerIdx []int
	}
	bySlot := map[int]*slotBatch{}
	for j, w := range winners {
		ref := refs[w.Index]
		b := bySlot[ref.slot]
		if b == nil {
			b = &slotBatch{}
			bySlot[ref.slot] = b
		}
		b.positions = append(b.positions, ref.pos)
		b.winnerIdx = append(b.winnerIdx, j)
	}
	type matOut struct {
		xml, snippet string
		ok           bool
	}
	outs := make([]matOut, len(winners))
	slotErrs := make([]error, len(slots))
	var (
		matMu sync.Mutex
		matWg sync.WaitGroup
	)
	for s, b := range bySlot {
		matWg.Add(1)
		go func(s int, b *slotBatch) {
			defer matWg.Done()
			req := materializeRequest{rankRequest: base, Positions: b.positions}
			req.Gen = vec[s]
			fetches, err := c.materializeSlot(ctx, s, ranks[s].member, req, func(k int, chunk materializeChunk) {
				outs[b.winnerIdx[k]] = matOut{xml: chunk.XML, snippet: chunk.Snippet, ok: true}
			})
			matMu.Lock()
			if err != nil {
				slotErrs[s] = err
				for _, j := range b.winnerIdx {
					outs[j] = matOut{}
				}
			} else {
				stats.BaseData += fetches
			}
			matMu.Unlock()
		}(s, b)
	}
	matWg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("cluster: search interrupted: %w", err)
	}
	for s, err := range slotErrs {
		if err != nil && errors.Is(err, ErrStaleGeneration) {
			c.flattenStatuses(stats, ranks)
			return nil, stats, err
		}
		if err != nil && ranks[s].member >= 0 {
			st := &ranks[s].statuses[ranks[s].member]
			st.State = "failed"
			st.Err = err.Error()
			failedSlots++
		}
	}

	// Assemble: stop at the first winner whose slot died mid-materialize,
	// so partial results are always an exact rank prefix (of the surviving
	// partitions' merge), never a list with silent holes.
	results := make([]vxml.Result, 0, len(winners))
	for j, w := range winners {
		if !outs[j].ok {
			break
		}
		results = append(results, vxml.Result{
			Rank:    pageOffset + j + 1,
			Score:   w.Score,
			TF:      tfMap(keywords, w.Stats.TFs),
			XML:     outs[j].xml,
			Snippet: outs[j].snippet,
		})
	}
	stats.Total = time.Since(start)
	c.flattenStatuses(stats, ranks)
	if failedSlots > 0 {
		return results, stats, fmt.Errorf("cluster: %d of %d slot(s) missing from the results: %w", failedSlots, len(slots), vxml.ErrPartialCluster)
	}
	return results, stats, nil
}

// flattenStatuses fills stats.Nodes with every member's outcome, in slot
// then member order.
func (c *Coordinator) flattenStatuses(stats *vxml.Stats, ranks []slotRank) {
	stats.Nodes = stats.Nodes[:0]
	for s := range ranks {
		stats.Nodes = append(stats.Nodes, ranks[s].statuses...)
	}
}

// rankSlot runs the scatter phase against one slot, failing over across its
// members: primary first, then replicas. A member answering at a newer
// generation than the snapshot vector means a mutation landed — the whole
// search must retry (ErrStaleGeneration); an older one is a lagging replica
// and the next member is tried.
func (c *Coordinator) rankSlot(ctx context.Context, slot int, req rankRequest) slotRank {
	members := c.cfg.Slots[slot]
	out := slotRank{member: -1, statuses: make([]vxml.NodeStatus, len(members))}
	for i, m := range members {
		out.statuses[i] = vxml.NodeStatus{URL: m, Slot: slot, State: "skipped"}
	}
	var lastErr error
	for i, m := range members {
		resp, err := c.rankMember(ctx, m, req)
		if err == nil {
			out.statuses[i].State = "ok"
			out.statuses[i].Gen = resp.Gen
			out.resp, out.member = resp, i
			return out
		}
		out.statuses[i].State = "failed"
		out.statuses[i].Err = err.Error()
		if gen, ok := staleGen(err); ok {
			out.statuses[i].Gen = gen
			if gen > req.Gen {
				out.err = fmt.Errorf("%w: slot %d answered generation %d, expected %d", ErrStaleGeneration, slot, gen, req.Gen)
				return out
			}
			lastErr = err
			continue // lagging replica; the next member may be current
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			out.err = fmt.Errorf("cluster: search interrupted: %w", ctxErr)
			return out
		}
		var ne *nodeCallError
		if errors.As(err, &ne) && ne.Code == codeInvalid {
			out.err = err // deterministic rejection; failover cannot help
			return out
		}
		lastErr = err
	}
	out.err = fmt.Errorf("slot %d unavailable: %w", slot, lastErr)
	return out
}

// rankMember posts one rank request to one member, retrying transport
// failures up to the configured budget and self-healing a missed view push
// (unknown_view → push the definition, retry once).
func (c *Coordinator) rankMember(ctx context.Context, member string, req rankRequest) (*rankResponse, error) {
	attempts := 1 + c.cfg.Retries
	healed := false
	var lastErr error
	for a := 0; a < attempts; a++ {
		var resp rankResponse
		err := c.postJSON(ctx, member, "/rank", req, &resp)
		if err == nil {
			return &resp, nil
		}
		if isUnknownView(err) && !healed {
			healed = true
			if c.healView(ctx, member, req.View) {
				a--
				continue
			}
		}
		var ne *nodeCallError
		if errors.As(err, &ne) {
			return nil, err // the node answered; repeating the request is futile
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// healView re-pushes a registered view to a member that reported
// unknown_view (it was down or unborn when DefineView broadcast it).
func (c *Coordinator) healView(ctx context.Context, member, name string) bool {
	c.mu.RLock()
	cv := c.views[name]
	c.mu.RUnlock()
	return cv != nil && c.pushView(ctx, member, name, cv.text) == nil
}

// materializeSlot streams the materialize phase for one slot's winner
// batch, failing over across members (preferring the member that served
// the rank). deliver is called once per position, in request order.
func (c *Coordinator) materializeSlot(ctx context.Context, slot, preferred int, req materializeRequest, deliver func(k int, chunk materializeChunk)) (int, error) {
	members := c.cfg.Slots[slot]
	order := make([]int, 0, len(members))
	if preferred >= 0 && preferred < len(members) {
		order = append(order, preferred)
	}
	for i := range members {
		if i != preferred {
			order = append(order, i)
		}
	}
	var lastErr error
	for _, i := range order {
		fetches, err := c.materializeMember(ctx, members[i], req, deliver)
		if err == nil {
			return fetches, nil
		}
		if gen, ok := staleGen(err); ok && gen > req.Gen {
			return 0, fmt.Errorf("%w: slot %d moved to generation %d during materialization", ErrStaleGeneration, slot, gen)
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return 0, fmt.Errorf("cluster: search interrupted: %w", ctxErr)
		}
		lastErr = err
	}
	return 0, fmt.Errorf("slot %d unavailable for materialization: %w", slot, lastErr)
}

// materializeMember runs one materialize stream against one member. A
// failover retry re-delivers from position zero; re-delivery is harmless
// because materialization is deterministic at a pinned generation.
func (c *Coordinator) materializeMember(ctx context.Context, member string, req materializeRequest, deliver func(k int, chunk materializeChunk)) (int, error) {
	resp, cancel, err := c.postStream(ctx, member, "/materialize", req)
	if err != nil {
		return 0, err
	}
	defer cancel()
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	k := 0
	for {
		var chunk materializeChunk
		if err := dec.Decode(&chunk); err != nil {
			return 0, fmt.Errorf("materialize stream from %s: %w", member, err)
		}
		switch {
		case chunk.Error != "":
			return 0, &nodeCallError{Code: chunk.Code, Msg: chunk.Error, Gen: chunk.Gen}
		case chunk.Done:
			if k != len(req.Positions) {
				return 0, fmt.Errorf("materialize stream from %s: %d of %d positions delivered", member, k, len(req.Positions))
			}
			return chunk.Fetches, nil
		default:
			if chunk.Pos == nil || k >= len(req.Positions) || *chunk.Pos != req.Positions[k] {
				return 0, fmt.Errorf("materialize stream from %s: position out of order", member)
			}
			deliver(k, chunk)
			k++
		}
	}
}

// singleSearch is the route for views that cannot scatter: the whole
// search runs as one streamed RPC on a node that holds every referenced
// document — the owning slot, or any slot when only broadcast documents
// are referenced (slot < 0), failing over in slot then member order.
func (c *Coordinator) singleSearch(ctx context.Context, name string, keywords []string, opts *vxml.Options, pageOffset int, vec []uint64, slot int) ([]vxml.Result, *vxml.Stats, error) {
	start := time.Now()
	targets := []int{slot}
	if slot < 0 {
		targets = targets[:0]
		for s := range c.cfg.Slots {
			targets = append(targets, s)
		}
	}
	var statuses []vxml.NodeStatus
	var lastErr error
	for _, s := range targets {
		req := searchRequest{
			Schema: Schema, View: name, Keywords: keywords,
			TopK: opts.TopK, Offset: pageOffset,
			Disjunctive: opts.Disjunctive, Parallelism: opts.Parallelism,
			Gen: vec[s],
		}
		for i, m := range c.cfg.Slots[s] {
			results, stats, err := c.searchMember(ctx, m, req)
			if err == nil {
				stats.Total = time.Since(start)
				status := vxml.NodeStatus{URL: m, Slot: s, State: "ok", Gen: vec[s]}
				stats.Nodes = append(statuses, status)
				for _, rest := range c.cfg.Slots[s][i+1:] {
					stats.Nodes = append(stats.Nodes, vxml.NodeStatus{URL: rest, Slot: s, State: "skipped"})
				}
				return results, stats, nil
			}
			status := vxml.NodeStatus{URL: m, Slot: s, State: "failed", Err: err.Error()}
			if gen, ok := staleGen(err); ok {
				status.Gen = gen
				if gen > req.Gen {
					statuses = append(statuses, status)
					st := &vxml.Stats{Nodes: statuses}
					return nil, st, fmt.Errorf("%w: slot %d answered generation %d, expected %d", ErrStaleGeneration, s, gen, req.Gen)
				}
			}
			statuses = append(statuses, status)
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, nil, fmt.Errorf("cluster: search interrupted: %w", ctxErr)
			}
			var ne *nodeCallError
			if errors.As(err, &ne) && ne.Code == codeInvalid {
				return nil, &vxml.Stats{Nodes: statuses}, fmt.Errorf("%w: %s", vxml.ErrInvalidOptions, ne.Msg)
			}
			lastErr = err
		}
	}
	st := &vxml.Stats{Nodes: statuses}
	return nil, st, fmt.Errorf("cluster: no node can serve the view (%d member(s) tried, last: %v): %w", len(statuses), lastErr, vxml.ErrPartialCluster)
}

// searchMember runs one complete streamed search against one member,
// buffering the ranked page; transport retries and unknown_view healing as
// in rankMember.
func (c *Coordinator) searchMember(ctx context.Context, member string, req searchRequest) ([]vxml.Result, *vxml.Stats, error) {
	attempts := 1 + c.cfg.Retries
	healed := false
	var lastErr error
	for a := 0; a < attempts; a++ {
		results, stats, err := c.searchMemberOnce(ctx, member, req)
		if err == nil {
			return results, stats, nil
		}
		if isUnknownView(err) && !healed {
			healed = true
			if c.healView(ctx, member, req.View) {
				a--
				continue
			}
		}
		var ne *nodeCallError
		if errors.As(err, &ne) {
			return nil, nil, err
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, nil, err
		}
	}
	return nil, nil, lastErr
}

func (c *Coordinator) searchMemberOnce(ctx context.Context, member string, req searchRequest) ([]vxml.Result, *vxml.Stats, error) {
	resp, cancel, err := c.postStream(ctx, member, "/search", req)
	if err != nil {
		return nil, nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var results []vxml.Result
	for {
		var chunk searchChunk
		if err := dec.Decode(&chunk); err != nil {
			return nil, nil, fmt.Errorf("search stream from %s: %w", member, err)
		}
		switch {
		case chunk.Error != "":
			return nil, nil, &nodeCallError{Code: chunk.Code, Msg: chunk.Error, Gen: chunk.Gen}
		case chunk.Done:
			stats := &vxml.Stats{}
			if chunk.Stats != nil {
				ws := chunk.Stats
				stats.PDTTime = time.Duration(ws.PDTTimeUS) * time.Microsecond
				stats.EvalTime = time.Duration(ws.EvalTimeUS) * time.Microsecond
				stats.PostTime = time.Duration(ws.PostTimeUS) * time.Microsecond
				stats.PDTNodes = ws.PDTNodes
				stats.ViewSize = ws.ViewSize
				stats.Matched = ws.Matched
				stats.BaseData = ws.BaseData
				stats.Workers = ws.Workers
				stats.Candidates = ws.Candidates
				stats.ShardsSearched = ws.ShardsSearched
			}
			return results, stats, nil
		default:
			results = append(results, vxml.Result{
				Rank:    chunk.Rank,
				Score:   chunk.Score,
				TF:      tfMap(req.Keywords, chunk.TFs),
				XML:     chunk.XML,
				Snippet: chunk.Snippet,
			})
		}
	}
}

// Results is the coordinator's streaming delivery, mirroring
// vxml.Database.Results: the yielded sequence is byte-identical to what
// Search returns for the same arguments; on the scatter route winners are
// materialized slot by slot while earlier winners are already being
// yielded. A slot lost mid-stream yields the in-order prefix followed by a
// final (zero Result, error wrapping vxml.ErrPartialCluster) pair — never a
// silently truncated sequence. Generation races are retried only before
// the first yield; after it they surface as the final error pair.
func (c *Coordinator) Results(ctx context.Context, name string, keywords []string, opts *vxml.Options) iter.Seq2[vxml.Result, error] {
	return func(yield func(vxml.Result, error) bool) {
		// The eager path (compute the page, then replay) both serves the
		// cache contract and keeps partial-cluster delivery uniform: the
		// prefix is yielded, then the error.
		results, _, err := c.Search(ctx, name, keywords, opts)
		for _, r := range results {
			if ctxErr := ctx.Err(); ctxErr != nil {
				yield(vxml.Result{}, fmt.Errorf("vxml: streaming interrupted: %w", ctxErr))
				return
			}
			if !yield(r, nil) {
				return
			}
		}
		if err != nil {
			yield(vxml.Result{}, err)
		}
	}
}

// tfMap keys a candidate's per-keyword term frequencies by the caller's own
// keyword spellings, exactly as the in-process pipeline's toResult does.
func tfMap(keywords []string, tfs []int) map[string]int {
	tf := make(map[string]int, len(keywords))
	for i := 0; i < len(keywords) && i < len(tfs); i++ {
		tf[keywords[i]] = tfs[i]
	}
	return tf
}

// The four helpers below mirror vxml's unexported cache/paging plumbing so
// the coordinator's serving semantics stay byte-for-byte aligned with
// Database.SearchContext.

func normalizeOptions(opts *vxml.Options) *vxml.Options {
	if opts == nil {
		return &vxml.Options{}
	}
	if opts.TopK < 0 || opts.Offset < 0 || opts.Parallelism < 0 {
		o := *opts
		o.TopK = max(o.TopK, 0)
		o.Offset = max(o.Offset, 0)
		if o.Parallelism < 0 {
			o.Parallelism = 1
		}
		return &o
	}
	return opts
}

func pageSlice(results []vxml.Result, offset, k int) []vxml.Result {
	if offset >= len(results) {
		return nil
	}
	page := results[offset:]
	if k > 0 && k < len(page) {
		page = page[:k]
	}
	return page
}

func resultsFootprint(in []vxml.Result) int {
	n := 0
	for _, r := range in {
		n += len(r.XML) + len(r.Snippet) + 64
		for k := range r.TF {
			n += len(k) + 16
		}
	}
	return n
}

func storedResults(in []vxml.Result) []vxml.Result {
	return copyResultsKeyed(in, core.NormalizeKeyword)
}

func copyResultsKeyed(in []vxml.Result, keyFn func(string) string) []vxml.Result {
	out := make([]vxml.Result, len(in))
	for i, r := range in {
		tf := make(map[string]int, len(r.TF))
		for k, v := range r.TF {
			tf[keyFn(k)] = v
		}
		r.TF = tf
		out[i] = r
	}
	return out
}

func remapTF(in []vxml.Result, keywords []string) []vxml.Result {
	out := make([]vxml.Result, len(in))
	for i, r := range in {
		tf := make(map[string]int, len(keywords))
		for _, k := range keywords {
			tf[k] = r.TF[core.NormalizeKeyword(k)]
		}
		r.TF = tf
		out[i] = r
	}
	return out
}
