// Distributed byte-identity: the oracle suite pinning the scatter-gather
// coordinator to the single-process Database. For every randomized corpus,
// view shape and option cell, a coordinator fanning over N nodes must
// return byte-identical results — rank, score, TF map, materialized XML,
// snippet — to one Database holding the same documents in the same
// enumeration order, across ranked/unranked, conjunctive/disjunctive,
// one-shot/streamed and paged delivery, before and after interleaved
// mutations routed through the coordinator. Run with -race.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"

	"vxml"
	"vxml/internal/cluster"
	"vxml/internal/testkit"
)

// testCluster is N single-member slots behind httptest servers plus a
// coordinator over them.
type testCluster struct {
	coord   *cluster.Coordinator
	nodes   []*cluster.Node
	servers []*httptest.Server
}

// startCluster boots one node per slot and a coordinator. tweak, when
// non-nil, may adjust the config (timeouts, extra members) before the
// coordinator is built.
func startCluster(t testing.TB, slots int, tweak func(*cluster.Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	cfg := cluster.Config{}
	for i := 0; i < slots; i++ {
		n := cluster.NewNode()
		srv := httptest.NewServer(n.Handler())
		tc.nodes = append(tc.nodes, n)
		tc.servers = append(tc.servers, srv)
		cfg.Slots = append(cfg.Slots, []string{srv.URL})
	}
	if tweak != nil {
		tweak(&cfg)
	}
	coord, err := cluster.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.coord = coord
	t.Cleanup(func() {
		for _, s := range tc.servers {
			s.Close()
		}
	})
	return tc
}

// coordTarget adapts a Coordinator to testkit's Target/Mutator corpus
// interfaces.
type coordTarget struct{ c *cluster.Coordinator }

func (a coordTarget) Add(name, xml string) error {
	return a.c.AddDocument(context.Background(), name, xml)
}
func (a coordTarget) Replace(name, xml string) error {
	return a.c.ReplaceDocument(context.Background(), name, xml)
}
func (a coordTarget) Delete(name string) error {
	return a.c.DeleteDocument(context.Background(), name)
}

// tee fans every lifecycle operation to two mutators, so one random op
// sequence lands identically on the oracle Database and the coordinator.
type tee struct{ a, b testkit.Mutator }

func (t tee) Add(name, xml string) error {
	if err := t.a.Add(name, xml); err != nil {
		return err
	}
	return t.b.Add(name, xml)
}
func (t tee) Replace(name, xml string) error {
	if err := t.a.Replace(name, xml); err != nil {
		return err
	}
	return t.b.Replace(name, xml)
}
func (t tee) Delete(name string) error {
	if err := t.a.Delete(name); err != nil {
		return err
	}
	return t.b.Delete(name)
}

// recorder captures a generated corpus so it can be replayed into several
// targets.
type recorder struct{ docs [][2]string }

func (r *recorder) Add(name, xml string) error {
	r.docs = append(r.docs, [2]string{name, xml})
	return nil
}

// mustSearchBoth runs the same search on the oracle and the coordinator
// and asserts byte identity plus agreement of the result-affecting stats.
func mustSearchBoth(t *testing.T, label string, db *vxml.Database, view *vxml.View,
	coord *cluster.Coordinator, viewName string, kws []string, opts *vxml.Options) []vxml.Result {
	t.Helper()
	want, wantStats, err := db.Search(view, kws, opts)
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	got, gotStats, err := coord.Search(context.Background(), viewName, kws, opts)
	if err != nil {
		t.Fatalf("%s: coordinator: %v", label, err)
	}
	testkit.MustEqualResults(t, label, want, got)
	if wantStats.ViewSize != gotStats.ViewSize || wantStats.Matched != gotStats.Matched {
		t.Fatalf("%s: counters diverge: oracle view=%d matched=%d, cluster view=%d matched=%d",
			label, wantStats.ViewSize, wantStats.Matched, gotStats.ViewSize, gotStats.Matched)
	}
	return want
}

// TestDistributedByteIdentity is the acceptance property: >= 48 randomized
// corpora (12 seeds x 4 topologies), each compared across every view
// shape, ranked/unranked x conjunctive/disjunctive, one-shot, streamed and
// paged delivery — then again after a random mutation sequence applied
// through the coordinator.
func TestDistributedByteIdentity(t *testing.T) {
	baselineGoroutines := runtime.NumGoroutine()
	corpora := 0
	seeds := int64(12)
	if testing.Short() {
		seeds = 3
	}
	for seed := int64(1); seed <= seeds; seed++ {
		for _, slots := range []int{1, 2, 3, 5} {
			corpora++
			t.Run(fmt.Sprintf("seed%02d/slots%d", seed, slots), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed*100 + int64(slots)))
				tc := startCluster(t, slots, nil)

				// One generated corpus, replayed into both systems.
				var rec recorder
				testkit.FillEqCorpus(t, rng, 3+rng.Intn(10), &rec)
				db := vxml.Open()
				for _, d := range rec.docs {
					db.MustAdd(d[0], d[1])
					if err := tc.coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
						t.Fatalf("cluster add %q: %v", d[0], err)
					}
				}

				views := make([]*vxml.View, len(testkit.EqViews))
				for i, text := range testkit.EqViews {
					v, err := db.DefineView(text)
					if err != nil {
						t.Fatalf("oracle view %d: %v", i, err)
					}
					views[i] = v
					if _, err := tc.coord.DefineView(context.Background(), fmt.Sprintf("v%d", i), text); err != nil {
						t.Fatalf("cluster view %d: %v", i, err)
					}
				}

				compareAll := func(phase string) {
					kws := testkit.KeywordsFor(rng)
					disj := rng.Intn(2) == 1
					for i := range views {
						name := fmt.Sprintf("v%d", i)
						prefix := fmt.Sprintf("%s/view%d/kws=%v/disj=%v", phase, i, kws, disj)

						full := mustSearchBoth(t, prefix+"/full", db, views[i], tc.coord, name, kws,
							&vxml.Options{Disjunctive: disj})
						mustSearchBoth(t, prefix+"/top3", db, views[i], tc.coord, name, kws,
							&vxml.Options{TopK: 3, Disjunctive: disj})
						mustSearchBoth(t, prefix+"/conj-flip", db, views[i], tc.coord, name, kws,
							&vxml.Options{TopK: 4, Disjunctive: !disj})

						// Streamed delivery replays the identical ranking.
						streamed := testkit.CollectResults(t, prefix+"/stream",
							tc.coord.Results(context.Background(), name, kws, &vxml.Options{Disjunctive: disj}))
						testkit.MustEqualResults(t, prefix+"/stream-vs-oracle", full, streamed)

						// A paged window slices the same total order.
						if len(full) > 1 {
							off := 1 + rng.Intn(len(full))
							mustSearchBoth(t, fmt.Sprintf("%s/page-off%d", prefix, off),
								db, views[i], tc.coord, name, kws,
								&vxml.Options{Offset: off, TopK: 2, Disjunctive: disj})
						}
					}
				}

				compareAll("initial")

				// The same random lifecycle lands on both systems; identity
				// must survive it (stale postings, missed invalidations and
				// generation races all surface here). The seed map tells the
				// mutator which part documents the corpus already holds.
				existing := map[string]string{}
				for _, d := range rec.docs {
					if d[0] != "authors.xml" {
						existing[d[0]] = d[1]
					}
				}
				testkit.MutateRandomly(t, tee{db, coordTarget{tc.coord}}, rng, existing)
				compareAll("mutated")

				// Cached repeat: the coordinator's cache hit must replay the
				// identical bytes, and a fresh oracle search must agree.
				kws := testkit.KeywordsFor(rng)
				cold, _, err := tc.coord.Search(context.Background(), "v0", kws, &vxml.Options{TopK: 5, Cache: true})
				if err != nil {
					t.Fatal(err)
				}
				warm, warmStats, err := tc.coord.Search(context.Background(), "v0", kws, &vxml.Options{TopK: 5, Cache: true})
				if err != nil {
					t.Fatal(err)
				}
				if !warmStats.CacheHit {
					t.Fatal("repeated identical cluster search missed the coordinator cache")
				}
				testkit.MustEqualResults(t, "cluster cache hit", cold, warm)
				oracle, _, err := db.Search(views[0], kws, &vxml.Options{TopK: 5})
				if err != nil {
					t.Fatal(err)
				}
				testkit.MustEqualResults(t, "cluster cache vs oracle", oracle, warm)
			})
		}
	}
	if corpora < 48 && !testing.Short() {
		t.Fatalf("only %d randomized corpora, want >= 48", corpora)
	}
	testkit.WaitGoroutines(t, "after distributed equivalence trials", baselineGoroutines)
}

// TestClusterMutationThroughCoordinatorMatchesFreshBuild replays the
// mutation-equivalence oracle at the cluster level: a cluster corpus that
// reached its state through a random Add/Replace/Delete interleaving must
// search byte-identically to a fresh single-process corpus holding the
// final documents in the cluster's enumeration order.
func TestClusterMutationThroughCoordinatorMatchesFreshBuild(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9300 + trial)))
			tc := startCluster(t, 2+trial%3, nil)
			target := coordTarget{tc.coord}
			if err := target.Add("authors.xml", testkit.AuthorsXML(rng)); err != nil {
				t.Fatal(err)
			}
			final := testkit.MutateRandomly(t, target, rng, nil)

			fresh := vxml.Open()
			for _, name := range tc.coord.DocumentNames() {
				if name == "authors.xml" {
					continue // replayed below in enumeration order
				}
				if _, ok := final[name]; !ok {
					t.Fatalf("cluster enumerates %q but the op log lost it", name)
				}
			}
			for _, name := range tc.coord.DocumentNames() {
				if name == "authors.xml" {
					fresh.MustAdd(name, testkit.AuthorsXML(rand.New(rand.NewSource(int64(9300+trial)))))
					continue
				}
				fresh.MustAdd(name, final[name])
			}

			kws := testkit.KeywordsFor(rng)
			for vi, text := range testkit.MutViews {
				name := fmt.Sprintf("m%d", vi)
				if _, err := tc.coord.DefineView(context.Background(), name, text); err != nil {
					t.Fatal(err)
				}
				fv, err := fresh.DefineView(text)
				if err != nil {
					t.Fatal(err)
				}
				for _, topK := range []int{0, 4} {
					label := fmt.Sprintf("trial%d/view%d/k%d", trial, vi, topK)
					want, _, err := fresh.Search(fv, kws, &vxml.Options{TopK: topK})
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := tc.coord.Search(context.Background(), name, kws, &vxml.Options{TopK: topK})
					if err != nil {
						t.Fatal(err)
					}
					testkit.MustEqualResults(t, label, want, got)
				}
			}
		})
	}
}

// TestNodeDownYieldsPartialCluster kills one slot's only member outright:
// the search must deliver the surviving partitions' merged results WITH a
// typed ErrPartialCluster — never a silently smaller result set — and
// Stats.Nodes must name the lost member.
func TestNodeDownYieldsPartialCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tc := startCluster(t, 3, func(cfg *cluster.Config) {
		cfg.Retries = -1 // no transport retries: keep the failure path quick
	})
	var rec recorder
	testkit.FillEqCorpus(t, rng, 12, &rec)
	for _, d := range rec.docs {
		if err := tc.coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tc.coord.DefineView(context.Background(), "v", testkit.EqViews[0]); err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper"}
	ref, _, err := tc.coord.Search(context.Background(), "v", kws, nil)
	if err != nil {
		t.Fatalf("healthy cluster: %v", err)
	}
	if len(ref) == 0 {
		t.Fatal("corpus produced no results; the kill has nothing to truncate")
	}

	tc.servers[1].Close() // slot 1 is gone

	got, stats, err := tc.coord.Search(context.Background(), "v", kws, nil)
	if err == nil {
		t.Fatalf("search over a dead slot returned %d results with no error: silent truncation", len(got))
	}
	if !errors.Is(err, vxml.ErrPartialCluster) {
		t.Fatalf("error %q does not wrap ErrPartialCluster", err)
	}
	if stats == nil {
		t.Fatal("partial search must still report stats")
	}
	var failed int
	for _, n := range stats.Nodes {
		if n.State == "failed" {
			failed++
			if n.Slot != 1 {
				t.Errorf("failed member on slot %d, want slot 1", n.Slot)
			}
			if n.Err == "" {
				t.Error("failed member carries no error text")
			}
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed members in stats.Nodes, want 1: %+v", failed, stats.Nodes)
	}
	if len(got) >= len(ref) {
		t.Fatalf("partial search returned %d results, reference %d: the dead slot contributed nothing?", len(got), len(ref))
	}
	// Survivors keep the global order: every delivered result is one of the
	// reference's, in reference order.
	j := 0
	for _, r := range got {
		for j < len(ref) && ref[j].XML != r.XML {
			j++
		}
		if j == len(ref) {
			t.Fatalf("partial result %q is not part of the healthy reference ranking", r.Snippet)
		}
		j++
	}

	// Partial results are never cached: a repeat with the cache armed must
	// recompute (and still fail), not serve the partial entry.
	if _, _, err := tc.coord.Search(context.Background(), "v", kws, &vxml.Options{Cache: true}); !errors.Is(err, vxml.ErrPartialCluster) {
		t.Fatalf("cached repeat over dead slot: %v, want ErrPartialCluster", err)
	}
	if hits := tc.coord.CacheStats().Hits; hits != 0 {
		t.Fatalf("partial search was served from cache (%d hits)", hits)
	}
}

// TestMaterializePhaseFailureDeliversExactPrefix fails one slot between
// ranking and materialization (its /materialize route starts erroring
// after rank succeeded). The coordinator must deliver the exact in-order
// prefix of the global ranking up to the first result it cannot
// materialize, plus ErrPartialCluster.
func TestMaterializePhaseFailureDeliversExactPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	var breakMaterialize atomic.Bool
	n0, n1 := cluster.NewNode(), cluster.NewNode()
	s0 := httptest.NewServer(n0.Handler())
	defer s0.Close()
	s1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if breakMaterialize.Load() && r.URL.Path == "/cluster/v1/materialize" {
			http.Error(w, `{"error":"injected failure","code":"internal"}`, http.StatusInternalServerError)
			return
		}
		n1.Handler().ServeHTTP(w, r)
	}))
	defer s1.Close()
	coord, err := cluster.NewCoordinator(cluster.Config{
		Slots:   [][]string{{s0.URL}, {s1.URL}},
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec recorder
	testkit.FillEqCorpus(t, rng, 14, &rec)
	for _, d := range rec.docs {
		if err := coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.DefineView(context.Background(), "v", testkit.EqViews[0]); err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper"}
	ref, _, err := coord.Search(context.Background(), "v", kws, nil)
	if err != nil {
		t.Fatalf("healthy cluster: %v", err)
	}
	if len(ref) < 2 {
		t.Fatalf("reference too small (%d results) to observe a prefix cut", len(ref))
	}

	breakMaterialize.Store(true)
	got, _, err := coord.Search(context.Background(), "v", kws, nil)
	if !errors.Is(err, vxml.ErrPartialCluster) {
		// A nil error here would mean slot 1 contributed no winners for this
		// seed — pick a different seed rather than weakening the assertion.
		t.Fatalf("materialize-phase failure: %v, want ErrPartialCluster", err)
	}
	if len(got) >= len(ref) {
		t.Fatalf("got %d results with a broken slot, reference %d", len(got), len(ref))
	}
	// The delivered results are the exact reference prefix: same ranks,
	// scores, XML, snippets, TF maps.
	testkit.MustEqualResults(t, "prefix after materialize failure", ref[:len(got)], got)
}

// TestReplicaFailoverAfterSnapshotBootstrap ships a snapshot from a loaded
// primary to an empty replica, kills the primary, and expects byte-identical
// answers from the replica — and, before the bootstrap, expects the lagging
// empty replica to be rejected (generation 0 < the coordinator's vector)
// rather than silently serving an empty corpus.
func TestReplicaFailoverAfterSnapshotBootstrap(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	primary := cluster.NewNode()
	primarySrv := httptest.NewServer(primary.Handler())
	defer primarySrv.Close()

	var replica atomic.Pointer[cluster.Node]
	replica.Store(cluster.NewNode())
	replicaSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		replica.Load().Handler().ServeHTTP(w, r)
	}))
	defer replicaSrv.Close()

	coord, err := cluster.NewCoordinator(cluster.Config{
		Slots:   [][]string{{primarySrv.URL, replicaSrv.URL}},
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec recorder
	testkit.FillEqCorpus(t, rng, 10, &rec)
	for _, d := range rec.docs {
		if err := coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.DefineView(context.Background(), "v", testkit.EqViews[1]); err != nil {
		t.Fatal(err)
	}
	kws := []string{"copper", "quartz"}
	ref, _, err := coord.Search(context.Background(), "v", kws, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Bootstrap the replica from the primary's consistent snapshot; it
	// adopts the snapshot's generation and can now serve reads.
	boot, err := cluster.NewNodeFromSnapshot(context.Background(), nil, primarySrv.URL)
	if err != nil {
		t.Fatalf("snapshot bootstrap: %v", err)
	}
	if boot.Gen() != primary.Gen() {
		t.Fatalf("replica bootstrapped at generation %d, primary at %d", boot.Gen(), primary.Gen())
	}
	if boot.Documents() != primary.Documents() {
		t.Fatalf("replica holds %d documents, primary %d", boot.Documents(), primary.Documents())
	}
	replica.Store(boot)

	primarySrv.Close() // primary gone; reads must fail over

	got, stats, err := coord.Search(context.Background(), "v", kws, nil)
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	testkit.MustEqualResults(t, "replica failover", ref, got)
	servedByReplica := false
	for _, n := range stats.Nodes {
		if n.URL == replicaSrv.URL && n.State == "ok" {
			servedByReplica = true
		}
	}
	if !servedByReplica {
		t.Fatalf("stats do not credit the replica: %+v", stats.Nodes)
	}

	// Mutations, by contrast, must NOT fail over (the replica is read-only
	// by protocol: only the primary may apply writes).
	err = coord.AddDocument(context.Background(), "part-90.xml", "<books><article><bdy>copper</bdy></article></books>")
	if err == nil {
		t.Fatal("mutation succeeded with a dead primary; writes must route to the primary only")
	}
}

// TestLaggingReplicaIsNotServed pins the stale-read protection: an empty
// (never bootstrapped) replica is behind the coordinator's generation
// vector, so with the primary dead the search fails with ErrPartialCluster
// instead of silently answering from generation zero.
func TestLaggingReplicaIsNotServed(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	primary := cluster.NewNode()
	primarySrv := httptest.NewServer(primary.Handler())
	defer primarySrv.Close()
	lagging := cluster.NewNode()
	laggingSrv := httptest.NewServer(lagging.Handler())
	defer laggingSrv.Close()

	coord, err := cluster.NewCoordinator(cluster.Config{
		Slots:   [][]string{{primarySrv.URL, laggingSrv.URL}},
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var rec recorder
	testkit.FillEqCorpus(t, rng, 6, &rec)
	for _, d := range rec.docs {
		if err := coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := coord.DefineView(context.Background(), "v", testkit.EqViews[0]); err != nil {
		t.Fatal(err)
	}
	primarySrv.Close()

	got, _, err := coord.Search(context.Background(), "v", []string{"copper"}, nil)
	if !errors.Is(err, vxml.ErrPartialCluster) {
		t.Fatalf("search with only a lagging replica: err=%v (%d results), want ErrPartialCluster", err, len(got))
	}
}

// TestSelfJoinRouting pins the scatter-safety analysis: a view whose
// collection is referenced twice (a self-join) cannot be partitioned. On a
// one-slot cluster it still runs — byte-identical to the oracle — and on a
// multi-slot cluster it fails with the typed ErrUnroutableView instead of
// returning partition-local join results.
func TestSelfJoinRouting(t *testing.T) {
	selfJoin := `for $a in fn:collection("part-*")/books//article
	 return <pair>{$a/fm/tl},
	   {for $b in fn:collection("part-*")/books//article
	    where $b/fm/au = $a/fm/au
	    return <m>{$b/fm/yr}</m>}</pair>`

	rng := rand.New(rand.NewSource(41))
	var rec recorder
	testkit.FillEqCorpus(t, rng, 5, &rec)

	load := func(t *testing.T, tc *testCluster) {
		t.Helper()
		for _, d := range rec.docs {
			if err := tc.coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := tc.coord.DefineView(context.Background(), "sj", selfJoin); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("one-slot", func(t *testing.T) {
		tc := startCluster(t, 1, nil)
		load(t, tc)
		db := vxml.Open()
		for _, d := range rec.docs {
			db.MustAdd(d[0], d[1])
		}
		view, err := db.DefineView(selfJoin)
		if err != nil {
			t.Fatal(err)
		}
		mustSearchBoth(t, "self-join single slot", db, view, tc.coord, "sj",
			[]string{"copper"}, &vxml.Options{TopK: 5})
	})

	t.Run("multi-slot", func(t *testing.T) {
		tc := startCluster(t, 3, nil)
		load(t, tc)
		_, _, err := tc.coord.Search(context.Background(), "sj", []string{"copper"}, nil)
		if !errors.Is(err, cluster.ErrUnroutableView) {
			t.Fatalf("self-join over 3 slots: %v, want ErrUnroutableView", err)
		}
	})
}
