package cluster_test

// Cluster-level planner equivalence: the coordinator shares the catalog
// vocabulary with the single-process engine — exact cache hits and
// TopK-window rewrites over the shared unpaged entry — and every planned
// answer must stay byte-identical to a single-process oracle over the same
// corpus, before and after mutations invalidate the catalog.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"vxml"
	"vxml/internal/catalog"
	"vxml/internal/testkit"
)

func TestClusterPlannerEquivalence(t *testing.T) {
	for _, slots := range []int{1, 3} {
		t.Run(fmt.Sprintf("slots%d", slots), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7100 + slots)))
			tc := startCluster(t, slots, nil)

			var rec recorder
			testkit.FillEqCorpus(t, rng, 4+rng.Intn(4), &rec)
			db := vxml.Open()
			for _, d := range rec.docs {
				db.MustAdd(d[0], d[1])
				if err := tc.coord.AddDocument(context.Background(), d[0], d[1]); err != nil {
					t.Fatalf("cluster add %q: %v", d[0], err)
				}
			}
			view, err := db.DefineView(testkit.EqViews[0])
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tc.coord.DefineView(context.Background(), "v", testkit.EqViews[0]); err != nil {
				t.Fatal(err)
			}

			kws := testkit.KeywordsFor(rng)
			search := func(label string, opts *vxml.Options) *vxml.Stats {
				t.Helper()
				want, _, err := db.Search(view, kws, &vxml.Options{TopK: opts.TopK, Disjunctive: opts.Disjunctive})
				if err != nil {
					t.Fatalf("%s: oracle: %v", label, err)
				}
				got, stats, err := tc.coord.Search(context.Background(), "v", kws, opts)
				if err != nil {
					t.Fatalf("%s: coordinator: %v", label, err)
				}
				testkit.MustEqualResults(t, label, want, got)
				return stats
			}

			// Cold full search populates the shared unpaged entry; the plan
			// source is direct.
			if st := search("cold-full", &vxml.Options{Cache: true}); st.PlanSource != catalog.PlanDirect {
				t.Fatalf("cold search served from %q, want direct", st.PlanSource)
			}
			// An exact repeat is a cache hit, with the serving view's ID.
			st := search("exact-repeat", &vxml.Options{Cache: true})
			if st.PlanSource != catalog.PlanCacheHit || !st.CacheHit || st.PlanView == "" {
				t.Fatalf("repeat served from %q (hit=%v, view=%q), want cache_hit", st.PlanSource, st.CacheHit, st.PlanView)
			}
			// A TopK window over the cached full ranking rewrites: no node
			// RPC, byte-identical to a direct top-K search.
			st = search("window", &vxml.Options{Cache: true, TopK: 2})
			if st.PlanSource != catalog.PlanRewritten {
				t.Fatalf("window served from %q, want rewritten", st.PlanSource)
			}
			if cs := tc.coord.CacheStats(); cs.RewriteHits != 1 {
				t.Fatalf("RewriteHits = %d after window serve, want 1", cs.RewriteHits)
			}
			// NoRewrite disables the window tier: the same query evaluates
			// directly (and still matches the oracle byte for byte).
			if st = search("norewrite", &vxml.Options{Cache: true, TopK: 2, NoRewrite: true}); st.PlanSource != catalog.PlanDirect {
				t.Fatalf("NoRewrite window served from %q, want direct", st.PlanSource)
			}

			// PlanProbe agrees with what a search would do.
			source, viewID, err := tc.coord.PlanProbe("v", kws)
			if err != nil {
				t.Fatal(err)
			}
			if source != catalog.PlanCacheHit || viewID == "" {
				t.Fatalf("PlanProbe = (%q, %q), want cache_hit with a view ID", source, viewID)
			}

			// A mutation through the coordinator invalidates the catalog:
			// the next planned search evaluates directly and matches a fresh
			// oracle over the mutated corpus; the one after that is a window
			// rewrite of the repopulated entry.
			replacement := testkit.RandomPartDoc(rng, 88)
			if err := tc.coord.ReplaceDocument(context.Background(), "part-00.xml", replacement); err != nil {
				t.Fatal(err)
			}
			if err := db.Replace("part-00.xml", replacement); err != nil {
				t.Fatal(err)
			}
			if st = search("after-replace", &vxml.Options{Cache: true}); st.PlanSource != catalog.PlanDirect {
				t.Fatalf("post-mutation search served from %q, want direct", st.PlanSource)
			}
			if st = search("after-replace-window", &vxml.Options{Cache: true, TopK: 3}); st.PlanSource != catalog.PlanRewritten {
				t.Fatalf("post-mutation window served from %q, want rewritten", st.PlanSource)
			}
			deleted := "part-01.xml"
			if err := tc.coord.DeleteDocument(context.Background(), deleted); err != nil {
				t.Fatal(err)
			}
			if err := db.Delete(deleted); err != nil {
				t.Fatal(err)
			}
			if st = search("after-delete", &vxml.Options{Cache: true}); st.PlanSource != catalog.PlanDirect {
				t.Fatalf("post-delete search served from %q, want direct", st.PlanSource)
			}
		})
	}
}
